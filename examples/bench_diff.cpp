// bench_diff: perf-trajectory gate over stamped benchmark snapshots.
//
//   bench_diff [options] <baseline.json> <candidate.json>
//   bench_diff --selftest
//
// Compares two BENCH_*.json snapshots (either the merged file written by
// scripts/bench_all.sh — {git_sha, preset, benches: [...]} — or a single
// per-bench payload) metric by metric and fails when a metric moved past
// the regression threshold in its bad direction.
//
// Direction is inferred from the metric name:
//   higher-better  *per_s*, *per_second*, *throughput*, *speedup*, *acc*
//   lower-better   suffixes _s/_ms/_us/_ns/.ms/.s/_seconds, or names
//                  containing time/latency/wall
//   neutral        anything else (e.g. comm_share) — reported, never gated
//
// Metrics present in only one snapshot are reported as added/removed and
// never fail the gate, so renames across PRs degrade to informational
// rows instead of errors.
//
// Options:
//   --threshold X   relative regression threshold (default 0.05, i.e. 5%;
//                   env FFTGRAD_BENCH_DIFF_TOL overrides the default)
//   --markdown, -m  emit a Markdown table
//   --all           print every row, not just regressions/improvements
//   --selftest      verify the gate fires on a 6% slowdown and stays
//                   quiet on identical snapshots, then exit
//
// Exit status: 0 when no gated metric regressed, 1 on a regression (or a
// failed selftest), 2 on unreadable/malformed input.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "fftgrad/telemetry/ledger.h"
#include "fftgrad/util/table.h"

namespace {

using fftgrad::telemetry::JsonValue;

enum class Direction { kLowerBetter, kHigherBetter, kNeutral };

bool contains(const std::string& haystack, const char* needle) {
  return haystack.find(needle) != std::string::npos;
}

bool ends_with(const std::string& text, const char* suffix) {
  const std::size_t n = std::string(suffix).size();
  return text.size() >= n && text.compare(text.size() - n, n, suffix) == 0;
}

/// Infer good/bad direction from the metric name. Rate-style names are
/// checked before the _s suffix so "iters_per_s" counts as higher-better.
Direction direction_of(const std::string& key) {
  if (contains(key, "per_s") || contains(key, "per_second") || contains(key, "throughput") ||
      contains(key, "speedup") || contains(key, "acc")) {
    return Direction::kHigherBetter;
  }
  if (ends_with(key, "_s") || ends_with(key, "_ms") || ends_with(key, "_us") ||
      ends_with(key, "_ns") || ends_with(key, ".ms") || ends_with(key, ".s") ||
      ends_with(key, "_seconds") || contains(key, "time") || contains(key, "latency") ||
      contains(key, "wall")) {
    return Direction::kLowerBetter;
  }
  return Direction::kNeutral;
}

/// Flatten a snapshot to ("<bench>.<metric>", value) rows. Accepts both
/// the merged bench_all.sh shape and a single emit_json payload.
std::vector<std::pair<std::string, double>> flatten(const JsonValue& snapshot) {
  std::vector<std::pair<std::string, double>> metrics;
  const auto add_bench = [&metrics](const JsonValue& bench) {
    const std::string name = bench.string_or("bench", "?");
    const JsonValue* values = bench.find("metrics");
    if (values == nullptr) return;
    for (const auto& [key, value] : values->object) {
      if (value.kind == JsonValue::Kind::kNumber) {
        metrics.emplace_back(name + "." + key, value.number);
      }
    }
  };
  const JsonValue* benches = snapshot.find("benches");
  if (benches != nullptr) {
    for (const JsonValue& bench : benches->array) add_bench(bench);
  } else {
    add_bench(snapshot);
  }
  return metrics;
}

const double* find_metric(const std::vector<std::pair<std::string, double>>& metrics,
                          const std::string& key) {
  for (const auto& [name, value] : metrics) {
    if (name == key) return &value;
  }
  return nullptr;
}

struct DiffRow {
  std::string key;
  std::string verdict;  ///< "REGRESSION" | "improved" | "ok" | "info" | "added" | "removed"
  Direction direction = Direction::kNeutral;
  double baseline = 0.0;
  double candidate = 0.0;
  double rel_change = 0.0;  ///< (candidate - baseline) / |baseline|
};

struct DiffResult {
  std::vector<DiffRow> rows;
  std::size_t regressions = 0;
  std::size_t improvements = 0;
  std::size_t added = 0;
  std::size_t removed = 0;
};

DiffResult diff_snapshots(const JsonValue& baseline, const JsonValue& candidate,
                          double threshold) {
  const auto base = flatten(baseline);
  const auto cand = flatten(candidate);
  DiffResult result;
  for (const auto& [key, base_value] : base) {
    const double* cand_value = find_metric(cand, key);
    DiffRow row;
    row.key = key;
    row.baseline = base_value;
    row.direction = direction_of(key);
    if (cand_value == nullptr) {
      row.verdict = "removed";
      ++result.removed;
      result.rows.push_back(std::move(row));
      continue;
    }
    row.candidate = *cand_value;
    const double magnitude = std::fabs(base_value);
    // A near-zero baseline makes relative change meaningless; report only.
    if (magnitude < 1e-12) {
      row.verdict = "info";
      result.rows.push_back(std::move(row));
      continue;
    }
    row.rel_change = (row.candidate - row.baseline) / magnitude;
    const double bad = row.direction == Direction::kLowerBetter    ? row.rel_change
                       : row.direction == Direction::kHigherBetter ? -row.rel_change
                                                                   : 0.0;
    if (row.direction == Direction::kNeutral) {
      row.verdict = "info";
    } else if (bad > threshold) {
      row.verdict = "REGRESSION";
      ++result.regressions;
    } else if (bad < -threshold) {
      row.verdict = "improved";
      ++result.improvements;
    } else {
      row.verdict = "ok";
    }
    result.rows.push_back(std::move(row));
  }
  for (const auto& [key, value] : cand) {
    if (find_metric(base, key) == nullptr) {
      DiffRow row;
      row.key = key;
      row.candidate = value;
      row.direction = direction_of(key);
      row.verdict = "added";
      ++result.added;
      result.rows.push_back(std::move(row));
    }
  }
  return result;
}

const char* direction_name(Direction direction) {
  switch (direction) {
    case Direction::kLowerBetter: return "lower";
    case Direction::kHigherBetter: return "higher";
    case Direction::kNeutral: return "info";
  }
  return "?";
}

void print_result(const DiffResult& result, double threshold, bool markdown, bool all) {
  fftgrad::util::TableWriter table(
      {"metric", "better", "baseline", "candidate", "change", "verdict"});
  table.set_double_format("%.6g");
  std::size_t shown = 0;
  for (const DiffRow& row : result.rows) {
    const bool interesting = row.verdict == "REGRESSION" || row.verdict == "improved" ||
                             row.verdict == "added" || row.verdict == "removed";
    if (!all && !interesting) continue;
    char change[32];
    std::snprintf(change, sizeof(change), "%+.2f%%", row.rel_change * 100.0);
    table.add_row({row.key, direction_name(row.direction), row.baseline, row.candidate,
                   (row.verdict == "added" || row.verdict == "removed") ? "-" : change,
                   row.verdict});
    ++shown;
  }
  const std::string rendered = table.to_string();
  if (shown == 0) {
    std::cout << "(all " << result.rows.size() << " shared metrics within "
              << threshold * 100.0 << "% — rerun with --all for the full table)\n";
  } else if (!markdown) {
    std::cout << rendered;
  } else {
    // TableWriter's pipe layout needs only the Markdown separator row.
    const std::size_t eol = rendered.find('\n');
    std::cout << "|" << rendered.substr(0, eol) << "|\n|";
    for (char c : rendered.substr(0, eol)) std::cout << (c == '|' ? '|' : '-');
    std::cout << "|\n";
    for (std::size_t at = eol + 1; at < rendered.size();) {
      const std::size_t next = rendered.find('\n', at);
      const std::size_t end = next == std::string::npos ? rendered.size() : next;
      std::cout << "|" << rendered.substr(at, end - at) << "|\n";
      at = end + 1;
    }
  }
  std::cout << result.regressions << " regression(s), " << result.improvements
            << " improvement(s), " << result.added << " added, " << result.removed
            << " removed (threshold " << threshold * 100.0 << "%)\n";
}

JsonValue load_snapshot(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return fftgrad::telemetry::parse_json(buffer.str());
}

int selftest() {
  const char* baseline_json = R"({
    "benches": [
      {"bench": "fig02", "metrics": {"comm_ms": 100.0, "comm_share": 0.40}},
      {"bench": "fig16", "metrics": {"FFT.ranks8.iters_per_s": 50.0}}
    ]
  })";
  const char* slower_json = R"({
    "benches": [
      {"bench": "fig02", "metrics": {"comm_ms": 106.0, "comm_share": 0.40}},
      {"bench": "fig16", "metrics": {"FFT.ranks8.iters_per_s": 47.0, "new_metric": 1.0}}
    ]
  })";
  const JsonValue baseline = fftgrad::telemetry::parse_json(baseline_json);
  const JsonValue slower = fftgrad::telemetry::parse_json(slower_json);

  std::size_t failures = 0;
  const auto expect = [&failures](bool ok, const char* what) {
    if (!ok) {
      ++failures;
      std::cerr << "bench_diff: selftest failed: " << what << "\n";
    }
  };

  const DiffResult identical = diff_snapshots(baseline, baseline, 0.05);
  expect(identical.regressions == 0, "identical snapshots must pass the gate");
  expect(identical.added == 0 && identical.removed == 0,
         "identical snapshots must report no added/removed metrics");

  // 6% slowdown on comm_ms and 6% throughput drop on iters_per_s: both
  // must fire at the default 5% threshold, and new_metric is additive only.
  const DiffResult regressed = diff_snapshots(baseline, slower, 0.05);
  expect(regressed.regressions == 2, "6% moves past a 5% threshold must fire twice");
  expect(regressed.added == 1, "a new metric must be reported as added, not a failure");

  // The same snapshots pass with the threshold widened past the move.
  const DiffResult tolerant = diff_snapshots(baseline, slower, 0.10);
  expect(tolerant.regressions == 0, "a 10% threshold must tolerate a 6% move");

  // Direction heuristics on the names this repo actually emits.
  expect(direction_of("fig02.comm_ms") == Direction::kLowerBetter, "comm_ms is lower-better");
  expect(direction_of("fig16.FFT.ranks8.iters_per_s") == Direction::kHigherBetter,
         "iters_per_s is higher-better");
  expect(direction_of("fig14.SGD fp32.final_acc") == Direction::kHigherBetter,
         "final_acc is higher-better");
  expect(direction_of("fig02.comm_share") == Direction::kNeutral, "comm_share is neutral");
  expect(direction_of("fig14.SGD fp32.sim_wall_s") == Direction::kLowerBetter,
         "sim_wall_s is lower-better");

  if (failures == 0) {
    std::cout << "bench_diff: selftest ok\n";
    return 0;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  double threshold = 0.05;
  if (const char* env = std::getenv("FFTGRAD_BENCH_DIFF_TOL");
      env != nullptr && *env != '\0') {
    char* end = nullptr;
    const double parsed = std::strtod(env, &end);
    if (end != env && *end == '\0' && parsed >= 0.0) threshold = parsed;
  }
  bool markdown = false;
  bool all = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--selftest") {
      return selftest();
    } else if (arg == "--threshold" && i + 1 < argc) {
      threshold = std::atof(argv[++i]);
    } else if (arg == "--markdown" || arg == "-m") {
      markdown = true;
    } else if (arg == "--all") {
      all = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: bench_diff [--threshold X] [--markdown] [--all] "
                   "<baseline.json> <candidate.json>\n       bench_diff --selftest\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "bench_diff: unknown option '" << arg << "'\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) {
    std::cerr << "usage: bench_diff [--threshold X] [--markdown] [--all] "
                 "<baseline.json> <candidate.json>\n";
    return 2;
  }

  JsonValue baseline, candidate;
  try {
    baseline = load_snapshot(paths[0]);
    candidate = load_snapshot(paths[1]);
  } catch (const std::exception& error) {
    std::cerr << "bench_diff: " << error.what() << "\n";
    return 2;
  }

  const DiffResult result = diff_snapshots(baseline, candidate, threshold);
  if (result.rows.empty()) {
    std::cerr << "bench_diff: no numeric metrics found in '" << paths[0] << "'\n";
    return 2;
  }
  std::cout << "baseline " << paths[0] << " (sha " << baseline.string_or("git_sha", "?")
            << ") vs candidate " << paths[1] << " (sha "
            << candidate.string_or("git_sha", "?") << ")\n";
  print_result(result, threshold, markdown, all);
  return result.regressions > 0 ? 1 : 0;
}
