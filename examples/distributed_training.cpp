// Distributed training end-to-end: train the same model on a simulated
// 8-rank FDR InfiniBand cluster with lossless SGD and with the FFT
// compressor, and compare accuracy and simulated wall time — the workflow
// behind the paper's Fig 14 / Table 2, at example scale.
//
// Build & run:  ./build/examples/distributed_training
//
// Run ledger:  FFTGRAD_LEDGER=train.jsonl ./build/examples/distributed_training
// records each of the three runs as its own ledger run (manifest +
// per-iteration rows + summary); `run_report train.jsonl` then prints the
// per-phase breakdown, the model-error table per collective, and a
// cross-run diff of the three codecs. FFTGRAD_LEDGER_* tune the
// health-monitor thresholds (see README.md).
#include <cstdio>
#include <memory>

#include "fftgrad/core/baseline_compressors.h"
#include "fftgrad/core/error_feedback.h"
#include "fftgrad/core/fft_compressor.h"
#include "fftgrad/core/trainer.h"
#include "fftgrad/nn/models.h"
#include "fftgrad/telemetry/telemetry.h"

int main() {
  fftgrad::telemetry::init_from_env();
  using namespace fftgrad;
  if (telemetry::RunLedger::global().enabled()) {
    std::printf("run ledger active; aggregate afterwards with:  "
                "./build/examples/run_report \"$FFTGRAD_LEDGER\"\n");
  }

  util::Rng rng(7);
  core::TrainerConfig cfg;
  cfg.ranks = 8;
  cfg.batch_per_rank = 16;
  cfg.epochs = 8;
  cfg.iters_per_epoch = 20;
  cfg.test_size = 512;
  // Charge communication as if the gradient were AlexNet's 250MB and
  // compute as one paper-scale GPU iteration; accuracy remains genuine.
  cfg.paper_scale = core::PaperScale{.raw_gradient_bytes = 250e6, .compute_seconds = 0.060};

  core::DistributedTrainer trainer(nn::models::make_mlp(32, 64, 3, 5, rng),
                                   nn::SyntheticDataset({32}, 5, 99), cfg);
  nn::StepLrSchedule lr({{0, 0.03f}, {5, 0.01f}});

  std::puts("training with lossless SGD (fp32 allgather)...");
  const core::TrainResult sgd = trainer.train(
      [](std::size_t) { return std::make_unique<core::NoopCompressor>(); },
      core::FixedTheta(0.0), lr);

  std::puts("training with FFT compression (theta=0.85, 10-bit range float)...");
  const core::TrainResult fft = trainer.train(
      [](std::size_t) {
        return std::make_unique<core::FftCompressor>(
            core::FftCompressorOptions{.theta = 0.85, .quantizer_bits = 10});
      },
      core::FixedTheta(0.85), lr);

  std::puts("training with FFT + error feedback (same wire ratio)...");
  const core::TrainResult fft_ef = trainer.train(
      [](std::size_t) {
        return std::make_unique<core::ErrorFeedbackCompressor>(
            std::make_unique<core::FftCompressor>(
                core::FftCompressorOptions{.theta = 0.85, .quantizer_bits = 10}));
      },
      core::FixedTheta(0.85), lr);

  std::printf("\n%-28s %12s %14s %12s\n", "method", "final acc", "sim wall (s)", "wire ratio");
  auto row = [](const char* label, const core::TrainResult& r, double ratio_value) {
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.1fx", ratio_value);
    std::printf("%-28s %12.4f %14.2f %12s\n", label, r.final_accuracy, r.total_sim_time_s,
                ratio);
  };
  row("SGD fp32", sgd, 1.0);
  row("FFT (theta=0.85, 10bit)", fft, fft.epochs.back().mean_ratio);
  row("FFT + error feedback", fft_ef, fft_ef.epochs.back().mean_ratio);
  std::printf("\nspeedup from compression: %.2fx; accuracy delta %+.4f (plain), %+.4f (with\n"
              "error feedback — the residual re-injects what compression drops)\n",
              sgd.total_sim_time_s / fft.total_sim_time_s,
              fft.final_accuracy - sgd.final_accuracy,
              fft_ef.final_accuracy - sgd.final_accuracy);
  return 0;
}
