// trace_analyze: critical-path report over an exported Chrome trace.
//
//   trace_analyze [options] <trace.json> [<baseline-trace.json>]
//
// Loads the cp events of the newest simulated session from a Chrome
// trace-event JSON file (FFTGRAD_TRACE export), runs the cross-rank
// critical-path analyzer, and prints the report: per-iteration category
// attribution (sums to the simulated end-to-end time), the overlap upper
// bounds, and the per-rank busy/idle "flame" summary. With a second trace
// the tool appends a cross-run diff (category and bound deltas of the
// first trace versus the baseline).
//
// Options:
//   --markdown, -m     emit Markdown instead of aligned plain text
//   --session N        analyze simulated session N instead of the newest
//   --ledger <path>    reconcile comm-on-path against the run ledger's
//                      charged collective costs (uses the file's last run)
//   --check            run the structural validator (contiguity, 1e-6
//                      category sum, happens-before support) and fail if
//                      any problem is found
//
// Exit status: 0 on success, 1 on unreadable input, an empty trace, or —
// with --check — a validation problem.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "fftgrad/analysis/critpath_check.h"
#include "fftgrad/telemetry/critical_path.h"
#include "fftgrad/telemetry/ledger.h"

namespace {

void print_usage(std::ostream& out) {
  out << "usage: trace_analyze [--markdown] [--session N] [--ledger <ledger.jsonl>]\n"
         "                     [--check] <trace.json> [<baseline-trace.json>]\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fftgrad;

  bool markdown = false;
  bool check = false;
  std::int64_t session = -1;
  std::string ledger_path;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--markdown" || arg == "-m") {
      markdown = true;
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--session" && i + 1 < argc) {
      session = std::atoll(argv[++i]);
    } else if (arg == "--ledger" && i + 1 < argc) {
      ledger_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "trace_analyze: unknown option '" << arg << "'\n";
      print_usage(std::cerr);
      return 1;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty() || paths.size() > 2) {
    print_usage(std::cerr);
    return 1;
  }

  std::vector<telemetry::CpEvent> events;
  try {
    events = telemetry::cp_events_from_chrome_json(paths[0], session);
  } catch (const std::exception& error) {
    std::cerr << "trace_analyze: " << paths[0] << ": " << error.what() << "\n";
    return 1;
  }
  if (events.empty()) {
    std::cerr << "trace_analyze: " << paths[0]
              << ": no simulated cp events (was the run traced with "
                 "FFTGRAD_TRACE or FFTGRAD_CRITPATH set?)\n";
    return 1;
  }
  const telemetry::CpAnalysis analysis = telemetry::analyze_critical_path(events);
  std::cout << telemetry::render_critpath_report(analysis, markdown);

  if (paths.size() == 2) {
    std::vector<telemetry::CpEvent> baseline_events;
    try {
      baseline_events = telemetry::cp_events_from_chrome_json(paths[1], session);
    } catch (const std::exception& error) {
      std::cerr << "trace_analyze: " << paths[1] << ": " << error.what() << "\n";
      return 1;
    }
    const telemetry::CpAnalysis baseline = telemetry::analyze_critical_path(baseline_events);
    std::cout << telemetry::render_critpath_diff(baseline, analysis, markdown);
  }

  if (!ledger_path.empty()) {
    std::vector<telemetry::LedgerRun> runs;
    try {
      runs = telemetry::read_ledger_file(ledger_path);
    } catch (const std::exception& error) {
      std::cerr << "trace_analyze: " << ledger_path << ": " << error.what() << "\n";
      return 1;
    }
    if (runs.empty()) {
      std::cerr << "trace_analyze: " << ledger_path << ": no runs in ledger\n";
      return 1;
    }
    const telemetry::CpLedgerReconcile reconcile =
        telemetry::reconcile_with_ledger(analysis, runs.back());
    if (markdown) {
      std::cout << "\n## Ledger reconciliation\n\n";
    } else {
      std::cout << "\n=== Ledger reconciliation ===\n";
    }
    if (!reconcile.compared) {
      std::cout << "(ledger run has no collective rows to reconcile against)\n";
    } else {
      std::printf(
          "ledger charged %.9f s, comm on path %.9f s, |diff| %.9f s (rel %.6f)\n",
          reconcile.ledger_charged_s, reconcile.path_comm_s, reconcile.abs_diff_s,
          reconcile.rel_diff);
    }
  }

  int status = 0;
  if (check) {
    const std::vector<std::string> problems =
        analysis::validate_critical_path(analysis, events);
    for (const std::string& problem : problems) {
      std::cerr << "trace_analyze: check: " << problem << "\n";
    }
    if (problems.empty()) {
      std::cout << "\ncheck: critical path is structurally valid ("
                << analysis.iterations.size() << " iterations, category sums within 1e-6)\n";
    } else {
      status = 1;
    }
  }
  for (const std::string& problem : analysis.problems) {
    std::cerr << "trace_analyze: warning: " << problem << "\n";
  }
  return status;
}
