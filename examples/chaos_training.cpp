// Chaos training: the fault-injection harness end to end on a real
// 8-rank BSP cluster. The fault plan combines the three failure modes the
// harness models:
//
//   * a lossy fabric — 2% of packet transmissions drop and 1% arrive with
//     flipped bits (the CRC-framed wire format detects every flip, and the
//     bounded retransmit/backoff loop recovers most of them, charged to
//     the simulated clock through the NetworkModel);
//   * one straggler — rank 5 runs 50ms/op slow for a stretch; the 10ms
//     straggler timeout lets the survivors proceed without it instead of
//     absorbing the full delay;
//   * one mid-run crash with recovery — rank 2 dies at iteration 30; the
//     remaining 7 ranks renormalize the gradient average and keep going,
//     and at op 44 the membership handshake re-admits it: the lowest live
//     rank ships a CRC-framed state blob (params, momentum, EF residual,
//     controller state) over the modelled network and the rejoiner replays
//     its RNG stream, ending bit-identical to the survivors.
//
// The recovery controller is armed too (FFTGRAD_RECOVERY semantics, here
// set in code), so monitor conditions would map to automatic remedies —
// on this healthy-codec run it stays idle, which is itself the point.
//
// The same schedule runs once fault-free for comparison. Both runs print a
// loss trace, and the fault counters show what the chaos actually cost.
//
// Build & run:  ./build/examples/chaos_training
//
// Run ledger:  FFTGRAD_LEDGER=chaos.jsonl ./build/examples/chaos_training
// writes one JSONL row per iteration for both runs — predicted-vs-charged
// collective cost (the faulty run's gap is the sampled retransmit cost the
// RetryPolicy expectation terms reconcile), round-trip quality, EF
// residual norm — which `run_report chaos.jsonl` turns into a report.
// FFTGRAD_LEDGER_* tune the health-monitor thresholds (see README.md).
#include <cmath>
#include <cstdio>
#include <memory>

#include "fftgrad/core/baseline_compressors.h"
#include "fftgrad/core/cluster_trainer.h"
#include "fftgrad/core/error_feedback.h"
#include "fftgrad/core/fft_compressor.h"
#include "fftgrad/nn/loss.h"
#include "fftgrad/nn/models.h"
#include "fftgrad/telemetry/metrics.h"
#include "fftgrad/telemetry/telemetry.h"

int main() {
  fftgrad::telemetry::init_from_env();
  using namespace fftgrad;
  if (telemetry::RunLedger::global().enabled()) {
    std::printf("run ledger active; aggregate afterwards with:  "
                "./build/examples/run_report \"$FFTGRAD_LEDGER\"\n");
  }

  constexpr std::size_t kRanks = 8;
  constexpr std::size_t kIterations = 60;

  const auto model_factory = [] {
    util::Rng rng(999);
    return nn::models::make_mlp(16, 32, 2, 3, rng);
  };
  const auto codec_factory = [](std::size_t) {
    return std::make_unique<core::ErrorFeedbackCompressor>(
        std::make_unique<core::FftCompressor>(
            core::FftCompressorOptions{.theta = 0.5, .quantizer_bits = 10}));
  };
  nn::SyntheticDataset data({16}, 3, 23);

  core::ClusterTrainConfig cfg;
  cfg.ranks = kRanks;
  cfg.iterations = kIterations;
  cfg.learning_rate = 0.05f;
  cfg.seed = 17;
  // Modelled per-phase compute charged to the simulated clocks, so a
  // FFTGRAD_CRITPATH/FFTGRAD_TRACE run attributes every simulated second
  // (backprop, codec stages, wire+CRC, collective, retries, straggler
  // waits) instead of seeing a comm-only timeline.
  cfg.sim_compute = core::SimComputeModel{.forward_s = util::SimSeconds(2e-3),
                                          .backward_s = util::SimSeconds(4e-3),
                                          .fft_s = util::SimSeconds(1.5e-3),
                                          .quant_pack_s = util::SimSeconds(0.5e-3),
                                          .wire_crc_s = util::SimSeconds(0.3e-3),
                                          .inverse_fft_s = util::SimSeconds(1.0e-3),
                                          .dequant_s = util::SimSeconds(0.4e-3),
                                          .apply_s = util::SimSeconds(0.6e-3)};

  const auto accuracy_of = [&](const std::vector<float>& params) {
    nn::Network net = model_factory();
    net.set_params(params);
    const nn::Batch test = data.test_set(512);
    return nn::accuracy(net.forward(test.inputs), test.labels);
  };

  // Fault-free reference on the identical schedule.
  comm::SimCluster clean_cluster(comm::NetworkModel::ethernet_10g());
  const core::ClusterTrainResult clean =
      core::cluster_train(clean_cluster, cfg, model_factory, codec_factory, data);

  // The chaos plan.
  comm::FaultPlan plan;
  plan.seed = 2020;
  plan.drop_prob = 0.02;
  plan.corrupt_prob = 0.01;
  plan.straggler_timeout_s = util::SimSeconds(0.01);
  // The armed recovery controller adds one flag allreduce per iteration,
  // so with it on, iteration i spans ops 2i and 2i+1 — the plan's op
  // numbers below are 2x the iteration numbers in the story above.
  plan.stragglers.push_back(
      {.rank = 5, .slowdown_s = util::SimSeconds(0.05), .from_op = 20, .until_op = 50});
  plan.crashes.push_back({.rank = 2, .at_op = 60, .rejoin_at_op = 88});

  telemetry::MetricsRegistry& metrics = telemetry::MetricsRegistry::global();
  metrics.reset();
  metrics.set_enabled(true);
  comm::SimCluster chaos_cluster(comm::NetworkModel::ethernet_10g(), plan);
  core::ClusterTrainConfig chaos_cfg = cfg;
  chaos_cfg.recovery.enabled = true;  // arm the monitor-driven remediation
  const core::ClusterTrainResult chaos =
      core::cluster_train(chaos_cluster, chaos_cfg, model_factory, codec_factory, data);
  metrics.set_enabled(false);

  std::printf("8-rank BSP training, FFT codec with error feedback, %zu iterations\n",
              kIterations);
  std::printf("chaos plan: 2%% drop, 1%% corruption, rank 5 straggles iters 10-25 "
              "(10ms timeout), rank 2 crashes at iter 30 and rejoins at iter 44\n\n");

  std::printf("%-6s %14s %14s\n", "iter", "clean loss", "chaos loss");
  for (std::size_t i = 0; i < kIterations; i += 6) {
    const char* note = "";
    if (i == 30) note = "   <- rank 2 crashed; 7 survivors continue";
    if (i == 48) note = "   <- rank 2 back since iter 44 (peer state transfer)";
    std::printf("%-6zu %14.4f %14.4f%s\n", i, clean.mean_loss_trace[i],
                chaos.mean_loss_trace[i], note);
  }

  std::printf("\nfault counters:\n");
  const char* names[] = {"fault.retransmits",       "fault.retransmit_bytes",
                         "fault.recovery_seconds",  "fault.deliveries_failed",
                         "fault.straggle_seconds",  "fault.late_contributions",
                         "fault.rank_crashes",      "fault.state_transfer_bytes",
                         "trainer.peers_skipped",   "trainer.degraded_iterations"};
  for (const char* name : names) {
    std::printf("  %-28s %12.6g\n", name, metrics.counter(name).value());
  }

  std::printf("\n%-28s %10s %10s\n", "", "clean", "chaos");
  std::printf("%-28s %10.4f %10.4f\n", "final accuracy", accuracy_of(clean.final_params),
              accuracy_of(chaos.final_params));
  std::printf("%-28s %10.4f %10.4f\n", "sim time (s, rank 0)", clean.rank_sim_times[0],
              chaos.rank_sim_times[0]);
  std::printf("%-28s %10zu %10zu\n", "crashed ranks", clean.crashed_ranks,
              chaos.crashed_ranks);
  std::printf("%-28s %10zu %10zu\n", "rejoined ranks", clean.rejoined_ranks,
              chaos.rejoined_ranks);
  std::printf("%-28s %10zu %10zu\n", "remediations applied", clean.remediations,
              chaos.remediations);
  std::printf("%-28s %10s %10s\n", "surviving replicas identical",
              clean.replicas_identical ? "yes" : "no",
              chaos.replicas_identical ? "yes" : "no");
  std::printf("\nDegradation stayed graceful: every fault became a skipped "
              "contribution, a charged recovery, or a bounded outage ended by "
              "the rejoin handshake — never a hang or divergence.\n");
  return 0;
}
