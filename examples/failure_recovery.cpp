// Failure recovery (the paper's Sec 4.1 recipe): an over-aggressive
// compression ratio (theta = 0.9) visibly stalls training; dropping theta
// mid-run — as Theorem 3.5 prescribes — pulls accuracy back to the SGD
// baseline within the same epoch budget. This example reproduces that
// recovery on a small model and prints the three accuracy traces.
//
// Build & run:  ./build/examples/failure_recovery
#include <cstdio>
#include <memory>

#include "fftgrad/core/baseline_compressors.h"
#include "fftgrad/core/fft_compressor.h"
#include "fftgrad/core/trainer.h"
#include "fftgrad/nn/models.h"
#include "fftgrad/telemetry/telemetry.h"

int main() {
  fftgrad::telemetry::init_from_env();
  using namespace fftgrad;

  constexpr std::size_t kEpochs = 12;
  constexpr std::size_t kDrop = 6;

  util::Rng rng(11);
  core::TrainerConfig cfg;
  cfg.ranks = 4;
  cfg.batch_per_rank = 16;
  cfg.epochs = kEpochs;
  cfg.iters_per_epoch = 25;
  cfg.test_size = 512;
  core::DistributedTrainer trainer(nn::models::make_mlp(32, 64, 3, 5, rng),
                                   nn::SyntheticDataset({32}, 5, 12), cfg);
  nn::StepLrSchedule lr({{0, 0.03f}, {kDrop, 0.01f}});

  auto fft = [](std::size_t) {
    return std::make_unique<core::FftCompressor>(
        core::FftCompressorOptions{.theta = 0.9, .quantizer_bits = 0});
  };

  const core::TrainResult baseline = trainer.train(
      [](std::size_t) { return std::make_unique<core::NoopCompressor>(); },
      core::FixedTheta(0.0), lr);
  const core::TrainResult failing = trainer.train(fft, core::FixedTheta(0.9), lr);
  const core::TrainResult recovered =
      trainer.train(fft, core::StepTheta(0.9, 0.0, kDrop), lr);

  std::printf("%-6s %12s %16s %18s\n", "epoch", "SGD acc", "theta=0.9 acc",
              "theta 0.9->0 acc");
  for (std::size_t e = 0; e < kEpochs; ++e) {
    std::printf("%-6zu %12.4f %16.4f %18.4f%s\n", e, baseline.epochs[e].test_accuracy,
                failing.epochs[e].test_accuracy, recovered.epochs[e].test_accuracy,
                e == kDrop ? "   <- theta dropped to 0 here" : "");
  }
  std::printf("\nfinal: SGD %.4f | stuck at theta=0.9 %.4f | recovered %.4f\n",
              baseline.final_accuracy, failing.final_accuracy, recovered.final_accuracy);
  std::printf("recovery closed %.0f%% of the gap to SGD.\n",
              100.0 * (recovered.final_accuracy - failing.final_accuracy) /
                  std::max(1e-9, baseline.final_accuracy - failing.final_accuracy));
  return 0;
}
