// Command-line codec driver: build any compressor from a string spec, run
// it over a gradient (from a raw float32 file, or a sampled DNN training
// gradient when no file is given), and report ratio/error statistics.
//
//   ./build/examples/codec_cli "fft:theta=0.85,bits=10"
//   ./build/examples/codec_cli "ef[topk:theta=0.95]" my_gradient.f32
//   ./build/examples/codec_cli "chunked:65536[fft:theta=0.9,bits=8]"
//
// Spec grammar: see src/core/include/fftgrad/core/registry.h.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "fftgrad/core/compression_stats.h"
#include "fftgrad/core/registry.h"
#include "fftgrad/nn/gradient_sampler.h"
#include "fftgrad/util/stats.h"
#include "fftgrad/telemetry/telemetry.h"

namespace {

std::vector<float> load_floats(const char* path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error(std::string("cannot open ") + path);
  const auto bytes = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::vector<float> data(bytes / sizeof(float));
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(data.size() * sizeof(float)));
  return data;
}

}  // namespace

int main(int argc, char** argv) {
  fftgrad::telemetry::init_from_env();
  using namespace fftgrad;
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <compressor-spec> [gradient.f32]\n", argv[0]);
    std::fprintf(stderr, "known algorithms:");
    for (const std::string& name : core::known_compressors()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, "\nexample: %s \"fft:theta=0.85,bits=10\"\n", argv[0]);
    return 2;
  }

  try {
    std::unique_ptr<core::GradientCompressor> codec = core::make_compressor(argv[1]);
    std::vector<float> gradient;
    if (argc >= 3) {
      gradient = load_floats(argv[2]);
      std::printf("gradient: %zu floats from %s\n", gradient.size(), argv[2]);
    } else {
      gradient = nn::sample_training_gradient(
          {.source = nn::GradientSource::kConvNet, .warm_iters = 10});
      std::printf("gradient: %zu floats sampled from a training conv net\n", gradient.size());
    }
    if (gradient.empty()) {
      std::fprintf(stderr, "error: empty gradient\n");
      return 1;
    }

    std::vector<float> reconstructed;
    const core::RoundTripStats stats = core::measure_round_trip(*codec, gradient, reconstructed);
    const util::Summary original = util::summarize(gradient);

    std::printf("codec            : %s\n", codec->name().c_str());
    std::printf("raw bytes        : %zu\n", gradient.size() * sizeof(float));
    std::printf("wire bytes       : %zu\n", stats.wire_bytes);
    std::printf("compression ratio: %.2fx\n", stats.ratio);
    std::printf("alpha (rel. err) : %.4f\n", stats.alpha);
    std::printf("rms error        : %.3e (gradient stddev %.3e)\n", stats.rms_error,
                original.stddev);
    std::printf("max error        : %.3e\n", stats.max_error);
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
