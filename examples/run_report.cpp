// run_report: aggregate one or more run-ledger JSONL files into a
// terminal or Markdown report.
//
//   run_report [--markdown] <ledger.jsonl> [more.jsonl ...]
//
// Per run: the manifest line, a per-phase time breakdown (mean seconds per
// iteration), a model-error table per collective kind (predicted vs.
// charged totals, relative error, retries/failures), and a health summary
// (alert counts per monitor). With two or more runs, a cross-run diff
// compares final loss, total simulated time, and mean alpha between the
// first run and each later one.
//
// With --profile <file.folded> (output of FFTGRAD_PROFILE=1, see
// fftgrad/telemetry/profiler.h) a `Hot paths` section is appended: the
// ranked host self-time table plus a cross-reference of host self-time
// shares against the simulated critical-path categories of the first
// ledger run (when one carries a critpath row). --check-profile
// additionally validates the folded file — parseable, at least one
// sample, render/parse round-trip stable — and fails the exit status when
// it is not; the profile can also be inspected standalone, with no ledger
// arguments at all.
//
// Exit status: 0 on success, 1 on unreadable/invalid input. Schema
// problems found by validate_ledger are printed but only warn — a
// truncated run (no summary row) still reports its surviving prefix.
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "fftgrad/telemetry/ledger.h"
#include "fftgrad/telemetry/profiler.h"
#include "fftgrad/util/table.h"

namespace {

using fftgrad::telemetry::JsonValue;
using fftgrad::telemetry::LedgerRun;

struct RunDigest {
  std::string source;
  std::string trainer;
  std::string compressor;
  std::size_t iterations = 0;
  double final_loss = 0.0;
  double sim_time_s = 0.0;
  double mean_alpha = 0.0;
  double mean_ratio = 0.0;
  std::size_t alerts = 0;
  /// Flattened numeric fields of the summary + critpath rows ("dotted"
  /// keys), compared key-wise in the cross-run diff. Runs from different
  /// code versions may carry different keys; the diff reports those as
  /// added/removed instead of erroring.
  std::vector<std::pair<std::string, double>> metrics;
};

/// Recursively collect every numeric field of `row` under dotted keys
/// ("collectives.allgather.charged_s"). Bookkeeping fields that never
/// compare meaningfully across runs are skipped.
void flatten_numbers(const JsonValue& row, const std::string& prefix,
                     std::vector<std::pair<std::string, double>>& out) {
  for (const auto& [key, value] : row.object) {
    if (key == "type" || key == "run") continue;  // row bookkeeping, never comparable

    const std::string path = prefix.empty() ? key : prefix + "." + key;
    if (value.kind == JsonValue::Kind::kNumber) {
      out.emplace_back(path, value.number);
    } else if (value.kind == JsonValue::Kind::kObject) {
      flatten_numbers(value, path, out);
    }
  }
}

const double* find_metric(const std::vector<std::pair<std::string, double>>& metrics,
                          const std::string& key) {
  for (const auto& [name, value] : metrics) {
    if (name == key) return &value;
  }
  return nullptr;
}

double number_of(const JsonValue& row, const std::string& key) {
  return row.number_or(key, 0.0);
}

/// Mean of a numeric field over iteration rows (0 when there are none).
double mean_over(const std::vector<JsonValue>& rows, const char* object_key, const char* key) {
  if (rows.empty()) return 0.0;
  double sum = 0.0;
  for (const JsonValue& row : rows) {
    const JsonValue* holder = object_key == nullptr ? &row : row.find(object_key);
    if (holder != nullptr) sum += holder->number_or(key, 0.0);
  }
  return sum / static_cast<double>(rows.size());
}

void print_heading(bool markdown, const std::string& text) {
  if (markdown) {
    std::cout << "\n## " << text << "\n\n";
  } else {
    std::cout << "\n=== " << text << " ===\n";
  }
}

void print_table(bool markdown, const fftgrad::util::TableWriter& table) {
  // TableWriter's pipe-separated layout is already valid Markdown except
  // for the header separator row; synthesize one by echoing the header.
  const std::string rendered = table.to_string();
  if (!markdown) {
    std::cout << rendered;
    return;
  }
  const std::size_t eol = rendered.find('\n');
  if (eol == std::string::npos) {
    std::cout << rendered;
    return;
  }
  std::cout << "|" << rendered.substr(0, eol) << "|\n|";
  for (char c : rendered.substr(0, eol)) std::cout << (c == '|' ? '|' : '-');
  std::cout << "|\n";
  for (std::size_t at = eol + 1; at < rendered.size();) {
    const std::size_t next = rendered.find('\n', at);
    const std::size_t end = next == std::string::npos ? rendered.size() : next;
    std::cout << "|" << rendered.substr(at, end - at) << "|\n";
    at = end + 1;
  }
}

RunDigest report_run(const LedgerRun& run, const std::string& source, bool markdown) {
  RunDigest digest;
  digest.source = source;
  digest.trainer = run.manifest.string_or("trainer", "?");
  digest.compressor = run.manifest.string_or("compressor", "?");
  digest.iterations = run.iterations.size();
  digest.alerts = run.alerts.size();

  print_heading(markdown, digest.trainer + " / " + digest.compressor + " (" + source + ")");
  const JsonValue* network = run.manifest.find("network");
  std::cout << "ranks=" << static_cast<long long>(number_of(run.manifest, "ranks"))
            << " seed=" << static_cast<long long>(number_of(run.manifest, "seed"))
            << " network=" << (network != nullptr ? network->string_or("name", "?") : "?")
            << " fault_rate=" << number_of(run.manifest, "fault_rate")
            << " preset=" << run.manifest.string_or("preset", "?") << "\n";
  // Flatten before the cut-off-run early return: a run with a summary but
  // no iteration rows still participates in the key-wise cross-run diff.
  flatten_numbers(run.summary, "", digest.metrics);
  flatten_numbers(run.critpath, "critpath", digest.metrics);
  if (run.iterations.empty()) {
    std::cout << "(no iteration rows — run was cut off before the first step)\n";
    return digest;
  }

  const JsonValue& last = run.iterations.back();
  digest.final_loss = number_of(last, "loss");
  digest.sim_time_s = number_of(last, "sim_time_s");
  digest.mean_alpha = mean_over(run.iterations, "roundtrip", "alpha");
  digest.mean_ratio = mean_over(run.iterations, "roundtrip", "ratio");

  print_heading(markdown, "Per-phase breakdown (mean s/iter)");
  {
    fftgrad::util::TableWriter table(
        {"forward", "backward", "compress", "decompress", "sim_total"});
    table.set_double_format("%.3e");
    table.add_row({mean_over(run.iterations, "phases", "forward_s"),
                   mean_over(run.iterations, "phases", "backward_s"),
                   mean_over(run.iterations, "phases", "compress_s"),
                   mean_over(run.iterations, "phases", "decompress_s"),
                   digest.sim_time_s / static_cast<double>(run.iterations.size())});
    print_table(markdown, table);
  }

  // Model-error table: per collective kind, predicted vs charged totals
  // over every iteration row (recomputed from the rows rather than trusting
  // the summary, so truncated runs still report).
  print_heading(markdown, "Model vs measured per collective");
  {
    struct KindAgg {
      double predicted = 0.0, charged = 0.0, paper = 0.0;
      std::uint64_t count = 0, retries = 0, failed = 0;
    };
    std::vector<std::pair<std::string, KindAgg>> kinds;
    for (const JsonValue& row : run.iterations) {
      const JsonValue* collectives = row.find("collectives");
      if (collectives == nullptr) continue;
      for (const JsonValue& c : collectives->array) {
        const std::string kind = c.string_or("kind", "?");
        KindAgg* agg = nullptr;
        for (auto& [name, a] : kinds) {
          if (name == kind) agg = &a;
        }
        if (agg == nullptr) {
          kinds.emplace_back(kind, KindAgg{});
          agg = &kinds.back().second;
        }
        agg->predicted += number_of(c, "predicted_s");
        agg->charged += number_of(c, "charged_s");
        agg->paper += number_of(c, "paper_model_s");
        agg->count += 1;
        agg->retries += static_cast<std::uint64_t>(number_of(c, "retries"));
        agg->failed += static_cast<std::uint64_t>(number_of(c, "failed"));
      }
    }
    fftgrad::util::TableWriter table({"collective", "compressor", "count", "predicted_s",
                                      "charged_s", "rel_error", "paper_eq2_s", "retries",
                                      "failed"});
    table.set_double_format("%.6g");
    for (const auto& [kind, agg] : kinds) {
      const double rel = agg.predicted > 0.0
                             ? std::fabs(agg.charged - agg.predicted) / agg.predicted
                             : 0.0;
      table.add_row({kind, digest.compressor, static_cast<long long>(agg.count),
                     agg.predicted, agg.charged, rel, agg.paper,
                     static_cast<long long>(agg.retries),
                     static_cast<long long>(agg.failed)});
    }
    print_table(markdown, table);
  }

  print_heading(markdown, "Health summary");
  {
    fftgrad::util::TableWriter table({"monitor", "alerts", "first_iter", "detail"});
    std::vector<std::pair<std::string, std::pair<std::size_t, double>>> monitors;
    std::vector<std::string> first_message;
    for (const JsonValue& alert : run.alerts) {
      const std::string monitor = alert.string_or("monitor", "?");
      bool found = false;
      for (std::size_t i = 0; i < monitors.size(); ++i) {
        if (monitors[i].first == monitor) {
          ++monitors[i].second.first;
          found = true;
        }
      }
      if (!found) {
        monitors.push_back({monitor, {1, number_of(alert, "iter")}});
        first_message.push_back(alert.string_or("message", ""));
      }
    }
    if (monitors.empty()) {
      std::cout << (markdown ? "All monitors quiet.\n" : "all monitors quiet\n");
    } else {
      for (std::size_t i = 0; i < monitors.size(); ++i) {
        table.add_row({monitors[i].first, static_cast<long long>(monitors[i].second.first),
                       monitors[i].second.second, first_message[i]});
      }
      print_table(markdown, table);
    }
  }
  // Elastic-recovery summary: the controller's automatic remediations
  // grouped by cause/action, and the rejoin state transfers reconciled
  // against the network model. Printed only when the run saw either —
  // fault-free ledgers keep the old report shape byte for byte.
  {
    struct RemedyAgg {
      std::uint64_t count = 0, unrecovered = 0;
      double cost_s = 0.0, iters_to_recover = 0.0;
    };
    std::vector<std::pair<std::string, RemedyAgg>> remedies;  // "cause -> action"
    for (const JsonValue& row : run.remediations) {
      const std::string key =
          row.string_or("cause", "?") + " -> " + row.string_or("action", "?");
      RemedyAgg* agg = nullptr;
      for (auto& [name, a] : remedies) {
        if (name == key) agg = &a;
      }
      if (agg == nullptr) {
        remedies.emplace_back(key, RemedyAgg{});
        agg = &remedies.back().second;
      }
      agg->count += 1;
      agg->cost_s += number_of(row, "cost_s");
      agg->iters_to_recover += number_of(row, "iterations_to_recover");
      const JsonValue* recovered = row.find("recovered");
      if (recovered != nullptr && !recovered->boolean) agg->unrecovered += 1;
    }

    double transfer_predicted = 0.0, transfer_charged = 0.0, transfer_bytes = 0.0;
    std::uint64_t transfers = 0, transfer_failed = 0;
    for (const JsonValue& row : run.iterations) {
      const JsonValue* collectives = row.find("collectives");
      if (collectives == nullptr) continue;
      for (const JsonValue& c : collectives->array) {
        if (c.string_or("kind", "?") != "state_transfer") continue;
        transfers += 1;
        transfer_predicted += number_of(c, "predicted_s");
        transfer_charged += number_of(c, "charged_s");
        transfer_bytes += number_of(c, "bytes");
        transfer_failed += static_cast<std::uint64_t>(number_of(c, "failed"));
      }
    }

    if (!remedies.empty() || transfers > 0) {
      print_heading(markdown, "Elastic recovery");
      if (!remedies.empty()) {
        fftgrad::util::TableWriter table({"cause -> action", "count", "cost_s",
                                          "mean_iters_to_recover", "unrecovered"});
        table.set_double_format("%.6g");
        for (const auto& [key, agg] : remedies) {
          table.add_row({key, static_cast<long long>(agg.count), agg.cost_s,
                         agg.iters_to_recover / static_cast<double>(agg.count),
                         static_cast<long long>(agg.unrecovered)});
        }
        print_table(markdown, table);
      }
      if (transfers > 0) {
        const double rel = transfer_predicted > 0.0
                               ? std::fabs(transfer_charged - transfer_predicted) /
                                     transfer_predicted
                               : 0.0;
        std::cout << "rejoin state transfers: " << transfers << " ("
                  << transfer_bytes / 1024.0 << " KiB), predicted "
                  << transfer_predicted << " s vs charged " << transfer_charged
                  << " s (rel error " << rel << "), failed " << transfer_failed << "\n";
      }
    }
  }
  // Critical-path row (written by the analyzer when FFTGRAD_CRITPATH is
  // set — see fftgrad/telemetry/critical_path.h). Older ledgers have none.
  if (run.critpath.kind == JsonValue::Kind::kObject) {
    print_heading(markdown, "Critical path");
    std::cout << "e2e " << number_of(run.critpath, "e2e_s") << " s over "
              << static_cast<long long>(number_of(run.critpath, "iterations"))
              << " iterations, comm share " << number_of(run.critpath, "comm_share")
              << ", overlap bound " << number_of(run.critpath, "overlap_bound_s")
              << " s, pipeline bound " << number_of(run.critpath, "pipeline_bound_s")
              << " s\n";
    const JsonValue* categories = run.critpath.find("categories");
    if (categories != nullptr && !categories->object.empty()) {
      fftgrad::util::TableWriter table({"category", "on_path_s", "share"});
      table.set_double_format("%.6g");
      const double e2e = number_of(run.critpath, "e2e_s");
      for (const auto& [name, value] : categories->object) {
        if (value.kind != JsonValue::Kind::kNumber) continue;
        table.add_row({name, value.number, e2e > 0.0 ? value.number / e2e : 0.0});
      }
      print_table(markdown, table);
    }
  }
  std::cout << "final loss " << digest.final_loss << ", mean alpha " << digest.mean_alpha
            << ", mean ratio " << digest.mean_ratio << "x, simulated " << digest.sim_time_s
            << " s over " << digest.iterations << " iterations\n";
  return digest;
}

bool read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buffer[4096];
  for (;;) {
    const std::size_t got = std::fread(buffer, 1, sizeof(buffer), f);
    if (got == 0) break;
    out.append(buffer, got);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

bool contains(const std::string& text, const char* needle) {
  return text.find(needle) != std::string::npos;
}

/// Coarse mapping of a sample's span onto the critical-path analyzer's
/// simulated categories (fftgrad/telemetry/critical_path.h), so host
/// self-time shares line up row-by-row with the simulated shares. Order
/// matters: codec sub-stages like fft.pack belong to the packing bucket
/// even though their name also says "fft".
std::string critpath_category_for(const fftgrad::telemetry::FoldedStack& stack) {
  std::string span;
  span.reserve(stack.span.size());
  for (char c : stack.span) {
    span += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (span.empty()) return "other";
  if (contains(span, "crc") || contains(span, "wire") || contains(span, "encode") ||
      contains(span, "decode")) {
    return "wire_crc";
  }
  if (contains(span, "quant") || contains(span, "pack") || contains(span, "fp16") ||
      contains(span, "lowpass") || contains(span, "topk")) {
    return "quant_pack";
  }
  if (contains(span, "fft")) return "fft";
  if (span == "forward" || span == "backward" || span == "apply") return "backprop";
  if (contains(span, "allgather") || contains(span, "allreduce") ||
      contains(span, "broadcast") || contains(span, "gather") ||
      contains(span, "barrier") || contains(span, "collective")) {
    return "collective";
  }
  return "other";
}

/// The `Hot paths` section: ranked host self-time plus the cross-reference
/// against the first run's simulated critical-path categories. Returns the
/// process exit status (non-zero only in --check-profile mode).
int report_profile(const std::string& path, bool markdown, bool check,
                   const std::vector<RunDigest>& digests) {
  using fftgrad::telemetry::FoldedStack;
  std::string text;
  if (!read_file(path, text)) {
    std::cerr << "run_report: cannot read profile '" << path << "'\n";
    return 1;
  }
  std::vector<FoldedStack> stacks;
  std::string error;
  if (!fftgrad::telemetry::parse_folded(text, stacks, &error)) {
    std::cerr << "run_report: invalid folded profile '" << path << "': " << error << "\n";
    return 1;
  }
  std::uint64_t total = 0;
  for (const FoldedStack& stack : stacks) total += stack.count;
  if (check) {
    if (total == 0) {
      std::cerr << "run_report: profile check failed: '" << path << "' has no samples\n";
      return 1;
    }
    // Canonical render must survive its own parser byte-for-byte.
    const std::string rendered = fftgrad::telemetry::render_folded(stacks);
    std::vector<FoldedStack> reparsed;
    if (!fftgrad::telemetry::parse_folded(rendered, reparsed, &error) ||
        fftgrad::telemetry::render_folded(reparsed) != rendered) {
      std::cerr << "run_report: profile check failed: folded round-trip mismatch ("
                << (error.empty() ? "re-render differs" : error) << ")\n";
      return 1;
    }
  }

  print_heading(markdown, "Hot paths (host self-time)");
  std::cout << stacks.size() << " folded stacks, " << total << " samples from " << path
            << "\n";
  const std::vector<fftgrad::telemetry::HotPath> ranked =
      fftgrad::telemetry::hot_paths_from(stacks);
  {
    fftgrad::util::TableWriter table(
        {"function", "self", "self%", "total%", "top span", "simd candidate"});
    table.set_double_format("%.1f");
    const std::size_t rows = ranked.size() < 15 ? ranked.size() : 15;
    for (std::size_t i = 0; i < rows; ++i) {
      const fftgrad::telemetry::HotPath& hot = ranked[i];
      table.add_row({hot.symbol, static_cast<long long>(hot.self_samples), hot.self_pct,
                     hot.total_pct, hot.top_span.empty() ? "-" : hot.top_span,
                     hot.simd_hint.empty() ? "-" : hot.simd_hint});
    }
    print_table(markdown, table);
  }

  // Host share per simulated category, next to the critical-path share of
  // the first reported run (zeros when no run carried a critpath row).
  // Divergence between the columns is the point: host-heavy / sim-light
  // categories are where ROADMAP item 1's SIMD work pays off on the host
  // without the simulation predicting it.
  std::vector<std::pair<std::string, std::uint64_t>> by_category;
  for (const FoldedStack& stack : stacks) {
    const std::string category = critpath_category_for(stack);
    bool found = false;
    for (auto& [name, count] : by_category) {
      if (name == category) {
        count += stack.count;
        found = true;
      }
    }
    if (!found) by_category.emplace_back(category, stack.count);
  }
  print_heading(markdown, "Host self-time vs simulated critical path");
  const double* e2e =
      digests.empty() ? nullptr : find_metric(digests[0].metrics, "critpath.e2e_s");
  fftgrad::util::TableWriter table(
      {"category", "host_samples", "host_share", "critpath_share"});
  table.set_double_format("%.3f");
  for (const auto& [name, count] : by_category) {
    double sim_share = 0.0;
    if (e2e != nullptr && *e2e > 0.0) {
      const double* on_path = find_metric(digests[0].metrics, "critpath.categories." + name);
      if (on_path != nullptr) sim_share = *on_path / *e2e;
    }
    table.add_row({name, static_cast<long long>(count),
                   total > 0 ? static_cast<double>(count) / static_cast<double>(total) : 0.0,
                   sim_share});
  }
  print_table(markdown, table);
  if (e2e == nullptr) {
    std::cout << "(no ledger critpath row to cross-reference — pass a ledger recorded "
                 "with FFTGRAD_CRITPATH)\n";
  }
  if (check) {
    std::cout << "profile check passed: " << stacks.size() << " stacks, " << total
              << " samples, round-trip stable\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool markdown = false;
  bool check_profile = false;
  std::string profile_path;
  std::vector<std::string> paths;
  const char* usage =
      "usage: run_report [--markdown] [--profile <file.folded>] [--check-profile] "
      "[<ledger.jsonl> ...]\n";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--markdown" || arg == "-m") {
      markdown = true;
    } else if (arg == "--profile") {
      if (i + 1 >= argc) {
        std::cerr << "run_report: --profile needs a folded-stack file argument\n";
        return 1;
      }
      profile_path = argv[++i];
    } else if (arg == "--check-profile") {
      check_profile = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << usage;
      return 0;
    } else {
      paths.push_back(arg);
    }
  }
  if (check_profile && profile_path.empty()) {
    std::cerr << "run_report: --check-profile needs --profile <file.folded>\n";
    return 1;
  }
  if (paths.empty() && profile_path.empty()) {
    std::cerr << usage;
    return 1;
  }

  std::vector<RunDigest> digests;
  for (const std::string& path : paths) {
    std::vector<LedgerRun> runs;
    try {
      runs = fftgrad::telemetry::read_ledger_file(path);
    } catch (const std::exception& error) {
      std::cerr << "run_report: " << error.what() << "\n";
      return 1;
    }
    for (const std::string& problem : fftgrad::telemetry::validate_ledger(runs)) {
      std::cerr << "run_report: schema warning: " << path << ": " << problem << "\n";
    }
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const std::string source =
          runs.size() == 1 ? path : path + "#" + std::to_string(i);
      digests.push_back(report_run(runs[i], source, markdown));
    }
  }

  if (digests.size() >= 2) {
    print_heading(markdown, "Cross-run diff (vs " + digests[0].source + ")");
    fftgrad::util::TableWriter table({"run", "compressor", "d_final_loss", "d_sim_time_s",
                                      "d_mean_alpha", "alerts"});
    table.set_double_format("%+.4g");
    for (std::size_t i = 1; i < digests.size(); ++i) {
      table.add_row({digests[i].source, digests[i].compressor,
                     digests[i].final_loss - digests[0].final_loss,
                     digests[i].sim_time_s - digests[0].sim_time_s,
                     digests[i].mean_alpha - digests[0].mean_alpha,
                     static_cast<long long>(digests[i].alerts)});
    }
    print_table(markdown, table);

    // Key-wise summary/critpath comparison. Runs recorded by different
    // code versions carry different keys — those become added/removed
    // rows, so a renamed metric degrades to information, not an error.
    for (std::size_t i = 1; i < digests.size(); ++i) {
      print_heading(markdown, "Summary metrics: " + digests[i].source + " vs " +
                                  digests[0].source);
      fftgrad::util::TableWriter metric_table({"metric", "base", "other", "delta"});
      metric_table.set_double_format("%.6g");
      std::vector<std::string> added, removed;
      for (const auto& [key, base_value] : digests[0].metrics) {
        const double* other = find_metric(digests[i].metrics, key);
        if (other == nullptr) {
          removed.push_back(key);
          continue;
        }
        if (*other != base_value) {
          metric_table.add_row({key, base_value, *other, *other - base_value});
        }
      }
      for (const auto& [key, value] : digests[i].metrics) {
        if (find_metric(digests[0].metrics, key) == nullptr) added.push_back(key);
      }
      print_table(markdown, metric_table);
      for (const std::string& key : removed) {
        std::cout << "removed (only in " << digests[0].source << "): " << key << "\n";
      }
      for (const std::string& key : added) {
        std::cout << "added (only in " << digests[i].source << "): " << key << "\n";
      }
    }
  }

  if (!profile_path.empty()) {
    return report_profile(profile_path, markdown, check_profile, digests);
  }
  return 0;
}
