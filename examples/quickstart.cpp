// Quickstart: compress one gradient with the paper's FFT pipeline and
// inspect what came out. This is the 30-second tour of the public API:
//
//   FftCompressor codec({.theta = 0.85, .quantizer_bits = 10});
//   Packet p = codec.compress(gradient);   // -> wire bytes
//   codec.decompress(p, reconstructed);    // <- lossy gradient
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <vector>

#include "fftgrad/core/compression_stats.h"
#include "fftgrad/core/fft_compressor.h"
#include "fftgrad/util/rng.h"
#include "fftgrad/telemetry/telemetry.h"

int main() {
  fftgrad::telemetry::init_from_env();
  using namespace fftgrad;

  // A synthetic "gradient": zero-mean, sharply peaked — like real DNN
  // gradients (see bench_fig04_grad_hist for the real thing).
  util::Rng rng(42);
  std::vector<float> gradient(1 << 16);
  for (float& g : gradient) g = static_cast<float>(rng.normal(0.0, 0.02));

  // The paper's evaluation setting: drop 85% of frequency components, then
  // quantize survivors to a 10-bit range-based float.
  core::FftCompressor codec({.theta = 0.85, .quantizer_bits = 10});

  const core::Packet packet = codec.compress(gradient);
  std::vector<float> reconstructed(gradient.size());
  codec.decompress(packet, reconstructed);

  std::printf("gradient elements : %zu (%zu bytes as fp32)\n", gradient.size(),
              gradient.size() * sizeof(float));
  std::printf("wire bytes        : %zu\n", packet.wire_bytes());
  std::printf("compression ratio : %.1fx\n", packet.ratio());

  std::vector<float> recon2;
  const core::RoundTripStats stats = core::measure_round_trip(codec, gradient, recon2);
  std::printf("relative error    : alpha = %.4f (Assumption 3.2 wants < 1)\n", stats.alpha);
  std::printf("rms error         : %.6f\n", stats.rms_error);

  std::printf("\nfirst 8 values    :");
  for (int i = 0; i < 8; ++i) std::printf(" %+.4f", gradient[i]);
  std::printf("\nreconstructed     :");
  for (int i = 0; i < 8; ++i) std::printf(" %+.4f", reconstructed[i]);
  std::printf("\n");
  return 0;
}
