// Compression explorer: sweep the two knobs of the framework — the
// sparsification ratio theta and the quantizer width N — over a real DNN
// gradient and print the (ratio, error) frontier. Use this to pick
// settings for your own network/interconnect: combine the wire ratio with
// bench_fig10_min_ratio's break-even k for your bandwidth.
//
// Build & run:  ./build/examples/compression_explorer [elements]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "fftgrad/core/compression_stats.h"
#include "fftgrad/core/fft_compressor.h"
#include "fftgrad/nn/dataset.h"
#include "fftgrad/nn/loss.h"
#include "fftgrad/nn/models.h"
#include "fftgrad/nn/optimizer.h"
#include "fftgrad/util/table.h"
#include "fftgrad/telemetry/telemetry.h"

int main(int argc, char** argv) {
  fftgrad::telemetry::init_from_env();
  using namespace fftgrad;
  (void)argc;
  (void)argv;

  // Produce a genuine gradient by briefly training a small CNN.
  util::Rng rng(3);
  nn::Network net = nn::models::make_resnet_mini(8, 1, 4, rng);
  nn::SyntheticDataset data({3, 8, 8}, 4, 5);
  nn::SgdOptimizer opt(0.9f);
  nn::SoftmaxCrossEntropy criterion;
  util::Rng batch_rng(6);
  for (int i = 0; i < 40; ++i) {
    const nn::Batch batch = data.sample(16, batch_rng);
    net.zero_grad();
    criterion.forward(net.forward(batch.inputs), batch.labels);
    net.backward(criterion.backward());
    opt.step(net, 0.02f);
  }
  const nn::Batch batch = data.sample(16, batch_rng);
  net.zero_grad();
  criterion.forward(net.forward(batch.inputs), batch.labels);
  net.backward(criterion.backward());
  std::vector<float> grad(net.param_count());
  net.copy_gradients(grad);
  std::printf("gradient: %zu elements from a trained ResNet-style model\n\n", grad.size());

  util::TableWriter table({"theta", "quant_bits", "ratio", "alpha", "rms_err"});
  table.set_double_format("%.4f");
  for (double theta : {0.5, 0.85, 0.95}) {
    for (int bits : {0, 12, 10, 8}) {
      core::FftCompressor codec({.theta = theta, .quantizer_bits = bits});
      std::vector<float> recon;
      const core::RoundTripStats stats = core::measure_round_trip(codec, grad, recon);
      table.add_row({theta, static_cast<long long>(bits), stats.ratio, stats.alpha,
                     stats.rms_error});
    }
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::puts("\nReading the frontier: larger theta and narrower quantizers raise the wire\n"
            "ratio but also alpha; the paper's guidance is theta <= 0.85-0.9 with ~10 bits,\n"
            "and to shrink theta with the learning rate (Theorem 3.5) late in training.");
  return 0;
}
