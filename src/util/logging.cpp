#include "fftgrad/util/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>

#include "fftgrad/util/annotated_mutex.h"

namespace fftgrad::util {
namespace {

/// Reads FFTGRAD_LOG_LEVEL (debug|info|warn|error, case-insensitive; numeric
/// 0-3 also accepted). Unset or unrecognized values fall back to kInfo.
LogLevel level_from_env() {
  const char* env = std::getenv("FFTGRAD_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kInfo;
  std::string value;
  for (const char* p = env; *p != '\0'; ++p) {
    value.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
  }
  if (value == "debug" || value == "0") return LogLevel::kDebug;
  if (value == "info" || value == "1") return LogLevel::kInfo;
  if (value == "warn" || value == "warning" || value == "2") return LogLevel::kWarn;
  if (value == "error" || value == "3") return LogLevel::kError;
  return LogLevel::kInfo;
}

std::atomic<LogLevel>& level_atomic() {
  static std::atomic<LogLevel> level{level_from_env()};
  return level;
}

Mutex g_io_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?????";
}

}  // namespace

void set_log_level(LogLevel level) { level_atomic().store(level, std::memory_order_relaxed); }

LogLevel log_level() { return level_atomic().load(std::memory_order_relaxed); }

void log_line(LogLevel level, std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;

  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm tm_utc{};
  gmtime_r(&seconds, &tm_utc);
  char stamp[32];
  std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%S", &tm_utc);

  LockGuard<Mutex> lock(g_io_mutex);
  std::fprintf(stderr, "[%s.%03dZ] %s %.*s\n", stamp, static_cast<int>(millis), level_tag(level),
               static_cast<int>(message.size()), message.data());
}

}  // namespace fftgrad::util
