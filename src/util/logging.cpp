#include "fftgrad/util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace fftgrad::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_io_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?????";
}

double seconds_since_start() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::lock_guard<std::mutex> lock(g_io_mutex);
  std::fprintf(stderr, "[%9.3f] %s %.*s\n", seconds_since_start(), level_tag(level),
               static_cast<int>(message.size()), message.data());
}

}  // namespace fftgrad::util
