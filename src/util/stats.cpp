#include "fftgrad/util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace fftgrad::util {

Summary summarize(std::span<const float> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  double sum = 0.0;
  s.min = std::numeric_limits<double>::infinity();
  s.max = -std::numeric_limits<double>::infinity();
  for (float v : values) {
    sum += v;
    s.min = std::min(s.min, static_cast<double>(v));
    s.max = std::max(s.max, static_cast<double>(v));
  }
  s.mean = sum / static_cast<double>(s.count);
  double sq = 0.0;
  for (float v : values) {
    const double d = v - s.mean;
    sq += d * d;
  }
  s.stddev = std::sqrt(sq / static_cast<double>(s.count));
  return s;
}

double l2_diff(std::span<const float> a, std::span<const float> b) {
  if (a.size() != b.size()) throw std::invalid_argument("l2_diff: size mismatch");
  double sq = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    sq += d * d;
  }
  return std::sqrt(sq);
}

double l2_norm(std::span<const float> a) {
  double sq = 0.0;
  for (float v : a) sq += static_cast<double>(v) * static_cast<double>(v);
  return std::sqrt(sq);
}

double rms_error(std::span<const float> a, std::span<const float> b) {
  if (a.empty()) return 0.0;
  const double d = l2_diff(a, b);
  return d / std::sqrt(static_cast<double>(a.size()));
}

double relative_error_alpha(std::span<const float> v, std::span<const float> v_hat) {
  const double norm = l2_norm(v);
  const double diff = l2_diff(v, v_hat);
  if (norm == 0.0) {
    return diff == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return diff / norm;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must exceed lo");
}

void Histogram::add(double value) {
  auto bin = static_cast<std::ptrdiff_t>((value - lo_) / width_);
  bin = std::clamp<std::ptrdiff_t>(bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void Histogram::add(std::span<const float> values) {
  for (float v : values) add(v);
}

double Histogram::center(std::size_t bin) const {
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

double Histogram::fraction(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[bin]) / static_cast<double>(total_);
}

std::string Histogram::to_string(std::size_t max_bar_width) const {
  std::size_t peak = 0;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar =
        peak == 0 ? 0 : counts_[i] * max_bar_width / peak;
    out << (center(i) < 0 ? "" : " ");
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%+.4f %10zu %.4f ", center(i), counts_[i], fraction(i));
    out << buf << std::string(bar, '#') << '\n';
  }
  return out.str();
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::at(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double q) const {
  if (sorted_.empty()) throw std::logic_error("EmpiricalCdf::quantile on empty sample");
  q = std::clamp(q, 0.0, 1.0);
  const auto idx = static_cast<std::size_t>(
      std::min<double>(std::ceil(q * static_cast<double>(sorted_.size())) - 1.0,
                       static_cast<double>(sorted_.size() - 1)));
  return sorted_[std::max<std::size_t>(idx, 0)];
}

}  // namespace fftgrad::util
