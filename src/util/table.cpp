#include "fftgrad/util/table.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace fftgrad::util {

TableWriter::TableWriter(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("TableWriter: need at least one column");
}

void TableWriter::add_row(std::vector<Cell> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TableWriter: row width does not match header count");
  }
  rows_.push_back(std::move(cells));
}

std::string TableWriter::render_cell(const Cell& cell) const {
  if (const auto* s = std::get_if<std::string>(&cell)) return *s;
  char buf[64];
  if (const auto* d = std::get_if<double>(&cell)) {
    std::snprintf(buf, sizeof(buf), double_format_.c_str(), *d);
    return buf;
  }
  std::snprintf(buf, sizeof(buf), "%lld", std::get<long long>(cell));
  return buf;
}

std::string TableWriter::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(render_cell(row[c]));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    rendered.push_back(std::move(cells));
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << cells[c] << std::string(widths[c] - cells[c].size(), ' ');
    }
    out << " |\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << (c == 0 ? "|" : "-|") << std::string(widths[c] + 2, '-');
  }
  out << "-|\n";
  for (const auto& row : rendered) emit_row(row);
  return out.str();
}

std::string TableWriter::to_csv() const {
  std::ostringstream out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << (c ? "," : "") << headers_[c];
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c ? "," : "") << render_cell(row[c]);
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace fftgrad::util
