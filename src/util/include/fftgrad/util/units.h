// Zero-overhead dimensional types for the quantities that cross the
// perfmodel / comm / telemetry boundaries.
//
// Every cost-model formula (Eq. 1/2 of the paper, the alpha-beta collective
// schedules, the RetryPolicy expectations) and every ledger reconciliation
// row mixes seconds, bytes, bits, element counts and ratios — and before
// this header they were all bare `double`, so a bits-vs-bytes slip or a
// wall-vs-simulated clock mixup compiled silently and surfaced as a
// mysteriously drifting model. Each quantity is now a distinct strong type
// over one `double`:
//
//   SimSeconds       time on the *simulated* timeline (SimClock, cost model)
//   WallSeconds      time on the *host* timeline (WallTimer measurements)
//   Bytes            payload / wire sizes
//   Bits             sub-byte wire sizes (mask encodings, quantized codes)
//   Elements         gradient element counts
//   BytesPerSecond   link and primitive throughputs
//   Ratio            dimensionless compression ratios (raw / wire)
//
// Only dimensionally valid operators exist: same-unit +/- and comparisons,
// scalar scaling, `Bytes / BytesPerSecond -> SimSeconds`,
// `Bytes / SimSeconds -> BytesPerSecond`, `Bytes / Ratio -> Bytes`, and the
// explicit Bits<->Bytes conversions (factor 8 lives in exactly one place).
// Same-unit division yields a plain double (a dimensionless factor).
// Sim and wall seconds never mix implicitly; the one legitimate crossing —
// a trainer charging a *measured* duration to the simulated clock — must go
// through sim_from_wall() so the boundary is grep-able. The only way back
// to a raw double is the explicit to_double() escape hatch (for printf/JSON
// serialization and for numerics like pow/log that are unit-transparent).
//
// Everything is constexpr and trivially copyable: a Quantity<Tag> is one
// double with no virtualness and no invariants, so the types compile to
// nothing (BENCH_pr7.json vs BENCH_pr6.json proves the hot paths are
// unchanged). tests/test_units.cpp pins both the algebra and — via
// expression-SFINAE probes — the *absence* of the invalid operators.
#pragma once

#include <cstddef>

namespace fftgrad::util {

template <typename Tag>
class Quantity {
 public:
  constexpr Quantity() = default;
  constexpr explicit Quantity(double value) : value_(value) {}

  /// Escape hatch to the raw double — explicit by design; use it only at
  /// serialization / numerics boundaries, never to launder a unit mismatch.
  constexpr double to_double() const { return value_; }

  constexpr Quantity operator-() const { return Quantity(-value_); }
  constexpr Quantity& operator+=(Quantity other) {
    value_ += other.value_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity other) {
    value_ -= other.value_;
    return *this;
  }
  constexpr Quantity& operator*=(double factor) {
    value_ *= factor;
    return *this;
  }
  constexpr Quantity& operator/=(double divisor) {
    value_ /= divisor;
    return *this;
  }

  friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity(a.value_ + b.value_);
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity(a.value_ - b.value_);
  }
  friend constexpr Quantity operator*(Quantity a, double factor) {
    return Quantity(a.value_ * factor);
  }
  friend constexpr Quantity operator*(double factor, Quantity a) {
    return Quantity(factor * a.value_);
  }
  friend constexpr Quantity operator/(Quantity a, double divisor) {
    return Quantity(a.value_ / divisor);
  }
  /// Same-unit division is a dimensionless factor.
  friend constexpr double operator/(Quantity a, Quantity b) { return a.value_ / b.value_; }

  friend constexpr bool operator==(Quantity a, Quantity b) = default;
  friend constexpr auto operator<=>(Quantity a, Quantity b) = default;

 private:
  double value_ = 0.0;
};

struct SimSecondsTag {};
struct WallSecondsTag {};
struct BytesTag {};
struct BitsTag {};
struct ElementsTag {};
struct BytesPerSecondTag {};
struct RatioTag {};

using SimSeconds = Quantity<SimSecondsTag>;
using WallSeconds = Quantity<WallSecondsTag>;
using Bytes = Quantity<BytesTag>;
using Bits = Quantity<BitsTag>;
using Elements = Quantity<ElementsTag>;
using BytesPerSecond = Quantity<BytesPerSecondTag>;
using Ratio = Quantity<RatioTag>;

// ---------------------------------------------------------------------------
// Cross-dimension algebra: only the physically meaningful combinations.

/// Transfer time of `size` over a link of `rate` (the beta term of the
/// alpha-beta model; network transfer time lives on the simulated clock).
constexpr SimSeconds operator/(Bytes size, BytesPerSecond rate) {
  return SimSeconds(size.to_double() / rate.to_double());
}

/// Throughput achieved moving `size` in `elapsed` simulated seconds.
constexpr BytesPerSecond operator/(Bytes size, SimSeconds elapsed) {
  return BytesPerSecond(size.to_double() / elapsed.to_double());
}

/// Bytes moved at `rate` for `elapsed` simulated seconds.
constexpr Bytes operator*(BytesPerSecond rate, SimSeconds elapsed) {
  return Bytes(rate.to_double() * elapsed.to_double());
}
constexpr Bytes operator*(SimSeconds elapsed, BytesPerSecond rate) { return rate * elapsed; }

/// Compressing `raw` at `ratio` leaves raw/ratio bytes on the wire.
constexpr Bytes operator/(Bytes raw, Ratio ratio) {
  return Bytes(raw.to_double() / ratio.to_double());
}

/// The achieved compression ratio of a (raw, wire) byte pair.
constexpr Ratio ratio_of(Bytes raw, Bytes wire) { return Ratio(raw / wire); }

// ---------------------------------------------------------------------------
// Explicit unit conversions. The 8x bit/byte factor has exactly one home.

constexpr Bits bits_of(Bytes bytes) { return Bits(bytes.to_double() * 8.0); }
constexpr Bytes bytes_of(Bits bits) { return Bytes(bits.to_double() / 8.0); }

/// Byte size of `count` elements of `elem_size` bytes each.
constexpr Bytes bytes_for(Elements count, std::size_t elem_size) {
  return Bytes(count.to_double() * static_cast<double>(elem_size));
}

/// Convenience for the ubiquitous size_t element/byte counts.
constexpr Elements elements(std::size_t count) {
  return Elements(static_cast<double>(count));
}
constexpr Bytes byte_count(std::size_t count) { return Bytes(static_cast<double>(count)); }

/// The one sanctioned wall -> simulated crossing: a trainer charging a
/// *measured* phase duration onto the simulated timeline. Deliberately a
/// named function (not an operator) so every crossing is grep-able and the
/// lint gate can audit the call sites.
constexpr SimSeconds sim_from_wall(WallSeconds wall) { return SimSeconds(wall.to_double()); }

}  // namespace fftgrad::util
