// Descriptive statistics used throughout the evaluation benches:
// histograms (Figs 4, 9, 15), empirical CDFs (Fig 15e), and summary
// moments / error norms (Fig 5, Assumption 3.2's alpha).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace fftgrad::util {

/// Summary moments of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

Summary summarize(std::span<const float> values);

/// ||a - b||_2 (Euclidean norm of the difference). Sizes must match.
double l2_diff(std::span<const float> a, std::span<const float> b);

/// ||a||_2.
double l2_norm(std::span<const float> a);

/// Root-mean-square of (a - b); the "err" reported in the paper's Fig 5.
double rms_error(std::span<const float> a, std::span<const float> b);

/// Assumption 3.2's relative compression error alpha = ||v - v_hat|| / ||v||.
/// Returns 0 when ||v|| == 0 and v == v_hat, and +inf when ||v|| == 0 but
/// v != v_hat (the degenerate case the paper discusses).
double relative_error_alpha(std::span<const float> v, std::span<const float> v_hat);

/// Fixed-width histogram over [lo, hi]; values outside are clamped into the
/// boundary bins so mass is conserved (matches how the paper's histograms
/// are plotted over a fixed gradient range).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value);
  void add(std::span<const float> values);

  std::size_t bins() const { return counts_.size(); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t count(std::size_t bin) const { return counts_[bin]; }
  std::size_t total() const { return total_; }
  /// Center of bin i.
  double center(std::size_t bin) const;
  /// Fraction of mass in bin i (0 if empty histogram).
  double fraction(std::size_t bin) const;

  /// Render as rows of "center count fraction" plus an ASCII bar, suitable
  /// for bench output.
  std::string to_string(std::size_t max_bar_width = 50) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Empirical CDF of a sample; used for the cumulative reconstruction-error
/// distribution in Fig 15e.
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::vector<double> samples);

  /// P(X <= x).
  double at(double x) const;
  /// Smallest x with P(X <= x) >= q, q in [0,1].
  double quantile(double q) const;
  std::size_t size() const { return sorted_.size(); }

 private:
  std::vector<double> sorted_;
};

}  // namespace fftgrad::util
