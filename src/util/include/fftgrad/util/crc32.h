// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) with a slice-by-4
// kernel: four table lookups fold 32 input bits per iteration, roughly 3-4x
// a bytewise loop, with a 4KB table footprint.
//
// This is the integrity check behind the collective wire framing
// (core::wire::frame_packet): a flipped bit anywhere in a gradient packet
// must surface as a checksum mismatch at the receiver instead of feeding a
// silently-corrupted gradient into the average. CRC-32 detects every 1- and
// 2-bit error and any burst up to 32 bits, which covers the fault model the
// chaos harness injects (comm::FaultPlan bit corruption).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace fftgrad::util {

/// CRC-32 of `bytes`. `seed` chains incremental computations:
/// crc32(ab) == crc32(b, crc32(a)). The empty message hashes to 0.
std::uint32_t crc32(std::span<const std::uint8_t> bytes, std::uint32_t seed = 0);

}  // namespace fftgrad::util
