// Clang Thread Safety Analysis attribute macros (abseil-style).
//
// Under clang every macro expands to the corresponding
// `__attribute__((...))`; under every other compiler they expand to
// nothing, so the annotations are pure documentation there and cannot
// change code generation or class layout anywhere. The `thread-safety`
// CMake preset compiles src/ with clang and
// `-Werror=thread-safety -Wthread-safety-beta`, turning every violated
// annotation into a build error (see scripts/thread_safety_check.sh and
// DESIGN.md "Static concurrency & determinism analysis").
//
// Conventions used across the tree:
//  * Lock types (util::Mutex, util::SharedMutex, analysis::CheckedMutex)
//    are FFTGRAD_CAPABILITY("mutex") with ACQUIRE/RELEASE/TRY_ACQUIRE on
//    their methods; their bodies wrap unannotated std primitives and carry
//    FFTGRAD_NO_THREAD_SAFETY_ANALYSIS (the one sanctioned use: functions
//    that implement locking primitives themselves).
//  * Data a mutex strictly protects is FFTGRAD_GUARDED_BY(mutex_) /
//    FFTGRAD_PT_GUARDED_BY(mutex_); helpers that assume the lock is held
//    are FFTGRAD_REQUIRES(mutex_) (pair with FFTGRAD_ASSERT_HELD for the
//    runtime check on non-clang builds).
//  * State ordered by a protocol the analysis cannot express (barrier
//    slots written before / read after a rendezvous, single-writer thread
//    buffers) stays unannotated with a comment naming the real
//    happens-before edge — a wrong GUARDED_BY is worse than none.
#pragma once

#if defined(__clang__)
#define FFTGRAD_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define FFTGRAD_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// A type whose instances can be held/released (a lock).
#define FFTGRAD_CAPABILITY(x) FFTGRAD_THREAD_ANNOTATION(capability(x))

/// An RAII type that holds a capability for its lifetime.
#define FFTGRAD_SCOPED_CAPABILITY FFTGRAD_THREAD_ANNOTATION(scoped_lockable)

/// Data member protected by the given capability.
#define FFTGRAD_GUARDED_BY(x) FFTGRAD_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose pointee is protected by the given capability.
#define FFTGRAD_PT_GUARDED_BY(x) FFTGRAD_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function acquires the capability (must not hold it on entry).
#define FFTGRAD_ACQUIRE(...) \
  FFTGRAD_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define FFTGRAD_ACQUIRE_SHARED(...) \
  FFTGRAD_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (must hold it on entry).
#define FFTGRAD_RELEASE(...) \
  FFTGRAD_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define FFTGRAD_RELEASE_SHARED(...) \
  FFTGRAD_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns the given value.
#define FFTGRAD_TRY_ACQUIRE(...) \
  FFTGRAD_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define FFTGRAD_TRY_ACQUIRE_SHARED(...) \
  FFTGRAD_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

/// Caller must hold the capability (exclusively / at least shared).
#define FFTGRAD_REQUIRES(...) \
  FFTGRAD_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define FFTGRAD_REQUIRES_SHARED(...) \
  FFTGRAD_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (the function acquires it itself,
/// or would deadlock / invert an order if entered with it held).
#define FFTGRAD_EXCLUDES(...) FFTGRAD_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Lock-order declaration between two capabilities.
#define FFTGRAD_ACQUIRED_BEFORE(...) \
  FFTGRAD_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define FFTGRAD_ACQUIRED_AFTER(...) \
  FFTGRAD_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Runtime assertion that the capability is held (the static counterpart
/// of FFTGRAD_ASSERT_HELD in fftgrad/analysis/checked_mutex.h).
#define FFTGRAD_ASSERT_CAPABILITY(x) \
  FFTGRAD_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the given capability.
#define FFTGRAD_RETURN_CAPABILITY(x) FFTGRAD_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function body is not analyzed. Reserved for the lock
/// wrappers' own bodies (they manipulate unannotated std primitives);
/// anywhere else, prefer fixing the annotation.
#define FFTGRAD_NO_THREAD_SAFETY_ANALYSIS \
  FFTGRAD_THREAD_ANNOTATION(no_thread_safety_analysis)
