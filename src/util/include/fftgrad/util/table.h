// Aligned text tables + CSV output. Every bench prints its figure/table
// reproduction through TableWriter so the rows are easy to diff against the
// paper and to post-process (EXPERIMENTS.md records them).
#pragma once

#include <cstddef>
#include <string>
#include <variant>
#include <vector>

namespace fftgrad::util {

class TableWriter {
 public:
  using Cell = std::variant<std::string, double, long long>;

  explicit TableWriter(std::vector<std::string> headers);

  /// Append one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<Cell> cells);

  /// Number formatting for double cells (printf-style, default "%.4g").
  void set_double_format(std::string fmt) { double_format_ = std::move(fmt); }

  /// Render as an aligned, pipe-separated table.
  std::string to_string() const;

  /// Render as CSV (no alignment padding).
  std::string to_csv() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::string render_cell(const Cell& cell) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  std::string double_format_ = "%.4g";
};

}  // namespace fftgrad::util
