// Trust-boundary tracking for values parsed from the wire.
//
// The recurring bug class the PR-2 fuzzers keep proving: a decoder parses
// untrusted bytes into a typed value, and some caller uses that value —
// an element count, a mask, a code vector — before anything checked it
// against what the receiver *expects*. Untrusted<T> makes that a compile
// error: every wire/frame decode entry point (core::wire::unframe_frame,
// sparse::decode_mask, quant::unpack_codes, analysis::decode_trailer)
// returns Untrusted<T>, and the only way to get the T out is
//
//   std::move(u).release(validator, what)   // validator(const T&) -> bool
//
// which runs the caller's semantic validation (does the element count match
// the model? are all codes inside the codec's code space?) and throws
// TaintError when it fails. Structural validation (bounds, CRC, magic)
// still lives inside the decoders and throws before an Untrusted is ever
// formed; release() is where *receiver-side expectations* are enforced.
//
// release_unvalidated() is the audited escape hatch for contexts whose
// downstream logic re-validates (e.g. a fuzzer intentionally exercising the
// raw decode). Every call site must carry a rationale string and an entry
// in tools/fftgrad_lint.allow — the lint gate (tools/fftgrad_lint) fails
// the build on any unallowlisted use.
//
// Untrusted<T> is move-only and rvalue-consumed: a decoded value cannot be
// copied around un-validated, silently dropped ([[nodiscard]]), or released
// twice.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>

namespace fftgrad::util {

/// Thrown by Untrusted<T>::release when the caller's validator rejects the
/// decoded value. Distinct from the decoders' std::runtime_error structural
/// failures so tests can tell "malformed bytes" from "well-formed bytes
/// that violate this receiver's expectations".
class TaintError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

template <typename T>
class [[nodiscard]] Untrusted {
 public:
  using value_type = T;

  constexpr explicit Untrusted(T value) : value_(std::move(value)) {}

  Untrusted(const Untrusted&) = delete;
  Untrusted& operator=(const Untrusted&) = delete;
  Untrusted(Untrusted&&) noexcept = default;
  Untrusted& operator=(Untrusted&&) noexcept = default;

  /// Validate-and-yield: runs `validate(value)`; a true result releases the
  /// value, false throws TaintError naming `what`. A validator may also
  /// throw its own (more specific) exception. rvalue-qualified: the wrapper
  /// is consumed, so a value can be released at most once.
  template <typename Validator>
  T release(Validator&& validate, const char* what = "wire value") && {
    if (!static_cast<bool>(std::forward<Validator>(validate)(
            static_cast<const T&>(value_)))) {
      throw TaintError(std::string("untrusted ") + what + ": validation rejected value");
    }
    return std::move(value_);
  }

  /// Escape hatch: yield without receiver-side validation. `rationale` must
  /// say why downstream use is safe; the fftgrad_lint gate requires an
  /// allowlist entry (with that rationale) for every call site.
  T release_unvalidated(const char* rationale) && {
    (void)rationale;
    return std::move(value_);
  }

 private:
  T value_;
};

/// Deduction helper for decoders: `return util::untrusted(std::move(v));`.
template <typename T>
constexpr Untrusted<T> untrusted(T value) {
  return Untrusted<T>(std::move(value));
}

}  // namespace fftgrad::util
