// Annotated mutex wrappers and REQUIRES-aware lock guards.
//
// libstdc++'s std::mutex / std::shared_mutex carry no thread-safety
// capability attributes, so code locking them directly is invisible to
// Clang Thread Safety Analysis. These thin wrappers restore the static
// story: util::Mutex and util::SharedMutex are drop-in replacements whose
// methods are ACQUIRE/RELEASE/TRY_ACQUIRE-annotated, and LockGuard /
// UniqueLock / SharedLockGuard are the project's scoped-capability guards
// (templated so the same guards serve util::Mutex, util::SharedMutex and
// analysis::CheckedMutex).
//
// Every mutex member in src/ must be one of the annotated types —
// fftgrad_lint's `unannotated-mutex` rule flags a bare std::mutex outside
// the wrapper homes listed (with rationale) in tools/fftgrad_lint.allow.
//
// UniqueLock is the condition-wait guard: it satisfies BasicLockable, so
// `std::condition_variable_any::wait(lock)` works, and its lock()/unlock()
// are annotated, so the analysis tracks the capability across an early
// release (e.g. SimCluster::barrier_wait drops the lock before emitting
// trace spans). Condition predicates are written as explicit
// `while (!cond) cv.wait(lock);` loops rather than wait(lock, pred): the
// analysis treats a predicate lambda as a separate unannotated function,
// while the manual loop keeps every guarded read inside the annotated
// caller's scope.
#pragma once

#include <mutex>
#include <shared_mutex>

#include "fftgrad/util/thread_annotations.h"

namespace fftgrad::util {

/// Annotated std::mutex. Zero state beyond the wrapped mutex; the bodies
/// carry FFTGRAD_NO_THREAD_SAFETY_ANALYSIS because they manipulate the
/// unannotated std primitive (the sanctioned use of the escape hatch).
class FFTGRAD_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() FFTGRAD_ACQUIRE() FFTGRAD_NO_THREAD_SAFETY_ANALYSIS { mutex_.lock(); }
  bool try_lock() FFTGRAD_TRY_ACQUIRE(true) FFTGRAD_NO_THREAD_SAFETY_ANALYSIS {
    return mutex_.try_lock();
  }
  void unlock() FFTGRAD_RELEASE() FFTGRAD_NO_THREAD_SAFETY_ANALYSIS { mutex_.unlock(); }

 private:
  std::mutex mutex_;
};

/// Annotated std::shared_mutex: exclusive lock for writers, shared lock
/// for readers (e.g. the metrics registry's lookup-or-create vs export).
class FFTGRAD_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() FFTGRAD_ACQUIRE() FFTGRAD_NO_THREAD_SAFETY_ANALYSIS { mutex_.lock(); }
  bool try_lock() FFTGRAD_TRY_ACQUIRE(true) FFTGRAD_NO_THREAD_SAFETY_ANALYSIS {
    return mutex_.try_lock();
  }
  void unlock() FFTGRAD_RELEASE() FFTGRAD_NO_THREAD_SAFETY_ANALYSIS { mutex_.unlock(); }

  void lock_shared() FFTGRAD_ACQUIRE_SHARED() FFTGRAD_NO_THREAD_SAFETY_ANALYSIS {
    mutex_.lock_shared();
  }
  bool try_lock_shared() FFTGRAD_TRY_ACQUIRE_SHARED(true) FFTGRAD_NO_THREAD_SAFETY_ANALYSIS {
    return mutex_.try_lock_shared();
  }
  void unlock_shared() FFTGRAD_RELEASE_SHARED() FFTGRAD_NO_THREAD_SAFETY_ANALYSIS {
    mutex_.unlock_shared();
  }

 private:
  std::shared_mutex mutex_;
};

/// Scoped exclusive lock held for the full scope (std::lock_guard shape).
/// Works with any annotated exclusive-capable mutex type.
template <typename MutexT>
class FFTGRAD_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(MutexT& mutex) FFTGRAD_ACQUIRE(mutex) : mutex_(mutex) { mutex_.lock(); }
  ~LockGuard() FFTGRAD_RELEASE() { mutex_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  MutexT& mutex_;
};

/// Scoped exclusive lock with early release / re-acquire (std::unique_lock
/// shape, minus deferred construction). BasicLockable, so it is the guard
/// to pass to std::condition_variable_any::wait.
template <typename MutexT>
class FFTGRAD_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(MutexT& mutex) FFTGRAD_ACQUIRE(mutex) : mutex_(mutex), owns_(true) {
    mutex_.lock();
  }
  ~UniqueLock() FFTGRAD_RELEASE() {
    if (owns_) mutex_.unlock();
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() FFTGRAD_ACQUIRE() {
    mutex_.lock();
    owns_ = true;
  }
  void unlock() FFTGRAD_RELEASE() {
    mutex_.unlock();
    owns_ = false;
  }
  bool owns_lock() const { return owns_; }

 private:
  MutexT& mutex_;
  bool owns_;
};

/// Scoped shared (reader) lock for SharedMutex-shaped types.
template <typename MutexT>
class FFTGRAD_SCOPED_CAPABILITY SharedLockGuard {
 public:
  explicit SharedLockGuard(MutexT& mutex) FFTGRAD_ACQUIRE_SHARED(mutex) : mutex_(mutex) {
    mutex_.lock_shared();
  }
  // Generic release: a scoped capability's destructor releases whatever
  // mode its constructor acquired (the canonical clang scoped-shared form).
  ~SharedLockGuard() FFTGRAD_RELEASE() { mutex_.unlock_shared(); }

  SharedLockGuard(const SharedLockGuard&) = delete;
  SharedLockGuard& operator=(const SharedLockGuard&) = delete;

 private:
  MutexT& mutex_;
};

}  // namespace fftgrad::util
