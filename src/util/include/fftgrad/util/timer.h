// Wall-clock timing helpers for benches and the trainer's compute-time
// accounting. WallTimer measures real elapsed time; use comm::SimClock for
// the simulated network time (the two are added in the trainer).
#pragma once

#include <chrono>

#include "fftgrad/util/units.h"

namespace fftgrad::util {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Dimensionally-typed elapsed time: wall seconds, which cannot be mixed
  /// into simulated-clock arithmetic without an explicit sim_from_wall().
  WallSeconds elapsed() const { return WallSeconds(seconds()); }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fftgrad::util
