// Minimal leveled logger. Thread-safe: each Log() call emits one complete
// line under a global mutex. Intended for coarse progress/diagnostic output
// from benches and examples, not for per-element hot loops.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace fftgrad::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are dropped. Initialized from
/// FFTGRAD_LOG_LEVEL (debug|info|warn|error) on first use, kInfo otherwise.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line at `level` with a UTC wall-clock timestamp and level tag.
void log_line(LogLevel level, std::string_view message);

namespace detail {
class LineLogger {
 public:
  explicit LineLogger(LogLevel level) : level_(level) {}
  ~LineLogger() { log_line(level_, stream_.str()); }
  LineLogger(const LineLogger&) = delete;
  LineLogger& operator=(const LineLogger&) = delete;

  template <typename T>
  LineLogger& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LineLogger log_debug() { return detail::LineLogger(LogLevel::kDebug); }
inline detail::LineLogger log_info() { return detail::LineLogger(LogLevel::kInfo); }
inline detail::LineLogger log_warn() { return detail::LineLogger(LogLevel::kWarn); }
inline detail::LineLogger log_error() { return detail::LineLogger(LogLevel::kError); }

}  // namespace fftgrad::util
