// Deterministic, splittable random number generation.
//
// All stochastic components in the library (datasets, initializers, QSGD's
// stochastic rounding, synthetic gradients) draw from Rng so experiments are
// reproducible from a single seed. Rng wraps the xoshiro256** generator: it
// is cheap to construct, cheap to copy, and `split()` derives an independent
// stream for a child component (per-rank, per-layer) without sharing state.
#pragma once

#include <array>
#include <cstdint>
#include <cmath>
#include <cstring>
#include <limits>

namespace fftgrad::util {

class Rng {
 public:
  /// Seeds the four 64-bit state words from `seed` via splitmix64, which is
  /// the recommended seeding procedure for xoshiro generators.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    std::uint64_t x = seed;
    for (auto& word : state_) word = splitmix64(x);
  }

  /// Next raw 64-bit value (xoshiro256**).
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) {
    // Lemire's multiply-shift rejection method: unbiased and branch-light.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Box–Muller; caches the second deviate.
  double normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = uniform();
    double u2 = uniform();
    // Guard against log(0).
    if (u1 <= std::numeric_limits<double>::min()) u1 = std::numeric_limits<double>::min();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Derive an independent child stream; advances this generator.
  Rng split() { return Rng(next_u64() ^ 0xd2b74407b1ce6e93ull); }

  /// Full generator state as six words (the four xoshiro words, the cached
  /// Box-Muller deviate's bits, and the cache flag), for checkpointing a
  /// stream mid-run. load_state() resumes the identical sequence.
  std::array<std::uint64_t, 6> save_state() const {
    std::array<std::uint64_t, 6> out{};
    for (int i = 0; i < 4; ++i) out[static_cast<std::size_t>(i)] = state_[i];
    std::memcpy(&out[4], &cached_, sizeof(cached_));
    out[5] = has_cached_ ? 1 : 0;
    return out;
  }

  void load_state(const std::array<std::uint64_t, 6>& in) {
    for (int i = 0; i < 4; ++i) state_[i] = in[static_cast<std::size_t>(i)];
    std::memcpy(&cached_, &in[4], sizeof(cached_));
    has_cached_ = in[5] != 0;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  static std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  std::uint64_t state_[4];
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace fftgrad::util
