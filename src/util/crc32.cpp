#include "fftgrad/util/crc32.h"

#include <cstring>

namespace fftgrad::util {
namespace {

constexpr std::uint32_t kPoly = 0xEDB88320u;  // reflected CRC-32 polynomial

struct Crc32Tables {
  std::uint32_t t[4][256];

  Crc32Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) != 0 ? kPoly ^ (crc >> 1) : crc >> 1;
      }
      t[0][i] = crc;
    }
    // t[k][b] advances the CRC past byte b followed by k zero bytes, which
    // is what lets one iteration consume four bytes independently.
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xffu];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xffu];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xffu];
    }
  }
};

const Crc32Tables& tables() {
  static const Crc32Tables instance;
  return instance;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes, std::uint32_t seed) {
  const Crc32Tables& tb = tables();
  std::uint32_t crc = ~seed;
  const std::uint8_t* p = bytes.data();
  std::size_t n = bytes.size();
  while (n >= 4) {
    std::uint32_t word;
    std::memcpy(&word, p, 4);  // little-endian load; all supported targets are LE
    crc ^= word;
    crc = tb.t[3][crc & 0xffu] ^ tb.t[2][(crc >> 8) & 0xffu] ^ tb.t[1][(crc >> 16) & 0xffu] ^
          tb.t[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n-- > 0) {
    crc = tb.t[0][(crc ^ *p++) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace fftgrad::util
