// Fixed-size worker pool with a blocking task queue.
//
// This is the CPU substitute for the paper's GPU execution substrate: the
// packing, selection, and quantization primitives are expressed as
// data-parallel loops over index ranges (see parallel_for.h) and scheduled
// here. The pool is also used by comm::SimCluster to run one logical rank
// per task.
//
// Concurrency analysis: the queue mutex is an analysis::CheckedMutex, so
// debug/sanitizer builds track its owner and lock order (see
// fftgrad/analysis/checked_mutex.h). Under the deterministic-schedule
// stress mode (fftgrad/analysis/schedule_stress.h) workers dequeue a
// seeded-pseudorandom element instead of the FIFO front, turning task
// execution order into a per-seed permutation; correct callers must be
// insensitive to the permutation.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "fftgrad/analysis/checked_mutex.h"
#include "fftgrad/util/thread_annotations.h"

namespace fftgrad::parallel {

class ThreadPool {
 public:
  /// threads == 0 selects std::thread::hardware_concurrency() (minimum 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue `task`; the future resolves when it has run. Exceptions thrown
  /// by the task propagate through the future.
  std::future<void> submit(std::function<void()> task);

  /// Process-wide default pool, sized to the hardware.
  static ThreadPool& global();

 private:
  void worker_loop();
  /// Remove and return the next task. FIFO normally; a seeded permutation
  /// pick under schedule stress. Requires queue_mutex_ held (enforced
  /// statically by the annotation, at runtime by FFTGRAD_ASSERT_HELD).
  std::packaged_task<void()> take_task_locked() FFTGRAD_REQUIRES(queue_mutex_);

  std::vector<std::thread> workers_;
  analysis::CheckedMutex queue_mutex_{"ThreadPool.queue_mutex"};
  std::deque<std::packaged_task<void()>> queue_ FFTGRAD_GUARDED_BY(queue_mutex_);
  // condition_variable_any: CheckedMutex is Lockable but not std::mutex.
  std::condition_variable_any cv_;
  bool stopping_ FFTGRAD_GUARDED_BY(queue_mutex_) = false;
};

}  // namespace fftgrad::parallel
