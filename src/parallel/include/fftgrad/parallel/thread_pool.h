// Fixed-size worker pool with a blocking task queue.
//
// This is the CPU substitute for the paper's GPU execution substrate: the
// packing, selection, and quantization primitives are expressed as
// data-parallel loops over index ranges (see parallel_for.h) and scheduled
// here. The pool is also used by comm::SimCluster to run one logical rank
// per task.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fftgrad::parallel {

class ThreadPool {
 public:
  /// threads == 0 selects std::thread::hardware_concurrency() (minimum 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue `task`; the future resolves when it has run. Exceptions thrown
  /// by the task propagate through the future.
  std::future<void> submit(std::function<void()> task);

  /// Process-wide default pool, sized to the hardware.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace fftgrad::parallel
