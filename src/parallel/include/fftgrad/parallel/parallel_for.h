// Data-parallel loop, reduction, and inclusive-scan primitives over index
// ranges, scheduled on a ThreadPool. These mirror the GPU primitives the
// paper relies on (Thrust's for_each / reduce / inclusive_scan): the packing
// algorithm of Sec 3.2 is exactly mark + scan + scatter.
//
// Work is split into contiguous chunks, one per worker; each primitive
// blocks until every chunk completes, and the first exception (if any)
// is rethrown on the caller.
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <numeric>
#include <span>
#include <vector>

#include "fftgrad/parallel/thread_pool.h"

namespace fftgrad::parallel {

struct Range {
  std::size_t begin;
  std::size_t end;
  std::size_t size() const { return end - begin; }
};

/// Split [0, n) into at most `parts` non-empty contiguous ranges.
inline std::vector<Range> split_range(std::size_t n, std::size_t parts) {
  std::vector<Range> ranges;
  if (n == 0 || parts == 0) return ranges;
  parts = std::min(parts, n);
  const std::size_t base = n / parts;
  const std::size_t extra = n % parts;
  std::size_t at = 0;
  for (std::size_t i = 0; i < parts; ++i) {
    const std::size_t len = base + (i < extra ? 1 : 0);
    ranges.push_back({at, at + len});
    at += len;
  }
  return ranges;
}

/// Run body(begin, end) over disjoint chunks covering [0, n).
inline void parallel_for(ThreadPool& pool, std::size_t n,
                         const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  const auto ranges = split_range(n, pool.size());
  if (ranges.size() == 1) {
    body(0, n);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(ranges.size());
  for (const Range& r : ranges) {
    futures.push_back(pool.submit([&body, r] { body(r.begin, r.end); }));
  }
  for (auto& f : futures) f.get();
}

inline void parallel_for(std::size_t n,
                         const std::function<void(std::size_t, std::size_t)>& body) {
  parallel_for(ThreadPool::global(), n, body);
}

/// Tree reduction: combine per-chunk partials with `combine`.
/// chunk_fn(begin, end) -> partial value for that chunk.
template <typename T, typename ChunkFn, typename Combine>
T parallel_reduce(ThreadPool& pool, std::size_t n, T identity, ChunkFn chunk_fn,
                  Combine combine) {
  if (n == 0) return identity;
  const auto ranges = split_range(n, pool.size());
  if (ranges.size() == 1) return combine(identity, chunk_fn(std::size_t{0}, n));
  std::vector<T> partials(ranges.size(), identity);
  std::vector<std::future<void>> futures;
  futures.reserve(ranges.size());
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    const Range r = ranges[i];
    futures.push_back(
        pool.submit([&partials, &chunk_fn, i, r] { partials[i] = chunk_fn(r.begin, r.end); }));
  }
  for (auto& f : futures) f.get();
  T acc = identity;
  for (const T& p : partials) acc = combine(acc, p);
  return acc;
}

/// Parallel inclusive prefix sum (Blelloch two-pass over chunks):
/// pass 1 computes each chunk's local inclusive scan and total,
/// a serial exclusive scan over the (few) chunk totals yields offsets,
/// pass 2 adds each chunk's offset. out[i] = in[0] + ... + in[i].
template <typename TIn, typename TOut>
void parallel_inclusive_scan(ThreadPool& pool, std::span<const TIn> in, std::span<TOut> out) {
  if (in.size() != out.size()) throw std::invalid_argument("scan: size mismatch");
  const std::size_t n = in.size();
  if (n == 0) return;
  const auto ranges = split_range(n, pool.size());
  std::vector<TOut> totals(ranges.size(), TOut{});

  {
    std::vector<std::future<void>> futures;
    futures.reserve(ranges.size());
    for (std::size_t c = 0; c < ranges.size(); ++c) {
      const Range r = ranges[c];
      futures.push_back(pool.submit([&, c, r] {
        TOut acc{};
        for (std::size_t i = r.begin; i < r.end; ++i) {
          acc += static_cast<TOut>(in[i]);
          out[i] = acc;
        }
        totals[c] = acc;
      }));
    }
    for (auto& f : futures) f.get();
  }

  // Exclusive scan of chunk totals (serial; chunk count == thread count).
  std::vector<TOut> offsets(ranges.size(), TOut{});
  TOut running{};
  for (std::size_t c = 0; c < ranges.size(); ++c) {
    offsets[c] = running;
    running += totals[c];
  }

  {
    std::vector<std::future<void>> futures;
    futures.reserve(ranges.size());
    for (std::size_t c = 1; c < ranges.size(); ++c) {
      const Range r = ranges[c];
      const TOut offset = offsets[c];
      futures.push_back(pool.submit([&, offset, r] {
        for (std::size_t i = r.begin; i < r.end; ++i) out[i] += offset;
      }));
    }
    for (auto& f : futures) f.get();
  }
}

template <typename TIn, typename TOut>
void parallel_inclusive_scan(std::span<const TIn> in, std::span<TOut> out) {
  parallel_inclusive_scan(ThreadPool::global(), in, out);
}

}  // namespace fftgrad::parallel
