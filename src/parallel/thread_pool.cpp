#include "fftgrad/parallel/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdint>

#include "fftgrad/analysis/schedule_stress.h"
#include "fftgrad/telemetry/metrics.h"
#include "fftgrad/telemetry/profiler.h"
#include "fftgrad/util/annotated_mutex.h"

namespace fftgrad::parallel {
namespace {

/// Pool metric handles; immortal registry objects, safe to cache.
struct PoolMetrics {
  telemetry::Counter& tasks;
  telemetry::Gauge& queue_depth;
  telemetry::Histogram& task_latency_us;

  static PoolMetrics& get() {
    static PoolMetrics m{telemetry::MetricsRegistry::global().counter("pool.tasks"),
                         telemetry::MetricsRegistry::global().gauge("pool.queue_depth"),
                         telemetry::MetricsRegistry::global().histogram("pool.task_latency_us")};
    return m;
  }
};

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    util::LockGuard<analysis::CheckedMutex> lock(queue_mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  // Per-task accounting only when metrics collection is switched on; the
  // extra wrapper (one clock read at enqueue, one at start) must not tax
  // the packing primitives' hot loop in normal runs.
  if (telemetry::MetricsRegistry::global().enabled()) {
    PoolMetrics& m = PoolMetrics::get();
    m.tasks.add(1.0);
    const auto enqueued = std::chrono::steady_clock::now();
    task = [inner = std::move(task), enqueued] {
      PoolMetrics::get().task_latency_us.observe(
          std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - enqueued)
              .count());
      inner();
    };
  }
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    util::LockGuard<analysis::CheckedMutex> lock(queue_mutex_);
    queue_.push_back(std::move(packaged));
    PoolMetrics::get().queue_depth.set(static_cast<double>(queue_.size()));
  }
  cv_.notify_one();
  return future;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

std::packaged_task<void()> ThreadPool::take_task_locked() {
  FFTGRAD_ASSERT_HELD(queue_mutex_);
  const std::uint64_t stress = analysis::schedule_stress_seed();
  if (stress != 0 && queue_.size() > 1) {
    const std::size_t at = static_cast<std::size_t>(
        analysis::stress_pick(reinterpret_cast<std::uintptr_t>(this), queue_.size()));
    std::packaged_task<void()> task = std::move(queue_[at]);
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(at));
    return task;
  }
  std::packaged_task<void()> task = std::move(queue_.front());
  queue_.pop_front();
  return task;
}

void ThreadPool::worker_loop() {
  // One relaxed load when the host-time profiler was never configured.
  telemetry::Profiler::register_current_thread();
  for (;;) {
    std::packaged_task<void()> task;
    {
      util::UniqueLock<analysis::CheckedMutex> lock(queue_mutex_);
      // Manual wait loop (not wait(lock, pred)): the predicate lambda would
      // be analyzed as a separate function with no capability, while the
      // loop keeps the guarded reads inside this annotated scope.
      while (!stopping_ && queue_.empty()) cv_.wait(lock);
      if (queue_.empty()) return;  // stopping_ and drained
      task = take_task_locked();
    }
    task();
  }
}

}  // namespace fftgrad::parallel
