#include "fftgrad/parallel/thread_pool.h"

#include <algorithm>

namespace fftgrad::parallel {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

}  // namespace fftgrad::parallel
