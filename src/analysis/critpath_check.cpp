#include "fftgrad/analysis/critpath_check.h"

#include <cmath>
#include <map>
#include <set>
#include <sstream>

#include "fftgrad/analysis/check.h"

namespace fftgrad::analysis {

using util::SimSeconds;

namespace {

SimSeconds abs_diff(SimSeconds a, SimSeconds b) {
  return SimSeconds(std::fabs((a - b).to_double()));
}

}  // namespace

std::vector<std::string> validate_critical_path(const telemetry::CpAnalysis& analysis,
                                                const std::vector<telemetry::CpEvent>& events,
                                                const CritpathCheckOptions& options) {
  std::vector<std::string> problems;
  const auto complain = [&problems](const std::string& what) {
    problems.push_back(what);
    report_violation("critpath", what);
  };
  const SimSeconds time_eps{options.time_eps};
  const SimSeconds sum_tolerance{options.sum_tolerance};

  // (1) + (2): contiguous tiling within windows, back-to-back windows.
  SimSeconds previous_end{-1.0};
  for (const telemetry::CpIteration& iteration : analysis.iterations) {
    std::ostringstream tag;
    tag << "iteration " << iteration.iteration;
    if (previous_end >= SimSeconds(0.0) &&
        abs_diff(iteration.start_s, previous_end) > time_eps) {
      std::ostringstream out;
      out << tag.str() << ": window starts at " << iteration.start_s.to_double()
          << " but the previous window ended at " << previous_end.to_double();
      complain(out.str());
    }
    previous_end = iteration.end_s;

    SimSeconds cursor = iteration.start_s;
    for (const telemetry::CpSegment& segment : iteration.path) {
      if (abs_diff(segment.start_s, cursor) > time_eps) {
        std::ostringstream out;
        out << tag.str() << ": segment '" << segment.name << "' starts at "
            << segment.start_s.to_double() << " but the path cursor is at "
            << cursor.to_double()
            << (segment.start_s > cursor ? " (gap)" : " (overlap)");
        complain(out.str());
      }
      cursor = segment.end_s;
    }
    if (abs_diff(cursor, iteration.end_s) > time_eps) {
      std::ostringstream out;
      out << tag.str() << ": path ends at " << cursor.to_double() << ", window ends at "
          << iteration.end_s.to_double();
      complain(out.str());
    }

    const SimSeconds sum = iteration.category_sum_s();
    if (abs_diff(sum, iteration.e2e_s()) > sum_tolerance) {
      std::ostringstream out;
      out << tag.str() << ": category times sum to " << sum.to_double()
          << " but end-to-end is " << iteration.e2e_s().to_double() << " (|diff| "
          << abs_diff(sum, iteration.e2e_s()).to_double() << " > "
          << sum_tolerance.to_double() << ")";
      complain(out.str());
    }
  }

  // (3): happens-before support for every consume edge. Ops whose barrier
  // snapped a straggler back ("abandoned") legitimately show a publish
  // later than its consumers — the work was abandoned — so only the
  // edge-existence half applies there.
  std::map<std::pair<std::int32_t, std::int64_t>, SimSeconds> publishes;  // (rank, op) -> time
  std::set<std::int64_t> snapped_ops;
  for (const telemetry::CpEvent& event : events) {
    if (event.edge && event.name == "publish" && event.op >= 0) {
      publishes[{event.rank, event.op}] = event.start_s;
    }
    if (!event.edge && event.name == "abandoned" && event.op >= 0) {
      // The abandoned record carries the barrier generation; a straggler
      // excluded at generation g published at the collective op just
      // before it. Conservatively exempt every op the straggler touched.
      snapped_ops.insert(event.op);
    }
  }
  const bool any_snapback = !snapped_ops.empty();
  for (const telemetry::CpEvent& event : events) {
    if (!event.edge || event.name != "consume" || event.op < 0) continue;
    const auto it = publishes.find({event.peer, event.op});
    if (it == publishes.end()) {
      std::ostringstream out;
      out << "consume on rank " << event.rank << " of op " << event.op << " from rank "
          << event.peer << " has no matching publish";
      complain(out.str());
      continue;
    }
    // Barrier generations and collective ops use different counters, so a
    // snapback anywhere in the trace relaxes the timestamp half globally —
    // the existence half (above) still applies everywhere.
    if (!any_snapback && it->second > event.start_s + time_eps) {
      std::ostringstream out;
      out << "consume on rank " << event.rank << " of op " << event.op << " from rank "
          << event.peer << " at sim time " << event.start_s.to_double()
          << " precedes the sender's publish at " << it->second.to_double();
      complain(out.str());
    }
  }

  return problems;
}

}  // namespace fftgrad::analysis
