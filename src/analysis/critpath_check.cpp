#include "fftgrad/analysis/critpath_check.h"

#include <cmath>
#include <map>
#include <set>
#include <sstream>

#include "fftgrad/analysis/check.h"

namespace fftgrad::analysis {

std::vector<std::string> validate_critical_path(const telemetry::CpAnalysis& analysis,
                                                const std::vector<telemetry::CpEvent>& events,
                                                const CritpathCheckOptions& options) {
  std::vector<std::string> problems;
  const auto complain = [&problems](const std::string& what) {
    problems.push_back(what);
    report_violation("critpath", what);
  };

  // (1) + (2): contiguous tiling within windows, back-to-back windows.
  double previous_end = -1.0;
  for (const telemetry::CpIteration& iteration : analysis.iterations) {
    std::ostringstream tag;
    tag << "iteration " << iteration.iteration;
    if (previous_end >= 0.0 &&
        std::fabs(iteration.start_s - previous_end) > options.time_eps) {
      std::ostringstream out;
      out << tag.str() << ": window starts at " << iteration.start_s
          << " but the previous window ended at " << previous_end;
      complain(out.str());
    }
    previous_end = iteration.end_s;

    double cursor = iteration.start_s;
    for (const telemetry::CpSegment& segment : iteration.path) {
      if (std::fabs(segment.start_s - cursor) > options.time_eps) {
        std::ostringstream out;
        out << tag.str() << ": segment '" << segment.name << "' starts at "
            << segment.start_s << " but the path cursor is at " << cursor
            << (segment.start_s > cursor ? " (gap)" : " (overlap)");
        complain(out.str());
      }
      cursor = segment.end_s;
    }
    if (std::fabs(cursor - iteration.end_s) > options.time_eps) {
      std::ostringstream out;
      out << tag.str() << ": path ends at " << cursor << ", window ends at "
          << iteration.end_s;
      complain(out.str());
    }

    const double sum = iteration.category_sum_s();
    if (std::fabs(sum - iteration.e2e_s()) > options.sum_tolerance) {
      std::ostringstream out;
      out << tag.str() << ": category times sum to " << sum << " but end-to-end is "
          << iteration.e2e_s() << " (|diff| " << std::fabs(sum - iteration.e2e_s()) << " > "
          << options.sum_tolerance << ")";
      complain(out.str());
    }
  }

  // (3): happens-before support for every consume edge. Ops whose barrier
  // snapped a straggler back ("abandoned") legitimately show a publish
  // later than its consumers — the work was abandoned — so only the
  // edge-existence half applies there.
  std::map<std::pair<std::int32_t, std::int64_t>, double> publishes;  // (rank, op) -> time
  std::set<std::int64_t> snapped_ops;
  for (const telemetry::CpEvent& event : events) {
    if (event.edge && event.name == "publish" && event.op >= 0) {
      publishes[{event.rank, event.op}] = event.start_s;
    }
    if (!event.edge && event.name == "abandoned" && event.op >= 0) {
      // The abandoned record carries the barrier generation; a straggler
      // excluded at generation g published at the collective op just
      // before it. Conservatively exempt every op the straggler touched.
      snapped_ops.insert(event.op);
    }
  }
  const bool any_snapback = !snapped_ops.empty();
  for (const telemetry::CpEvent& event : events) {
    if (!event.edge || event.name != "consume" || event.op < 0) continue;
    const auto it = publishes.find({event.peer, event.op});
    if (it == publishes.end()) {
      std::ostringstream out;
      out << "consume on rank " << event.rank << " of op " << event.op << " from rank "
          << event.peer << " has no matching publish";
      complain(out.str());
      continue;
    }
    // Barrier generations and collective ops use different counters, so a
    // snapback anywhere in the trace relaxes the timestamp half globally —
    // the existence half (above) still applies everywhere.
    if (!any_snapback && it->second > event.start_s + options.time_eps) {
      std::ostringstream out;
      out << "consume on rank " << event.rank << " of op " << event.op << " from rank "
          << event.peer << " at sim time " << event.start_s
          << " precedes the sender's publish at " << it->second;
      complain(out.str());
    }
  }

  return problems;
}

}  // namespace fftgrad::analysis
