#include "fftgrad/analysis/check.h"
#include "fftgrad/analysis/checked_mutex.h"
#include "fftgrad/analysis/schedule_stress.h"

#if FFTGRAD_ANALYSIS

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstddef>
#include <map>
#include <set>
#include <span>
#include <vector>

#include "fftgrad/telemetry/metrics.h"

namespace fftgrad::analysis {
namespace {

// ---------------------------------------------------------------------------
// Violation reporting

std::atomic<ViolationHandler> g_handler{nullptr};
std::atomic<std::size_t> g_violations{0};

void default_handler(const char* kind, const std::string& message) {
  std::fprintf(stderr, "fftgrad-analysis: [%s] %s\n", kind, message.c_str());
  std::abort();
}

// ---------------------------------------------------------------------------
// Lock-order graph
//
// Nodes are CheckedMutex order ids, an edge a->b means "a was held while b
// was acquired". A cycle means two call paths acquire the same mutexes in
// opposite orders — a deadlock waiting for the right interleaving. The
// graph is process-global and append-only (edges are never unlearned
// except by reset_lock_order_graph), so an inversion is caught even when
// the two paths never run concurrently.

struct LockOrderGraph {
  std::mutex mutex;  // plain: the graph must not instrument itself
  std::map<std::uint32_t, std::set<std::uint32_t>> edges;

  bool reachable(std::uint32_t from, std::uint32_t to) const {
    std::vector<std::uint32_t> stack{from};
    std::set<std::uint32_t> seen;
    while (!stack.empty()) {
      const std::uint32_t at = stack.back();
      stack.pop_back();
      if (at == to) return true;
      if (!seen.insert(at).second) continue;
      const auto it = edges.find(at);
      if (it == edges.end()) continue;
      for (std::uint32_t next : it->second) stack.push_back(next);
    }
    return false;
  }
};

LockOrderGraph& lock_order_graph() {
  static LockOrderGraph* g = new LockOrderGraph();  // never destroyed
  return *g;
}

/// Mutexes the calling thread currently holds, in acquisition order.
///
/// Deliberately a trivially-destructible POD, not a std::vector: process
/// teardown runs TLS destructors before atexit handlers, and a static
/// object (e.g. ThreadPool::global()) locking a CheckedMutex from its
/// destructor would then touch a destroyed vector. A plain array has no
/// TLS destructor, so the stack stays valid for the whole thread lifetime.
/// Depth is bounded by real nesting (the deepest path in the tree holds 2);
/// past the cap, locks go untracked rather than aborting.
struct HeldStack {
  static constexpr std::size_t kCapacity = 64;
  const CheckedMutex* items[kCapacity];
  std::size_t count;

  void push(const CheckedMutex* mutex) {
    if (count < kCapacity) items[count] = mutex;
    ++count;
  }

  void remove(const CheckedMutex* mutex) {
    const std::size_t tracked = count < kCapacity ? count : kCapacity;
    for (std::size_t i = tracked; i-- > 0;) {
      if (items[i] != mutex) continue;
      for (std::size_t j = i + 1; j < tracked; ++j) items[j - 1] = items[j];
      --count;
      return;
    }
    if (count > kCapacity) --count;  // it was one of the untracked overflow locks
  }

  std::span<const CheckedMutex* const> held() const {
    return {items, count < kCapacity ? count : kCapacity};
  }
};

thread_local HeldStack t_held{};

std::atomic<std::uint32_t> g_next_mutex_id{1};

// ---------------------------------------------------------------------------
// Schedule stress

std::atomic<std::uint64_t> g_stress_seed{0};
thread_local std::uint64_t t_stress_decisions = 0;

}  // namespace

void set_violation_handler(ViolationHandler handler) {
  g_handler.store(handler, std::memory_order_relaxed);
}

std::size_t violation_count() { return g_violations.load(std::memory_order_relaxed); }

void reset_violation_count() { g_violations.store(0, std::memory_order_relaxed); }

void report_violation(const char* kind, const std::string& message) {
  g_violations.fetch_add(1, std::memory_order_relaxed);
  {
    // Registry objects are immortal; the disabled path is one relaxed load.
    static telemetry::Counter& violations =
        telemetry::MetricsRegistry::global().counter("analysis.violations");
    violations.add(1.0);
  }
  ViolationHandler handler = g_handler.load(std::memory_order_relaxed);
  if (handler == nullptr) handler = default_handler;
  handler(kind, message);
}

// ---------------------------------------------------------------------------
// CheckedMutex

CheckedMutex::CheckedMutex(const char* name)
    : name_(name), id_(g_next_mutex_id.fetch_add(1, std::memory_order_relaxed)) {}

CheckedMutex::~CheckedMutex() = default;

void CheckedMutex::note_acquired() {
  owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  t_held.push(this);
}

// The three methods below implement the locking primitive itself, so their
// bodies are exempt from the static analysis (the capability they acquire
// or release is `*this`; the wrapped std::mutex is unannotated).
FFTGRAD_NO_THREAD_SAFETY_ANALYSIS void CheckedMutex::lock() {
  // Register order edges before blocking, so a genuine deadlock is still
  // reported (by whichever thread closed the cycle) instead of hanging
  // silently.
  if (t_held.count != 0) {
    LockOrderGraph& graph = lock_order_graph();
    std::lock_guard<std::mutex> guard(graph.mutex);
    for (const CheckedMutex* held : t_held.held()) {
      if (held == this) continue;  // recursive lock: reported as deadlock by the OS
      if (graph.reachable(id_, held->order_id())) {
        report_violation("lock-order",
                         std::string("acquiring '") + name_ + "' while holding '" +
                             held->name() +
                             "' inverts an established lock order (latent deadlock)");
      }
      graph.edges[held->order_id()].insert(id_);
    }
  }
  mutex_.lock();
  note_acquired();
}

FFTGRAD_NO_THREAD_SAFETY_ANALYSIS bool CheckedMutex::try_lock() {
  // try_lock cannot deadlock, so no order edge is recorded — a failed
  // speculative probe under an inverted order is legal.
  if (!mutex_.try_lock()) return false;
  note_acquired();
  return true;
}

FFTGRAD_NO_THREAD_SAFETY_ANALYSIS void CheckedMutex::unlock() {
  if (!held_by_current_thread()) {
    report_violation("mutex-misuse",
                     std::string("unlock of '") + name_ + "' by a thread that does not hold it");
  }
  owner_.store(std::thread::id(), std::memory_order_relaxed);
  t_held.remove(this);
  mutex_.unlock();
}

namespace detail {

void assert_held(const CheckedMutex& mutex, const char* expr, const char* file, int line) {
  if (mutex.held_by_current_thread()) return;
  report_violation("assert-held", std::string(file) + ":" + std::to_string(line) +
                                      ": FFTGRAD_ASSERT_HELD(" + expr +
                                      ") failed: calling thread does not hold '" +
                                      mutex.name() + "'");
}

}  // namespace detail

void reset_lock_order_graph() {
  LockOrderGraph& graph = lock_order_graph();
  std::lock_guard<std::mutex> guard(graph.mutex);
  graph.edges.clear();
}

// ---------------------------------------------------------------------------
// Schedule stress

std::uint64_t schedule_stress_seed() {
  return g_stress_seed.load(std::memory_order_relaxed);
}

void set_schedule_stress_seed(std::uint64_t seed) {
  g_stress_seed.store(seed, std::memory_order_relaxed);
}

std::uint64_t stress_pick(std::uint64_t salt, std::uint64_t bound) {
  const std::uint64_t seed = schedule_stress_seed();
  return mix64(seed ^ mix64(salt) ^ ++t_stress_decisions) % bound;
}

ScheduleStressScope::ScheduleStressScope(std::uint64_t seed)
    : previous_(schedule_stress_seed()) {
  set_schedule_stress_seed(seed);
}

ScheduleStressScope::~ScheduleStressScope() { set_schedule_stress_seed(previous_); }

}  // namespace fftgrad::analysis

#else  // !FFTGRAD_ANALYSIS

// Keep the archive non-empty in Release builds.
namespace fftgrad::analysis {
namespace {
const int kAnalysisCompiledOut = 0;
}
const int* analysis_compiled_out_marker() { return &kAnalysisCompiledOut; }
}  // namespace fftgrad::analysis

#endif  // FFTGRAD_ANALYSIS
