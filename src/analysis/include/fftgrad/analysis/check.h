// Violation reporting for the correctness-analysis layer.
//
// Every checker in fftgrad/analysis (CheckedMutex lock-order tracking,
// SharedState access tracking, FFTGRAD_ASSERT_HELD) funnels detected
// problems through report_violation(). The default handler prints the
// diagnostic to stderr and aborts — a concurrency invariant violation is
// never a recoverable condition in production code — but tests install a
// counting handler so violations can be asserted on without killing the
// process.
#pragma once

#include <cstddef>
#include <string>

#include "fftgrad/analysis/config.h"

namespace fftgrad::analysis {

/// kind is a short stable tag ("lock-order", "assert-held", "shared-state",
/// "mutex-misuse"); message carries the specifics.
using ViolationHandler = void (*)(const char* kind, const std::string& message);

#if FFTGRAD_ANALYSIS

/// Install a handler (nullptr restores the abort-on-violation default).
void set_violation_handler(ViolationHandler handler);

/// Count of violations reported since process start / last reset. Bumped
/// before the handler runs, so counting works even with the default
/// aborting handler (useful with EXPECT_DEATH).
std::size_t violation_count();
void reset_violation_count();

/// Report through the installed handler. Used by the checkers; test code
/// may call it directly to exercise a handler.
void report_violation(const char* kind, const std::string& message);

#else

inline void set_violation_handler(ViolationHandler) {}
inline std::size_t violation_count() { return 0; }
inline void reset_violation_count() {}
inline void report_violation(const char*, const std::string&) {}

#endif

}  // namespace fftgrad::analysis
