// CheckedMutex: a drop-in std::mutex replacement that, in analysis builds,
// knows its owner and participates in process-wide lock-order tracking.
//
//  * FFTGRAD_ASSERT_HELD(m) aborts (via the violation handler) when the
//    calling thread does not hold m — the runtime analogue of Clang's
//    ASSERT_CAPABILITY, usable on any compiler.
//  * Every lock() registers held-before edges in a global lock-order graph;
//    an acquisition that would close a cycle (an AB/BA inversion — a latent
//    deadlock even if this particular run interleaved safely) is reported
//    before the thread blocks on it.
//  * unlock() from a thread that does not own the mutex is reported.
//
// Release builds compile all of this to a plain std::mutex wrapper with no
// extra state. Code holding a CheckedMutex across a condition wait must use
// std::condition_variable_any (the native-handle-free variant), since
// CheckedMutex is not std::mutex itself.
//
// Both branches are a Clang Thread Safety CAPABILITY with annotated
// lock/try_lock/unlock, so GUARDED_BY/REQUIRES written against a
// CheckedMutex member is enforced by the `thread-safety` preset in every
// build mode's class shape. Use the guards in fftgrad/util/annotated_mutex.h
// (util::LockGuard / util::UniqueLock) rather than the std:: ones — the
// std guards are not scoped capabilities, so the analysis cannot see them.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>

#include "fftgrad/analysis/config.h"
#include "fftgrad/util/thread_annotations.h"

namespace fftgrad::analysis {

#if FFTGRAD_ANALYSIS

class FFTGRAD_CAPABILITY("mutex") CheckedMutex {
 public:
  /// `name` must have static storage; it labels violation diagnostics.
  explicit CheckedMutex(const char* name = "mutex");
  ~CheckedMutex();

  CheckedMutex(const CheckedMutex&) = delete;
  CheckedMutex& operator=(const CheckedMutex&) = delete;

  void lock() FFTGRAD_ACQUIRE();
  bool try_lock() FFTGRAD_TRY_ACQUIRE(true);
  void unlock() FFTGRAD_RELEASE();

  bool held_by_current_thread() const {
    return owner_.load(std::memory_order_relaxed) == std::this_thread::get_id();
  }
  const char* name() const { return name_; }
  std::uint32_t order_id() const { return id_; }

 private:
  void note_acquired();

  std::mutex mutex_;
  std::atomic<std::thread::id> owner_{};
  const char* name_;
  std::uint32_t id_;
};

namespace detail {
void assert_held(const CheckedMutex& mutex, const char* expr, const char* file, int line);
}  // namespace detail

/// Forget all recorded lock-order edges (between tests that intentionally
/// provoke inversions; never needed in production code).
void reset_lock_order_graph();

#else  // !FFTGRAD_ANALYSIS

class FFTGRAD_CAPABILITY("mutex") CheckedMutex {
 public:
  explicit CheckedMutex(const char* = "mutex") {}

  CheckedMutex(const CheckedMutex&) = delete;
  CheckedMutex& operator=(const CheckedMutex&) = delete;

  void lock() FFTGRAD_ACQUIRE() FFTGRAD_NO_THREAD_SAFETY_ANALYSIS { mutex_.lock(); }
  bool try_lock() FFTGRAD_TRY_ACQUIRE(true) FFTGRAD_NO_THREAD_SAFETY_ANALYSIS {
    return mutex_.try_lock();
  }
  void unlock() FFTGRAD_RELEASE() FFTGRAD_NO_THREAD_SAFETY_ANALYSIS { mutex_.unlock(); }

 private:
  std::mutex mutex_;
};

inline void reset_lock_order_graph() {}

#endif

}  // namespace fftgrad::analysis

#if FFTGRAD_ANALYSIS
#define FFTGRAD_ASSERT_HELD(m) \
  ::fftgrad::analysis::detail::assert_held((m), #m, __FILE__, __LINE__)
#else
#define FFTGRAD_ASSERT_HELD(m) ((void)0)
#endif
