// Deterministic-schedule stress mode.
//
// Races hide in particular interleavings; TSan finds them only when the
// schedule actually produces the access pattern, and production schedules
// are depressingly repetitive. Stress mode perturbs the two schedulers in
// the framework from one process-wide seed:
//
//  * ThreadPool workers pop a seeded-pseudorandom queue element instead of
//    the FIFO front, so task execution order becomes a per-seed
//    permutation;
//  * SimCluster ranks spin through a seeded number of yields before each
//    barrier, perturbing arrival order.
//
// Re-running a test under N seeds explores N schedule families with zero
// sanitizer overhead, and a failing seed reproduces: the pool's pick
// sequence is a pure function of (seed, worker thread pick counter).
// Correctness claim under test: results must be bit-identical across every
// seed — anything schedule-dependent is a bug.
//
// Release builds hard-wire the seed to 0 (off), so the hooks in the pool
// and the barrier fold to nothing.
#pragma once

#include <cstdint>

#include "fftgrad/analysis/config.h"

namespace fftgrad::analysis {

/// SplitMix64 step: the mixer behind every stress decision (and reusable
/// by structure-aware fuzzers wanting the same cheap determinism).
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

#if FFTGRAD_ANALYSIS

/// Process-wide stress seed; 0 = stress off (the default).
std::uint64_t schedule_stress_seed();
void set_schedule_stress_seed(std::uint64_t seed);

/// Pick in [0, bound) from the stress seed, `salt` (caller identity), and a
/// thread-local decision counter. bound must be > 0.
std::uint64_t stress_pick(std::uint64_t salt, std::uint64_t bound);

/// RAII seed scope for tests: set on entry, restore on exit.
class ScheduleStressScope {
 public:
  explicit ScheduleStressScope(std::uint64_t seed);
  ~ScheduleStressScope();

  ScheduleStressScope(const ScheduleStressScope&) = delete;
  ScheduleStressScope& operator=(const ScheduleStressScope&) = delete;

 private:
  std::uint64_t previous_;
};

#else  // !FFTGRAD_ANALYSIS

inline constexpr std::uint64_t schedule_stress_seed() { return 0; }
inline void set_schedule_stress_seed(std::uint64_t) {}
inline std::uint64_t stress_pick(std::uint64_t, std::uint64_t) { return 0; }

class ScheduleStressScope {
 public:
  explicit ScheduleStressScope(std::uint64_t) {}
};

#endif

}  // namespace fftgrad::analysis
