// SharedState<T>: a wrapper that records which threads touch a value and
// flags unsynchronized cross-thread access at runtime.
//
// The protocol mirrors the happens-before reasoning a reviewer does by
// hand: between two synchronization points, either a single thread may
// access the value freely, or any number of threads may read it — but a
// write concurrent with any other thread's access is a violation. Code
// that establishes a real happens-before edge by other means (joining the
// accessor threads, passing a barrier, handing off under a mutex) declares
// it by calling sync(), which resets the accessor history.
//
// This is a cheap, always-on-in-debug complement to TSan: it has no
// shadow-memory cost, so it can run in every asan/tsan/debug test, and its
// reports name the wrapped state rather than raw addresses. In Release
// builds the wrapper is a bare T: read()/write() are inline pass-throughs
// and sync() is a no-op.
#pragma once

#include <string>
#include <thread>
#include <vector>

#include "fftgrad/analysis/check.h"
#include "fftgrad/analysis/config.h"
#include "fftgrad/util/annotated_mutex.h"
#include "fftgrad/util/thread_annotations.h"

namespace fftgrad::analysis {

#if FFTGRAD_ANALYSIS

template <typename T>
class SharedState {
 public:
  /// `name` must have static storage; it labels violation diagnostics.
  explicit SharedState(const char* name = "shared-state") : name_(name) {}
  SharedState(T value, const char* name) : value_(std::move(value)), name_(name) {}

  SharedState(const SharedState&) = delete;
  SharedState& operator=(const SharedState&) = delete;

  /// Record a read by the calling thread; flags a read concurrent with
  /// another thread's un-synchronized write.
  const T& read() const {
    note_access(false);
    return value_;
  }

  /// Record a write by the calling thread; flags a write concurrent with
  /// any other thread's un-synchronized access.
  T& write() {
    note_access(true);
    return value_;
  }

  /// Declare a synchronization point (threads joined, barrier passed,
  /// ownership handed off): accessor history restarts from here.
  void sync() {
    util::LockGuard<util::Mutex> lock(track_mutex_);
    accessors_.clear();
  }

  /// Escape hatch for access already proven safe by construction; records
  /// nothing.
  T& unchecked() { return value_; }
  const T& unchecked() const { return value_; }

 private:
  struct Accessor {
    std::thread::id thread;
    bool wrote;
  };

  void note_access(bool write) const {
    const std::thread::id self = std::this_thread::get_id();
    util::LockGuard<util::Mutex> lock(track_mutex_);
    bool seen_self = false;
    for (Accessor& a : accessors_) {
      if (a.thread == self) {
        a.wrote = a.wrote || write;
        seen_self = true;
        continue;
      }
      if (write || a.wrote) {
        report_violation(
            "shared-state",
            std::string(name_) + ": unsynchronized cross-thread " +
                (write ? "write" : "read of another thread's write") +
                " (call sync() where the real happens-before edge is established)");
        accessors_.clear();
        break;
      }
    }
    if (!seen_self) accessors_.push_back({self, write});
  }

  T value_{};
  const char* name_;
  mutable util::Mutex track_mutex_;
  mutable std::vector<Accessor> accessors_ FFTGRAD_GUARDED_BY(track_mutex_);
};

#else  // !FFTGRAD_ANALYSIS

template <typename T>
class SharedState {
 public:
  explicit SharedState(const char* = "shared-state") {}
  SharedState(T value, const char*) : value_(std::move(value)) {}

  SharedState(const SharedState&) = delete;
  SharedState& operator=(const SharedState&) = delete;

  const T& read() const { return value_; }
  T& write() { return value_; }
  void sync() {}
  T& unchecked() { return value_; }
  const T& unchecked() const { return value_; }

 private:
  T value_{};
};

#endif

}  // namespace fftgrad::analysis
