// Build-mode switch for the correctness-analysis instrumentation.
//
// FFTGRAD_ANALYSIS is 1 when the annotated race/invariant checker is
// compiled in (sanitizer presets, debug builds, or -DFFTGRAD_ANALYSIS=ON)
// and 0 otherwise. Release builds compile every annotation to nothing:
// CheckedMutex collapses to a plain std::mutex wrapper, SharedState<T> to a
// bare T, FFTGRAD_ASSERT_HELD to (void)0, and the schedule-stress seed to a
// constant 0 so stress branches fold away.
//
// The flag must be consistent across every translation unit of a build
// (it changes class layouts); it is therefore set tree-wide by CMake, not
// per target.
#pragma once

#if !defined(FFTGRAD_ANALYSIS)
#if !defined(NDEBUG)
#define FFTGRAD_ANALYSIS 1
#else
#define FFTGRAD_ANALYSIS 0
#endif
#endif
