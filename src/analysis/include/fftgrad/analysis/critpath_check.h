// Structural validation of a critical-path analysis against the raw cp
// events it was built from — the analysis layer's cross-check that the
// analyzer's output is internally consistent and that the happens-before
// evidence the causality layer mirrored into the trace actually supports
// the walk:
//
//   (1) contiguity: within every iteration window the path segments tile
//       [start, end] with no gaps or overlaps, so the per-category times
//       sum to the end-to-end time (within `sum_tolerance`);
//   (2) monotonicity: iteration windows are back-to-back and in order;
//   (3) happens-before: every "consume" cp-edge has a matching "publish"
//       from its sender for the same op, and — unless the op's barrier was
//       snapped back by a straggler timeout ("abandoned" record) — the
//       publish's simulated time does not exceed the consume's.
//
// Returns human-readable problems (empty = valid). In FFTGRAD_ANALYSIS
// builds each problem is also routed through report_violation("critpath",
// ...), aborting under the default violation handler.
#pragma once

#include <string>
#include <vector>

#include "fftgrad/telemetry/critical_path.h"

namespace fftgrad::analysis {

struct CritpathCheckOptions {
  double sum_tolerance = 1e-6;  ///< acceptance bound on |sum - e2e|
  double time_eps = 1e-9;       ///< timestamp comparison slack
};

std::vector<std::string> validate_critical_path(
    const telemetry::CpAnalysis& analysis, const std::vector<telemetry::CpEvent>& events,
    const CritpathCheckOptions& options = {});

}  // namespace fftgrad::analysis
