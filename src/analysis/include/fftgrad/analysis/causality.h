// Causality analyzer: vector-clock happens-before tracking and
// protocol-invariant validation for the simulated cluster.
//
// TSan and CheckedMutex see *thread* races; this layer sees *rank-level
// protocol* races — a rank consuming a mailbox block with no happens-before
// edge from its sender, two replicas disagreeing on which contributions
// survived a straggler timeout, or model replicas silently diverging — the
// class of bug that corrupts converged accuracy instead of crashing.
//
// Mechanics. Every rank carries a VectorClock with one component per rank:
//
//   * tick on send   — publishing a contribution into a collective bumps
//                      the sender's own component and records a
//                      publication {clock snapshot, epoch = op index};
//   * join on receive — a verified receive (trailer or tracker check)
//                      establishes the sender's snapshot <= the consumer's
//                      clock, i.e. the write happens-before the read;
//   * merge at barriers — the rank that releases a barrier generation
//                      joins every live rank's clock into the common
//                      upper bound (BSP: the barrier is a full sync).
//
// The tracker asserts, on every consumed block, that (a) the sender's
// publication happens-before the consumer's read, (b) the block's epoch
// (collective op index) matches the consumer's, and (c) all surviving
// replicas computed the identical exclusion set and quorum after
// straggler/crash handling. cluster_train additionally feeds a
// per-iteration state hash through check_agreement() so replica divergence
// is caught at the iteration that caused it. Violations are reported
// through fftgrad/analysis/check.h with the op index, ranks, and clocks
// involved.
//
// Wire integration: collective frames may carry an analysis trailer (the
// sender's clock + epoch, encode_trailer/decode_trailer below) so the
// happens-before evidence travels with the bytes and is re-verified at the
// consumer from what was actually received.
//
// Compile-time gating: VectorClock and the trailer codec are plain value
// code, always compiled (the wire format must not change shape between
// build modes — a Release sender omits the trailer, an analysis reader
// accepts its absence). The CausalityTracker and the protocol-mutation
// hook compile to empty no-op stubs unless FFTGRAD_ANALYSIS is on, so
// Release collectives pay nothing.
//
// Proving the detector: set_mutation() seeds one of seven protocol mutants
// (reordered delivery, stale epoch, dropped clock join, exclusion-set
// desync, quorum mismatch, state-hash divergence, stale membership view)
// into otherwise-correct collectives; tests/test_causality.cpp asserts
// every mutant is flagged and the clean suite reports zero violations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "fftgrad/util/taint.h"
#include "fftgrad/util/thread_annotations.h"

#include "fftgrad/analysis/check.h"
#include "fftgrad/analysis/config.h"

#if FFTGRAD_ANALYSIS
#include <atomic>
#include <map>

#include "fftgrad/util/annotated_mutex.h"
#endif

namespace fftgrad::analysis {

// ---------------------------------------------------------------------------
// Vector clock algebra (always compiled; pure value type).

/// One logical-clock component per rank. Component r counts rank r's
/// publications observed (directly or transitively) by the clock's owner.
class VectorClock {
 public:
  VectorClock() = default;
  explicit VectorClock(std::size_t ranks) : components_(ranks, 0) {}
  /// Adopt explicit component values (wire decoding, test fixtures).
  explicit VectorClock(std::vector<std::uint64_t> components)
      : components_(std::move(components)) {}

  std::size_t size() const { return components_.size(); }
  std::uint64_t component(std::size_t rank) const { return components_[rank]; }

  /// Local event on `rank` (a publication): bump own component.
  void tick(std::size_t rank) { ++components_[rank]; }

  /// Component-wise max with `other` (message receive / barrier merge).
  /// Sizes must match; join with a larger clock is a protocol error the
  /// caller should have prevented (tracked clocks are sized at run start).
  void join(const VectorClock& other);

  /// Strict happens-before: every component <= other's and at least one <.
  /// (Equal clocks denote the same cut, not an ordering.)
  bool happens_before(const VectorClock& other) const;

  /// True when neither clock happens-before the other and they differ.
  bool concurrent_with(const VectorClock& other) const;

  /// Causal-delivery test for a received snapshot: every component <=
  /// other's (equality allowed). This is the consumable form of (a): the
  /// sender's snapshot is inside the consumer's causal past.
  bool included_in(const VectorClock& other) const;

  bool operator==(const VectorClock& other) const { return components_ == other.components_; }
  bool operator!=(const VectorClock& other) const { return !(*this == other); }

  /// "[3,0,7]" — the form violation reports embed.
  std::string to_string() const;

 private:
  std::vector<std::uint64_t> components_;
};

// ---------------------------------------------------------------------------
// Wire analysis trailer (always compiled).

/// What a frame's analysis trailer carries: who sent it, during which
/// collective epoch (the sender's op index), under which membership view
/// epoch (SimCluster's crash/rejoin counter as the sender observed it at
/// publication), and the sender's clock at publication time.
struct AnalysisTrailer {
  std::uint32_t sender = 0;
  std::uint64_t epoch = 0;
  std::uint64_t view_epoch = 0;
  VectorClock clock;
};

/// Byte layout: [u32 magic "FGAT"][u32 sender][u64 epoch][u64 view_epoch]
/// [u64 ranks][u64 x ranks components]. Fixed-width little-endian PODs,
/// matching the frame body conventions in fftgrad/core/compressor.h.
inline constexpr std::uint32_t kTrailerMagic = 0x46474154u;  // "FGAT"

std::vector<std::uint8_t> encode_trailer(const AnalysisTrailer& trailer);

/// Parse an encode_trailer() blob. Throws std::runtime_error on a
/// truncated buffer, bad magic, a rank count whose component payload
/// cannot fit, or trailing garbage. The trailer rode in on the wire, so it
/// comes back Untrusted: release it through a validator asserting this
/// receiver's expectations (sender/rank count consistent with the cluster).
util::Untrusted<AnalysisTrailer> decode_trailer(std::span<const std::uint8_t> bytes);

// ---------------------------------------------------------------------------
// Protocol-mutation hook (test-only): seed one deliberate protocol bug
// into otherwise-correct collectives to prove the detector catches it.

enum class ProtocolMutation : std::uint8_t {
  kNone = 0,
  kReorderDelivery,      ///< consumer reads the sender's *previous* publication
  kStaleEpoch,           ///< sender publishes without bumping its epoch
  kDropClockJoin,        ///< barrier merge skips one rank's clock join
  kDesyncExclusion,      ///< one rank computes a different exclusion set
  kQuorumMismatch,       ///< one rank disagrees on the surviving quorum
  kStateHashDivergence,  ///< one rank reports a divergent state hash
  kStaleViewEpoch,       ///< one rank acts on (and wires) an outdated membership view
};

#if FFTGRAD_ANALYSIS

/// Per-cluster happens-before tracker. One instance lives inside each
/// SimCluster; reset(ranks) re-arms it for a run. Thread-safety contract
/// mirrors the cluster's slot discipline: clocks_[r] is written by rank
/// r's thread (tick) and by the barrier-releasing thread (merge, while
/// every other rank is parked); publications are written by the owner
/// before a barrier and read by consumers after it; the cross-rank
/// agreement maps are mutex-guarded.
class CausalityTracker {
 public:
  /// Arm for a `ranks`-wide run, clearing all prior state.
  void reset(std::size_t ranks);

  /// True between reset(>0) and the next reset; all hooks no-op when
  /// inactive so standalone RankContext use stays untracked, not crashy.
  bool active() const { return ranks_ != 0; }
  std::size_t ranks() const { return ranks_; }

  /// Sender side: rank publishes its contribution to collective `op`.
  /// Ticks the rank's clock and records the publication {clock, epoch}.
  void on_publish(std::size_t rank, std::size_t op);

  /// Barrier release: the releasing thread merges every live rank's clock
  /// to the common upper bound. `dead[r] != 0` marks crashed ranks.
  /// Caller must hold the barrier mutex (all waiters parked).
  void on_barrier_release(const std::vector<char>& dead);

  /// Consumer side: `consumer` consumes the block `sender` published to
  /// collective `op`. Checks (a) publication happens-before the read and
  /// (b) publication epoch == `op`.
  void on_consume(std::size_t consumer, std::size_t sender, std::size_t op);

  /// Invariant (c): every surviving replica must report the identical
  /// exclusion set and quorum for `op`. First reporter's view is
  /// canonical; later mismatches are violations.
  void check_exclusion(std::size_t rank, std::size_t op, std::span<const char> excluded,
                       std::size_t quorum);

  /// Invariant (d): every replica must report the identical membership
  /// view epoch for `op` (SimCluster's per-release snapshot makes the true
  /// value cluster-wide identical; a divergence means a rank acted on a
  /// stale view). First reporter canonical, like check_exclusion.
  void check_view(std::size_t rank, std::size_t op, std::uint64_t view_epoch);

  /// Membership change (crash or rejoin): records the new view epoch as an
  /// epoch-transition event. Called under the barrier mutex by the thread
  /// performing the change.
  void on_membership_change(std::uint64_t view_epoch, const std::vector<char>& dead);

  /// A crashed rank was re-admitted: join its clock up to the live ranks'
  /// merged clock (the epoch-transition happens-before edge — everything
  /// the survivors did while it was dead is now in its causal past) and
  /// invalidate its stale pre-crash publications. Called under the barrier
  /// mutex while every live rank is parked in the membership handshake.
  void on_rejoin(std::size_t rank, const std::vector<char>& dead);

  /// Generic cross-rank agreement: all ranks must report the same `value`
  /// for (`domain`, `index`). cluster_train feeds per-iteration state
  /// hashes through this; `domain` must be a string literal.
  void check_agreement(const char* domain, std::size_t rank, std::uint64_t index,
                       std::uint64_t value);

  /// Trailer the rank should attach to a frame it is about to publish to
  /// collective epoch `epoch` under membership view `view_epoch` (clock
  /// snapshot taken now).
  AnalysisTrailer make_trailer(std::size_t rank, std::size_t epoch,
                               std::uint64_t view_epoch = 0) const;

  /// Re-verify a received trailer at the consumer: sender clock inside the
  /// consumer's causal past, epoch == `expected_epoch`, membership view ==
  /// `expected_view` (the consumer's own publication-time view for the
  /// same op), sender == claimed `sender` rank.
  void verify_trailer(std::size_t consumer, std::size_t sender, const AnalysisTrailer& trailer,
                      std::uint64_t expected_epoch, std::uint64_t expected_view = 0);

  /// Latest view epoch reported through on_membership_change (0 before any
  /// change). For tests; the checked value always travels as a parameter.
  std::uint64_t view_epoch() const { return view_epoch_; }

  const VectorClock& clock(std::size_t rank) const { return clocks_[rank]; }

  /// Seed a protocol mutant: `mutation` fires for `target_rank` from op
  /// `from_op` on. kNone clears. Test-only.
  void set_mutation(ProtocolMutation mutation, std::size_t target_rank, std::size_t from_op = 0);

 private:
  struct Publication {
    VectorClock clock;
    std::uint64_t epoch = 0;
    bool valid = false;
  };
  struct ExclusionRecord {
    std::vector<char> excluded;
    std::size_t quorum = 0;
    std::size_t reporter = 0;
  };

  bool mutates(ProtocolMutation kind, std::size_t rank, std::size_t op) const;

  std::size_t ranks_ = 0;
  std::vector<VectorClock> clocks_;
  // Current and previous publication per rank (previous feeds the
  // kReorderDelivery mutant's stale read).
  std::vector<Publication> published_;
  std::vector<Publication> previous_;

  util::Mutex mutex_;  // guards the agreement maps below
  std::map<std::size_t, ExclusionRecord> exclusions_ FFTGRAD_GUARDED_BY(mutex_);
  // op -> (canonical view epoch, first reporter) for check_view.
  std::map<std::size_t, std::pair<std::uint64_t, std::size_t>> views_ FFTGRAD_GUARDED_BY(mutex_);
  std::map<std::pair<std::string, std::uint64_t>, std::pair<std::uint64_t, std::size_t>>
      agreements_ FFTGRAD_GUARDED_BY(mutex_);

  // DELIBERATELY not GUARDED_BY: written under the *cluster's* barrier
  // mutex (a capability this header cannot name) and read barrier-ordered.
  std::uint64_t view_epoch_ = 0;

  std::atomic<ProtocolMutation> mutation_{ProtocolMutation::kNone};
  std::atomic<std::size_t> mutation_rank_{0};
  std::atomic<std::size_t> mutation_from_op_{0};
};

#else  // !FFTGRAD_ANALYSIS

/// Release stub: every hook is an empty inline, active() is a constant
/// false, so call sites (and the branches guarding their argument setup)
/// fold away entirely.
class CausalityTracker {
 public:
  void reset(std::size_t) {}
  constexpr bool active() const { return false; }
  constexpr std::size_t ranks() const { return 0; }
  void on_publish(std::size_t, std::size_t) {}
  void on_barrier_release(const std::vector<char>&) {}
  void on_consume(std::size_t, std::size_t, std::size_t) {}
  void check_exclusion(std::size_t, std::size_t, std::span<const char>, std::size_t) {}
  void check_view(std::size_t, std::size_t, std::uint64_t) {}
  void on_membership_change(std::uint64_t, const std::vector<char>&) {}
  void on_rejoin(std::size_t, const std::vector<char>&) {}
  void check_agreement(const char*, std::size_t, std::uint64_t, std::uint64_t) {}
  AnalysisTrailer make_trailer(std::size_t, std::size_t, std::uint64_t = 0) const { return {}; }
  void verify_trailer(std::size_t, std::size_t, const AnalysisTrailer&, std::uint64_t,
                      std::uint64_t = 0) {}
  constexpr std::uint64_t view_epoch() const { return 0; }
  void set_mutation(ProtocolMutation, std::size_t, std::size_t = 0) {}
};

#endif

}  // namespace fftgrad::analysis
