#include "fftgrad/analysis/causality.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "fftgrad/analysis/check.h"
#include "fftgrad/telemetry/metrics.h"

namespace fftgrad::analysis {

namespace {

/// Component of `clock` at `rank`, with components past the stored width
/// reading as 0 — comparisons below are defined over the max width so a
/// malformed (e.g. wire-decoded) clock compares sanely instead of faulting.
std::uint64_t component_or_zero(const VectorClock& clock, std::size_t rank) {
  return rank < clock.size() ? clock.component(rank) : 0;
}

}  // namespace

// ---------------------------------------------------------------------------
// VectorClock

void VectorClock::join(const VectorClock& other) {
  if (other.size() > components_.size()) components_.resize(other.size(), 0);
  for (std::size_t r = 0; r < other.size(); ++r) {
    components_[r] = std::max(components_[r], other.component(r));
  }
}

bool VectorClock::included_in(const VectorClock& other) const {
  for (std::size_t r = 0; r < components_.size(); ++r) {
    if (components_[r] > component_or_zero(other, r)) return false;
  }
  return true;
}

bool VectorClock::happens_before(const VectorClock& other) const {
  if (!included_in(other)) return false;
  const std::size_t width = std::max(size(), other.size());
  for (std::size_t r = 0; r < width; ++r) {
    if (component_or_zero(*this, r) < component_or_zero(other, r)) return true;
  }
  return false;  // equal cuts: not ordered
}

bool VectorClock::concurrent_with(const VectorClock& other) const {
  return !happens_before(other) && !other.happens_before(*this) && !(*this == other);
}

std::string VectorClock::to_string() const {
  std::string out = "[";
  for (std::size_t r = 0; r < components_.size(); ++r) {
    if (r != 0) out += ",";
    out += std::to_string(components_[r]);
  }
  out += "]";
  return out;
}

// ---------------------------------------------------------------------------
// Trailer codec

std::vector<std::uint8_t> encode_trailer(const AnalysisTrailer& trailer) {
  const std::size_t ranks = trailer.clock.size();
  // Exact-size buffer written by offset (not grown by insert): the layout
  // is fixed once `ranks` is known, and GCC 12's -Wstringop-overflow
  // false-positives on growing byte-vector inserts.
  std::vector<std::uint8_t> bytes(2 * sizeof(std::uint32_t) + 3 * sizeof(std::uint64_t) +
                                  ranks * sizeof(std::uint64_t));
  std::size_t at = 0;
  const auto put = [&bytes, &at](const auto& value) {
    std::memcpy(bytes.data() + at, &value, sizeof(value));
    at += sizeof(value);
  };
  put(kTrailerMagic);
  put(trailer.sender);
  put(trailer.epoch);
  put(trailer.view_epoch);
  put(static_cast<std::uint64_t>(ranks));
  for (std::size_t r = 0; r < ranks; ++r) put(trailer.clock.component(r));
  return bytes;
}

util::Untrusted<AnalysisTrailer> decode_trailer(std::span<const std::uint8_t> bytes) {
  std::size_t at = 0;
  const auto need = [&](std::size_t n) {
    if (bytes.size() - at < n) throw std::runtime_error("analysis trailer: truncated");
  };
  const auto get_u32 = [&]() {
    need(sizeof(std::uint32_t));
    std::uint32_t value;
    std::memcpy(&value, bytes.data() + at, sizeof(value));
    at += sizeof(value);
    return value;
  };
  const auto get_u64 = [&]() {
    need(sizeof(std::uint64_t));
    std::uint64_t value;
    std::memcpy(&value, bytes.data() + at, sizeof(value));
    at += sizeof(value);
    return value;
  };
  if (get_u32() != kTrailerMagic) throw std::runtime_error("analysis trailer: bad magic");
  AnalysisTrailer trailer;
  trailer.sender = get_u32();
  trailer.epoch = get_u64();
  trailer.view_epoch = get_u64();
  const std::uint64_t ranks = get_u64();
  // Guard `ranks * 8` against a corrupted count driving a huge allocation:
  // the components must fit in what is actually left.
  if (ranks > (bytes.size() - at) / sizeof(std::uint64_t)) {
    throw std::runtime_error("analysis trailer: corrupt rank count");
  }
  std::vector<std::uint64_t> components(static_cast<std::size_t>(ranks));
  for (auto& component : components) component = get_u64();
  trailer.clock = VectorClock(std::move(components));
  if (at != bytes.size()) throw std::runtime_error("analysis trailer: trailing garbage");
  return util::untrusted(std::move(trailer));
}

#if FFTGRAD_ANALYSIS

// ---------------------------------------------------------------------------
// CausalityTracker

namespace {

/// Check counters, registered once (mirrors sim_cluster's FaultMetrics).
struct CausalityMetrics {
  telemetry::Counter& hb_checks;
  telemetry::Counter& epoch_checks;
  telemetry::Counter& agreement_checks;
  telemetry::Counter& view_checks;
  telemetry::Counter& membership_transitions;

  static CausalityMetrics& get() {
    static CausalityMetrics metrics = [] {
      telemetry::MetricsRegistry& reg = telemetry::MetricsRegistry::global();
      return CausalityMetrics{reg.counter("analysis.hb_checks"),
                              reg.counter("analysis.epoch_checks"),
                              reg.counter("analysis.agreement_checks"),
                              reg.counter("analysis.view_checks"),
                              reg.counter("analysis.membership_transitions")};
    }();
    return metrics;
  }
};

std::string excluded_to_string(std::span<const char> excluded) {
  std::string out = "{";
  bool first = true;
  for (std::size_t r = 0; r < excluded.size(); ++r) {
    if (excluded[r] == 0) continue;
    if (!first) out += ",";
    out += std::to_string(r);
    first = false;
  }
  out += "}";
  return out;
}

}  // namespace

void CausalityTracker::reset(std::size_t ranks) {
  ranks_ = ranks;
  clocks_.assign(ranks, VectorClock(ranks));
  published_.assign(ranks, {});
  previous_.assign(ranks, {});
  view_epoch_ = 0;
  util::LockGuard<util::Mutex> lock(mutex_);
  exclusions_.clear();
  views_.clear();
  agreements_.clear();
}

bool CausalityTracker::mutates(ProtocolMutation kind, std::size_t rank, std::size_t op) const {
  return mutation_.load(std::memory_order_relaxed) == kind &&
         mutation_rank_.load(std::memory_order_relaxed) == rank &&
         op >= mutation_from_op_.load(std::memory_order_relaxed);
}

void CausalityTracker::set_mutation(ProtocolMutation mutation, std::size_t target_rank,
                                    std::size_t from_op) {
  mutation_rank_.store(target_rank, std::memory_order_relaxed);
  mutation_from_op_.store(from_op, std::memory_order_relaxed);
  mutation_.store(mutation, std::memory_order_relaxed);
}

void CausalityTracker::on_publish(std::size_t rank, std::size_t op) {
  if (!active()) return;
  clocks_[rank].tick(rank);
  previous_[rank] = published_[rank];
  Publication& pub = published_[rank];
  pub.clock = clocks_[rank];
  pub.epoch = op;
  // The seeded stale-epoch mutant: the sender "forgets" to bump its epoch,
  // publishing this op's bytes under the previous op's number.
  if (mutates(ProtocolMutation::kStaleEpoch, rank, op) && op > 0) pub.epoch = op - 1;
  pub.valid = true;
}

void CausalityTracker::on_barrier_release(const std::vector<char>& dead) {
  if (!active()) return;
  VectorClock merged(ranks_);
  for (std::size_t r = 0; r < ranks_; ++r) {
    if (r < dead.size() && dead[r] != 0) continue;
    merged.join(clocks_[r]);
  }
  for (std::size_t r = 0; r < ranks_; ++r) {
    if (r < dead.size() && dead[r] != 0) continue;
    // The dropped-join mutant: one rank's clock misses the barrier merge,
    // so its next consume lacks the happens-before edge.
    if (mutates(ProtocolMutation::kDropClockJoin, r, 0)) continue;
    clocks_[r].join(merged);
  }
}

void CausalityTracker::on_consume(std::size_t consumer, std::size_t sender, std::size_t op) {
  if (!active()) return;
  // The reordered-delivery mutant: the consumer reads the sender's
  // *previous* publication — bytes from an earlier collective delivered
  // into this one.
  const bool reorder =
      mutates(ProtocolMutation::kReorderDelivery, consumer, op) && previous_[sender].valid;
  const Publication& pub = reorder ? previous_[sender] : published_[sender];
  if (!pub.valid) {
    report_violation("causality",
                     "op " + std::to_string(op) + ": rank " + std::to_string(consumer) +
                         " consumed a block rank " + std::to_string(sender) +
                         " never published");
    return;
  }
  CausalityMetrics::get().hb_checks.add(1.0);
  if (!pub.clock.included_in(clocks_[consumer])) {
    report_violation("causality",
                     "op " + std::to_string(op) + ": no happens-before edge from rank " +
                         std::to_string(sender) + "'s publication " + pub.clock.to_string() +
                         " to rank " + std::to_string(consumer) + "'s read at " +
                         clocks_[consumer].to_string());
  }
  CausalityMetrics::get().epoch_checks.add(1.0);
  if (pub.epoch != op) {
    report_violation("epoch-mismatch",
                     "op " + std::to_string(op) + ": rank " + std::to_string(consumer) +
                         " consumed a block rank " + std::to_string(sender) +
                         " published at epoch " + std::to_string(pub.epoch));
  }
}

void CausalityTracker::check_exclusion(std::size_t rank, std::size_t op,
                                       std::span<const char> excluded, std::size_t quorum) {
  if (!active()) return;
  std::vector<char> view(excluded.begin(), excluded.end());
  std::size_t quorum_view = quorum;
  // The desync mutants: this rank computed a different surviving set (flip
  // one peer's exclusion bit) or a different quorum.
  if (mutates(ProtocolMutation::kDesyncExclusion, rank, op) && !view.empty()) {
    const std::size_t victim = (rank + 1) % view.size();
    view[victim] = view[victim] == 0 ? 1 : 0;
  }
  if (mutates(ProtocolMutation::kQuorumMismatch, rank, op)) ++quorum_view;

  CausalityMetrics::get().agreement_checks.add(1.0);
  util::LockGuard<util::Mutex> lock(mutex_);
  auto [it, inserted] = exclusions_.try_emplace(op, ExclusionRecord{view, quorum_view, rank});
  if (inserted) return;
  const ExclusionRecord& canonical = it->second;
  if (canonical.excluded != view) {
    report_violation(
        "exclusion-desync",
        "op " + std::to_string(op) + ": rank " + std::to_string(rank) +
            " computed exclusion set " + excluded_to_string(view) + " but rank " +
            std::to_string(canonical.reporter) + " computed " +
            excluded_to_string(canonical.excluded));
  }
  if (canonical.quorum != quorum_view) {
    report_violation("quorum-mismatch",
                     "op " + std::to_string(op) + ": rank " + std::to_string(rank) +
                         " sees quorum " + std::to_string(quorum_view) + " but rank " +
                         std::to_string(canonical.reporter) + " sees " +
                         std::to_string(canonical.quorum));
  }
}

void CausalityTracker::check_view(std::size_t rank, std::size_t op, std::uint64_t view_epoch) {
  if (!active()) return;
  std::uint64_t view = view_epoch;
  // The stale-view mutant: this rank acts on an outdated membership view
  // (one epoch behind — or, before any membership change, a phantom one).
  if (mutates(ProtocolMutation::kStaleViewEpoch, rank, op)) {
    view = view_epoch > 0 ? view_epoch - 1 : 1;
  }
  CausalityMetrics::get().view_checks.add(1.0);
  util::LockGuard<util::Mutex> lock(mutex_);
  auto [it, inserted] = views_.try_emplace(op, std::make_pair(view, rank));
  if (inserted) return;
  if (it->second.first != view) {
    report_violation("view-epoch-desync",
                     "op " + std::to_string(op) + ": rank " + std::to_string(rank) +
                         " observes membership view " + std::to_string(view) + " but rank " +
                         std::to_string(it->second.second) + " observed " +
                         std::to_string(it->second.first));
  }
}

void CausalityTracker::on_membership_change(std::uint64_t view_epoch,
                                            const std::vector<char>& dead) {
  if (!active()) return;
  std::size_t live = 0;
  for (char d : dead) live += d == 0 ? 1 : 0;
  (void)live;  // the live count is implicit in later exclusion checks
  view_epoch_ = view_epoch;
  CausalityMetrics::get().membership_transitions.add(1.0);
}

void CausalityTracker::on_rejoin(std::size_t rank, const std::vector<char>& dead) {
  if (!active()) return;
  // Epoch-transition happens-before edge: everything the survivors did
  // while `rank` was dead enters its causal past, so its first post-rejoin
  // consume and publication are properly ordered instead of violations.
  VectorClock merged(ranks_);
  for (std::size_t r = 0; r < ranks_; ++r) {
    if (r < dead.size() && dead[r] != 0) continue;
    merged.join(clocks_[r]);
  }
  clocks_[rank].join(merged);
  // Pre-crash publications are stale evidence: no post-rejoin consume may
  // satisfy itself with them.
  published_[rank] = {};
  previous_[rank] = {};
}

void CausalityTracker::check_agreement(const char* domain, std::size_t rank, std::uint64_t index,
                                       std::uint64_t value) {
  if (!active()) return;
  std::uint64_t view = value;
  // The divergence mutant: this rank's replica state silently differs.
  if (mutates(ProtocolMutation::kStateHashDivergence, rank, static_cast<std::size_t>(index))) {
    view ^= 0x1;
  }
  CausalityMetrics::get().agreement_checks.add(1.0);
  util::LockGuard<util::Mutex> lock(mutex_);
  auto [it, inserted] =
      agreements_.try_emplace({std::string(domain), index}, std::make_pair(view, rank));
  if (inserted) return;
  if (it->second.first != view) {
    // Only this rank's own clock is printed: reading a peer's clock here
    // would race with that peer's thread still ticking it (the clocks are
    // owner-written; only the agreement maps are mutex-shared).
    report_violation("agreement-divergence",
                     std::string(domain) + "[" + std::to_string(index) + "]: rank " +
                         std::to_string(rank) + " reports " + std::to_string(view) +
                         " but rank " + std::to_string(it->second.second) + " reported " +
                         std::to_string(it->second.first) + " (reporting rank's clock " +
                         clocks_[rank].to_string() + ")");
  }
}

AnalysisTrailer CausalityTracker::make_trailer(std::size_t rank, std::size_t epoch,
                                               std::uint64_t view_epoch) const {
  AnalysisTrailer trailer;
  if (!active()) return trailer;
  trailer.sender = static_cast<std::uint32_t>(rank);
  trailer.epoch = epoch;
  if (mutates(ProtocolMutation::kStaleEpoch, rank, epoch) && epoch > 0) {
    trailer.epoch = epoch - 1;
  }
  trailer.view_epoch = view_epoch;
  // The stale-view mutant also reaches the wire: the trailer ships the
  // outdated view so consumers catch it from the received bytes.
  if (mutates(ProtocolMutation::kStaleViewEpoch, rank, epoch)) {
    trailer.view_epoch = view_epoch > 0 ? view_epoch - 1 : 1;
  }
  trailer.clock = clocks_[rank];
  return trailer;
}

void CausalityTracker::verify_trailer(std::size_t consumer, std::size_t sender,
                                      const AnalysisTrailer& trailer,
                                      std::uint64_t expected_epoch,
                                      std::uint64_t expected_view) {
  if (!active()) return;
  if (trailer.sender != sender) {
    report_violation("causality",
                     "trailer claims sender " + std::to_string(trailer.sender) +
                         " but arrived in rank " + std::to_string(sender) + "'s slot");
    return;
  }
  CausalityMetrics::get().hb_checks.add(1.0);
  if (!trailer.clock.included_in(clocks_[consumer])) {
    report_violation("causality",
                     "epoch " + std::to_string(expected_epoch) + ": trailer from rank " +
                         std::to_string(sender) + " carries clock " +
                         trailer.clock.to_string() + " outside rank " +
                         std::to_string(consumer) + "'s causal past " +
                         clocks_[consumer].to_string());
  }
  CausalityMetrics::get().epoch_checks.add(1.0);
  if (trailer.epoch != expected_epoch) {
    report_violation("epoch-mismatch",
                     "trailer from rank " + std::to_string(sender) + " carries epoch " +
                         std::to_string(trailer.epoch) + " but rank " +
                         std::to_string(consumer) + " is consuming epoch " +
                         std::to_string(expected_epoch));
  }
  CausalityMetrics::get().view_checks.add(1.0);
  if (trailer.view_epoch != expected_view) {
    report_violation("view-epoch-mismatch",
                     "trailer from rank " + std::to_string(sender) +
                         " carries membership view " + std::to_string(trailer.view_epoch) +
                         " but rank " + std::to_string(consumer) + " published op " +
                         std::to_string(expected_epoch) + " under view " +
                         std::to_string(expected_view));
  }
}

#endif  // FFTGRAD_ANALYSIS

}  // namespace fftgrad::analysis
