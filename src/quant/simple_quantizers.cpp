#include "fftgrad/quant/simple_quantizers.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fftgrad::quant {

UniformQuantizer::UniformQuantizer(int bits, float min, float max)
    : min_(min), max_(max) {
  if (bits < 1 || bits > 24) throw std::invalid_argument("UniformQuantizer: bits in [1, 24]");
  if (!(max > min)) throw std::invalid_argument("UniformQuantizer: max must exceed min");
  count_ = std::uint32_t{1} << bits;
  width_ = (max - min) / static_cast<float>(count_);
}

std::uint32_t UniformQuantizer::encode(float value) const {
  const float clamped = std::clamp(value, min_, max_);
  auto code = static_cast<std::int64_t>((clamped - min_) / width_);
  code = std::clamp<std::int64_t>(code, 0, static_cast<std::int64_t>(count_) - 1);
  return static_cast<std::uint32_t>(code);
}

float UniformQuantizer::decode(std::uint32_t code) const {
  code = std::min(code, count_ - 1);
  return min_ + (static_cast<float>(code) + 0.5f) * width_;
}

void UniformQuantizer::round_trip(std::span<const float> in, std::span<float> out) const {
  if (in.size() != out.size()) throw std::invalid_argument("UniformQuantizer: size mismatch");
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = decode(encode(in[i]));
}

std::vector<float> UniformQuantizer::representable_values() const {
  std::vector<float> values(count_);
  for (std::uint32_t c = 0; c < count_; ++c) values[c] = decode(c);
  return values;
}

IeeeNbitQuantizer::IeeeNbitQuantizer(int bits, int exponent_bits)
    : bits_(bits), exponent_bits_(exponent_bits), mantissa_bits_(bits - 1 - exponent_bits) {
  if (bits < 3 || bits > 32) throw std::invalid_argument("IeeeNbitQuantizer: bits in [3, 32]");
  if (exponent_bits < 1 || mantissa_bits_ < 1) {
    throw std::invalid_argument("IeeeNbitQuantizer: need >= 1 exponent and mantissa bit");
  }
  bias_ = (1 << (exponent_bits - 1)) - 1;
}

float IeeeNbitQuantizer::max_value() const {
  // Largest finite: exponent = 2^e - 2 (top code is reserved, as in IEEE),
  // mantissa all ones.
  const int max_exp = (1 << exponent_bits_) - 2 - bias_;
  const float mant = 2.0f - std::ldexp(1.0f, -mantissa_bits_);
  return std::ldexp(mant, max_exp);
}

float IeeeNbitQuantizer::min_normal() const { return std::ldexp(1.0f, 1 - bias_); }

float IeeeNbitQuantizer::round_trip(float value) const {
  if (value == 0.0f || !(value == value)) return 0.0f;
  const float sign = value < 0.0f ? -1.0f : 1.0f;
  float mag = std::fabs(value);
  const float max_v = max_value();
  if (mag >= max_v) return sign * max_v;  // saturate

  int exp = 0;
  std::frexp(mag, &exp);  // mag = f * 2^exp, f in [0.5, 1)
  --exp;                  // now mag = m * 2^exp with m in [1, 2)
  const int min_exp = 1 - bias_;
  if (exp < min_exp) {
    // Subnormal region: fixed spacing of 2^(min_exp - mantissa_bits).
    const float quantum = std::ldexp(1.0f, min_exp - mantissa_bits_);
    const float quantized = std::nearbyint(mag / quantum) * quantum;
    return sign * quantized;
  }
  // Normal: keep mantissa_bits fractional bits of the significand.
  const float scale = std::ldexp(1.0f, mantissa_bits_ - exp);
  const float quantized = std::nearbyint(mag * scale) / scale;
  return sign * quantized;
}

void IeeeNbitQuantizer::round_trip(std::span<const float> in, std::span<float> out) const {
  if (in.size() != out.size()) throw std::invalid_argument("IeeeNbitQuantizer: size mismatch");
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = round_trip(in[i]);
}

std::vector<float> IeeeNbitQuantizer::representable_values() const {
  std::vector<float> values;
  const int mant_count = 1 << mantissa_bits_;
  const int min_exp = 1 - bias_;
  values.push_back(0.0f);
  // Subnormals.
  for (int m = 1; m < mant_count; ++m) {
    values.push_back(std::ldexp(static_cast<float>(m), min_exp - mantissa_bits_));
  }
  // Normals.
  const int max_code = (1 << exponent_bits_) - 2;
  for (int e = 1; e <= max_code; ++e) {
    for (int m = 0; m < mant_count; ++m) {
      const float significand = 1.0f + static_cast<float>(m) / static_cast<float>(mant_count);
      values.push_back(std::ldexp(significand, e - bias_));
    }
  }
  return values;
}

}  // namespace fftgrad::quant
