#include "fftgrad/quant/half.h"

#include <bit>
#include <stdexcept>

#include "fftgrad/parallel/parallel_for.h"

namespace fftgrad::quant {
namespace {

// Spans shorter than this convert serially; the pool dispatch overhead
// dominates below roughly this size.
constexpr std::size_t kParallelThreshold = 1 << 16;

std::uint16_t encode(float value) {
  const std::uint32_t f = std::bit_cast<std::uint32_t>(value);
  const std::uint32_t sign = (f >> 16) & 0x8000u;
  const std::uint32_t abs = f & 0x7fffffffu;

  if (abs >= 0x7f800000u) {
    // Inf or NaN; preserve NaN-ness with a quiet mantissa bit.
    const std::uint32_t mantissa = abs > 0x7f800000u ? 0x0200u : 0u;
    return static_cast<std::uint16_t>(sign | 0x7c00u | mantissa);
  }
  if (abs >= 0x47800000u) {
    // Too large for half: saturate to infinity.
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  }
  if (abs >= 0x38800000u) {
    // Normal half. Rebias exponent (127 -> 15) and round mantissa 23 -> 10
    // bits to nearest even.
    const std::uint32_t rebased = abs - 0x38000000u;  // subtract (127-15)<<23
    std::uint32_t half = rebased >> 13;
    const std::uint32_t remainder = rebased & 0x1fffu;
    if (remainder > 0x1000u || (remainder == 0x1000u && (half & 1u))) ++half;
    return static_cast<std::uint16_t>(sign | half);
  }
  if (abs >= 0x33000000u) {
    // Subnormal half: the result is round(|x| / 2^-24), i.e. the 24-bit
    // significand shifted right by (126 - e) with round-to-nearest-even.
    const std::uint32_t exponent = abs >> 23;
    const std::uint32_t mantissa = (abs & 0x7fffffu) | 0x800000u;
    const std::uint32_t shift = 126 - exponent;  // bits to discard, in [14, 24]
    std::uint32_t half = mantissa >> shift;
    const std::uint32_t mask = (1u << shift) - 1;
    const std::uint32_t remainder = mantissa & mask;
    const std::uint32_t halfway = 1u << (shift - 1);
    if (remainder > halfway || (remainder == halfway && (half & 1u))) ++half;
    return static_cast<std::uint16_t>(sign | half);
  }
  // Underflow to signed zero.
  return static_cast<std::uint16_t>(sign);
}

float decode(std::uint16_t h) {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
  const std::uint32_t exponent = (h >> 10) & 0x1fu;
  const std::uint32_t mantissa = h & 0x3ffu;

  std::uint32_t f;
  if (exponent == 0x1fu) {
    f = sign | 0x7f800000u | (mantissa << 13);  // inf / nan
  } else if (exponent != 0) {
    f = sign | ((exponent + 112u) << 23) | (mantissa << 13);  // normal
  } else if (mantissa != 0) {
    // Subnormal half: normalize. A value m*2^-24 with bit 10 set after k
    // shifts is 1.x * 2^(-15-k), i.e. float exponent field 113 - k.
    std::uint32_t m = mantissa;
    std::uint32_t e = 113;
    while ((m & 0x400u) == 0) {
      m <<= 1;
      --e;
    }
    f = sign | (e << 23) | ((m & 0x3ffu) << 13);
  } else {
    f = sign;  // signed zero
  }
  return std::bit_cast<float>(f);
}

}  // namespace

Half float_to_half(float value) { return Half{encode(value)}; }

float half_to_float(Half value) { return decode(value.bits); }

void float_to_half(std::span<const float> in, std::span<Half> out) {
  if (in.size() != out.size()) throw std::invalid_argument("float_to_half: size mismatch");
  if (in.size() < kParallelThreshold) {
    for (std::size_t i = 0; i < in.size(); ++i) out[i].bits = encode(in[i]);
    return;
  }
  parallel::parallel_for(in.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) out[i].bits = encode(in[i]);
  });
}

void half_to_float(std::span<const Half> in, std::span<float> out) {
  if (in.size() != out.size()) throw std::invalid_argument("half_to_float: size mismatch");
  if (in.size() < kParallelThreshold) {
    for (std::size_t i = 0; i < in.size(); ++i) out[i] = decode(in[i].bits);
    return;
  }
  parallel::parallel_for(in.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) out[i] = decode(in[i].bits);
  });
}

void half_round_trip(std::span<const float> in, std::span<float> out) {
  if (in.size() != out.size()) throw std::invalid_argument("half_round_trip: size mismatch");
  auto convert = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) out[i] = decode(encode(in[i]));
  };
  if (in.size() < kParallelThreshold) {
    convert(0, in.size());
    return;
  }
  parallel::parallel_for(in.size(), convert);
}

}  // namespace fftgrad::quant
