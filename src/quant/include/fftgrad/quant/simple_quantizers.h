// The two conventional N-bit quantization schemes the paper's Fig 7
// compares against the range-based float: uniform bucketing of [min, max],
// and an emulated N-bit IEEE-754-style format (1 sign bit, e exponent bits,
// m mantissa bits with e + m = N - 1). Both are exposed as code/decode maps
// so the Fig 7 bench can enumerate their representable values and measure
// reconstruction error on gradient-like data.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace fftgrad::quant {

/// Equal-width bins over [min, max]; each code decodes to its bin center.
class UniformQuantizer {
 public:
  UniformQuantizer(int bits, float min, float max);

  std::uint32_t encode(float value) const;
  float decode(std::uint32_t code) const;
  void round_trip(std::span<const float> in, std::span<float> out) const;
  std::vector<float> representable_values() const;
  std::uint32_t code_count() const { return count_; }

 private:
  float min_, max_, width_;
  std::uint32_t count_;
};

/// N-bit IEEE-754-style float: 1 sign, `exponent_bits` exponent (standard
/// bias 2^(e-1) - 1), `N - 1 - e` mantissa bits, with gradual underflow
/// (subnormals) and saturation instead of infinities. Round-trips a float32
/// through the emulated format.
class IeeeNbitQuantizer {
 public:
  IeeeNbitQuantizer(int bits, int exponent_bits);

  float round_trip(float value) const;
  void round_trip(std::span<const float> in, std::span<float> out) const;
  /// All non-negative representable values, ascending (for Fig 7).
  std::vector<float> representable_values() const;
  int bits() const { return bits_; }
  int exponent_bits() const { return exponent_bits_; }
  int mantissa_bits() const { return mantissa_bits_; }
  /// Largest finite representable magnitude.
  float max_value() const;
  /// Smallest positive normal magnitude.
  float min_normal() const;

 private:
  int bits_, exponent_bits_, mantissa_bits_;
  int bias_;
};

}  // namespace fftgrad::quant
