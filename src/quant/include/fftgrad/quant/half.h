// Software IEEE-754 binary16 ("half") conversion.
//
// The paper converts 32-bit gradients to 16-bit before the FFT to double
// the FFT throughput on mixed-precision GPUs; the information loss is
// negligible because gradients are bounded. We reproduce that pipeline
// stage in software: float -> half -> float with round-to-nearest-even,
// full subnormal/inf/nan handling, so the compressor's numerics match the
// mixed-precision path.
#pragma once

#include <cstdint>
#include <span>

namespace fftgrad::quant {

/// Opaque 16-bit storage type for an IEEE binary16 value.
struct Half {
  std::uint16_t bits = 0;
};

/// Convert with round-to-nearest-even; overflow saturates to +-inf.
Half float_to_half(float value);

float half_to_float(Half value);

/// Bulk conversions (parallelized over the global thread pool for large
/// spans; this is the "Tm" primitive of the Sec 3.3 cost model).
void float_to_half(std::span<const float> in, std::span<Half> out);
void half_to_float(std::span<const Half> in, std::span<float> out);

/// Round-trip through binary16: the exact lossy mapping the compressor's
/// first pipeline stage applies.
void half_round_trip(std::span<const float> in, std::span<float> out);

}  // namespace fftgrad::quant
