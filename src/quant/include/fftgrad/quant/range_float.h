// The paper's range-based, offset N-bit floating point (Sec 3.2.1, Alg 1).
//
// Idea: an IEEE-754 float's bit pattern, truncated to its top (9 + m) bits
// (sign, 8 exponent bits, m mantissa bits), still orders magnitudes
// monotonically, and consecutive truncated patterns are separated by a gap
// that doubles every 2^m codes — a "Gaussian like" spacing dense near zero,
// exactly matching gradient distributions (paper Fig 9). The code of a
// positive float is the distance of its truncated pattern from a base
// pattern `pbase` (the truncation of the smallest representable positive
// number, eps):
//
//   code(f)    = trunc_bits(f) - pbase + 1           f in [eps, max]
//   decode(c)  = float((pbase + c - 1) << (23 - m))
//
// Negative numbers follow the same rule on |f| and occupy the code space
// above the positives: code(-f) = P + (trunc_bits(f) - pbase + 1), where P
// is the number of positive codes. Code 0 is reserved for exact zero, and
// the all-ones code decodes to the most negative representable number —
// the quantity the paper's eps-tuning loop compares against `min`.
// Values with |f| below eps underflow to zero; values beyond [min, max]
// saturate.
//
// `tune()` reproduces the paper's calibration: given N, min and max
// (estimated from the first training iterations), it chooses eps so the
// all-ones code lands on `min` — which balances P toward 2^(N-1) for
// symmetric ranges — and picks the mantissa width m that minimizes RMS
// reconstruction error on a provided sample (the paper iterates every m).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fftgrad/util/taint.h"

namespace fftgrad::quant {

/// How encode() maps a value onto the representable ladder. The paper's
/// Alg. 1 truncates the mantissa (round toward zero); rounding to the
/// nearest representable value halves the expected error at the same bit
/// budget and is offered as an ablatable improvement.
enum class RangeRounding : std::uint8_t { kTruncate = 0, kNearest = 1 };

struct RangeFloatParams {
  int bits = 10;          ///< N: total code width in bits, 3..23.
  int mantissa_bits = 4;  ///< m: kept mantissa bits, 1..min(23, N).
  float min = -1.0f;      ///< Most negative representable target.
  float max = 1.0f;       ///< Largest positive representable target.
  float eps = 1e-3f;      ///< Smallest representable positive magnitude.
  RangeRounding rounding = RangeRounding::kTruncate;  ///< paper default
};

class RangeFloat {
 public:
  /// Build a codec from explicit parameters. Throws std::invalid_argument
  /// if the parameters cannot produce a valid code space (e.g. eps >= max,
  /// min >= 0, or more positive codes than fit in N bits).
  explicit RangeFloat(const RangeFloatParams& params);

  /// Paper-style calibration: pick eps from (N, min, max) so that the code
  /// space splits between positives and negatives at the range boundaries,
  /// then pick m in [1, N-1] minimizing RMS error on `sample` (if sample is
  /// empty, m defaults to N/2).
  static RangeFloat tune(int bits, float min, float max, std::span<const float> sample = {});

  const RangeFloatParams& params() const { return params_; }

  /// Number of positive codes P (paper notation). Total codes = 2^N with
  /// code 0 = zero, [1, P] positive, [P+1, P+negative_codes()] negative;
  /// any remaining codes are unused (they decode to the most negative
  /// representable value but are never produced by encode()).
  std::uint32_t positive_codes() const { return positive_codes_; }
  std::uint32_t negative_codes() const { return negative_codes_; }
  std::uint32_t code_count() const { return code_count_; }

  /// Quantize one value to its N-bit code (stored in the low N bits).
  std::uint32_t encode(float value) const;

  /// Reconstruct the representative value of a code.
  float decode(std::uint32_t code) const;

  /// The most negative representable number ("actual_min" in the paper's
  /// tuning loop; the all-ones code saturates to it).
  float actual_min() const { return decode(positive_codes_ + negative_codes_); }
  /// Representative of code P: the largest positive representable number.
  float actual_max() const { return decode(positive_codes_); }

  /// Bulk encode/decode (parallel for large spans).
  void encode(std::span<const float> in, std::span<std::uint32_t> out) const;
  void decode(std::span<const std::uint32_t> in, std::span<float> out) const;

  /// Quantize-reconstruct each value: the exact lossy map of this stage.
  void round_trip(std::span<const float> in, std::span<float> out) const;

  /// Every representable value, ascending code order (for Figs 7/9).
  std::vector<float> representable_values() const;

 private:
  RangeFloatParams params_;
  std::uint32_t shift_ = 0;           // 23 - m
  std::uint32_t pbase_ = 0;           // trunc_bits(eps)
  std::uint32_t positive_codes_ = 0;  // P
  std::uint32_t negative_codes_ = 0;  // codes covering [min, -eps]
  std::uint32_t code_count_ = 0;      // 2^N
};

/// Pack a vector of N-bit codes into a contiguous byte stream (the wire
/// format of the quantized gradient frequencies) and unpack it back. The
/// unpacked codes are wire input and come back Untrusted: release them
/// through a validator asserting the receiver's expectations (count matches
/// the codec's element count, codes inside its code space).
std::vector<std::uint8_t> pack_codes(std::span<const std::uint32_t> codes, int bits);
util::Untrusted<std::vector<std::uint32_t>> unpack_codes(std::span<const std::uint8_t> bytes,
                                                         int bits, std::size_t count);

}  // namespace fftgrad::quant
