#include "fftgrad/quant/range_float.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "fftgrad/parallel/parallel_for.h"

namespace fftgrad::quant {
namespace {

constexpr std::size_t kParallelThreshold = 1 << 16;

std::uint32_t float_bits(float f) { return std::bit_cast<std::uint32_t>(f); }
float bits_float(std::uint32_t b) { return std::bit_cast<float>(b); }

}  // namespace

RangeFloat::RangeFloat(const RangeFloatParams& params) : params_(params) {
  if (params.bits < 3 || params.bits > 23) {
    throw std::invalid_argument("RangeFloat: bits must be in [3, 23]");
  }
  if (params.mantissa_bits < 1 || params.mantissa_bits > 22) {
    throw std::invalid_argument("RangeFloat: mantissa_bits must be in [1, 22]");
  }
  if (!(params.eps > 0.0f) || !std::isfinite(params.eps)) {
    throw std::invalid_argument("RangeFloat: eps must be a positive finite float");
  }
  if (!(params.max > params.eps)) {
    throw std::invalid_argument("RangeFloat: max must exceed eps");
  }
  if (!(params.min < 0.0f)) {
    throw std::invalid_argument("RangeFloat: min must be negative");
  }
  shift_ = static_cast<std::uint32_t>(23 - params.mantissa_bits);
  code_count_ = std::uint32_t{1} << params.bits;
  pbase_ = float_bits(params.eps) >> shift_;
  if (pbase_ == 0) {
    throw std::invalid_argument("RangeFloat: eps truncates to the zero pattern");
  }
  const std::uint32_t max_trunc = float_bits(params.max) >> shift_;
  if (max_trunc < pbase_) {
    throw std::invalid_argument("RangeFloat: max truncates below eps");
  }
  const std::uint64_t positives = static_cast<std::uint64_t>(max_trunc) - pbase_ + 1;
  if (positives > code_count_ - 2) {
    throw std::invalid_argument(
        "RangeFloat: range [eps, max] needs more codes than 2^bits provides; "
        "increase bits, increase eps, or decrease mantissa_bits");
  }
  positive_codes_ = static_cast<std::uint32_t>(positives);
  // Negative codes cover [min, -eps]; the magnitude ladder is shared with
  // the positive side, truncated both by the remaining code space and by
  // |min| (codes past |min| would decode outside the configured range).
  const std::uint32_t min_trunc = float_bits(-params.min) >> shift_;
  if (min_trunc < pbase_) {
    throw std::invalid_argument("RangeFloat: |min| truncates below eps");
  }
  negative_codes_ = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(code_count_ - 1 - positive_codes_,
                              static_cast<std::uint64_t>(min_trunc) - pbase_ + 1));
}

std::uint32_t RangeFloat::encode(float value) const {
  if (!(value == value)) return 0;  // NaN -> zero code
  // Adding half of the truncation quantum to the bit pattern before the
  // shift rounds to the nearest representable ladder value; note the
  // pattern arithmetic is monotone in magnitude, so this is well-defined.
  const std::uint32_t round_bias =
      params_.rounding == RangeRounding::kNearest ? (1u << (shift_ - 1)) : 0u;
  if (value > 0.0f) {
    const float clamped = value > params_.max ? params_.max : value;
    std::uint32_t trunc = (float_bits(clamped) + round_bias) >> shift_;
    if (trunc < pbase_) return 0;  // underflow to zero
    std::uint32_t offset = trunc - pbase_ + 1;
    if (offset > positive_codes_) offset = positive_codes_;  // rounding past max
    return offset;
  }
  if (value < 0.0f) {
    const std::uint32_t trunc = (float_bits(-value) + round_bias) >> shift_;
    if (trunc < pbase_) return 0;
    std::uint32_t offset = trunc - pbase_ + 1;
    if (offset > negative_codes_) offset = negative_codes_;  // saturate at min
    return positive_codes_ + offset;
  }
  return 0;
}

float RangeFloat::decode(std::uint32_t code) const {
  code &= code_count_ - 1;
  if (code == 0) return 0.0f;
  if (code <= positive_codes_) {
    return bits_float((pbase_ + code - 1) << shift_);
  }
  std::uint32_t offset = code - positive_codes_;
  // Codes past the negative cap are never produced by encode(); decode them
  // as the most negative representable value (saturation) for robustness
  // against corrupt wire data.
  if (offset > negative_codes_) offset = negative_codes_;
  return bits_float(((pbase_ + offset - 1) << shift_) | 0x80000000u);
}

void RangeFloat::encode(std::span<const float> in, std::span<std::uint32_t> out) const {
  if (in.size() != out.size()) throw std::invalid_argument("RangeFloat::encode: size mismatch");
  auto run = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) out[i] = encode(in[i]);
  };
  if (in.size() < kParallelThreshold) {
    run(0, in.size());
  } else {
    parallel::parallel_for(in.size(), run);
  }
}

void RangeFloat::decode(std::span<const std::uint32_t> in, std::span<float> out) const {
  if (in.size() != out.size()) throw std::invalid_argument("RangeFloat::decode: size mismatch");
  auto run = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) out[i] = decode(in[i]);
  };
  if (in.size() < kParallelThreshold) {
    run(0, in.size());
  } else {
    parallel::parallel_for(in.size(), run);
  }
}

void RangeFloat::round_trip(std::span<const float> in, std::span<float> out) const {
  if (in.size() != out.size()) {
    throw std::invalid_argument("RangeFloat::round_trip: size mismatch");
  }
  auto run = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) out[i] = decode(encode(in[i]));
  };
  if (in.size() < kParallelThreshold) {
    run(0, in.size());
  } else {
    parallel::parallel_for(in.size(), run);
  }
}

std::vector<float> RangeFloat::representable_values() const {
  std::vector<float> values(code_count_);
  for (std::uint32_t c = 0; c < code_count_; ++c) values[c] = decode(c);
  return values;
}

RangeFloat RangeFloat::tune(int bits, float min, float max, std::span<const float> sample) {
  if (!(min < 0.0f) || !(max > 0.0f)) {
    throw std::invalid_argument("RangeFloat::tune: need min < 0 < max");
  }
  if (bits < 3 || bits > 23) {
    throw std::invalid_argument("RangeFloat::tune: bits must be in [3, 23]");
  }

  const std::uint64_t codes = std::uint64_t{1} << bits;
  std::vector<RangeFloat> candidates;
  candidates.reserve(22);

  for (int m = 1; m <= 22; ++m) {
    const std::uint32_t shift = static_cast<std::uint32_t>(23 - m);
    const std::uint64_t tb_max = float_bits(max) >> shift;
    const std::uint64_t tb_min = float_bits(-min) >> shift;
    // Choose pbase so the most negative code decodes to `min` (the fixed
    // point of the paper's iterative eps search):
    //   pbase + negcap - 1 = tb_min  with  negcap = 2^N - 2 - tb_max + pbase
    //   => 2*pbase = tb_min + tb_max + 3 - 2^N.
    // When the range has fewer truncated steps than the code space, the
    // formula dips below 1; eps then floors at the smallest pattern and
    // the constructor's negative cap keeps decode() inside [min, max].
    const std::int64_t two_pbase = static_cast<std::int64_t>(tb_min) +
                                   static_cast<std::int64_t>(tb_max) + 3 -
                                   static_cast<std::int64_t>(codes);
    std::int64_t pbase = (two_pbase + 1) / 2;
    if (pbase < 1) pbase = 1;
    if (static_cast<std::uint64_t>(pbase) > tb_max) continue;  // no positive codes fit
    if (static_cast<std::uint64_t>(pbase) > tb_min) continue;  // no negative codes fit
    const std::uint64_t positives = tb_max - static_cast<std::uint64_t>(pbase) + 1;
    if (positives > codes - 2) continue;  // m too fine for this range/bit budget

    RangeFloatParams params;
    params.bits = bits;
    params.mantissa_bits = m;
    params.min = min;
    params.max = max;
    params.eps = bits_float(static_cast<std::uint32_t>(pbase) << shift);
    candidates.emplace_back(params);
  }
  if (candidates.empty()) {
    throw std::invalid_argument("RangeFloat::tune: no valid mantissa width for this range");
  }

  // Without data, calibrate against a uniform grid over the target range —
  // the agnostic prior over gradient values.
  std::vector<float> grid;
  if (sample.empty()) {
    constexpr int kGrid = 512;
    grid.reserve(kGrid);
    for (int i = 0; i < kGrid; ++i) {
      const float v = min + (max - min) * (static_cast<float>(i) + 0.5f) / kGrid;
      grid.push_back(v);
    }
    sample = grid;
  }

  const RangeFloat* best = nullptr;
  double best_err = std::numeric_limits<double>::infinity();
  for (const RangeFloat& cand : candidates) {
    double sq = 0.0;
    for (float v : sample) {
      const double d = static_cast<double>(v) - cand.decode(cand.encode(v));
      sq += d * d;
    }
    if (sq < best_err) {
      best_err = sq;
      best = &cand;
    }
  }
  return *best;
}

std::vector<std::uint8_t> pack_codes(std::span<const std::uint32_t> codes, int bits) {
  if (bits < 1 || bits > 32) throw std::invalid_argument("pack_codes: bits must be in [1, 32]");
  const std::size_t total_bits = codes.size() * static_cast<std::size_t>(bits);
  std::vector<std::uint8_t> bytes((total_bits + 7) / 8, 0);
  std::size_t bit_at = 0;
  const std::uint64_t mask = bits == 32 ? ~std::uint64_t{0} >> 32 : (std::uint64_t{1} << bits) - 1;
  for (std::uint32_t code : codes) {
    std::uint64_t value = code & mask;
    std::size_t byte = bit_at >> 3;
    const std::size_t offset = bit_at & 7;
    value <<= offset;
    for (int remaining = bits + static_cast<int>(offset); remaining > 0;
         remaining -= 8, value >>= 8, ++byte) {
      bytes[byte] |= static_cast<std::uint8_t>(value & 0xffu);
    }
    bit_at += static_cast<std::size_t>(bits);
  }
  return bytes;
}

util::Untrusted<std::vector<std::uint32_t>> unpack_codes(std::span<const std::uint8_t> bytes,
                                                         int bits, std::size_t count) {
  if (bits < 1 || bits > 32) throw std::invalid_argument("unpack_codes: bits must be in [1, 32]");
  // Division form: `count * bits` can wrap for a wire-supplied count, which
  // would let a corrupt header pass the length check and read out of bounds.
  if (count > bytes.size() * 8 / static_cast<std::size_t>(bits)) {
    throw std::invalid_argument("unpack_codes: byte stream too short");
  }
  std::vector<std::uint32_t> codes(count);
  const std::uint64_t mask = bits == 32 ? ~std::uint64_t{0} >> 32 : (std::uint64_t{1} << bits) - 1;
  std::size_t bit_at = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t byte = bit_at >> 3;
    const std::size_t offset = bit_at & 7;
    std::uint64_t value = 0;
    const std::size_t span_bytes = (offset + static_cast<std::size_t>(bits) + 7) / 8;
    for (std::size_t b = 0; b < span_bytes; ++b) {
      value |= static_cast<std::uint64_t>(bytes[byte + b]) << (8 * b);
    }
    codes[i] = static_cast<std::uint32_t>((value >> offset) & mask);
    bit_at += static_cast<std::size_t>(bits);
  }
  return util::untrusted(std::move(codes));
}

}  // namespace fftgrad::quant
