#include "fftgrad/telemetry/ledger.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "fftgrad/telemetry/metrics.h"
#include "fftgrad/util/logging.h"

// Mirrors fftgrad/analysis/config.h's default. The telemetry library cannot
// include analysis headers (analysis links telemetry, not the reverse), but
// the FFTGRAD_ANALYSIS definition itself is tree-wide when CMake sets it,
// so alert-abort semantics still match the analysis layer's build mode.
#if !defined(FFTGRAD_ANALYSIS)
#if !defined(NDEBUG)
#define FFTGRAD_ANALYSIS 1
#else
#define FFTGRAD_ANALYSIS 0
#endif
#endif

namespace fftgrad::telemetry {
namespace {

std::string json_number(double v) {
  if (!std::isfinite(v)) {
    // JSON has no NaN/Inf literal; encode as strings so rows stay parseable
    // (the monitors have already flagged the value by the time it lands).
    if (std::isnan(v)) return "\"nan\"";
    return v > 0 ? "\"inf\"" : "\"-inf\"";
  }
  char buf[64];
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

std::string json_string(std::string_view s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

/// Build preset tag stamped into manifests: the explicit FFTGRAD_PRESET env
/// wins (scripts export it), else the compile mode is the best guess.
std::string preset_tag() {
  if (const char* env = std::getenv("FFTGRAD_PRESET"); env != nullptr && *env != '\0') {
    return env;
  }
#if FFTGRAD_ANALYSIS
  return "analysis";
#else
  return "release";
#endif
}

}  // namespace

RunLedger& RunLedger::global() {
  static RunLedger* ledger = new RunLedger();  // never destroyed
  return *ledger;
}

bool RunLedger::open(const std::string& path) {
  util::LockGuard<util::Mutex> lock(mutex_);
  if (file_ != nullptr) return true;  // already open
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    util::log_warn() << "ledger: cannot open '" << path << "'; ledger disabled";
    return false;
  }
  file_ = f;
  bytes_written_ = 0;
  enabled_.store(true, std::memory_order_relaxed);
  return true;
}

void RunLedger::close() {
  util::LockGuard<util::Mutex> lock(mutex_);
  enabled_.store(false, std::memory_order_relaxed);
  if (file_ == nullptr) return;
  std::fclose(static_cast<std::FILE*>(file_));
  file_ = nullptr;
}

void RunLedger::set_tolerances(const LedgerTolerances& tolerances) {
  util::LockGuard<util::Mutex> lock(mutex_);
  tolerances_ = tolerances;
  if (tolerances_.drift_window == 0) tolerances_.drift_window = 1;
}

LedgerTolerances RunLedger::tolerances() const {
  util::LockGuard<util::Mutex> lock(mutex_);
  return tolerances_;
}

void RunLedger::set_abort_on_alert(bool abort_on_alert) {
  util::LockGuard<util::Mutex> lock(mutex_);
  abort_on_alert_ = abort_on_alert;
}

void RunLedger::write_line_locked(const std::string& line) {
  if (file_ == nullptr) return;
  auto* f = static_cast<std::FILE*>(file_);
  std::fwrite(line.data(), 1, line.size(), f);
  std::fputc('\n', f);
  bytes_written_ += line.size() + 1;
}

std::uint64_t RunLedger::begin_run(const LedgerManifest& manifest) {
  if (!enabled()) return 0;
  util::LockGuard<util::Mutex> lock(mutex_);
  run_id_ = ++next_run_id_;
  rows_this_run_ = 0;
  pending_collectives_.clear();
  alert_counts_.clear();
  remediation_counts_.clear();
  kinds_.clear();

  std::ostringstream out;
  out << "{\"type\":\"manifest\",\"run\":" << run_id_
      << ",\"trainer\":" << json_string(manifest.trainer)
      << ",\"compressor\":" << json_string(manifest.compressor)
      << ",\"ranks\":" << manifest.ranks << ",\"iterations\":" << manifest.iterations
      << ",\"seed\":" << manifest.seed << ",\"preset\":" << json_string(preset_tag())
      << ",\"network\":{\"name\":" << json_string(manifest.network.name)
      << ",\"latency_s\":" << json_number(manifest.network.latency_s.to_double())
      << ",\"bandwidth_bytes_s\":"
      << json_number(manifest.network.bandwidth_bytes_s.to_double())
      << ",\"loss_rate\":" << json_number(manifest.network.loss_rate)
      << "},\"fault_rate\":" << json_number(manifest.fault_rate)
      << ",\"tolerances\":{\"alpha_bound\":" << json_number(tolerances_.alpha_bound)
      << ",\"min_ratio\":" << json_number(tolerances_.min_ratio)
      << ",\"drift_rel_tol\":" << json_number(tolerances_.drift_rel_tol)
      << ",\"drift_window\":" << tolerances_.drift_window
      << ",\"residual_growth_factor\":" << json_number(tolerances_.residual_growth_factor)
      << "}}";
  write_line_locked(out.str());
  return run_id_;
}

void RunLedger::end_run() {
  if (!enabled()) return;
  util::LockGuard<util::Mutex> lock(mutex_);
  if (run_id_ == 0) return;

  std::ostringstream out;
  out << "{\"type\":\"summary\",\"run\":" << run_id_ << ",\"iterations\":" << rows_this_run_
      << ",\"collectives\":{";
  bool first = true;
  for (const auto& [kind, totals] : kinds_) {
    out << (first ? "" : ",") << json_string(kind) << ":{\"count\":" << totals.count
        << ",\"predicted_s\":" << json_number(totals.predicted_s.to_double())
        << ",\"charged_s\":" << json_number(totals.charged_s.to_double())
        << ",\"retries\":" << totals.retries << ",\"failed\":" << totals.failed << "}";
    first = false;
  }
  out << "},\"alerts\":{";
  first = true;
  for (const auto& [monitor, count] : alert_counts_) {
    out << (first ? "" : ",") << json_string(monitor) << ":" << count;
    first = false;
  }
  out << "},\"remediations\":{";
  first = true;
  for (const auto& [action, count] : remediation_counts_) {
    out << (first ? "" : ",") << json_string(action) << ":" << count;
    first = false;
  }
  out << "}}";
  write_line_locked(out.str());
  std::fflush(static_cast<std::FILE*>(file_));
  run_id_ = 0;
}

void RunLedger::record_remediation(const LedgerRemediation& row) {
  if (!enabled()) return;
  util::LockGuard<util::Mutex> lock(mutex_);
  ++remediation_counts_[row.action];
  MetricsRegistry::global().counter("ledger.remediations." + row.action).add(1.0);
  util::log_warn() << "ledger: remediation [" << row.cause << " -> " << row.action
                   << "] applied at iteration " << row.iteration << ", "
                   << (row.recovered ? "recovered after " : "not recovered within ")
                   << row.iterations_to_recover << " iteration(s)";
  std::ostringstream out;
  out << "{\"type\":\"remediation\",\"run\":" << run_id_ << ",\"iter\":" << row.iteration
      << ",\"cause\":" << json_string(row.cause) << ",\"action\":" << json_string(row.action)
      << ",\"cost_s\":" << json_number(row.cost_s.to_double())
      << ",\"iterations_to_recover\":" << row.iterations_to_recover
      << ",\"recovered\":" << (row.recovered ? "true" : "false") << "}";
  write_line_locked(out.str());
}

void RunLedger::record_collective(const LedgerCollective& sample) {
  if (!enabled()) return;
  util::LockGuard<util::Mutex> lock(mutex_);
  pending_collectives_.push_back(sample);
}

void RunLedger::record_critpath(const LedgerCritpath& row) {
  if (!enabled()) return;
  util::LockGuard<util::Mutex> lock(mutex_);
  // The analyzer runs after end_run() closed the run; attribute the row to
  // the most recently opened run either way.
  const std::uint64_t run = run_id_ != 0 ? run_id_ : next_run_id_;
  std::ostringstream out;
  out << "{\"type\":\"critpath\",\"run\":" << run << ",\"iterations\":" << row.iterations
      << ",\"e2e_s\":" << json_number(row.e2e_s.to_double())
      << ",\"compute_s\":" << json_number(row.compute_s.to_double())
      << ",\"comm_s\":" << json_number(row.comm_s.to_double())
      << ",\"comm_share\":" << json_number(row.comm_share)
      << ",\"overlap_bound_s\":" << json_number(row.overlap_bound_s.to_double())
      << ",\"pipeline_bound_s\":" << json_number(row.pipeline_bound_s.to_double())
      << ",\"categories\":{";
  bool first = true;
  for (const auto& [name, seconds] : row.category_s) {
    out << (first ? "" : ",") << json_string(name) << ":"
        << json_number(seconds.to_double());
    first = false;
  }
  out << "}}";
  write_line_locked(out.str());
  if (file_ != nullptr) std::fflush(static_cast<std::FILE*>(file_));
}

void RunLedger::alert_locked(const char* monitor, std::uint64_t iteration, double value,
                             double bound, const std::string& message) {
  ++alert_counts_[monitor];
  {
    // The registry counter only accumulates when metrics collection is on;
    // the ledger's own alert_counts_ are authoritative either way.
    MetricsRegistry& registry = MetricsRegistry::global();
    registry.counter(std::string("ledger.alerts.") + monitor).add(1.0);
  }
  util::log_warn() << "ledger: [" << monitor << "] iteration " << iteration << ": " << message;
  std::ostringstream out;
  out << "{\"type\":\"alert\",\"run\":" << run_id_ << ",\"iter\":" << iteration
      << ",\"monitor\":" << json_string(monitor) << ",\"value\":" << json_number(value)
      << ",\"bound\":" << json_number(bound) << ",\"message\":" << json_string(message)
      << "}";
  write_line_locked(out.str());
#if FFTGRAD_ANALYSIS
  if (abort_on_alert_) {
    std::fflush(static_cast<std::FILE*>(file_));
    std::fprintf(stderr, "fftgrad-ledger: [%s] %s\n", monitor, message.c_str());
    std::abort();
  }
#endif
}

void RunLedger::run_monitors_locked(const LedgerIteration& row) {
  std::ostringstream msg;
  if (!std::isfinite(row.grad_norm)) {
    msg << "gradient norm is non-finite (" << row.grad_norm << ")";
    alert_locked("nan_gradient", row.iteration, row.grad_norm, 0.0, msg.str());
  }
  if (!std::isfinite(row.loss)) {
    msg.str({});
    msg << "training loss is non-finite (" << row.loss << ")";
    alert_locked("nonfinite_loss", row.iteration, row.loss, 0.0, msg.str());
  }
  if (!(row.alpha < tolerances_.alpha_bound)) {  // catches NaN alpha too
    msg.str({});
    msg << "alpha " << row.alpha << " exceeds the Theorem-3.3 bound "
        << tolerances_.alpha_bound << " (compression error no longer contracts)";
    alert_locked("alpha_bound", row.iteration, row.alpha, tolerances_.alpha_bound, msg.str());
  }
  if (row.ratio > 0.0 && row.ratio < tolerances_.min_ratio) {
    msg.str({});
    msg << "compression ratio collapsed to " << row.ratio << " (< " << tolerances_.min_ratio
        << "x): the codec is expanding the gradient";
    alert_locked("ratio_collapse", row.iteration, row.ratio, tolerances_.min_ratio, msg.str());
  }
  if (row.ef_residual_norm >= 0.0 && std::isfinite(row.grad_norm) &&
      row.ef_residual_norm > tolerances_.residual_growth_factor * row.grad_norm &&
      row.ef_residual_norm > 0.0) {
    msg.str({});
    msg << "EF residual norm " << row.ef_residual_norm << " exceeds "
        << tolerances_.residual_growth_factor << "x the gradient norm " << row.grad_norm
        << " (error feedback diverging)";
    alert_locked("residual_growth", row.iteration, row.ef_residual_norm,
                 tolerances_.residual_growth_factor * row.grad_norm, msg.str());
  }

  // Model drift: per collective kind, a rolling window of per-iteration
  // (predicted, charged) sums; once the window is full, the relative gap of
  // the window totals must stay within drift_rel_tol. Averaging over the
  // window is what lets a sampled 5%-drop run reconcile against the
  // RetryPolicy *expected*-cost terms without per-op noise firing alerts.
  for (auto& [kind, totals] : kinds_) {
    if (totals.window.size() < tolerances_.drift_window) continue;
    util::SimSeconds predicted{};
    util::SimSeconds charged{};
    for (const auto& [p, c] : totals.window) {
      predicted += p;
      charged += c;
    }
    if (predicted <= util::SimSeconds(0.0)) continue;
    const double drift = std::fabs((charged - predicted) / predicted);
    if (drift > tolerances_.drift_rel_tol) {
      msg.str({});
      msg << kind << ": rolling predicted-vs-charged drift " << drift << " exceeds "
          << tolerances_.drift_rel_tol << " (window " << tolerances_.drift_window
          << ", predicted " << predicted.to_double() << "s, charged " << charged.to_double()
          << "s)";
      alert_locked("model_drift", row.iteration, drift, tolerances_.drift_rel_tol, msg.str());
      totals.window.clear();  // re-arm after a full fresh window, not every row
      totals.window_at = 0;
    }
  }
}

void RunLedger::end_iteration(const LedgerIteration& row) {
  if (!enabled()) return;
  util::LockGuard<util::Mutex> lock(mutex_);

  std::ostringstream out;
  out << "{\"type\":\"iteration\",\"run\":" << run_id_ << ",\"iter\":" << row.iteration
      << ",\"loss\":" << json_number(row.loss)
      << ",\"sim_time_s\":" << json_number(row.sim_time_s.to_double())
      << ",\"phases\":{\"forward_s\":" << json_number(row.forward_s.to_double())
      << ",\"backward_s\":" << json_number(row.backward_s.to_double())
      << ",\"compress_s\":" << json_number(row.compress_s.to_double())
      << ",\"decompress_s\":" << json_number(row.decompress_s.to_double())
      << "},\"collectives\":[";
  // Per-kind, per-iteration reconciliation sums feed the drift monitor.
  std::map<std::string, std::pair<util::SimSeconds, util::SimSeconds>> iteration_sums;
  for (std::size_t i = 0; i < pending_collectives_.size(); ++i) {
    const LedgerCollective& c = pending_collectives_[i];
    out << (i == 0 ? "" : ",") << "{\"kind\":" << json_string(c.kind) << ",\"op\":" << c.op
        << ",\"bytes\":" << json_number(c.bytes.to_double())
        << ",\"predicted_s\":" << json_number(c.predicted_s.to_double())
        << ",\"charged_s\":" << json_number(c.charged_s.to_double());
    if (c.paper_model_s > util::SimSeconds(0.0)) {
      out << ",\"paper_model_s\":" << json_number(c.paper_model_s.to_double());
    }
    out << ",\"retries\":" << c.retries << ",\"failed\":" << c.failed << "}";
    KindTotals& totals = kinds_[c.kind];
    totals.predicted_s += c.predicted_s;
    totals.charged_s += c.charged_s;
    totals.count += 1;
    totals.retries += c.retries;
    totals.failed += c.failed;
    auto& [p, ch] = iteration_sums[c.kind];
    p += c.predicted_s;
    ch += c.charged_s;
  }
  out << "],\"roundtrip\":{\"alpha\":" << json_number(row.alpha)
      << ",\"ratio\":" << json_number(row.ratio)
      << ",\"rms_error\":" << json_number(row.rms_error)
      << ",\"max_error\":" << json_number(row.max_error)
      << ",\"wire_bytes\":" << json_number(row.wire_bytes.to_double()) << "}"
      << ",\"grad_norm\":" << json_number(row.grad_norm);
  if (row.ef_residual_norm >= 0.0) {
    out << ",\"ef_residual_norm\":" << json_number(row.ef_residual_norm);
  }
  out << ",\"skipped_peers\":" << row.skipped_peers;
  if (!row.layers.empty()) {
    out << ",\"layers\":[";
    for (std::size_t i = 0; i < row.layers.size(); ++i) {
      const LedgerLayerStats& layer = row.layers[i];
      out << (i == 0 ? "" : ",") << "{\"name\":" << json_string(layer.name)
          << ",\"alpha\":" << json_number(layer.alpha)
          << ",\"rms_error\":" << json_number(layer.rms_error)
          << ",\"max_error\":" << json_number(layer.max_error) << "}";
    }
    out << "]";
  }
  out << "}";
  write_line_locked(out.str());
  pending_collectives_.clear();
  ++rows_this_run_;

  // Advance the drift windows with this iteration's sums before judging.
  for (const auto& [kind, sums] : iteration_sums) {
    KindTotals& totals = kinds_[kind];
    if (totals.window.size() < tolerances_.drift_window) {
      totals.window.push_back(sums);
    } else {
      totals.window[totals.window_at] = sums;
      totals.window_at = (totals.window_at + 1) % tolerances_.drift_window;
    }
  }
  run_monitors_locked(row);
}

std::size_t RunLedger::alerts_total() const {
  util::LockGuard<util::Mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& [monitor, count] : alert_counts_) total += count;
  return total;
}

std::size_t RunLedger::alerts(const std::string& monitor) const {
  util::LockGuard<util::Mutex> lock(mutex_);
  const auto it = alert_counts_.find(monitor);
  return it == alert_counts_.end() ? 0 : it->second;
}

std::size_t RunLedger::bytes_written() const {
  util::LockGuard<util::Mutex> lock(mutex_);
  return bytes_written_;
}

}  // namespace fftgrad::telemetry
