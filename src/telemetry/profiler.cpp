// Host-time sampling profiler: lifecycle, collection, symbolization and
// reporting. The async-signal-safe half (the SIGPROF handler and the
// span-stack writers) lives in profiler_signal.cpp, which fftgrad_lint
// audits; everything here runs in normal thread context and may allocate,
// lock and do IO freely.
//
// Data flow: handler -> per-thread SPSC ring -> collector thread (drains
// every ~50 ms into the pointer-keyed aggregate) -> folded() symbolizes
// (dladdr + __cxa_demangle, cached per address) and merges into
// deterministic, root-first folded stacks.
#include "fftgrad/telemetry/profiler.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <thread>
#include <tuple>
#include <vector>

#include <csignal>
#if defined(__linux__)
#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <sys/time.h>
#endif

#include "fftgrad/telemetry/metrics.h"
#include "fftgrad/telemetry/trace.h"
#include "fftgrad/util/annotated_mutex.h"
#include "fftgrad/util/logging.h"
#include "fftgrad/util/table.h"
#include "profiler_internal.h"

namespace fftgrad::telemetry {
namespace {

/// Raw aggregation key: samples whose rank, innermost span (by pointer —
/// span names are static literals) and exact pc vector match are counted
/// together before symbolization.
struct AggKey {
  std::int32_t rank = -1;
  const char* span_name = nullptr;
  const char* span_category = nullptr;
  std::vector<void*> pcs;  ///< leaf-first

  bool operator<(const AggKey& other) const {
    return std::tie(rank, span_name, span_category, pcs) <
           std::tie(other.rank, other.span_name, other.span_category, other.pcs);
  }
};

struct ThreadEntry {
  prof::ThreadProfState* state = nullptr;
  std::unique_ptr<prof::SampleRing> ring;
};

struct ProfilerImpl {
  /// Set once by the first start(); gates register_current_thread()'s
  /// fast path so unprofiled runs pay one relaxed load per thread spawn.
  std::atomic<bool> armed{false};
  std::atomic<bool> running{false};
  std::atomic<bool> collector_stop{false};
  std::atomic<int> hz{0};

  /// Serializes start()/stop() and guards the collector handle.
  util::Mutex lifecycle_mutex;
  std::thread collector FFTGRAD_GUARDED_BY(lifecycle_mutex);

  util::Mutex threads_mutex;
  std::vector<ThreadEntry> threads FFTGRAD_GUARDED_BY(threads_mutex);

  /// Serializes ring consumers: the collector's periodic drain and any
  /// folded()/clear() caller. The rings are SPSC, so exactly one consumer
  /// may advance tails at a time.
  util::Mutex drain_mutex;

  util::Mutex agg_mutex;
  std::map<AggKey, std::uint64_t> agg FFTGRAD_GUARDED_BY(agg_mutex);
};

ProfilerImpl& impl() {
  static ProfilerImpl* state = new ProfilerImpl();  // never destroyed
  return *state;
}

void drain_rings(ProfilerImpl& state) {
  util::LockGuard<util::Mutex> consumer(state.drain_mutex);
  std::vector<prof::SampleRing*> rings;
  {
    util::LockGuard<util::Mutex> lock(state.threads_mutex);
    rings.reserve(state.threads.size());
    for (const ThreadEntry& entry : state.threads) rings.push_back(entry.ring.get());
  }
  std::map<AggKey, std::uint64_t> local;
  for (prof::SampleRing* ring : rings) {
    std::uint64_t tail = ring->tail.load(std::memory_order_relaxed);
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    for (; tail != head; ++tail) {
      const prof::Sample& sample = ring->slots[tail % prof::kRingCapacity];
      AggKey key;
      key.rank = sample.rank;
      key.span_name = sample.span_name;
      key.span_category = sample.span_category;
      key.pcs.assign(sample.pcs, sample.pcs + sample.frames);
      ++local[std::move(key)];
    }
    ring->tail.store(tail, std::memory_order_release);
  }
  if (local.empty()) return;
  util::LockGuard<util::Mutex> lock(state.agg_mutex);
  for (const auto& [key, count] : local) state.agg[key] += count;
}

void collector_loop(ProfilerImpl& state) {
  while (!state.collector_stop.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    drain_rings(state);
  }
}

const char* basename_of(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

/// Folded-stack tokens are ';'-separated and the count is split on the
/// last space, so frames may contain spaces (demangled signatures do) but
/// never ';' or line breaks.
void sanitize_token(std::string& token) {
  for (char& c : token) {
    if (c == ';') {
      c = ',';
    } else if (c == '\n' || c == '\r' || c == '\t') {
      c = ' ';
    }
  }
}

std::string symbolize(void* pc, bool leaf, std::map<const void*, std::string>& cache) {
  // Non-leaf frames hold return addresses; step back one byte so the
  // lookup lands inside the call instruction rather than whatever symbol
  // happens to start right after it.
  const void* addr =
      leaf ? pc : static_cast<const void*>(static_cast<const char*>(pc) - 1);
  const auto cached = cache.find(addr);
  if (cached != cache.end()) return cached->second;

  std::string name;
#if defined(__linux__)
  Dl_info info{};
  if (dladdr(addr, &info) != 0 && info.dli_sname != nullptr) {
    int status = 0;
    char* demangled = abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    name = (status == 0 && demangled != nullptr) ? demangled : info.dli_sname;
    std::free(demangled);
  } else if (info.dli_fname != nullptr) {
    // Static/local symbol: attribute to the module plus load offset so
    // the frame stays stable and offline-resolvable (addr2line).
    char suffix[32];
    const long offset =
        info.dli_fbase != nullptr
            ? static_cast<long>(static_cast<const char*>(addr) -
                                static_cast<const char*>(info.dli_fbase))
            : 0L;
    std::snprintf(suffix, sizeof(suffix), "+0x%lx", offset);
    name = std::string(basename_of(info.dli_fname)) + suffix;
  }
#endif
  if (name.empty()) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%p", pc);
    name = buffer;
  }
  sanitize_token(name);
  cache.emplace(addr, name);
  return name;
}

bool parse_count(const std::string& text, std::uint64_t& out) {
  if (text.empty()) return false;
  out = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    out = out * 10u + static_cast<std::uint64_t>(c - '0');
  }
  return out > 0;
}

std::vector<std::string> split_semicolons(const std::string& text) {
  std::vector<std::string> tokens;
  std::size_t at = 0;
  while (at <= text.size()) {
    const std::size_t next = text.find(';', at);
    const std::size_t end = next == std::string::npos ? text.size() : next;
    tokens.push_back(text.substr(at, end - at));
    if (next == std::string::npos) break;
    at = next + 1;
  }
  return tokens;
}

}  // namespace

Profiler& Profiler::global() {
  static Profiler* profiler = new Profiler();  // never destroyed
  return *profiler;
}

void Profiler::register_current_thread() {
  ProfilerImpl& state = impl();
  if (!state.armed.load(std::memory_order_relaxed)) return;
  prof::ThreadProfState& thread = prof::thread_state();
  if (thread.registered != 0) return;
  thread.registered = 1;
  auto ring = std::make_unique<prof::SampleRing>();
  prof::SampleRing* raw = ring.get();
  {
    util::LockGuard<util::Mutex> lock(state.threads_mutex);
    state.threads.push_back(ThreadEntry{&thread, std::move(ring)});
  }
  // Publish last: once visible, the handler may write into the ring.
  thread.ring.store(raw, std::memory_order_release);
}

bool Profiler::start(int hz) {
#if !defined(__linux__)
  (void)hz;
  util::log_warn() << "profiler: SIGPROF sampling is Linux-only; profiling disabled";
  return false;
#else
  ProfilerImpl& state = impl();
  util::LockGuard<util::Mutex> lifecycle(state.lifecycle_mutex);
  if (state.running.load(std::memory_order_acquire)) {
    util::log_warn() << "profiler: start() ignored — already sampling";
    return false;
  }
  if (hz < 1 || hz > 1000) {
    util::log_warn() << "profiler: clamping sample rate " << hz << " into [1, 1000]";
    hz = hz < 1 ? kDefaultHz : 1000;
  }
  state.hz.store(hz, std::memory_order_relaxed);
  state.armed.store(true, std::memory_order_relaxed);

  // Prime backtrace() outside signal context: its first call may load
  // libgcc's unwinder, which allocates. Every later call is allocation-
  // free, which is what makes it usable from the handler.
  void* prime[4];
  backtrace(prime, 4);

  register_current_thread();

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_sigaction = &prof::sigprof_handler;
  action.sa_flags = SA_RESTART | SA_SIGINFO;
  sigemptyset(&action.sa_mask);
  if (sigaction(SIGPROF, &action, nullptr) != 0) {
    util::log_warn() << "profiler: sigaction(SIGPROF) failed; profiling disabled";
    return false;
  }

  state.collector_stop.store(false, std::memory_order_release);
  state.collector = std::thread([&state] { collector_loop(state); });
  state.running.store(true, std::memory_order_release);
  detail::g_span_hooks.fetch_or(detail::kSpanHookProfile, std::memory_order_relaxed);

  itimerval timer{};
  const long period_us = 1000000L / static_cast<long>(hz);
  timer.it_interval.tv_sec = period_us / 1000000L;
  timer.it_interval.tv_usec = period_us % 1000000L;
  timer.it_value = timer.it_interval;
  if (setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
    detail::g_span_hooks.fetch_and(~detail::kSpanHookProfile, std::memory_order_relaxed);
    state.collector_stop.store(true, std::memory_order_release);
    if (state.collector.joinable()) state.collector.join();
    state.running.store(false, std::memory_order_release);
    util::log_warn() << "profiler: setitimer(ITIMER_PROF) failed; profiling disabled";
    return false;
  }
  util::log_info() << "profiler: sampling SIGPROF at " << hz
                   << " Hz (process CPU time, all registered threads)";
  return true;
#endif
}

void Profiler::stop() {
  ProfilerImpl& state = impl();
  util::LockGuard<util::Mutex> lifecycle(state.lifecycle_mutex);
  if (!state.running.load(std::memory_order_acquire)) return;
#if defined(__linux__)
  itimerval off{};
  setitimer(ITIMER_PROF, &off, nullptr);
#endif
  // The handler stays installed: with the timer off it never fires again,
  // and swapping dispositions while a signal is in flight races with the
  // default action (which terminates the process).
  detail::g_span_hooks.fetch_and(~detail::kSpanHookProfile, std::memory_order_relaxed);
  state.collector_stop.store(true, std::memory_order_release);
  if (state.collector.joinable()) state.collector.join();
  drain_rings(state);
  state.running.store(false, std::memory_order_release);

  const Stats totals = stats();
  MetricsRegistry& metrics = MetricsRegistry::global();
  metrics.gauge("profile.samples").set(static_cast<double>(totals.samples));
  metrics.gauge("profile.dropped").set(static_cast<double>(totals.dropped));
  metrics.gauge("profile.truncated").set(static_cast<double>(totals.truncated));
  metrics.gauge("profile.threads").set(static_cast<double>(totals.threads));
  metrics.gauge("profile.hz").set(static_cast<double>(totals.hz));
  util::log_info() << "profiler: stopped after " << totals.samples << " samples ("
                   << totals.dropped << " dropped, " << totals.truncated
                   << " truncated) across " << totals.threads << " threads";
}

bool Profiler::running() const {
  return impl().running.load(std::memory_order_acquire);
}

std::vector<FoldedStack> Profiler::folded() {
  ProfilerImpl& state = impl();
  drain_rings(state);
  std::map<AggKey, std::uint64_t> aggregate;
  {
    util::LockGuard<util::Mutex> lock(state.agg_mutex);
    aggregate = state.agg;
  }
  std::map<const void*, std::string> cache;
  // Distinct pc vectors can symbolize to identical frame lists (inlining,
  // multiple call sites in one function); merge after symbolization so
  // the folded output is canonical.
  std::map<std::tuple<std::int32_t, std::string, std::string, std::vector<std::string>>,
           std::uint64_t>
      merged;
  for (const auto& [key, count] : aggregate) {
    std::vector<std::string> frames;
    frames.reserve(key.pcs.size());
    for (std::size_t i = key.pcs.size(); i-- > 0;) {  // leaf-first -> root-first
      frames.push_back(symbolize(key.pcs[i], /*leaf=*/i == 0, cache));
    }
    std::string span = key.span_name != nullptr ? key.span_name : "";
    std::string category = key.span_category != nullptr ? key.span_category : "";
    sanitize_token(span);
    sanitize_token(category);
    merged[{key.rank, std::move(category), std::move(span), std::move(frames)}] += count;
  }
  std::vector<FoldedStack> out;
  out.reserve(merged.size());
  for (const auto& [key, count] : merged) {
    FoldedStack stack;
    stack.rank = std::get<0>(key);
    stack.category = std::get<1>(key);
    stack.span = std::get<2>(key);
    stack.frames = std::get<3>(key);
    stack.count = count;
    out.push_back(std::move(stack));
  }
  return out;  // map order: deterministic for a given sample population
}

std::string Profiler::render_folded_text() { return render_folded(folded()); }

bool Profiler::write_folded(const std::string& path) {
  const std::string text = render_folded_text();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    util::log_warn() << "profiler: cannot write folded stacks to '" << path << "'";
    return false;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  const bool ok = std::fclose(f) == 0;
  if (!ok) util::log_warn() << "profiler: error closing '" << path << "'";
  return ok;
}

std::vector<HotPath> Profiler::hot_paths() { return hot_paths_from(folded()); }

std::string Profiler::render_report(std::size_t top_n) {
  const std::vector<FoldedStack> stacks = folded();
  const Stats totals = stats();
  std::ostringstream out;
  out << "Hot paths (host self-time): " << totals.samples << " samples at " << totals.hz
      << " Hz across " << totals.threads << " threads; " << totals.dropped
      << " dropped, " << totals.truncated << " truncated\n";
  const std::vector<HotPath> paths = hot_paths_from(stacks);
  if (paths.empty()) {
    out << "(no samples — run longer or raise FFTGRAD_PROFILE_HZ)\n";
  } else {
    out << render_hot_paths(paths, top_n);
  }
  return out.str();
}

Profiler::Stats Profiler::stats() const {
  ProfilerImpl& state = impl();
  Stats totals;
  totals.samples = prof::g_samples_taken.load(std::memory_order_relaxed);
  totals.truncated = prof::g_stacks_truncated.load(std::memory_order_relaxed);
  totals.hz = state.hz.load(std::memory_order_relaxed);
  util::LockGuard<util::Mutex> lock(state.threads_mutex);
  totals.threads = state.threads.size();
  for (const ThreadEntry& entry : state.threads) {
    totals.dropped += entry.ring->dropped.load(std::memory_order_relaxed);
  }
  return totals;
}

void Profiler::clear() {
  ProfilerImpl& state = impl();
  {
    // Discard pending samples: advance each tail to the published head.
    util::LockGuard<util::Mutex> consumer(state.drain_mutex);
    util::LockGuard<util::Mutex> lock(state.threads_mutex);
    for (const ThreadEntry& entry : state.threads) {
      entry.ring->tail.store(entry.ring->head.load(std::memory_order_acquire),
                             std::memory_order_release);
    }
  }
  util::LockGuard<util::Mutex> lock(state.agg_mutex);
  state.agg.clear();
}

// ---------------------------------------------------------------------------
// Folded-text grammar (free functions; no profiler needed).

std::string render_folded(const std::vector<FoldedStack>& stacks) {
  std::vector<const FoldedStack*> order;
  order.reserve(stacks.size());
  for (const FoldedStack& stack : stacks) order.push_back(&stack);
  std::sort(order.begin(), order.end(), [](const FoldedStack* a, const FoldedStack* b) {
    return std::tie(a->rank, a->category, a->span, a->frames, a->count) <
           std::tie(b->rank, b->category, b->span, b->frames, b->count);
  });
  std::ostringstream out;
  for (const FoldedStack* stack : order) {
    if (stack->rank < 0) {
      out << "rank:-";
    } else {
      out << "rank:" << stack->rank;
    }
    out << ";cat:" << (stack->category.empty() ? "-" : stack->category);
    out << ";span:" << (stack->span.empty() ? "-" : stack->span);
    for (const std::string& frame : stack->frames) out << ';' << frame;
    out << ' ' << stack->count << '\n';
  }
  return out.str();
}

bool parse_folded(const std::string& text, std::vector<FoldedStack>& out,
                  std::string* error) {
  out.clear();
  std::size_t lineno = 0;
  std::size_t at = 0;
  const auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = "line " + std::to_string(lineno) + ": " + message;
    return false;
  };
  while (at < text.size()) {
    std::size_t end = text.find('\n', at);
    if (end == std::string::npos) end = text.size();
    ++lineno;
    const std::string line = text.substr(at, end - at);
    at = end + 1;
    if (line.empty()) continue;

    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos || space + 1 >= line.size()) {
      return fail("missing sample count after last space");
    }
    FoldedStack stack;
    if (!parse_count(line.substr(space + 1), stack.count)) {
      return fail("sample count must be a positive integer");
    }
    const std::vector<std::string> tokens = split_semicolons(line.substr(0, space));
    if (tokens.size() < 3) return fail("want rank:<r>;cat:<c>;span:<s>[;frames...]");

    if (tokens[0].compare(0, 5, "rank:") != 0) return fail("first token must be rank:<r>");
    const std::string rank_text = tokens[0].substr(5);
    if (rank_text == "-") {
      stack.rank = -1;
    } else {
      if (rank_text.empty()) return fail("empty rank");
      std::int64_t rank = 0;
      for (char c : rank_text) {
        if (c < '0' || c > '9') return fail("rank must be '-' or a non-negative integer");
        rank = rank * 10 + (c - '0');
        if (rank > 0x7fffffff) return fail("rank out of range");
      }
      stack.rank = static_cast<std::int32_t>(rank);
    }
    if (tokens[1].compare(0, 4, "cat:") != 0) return fail("second token must be cat:<c>");
    stack.category = tokens[1].substr(4);
    if (stack.category == "-") stack.category.clear();
    if (tokens[2].compare(0, 5, "span:") != 0) return fail("third token must be span:<s>");
    stack.span = tokens[2].substr(5);
    if (stack.span == "-") stack.span.clear();

    for (std::size_t i = 3; i < tokens.size(); ++i) {
      if (tokens[i].empty()) return fail("empty stack frame (';;')");
      stack.frames.push_back(tokens[i]);
    }
    out.push_back(std::move(stack));
  }
  return true;
}

std::vector<HotPath> hot_paths_from(const std::vector<FoldedStack>& stacks) {
  struct Acc {
    std::uint64_t self = 0;
    std::uint64_t total = 0;
    std::map<std::string, std::uint64_t> spans;
  };
  std::map<std::string, Acc> by_symbol;
  std::uint64_t grand_total = 0;
  for (const FoldedStack& stack : stacks) {
    grand_total += stack.count;
    if (stack.frames.empty()) continue;
    Acc& leaf = by_symbol[stack.frames.back()];
    leaf.self += stack.count;
    leaf.spans[stack.span.empty() ? "-" : stack.span] += stack.count;
    const std::set<std::string> unique(stack.frames.begin(), stack.frames.end());
    for (const std::string& frame : unique) by_symbol[frame].total += stack.count;
  }
  std::vector<HotPath> out;
  out.reserve(by_symbol.size());
  for (const auto& [symbol, acc] : by_symbol) {
    HotPath path;
    path.symbol = symbol;
    path.self_samples = acc.self;
    path.total_samples = acc.total;
    if (grand_total > 0) {
      path.self_pct = 100.0 * static_cast<double>(acc.self) / static_cast<double>(grand_total);
      path.total_pct =
          100.0 * static_cast<double>(acc.total) / static_cast<double>(grand_total);
    }
    std::uint64_t best = 0;
    for (const auto& [span, count] : acc.spans) {
      if (count > best) {  // ties: first in map order (lexicographic) wins
        best = count;
        path.top_span = span;
      }
    }
    path.simd_hint = simd_candidate_hint(symbol);
    out.push_back(std::move(path));
  }
  std::sort(out.begin(), out.end(), [](const HotPath& a, const HotPath& b) {
    if (a.self_samples != b.self_samples) return a.self_samples > b.self_samples;
    if (a.total_samples != b.total_samples) return a.total_samples > b.total_samples;
    return a.symbol < b.symbol;
  });
  return out;
}

std::string render_hot_paths(const std::vector<HotPath>& paths, std::size_t top_n) {
  util::TableWriter table(
      {"function", "self", "self%", "total%", "top span", "simd candidate"});
  table.set_double_format("%.1f");
  const std::size_t rows = std::min(top_n, paths.size());
  for (std::size_t i = 0; i < rows; ++i) {
    const HotPath& path = paths[i];
    table.add_row({path.symbol, static_cast<long long>(path.self_samples), path.self_pct,
                   path.total_pct, path.top_span.empty() ? "-" : path.top_span,
                   path.simd_hint.empty() ? "-" : path.simd_hint});
  }
  return table.to_string();
}

std::string simd_candidate_hint(const std::string& symbol) {
  std::string low;
  low.reserve(symbol.size());
  for (char c : symbol) low += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  // The project namespace itself contains "fft"; blank out "fftgrad" so only
  // genuine FFT symbols (FftPlan, rfft, butterfly...) match the FFT family.
  for (std::size_t at = low.find("fftgrad"); at != std::string::npos;
       at = low.find("fftgrad", at + 7)) {
    low.replace(at, 7, "#######");
  }
  const auto contains_any = [&low](std::initializer_list<const char*> needles) {
    for (const char* needle : needles) {
      if (low.find(needle) != std::string::npos) return true;
    }
    return false;
  };
  // Ordered: the FFT family first so e.g. fft pack stages attribute to the
  // codec stage that owns them.
  if (contains_any({"butterfly", "rfft", "irfft", "fft"})) {
    return "fft butterflies (ROADMAP item 1)";
  }
  if (contains_any({"quantize", "dequant", "range_float", "rangefloat", "half"})) {
    return "half/RangeFloat quantize (ROADMAP item 1)";
  }
  if (contains_any({"topk", "top_k", "threshold"})) {
    return "top-k threshold scan (ROADMAP item 1)";
  }
  if (contains_any({"prefix_sum", "bitmap", "pack", "mask"})) {
    return "prefix-sum packing (ROADMAP item 1)";
  }
  if (contains_any({"crc"})) {
    return "crc framing (ROADMAP item 1)";
  }
  return "";
}

}  // namespace fftgrad::telemetry
