#include "fftgrad/telemetry/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "fftgrad/util/logging.h"

namespace fftgrad::telemetry {
namespace {

/// Doubles render with enough digits to round-trip; integral values stay
/// integral-looking for readability.
std::string number(double v) {
  char buf[64];
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void Counter::add(double delta) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta, std::memory_order_relaxed)) {
  }
}

void Gauge::set(double value) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  value_.store(value, std::memory_order_relaxed);
}

void Histogram::observe(double value) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  util::LockGuard<util::Mutex> lock(mutex_);
  samples_.push_back(value);
}

void Histogram::reset() {
  util::LockGuard<util::Mutex> lock(mutex_);
  samples_.clear();
}

std::size_t Histogram::count() const {
  util::LockGuard<util::Mutex> lock(mutex_);
  return samples_.size();
}

std::vector<double> Histogram::sorted_samples() const {
  std::vector<double> sorted;
  {
    util::LockGuard<util::Mutex> lock(mutex_);
    sorted = samples_;
  }
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

double Histogram::quantile(double q) const {
  const std::vector<double> sorted = sorted_samples();
  if (sorted.empty()) return 0.0;
  // clamp passes NaN through (all comparisons are false), and ceil(NaN)
  // cast to size_t is UB — pin a NaN request to the median instead.
  if (std::isnan(q)) q = 0.5;
  q = std::clamp(q, 0.0, 1.0);
  // Smallest x with P(X <= x) >= q (the inverse empirical CDF, matching
  // util::EmpiricalCdf::quantile).
  const double target = q * static_cast<double>(sorted.size());
  std::size_t index =
      target <= 0.0 ? 0 : static_cast<std::size_t>(std::ceil(target)) - 1;
  index = std::min(index, sorted.size() - 1);
  return sorted[index];
}

Histogram::Summary Histogram::summarize() const {
  const std::vector<double> sorted = sorted_samples();
  Summary s;
  s.count = sorted.size();
  if (sorted.empty()) return s;
  s.min = sorted.front();
  s.max = sorted.back();
  for (double v : sorted) s.sum += v;
  s.mean = s.sum / static_cast<double>(sorted.size());
  auto at_quantile = [&](double q) {
    const double target = q * static_cast<double>(sorted.size());
    std::size_t index =
        target <= 0.0 ? 0 : static_cast<std::size_t>(std::ceil(target)) - 1;
    return sorted[std::min(index, sorted.size() - 1)];
  };
  s.p50 = at_quantile(0.50);
  s.p90 = at_quantile(0.90);
  s.p99 = at_quantile(0.99);
  return s;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  util::LockGuard<util::SharedMutex> lock(mutex_);
  Counter*& slot = counters_[name];
  if (slot == nullptr) slot = new Counter(enabled_);  // lives forever
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  util::LockGuard<util::SharedMutex> lock(mutex_);
  Gauge*& slot = gauges_[name];
  if (slot == nullptr) slot = new Gauge(enabled_);  // lives forever
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  util::LockGuard<util::SharedMutex> lock(mutex_);
  Histogram*& slot = histograms_[name];
  if (slot == nullptr) slot = new Histogram(enabled_);  // lives forever
  return *slot;
}

void MetricsRegistry::reset() {
  util::SharedLockGuard<util::SharedMutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::string MetricsRegistry::to_json() const {
  util::SharedLockGuard<util::SharedMutex> lock(mutex_);
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out << (first ? "\n" : ",\n") << "    " << quoted(name) << ": " << number(c->value());
    first = false;
  }
  out << (first ? "}" : "\n  }") << ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out << (first ? "\n" : ",\n") << "    " << quoted(name) << ": " << number(g->value());
    first = false;
  }
  out << (first ? "}" : "\n  }") << ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    const Histogram::Summary s = h->summarize();
    out << (first ? "\n" : ",\n") << "    " << quoted(name) << ": {\"count\": " << s.count
        << ", \"sum\": " << number(s.sum) << ", \"min\": " << number(s.min)
        << ", \"max\": " << number(s.max) << ", \"mean\": " << number(s.mean)
        << ", \"p50\": " << number(s.p50) << ", \"p90\": " << number(s.p90)
        << ", \"p99\": " << number(s.p99) << "}";
    first = false;
  }
  out << (first ? "}" : "\n  }") << "\n}\n";
  return out.str();
}

bool MetricsRegistry::export_json(const std::string& path) const {
  const std::string json = to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    util::log_warn() << "telemetry: cannot write metrics to '" << path << "'; metrics dropped";
    return false;
  }
  const bool wrote = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  const bool ok = std::fclose(f) == 0 && wrote;
  if (!ok) util::log_warn() << "telemetry: error writing metrics file '" << path << "'";
  return ok;
}

}  // namespace fftgrad::telemetry
