#include "fftgrad/telemetry/trace.h"

#include <array>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "fftgrad/util/annotated_mutex.h"
#include "fftgrad/util/logging.h"
#include "profiler_internal.h"

namespace fftgrad::telemetry {

namespace detail {
std::atomic<std::uint32_t> g_span_hooks{0};
}  // namespace detail

namespace {

constexpr std::size_t kChunkSize = 4096;

/// Append-only per-thread span storage. Only the owning thread writes; the
/// exporter reads the first `count` records (acquire on the publisher
/// atomic), taking `chunks_mutex` just long enough to snapshot the chunk
/// pointers — chunks themselves are never moved or freed before clear().
struct ThreadBuffer {
  struct Chunk {
    std::array<SpanRecord, kChunkSize> records;
  };

  std::uint32_t index = 0;
  // DELIBERATELY not GUARDED_BY(chunks_mutex): the owning thread reads
  // `chunks` lock-free in push() — single-writer discipline, with only
  // growth and the exporter's pointer snapshot taking the mutex — so a
  // GUARDED_BY claim would be false.
  std::vector<std::unique_ptr<Chunk>> chunks;
  util::Mutex chunks_mutex;
  std::atomic<std::size_t> count{0};

  void push(const SpanRecord& record) {
    const std::size_t at = count.load(std::memory_order_relaxed);
    const std::size_t chunk = at / kChunkSize;
    if (chunk >= chunks.size()) {
      util::LockGuard<util::Mutex> lock(chunks_mutex);
      chunks.push_back(std::make_unique<Chunk>());
    }
    chunks[chunk]->records[at % kChunkSize] = record;
    count.store(at + 1, std::memory_order_release);
  }

  /// Copy the published prefix; safe while the owner keeps appending.
  std::vector<SpanRecord> snapshot() {
    const std::size_t n = count.load(std::memory_order_acquire);
    // Snapshot the Chunk addresses, not addresses of the vector's elements:
    // the owner's push_back may reallocate `chunks` the moment the mutex is
    // released, but the Chunk objects themselves stay put until clear().
    std::vector<Chunk*> chunk_ptrs;
    {
      util::LockGuard<util::Mutex> lock(chunks_mutex);
      chunk_ptrs.reserve(chunks.size());
      for (auto& c : chunks) chunk_ptrs.push_back(c.get());
    }
    std::vector<SpanRecord> records;
    records.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      records.push_back(chunk_ptrs[i / kChunkSize]->records[i % kChunkSize]);
    }
    return records;
  }
};

struct ThreadState {
  ThreadBuffer* buffer = nullptr;  ///< owned by the tracer's registry
  std::int32_t rank = -1;
  const double* sim_time_s = nullptr;
  std::int64_t iteration = -1;
};

thread_local ThreadState t_state;

/// Registry of every thread buffer ever created. Buffers are never
/// destroyed (threads may die while their spans are still unexported), so
/// cached thread_local pointers and exporter snapshots stay valid for the
/// process lifetime.
struct BufferRegistry {
  util::Mutex mutex;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers FFTGRAD_GUARDED_BY(mutex);

  ThreadBuffer& buffer_for_current_thread() {
    if (t_state.buffer == nullptr) {
      util::LockGuard<util::Mutex> lock(mutex);
      buffers.push_back(std::make_unique<ThreadBuffer>());
      buffers.back()->index = static_cast<std::uint32_t>(buffers.size() - 1);
      t_state.buffer = buffers.back().get();
    }
    return *t_state.buffer;
  }

  std::vector<ThreadBuffer*> all() {
    util::LockGuard<util::Mutex> lock(mutex);
    std::vector<ThreadBuffer*> out;
    for (auto& b : buffers) out.push_back(b.get());
    return out;
  }
};

BufferRegistry& registry() {
  static BufferRegistry* r = new BufferRegistry();  // never destroyed
  return *r;
}

std::chrono::steady_clock::time_point process_epoch() {
  static const std::chrono::steady_clock::time_point epoch = std::chrono::steady_clock::now();
  return epoch;
}

/// Minimal JSON string escaping (span names are static literals, but keep
/// the output valid for any input).
void write_escaped(std::FILE* f, const char* s) {
  for (; *s; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      std::fputc('\\', f);
      std::fputc(c, f);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      std::fprintf(f, "\\u%04x", c);
    } else {
      std::fputc(c, f);
    }
  }
}

// Each simulated run (sim session) exports as its own trace process so
// that consecutive runs, whose clocks all start at zero, do not overlap on
// one another's rank tracks. Wall-clock spans share one process.
constexpr int kWallPid = 1;
constexpr int kSimPidBase = 100;

void write_event(std::FILE* f, bool& first, const SpanRecord& r, int pid, std::int64_t tid,
                 double ts_us, double dur_us) {
  if (!first) std::fputs(",\n", f);
  first = false;
  std::fputs("{\"name\":\"", f);
  write_escaped(f, r.name);
  std::fputs("\",\"cat\":\"", f);
  write_escaped(f, r.category != nullptr ? r.category : "span");
  // %.6f microseconds = picosecond resolution: a re-imported trace must
  // reconstruct span boundaries well inside the critical-path validator's
  // 1e-9 s tiling tolerance (nanosecond %.3f quantization sat exactly on it).
  std::fprintf(f, "\",\"ph\":\"X\",\"pid\":%d,\"tid\":%lld,\"ts\":%.6f,\"dur\":%.6f", pid,
               static_cast<long long>(tid), ts_us, dur_us);
  if (r.iteration >= 0 || r.op >= 0 || r.peer >= 0) {
    std::fputs(",\"args\":{", f);
    bool arg_first = true;
    const auto arg = [&](const char* key, long long value) {
      std::fprintf(f, "%s\"%s\":%lld", arg_first ? "" : ",", key, value);
      arg_first = false;
    };
    if (r.iteration >= 0) arg("iteration", static_cast<long long>(r.iteration));
    if (r.op >= 0) arg("op", static_cast<long long>(r.op));
    if (r.peer >= 0) arg("peer", static_cast<long long>(r.peer));
    std::fputc('}', f);
  }
  std::fputc('}', f);
}

void write_metadata(std::FILE* f, bool& first, const char* kind, int pid, std::int64_t tid,
                    bool has_tid, const std::string& label) {
  if (!first) std::fputs(",\n", f);
  first = false;
  std::fprintf(f, "{\"name\":\"%s\",\"ph\":\"M\",\"pid\":%d", kind, pid);
  if (has_tid) std::fprintf(f, ",\"tid\":%lld", static_cast<long long>(tid));
  std::fputs(",\"args\":{\"name\":\"", f);
  write_escaped(f, label.c_str());
  std::fputs("\"}}", f);
}

}  // namespace

Tracer::Tracer() { (void)process_epoch(); }

void Tracer::set_enabled(bool enabled) {
  enabled_.store(enabled, std::memory_order_relaxed);
  if (enabled) {
    detail::g_span_hooks.fetch_or(detail::kSpanHookTrace, std::memory_order_relaxed);
  } else {
    detail::g_span_hooks.fetch_and(~detail::kSpanHookTrace, std::memory_order_relaxed);
  }
}

Tracer& Tracer::global() {
  static Tracer* tracer = new Tracer();  // never destroyed: threads may record at exit
  return *tracer;
}

std::uint64_t Tracer::wall_now_ns() const {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now() - process_epoch())
                                        .count());
}

void Tracer::record(const SpanRecord& record) {
  ThreadBuffer& buffer = registry().buffer_for_current_thread();
  SpanRecord r = record;
  r.thread = buffer.index;
  if (r.iteration < 0) r.iteration = t_state.iteration;
  buffer.push(r);
}

void Tracer::record_sim_span(std::int32_t rank, const char* name, const char* category,
                             double sim_start_s, double sim_end_s, std::int64_t op,
                             std::int32_t peer) {
  if (!enabled()) return;
  SpanRecord r;
  r.name = name;
  r.category = category;
  r.rank = rank;
  r.sim_start_s = sim_start_s;
  r.sim_end_s = sim_end_s;
  r.sim_session = current_sim_session();
  r.op = op;
  r.peer = peer;
  record(r);
}

std::vector<SpanRecord> Tracer::snapshot() const {
  std::vector<SpanRecord> records;
  for (ThreadBuffer* buffer : registry().all()) {
    const std::vector<SpanRecord> spans = buffer->snapshot();
    records.insert(records.end(), spans.begin(), spans.end());
  }
  return records;
}

void Tracer::clear() {
  for (ThreadBuffer* buffer : registry().all()) {
    util::LockGuard<util::Mutex> lock(buffer->chunks_mutex);
    buffer->count.store(0, std::memory_order_release);
    buffer->chunks.clear();
  }
}

Tracer::Stats Tracer::stats() const {
  Stats stats;
  for (ThreadBuffer* buffer : registry().all()) {
    ++stats.threads;
    stats.spans += buffer->count.load(std::memory_order_acquire);
  }
  return stats;
}

bool Tracer::export_chrome_json(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    util::log_warn() << "telemetry: cannot write trace to '" << path << "'; trace dropped";
    return false;
  }

  const std::vector<SpanRecord> records = snapshot();

  std::fputs("{\"traceEvents\":[\n", f);
  bool first = true;
  write_metadata(f, first, "process_name", kWallPid, 0, false, "wall clock (per thread)");

  // One process per simulated run; within it, one track (tid) per rank.
  // Wall tracks are named after the rank the thread served (the first one
  // it recorded), so wall tracks stay rank-stable across runs even though
  // thread registration order depends on scheduling.
  std::map<std::uint32_t, std::int32_t> session_max_rank;
  std::map<std::uint32_t, std::int32_t> thread_rank;
  std::uint32_t max_thread = 0;
  bool any_wall = false;
  for (const SpanRecord& r : records) {
    if (r.rank >= 0 && r.sim_start_s >= 0.0) {
      auto [it, inserted] = session_max_rank.emplace(r.sim_session, r.rank);
      if (!inserted && r.rank > it->second) it->second = r.rank;
    }
    if (r.rank >= 0) thread_rank.emplace(r.thread, r.rank);
    if (r.thread > max_thread) max_thread = r.thread;
    if (r.wall_end_ns != 0) any_wall = true;
  }
  for (const auto& [session, max_rank] : session_max_rank) {
    const int pid = kSimPidBase + static_cast<int>(session);
    write_metadata(f, first, "process_name", pid, 0, false,
                   "simulated run " + std::to_string(session) + " (per rank)");
    for (std::int32_t rank = 0; rank <= max_rank; ++rank) {
      write_metadata(f, first, "thread_name", pid, rank, true, "rank " + std::to_string(rank));
    }
  }
  if (any_wall) {
    for (std::uint32_t t = 0; t <= max_thread; ++t) {
      const auto it = thread_rank.find(t);
      const std::string label =
          it != thread_rank.end()
              ? "rank " + std::to_string(it->second) + " (thread " + std::to_string(t) + ")"
              : "thread " + std::to_string(t);
      write_metadata(f, first, "thread_name", kWallPid, t, true, label);
    }
  }

  for (const SpanRecord& r : records) {
    if (r.name == nullptr) continue;
    // Simulated timeline: one track per logical rank, timestamps from the
    // rank's SimClock (seconds -> microseconds).
    if (r.rank >= 0 && r.sim_start_s >= 0.0 && r.sim_end_s >= r.sim_start_s) {
      write_event(f, first, r, kSimPidBase + static_cast<int>(r.sim_session), r.rank,
                  r.sim_start_s * 1e6, (r.sim_end_s - r.sim_start_s) * 1e6);
    }
    // Wall timeline: one track per OS thread.
    if (r.wall_end_ns != 0 && r.wall_end_ns >= r.wall_start_ns) {
      write_event(f, first, r, kWallPid, r.thread,
                  static_cast<double>(r.wall_start_ns) * 1e-3,
                  static_cast<double>(r.wall_end_ns - r.wall_start_ns) * 1e-3);
    }
  }
  std::fputs("\n]}\n", f);
  const bool ok = std::fclose(f) == 0;
  if (!ok) util::log_warn() << "telemetry: error closing trace file '" << path << "'";
  return ok;
}

TraceSpan::TraceSpan(const char* name, const char* category)
    : name_(name), category_(category) {
  // One relaxed load covers every span consumer; both hooks off (the
  // default) returns here with no clock read and no allocation.
  const std::uint32_t hooks = detail::g_span_hooks.load(std::memory_order_relaxed);
  if (hooks == 0) return;
  if ((hooks & detail::kSpanHookProfile) != 0) {
    prof::push_span(name, category);
    pushed_ = true;
  }
  armed_ = (hooks & detail::kSpanHookTrace) != 0;
  if (!armed_) return;
  wall_start_ns_ = Tracer::global().wall_now_ns();
  if (t_state.sim_time_s != nullptr) sim_start_s_ = *t_state.sim_time_s;
}

TraceSpan::~TraceSpan() {
  if (pushed_) prof::pop_span();
  if (!armed_) return;
  Tracer& tracer = Tracer::global();
  SpanRecord r;
  r.name = name_;
  r.category = category_;
  r.wall_start_ns = wall_start_ns_;
  r.wall_end_ns = tracer.wall_now_ns();
  if (r.wall_end_ns == 0) r.wall_end_ns = 1;  // 0 is the "no wall span" sentinel
  r.rank = t_state.rank;
  r.sim_start_s = sim_start_s_;
  r.sim_end_s = t_state.sim_time_s != nullptr ? *t_state.sim_time_s : -1.0;
  r.sim_session = tracer.current_sim_session();
  tracer.record(r);
}

ScopedIteration::ScopedIteration(std::int64_t iteration)
    : previous_iteration_(t_state.iteration) {
  t_state.iteration = iteration;
}

ScopedIteration::~ScopedIteration() { t_state.iteration = previous_iteration_; }

ScopedRank::ScopedRank(std::int32_t rank, const double* sim_time_s)
    : previous_rank_(t_state.rank), previous_sim_time_(t_state.sim_time_s) {
  t_state.rank = rank;
  t_state.sim_time_s = sim_time_s;
  // Mirror unconditionally for the profiler: two thread-local stores,
  // cheaper than a branch on the hook mask, and it keeps rank attribution
  // correct for samples taken before/after the profile hook toggles.
  prof::set_rank(rank);
}

ScopedRank::~ScopedRank() {
  t_state.rank = previous_rank_;
  t_state.sim_time_s = previous_sim_time_;
  prof::set_rank(previous_rank_);
}

}  // namespace fftgrad::telemetry
