// The async-signal-safe half of the host-time sampling profiler.
//
// Everything in this TU may run inside the SIGPROF handler, which can
// interrupt *any* code on the signaled thread — including the allocator,
// stdio, or a lock acquisition already in progress. The discipline here is
// therefore absolute and machine-checked (fftgrad_lint rule
// `async-signal-unsafe-call` is scoped to exactly this file and its shared
// header): no allocation, no stdio, no locks, no logging, no exceptions.
// Only plain loads/stores on the thread's own state, lock-free atomics,
// errno save/restore, and backtrace() — which Profiler::start() primes
// once outside signal context, because its first call may load libgcc.
//
// Visibility model: the span stack and rank are written by the owning
// thread and read by the handler *on that same thread*, so compiler-only
// std::atomic_signal_fence ordering suffices; no cross-thread atomics are
// needed for them. The ring's head/tail use real acquire/release because
// the consumer (the collector) is another thread.
#include "profiler_internal.h"

#include <cerrno>

#if defined(__linux__)
#include <execinfo.h>
#include <ucontext.h>
#endif

namespace fftgrad::telemetry::prof {
namespace {

// Constant-initialized POD: access compiles to a TLS-relative load with no
// guard call, which keeps it safe to touch from the handler.
thread_local ThreadProfState t_prof;

/// Program counter of the interrupted instruction, from the kernel's
/// saved register context. This is the true leaf — backtrace() from inside
/// the handler starts at the handler's own frames.
void* leaf_pc(void* context_raw) {
#if defined(__linux__) && defined(__x86_64__)
  ucontext_t* uc = static_cast<ucontext_t*>(context_raw);
  return reinterpret_cast<void*>(uc->uc_mcontext.gregs[REG_RIP]);
#elif defined(__linux__) && defined(__aarch64__)
  ucontext_t* uc = static_cast<ucontext_t*>(context_raw);
  return reinterpret_cast<void*>(uc->uc_mcontext.pc);
#else
  (void)context_raw;
  return nullptr;
#endif
}

}  // namespace

std::atomic<std::uint64_t> g_samples_taken{0};
std::atomic<std::uint64_t> g_stacks_truncated{0};

ThreadProfState& thread_state() { return t_prof; }

void push_span(const char* name, const char* category) {
  ThreadProfState& st = t_prof;
  const std::uint32_t depth = st.depth;
  if (depth < kMaxSpanDepth) {
    st.span_names[depth] = name;
    st.span_categories[depth] = category;
  }
  // The slot must be fully written before the handler can consider the
  // level live; the fence stops the compiler reordering the depth store.
  std::atomic_signal_fence(std::memory_order_release);
  st.depth = depth + 1;
}

void pop_span() {
  ThreadProfState& st = t_prof;
  if (st.depth == 0) return;  // unbalanced pop: hooks toggled mid-span
  st.depth = st.depth - 1;
  std::atomic_signal_fence(std::memory_order_release);
}

void set_rank(std::int32_t rank) { t_prof.rank = rank; }

void sigprof_handler(int /*signum*/, siginfo_t* /*info*/, void* context) {
  const int saved_errno = errno;
  ThreadProfState& st = t_prof;
  SampleRing* const ring = st.ring.load(std::memory_order_relaxed);
  if (ring != nullptr) {
    const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
    const std::uint64_t tail = ring->tail.load(std::memory_order_acquire);
    if (head - tail >= kRingCapacity) {
      ring->dropped.fetch_add(1, std::memory_order_relaxed);
    } else {
      Sample& s = ring->slots[head % kRingCapacity];
      // Pair of the release fence in push_span/pop_span: re-read depth
      // after the fence so the slot contents it gates are visible.
      std::atomic_signal_fence(std::memory_order_acquire);
      const std::uint32_t depth = st.depth < kMaxSpanDepth ? st.depth : kMaxSpanDepth;
      if (depth > 0) {
        s.span_name = st.span_names[depth - 1];
        s.span_category = st.span_categories[depth - 1];
      } else {
        s.span_name = nullptr;
        s.span_category = nullptr;
      }
      s.rank = st.rank;
      std::uint32_t frames = 0;
#if defined(__linux__)
      void* const leaf = leaf_pc(context);
      if (leaf != nullptr) s.pcs[frames++] = leaf;
      void* raw[kMaxFrames + kHandlerFrames];
      const int captured = backtrace(raw, static_cast<int>(kMaxFrames + kHandlerFrames));
      for (int i = static_cast<int>(kHandlerFrames);
           i < captured && frames < kMaxFrames; ++i) {
        // backtrace's first post-trampoline entry is often the leaf again
        // (the signal frame's return address); keep one copy.
        if (frames == 1 && raw[i] == leaf) continue;
        s.pcs[frames++] = raw[i];
      }
      if (captured >= static_cast<int>(kMaxFrames + kHandlerFrames)) {
        g_stacks_truncated.fetch_add(1, std::memory_order_relaxed);
      }
#else
      (void)context;
#endif
      s.frames = frames;
      ring->head.store(head + 1, std::memory_order_release);
      g_samples_taken.fetch_add(1, std::memory_order_relaxed);
    }
  }
  errno = saved_errno;
}

}  // namespace fftgrad::telemetry::prof
