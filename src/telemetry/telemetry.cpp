#include "fftgrad/telemetry/telemetry.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>

#include "fftgrad/telemetry/critical_path.h"
#include "fftgrad/telemetry/ledger.h"
#include "fftgrad/telemetry/profiler.h"
#include "fftgrad/util/logging.h"

namespace fftgrad::telemetry {
namespace {

std::string& trace_path() {
  static std::string path;
  return path;
}

std::string& metrics_path() {
  static std::string path;
  return path;
}

std::string& critpath_path() {
  static std::string path;
  return path;
}

std::string& profile_out_path() {
  static std::string path;
  return path;
}

/// FFTGRAD_PROFILE: stop the sampler, write the folded stacks to
/// FFTGRAD_PROFILE_OUT and the hot-path report next to it, and publish the
/// profile.* gauges. Must run before export_configured() (so the gauges
/// land in the metrics JSON) and before the ledger closes.
void finalize_profiler_configured() {
  if (profile_out_path().empty()) return;
  Profiler& profiler = Profiler::global();
  profiler.stop();
  const std::string& out = profile_out_path();
  profiler.write_folded(out);
  const std::string report = profiler.render_report();
  const std::string report_path = out + ".report.txt";
  std::FILE* f = std::fopen(report_path.c_str(), "w");
  if (f != nullptr) {
    std::fwrite(report.data(), 1, report.size(), f);
    std::fclose(f);
  } else {
    util::log_warn() << "telemetry: cannot write hot-path report to '" << report_path << "'";
  }
  util::log_info() << "telemetry: profile to " << out << " (report: " << report_path << ")";
}

/// FFTGRAD_CRITPATH=<path>: at exit, run the critical-path analyzer over
/// the newest simulated session, write the report to <path> (Markdown when
/// it ends in .md), publish the critpath.* gauges, and append the ledger's
/// critpath row. Runs before the metrics export and the ledger close so
/// both outputs carry the analysis.
void analyze_critpath_configured() {
  if (critpath_path().empty()) return;
  const std::vector<SpanRecord> records = Tracer::global().snapshot();
  const std::vector<CpEvent> events =
      cp_events_from_records(records, latest_sim_session(records));
  const CpAnalysis analysis = analyze_critical_path(events);
  publish_critpath_metrics(analysis);
  if (RunLedger::global().enabled()) {
    RunLedger::global().record_critpath(ledger_critpath_from(analysis));
  }
  const std::string& path = critpath_path();
  const bool markdown = path.size() >= 3 && path.compare(path.size() - 3, 3, ".md") == 0;
  const std::string report = render_critpath_report(analysis, markdown);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    util::log_warn() << "telemetry: cannot write critical-path report to '" << path << "'";
    return;
  }
  std::fwrite(report.data(), 1, report.size(), f);
  std::fclose(f);
}

double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value || *end != '\0') {
    util::log_warn() << "telemetry: ignoring malformed " << name << "='" << value << "'";
    return fallback;
  }
  return parsed;
}

}  // namespace

void export_configured() {
  if (!trace_path().empty()) Tracer::global().export_chrome_json(trace_path());
  if (!metrics_path().empty()) MetricsRegistry::global().export_json(metrics_path());
}

void init_from_env() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* trace = std::getenv("FFTGRAD_TRACE");
    const char* metrics = std::getenv("FFTGRAD_METRICS");
    const char* ledger = std::getenv("FFTGRAD_LEDGER");
    const char* critpath = std::getenv("FFTGRAD_CRITPATH");
    const char* profile = std::getenv("FFTGRAD_PROFILE");
    const bool profile_on =
        profile != nullptr && *profile != '\0' && std::string(profile) != "0";
    if (trace == nullptr && metrics == nullptr && ledger == nullptr && critpath == nullptr &&
        !profile_on) {
      return;
    }
    if (trace != nullptr && *trace != '\0') {
      trace_path() = trace;
      Tracer::global().set_enabled(true);
      util::log_info() << "telemetry: tracing to " << trace_path();
    }
    if (critpath != nullptr && *critpath != '\0') {
      // The analyzer consumes tracer records, so tracing must collect even
      // when no trace file was requested.
      critpath_path() = critpath;
      Tracer::global().set_enabled(true);
      MetricsRegistry::global().set_enabled(true);
      util::log_info() << "telemetry: critical-path report to " << critpath_path();
    }
    if (trace != nullptr || metrics != nullptr) {
      MetricsRegistry::global().set_enabled(true);
      if (metrics != nullptr && *metrics != '\0') {
        metrics_path() = metrics;
      } else if (!trace_path().empty()) {
        metrics_path() = trace_path() + ".metrics.json";
      }
      if (!metrics_path().empty()) {
        util::log_info() << "telemetry: metrics to " << metrics_path();
      }
    }
    if (profile_on) {
      // FFTGRAD_PROFILE=1 uses the FFTGRAD_PROFILE_OUT path (default
      // profile.folded); any other non-zero value doubles as the path.
      const char* out = std::getenv("FFTGRAD_PROFILE_OUT");
      if (out != nullptr && *out != '\0') {
        profile_out_path() = out;
      } else if (std::string(profile) != "1") {
        profile_out_path() = profile;
      } else {
        profile_out_path() = "profile.folded";
      }
      MetricsRegistry::global().set_enabled(true);
      const int hz = static_cast<int>(env_double(
          "FFTGRAD_PROFILE_HZ", static_cast<double>(Profiler::kDefaultHz)));
      if (!Profiler::global().start(hz)) profile_out_path().clear();
    }
    if (ledger != nullptr && *ledger != '\0') {
      RunLedger& run_ledger = RunLedger::global();
      LedgerTolerances tolerances;
      tolerances.alpha_bound =
          env_double("FFTGRAD_LEDGER_ALPHA_BOUND", tolerances.alpha_bound);
      tolerances.min_ratio = env_double("FFTGRAD_LEDGER_MIN_RATIO", tolerances.min_ratio);
      tolerances.drift_rel_tol =
          env_double("FFTGRAD_LEDGER_DRIFT_TOL", tolerances.drift_rel_tol);
      tolerances.drift_window = static_cast<std::size_t>(env_double(
          "FFTGRAD_LEDGER_DRIFT_WINDOW", static_cast<double>(tolerances.drift_window)));
      tolerances.residual_growth_factor =
          env_double("FFTGRAD_LEDGER_RESIDUAL_FACTOR", tolerances.residual_growth_factor);
      run_ledger.set_tolerances(tolerances);
      if (run_ledger.open(ledger)) {
        util::log_info() << "telemetry: run ledger to " << ledger;
      }
    }
    std::atexit([] {
      finalize_profiler_configured();
      analyze_critpath_configured();
      export_configured();
      RunLedger::global().close();
    });
  });
}

}  // namespace fftgrad::telemetry
