#include "fftgrad/telemetry/telemetry.h"

#include <cstdlib>
#include <mutex>
#include <string>

#include "fftgrad/util/logging.h"

namespace fftgrad::telemetry {
namespace {

std::string& trace_path() {
  static std::string path;
  return path;
}

std::string& metrics_path() {
  static std::string path;
  return path;
}

}  // namespace

void export_configured() {
  if (!trace_path().empty()) Tracer::global().export_chrome_json(trace_path());
  if (!metrics_path().empty()) MetricsRegistry::global().export_json(metrics_path());
}

void init_from_env() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* trace = std::getenv("FFTGRAD_TRACE");
    const char* metrics = std::getenv("FFTGRAD_METRICS");
    if (trace == nullptr && metrics == nullptr) return;
    if (trace != nullptr && *trace != '\0') {
      trace_path() = trace;
      Tracer::global().set_enabled(true);
      util::log_info() << "telemetry: tracing to " << trace_path();
    }
    MetricsRegistry::global().set_enabled(true);
    if (metrics != nullptr && *metrics != '\0') {
      metrics_path() = metrics;
    } else if (!trace_path().empty()) {
      metrics_path() = trace_path() + ".metrics.json";
    }
    if (!metrics_path().empty()) {
      util::log_info() << "telemetry: metrics to " << metrics_path();
    }
    std::atexit([] { export_configured(); });
  });
}

}  // namespace fftgrad::telemetry
