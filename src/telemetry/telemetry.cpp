#include "fftgrad/telemetry/telemetry.h"

#include <cstdlib>
#include <mutex>
#include <string>

#include "fftgrad/telemetry/ledger.h"
#include "fftgrad/util/logging.h"

namespace fftgrad::telemetry {
namespace {

std::string& trace_path() {
  static std::string path;
  return path;
}

std::string& metrics_path() {
  static std::string path;
  return path;
}

double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value || *end != '\0') {
    util::log_warn() << "telemetry: ignoring malformed " << name << "='" << value << "'";
    return fallback;
  }
  return parsed;
}

}  // namespace

void export_configured() {
  if (!trace_path().empty()) Tracer::global().export_chrome_json(trace_path());
  if (!metrics_path().empty()) MetricsRegistry::global().export_json(metrics_path());
}

void init_from_env() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* trace = std::getenv("FFTGRAD_TRACE");
    const char* metrics = std::getenv("FFTGRAD_METRICS");
    const char* ledger = std::getenv("FFTGRAD_LEDGER");
    if (trace == nullptr && metrics == nullptr && ledger == nullptr) return;
    if (trace != nullptr && *trace != '\0') {
      trace_path() = trace;
      Tracer::global().set_enabled(true);
      util::log_info() << "telemetry: tracing to " << trace_path();
    }
    if (trace != nullptr || metrics != nullptr) {
      MetricsRegistry::global().set_enabled(true);
      if (metrics != nullptr && *metrics != '\0') {
        metrics_path() = metrics;
      } else if (!trace_path().empty()) {
        metrics_path() = trace_path() + ".metrics.json";
      }
      if (!metrics_path().empty()) {
        util::log_info() << "telemetry: metrics to " << metrics_path();
      }
    }
    if (ledger != nullptr && *ledger != '\0') {
      RunLedger& run_ledger = RunLedger::global();
      LedgerTolerances tolerances;
      tolerances.alpha_bound =
          env_double("FFTGRAD_LEDGER_ALPHA_BOUND", tolerances.alpha_bound);
      tolerances.min_ratio = env_double("FFTGRAD_LEDGER_MIN_RATIO", tolerances.min_ratio);
      tolerances.drift_rel_tol =
          env_double("FFTGRAD_LEDGER_DRIFT_TOL", tolerances.drift_rel_tol);
      tolerances.drift_window = static_cast<std::size_t>(env_double(
          "FFTGRAD_LEDGER_DRIFT_WINDOW", static_cast<double>(tolerances.drift_window)));
      tolerances.residual_growth_factor =
          env_double("FFTGRAD_LEDGER_RESIDUAL_FACTOR", tolerances.residual_growth_factor);
      run_ledger.set_tolerances(tolerances);
      if (run_ledger.open(ledger)) {
        util::log_info() << "telemetry: run ledger to " << ledger;
      }
    }
    std::atexit([] {
      export_configured();
      RunLedger::global().close();
    });
  });
}

}  // namespace fftgrad::telemetry
