#include "fftgrad/telemetry/critical_path.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "fftgrad/telemetry/metrics.h"

namespace fftgrad::telemetry {

using util::SimSeconds;

namespace {

/// Tolerance for "these simulated timestamps are the same instant". The
/// simulation works in seconds with microsecond-scale costs, so 1e-9 is
/// far below any modelled duration while absorbing fp addition noise.
constexpr SimSeconds kEps{1e-9};
constexpr SimSeconds kZeroS{0.0};

/// Keep in sync with the exporter's sim-process base pid in trace.cpp:
/// simulated session s exports as Chrome pid kSimPidBase + s.
constexpr int kSimPidBase = 100;

bool is_compute(CpCategory c) {
  return c == CpCategory::kBackprop || c == CpCategory::kFft ||
         c == CpCategory::kQuantPack || c == CpCategory::kWireCrc;
}

bool is_comm(CpCategory c) {
  return c == CpCategory::kCollective || c == CpCategory::kRetry;
}

}  // namespace

const char* cp_category_name(CpCategory category) {
  switch (category) {
    case CpCategory::kBackprop: return "backprop";
    case CpCategory::kFft: return "fft";
    case CpCategory::kQuantPack: return "quant_pack";
    case CpCategory::kWireCrc: return "wire_crc";
    case CpCategory::kCollective: return "collective";
    case CpCategory::kRetry: return "retry";
    case CpCategory::kStraggle: return "straggle";
    case CpCategory::kStragglerWait: return "straggler_wait";
    case CpCategory::kBarrierIdle: return "barrier_idle";
    case CpCategory::kUntracked: return "untracked";
    case CpCategory::kCount: break;
  }
  return "unknown";
}

CpCategory cp_category_for_span(const std::string& name) {
  if (name == "forward" || name == "backward" || name == "apply") return CpCategory::kBackprop;
  if (name == "fft" || name == "inverse_fft") return CpCategory::kFft;
  if (name == "quant_pack" || name == "dequant") return CpCategory::kQuantPack;
  if (name == "wire_crc") return CpCategory::kWireCrc;
  if (name == "collective") return CpCategory::kCollective;
  if (name == "retry") return CpCategory::kRetry;
  if (name == "straggle") return CpCategory::kStraggle;
  if (name == "straggler_wait") return CpCategory::kStragglerWait;
  if (name == "barrier" || name == "abandoned") return CpCategory::kBarrierIdle;
  return CpCategory::kUntracked;
}

std::uint32_t latest_sim_session(const std::vector<SpanRecord>& records) {
  std::uint32_t latest = 0;
  for (const SpanRecord& r : records) {
    if (r.rank >= 0 && r.sim_start_s >= 0.0) latest = std::max(latest, r.sim_session);
  }
  return latest;
}

std::vector<CpEvent> cp_events_from_records(const std::vector<SpanRecord>& records,
                                            std::uint32_t sim_session) {
  std::vector<CpEvent> events;
  for (const SpanRecord& r : records) {
    if (r.name == nullptr || r.category == nullptr) continue;
    if (r.sim_session != sim_session) continue;
    if (r.rank < 0 || r.sim_start_s < 0.0 || r.sim_end_s < r.sim_start_s) continue;
    const bool edge = std::string_view(r.category) == "cp-edge";
    if (!edge && std::string_view(r.category) != "cp") continue;
    CpEvent e;
    e.rank = r.rank;
    e.name = r.name;
    e.start_s = SimSeconds(r.sim_start_s);
    e.end_s = SimSeconds(r.sim_end_s);
    e.iteration = r.iteration;
    e.op = r.op;
    e.peer = r.peer;
    e.edge = edge;
    events.push_back(std::move(e));
  }
  return events;
}

std::vector<CpEvent> cp_events_from_chrome_json(const std::string& path, std::int64_t session) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open trace file '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  const JsonValue doc = parse_json(text);
  const JsonValue* events_json = doc.find("traceEvents");
  if (events_json == nullptr || events_json->kind != JsonValue::Kind::kArray) {
    throw std::runtime_error("'" + path + "' has no traceEvents array");
  }

  // Pick the session: either the requested one, or the newest simulated
  // process present among cp events.
  int want_pid = session >= 0 ? kSimPidBase + static_cast<int>(session) : -1;
  if (want_pid < 0) {
    for (const JsonValue& ev : events_json->array) {
      const std::string cat = ev.string_or("cat", "");
      if (cat != "cp" && cat != "cp-edge") continue;
      const int pid = static_cast<int>(ev.number_or("pid", -1.0));
      if (pid >= kSimPidBase) want_pid = std::max(want_pid, pid);
    }
  }

  std::vector<CpEvent> events;
  for (const JsonValue& ev : events_json->array) {
    if (ev.string_or("ph", "") != "X") continue;
    const std::string cat = ev.string_or("cat", "");
    const bool edge = cat == "cp-edge";
    if (!edge && cat != "cp") continue;
    if (static_cast<int>(ev.number_or("pid", -1.0)) != want_pid) continue;
    CpEvent e;
    e.rank = static_cast<std::int32_t>(ev.number_or("tid", -1.0));
    e.name = ev.string_or("name", "");
    e.start_s = SimSeconds(ev.number_or("ts", 0.0) * 1e-6);
    e.end_s = e.start_s + SimSeconds(ev.number_or("dur", 0.0) * 1e-6);
    e.edge = edge;
    if (const JsonValue* args = ev.find("args"); args != nullptr) {
      e.iteration = static_cast<std::int64_t>(args->number_or("iteration", -1.0));
      e.op = static_cast<std::int64_t>(args->number_or("op", -1.0));
      e.peer = static_cast<std::int32_t>(args->number_or("peer", -1.0));
    }
    events.push_back(std::move(e));
  }
  return events;
}

SimSeconds CpIteration::category_sum_s() const {
  SimSeconds sum{};
  for (SimSeconds v : category_s) sum += v;
  return sum;
}

SimSeconds CpIteration::compute_s() const {
  SimSeconds sum{};
  for (std::size_t i = 0; i < kCpCategoryCount; ++i) {
    if (is_compute(static_cast<CpCategory>(i))) sum += category_s[i];
  }
  return sum;
}

SimSeconds CpIteration::comm_s() const {
  SimSeconds sum{};
  for (std::size_t i = 0; i < kCpCategoryCount; ++i) {
    if (is_comm(static_cast<CpCategory>(i))) sum += category_s[i];
  }
  return sum;
}

double CpIteration::comm_share() const {
  const SimSeconds e2e = e2e_s();
  return e2e > kZeroS ? comm_s() / e2e : 0.0;
}

SimSeconds CpAnalysis::compute_s() const {
  SimSeconds sum{};
  for (std::size_t i = 0; i < kCpCategoryCount; ++i) {
    if (is_compute(static_cast<CpCategory>(i))) sum += total_s[i];
  }
  return sum;
}

SimSeconds CpAnalysis::comm_s() const {
  SimSeconds sum{};
  for (std::size_t i = 0; i < kCpCategoryCount; ++i) {
    if (is_comm(static_cast<CpCategory>(i))) sum += total_s[i];
  }
  return sum;
}

double CpAnalysis::comm_share() const {
  SimSeconds e2e{};
  for (const CpIteration& it : iterations) e2e += it.e2e_s();
  SimSeconds comm{};
  for (const CpIteration& it : iterations) comm += it.comm_s();
  return e2e > kZeroS ? comm / e2e : 0.0;
}

namespace {

struct BarrierRound {
  SimSeconds release_s{-1.0};         ///< common aligned clock after the round
  SimSeconds max_live_entry_s{-1.0};  ///< latest live arrival
  std::int32_t bounding_rank = -1;
  bool has_abandoned = false;
  std::int32_t abandoned_rank = -1;
  SimSeconds abandoned_entry_s{-1.0};  ///< the straggler's pre-snap clock
  std::int64_t iteration = -1;
};

/// Overlap bounds from one iteration's path segments. Compute and comm
/// segment lists are taken in path (time) order; comm chunk j may start
/// once compute segment j (1-based) is done — the FIFO two-machine flow
/// shop a layer-wise DGC-style schedule would realize.
void compute_bounds(CpIteration& iteration) {
  std::vector<SimSeconds> compute;
  std::vector<SimSeconds> comm;
  for (const CpSegment& seg : iteration.path) {
    const SimSeconds d = seg.end_s - seg.start_s;
    if (d <= kZeroS) continue;
    if (is_compute(seg.category)) compute.push_back(d);
    else if (is_comm(seg.category)) comm.push_back(d);
  }
  const SimSeconds compute_total = iteration.compute_s();
  const SimSeconds comm_total = iteration.comm_s();
  const SimSeconds other = iteration.e2e_s() - compute_total - comm_total;
  iteration.overlap_bound_s = std::min(compute_total, comm_total);

  std::vector<SimSeconds> prefix(compute.size() + 1, kZeroS);
  for (std::size_t i = 0; i < compute.size(); ++i) prefix[i + 1] = prefix[i] + compute[i];
  SimSeconds b{};
  for (std::size_t j = 0; j < comm.size(); ++j) {
    const SimSeconds dep = prefix[std::min(j + 1, compute.size())];
    b = std::max(b, dep) + comm[j];
  }
  const SimSeconds makespan = std::max(compute_total, b);
  SimSeconds bound = iteration.e2e_s() - other - makespan;
  bound = std::max(kZeroS, std::min(bound, iteration.overlap_bound_s));
  iteration.pipeline_bound_s = bound;
}

}  // namespace

CpAnalysis analyze_critical_path(const std::vector<CpEvent>& events) {
  CpAnalysis analysis;

  // Per-rank timelines of leaf spans, sorted by (end, start): walking from
  // the back of the vector visits spans latest-release first.
  std::map<std::int32_t, std::vector<const CpEvent*>> timelines;
  std::map<std::int64_t, BarrierRound> barriers;
  std::int32_t max_rank = -1;
  for (const CpEvent& e : events) {
    if (e.edge) continue;
    max_rank = std::max(max_rank, e.rank);
    if (e.name == "abandoned") {
      // Snapback record of a timed-out straggler: [release, pre-snap
      // entry]. Not part of the rank's forward timeline.
      if (e.op >= 0) {
        BarrierRound& round = barriers[e.op];
        if (!round.has_abandoned || e.end_s > round.abandoned_entry_s ||
            (e.end_s == round.abandoned_entry_s && e.rank < round.abandoned_rank)) {
          round.has_abandoned = true;
          round.abandoned_rank = e.rank;
          round.abandoned_entry_s = e.end_s;
        }
      }
      continue;
    }
    timelines[e.rank].push_back(&e);
    if (e.name == "barrier" && e.op >= 0) {
      BarrierRound& round = barriers[e.op];
      round.release_s = std::max(round.release_s, e.end_s);
      // Exact ties (symmetric lossless ranks) break to the lowest rank:
      // event order in the snapshot follows thread registration, which is
      // schedule-dependent, and the analysis must not be.
      if (e.start_s > round.max_live_entry_s ||
          (e.start_s == round.max_live_entry_s &&
           (round.bounding_rank < 0 || e.rank < round.bounding_rank))) {
        round.max_live_entry_s = e.start_s;
        round.bounding_rank = e.rank;
      }
      if (e.iteration >= 0) round.iteration = e.iteration;
    }
  }
  if (timelines.empty()) return analysis;
  for (auto& [rank, spans] : timelines) {
    std::stable_sort(spans.begin(), spans.end(), [](const CpEvent* a, const CpEvent* b) {
      if (a->end_s != b->end_s) return a->end_s < b->end_s;
      if (a->start_s != b->start_s) return a->start_s < b->start_s;
      // Full tie (e.g. coincident zero-length spans): order by (op, name)
      // so the walk never depends on snapshot order, which follows
      // schedule-dependent thread registration.
      if (a->op != b->op) return a->op < b->op;
      return a->name < b->name;
    });
  }

  // End of the analyzed window: the latest span release; ties (the final
  // barrier aligns every clock) break to the lowest rank for determinism.
  SimSeconds end_s{};
  std::int32_t cur_rank = -1;
  for (const auto& [rank, spans] : timelines) {
    const SimSeconds rank_end = spans.back()->end_s;
    if (rank_end > end_s + kEps) {
      end_s = rank_end;
      cur_rank = rank;
    } else if (cur_rank < 0) {
      end_s = std::max(end_s, rank_end);
      cur_rank = rank;
    }
  }
  analysis.end_s = end_s;

  // Backward walk. `index[rank]` counts the rank's unconsumed span prefix.
  std::map<std::int32_t, std::size_t> index;
  for (const auto& [rank, spans] : timelines) index[rank] = spans.size();

  std::vector<CpSegment> reversed;  // built latest-first
  const auto emit = [&](CpCategory category, std::int32_t rank, SimSeconds start,
                        SimSeconds end, const char* name, std::int64_t iteration,
                        std::int64_t op, std::int32_t peer) {
    if (end - start <= kZeroS) return;
    CpSegment seg;
    seg.category = category;
    seg.rank = rank;
    seg.start_s = start;
    seg.end_s = end;
    seg.name = name;
    seg.iteration = iteration;
    seg.op = op;
    seg.peer = peer;
    reversed.push_back(std::move(seg));
  };

  SimSeconds cursor = end_s;
  std::size_t guard = 0;
  const std::size_t guard_limit = events.size() * 4 + 64;
  while (cursor > kEps) {
    if (++guard > guard_limit) {
      analysis.problems.push_back("critical-path walk did not converge (trace malformed?)");
      break;
    }
    auto tl_it = timelines.find(cur_rank);
    if (tl_it == timelines.end()) {
      analysis.problems.push_back("no spans recorded for rank " + std::to_string(cur_rank));
      emit(CpCategory::kUntracked, cur_rank, kZeroS, cursor, "gap", -1, -1, -1);
      break;
    }
    const std::vector<const CpEvent*>& spans = tl_it->second;
    std::size_t& idx = index[cur_rank];
    while (idx > 0 && spans[idx - 1]->end_s > cursor + kEps) --idx;
    if (idx == 0) {
      // Nothing recorded before the cursor on this rank: the remaining
      // window is untracked (e.g. the run's setup prefix).
      emit(CpCategory::kUntracked, cur_rank, kZeroS, cursor, "gap", -1, -1, -1);
      cursor = kZeroS;
      break;
    }
    const CpEvent& span = *spans[idx - 1];
    if (span.end_s < cursor - kEps) {
      // Gap between recorded spans: attribute it to this rank, untracked.
      emit(CpCategory::kUntracked, cur_rank, span.end_s, cursor, "gap", span.iteration, -1,
           -1);
      cursor = span.end_s;
      continue;
    }

    if (span.name == "barrier" && span.op >= 0) {
      --idx;
      const BarrierRound& round = barriers[span.op];
      if (round.bounding_rank < 0) {
        analysis.problems.push_back("barrier generation " + std::to_string(span.op) +
                                    " has no live arrivals");
        continue;
      }
      if (round.has_abandoned && round.max_live_entry_s < round.release_s - kEps) {
        // Timeout-capped release: between the last live arrival and the
        // release the cluster was waiting out the straggler deadline —
        // charge that wait to the abandoned rank.
        emit(CpCategory::kStragglerWait, round.abandoned_rank, round.max_live_entry_s,
             round.release_s, "straggler_wait", span.iteration, span.op,
             round.abandoned_rank);
      } else if (round.max_live_entry_s < round.release_s - kEps) {
        // Release later than every arrival without a straggler record:
        // structurally odd (e.g. a crash-released round) — keep the
        // timeline contiguous and flag it.
        analysis.problems.push_back("barrier generation " + std::to_string(span.op) +
                                    " released after its last arrival");
        emit(CpCategory::kBarrierIdle, cur_rank, round.max_live_entry_s, round.release_s,
             "barrier", span.iteration, span.op, -1);
      }
      cursor = std::min(cursor, round.max_live_entry_s);
      cur_rank = round.bounding_rank;
      continue;
    }

    --idx;
    const CpCategory category = cp_category_for_span(span.name);
    if (category == CpCategory::kUntracked && span.end_s - span.start_s > kEps) {
      analysis.problems.push_back("unknown cp span '" + span.name + "' on rank " +
                                  std::to_string(span.rank));
    }
    emit(category, cur_rank, std::min(span.start_s, cursor), cursor, span.name.c_str(),
         span.iteration, span.op, span.peer);
    cursor = std::min(span.start_s, cursor);
  }

  // Forward order; untagged segments (barrier waits between phases, gaps)
  // inherit the iteration of the segment that follows them in time.
  std::int64_t current_iteration = -1;
  for (CpSegment& seg : reversed) {
    if (seg.iteration >= 0) current_iteration = seg.iteration;
    else seg.iteration = current_iteration;
  }
  std::reverse(reversed.begin(), reversed.end());

  // Group contiguous runs of equal iteration into CpIteration windows.
  for (CpSegment& seg : reversed) {
    if (analysis.iterations.empty() || analysis.iterations.back().iteration != seg.iteration) {
      CpIteration it;
      it.iteration = seg.iteration;
      it.start_s = seg.start_s;
      it.end_s = seg.end_s;
      analysis.iterations.push_back(std::move(it));
    }
    CpIteration& it = analysis.iterations.back();
    it.end_s = seg.end_s;
    it.category_s[static_cast<std::size_t>(seg.category)] += seg.end_s - seg.start_s;
    it.path.push_back(seg);
  }
  for (CpIteration& it : analysis.iterations) {
    compute_bounds(it);
    for (std::size_t c = 0; c < kCpCategoryCount; ++c) analysis.total_s[c] += it.category_s[c];
    analysis.overlap_bound_s += it.overlap_bound_s;
    analysis.pipeline_bound_s += it.pipeline_bound_s;
  }

  // Per-rank flame summary over every recorded span (not just the path).
  std::map<std::int32_t, CpRankSummary> ranks;
  for (const CpEvent& e : events) {
    if (e.edge || e.name == "abandoned") continue;
    CpRankSummary& summary = ranks[e.rank];
    summary.rank = e.rank;
    summary.busy_s[static_cast<std::size_t>(cp_category_for_span(e.name))] +=
        e.end_s - e.start_s;
  }
  for (auto& [rank, summary] : ranks) {
    SimSeconds covered{};
    for (SimSeconds v : summary.busy_s) covered += v;
    const SimSeconds barrier_idle =
        summary.busy_s[static_cast<std::size_t>(CpCategory::kBarrierIdle)];
    summary.idle_s = barrier_idle + std::max(kZeroS, end_s - covered);
  }
  for (const CpIteration& it : analysis.iterations) {
    for (const CpSegment& seg : it.path) {
      ranks[seg.rank].rank = seg.rank;
      ranks[seg.rank].on_path_s += seg.end_s - seg.start_s;
    }
  }
  for (auto& [rank, summary] : ranks) analysis.ranks.push_back(summary);

  return analysis;
}

namespace {

void append_category_table(std::string& out,
                           const std::array<SimSeconds, kCpCategoryCount>& totals,
                           SimSeconds e2e, bool markdown) {
  if (markdown) {
    out += "| category | seconds | share |\n|---|---:|---:|\n";
  } else {
    out += "  category        seconds      share\n";
  }
  for (std::size_t c = 0; c < kCpCategoryCount; ++c) {
    if (totals[c] <= SimSeconds(0.0)) continue;
    const double share = e2e > SimSeconds(0.0) ? totals[c] / e2e : 0.0;
    char line[160];
    if (markdown) {
      std::snprintf(line, sizeof(line), "| %s | %.6f | %.1f%% |\n",
                    cp_category_name(static_cast<CpCategory>(c)), totals[c].to_double(),
                    share * 100.0);
    } else {
      std::snprintf(line, sizeof(line), "  %-14s %10.6f   %6.1f%%\n",
                    cp_category_name(static_cast<CpCategory>(c)), totals[c].to_double(),
                    share * 100.0);
    }
    out += line;
  }
}

}  // namespace

std::string render_critpath_report(const CpAnalysis& analysis, bool markdown) {
  std::string out;
  SimSeconds e2e{};
  for (const CpIteration& it : analysis.iterations) e2e += it.e2e_s();

  out += markdown ? "# Critical path\n\n" : "critical path\n=============\n";
  char line[256];
  std::snprintf(line, sizeof(line),
                "%send-to-end %.6f s over %zu window(s); compute %.6f s, comm %.6f s "
                "(comm share %.1f%%)\n",
                markdown ? "\n" : "", e2e.to_double(), analysis.iterations.size(),
                analysis.compute_s().to_double(), analysis.comm_s().to_double(),
                analysis.comm_share() * 100.0);
  out += line;
  std::snprintf(line, sizeof(line),
                "overlap upper bound %.6f s (perfect chunking); pipeline bound %.6f s "
                "(layer-wise FIFO)\n\n",
                analysis.overlap_bound_s.to_double(), analysis.pipeline_bound_s.to_double());
  out += line;

  out += markdown ? "## Totals\n\n" : "totals\n";
  append_category_table(out, analysis.total_s, e2e, markdown);

  out += markdown ? "\n## Iterations\n\n" : "\niterations\n";
  if (markdown) {
    out += "| iter | e2e s | compute s | comm s | comm share | overlap bound s | pipeline "
           "bound s |\n|---:|---:|---:|---:|---:|---:|---:|\n";
  } else {
    out += "  iter      e2e s  compute s     comm s   share  overlap s  pipeline s\n";
  }
  for (const CpIteration& it : analysis.iterations) {
    const char* fmt = markdown ? "| %lld | %.6f | %.6f | %.6f | %.1f%% | %.6f | %.6f |\n"
                               : "  %4lld %10.6f %10.6f %10.6f  %5.1f%% %10.6f  %10.6f\n";
    std::snprintf(line, sizeof(line), fmt, static_cast<long long>(it.iteration),
                  it.e2e_s().to_double(), it.compute_s().to_double(),
                  it.comm_s().to_double(), it.comm_share() * 100.0,
                  it.overlap_bound_s.to_double(), it.pipeline_bound_s.to_double());
    out += line;
  }

  out += markdown ? "\n## Ranks\n\n" : "\nranks\n";
  if (markdown) {
    out += "| rank | on path s | busy s | idle s |\n|---:|---:|---:|---:|\n";
  } else {
    out += "  rank  on path s     busy s     idle s\n";
  }
  for (const CpRankSummary& r : analysis.ranks) {
    SimSeconds busy{};
    for (std::size_t c = 0; c < kCpCategoryCount; ++c) {
      if (static_cast<CpCategory>(c) != CpCategory::kBarrierIdle) busy += r.busy_s[c];
    }
    const char* fmt = markdown ? "| %d | %.6f | %.6f | %.6f |\n"
                               : "  %4d %10.6f %10.6f %10.6f\n";
    std::snprintf(line, sizeof(line), fmt, r.rank, r.on_path_s.to_double(), busy.to_double(),
                  r.idle_s.to_double());
    out += line;
  }

  if (!analysis.problems.empty()) {
    out += markdown ? "\n## Problems\n\n" : "\nproblems\n";
    for (const std::string& p : analysis.problems) {
      out += markdown ? "- " + p + "\n" : "  ! " + p + "\n";
    }
  }
  return out;
}

std::string render_critpath_diff(const CpAnalysis& before, const CpAnalysis& after,
                                 bool markdown) {
  std::string out;
  out += markdown ? "## Critical-path diff\n\n" : "critical-path diff\n";
  if (markdown) {
    out += "| category | before s | after s | delta s |\n|---|---:|---:|---:|\n";
  } else {
    out += "  category        before s    after s    delta s\n";
  }
  char line[192];
  for (std::size_t c = 0; c < kCpCategoryCount; ++c) {
    const double b = before.total_s[c].to_double();
    const double a = after.total_s[c].to_double();
    if (b <= 0.0 && a <= 0.0) continue;
    const char* fmt = markdown ? "| %s | %.6f | %.6f | %+.6f |\n"
                               : "  %-14s %10.6f %10.6f %+10.6f\n";
    std::snprintf(line, sizeof(line), fmt, cp_category_name(static_cast<CpCategory>(c)), b, a,
                  a - b);
    out += line;
  }
  SimSeconds e2e_before{};
  SimSeconds e2e_after{};
  for (const CpIteration& it : before.iterations) e2e_before += it.e2e_s();
  for (const CpIteration& it : after.iterations) e2e_after += it.e2e_s();
  std::snprintf(line, sizeof(line),
                "%send-to-end %+.6f s; overlap bound %+.6f s; pipeline bound %+.6f s\n",
                markdown ? "\n" : "", (e2e_after - e2e_before).to_double(),
                (after.overlap_bound_s - before.overlap_bound_s).to_double(),
                (after.pipeline_bound_s - before.pipeline_bound_s).to_double());
  out += line;
  return out;
}

std::string serialize_critpath(const CpAnalysis& analysis) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "end=%.9f overlap=%.9f pipeline=%.9f\n",
                analysis.end_s.to_double(), analysis.overlap_bound_s.to_double(),
                analysis.pipeline_bound_s.to_double());
  out += line;
  for (const CpIteration& it : analysis.iterations) {
    std::snprintf(line, sizeof(line), "iter %lld [%.9f,%.9f] ob=%.9f pb=%.9f\n",
                  static_cast<long long>(it.iteration), it.start_s.to_double(),
                  it.end_s.to_double(), it.overlap_bound_s.to_double(),
                  it.pipeline_bound_s.to_double());
    out += line;
    for (const CpSegment& seg : it.path) {
      std::snprintf(line, sizeof(line), "  seg %s rank=%d [%.9f,%.9f] op=%lld peer=%d %s\n",
                    cp_category_name(seg.category), seg.rank, seg.start_s.to_double(),
                    seg.end_s.to_double(), static_cast<long long>(seg.op), seg.peer,
                    seg.name.c_str());
      out += line;
    }
  }
  for (const CpRankSummary& r : analysis.ranks) {
    std::snprintf(line, sizeof(line), "rank %d on_path=%.9f idle=%.9f\n", r.rank,
                  r.on_path_s.to_double(), r.idle_s.to_double());
    out += line;
  }
  return out;
}

void publish_critpath_metrics(const CpAnalysis& analysis) {
  MetricsRegistry& reg = MetricsRegistry::global();
  if (!reg.enabled()) return;
  SimSeconds e2e{};
  for (const CpIteration& it : analysis.iterations) e2e += it.e2e_s();
  reg.gauge("critpath.e2e_s").set(e2e.to_double());
  reg.gauge("critpath.iterations").set(static_cast<double>(analysis.iterations.size()));
  reg.gauge("critpath.comm_share").set(analysis.comm_share());
  reg.gauge("critpath.overlap_bound_s").set(analysis.overlap_bound_s.to_double());
  reg.gauge("critpath.pipeline_bound_s").set(analysis.pipeline_bound_s.to_double());
  for (std::size_t c = 0; c < kCpCategoryCount; ++c) {
    if (analysis.total_s[c] <= SimSeconds(0.0)) continue;
    reg.gauge(std::string("critpath.") + cp_category_name(static_cast<CpCategory>(c)) + "_s")
        .set(analysis.total_s[c].to_double());
  }
}

LedgerCritpath ledger_critpath_from(const CpAnalysis& analysis) {
  LedgerCritpath row;
  row.iterations = analysis.iterations.size();
  for (const CpIteration& it : analysis.iterations) row.e2e_s += it.e2e_s();
  row.compute_s = analysis.compute_s();
  row.comm_s = analysis.comm_s();
  row.comm_share = analysis.comm_share();
  row.overlap_bound_s = analysis.overlap_bound_s;
  row.pipeline_bound_s = analysis.pipeline_bound_s;
  for (std::size_t c = 0; c < kCpCategoryCount; ++c) {
    if (analysis.total_s[c] <= SimSeconds(0.0)) continue;
    row.category_s.emplace_back(cp_category_name(static_cast<CpCategory>(c)),
                                analysis.total_s[c]);
  }
  return row;
}

CpLedgerReconcile reconcile_with_ledger(const CpAnalysis& analysis, const LedgerRun& run) {
  CpLedgerReconcile result;
  // Iterations the analyzer actually windowed (setup/teardown excluded).
  std::map<std::int64_t, SimSeconds> path_comm;
  for (const CpIteration& it : analysis.iterations) {
    if (it.iteration >= 0) path_comm[it.iteration] += it.comm_s();
  }
  for (const JsonValue& row : run.iterations) {
    const std::int64_t iteration =
        static_cast<std::int64_t>(row.number_or("iter", row.number_or("iteration", -1.0)));
    const auto it = path_comm.find(iteration);
    if (it == path_comm.end()) continue;
    const JsonValue* collectives = row.find("collectives");
    if (collectives == nullptr || collectives->kind != JsonValue::Kind::kArray) continue;
    for (const JsonValue& c : collectives->array) {
      result.ledger_charged_s += SimSeconds(c.number_or("charged_s", 0.0));
      result.compared = true;
    }
    result.path_comm_s += it->second;
  }
  result.abs_diff_s =
      SimSeconds(std::fabs((result.ledger_charged_s - result.path_comm_s).to_double()));
  const double denom = std::max(
      {result.ledger_charged_s.to_double(), result.path_comm_s.to_double(), 1e-12});
  result.rel_diff = result.abs_diff_s.to_double() / denom;
  return result;
}

}  // namespace fftgrad::telemetry
