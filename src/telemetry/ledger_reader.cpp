#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "fftgrad/telemetry/ledger.h"

namespace fftgrad::telemetry {
namespace {

/// Recursive-descent parser for the JSON subset the ledger emits (full JSON
/// minus \uXXXX surrogate pairs, which never appear in our output).
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_ws();
    if (at_ != text_.size()) fail("trailing characters after JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json parse error at offset " + std::to_string(at_) + ": " + why);
  }

  void skip_ws() {
    while (at_ < text_.size() && (text_[at_] == ' ' || text_[at_] == '\t' ||
                                  text_[at_] == '\n' || text_[at_] == '\r')) {
      ++at_;
    }
  }

  char peek() {
    if (at_ >= text_.size()) fail("unexpected end of input");
    return text_[at_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++at_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(at_, literal.size()) != literal) return false;
    at_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      v.string = parse_string();
      return v;
    }
    if (consume_literal("true")) {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      return v;
    }
    if (consume_literal("null")) return {};
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    fail("unexpected character");
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++at_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++at_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++at_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++at_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (at_ >= text_.size()) fail("unterminated string");
      const char c = text_[at_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (at_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[at_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (at_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[at_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = at_;
    if (peek() == '-') ++at_;
    while (at_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[at_])) != 0 || text_[at_] == '.' ||
            text_[at_] == 'e' || text_[at_] == 'E' || text_[at_] == '+' || text_[at_] == '-')) {
      ++at_;
    }
    const std::string token(text_.substr(start, at_ - start));
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    char* end = nullptr;
    v.number = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') fail("malformed number '" + token + "'");
    return v;
  }

  std::string_view text_;
  std::size_t at_ = 0;
};

bool is_number(const JsonValue* v) {
  // The writer encodes non-finite values as the strings "nan"/"inf"/"-inf";
  // schema-wise those still count as numeric fields.
  if (v == nullptr) return false;
  if (v->kind == JsonValue::Kind::kNumber) return true;
  return v->kind == JsonValue::Kind::kString &&
         (v->string == "nan" || v->string == "inf" || v->string == "-inf");
}

bool is_string(const JsonValue* v) {
  return v != nullptr && v->kind == JsonValue::Kind::kString;
}

}  // namespace

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::number_or(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->kind == Kind::kNumber ? v->number : fallback;
}

std::string JsonValue::string_or(const std::string& key, const std::string& fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->kind == Kind::kString ? v->string : fallback;
}

JsonValue parse_json(std::string_view text) { return JsonParser(text).parse_document(); }

std::vector<LedgerRun> read_ledger_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open ledger file '" + path + "'");
  std::vector<LedgerRun> runs;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    JsonValue row;
    try {
      row = parse_json(line);
    } catch (const std::exception& e) {
      throw std::runtime_error(path + ":" + std::to_string(line_no) + ": " + e.what());
    }
    const std::string type = row.string_or("type", "");
    if (type == "manifest") {
      runs.emplace_back();
      runs.back().manifest = std::move(row);
    } else if (runs.empty()) {
      throw std::runtime_error(path + ":" + std::to_string(line_no) +
                               ": row of type '" + type + "' before any manifest");
    } else if (type == "iteration") {
      runs.back().iterations.push_back(std::move(row));
    } else if (type == "alert") {
      runs.back().alerts.push_back(std::move(row));
    } else if (type == "remediation") {
      runs.back().remediations.push_back(std::move(row));
    } else if (type == "summary") {
      runs.back().summary = std::move(row);
    } else if (type == "critpath") {
      runs.back().critpath = std::move(row);
    } else {
      throw std::runtime_error(path + ":" + std::to_string(line_no) + ": unknown row type '" +
                               type + "'");
    }
  }
  return runs;
}

std::vector<std::string> validate_ledger(const std::vector<LedgerRun>& runs) {
  std::vector<std::string> problems;
  auto complain = [&problems](std::size_t run, const std::string& what) {
    std::ostringstream out;
    out << "run " << run << ": " << what;
    problems.push_back(out.str());
  };

  for (std::size_t i = 0; i < runs.size(); ++i) {
    const LedgerRun& run = runs[i];
    for (const char* key : {"trainer", "compressor"}) {
      if (!is_string(run.manifest.find(key))) {
        complain(i, std::string("manifest missing string field '") + key + "'");
      }
    }
    for (const char* key : {"ranks", "iterations", "seed", "fault_rate"}) {
      if (!is_number(run.manifest.find(key))) {
        complain(i, std::string("manifest missing numeric field '") + key + "'");
      }
    }
    const JsonValue* network = run.manifest.find("network");
    if (network == nullptr || network->kind != JsonValue::Kind::kObject) {
      complain(i, "manifest missing 'network' object");
    } else {
      for (const char* key : {"latency_s", "bandwidth_bytes_s", "loss_rate"}) {
        if (!is_number(network->find(key))) {
          complain(i, std::string("manifest network missing numeric field '") + key + "'");
        }
      }
    }

    for (std::size_t j = 0; j < run.iterations.size(); ++j) {
      const JsonValue& row = run.iterations[j];
      const JsonValue* iter = row.find("iter");
      if (!is_number(iter)) {
        complain(i, "iteration row missing numeric 'iter'");
      } else if (iter->kind == JsonValue::Kind::kNumber &&
                 static_cast<std::size_t>(iter->number) != j) {
        std::ostringstream out;
        out << "iteration rows not consecutive: row " << j << " has iter " << iter->number;
        complain(i, out.str());
      }
      for (const char* key : {"loss", "sim_time_s", "grad_norm"}) {
        if (!is_number(row.find(key))) {
          complain(i, std::string("iteration row missing numeric field '") + key + "'");
        }
      }
      const JsonValue* phases = row.find("phases");
      if (phases == nullptr || phases->kind != JsonValue::Kind::kObject) {
        complain(i, "iteration row missing 'phases' object");
      } else {
        for (const char* key : {"forward_s", "backward_s", "compress_s", "decompress_s"}) {
          if (!is_number(phases->find(key))) {
            complain(i, std::string("phases missing numeric field '") + key + "'");
          }
        }
      }
      const JsonValue* roundtrip = row.find("roundtrip");
      if (roundtrip == nullptr || roundtrip->kind != JsonValue::Kind::kObject) {
        complain(i, "iteration row missing 'roundtrip' object");
      } else {
        for (const char* key : {"alpha", "ratio", "rms_error", "max_error", "wire_bytes"}) {
          if (!is_number(roundtrip->find(key))) {
            complain(i, std::string("roundtrip missing numeric field '") + key + "'");
          }
        }
      }
      const JsonValue* collectives = row.find("collectives");
      if (collectives == nullptr || collectives->kind != JsonValue::Kind::kArray) {
        complain(i, "iteration row missing 'collectives' array");
      } else {
        for (const JsonValue& c : collectives->array) {
          if (!is_string(c.find("kind")) || !is_number(c.find("predicted_s")) ||
              !is_number(c.find("charged_s")) || !is_number(c.find("bytes"))) {
            complain(i, "collective entry missing kind/bytes/predicted_s/charged_s");
            break;
          }
        }
      }
    }

    for (const JsonValue& alert : run.alerts) {
      if (!is_string(alert.find("monitor")) || !is_number(alert.find("iter"))) {
        complain(i, "alert row missing 'monitor'/'iter'");
      }
    }
    for (const JsonValue& remediation : run.remediations) {
      if (!is_string(remediation.find("cause")) || !is_string(remediation.find("action")) ||
          !is_number(remediation.find("iter")) || !is_number(remediation.find("cost_s")) ||
          !is_number(remediation.find("iterations_to_recover"))) {
        complain(i, "remediation row missing cause/action/iter/cost_s/iterations_to_recover");
      }
    }
    if (run.summary.kind == JsonValue::Kind::kObject) {
      if (!is_number(run.summary.find("iterations"))) {
        complain(i, "summary row missing numeric 'iterations'");
      } else if (run.summary.number_or("iterations", -1.0) !=
                 static_cast<double>(run.iterations.size())) {
        complain(i, "summary iteration count disagrees with iteration rows");
      }
      const JsonValue* collectives = run.summary.find("collectives");
      if (collectives == nullptr || collectives->kind != JsonValue::Kind::kObject) {
        complain(i, "summary row missing 'collectives' object");
      }
    }
    if (run.critpath.kind == JsonValue::Kind::kObject) {
      for (const char* key : {"iterations", "e2e_s", "comm_s", "comm_share",
                              "overlap_bound_s", "pipeline_bound_s"}) {
        if (!is_number(run.critpath.find(key))) {
          complain(i, std::string("critpath row missing numeric field '") + key + "'");
        }
      }
      const JsonValue* categories = run.critpath.find("categories");
      if (categories == nullptr || categories->kind != JsonValue::Kind::kObject) {
        complain(i, "critpath row missing 'categories' object");
      }
    }
  }
  return problems;
}

}  // namespace fftgrad::telemetry
