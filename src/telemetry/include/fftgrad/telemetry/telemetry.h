// Process-level telemetry switchboard.
//
// init_from_env() is the one call examples and benches make at startup:
//   FFTGRAD_TRACE=<path>    enable tracing + metrics; write Chrome trace
//                           JSON to <path> at exit (open it in Perfetto or
//                           chrome://tracing), and metrics JSON alongside
//                           to <path>.metrics.json unless overridden.
//   FFTGRAD_METRICS=<path>  enable metrics; write the registry's JSON to
//                           <path> at exit.
//   FFTGRAD_LEDGER=<path>   enable the run ledger; trainers append JSONL
//                           rows (manifest / iteration / alert / summary)
//                           to <path>, closed at exit. Monitor thresholds
//                           come from FFTGRAD_LEDGER_ALPHA_BOUND,
//                           FFTGRAD_LEDGER_MIN_RATIO,
//                           FFTGRAD_LEDGER_DRIFT_TOL,
//                           FFTGRAD_LEDGER_DRIFT_WINDOW, and
//                           FFTGRAD_LEDGER_RESIDUAL_FACTOR (see
//                           LedgerTolerances for defaults).
//   FFTGRAD_PROFILE=1       enable the host-time sampling profiler; write
//                           folded stacks (flamegraph input) plus a
//                           hot-path report at exit. A value other than
//                           0/1 doubles as the output path. Rate from
//                           FFTGRAD_PROFILE_HZ (default 97), output path
//                           from FFTGRAD_PROFILE_OUT (default
//                           profile.folded; report at <out>.report.txt).
//                           See fftgrad/telemetry/profiler.h.
// With none of the variables set, telemetry stays disabled and every
// TraceSpan / metric update / ledger hook is a single relaxed atomic check.
#pragma once

#include "fftgrad/telemetry/ledger.h"
#include "fftgrad/telemetry/metrics.h"
#include "fftgrad/telemetry/trace.h"

namespace fftgrad::telemetry {

/// Read FFTGRAD_TRACE / FFTGRAD_METRICS, enable the tracer/registry
/// accordingly, and register an atexit hook that writes the configured
/// files. Idempotent; safe to call from multiple binaries' main().
void init_from_env();

/// Write the configured trace/metrics files now (also runs at exit).
/// No-op when init_from_env() found neither variable.
void export_configured();

}  // namespace fftgrad::telemetry
