// Cross-rank critical-path analyzer for the simulated training timeline.
//
// The span tracer records, for every rank, a set of *leaf* spans with
// category "cp" that partition the rank's simulated clock: modelled compute
// phases (forward/backward/fft/quant_pack/wire_crc/inverse_fft/dequant/
// apply, charged by the trainer's SimComputeModel), collective propagation
// ("collective"), per-sender retransmission recovery ("retry", peer = the
// faulted sender), injected straggler slowdown ("straggle"), and barrier
// waits ("barrier", op = the barrier generation shared by every rank in the
// round). Zero-length "cp-edge" records ("publish"/"consume") materialize
// the causality layer's happens-before edges with simulated timestamps.
//
// analyze_critical_path() walks that event DAG backward from the last rank
// to finish: within a rank it follows the leaf span ending at the cursor;
// at a barrier it jumps to the *bounding* rank — the last arrival of the
// same generation — so barrier idle time is charged to the waiting rank
// only up to the moment the binding rank arrived. When a straggler timeout
// capped the release (every live arrival is earlier than the release), the
// gap is synthesized as a "straggler wait" segment attributed to the
// abandoned rank. The resulting segment chain is contiguous from 0 to the
// end of the run, so per-iteration category times sum to the simulated
// end-to-end time by construction (acceptance: within 1e-6).
//
// Two closed-form upper bounds on what ROADMAP's layer-wise
// communication/computation overlap (DGC-style) could win are computed per
// iteration from the path segments alone:
//   overlap_bound_s  = min(compute on path, comm on path) — the
//                      perfect-chunking limit;
//   pipeline_bound_s = e2e - other - flowshop(compute segs, comm segs),
//                      a FIFO two-machine pipeline where comm chunk j may
//                      start once the j-th compute segment has finished.
//                      Exact on a 2-layer pipeline (see tests).
//
// Consumers: examples/trace_analyze (report/diff), publish_critpath_metrics
// (critpath.* gauges), RunLedger::record_critpath (ledger "critpath" row),
// reconcile_with_ledger (charged-vs-path comm check), and the analysis
// layer's validate_critical_path (structural + happens-before checks).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "fftgrad/telemetry/ledger.h"
#include "fftgrad/telemetry/trace.h"

namespace fftgrad::telemetry {

/// Categories every nanosecond of the critical path is attributed to.
enum class CpCategory : int {
  kBackprop = 0,   ///< forward/backward/apply modelled compute
  kFft,            ///< FFT + inverse FFT of the sparsifying codec
  kQuantPack,      ///< quantize/pack + dequant/unpack
  kWireCrc,        ///< wire framing + CRC
  kCollective,     ///< lossless collective propagation (alpha-beta model)
  kRetry,          ///< retransmission/backoff recovery time
  kStraggle,       ///< injected straggler slowdown on the bounding rank
  kStragglerWait,  ///< timeout-capped wait for an abandoned straggler
  kBarrierIdle,    ///< waiting in a barrier for the bounding rank
  kUntracked,      ///< simulated time not covered by any "cp" leaf span
  kCount
};

inline constexpr std::size_t kCpCategoryCount = static_cast<std::size_t>(CpCategory::kCount);

/// Stable lower-case name ("backprop", "fft", ...), used in reports,
/// metrics names and the ledger row.
const char* cp_category_name(CpCategory category);

/// Leaf-span name -> category ("forward" -> kBackprop, ...). Unknown names
/// map to kUntracked.
CpCategory cp_category_for_span(const std::string& name);

/// One event extracted from the tracer (or a Chrome-JSON export): either a
/// "cp" leaf span or a zero-length "cp-edge" publish/consume record.
struct CpEvent {
  std::int32_t rank = -1;
  std::string name;
  util::SimSeconds start_s{};
  util::SimSeconds end_s{};
  std::int64_t iteration = -1;
  std::int64_t op = -1;    ///< collective index / barrier generation
  std::int32_t peer = -1;  ///< attributed peer rank (retry sender, ...)
  bool edge = false;       ///< true for publish/consume cp-edge records
};

/// Extract the cp events of one simulated session from tracer records.
std::vector<CpEvent> cp_events_from_records(const std::vector<SpanRecord>& records,
                                            std::uint32_t sim_session);

/// Latest simulated session id present in the records (0 when none).
std::uint32_t latest_sim_session(const std::vector<SpanRecord>& records);

/// Extract cp events from an exported Chrome trace-event JSON file. Picks
/// the newest simulated session (highest sim pid) unless `session` >= 0.
/// Timestamps round-trip at microsecond resolution with %.3f precision,
/// i.e. nanosecond granularity. Throws std::runtime_error on IO/parse
/// problems.
std::vector<CpEvent> cp_events_from_chrome_json(const std::string& path,
                                                std::int64_t session = -1);

/// One contiguous critical-path segment, attributed to `rank`.
struct CpSegment {
  CpCategory category = CpCategory::kUntracked;
  std::int32_t rank = -1;   ///< the rank bounding the path over [start, end]
  util::SimSeconds start_s{};
  util::SimSeconds end_s{};
  std::string name;         ///< originating leaf-span name
  std::int64_t iteration = -1;
  std::int64_t op = -1;
  std::int32_t peer = -1;
};

/// Per-iteration attribution. Segments are contiguous, so
/// sum(category_s) == end_s - start_s exactly (modulo fp addition).
struct CpIteration {
  std::int64_t iteration = -1;
  util::SimSeconds start_s{};
  util::SimSeconds end_s{};
  std::array<util::SimSeconds, kCpCategoryCount> category_s{};
  util::SimSeconds overlap_bound_s{};   ///< min(compute, comm) on the path
  util::SimSeconds pipeline_bound_s{};  ///< e2e - other - flow-shop makespan
  std::vector<CpSegment> path;          ///< in increasing time order

  util::SimSeconds e2e_s() const { return end_s - start_s; }
  util::SimSeconds category_sum_s() const;
  /// Compute on the path: backprop + fft + quant/pack + wire/CRC.
  util::SimSeconds compute_s() const;
  /// Communication on the path: collective propagation + retry recovery.
  util::SimSeconds comm_s() const;
  /// comm_s / e2e_s (0 when the window is empty) — comparable to the
  /// fig02 `comm_share` metric on a lossless run.
  double comm_share() const;
};

/// Per-rank totals across the whole analyzed window ("flame" summary).
struct CpRankSummary {
  std::int32_t rank = -1;
  std::array<util::SimSeconds, kCpCategoryCount> busy_s{};  ///< rank-local span time
  util::SimSeconds idle_s{};     ///< barrier idle + uncovered gaps on the rank
  util::SimSeconds on_path_s{};  ///< time this rank bounds the critical path
};

struct CpAnalysis {
  std::vector<CpIteration> iterations;
  std::vector<CpRankSummary> ranks;
  std::array<util::SimSeconds, kCpCategoryCount> total_s{};
  util::SimSeconds end_s{};             ///< simulated end of the analyzed window
  util::SimSeconds overlap_bound_s{};   ///< sum over iterations
  util::SimSeconds pipeline_bound_s{};  ///< sum over iterations
  /// Structural problems found while walking (a gap, a dangling barrier).
  /// Empty on a well-formed trace; surfaced by trace_analyze and the
  /// analysis layer's validator.
  std::vector<std::string> problems;

  util::SimSeconds e2e_s() const { return end_s; }
  util::SimSeconds compute_s() const;
  util::SimSeconds comm_s() const;
  double comm_share() const;
};

/// Build the per-iteration critical path from one session's cp events.
/// Events may arrive in any order. Returns an empty analysis (no
/// iterations) when there are no leaf spans.
CpAnalysis analyze_critical_path(const std::vector<CpEvent>& events);

/// Human-readable report: totals, per-iteration table, per-rank flame
/// summary, bounds, problems. Markdown when `markdown`, aligned plain text
/// otherwise.
std::string render_critpath_report(const CpAnalysis& analysis, bool markdown);

/// Cross-run diff of two analyses (category deltas, bound deltas).
std::string render_critpath_diff(const CpAnalysis& before, const CpAnalysis& after,
                                 bool markdown);

/// Deterministic structural serialization (fixed-precision numbers), used
/// by the determinism tests: equal strings <=> equal analyses.
std::string serialize_critpath(const CpAnalysis& analysis);

/// Export gauges: critpath.e2e_s, critpath.comm_share,
/// critpath.overlap_bound_s, critpath.pipeline_bound_s,
/// critpath.iterations, and critpath.<category>_s per category.
void publish_critpath_metrics(const CpAnalysis& analysis);

/// Build the aggregate `critpath` ledger row (see
/// RunLedger::record_critpath in ledger.h) from an analysis.
LedgerCritpath ledger_critpath_from(const CpAnalysis& analysis);

/// Reconciliation of the path's communication time against the ledger's
/// charged collective costs. On a lossless symmetric run the two agree:
/// every rank charges the same collective cost, so comm-on-path equals the
/// recording rank's charged total for the iterations analyzed.
struct CpLedgerReconcile {
  bool compared = false;  ///< false when the run has no collectives
  util::SimSeconds ledger_charged_s{};  ///< sum of charged_s over collective rows
  util::SimSeconds path_comm_s{};       ///< collective + retry time on the path
  util::SimSeconds abs_diff_s{};
  double rel_diff = 0.0;  ///< abs diff / max(ledger, path, eps)
};

CpLedgerReconcile reconcile_with_ledger(const CpAnalysis& analysis, const LedgerRun& run);

}  // namespace fftgrad::telemetry
