// Host-time sampling profiler with telemetry-span attribution.
//
// Every other observability layer in this codebase (spans, ledger,
// critical path) measures the *simulated* clock; this one answers where
// the host CPU actually burns cycles. A SIGPROF interval timer samples
// the process at a fixed rate (default 97 Hz — prime, so it cannot lock
// onto loop periods); the handler captures the interrupted stack plus the
// innermost active TraceSpan and logical rank into a per-thread lock-free
// ring, and a collector thread aggregates. Output is folded-stack text
// (directly consumable by flamegraph.pl / speedscope) plus a ranked
// hot-path table whose rows carry the enclosing span and, where the
// symbol matches ROADMAP item 1's kernel list, a SIMD-candidate hint.
//
// Cost contract (matching the tracer/metrics/ledger): with the profiler
// off, a TraceSpan still costs exactly one relaxed atomic load and no
// allocation or IO; register_current_thread() on an unconfigured profiler
// is one relaxed load. While sampling, the per-span tax is two function
// calls writing a fixed-depth thread-local span stack, and the handler
// writes one ring slot — it never allocates, locks, or blocks.
//
// ITIMER_PROF counts process CPU time, so the sampling rate is shared by
// all running threads in proportion to the CPU they use: idle threads are
// (correctly) invisible, and self-time percentages are CPU shares.
//
// Wiring: FFTGRAD_PROFILE=1 (telemetry::init_from_env()) starts sampling
// and writes FFTGRAD_PROFILE_OUT (default profile.folded) plus
// <out>.report.txt at exit; FFTGRAD_PROFILE_HZ overrides the rate.
// `examples/run_report --profile <folded>` renders the hot-path section
// and cross-references host self-time against the simulated critical
// path. See DESIGN.md "Host-time profiling".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fftgrad::telemetry {

/// One aggregated folded-stack line: `count` samples whose rank, span and
/// call stack all matched. Grammar of the text form (one line each):
///
///   rank:<r>;cat:<category>;span:<name>;<root>;...;<leaf> <count>
///
/// rank -1 / empty category / empty span render as "-". The three
/// synthetic root frames make flamegraphs group by rank, then span
/// category, then span, before the real stack. Frame text never contains
/// ';' (sanitized at symbolization); the count is separated by the LAST
/// space, so demangled signatures may contain spaces.
struct FoldedStack {
  std::int32_t rank = -1;
  std::string category;             ///< span category ("" = none)
  std::string span;                 ///< innermost span name ("" = none)
  std::vector<std::string> frames;  ///< root-first symbolized frames
  std::uint64_t count = 0;
};

/// One row of the ranked hot-path table.
struct HotPath {
  std::string symbol;
  std::uint64_t self_samples = 0;   ///< samples with this symbol as leaf
  std::uint64_t total_samples = 0;  ///< samples with it anywhere on stack
  double self_pct = 0.0;
  double total_pct = 0.0;
  std::string top_span;   ///< span holding most of the self samples
  std::string simd_hint;  ///< ROADMAP item 1 kernel family, "" = none
};

class Profiler {
 public:
  /// Prime (97) so the sampler cannot phase-lock to loop periods.
  static constexpr int kDefaultHz = 97;

  static Profiler& global();

  /// Make the calling thread sampleable. One relaxed atomic load when the
  /// profiler was never configured; otherwise allocates the thread's ring
  /// (outside signal context) and registers it with the collector. Called
  /// from init_from_env(), thread-pool workers and SimCluster rank
  /// threads; threads spawned before the profiler was configured are not
  /// sampled.
  static void register_current_thread();

  /// Install the SIGPROF handler and start the interval timer at `hz`
  /// (clamped to [1, 1000]); spawns the collector thread. Returns false
  /// if already running or the OS refused the handler/timer.
  bool start(int hz = kDefaultHz);

  /// Stop the timer, join the collector, drain every ring, and publish
  /// the profile.* metrics. The handler stays installed (benign once the
  /// timer is off; restoring dispositions races with in-flight signals).
  void stop();

  bool running() const;

  /// Drain pending samples and return the aggregate, symbolized and
  /// deterministically ordered. Callable while running or after stop().
  std::vector<FoldedStack> folded();

  /// folded() rendered in the text grammar above.
  std::string render_folded_text();

  /// Write render_folded_text() to `path`; false (and a log line) on IO
  /// failure.
  bool write_folded(const std::string& path);

  /// Ranked hot-path table over folded(), most self-time first.
  std::vector<HotPath> hot_paths();

  /// Human-readable report: sample accounting plus the top-N hot paths.
  std::string render_report(std::size_t top_n = 20);

  struct Stats {
    std::uint64_t samples = 0;    ///< samples captured by the handler
    std::uint64_t dropped = 0;    ///< lost to full rings
    std::uint64_t truncated = 0;  ///< stacks deeper than the capture limit
    std::uint64_t threads = 0;    ///< threads registered for sampling
    int hz = 0;
  };
  Stats stats() const;

  /// Drop every aggregated and pending sample (rings stay registered).
  void clear();

 private:
  Profiler() = default;
};

/// Parse folded-stack text (the render grammar above; also what
/// flamegraph tooling consumes). Returns false and sets `error` (when
/// given) on the first malformed line. Parsing then re-rendering is
/// byte-identical for canonical input — the round-trip the tests and the
/// profile gate rely on.
bool parse_folded(const std::string& text, std::vector<FoldedStack>& out,
                  std::string* error = nullptr);

/// Render stacks in the folded text grammar (sorted copy; deterministic).
std::string render_folded(const std::vector<FoldedStack>& stacks);

/// Ranked hot-path table from parsed stacks (used by run_report on a
/// folded file, and by Profiler::hot_paths on live data).
std::vector<HotPath> hot_paths_from(const std::vector<FoldedStack>& stacks);

/// The hot-path table rendered as text (top_n rows).
std::string render_hot_paths(const std::vector<HotPath>& paths, std::size_t top_n = 20);

/// ROADMAP item 1 SIMD-candidate matcher: maps a (demangled) symbol to
/// the kernel family it belongs to — FFT butterflies, half/RangeFloat
/// quantize/dequantize, top-k threshold scan, prefix-sum packing,
/// CRC-checked framing — or "" when it matches none.
std::string simd_candidate_hint(const std::string& symbol);

}  // namespace fftgrad::telemetry
