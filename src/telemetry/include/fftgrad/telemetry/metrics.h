// Named metrics registry: counters, gauges, and sample histograms with
// thread-safe updates and JSON export.
//
// Metric objects are created on first lookup and are never destroyed or
// moved, so call sites may cache references (including in function-local
// statics) across reset()s. Updates are gated on the registry-wide enabled
// flag — one relaxed atomic load — so instrumentation in hot paths (the
// thread pool's per-task accounting, the codecs) costs nothing in normal
// runs and only accumulates when telemetry is switched on.
//
// Metric names used across the framework (units in brackets):
//   comm.<collective>.calls   collective invocations per kind        [count]
//   comm.bytes_sent           payload bytes entering collectives     [bytes]
//   codec.raw_bytes           uncompressed gradient bytes compressed [bytes]
//   codec.wire_bytes          compressed packet bytes produced       [bytes]
//   codec.ratio               per-packet compression ratio           [x]
//   trainer.iterations        training iterations completed          [count]
//   trainer.wire_bytes        per-rank wire bytes (paper-scale-aware)[bytes]
//   trainer.alpha             Assumption-3.2 relative error alpha    [ratio]
//   trainer.checkpoints_saved    checkpoints captured by train()     [count]
//   trainer.checkpoints_restored runs resumed from a checkpoint      [count]
//   trainer.peers_skipped     peer packets skipped (missing/corrupt) [count]
//   trainer.degraded_iterations  iterations averaged over < p ranks  [count]
//   pool.tasks                tasks submitted to the thread pool     [count]
//   pool.queue_depth          queue length observed at submit        [tasks]
//   pool.task_latency_us      submit-to-start task latency           [us]
//   fault.rank_crashes        ranks lost to FaultPlan crashes        [count]
//   fault.straggle_seconds    simulated straggler slowdown charged   [s]
//   fault.late_contributions  contributions excluded by the timeout  [count]
//   fault.retransmits         packet retransmissions triggered       [count]
//   fault.retransmit_bytes    retransmitted + duplicated bytes       [bytes]
//   fault.recovery_seconds    simulated retry/backoff/delay time     [s]
//   fault.deliveries_failed   deliveries still broken after retries  [count]
//   analysis.violations       invariant violations reported          [count]
//   analysis.hb_checks        happens-before edges verified          [count]
//   analysis.epoch_checks     collective-epoch matches verified      [count]
//   analysis.agreement_checks cross-rank agreement values checked    [count]
//   ledger.alerts.<monitor>   run-ledger health alerts per monitor   [count]
//       (monitors: nan_gradient, nonfinite_loss, alpha_bound,
//        ratio_collapse, model_drift, residual_growth — see
//        fftgrad/telemetry/ledger.h)
//   critpath.e2e_s            critical-path end-to-end time          [s]
//   critpath.iterations       iteration windows analyzed             [count]
//   critpath.comm_share       comm on the critical path / e2e        [ratio]
//   critpath.overlap_bound_s  perfect-chunking overlap upper bound   [s]
//   critpath.pipeline_bound_s layer-wise FIFO pipeline bound         [s]
//   critpath.<category>_s     per-category time on the path          [s]
//       (categories: backprop, fft, quant_pack, wire_crc, collective,
//        retry, straggle, straggler_wait, barrier_idle, untracked — see
//        fftgrad/telemetry/critical_path.h)
//   profile.samples           host-time stack samples captured       [count]
//   profile.dropped           samples lost to full rings             [count]
//   profile.truncated         stacks deeper than the capture limit   [count]
//   profile.threads           threads registered for sampling        [count]
//   profile.hz                configured SIGPROF sampling rate       [Hz]
#pragma once

#include <atomic>
#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "fftgrad/util/annotated_mutex.h"
#include "fftgrad/util/thread_annotations.h"

namespace fftgrad::telemetry {

class MetricsRegistry;

/// Monotonically increasing sum (doubles, so byte totals beyond 2^53 are
/// out of scope — fine for simulated runs).
class Counter {
 public:
  void add(double delta);
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Counter(const std::atomic<bool>& enabled) : enabled_(enabled) {}
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

  const std::atomic<bool>& enabled_;
  std::atomic<double> value_{0.0};
};

/// Last-written value (e.g. queue depth at submit time).
class Gauge {
 public:
  void set(double value);
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const std::atomic<bool>& enabled) : enabled_(enabled) {}
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

  const std::atomic<bool>& enabled_;
  std::atomic<double> value_{0.0};
};

/// Exact sample histogram: stores every observation (mutex-guarded), so
/// quantiles are the true order statistics, not bucket approximations.
class Histogram {
 public:
  void observe(double value);

  struct Summary {
    std::size_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
  };
  Summary summarize() const;

  /// Smallest sample x with (rank of x) / count >= q; q in [0, 1].
  double quantile(double q) const;
  std::size_t count() const;

 private:
  friend class MetricsRegistry;
  explicit Histogram(const std::atomic<bool>& enabled) : enabled_(enabled) {}
  void reset();
  std::vector<double> sorted_samples() const;

  const std::atomic<bool>& enabled_;
  mutable util::Mutex mutex_;
  std::vector<double> samples_ FFTGRAD_GUARDED_BY(mutex_);
};

class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  void set_enabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Lookup-or-create; returned references stay valid for the process
  /// lifetime. A name registered as one kind must not be reused as another.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Zero every metric's value; registered objects (and cached references)
  /// survive.
  void reset();

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: summary}}.
  std::string to_json() const;

  /// Write to_json() to `path`; returns false (and logs) on failure.
  bool export_json(const std::string& path) const;

 private:
  MetricsRegistry() = default;

  std::atomic<bool> enabled_{false};
  // Reader/writer split: lookup-or-create mutates the maps (exclusive);
  // reset() and to_json() only traverse them (shared) — the per-metric
  // state they touch is atomic or behind the Histogram's own mutex.
  mutable util::SharedMutex mutex_;
  // std::map: stable addresses are required anyway (values are
  // heap-allocated), and ordered iteration gives deterministic JSON.
  std::map<std::string, Counter*> counters_ FFTGRAD_GUARDED_BY(mutex_);
  std::map<std::string, Gauge*> gauges_ FFTGRAD_GUARDED_BY(mutex_);
  std::map<std::string, Histogram*> histograms_ FFTGRAD_GUARDED_BY(mutex_);
};

}  // namespace fftgrad::telemetry
