// Run ledger: a structured JSONL event stream reconciling the analytic
// cost model against what the simulation actually charged, per iteration.
//
// One ledger file per process (FFTGRAD_LEDGER=<path>, wired by
// telemetry::init_from_env()); one *run* per trainer invocation inside it.
// A run opens with a `manifest` row (trainer, compressor, ranks, seed,
// network parameters, build preset), then records one `iteration` row per
// training step — phase wall times, per-collective predicted-vs-charged
// communication cost with retry/fault counts, gradient round-trip quality
// (the Assumption-3.2 alpha, rms/max reconstruction error, wire ratio,
// optionally per-layer), error-feedback residual norm, and loss — and
// closes with a `summary` row aggregating the run.
//
// Reconciliation contract: `predicted_s` is the analytic cost the
// NetworkModel/RetryPolicy formulas assign to the observed message sizes
// (including *expected* retransmission and backoff on a faulty plan);
// `charged_s` is what the per-rank SimClock actually advanced. On a
// lossless run the two must agree exactly (same formula, same inputs); on
// a faulty run they differ only by sampled-vs-expected recovery, which the
// drift monitor's rolling window averages out.
//
// Health monitors run on every iteration row and fire alerts:
//   nan_gradient     gradient norm is NaN/Inf
//   nonfinite_loss   training loss is NaN/Inf
//   alpha_bound      alpha >= bound (Theorem 3.3 needs alpha < 1 to
//                    contract; default bound 1.0)
//   ratio_collapse   achieved compression ratio fell below min_ratio
//   model_drift      rolling |charged - predicted| / predicted exceeded
//                    drift_rel_tol for some collective kind
//   residual_growth  EF residual norm exceeded residual_growth_factor x
//                    the gradient norm (error feedback diverging)
// Each alert writes an `alert` row, logs at WARN, bumps the internal
// per-monitor count plus the `ledger.alerts.<monitor>` metrics counter,
// and — in FFTGRAD_ANALYSIS builds, unless set_abort_on_alert(false) —
// aborts the process, mirroring the analysis layer's violation semantics.
//
// Cost when disabled (the default): every hook is gated on one relaxed
// atomic load and performs no allocation and no IO; instrumentation stays
// compiled into the trainers and SimCluster unconditionally. Callers
// should still guard any work spent *building* a row with enabled().
//
// Threading: hooks may be called from any thread (SimCluster rank 0's
// thread records collectives and iteration rows); a single internal mutex
// serializes buffered state and file writes.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "fftgrad/util/annotated_mutex.h"
#include "fftgrad/util/thread_annotations.h"
#include "fftgrad/util/units.h"

namespace fftgrad::telemetry {

/// Network parameters echoed into the manifest so a report can interpret
/// the predicted costs without the originating NetworkModel.
struct LedgerNetworkInfo {
  std::string name;
  util::SimSeconds latency_s{};
  util::BytesPerSecond bandwidth_bytes_s{};
  double loss_rate = 0.0;
};

struct LedgerManifest {
  std::string trainer;     ///< "cluster_train" | "distributed_trainer" | test tag
  std::string compressor;  ///< codec name() of rank 0's instance
  std::size_t ranks = 0;
  std::size_t iterations = 0;  ///< planned iterations (epochs x iters for the trainer)
  std::uint64_t seed = 0;
  LedgerNetworkInfo network;
  /// Per-attempt transport failure probability of the active FaultPlan
  /// (0 when fault-free); documents why charged may exceed the lossless
  /// analytic cost.
  double fault_rate = 0.0;
};

/// One collective's model-vs-measured pairing. `predicted_s` must include
/// the RetryPolicy expected-cost terms when the run carries transport
/// faults, so lossless runs reconcile exactly and faulty runs reconcile in
/// expectation.
struct LedgerCollective {
  const char* kind = "";  ///< "allgather", "allreduce", ... (static storage)
  std::uint64_t op = 0;   ///< collective index (or trainer iteration)
  util::Bytes bytes{};    ///< payload entering the collective
  util::SimSeconds predicted_s{};
  util::SimSeconds charged_s{};
  /// Sec 3.3 paper-model communication cost (Eq. 2) for the same exchange,
  /// when the caller computed one; 0 means "not modelled".
  util::SimSeconds paper_model_s{};
  std::uint64_t retries = 0;  ///< retransmissions observed by the recording rank
  std::uint64_t failed = 0;   ///< excluded or undeliverable contributions
};

/// Critical-path summary appended after a run by the analyzer (see
/// fftgrad/telemetry/critical_path.h): the per-category attribution of the
/// simulated end-to-end time plus the overlap upper bounds. Recorded as a
/// `critpath` row tied to the most recent run.
struct LedgerCritpath {
  std::uint64_t iterations = 0;
  util::SimSeconds e2e_s{};
  util::SimSeconds compute_s{};
  util::SimSeconds comm_s{};
  double comm_share = 0.0;  ///< dimensionless fraction of e2e_s
  util::SimSeconds overlap_bound_s{};
  util::SimSeconds pipeline_bound_s{};
  /// (category name, simulated time on the critical path), analyzer order.
  std::vector<std::pair<std::string, util::SimSeconds>> category_s;
};

/// One automatic remediation taken by a recovery controller (see
/// fftgrad/core/recovery.h): which monitor condition caused it, what action
/// was applied, what it cost in simulated time, and how many iterations the
/// condition took to clear. Recorded as a `remediation` row when the
/// condition clears (or at end of run with recovered=false).
struct LedgerRemediation {
  std::uint64_t iteration = 0;  ///< iteration the action was applied
  std::string cause;            ///< monitor name ("nan_gradient", ...)
  std::string action;           ///< "rollback" | "codec_fallback" | "theta_relax"
  util::SimSeconds cost_s{};    ///< simulated time spent executing the remedy
  std::uint64_t iterations_to_recover = 0;  ///< applied -> signal cleared
  bool recovered = false;       ///< the signal cleared before the run ended
};

/// Per-layer reconstruction quality (alpha/rms/max over the layer's slice
/// of the flat gradient; the wire ratio does not decompose per layer).
struct LedgerLayerStats {
  std::string name;
  double alpha = 0.0;
  double rms_error = 0.0;
  double max_error = 0.0;
};

struct LedgerIteration {
  std::uint64_t iteration = 0;
  double loss = 0.0;  ///< recording rank's training loss
  util::SimSeconds sim_time_s{};  ///< cumulative simulated time after this step
  // Phase wall times of the recording rank / the modelled split. These are
  // host measurements, deliberately WallSeconds: they never mix with the
  // simulated-clock fields without an explicit conversion.
  util::WallSeconds forward_s{};
  util::WallSeconds backward_s{};
  util::WallSeconds compress_s{};
  util::WallSeconds decompress_s{};
  double grad_norm = 0.0;  ///< ||g|| before compression
  // Whole-gradient round-trip quality (RoundTripStats semantics).
  double alpha = 0.0;
  double ratio = 0.0;
  double rms_error = 0.0;
  double max_error = 0.0;
  util::Bytes wire_bytes{};          ///< compressed packet bytes this rank sent
  double ef_residual_norm = -1.0;    ///< <0: codec carries no residual
  std::uint64_t skipped_peers = 0;   ///< contributions skipped this step
  std::vector<LedgerLayerStats> layers;  ///< optional per-layer breakdown
};

/// Monitor thresholds; env-overridable via FFTGRAD_LEDGER_* (see
/// telemetry::init_from_env).
struct LedgerTolerances {
  double alpha_bound = 1.0;
  double min_ratio = 1.0;
  double drift_rel_tol = 0.25;
  std::size_t drift_window = 16;  ///< iterations averaged before drift fires
  double residual_growth_factor = 100.0;
};

class RunLedger {
 public:
  static RunLedger& global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Open `path` for appending JSONL rows and enable the ledger. Returns
  /// false (and logs) when the file cannot be opened.
  bool open(const std::string& path);
  /// Flush, close, and disable. Idempotent; also runs at exit via
  /// init_from_env's hook.
  void close();

  void set_tolerances(const LedgerTolerances& tolerances);
  LedgerTolerances tolerances() const;
  /// In FFTGRAD_ANALYSIS builds alerts abort by default; monitor tests
  /// disable that to assert on counts instead. No-op in release builds.
  void set_abort_on_alert(bool abort_on_alert);

  /// Start a run: writes the manifest row, resets per-run monitor state,
  /// and returns the run id stamped on every subsequent row. Returns 0
  /// when disabled.
  std::uint64_t begin_run(const LedgerManifest& manifest);
  /// Write the run's `summary` row (totals, per-kind reconciliation, alert
  /// counts). No-op when disabled or no run is open.
  void end_run();

  /// Buffer one collective pairing; drained into the next iteration row.
  void record_collective(const LedgerCollective& sample);
  /// Write a `critpath` summary row. Usually called after end_run() (the
  /// analyzer runs on the finished trace); the row is stamped with the
  /// most recent run id either way.
  void record_critpath(const LedgerCritpath& row);
  /// Write the iteration row (with the buffered collectives) and run the
  /// health monitors on it.
  void end_iteration(const LedgerIteration& row);
  /// Write a `remediation` row and bump the per-action count reported in
  /// the summary row (and the `ledger.remediations.<action>` counter).
  void record_remediation(const LedgerRemediation& row);

  /// Alerts fired since the current run began (all monitors / one monitor).
  std::size_t alerts_total() const;
  std::size_t alerts(const std::string& monitor) const;

  /// Bytes written to the ledger file since open() (0 when disabled) —
  /// lets tests assert the disabled path never touches the file.
  std::size_t bytes_written() const;

 private:
  RunLedger() = default;

  void write_line_locked(const std::string& line) FFTGRAD_REQUIRES(mutex_);
  void alert_locked(const char* monitor, std::uint64_t iteration, double value,
                    double bound, const std::string& message) FFTGRAD_REQUIRES(mutex_);
  void run_monitors_locked(const LedgerIteration& row) FFTGRAD_REQUIRES(mutex_);

  std::atomic<bool> enabled_{false};
  mutable util::Mutex mutex_;
  void* file_ FFTGRAD_PT_GUARDED_BY(mutex_) FFTGRAD_GUARDED_BY(mutex_) =
      nullptr;  ///< std::FILE*, kept opaque in the header
  std::size_t bytes_written_ FFTGRAD_GUARDED_BY(mutex_) = 0;
  LedgerTolerances tolerances_ FFTGRAD_GUARDED_BY(mutex_);
  bool abort_on_alert_ FFTGRAD_GUARDED_BY(mutex_) = true;

  std::uint64_t next_run_id_ FFTGRAD_GUARDED_BY(mutex_) = 0;
  std::uint64_t run_id_ FFTGRAD_GUARDED_BY(mutex_) = 0;  ///< 0: no run open
  std::uint64_t rows_this_run_ FFTGRAD_GUARDED_BY(mutex_) = 0;
  std::vector<LedgerCollective> pending_collectives_ FFTGRAD_GUARDED_BY(mutex_);
  std::map<std::string, std::size_t> alert_counts_ FFTGRAD_GUARDED_BY(mutex_);
  std::map<std::string, std::size_t> remediation_counts_ FFTGRAD_GUARDED_BY(mutex_);

  /// Rolling per-kind reconciliation state for the drift monitor plus the
  /// run-lifetime totals reported in the summary row.
  struct KindTotals {
    util::SimSeconds predicted_s{};
    util::SimSeconds charged_s{};
    std::uint64_t count = 0;
    std::uint64_t retries = 0;
    std::uint64_t failed = 0;
    // Rolling window of per-iteration (predicted, charged) sums.
    std::vector<std::pair<util::SimSeconds, util::SimSeconds>> window;
    std::size_t window_at = 0;
  };
  std::map<std::string, KindTotals> kinds_ FFTGRAD_GUARDED_BY(mutex_);
};

// ---------------------------------------------------------------------------
// Reader side: a minimal JSON parser plus ledger-file loading and schema
// validation, shared by the run_report tool and tests/test_ledger.cpp.

/// Minimal JSON document model (objects keep insertion order).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<std::pair<std::string, JsonValue>> object;
  std::vector<JsonValue> array;

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;
  /// Convenience accessors with fallbacks for optional members.
  double number_or(const std::string& key, double fallback) const;
  std::string string_or(const std::string& key, const std::string& fallback) const;
};

/// Parse one JSON document. Throws std::runtime_error with an offset on
/// malformed input or trailing garbage.
JsonValue parse_json(std::string_view text);

/// One run reconstructed from a ledger file.
struct LedgerRun {
  JsonValue manifest;
  std::vector<JsonValue> iterations;
  std::vector<JsonValue> alerts;
  std::vector<JsonValue> remediations;  ///< recovery-controller actions
  JsonValue summary;   ///< kNull when the run was cut off before end_run()
  JsonValue critpath;  ///< kNull when no critical-path row was recorded
};

/// Load every run from a ledger JSONL file. Throws std::runtime_error on
/// IO failure or a line that does not parse as JSON.
std::vector<LedgerRun> read_ledger_file(const std::string& path);

/// Schema check over loaded runs: required fields present with the right
/// types, iteration rows numbered consecutively, collectives well-formed.
/// Returns human-readable problems; empty means the ledger is valid.
std::vector<std::string> validate_ledger(const std::vector<LedgerRun>& runs);

}  // namespace fftgrad::telemetry
