// Dual-clock span tracer.
//
// TraceSpan is an RAII scope marker recording a named span's wall time and,
// when the calling thread has a simulated clock bound (see ScopedRank), its
// simulated time on the logical rank's track. Records land in per-thread
// buffers: the owning thread appends without taking any lock (a mutex is
// touched only when a new 4096-record chunk is allocated), and a publisher
// atomic lets the exporter read a consistent prefix while ranks are still
// running. Tracer::export_chrome_json() writes the Chrome trace-event
// format, loadable in Perfetto / chrome://tracing, with one track per
// logical rank on the simulated timeline (the paper's Fig 2 view) and one
// track per OS thread on the wall timeline.
//
// Cost model: when tracing is disabled (the default) a TraceSpan costs one
// relaxed atomic load and performs no clock reads and no allocation, so
// instrumentation can stay compiled into every hot path.
//
// Span names and categories must be string literals (or otherwise outlive
// the tracer): records store the pointers, not copies.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace fftgrad::telemetry {

namespace detail {
/// Combined span-hook mask, read once (relaxed) by every TraceSpan. Each
/// bit is a consumer that wants span open/close callouts: the tracer
/// records timestamps, the host-time profiler mirrors the span stack for
/// sample attribution. Folding both into a single atomic preserves the
/// cost contract — a span with every consumer off is still exactly one
/// relaxed load. Maintained by Tracer::set_enabled and Profiler
/// start/stop.
inline constexpr std::uint32_t kSpanHookTrace = 1u;
inline constexpr std::uint32_t kSpanHookProfile = 2u;
extern std::atomic<std::uint32_t> g_span_hooks;
}  // namespace detail

/// One completed span. sim_* < 0 means "no simulated timestamp"; a zero
/// wall_end_ns means the record is simulated-timeline-only (emitted via
/// Tracer::record_sim_span).
struct SpanRecord {
  const char* name = nullptr;      ///< static storage required
  const char* category = nullptr;  ///< static storage required
  std::uint64_t wall_start_ns = 0;
  std::uint64_t wall_end_ns = 0;
  double sim_start_s = -1.0;
  double sim_end_s = -1.0;
  std::int32_t rank = -1;       ///< logical rank (simulated track); -1 = none
  std::uint32_t thread = 0;     ///< per-process thread registration index
  std::uint32_t sim_session = 0;  ///< simulated run this span belongs to
  /// Training iteration the span belongs to (-1: outside any iteration).
  /// Filled from the thread's ScopedIteration tag when the caller leaves it
  /// unset, so collective spans opened inside the trainer loop are
  /// segmentable per iteration without timestamp heuristics.
  std::int64_t iteration = -1;
  std::int64_t op = -1;   ///< collective op / barrier generation; -1 = none
  std::int32_t peer = -1;  ///< peer rank the span is attributed to; -1 = none
};

class Tracer {
 public:
  /// Process-wide tracer. Thread buffers registered with it outlive their
  /// threads, so export after a SimCluster run sees every rank's spans.
  static Tracer& global();

  /// Also maintains the shared span-hook mask (detail::g_span_hooks).
  void set_enabled(bool enabled);
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Append a finished span to the calling thread's buffer.
  void record(const SpanRecord& record);

  /// Append a simulated-timeline-only span with explicit timestamps, for
  /// callers (the sequential DistributedTrainer, SimCluster's charged-time
  /// segments) that model many logical ranks from one thread. `op` tags the
  /// collective / barrier the span belongs to and `peer` the rank the time
  /// is attributed to (e.g. the faulted sender of a retransmission); both
  /// default to "none". No-op when disabled.
  void record_sim_span(std::int32_t rank, const char* name, const char* category,
                       double sim_start_s, double sim_end_s, std::int64_t op = -1,
                       std::int32_t peer = -1);

  /// Start a new simulated run. Every simulation begins its clocks at zero,
  /// so spans from consecutive runs (e.g. training each algorithm in turn)
  /// would overlap if laid on one timeline; each session is exported as its
  /// own trace process instead. Returns the new session id.
  std::uint32_t begin_sim_session() {
    return sim_session_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  std::uint32_t current_sim_session() const {
    return sim_session_.load(std::memory_order_relaxed);
  }

  /// Write everything recorded so far as Chrome trace-event JSON. Returns
  /// false (and logs a warning) if the file cannot be written.
  bool export_chrome_json(const std::string& path);

  /// Copy of every span recorded so far (all threads' published prefixes),
  /// for in-process consumers — the critical-path analyzer — that need the
  /// records rather than the exported JSON.
  std::vector<SpanRecord> snapshot() const;

  /// Drop all recorded spans (buffers are kept for their threads).
  void clear();

  struct Stats {
    std::size_t threads = 0;  ///< thread buffers ever registered
    std::size_t spans = 0;    ///< spans currently recorded
  };
  Stats stats() const;

  /// Nanoseconds since the tracer's epoch (first use in the process).
  std::uint64_t wall_now_ns() const;

 private:
  Tracer();
  friend class ScopedRank;

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint32_t> sim_session_{0};
};

/// RAII span: opens at construction, records at destruction.
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* category);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  const char* category_;
  std::uint64_t wall_start_ns_ = 0;
  double sim_start_s_ = -1.0;
  bool armed_ = false;   ///< tracer hook: record a SpanRecord at close
  bool pushed_ = false;  ///< profiler hook: pop the mirrored span at close
};

/// Tags every span the calling thread records (including spans opened by
/// SimCluster collectives called from the scope) with a training-iteration
/// index, restoring the previous tag on destruction. Nesting is allowed;
/// the innermost scope wins.
class ScopedIteration {
 public:
  explicit ScopedIteration(std::int64_t iteration);
  ~ScopedIteration();

  ScopedIteration(const ScopedIteration&) = delete;
  ScopedIteration& operator=(const ScopedIteration&) = delete;

 private:
  std::int64_t previous_iteration_;
};

/// Binds the calling thread to a logical rank and (optionally) a simulated
/// clock for the scope's lifetime: spans opened while bound carry the rank
/// and sample *sim_time_s at open/close. Pass nullptr to bind a rank with
/// no simulated clock. The pointed-to double must outlive the scope.
class ScopedRank {
 public:
  ScopedRank(std::int32_t rank, const double* sim_time_s);
  ~ScopedRank();

  ScopedRank(const ScopedRank&) = delete;
  ScopedRank& operator=(const ScopedRank&) = delete;

 private:
  std::int32_t previous_rank_;
  const double* previous_sim_time_;
};

}  // namespace fftgrad::telemetry
