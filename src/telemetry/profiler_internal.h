// Shared internals of the host-time sampling profiler: the sample layout,
// the per-thread SPSC ring, and the per-thread state the SIGPROF handler
// reads. Split from profiler.cpp so the async-signal-safe code can live in
// its own translation unit (profiler_signal.cpp), which fftgrad_lint's
// `async-signal-unsafe-call` rule audits token-by-token — no allocation,
// stdio, locks, logging, or exceptions may appear there.
//
// Everything in this header must stay usable from a signal handler:
// constant-initializable thread_local state (no TLS guard check on
// access), lock-free atomics, fixed-size arrays, no owning containers.
#pragma once

#include <atomic>
#include <csignal>
#include <cstdint>

namespace fftgrad::telemetry::prof {

/// Deepest stack captured per sample (leaf-first). Deeper frames are
/// counted in g_stacks_truncated instead of silently vanishing.
inline constexpr std::uint32_t kMaxFrames = 32;

/// Frames backtrace() sees above the interrupted code: the handler itself
/// and the kernel's signal-return trampoline (__restore_rt on Linux).
inline constexpr std::uint32_t kHandlerFrames = 2;

/// Span-stack depth mirrored for attribution. Spans nested deeper than
/// this keep counting (push/pop stay balanced) but attribute to the
/// deepest stored ancestor.
inline constexpr std::uint32_t kMaxSpanDepth = 16;

/// Slots per thread ring; power of two so head % capacity stays cheap.
/// At the default 97 Hz of process CPU time this is minutes of headroom
/// between collector drains; overflow drops samples (counted), never
/// blocks the handler.
inline constexpr std::uint64_t kRingCapacity = 4096;

/// One stack sample, written by the handler, read by the collector.
struct Sample {
  void* pcs[kMaxFrames];  ///< program counters, leaf-first
  std::uint32_t frames = 0;
  std::int32_t rank = -1;             ///< logical rank bound via ScopedRank
  const char* span_name = nullptr;    ///< innermost active span (literal)
  const char* span_category = nullptr;
};

/// Single-producer single-consumer ring: the producer is the SIGPROF
/// handler running *on the owning thread*, the consumer is the collector
/// thread. head/tail are monotonic; (head - tail) is the fill level.
struct SampleRing {
  Sample slots[kRingCapacity];
  std::atomic<std::uint64_t> head{0};     ///< written by the handler
  std::atomic<std::uint64_t> tail{0};     ///< written by the collector
  std::atomic<std::uint64_t> dropped{0};  ///< samples lost to a full ring
};

/// Per-thread state the handler reads. The span stack and rank are plain
/// (non-atomic) fields: they are only ever written by the owning thread,
/// and the handler runs on that same thread, so std::atomic_signal_fence
/// ordering is sufficient. `ring` is atomic because the profiler installs
/// it from another thread at start().
struct ThreadProfState {
  std::atomic<SampleRing*> ring{nullptr};
  std::uint32_t registered = 0;  ///< set once by register_current_thread()
  std::int32_t rank = -1;
  std::uint32_t depth = 0;
  const char* span_names[kMaxSpanDepth] = {};
  const char* span_categories[kMaxSpanDepth] = {};
};

// --- implemented in profiler_signal.cpp (the audited TU) -------------------

/// The calling thread's profiler state (constant-initialized thread_local).
ThreadProfState& thread_state();

/// Span-stack maintenance, called from TraceSpan when the profile span
/// hook is armed. Owning-thread only; async-signal-safe.
void push_span(const char* name, const char* category);
void pop_span();

/// Mirror the ScopedRank binding for sample attribution. Owning-thread
/// only; cheap enough to call unconditionally.
void set_rank(std::int32_t rank);

/// The SIGPROF handler. Installed once by Profiler::start() and left in
/// place forever (restoring a disposition while a signal is in flight
/// races with the default action, which terminates the process).
void sigprof_handler(int signum, siginfo_t* info, void* context);

/// Process-wide sample accounting, updated by the handler.
extern std::atomic<std::uint64_t> g_samples_taken;
extern std::atomic<std::uint64_t> g_stacks_truncated;

}  // namespace fftgrad::telemetry::prof
