// The Sec 3.3 analytic performance model.
//
// Given the measured throughputs of the four compression primitives
// (precision conversion Tm, FFT Tf, packing Tp, top-k selection Ts) and the
// network throughput Tcomm, the model predicts
//
//   cost_comp  = M * (2/Tm + 1/Tf + 1/Tp + 1/Ts)               (Eq. 1)
//   cost_comm  = (M / Tcomm) * (1/k)                           (Eq. 2)
//   saved      = (M / Tcomm) * (1 - 1/k)                       (Eq. 3)
//
// and the minimal compression ratio with a net benefit,
//
//   k > 1 / (1 - 2*Tcomm*(2/Tm + 1/Tf + 1/Tp + 1/Ts))          (Eq. 4)
//
// (compression + decompression must cost less than the saved communication,
// hence the factor 2). When the denominator is <= 0 no ratio helps — the
// network outruns the compression primitives, the regime the paper flags
// for fast InfiniBand with slow primitives.
//
// All throughputs are in bytes/second; message size M in bytes.
#pragma once

#include <optional>

namespace fftgrad::perfmodel {

struct PrimitiveThroughputs {
  double conversion = 350e9;  ///< Tm: float<->half and range quantization
  double fft = 180e9;         ///< Tf
  double packing = 34e9;      ///< Tp (paper: 34 GB/s measured on a V100)
  double selection = 35e9;    ///< Ts (bucket-select class kernels)
  /// Throughput of stochastic quantization kernels (per-element RNG +
  /// rounding), used by the QSGD/TernGrad baselines' cost models. Not part
  /// of Eq. 1 (the paper's pipeline has no stochastic stage).
  double stochastic = 10e9;
};

/// 1/Tm' aggregate of Eq. 1's parenthesised term (seconds per byte).
double seconds_per_byte(const PrimitiveThroughputs& t);

/// Eq. 1: one-sided compression cost for a message of `bytes`.
double compression_cost(double bytes, const PrimitiveThroughputs& t);

/// Eq. 2: post-compression communication cost.
double communication_cost(double bytes, double network_throughput, double ratio);

/// Eq. 3: communication saved relative to sending uncompressed.
double saved_communication(double bytes, double network_throughput, double ratio);

/// Eq. 4: minimal beneficial ratio, or nullopt when no finite ratio can
/// compensate for the compression cost on this network.
std::optional<double> min_beneficial_ratio(double network_throughput,
                                           const PrimitiveThroughputs& t);

/// End-to-end per-message time with compression (2x comp + compressed comm).
double total_time_with_compression(double bytes, double network_throughput, double ratio,
                                   const PrimitiveThroughputs& t);

/// Per-message time without compression.
double total_time_uncompressed(double bytes, double network_throughput);

/// Convenience: convert link speed in Gbit/s to bytes/s.
constexpr double gbps_to_bytes(double gbps) { return gbps * 1e9 / 8.0; }

}  // namespace fftgrad::perfmodel
