// The Sec 3.3 analytic performance model.
//
// Given the measured throughputs of the four compression primitives
// (precision conversion Tm, FFT Tf, packing Tp, top-k selection Ts) and the
// network throughput Tcomm, the model predicts
//
//   cost_comp  = M * (2/Tm + 1/Tf + 1/Tp + 1/Ts)               (Eq. 1)
//   cost_comm  = (M / Tcomm) * (1/k)                           (Eq. 2)
//   saved      = (M / Tcomm) * (1 - 1/k)                       (Eq. 3)
//
// and the minimal compression ratio with a net benefit,
//
//   k > 1 / (1 - 2*Tcomm*(2/Tm + 1/Tf + 1/Tp + 1/Ts))          (Eq. 4)
//
// (compression + decompression must cost less than the saved communication,
// hence the factor 2). When the denominator is <= 0 no ratio helps — the
// network outruns the compression primitives, the regime the paper flags
// for fast InfiniBand with slow primitives.
//
// Quantities are dimensionally typed (fftgrad/util/units.h): throughputs
// are BytesPerSecond, message sizes Bytes, predicted costs SimSeconds, and
// compression ratios Ratio — so feeding Eq. 2 a Gbit/s figure or a bit
// count is a compile error, not a 8x-wrong reconciliation row.
#pragma once

#include <optional>

#include "fftgrad/util/units.h"

namespace fftgrad::perfmodel {

using util::Bytes;
using util::BytesPerSecond;
using util::Ratio;
using util::SimSeconds;

struct PrimitiveThroughputs {
  BytesPerSecond conversion{350e9};  ///< Tm: float<->half and range quantization
  BytesPerSecond fft{180e9};         ///< Tf
  BytesPerSecond packing{34e9};      ///< Tp (paper: 34 GB/s measured on a V100)
  BytesPerSecond selection{35e9};    ///< Ts (bucket-select class kernels)
  /// Throughput of stochastic quantization kernels (per-element RNG +
  /// rounding), used by the QSGD/TernGrad baselines' cost models. Not part
  /// of Eq. 1 (the paper's pipeline has no stochastic stage).
  BytesPerSecond stochastic{10e9};
};

/// 1/Tm' aggregate of Eq. 1's parenthesised term (simulated seconds per
/// byte of input gradient).
double seconds_per_byte(const PrimitiveThroughputs& t);

/// Eq. 1: one-sided compression cost for a message of `size`.
SimSeconds compression_cost(Bytes size, const PrimitiveThroughputs& t);

/// Eq. 2: post-compression communication cost.
SimSeconds communication_cost(Bytes size, BytesPerSecond network_throughput, Ratio ratio);

/// Eq. 3: communication saved relative to sending uncompressed.
SimSeconds saved_communication(Bytes size, BytesPerSecond network_throughput, Ratio ratio);

/// Eq. 4: minimal beneficial ratio, or nullopt when no finite ratio can
/// compensate for the compression cost on this network.
std::optional<Ratio> min_beneficial_ratio(BytesPerSecond network_throughput,
                                          const PrimitiveThroughputs& t);

/// End-to-end per-message time with compression (2x comp + compressed comm).
SimSeconds total_time_with_compression(Bytes size, BytesPerSecond network_throughput,
                                       Ratio ratio, const PrimitiveThroughputs& t);

/// Per-message time without compression.
SimSeconds total_time_uncompressed(Bytes size, BytesPerSecond network_throughput);

/// Convenience: convert link speed in Gbit/s to the model's byte
/// throughput. The /8 bit-to-byte step happens here, in one typed place.
constexpr BytesPerSecond gbps_to_bytes(double gbps) {
  return BytesPerSecond(gbps * 1e9 / 8.0);
}

}  // namespace fftgrad::perfmodel
