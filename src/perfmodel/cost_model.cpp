#include "fftgrad/perfmodel/cost_model.h"

#include <stdexcept>

namespace fftgrad::perfmodel {

double seconds_per_byte(const PrimitiveThroughputs& t) {
  if (t.conversion <= 0 || t.fft <= 0 || t.packing <= 0 || t.selection <= 0) {
    throw std::invalid_argument("perfmodel: all primitive throughputs must be positive");
  }
  return 2.0 / t.conversion + 1.0 / t.fft + 1.0 / t.packing + 1.0 / t.selection;
}

double compression_cost(double bytes, const PrimitiveThroughputs& t) {
  return bytes * seconds_per_byte(t);
}

double communication_cost(double bytes, double network_throughput, double ratio) {
  if (network_throughput <= 0) throw std::invalid_argument("perfmodel: bad network throughput");
  if (ratio <= 0) throw std::invalid_argument("perfmodel: ratio must be positive");
  return bytes / network_throughput / ratio;
}

double saved_communication(double bytes, double network_throughput, double ratio) {
  if (network_throughput <= 0) throw std::invalid_argument("perfmodel: bad network throughput");
  if (ratio <= 0) throw std::invalid_argument("perfmodel: ratio must be positive");
  return bytes / network_throughput * (1.0 - 1.0 / ratio);
}

std::optional<double> min_beneficial_ratio(double network_throughput,
                                           const PrimitiveThroughputs& t) {
  if (network_throughput <= 0) throw std::invalid_argument("perfmodel: bad network throughput");
  const double denom = 1.0 - 2.0 * network_throughput * seconds_per_byte(t);
  if (denom <= 0.0) return std::nullopt;
  return 1.0 / denom;
}

double total_time_with_compression(double bytes, double network_throughput, double ratio,
                                   const PrimitiveThroughputs& t) {
  return 2.0 * compression_cost(bytes, t) + communication_cost(bytes, network_throughput, ratio);
}

double total_time_uncompressed(double bytes, double network_throughput) {
  if (network_throughput <= 0) throw std::invalid_argument("perfmodel: bad network throughput");
  return bytes / network_throughput;
}

}  // namespace fftgrad::perfmodel
