#include "fftgrad/perfmodel/cost_model.h"

#include <stdexcept>

namespace fftgrad::perfmodel {

namespace {
constexpr BytesPerSecond kZeroRate{0.0};
}  // namespace

double seconds_per_byte(const PrimitiveThroughputs& t) {
  if (t.conversion <= kZeroRate || t.fft <= kZeroRate || t.packing <= kZeroRate ||
      t.selection <= kZeroRate) {
    throw std::invalid_argument("perfmodel: all primitive throughputs must be positive");
  }
  return 2.0 / t.conversion.to_double() + 1.0 / t.fft.to_double() +
         1.0 / t.packing.to_double() + 1.0 / t.selection.to_double();
}

SimSeconds compression_cost(Bytes size, const PrimitiveThroughputs& t) {
  return SimSeconds(size.to_double() * seconds_per_byte(t));
}

SimSeconds communication_cost(Bytes size, BytesPerSecond network_throughput, Ratio ratio) {
  if (network_throughput <= kZeroRate) {
    throw std::invalid_argument("perfmodel: bad network throughput");
  }
  if (ratio <= Ratio(0.0)) throw std::invalid_argument("perfmodel: ratio must be positive");
  return (size / ratio) / network_throughput;
}

SimSeconds saved_communication(Bytes size, BytesPerSecond network_throughput, Ratio ratio) {
  if (network_throughput <= kZeroRate) {
    throw std::invalid_argument("perfmodel: bad network throughput");
  }
  if (ratio <= Ratio(0.0)) throw std::invalid_argument("perfmodel: ratio must be positive");
  return (size / network_throughput) * (1.0 - 1.0 / ratio.to_double());
}

std::optional<Ratio> min_beneficial_ratio(BytesPerSecond network_throughput,
                                          const PrimitiveThroughputs& t) {
  if (network_throughput <= kZeroRate) {
    throw std::invalid_argument("perfmodel: bad network throughput");
  }
  const double denom = 1.0 - 2.0 * network_throughput.to_double() * seconds_per_byte(t);
  if (denom <= 0.0) return std::nullopt;
  return Ratio(1.0 / denom);
}

SimSeconds total_time_with_compression(Bytes size, BytesPerSecond network_throughput,
                                       Ratio ratio, const PrimitiveThroughputs& t) {
  return 2.0 * compression_cost(size, t) +
         communication_cost(size, network_throughput, ratio);
}

SimSeconds total_time_uncompressed(Bytes size, BytesPerSecond network_throughput) {
  if (network_throughput <= kZeroRate) {
    throw std::invalid_argument("perfmodel: bad network throughput");
  }
  return size / network_throughput;
}

}  // namespace fftgrad::perfmodel
