#include "fftgrad/core/cluster_trainer.h"

#include <mutex>
#include <stdexcept>

#include "fftgrad/nn/loss.h"
#include "fftgrad/telemetry/trace.h"

namespace fftgrad::core {

ClusterTrainResult cluster_train(
    comm::SimCluster& cluster, const ClusterTrainConfig& config,
    const std::function<nn::Network()>& model_factory,
    const std::function<std::unique_ptr<GradientCompressor>(std::size_t)>& compressor_factory,
    const nn::SyntheticDataset& dataset) {
  if (config.ranks == 0) throw std::invalid_argument("cluster_train: ranks must be >= 1");

  ClusterTrainResult result;
  std::vector<std::vector<float>> final_params(config.ranks);
  std::vector<double> final_losses(config.ranks, 0.0);
  std::mutex result_mutex;

  const auto clocks = cluster.run(config.ranks, [&](comm::RankContext& ctx) {
    const std::size_t rank = ctx.rank();
    nn::Network model = model_factory();
    nn::SgdOptimizer optimizer(config.momentum);
    nn::SoftmaxCrossEntropy criterion;
    util::Rng batch_rng(config.seed * 7919 + rank);

    const std::size_t grad_size = model.param_count();
    std::vector<float> gradient(grad_size);
    std::vector<float> reconstructed(grad_size);
    std::vector<float> averaged(grad_size);
    std::unique_ptr<GradientCompressor> codec = compressor_factory(rank);
    if (!codec) throw std::logic_error("cluster_train: compressor factory returned null");

    double last_loss = 0.0;
    for (std::size_t iter = 0; iter < config.iterations; ++iter) {
      // SimCluster::run bound this thread to its rank track, so these
      // spans land per rank on the wall timeline (and the collective's
      // span inside allgather also lands on the simulated timeline).
      const nn::Batch batch = dataset.sample(config.batch_per_rank, batch_rng);
      model.zero_grad();
      {
        telemetry::TraceSpan span("forward", "trainer");
        last_loss = criterion.forward(model.forward(batch.inputs), batch.labels);
      }
      {
        telemetry::TraceSpan span("backward", "trainer");
        model.backward(criterion.backward());
        model.copy_gradients(gradient);
      }

      // Compress, allgather packets, decompress every peer, average.
      std::vector<std::uint8_t> wire;
      {
        telemetry::TraceSpan span("compress", "trainer");
        wire = wire::frame_packet(codec->compress(gradient));
      }
      const auto gathered = ctx.allgather(wire);

      std::fill(averaged.begin(), averaged.end(), 0.0f);
      const float inv_ranks = 1.0f / static_cast<float>(ctx.size());
      {
        telemetry::TraceSpan span("decompress", "trainer");
        for (const auto& peer_bytes : gathered) {
          const Packet peer = wire::unframe_packet(peer_bytes, grad_size);
          codec->decompress(peer, reconstructed);
          for (std::size_t i = 0; i < grad_size; ++i) {
            averaged[i] += reconstructed[i] * inv_ranks;
          }
        }
      }

      telemetry::TraceSpan apply_span("apply", "trainer");
      model.set_gradients(averaged);
      optimizer.step(model, config.learning_rate);
    }

    std::vector<float> params(grad_size);
    model.copy_params(params);
    {
      std::lock_guard<std::mutex> lock(result_mutex);
      final_params[rank] = std::move(params);
      final_losses[rank] = last_loss;
    }
  });

  result.rank_sim_times = clocks;
  result.final_params = final_params[0];
  result.replicas_identical = true;
  for (std::size_t r = 1; r < config.ranks; ++r) {
    if (final_params[r] != final_params[0]) result.replicas_identical = false;
  }
  double loss = 0.0;
  for (double l : final_losses) loss += l;
  result.mean_loss_last_iteration = loss / static_cast<double>(config.ranks);
  return result;
}

}  // namespace fftgrad::core
