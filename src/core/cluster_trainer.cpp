#include "fftgrad/core/cluster_trainer.h"

#include <cmath>
#include <limits>
#include <mutex>
#include <optional>
#include <stdexcept>

#include "fftgrad/analysis/causality.h"
#include "fftgrad/core/error_feedback.h"
#include "fftgrad/nn/loss.h"
#include "fftgrad/telemetry/ledger.h"
#include "fftgrad/telemetry/metrics.h"
#include "fftgrad/telemetry/trace.h"
#include "fftgrad/util/crc32.h"
#include "fftgrad/util/stats.h"
#include "fftgrad/util/timer.h"

namespace fftgrad::core {

ClusterTrainResult cluster_train(
    comm::SimCluster& cluster, const ClusterTrainConfig& config,
    const std::function<nn::Network()>& model_factory,
    const std::function<std::unique_ptr<GradientCompressor>(std::size_t)>& compressor_factory,
    const nn::SyntheticDataset& dataset) {
  if (config.ranks == 0) throw std::invalid_argument("cluster_train: ranks must be >= 1");

  ClusterTrainResult result;
  std::vector<std::vector<float>> final_params(config.ranks);
  std::vector<double> final_losses(config.ranks, 0.0);
  std::vector<char> finished(config.ranks, 0);
  std::vector<std::size_t> rank_skips(config.ranks, 0);
  std::vector<std::size_t> rank_degraded(config.ranks, 0);
  // losses[r][i]: rank r's loss at iteration i; NaN marks iterations a
  // crashed rank never reached. Rows are disjoint per thread.
  std::vector<std::vector<double>> losses(
      config.ranks,
      std::vector<double>(config.iterations, std::numeric_limits<double>::quiet_NaN()));
  std::mutex result_mutex;

  telemetry::Counter& peers_skipped =
      telemetry::MetricsRegistry::global().counter("trainer.peers_skipped");
  telemetry::Counter& degraded_iters =
      telemetry::MetricsRegistry::global().counter("trainer.degraded_iterations");

  const auto clocks = cluster.run(config.ranks, [&](comm::RankContext& ctx) {
    const std::size_t rank = ctx.rank();
    analysis::CausalityTracker& causality = cluster.causality();
    nn::Network model = model_factory();
    nn::SgdOptimizer optimizer(config.momentum);
    nn::SoftmaxCrossEntropy criterion;
    util::Rng batch_rng(config.seed * 7919 + rank);

    const std::size_t grad_size = model.param_count();
    std::vector<float> gradient(grad_size);
    std::vector<float> reconstructed(grad_size);
    std::vector<float> averaged(grad_size);
    std::unique_ptr<GradientCompressor> codec = compressor_factory(rank);
    if (!codec) throw std::logic_error("cluster_train: compressor factory returned null");

    // Rank 0 is the ledger's designated recorder: one manifest per
    // cluster.run(), one iteration row per step (SimCluster's collective
    // hooks buffer the predicted-vs-charged pairings in between).
    telemetry::RunLedger& ledger = telemetry::RunLedger::global();
    const bool ledger_on = rank == 0 && ledger.enabled();
    std::vector<nn::ParamSegment> layout;
    if (ledger_on) {
      telemetry::LedgerManifest manifest;
      manifest.trainer = "cluster_train";
      manifest.compressor = codec->name();
      manifest.ranks = config.ranks;
      manifest.iterations = config.iterations;
      manifest.seed = config.seed;
      const comm::NetworkModel& net = cluster.network();
      manifest.network = {net.name, net.latency_s, net.bandwidth_bytes_s, net.loss_rate};
      manifest.fault_rate = cluster.faults().attempt_failure_prob();
      ledger.begin_run(manifest);
      layout = model.param_layout();
    }

    // Modelled compute: charge the phase's seconds to the simulated clock
    // and emit the matching critical-path leaf span. Charges sit outside
    // the wall-timing TraceSpans so wall measurements stay untouched.
    const SimComputeModel* compute_model =
        config.sim_compute.has_value() ? &*config.sim_compute : nullptr;
    const auto charge = [&](const char* phase, util::SimSeconds seconds) {
      if (compute_model == nullptr || seconds <= util::SimSeconds(0.0)) return;
      const util::SimSeconds start = ctx.clock().time();
      ctx.clock().advance(seconds);
      telemetry::Tracer::global().record_sim_span(static_cast<std::int32_t>(rank), phase,
                                                  "cp", start.to_double(),
                                                  ctx.clock().time().to_double());
    };

    double last_loss = 0.0;
    for (std::size_t iter = 0; iter < config.iterations; ++iter) {
      // Every span and causality edge this thread records during the step
      // (including inside SimCluster's collectives) carries the iteration.
      telemetry::ScopedIteration iteration_scope(static_cast<std::int64_t>(iter));
      const std::size_t skips_at_entry = rank_skips[rank];
      telemetry::LedgerIteration row;
      util::WallSeconds forward_s{};
      util::WallSeconds backward_s{};
      util::WallSeconds compress_s{};
      util::WallSeconds decompress_s{};
      // SimCluster::run bound this thread to its rank track, so these
      // spans land per rank on the wall timeline (and the collective's
      // span inside allgather also lands on the simulated timeline).
      const nn::Batch batch = dataset.sample(config.batch_per_rank, batch_rng);
      model.zero_grad();
      {
        telemetry::TraceSpan span("forward", "trainer");
        util::WallTimer timer;
        last_loss = criterion.forward(model.forward(batch.inputs), batch.labels);
        forward_s = timer.elapsed();
      }
      if (compute_model != nullptr) charge("forward", compute_model->forward_s);
      losses[rank][iter] = last_loss;
      {
        telemetry::TraceSpan span("backward", "trainer");
        util::WallTimer timer;
        model.backward(criterion.backward());
        model.copy_gradients(gradient);
        backward_s = timer.elapsed();
      }
      if (compute_model != nullptr) charge("backward", compute_model->backward_s);

      // Compress, allgather packets, decompress every peer, average. In
      // analysis builds the frame carries the causality trailer (sender
      // clock + collective epoch) so the happens-before evidence travels
      // with the bytes and is re-verified from what actually arrived.
      std::vector<std::uint8_t> wire;
      {
        telemetry::TraceSpan span("compress", "trainer");
        util::WallTimer timer;
        std::vector<std::uint8_t> trailer;
        if (causality.active()) {
          trailer =
              analysis::encode_trailer(causality.make_trailer(rank, ctx.op_index()));
        }
        const Packet packet = codec->compress(gradient);
        if (ledger_on) {
          row.grad_norm = util::l2_norm(gradient);
          row.ratio = packet.ratio();
        }
        wire = wire::frame_packet(packet, trailer);
        compress_s = timer.elapsed();
      }
      if (compute_model != nullptr) {
        charge("fft", compute_model->fft_s);
        charge("quant_pack", compute_model->quant_pack_s);
        charge("wire_crc", compute_model->wire_crc_s);
      }
      const auto gathered = ctx.allgather(wire);

      // Unframe first (this is where the CRC rejects corrupted packets and
      // empty blocks mark dropped/late/crashed peers), so the surviving
      // count — and thus the renormalized average — is known before any
      // accumulation. Every rank sees identical bytes, so every rank skips
      // the identical peers and replicas stay bit-identical.
      std::vector<std::optional<wire::WireFrame>> frames(gathered.size());
      std::size_t decoded = 0;
      for (std::size_t r = 0; r < gathered.size(); ++r) {
        if (gathered[r].empty()) {
          ++rank_skips[rank];
          peers_skipped.add(1.0);
          continue;
        }
        try {
          // Receiver-side expectation on top of the structural checks: the
          // peer's packet must describe exactly this model's element count
          // (a TaintError here degrades like any other undecodable packet).
          frames[r] = std::move(wire::unframe_frame(gathered[r], grad_size))
                          .release(
                              [&](const wire::WireFrame& frame) {
                                return frame.packet.elements == grad_size;
                              },
                              "peer gradient frame");
          ++decoded;
        } catch (const std::exception&) {
          ++rank_skips[rank];
          peers_skipped.add(1.0);
        }
      }

      // Re-verify the received causality trailers: the sender's publish
      // must happen-before this read and carry this collective's epoch.
      // A trailer that survived the CRC but fails to parse is itself a
      // protocol violation, not a degradation case.
      if (causality.active()) {
        const std::uint64_t epoch = ctx.op_index() - 1;  // the allgather above
        for (std::size_t r = 0; r < frames.size(); ++r) {
          if (!frames[r] || frames[r]->trailer.empty()) continue;
          try {
            // The trailer must claim the sender slot it arrived in and
            // carry one clock component per cluster rank; anything else is
            // a protocol violation reported below.
            const analysis::AnalysisTrailer trailer =
                std::move(analysis::decode_trailer(frames[r]->trailer))
                    .release(
                        [&](const analysis::AnalysisTrailer& t) {
                          return t.sender == r && t.clock.size() == config.ranks;
                        },
                        "causality trailer");
            causality.verify_trailer(rank, r, trailer, epoch);
          } catch (const std::exception& error) {
            analysis::report_violation("causality", std::string("iteration ") +
                                                        std::to_string(iter) +
                                                        ": undecodable analysis trailer "
                                                        "from rank " +
                                                        std::to_string(r) + ": " +
                                                        error.what());
          }
        }
      }

      std::fill(averaged.begin(), averaged.end(), 0.0f);
      if (decoded > 0) {
        const float inv_decoded = 1.0f / static_cast<float>(decoded);
        telemetry::TraceSpan span("decompress", "trainer");
        util::WallTimer timer;
        for (std::size_t r = 0; r < frames.size(); ++r) {
          if (!frames[r]) continue;
          try {
            codec->decompress(frames[r]->packet, reconstructed);
          } catch (const std::exception&) {
            // Payload passed the CRC but the codec still rejected it
            // (vanishingly rare); drop the contribution, keep the step.
            ++rank_skips[rank];
            peers_skipped.add(1.0);
            continue;
          }
          if (ledger_on && r == rank) {
            // Round-trip quality of this rank's own gradient: the block it
            // sent came back through the full compress/wire/decompress
            // path, so (gradient, reconstructed) is exactly the paper's
            // Assumption-3.2 pair.
            const std::span<const float> truth(gradient);
            const std::span<const float> recon(reconstructed);
            row.alpha = util::relative_error_alpha(truth, recon);
            row.rms_error = util::rms_error(truth, recon);
            for (std::size_t i = 0; i < grad_size; ++i) {
              row.max_error = std::max(
                  row.max_error, static_cast<double>(std::fabs(gradient[i] - reconstructed[i])));
            }
            row.layers.reserve(layout.size());
            for (const nn::ParamSegment& seg : layout) {
              row.layers.push_back(
                  {seg.name,
                   util::relative_error_alpha(truth.subspan(seg.offset, seg.count),
                                              recon.subspan(seg.offset, seg.count)),
                   util::rms_error(truth.subspan(seg.offset, seg.count),
                                   recon.subspan(seg.offset, seg.count)),
                   0.0});
              for (std::size_t i = seg.offset; i < seg.offset + seg.count; ++i) {
                row.layers.back().max_error =
                    std::max(row.layers.back().max_error,
                             static_cast<double>(std::fabs(gradient[i] - reconstructed[i])));
              }
            }
          }
          for (std::size_t i = 0; i < grad_size; ++i) {
            averaged[i] += reconstructed[i] * inv_decoded;
          }
        }
        decompress_s = timer.elapsed();
      }
      if (compute_model != nullptr && decoded > 0) {
        charge("inverse_fft", compute_model->inverse_fft_s);
        charge("dequant", compute_model->dequant_s);
      }
      if (decoded < gathered.size()) {
        ++rank_degraded[rank];
        degraded_iters.add(1.0);
      }

      if (decoded > 0) {
        {
          telemetry::TraceSpan apply_span("apply", "trainer");
          model.set_gradients(averaged);
          optimizer.step(model, config.learning_rate);
        }
        if (compute_model != nullptr) charge("apply", compute_model->apply_s);
      }

      // Cross-rank state-hash agreement: surviving replicas must hold
      // bit-identical parameters after every step, so a logical race is
      // caught at the iteration that caused it rather than as mysterious
      // end-of-run divergence. `reconstructed` is dead until the next
      // decompress, so it doubles as the hash scratch buffer.
      if (causality.active()) {
        model.copy_params(reconstructed);
        const std::uint32_t hash = util::crc32(std::span<const std::uint8_t>(
            reinterpret_cast<const std::uint8_t*>(reconstructed.data()),
            reconstructed.size() * sizeof(float)));
        causality.check_agreement("trainer.state_hash", rank, iter, hash);
      }

      if (ledger_on) {
        row.iteration = iter;
        row.loss = last_loss;
        row.sim_time_s = ctx.clock().time();
        row.forward_s = forward_s;
        row.backward_s = backward_s;
        row.compress_s = compress_s;
        row.decompress_s = decompress_s;
        row.wire_bytes = util::byte_count(wire.size());
        row.skipped_peers = rank_skips[rank] - skips_at_entry;
        if (const auto* ef = dynamic_cast<const ErrorFeedbackCompressor*>(codec.get())) {
          row.ef_residual_norm = util::l2_norm(ef->residual());
        }
        ledger.end_iteration(row);
      }
    }
    if (ledger_on) ledger.end_run();

    std::vector<float> params(grad_size);
    model.copy_params(params);
    {
      std::lock_guard<std::mutex> lock(result_mutex);
      final_params[rank] = std::move(params);
      final_losses[rank] = last_loss;
      finished[rank] = 1;
    }
  });

  result.rank_sim_times = clocks;

  // Result aggregation over the ranks that survived to the end. A crashed
  // rank never reaches the result block above, so `finished` doubles as
  // the survivor mask even if the cluster carried no FaultPlan.
  std::size_t first_survivor = config.ranks;
  std::size_t survivors = 0;
  double loss = 0.0;
  for (std::size_t r = 0; r < config.ranks; ++r) {
    if (finished[r] == 0) continue;
    if (first_survivor == config.ranks) first_survivor = r;
    ++survivors;
    loss += final_losses[r];
  }
  result.crashed_ranks = config.ranks - survivors;
  if (survivors == 0) {
    result.replicas_identical = false;
    return result;
  }
  // Every rank observes the identical skip set (faults are keyed by
  // sender), so one survivor's counts are the canonical per-rank view.
  result.skipped_contributions = rank_skips[first_survivor];
  result.degraded_iterations = rank_degraded[first_survivor];
  result.final_params = final_params[first_survivor];
  result.replicas_identical = true;
  for (std::size_t r = first_survivor + 1; r < config.ranks; ++r) {
    if (finished[r] != 0 && final_params[r] != final_params[first_survivor]) {
      result.replicas_identical = false;
    }
  }
  result.mean_loss_last_iteration = loss / static_cast<double>(survivors);

  result.mean_loss_trace.assign(config.iterations, 0.0);
  for (std::size_t i = 0; i < config.iterations; ++i) {
    double sum = 0.0;
    std::size_t live = 0;
    for (std::size_t r = 0; r < config.ranks; ++r) {
      if (std::isnan(losses[r][i])) continue;
      sum += losses[r][i];
      ++live;
    }
    result.mean_loss_trace[i] = live == 0 ? std::numeric_limits<double>::quiet_NaN()
                                          : sum / static_cast<double>(live);
  }
  return result;
}

}  // namespace fftgrad::core
