#include "fftgrad/core/cluster_trainer.h"

#include <cmath>
#include <limits>
#include <optional>
#include <stdexcept>

#include "fftgrad/analysis/causality.h"
#include "fftgrad/core/error_feedback.h"
#include "fftgrad/core/registry.h"
#include "fftgrad/nn/loss.h"
#include "fftgrad/telemetry/ledger.h"
#include "fftgrad/telemetry/metrics.h"
#include "fftgrad/telemetry/trace.h"
#include "fftgrad/util/annotated_mutex.h"
#include "fftgrad/util/crc32.h"
#include "fftgrad/util/stats.h"
#include "fftgrad/util/timer.h"

namespace fftgrad::core {
namespace {

/// Bounded retries for one rejoin state transfer. The transfer fate is
/// cluster-agreed (peer_transfer's `ok`), so every rank gives up together.
constexpr std::size_t kRejoinTransferAttempts = 8;

/// Everything a rejoining rank cannot reconstruct locally, shipped from the
/// handshake's donor as the payload of a CRC-framed wire packet. The
/// residuals are the donor's (the rejoiner's own were lost with its stack);
/// they only shape what the rejoiner *sends*, so replica identity — which
/// rests on params and momentum — is exact.
struct RejoinState {
  std::uint64_t iteration = 0;  ///< the iteration the survivors are entering
  std::vector<float> params;
  std::vector<std::vector<float>> velocity;
  std::vector<float> residual;  ///< donor's EF residual ({} if no EF codec)
  double theta = 0.0;           ///< donor codec's current theta
  bool fallback_active = false;  ///< lossless-codec fallback already applied
  std::vector<std::uint8_t> controller_state;  ///< RecoveryController sync
  // Donor's rollback snapshot, so a rollback decided before the rejoiner's
  // next snapshot point restores the same weights everywhere.
  bool has_snapshot = false;
  std::uint64_t snapshot_iteration = 0;
  std::vector<float> snapshot_params;
  std::vector<std::vector<float>> snapshot_velocity;
  std::vector<float> snapshot_residual;
};

void put_floats(std::vector<std::uint8_t>& blob, std::span<const float> values) {
  wire::put<std::uint64_t>(blob, values.size());
  wire::put_span<float>(blob, values);
}

void put_buffers(std::vector<std::uint8_t>& blob,
                 const std::vector<std::vector<float>>& buffers) {
  wire::put<std::uint64_t>(blob, buffers.size());
  for (const std::vector<float>& buffer : buffers) put_floats(blob, buffer);
}

std::vector<float> get_floats(wire::Reader& reader) {
  std::vector<float> values(reader.get_count(sizeof(float)));
  reader.get_span<float>(values);
  return values;
}

std::vector<std::vector<float>> get_buffers(wire::Reader& reader) {
  std::vector<std::vector<float>> buffers(reader.get_count(sizeof(std::uint64_t)));
  for (std::vector<float>& buffer : buffers) buffer = get_floats(reader);
  return buffers;
}

std::vector<std::uint8_t> serialize_rejoin_state(const RejoinState& state) {
  std::vector<std::uint8_t> blob;
  wire::put<std::uint64_t>(blob, state.iteration);
  put_floats(blob, state.params);
  put_buffers(blob, state.velocity);
  put_floats(blob, state.residual);
  wire::put<double>(blob, state.theta);
  wire::put<std::uint8_t>(blob, state.fallback_active ? 1 : 0);
  wire::put<std::uint64_t>(blob, state.controller_state.size());
  wire::put_span<std::uint8_t>(blob, state.controller_state);
  wire::put<std::uint8_t>(blob, state.has_snapshot ? 1 : 0);
  if (state.has_snapshot) {
    wire::put<std::uint64_t>(blob, state.snapshot_iteration);
    put_floats(blob, state.snapshot_params);
    put_buffers(blob, state.snapshot_velocity);
    put_floats(blob, state.snapshot_residual);
  }
  return blob;
}

/// Throws std::runtime_error on truncation (the outer frame CRC has already
/// rejected corruption, so this only fires on a protocol bug).
RejoinState parse_rejoin_state(std::span<const std::uint8_t> blob) {
  wire::Reader reader(blob);
  RejoinState state;
  state.iteration = reader.get<std::uint64_t>();
  state.params = get_floats(reader);
  state.velocity = get_buffers(reader);
  state.residual = get_floats(reader);
  state.theta = reader.get<double>();
  state.fallback_active = reader.get<std::uint8_t>() != 0;
  state.controller_state.resize(reader.get_count(1));
  reader.get_span<std::uint8_t>(state.controller_state);
  state.has_snapshot = reader.get<std::uint8_t>() != 0;
  if (state.has_snapshot) {
    state.snapshot_iteration = reader.get<std::uint64_t>();
    state.snapshot_params = get_floats(reader);
    state.snapshot_velocity = get_buffers(reader);
    state.snapshot_residual = get_floats(reader);
  }
  return state;
}

}  // namespace

ClusterTrainResult cluster_train(
    comm::SimCluster& cluster, const ClusterTrainConfig& config,
    const std::function<nn::Network()>& model_factory,
    const std::function<std::unique_ptr<GradientCompressor>(std::size_t)>& compressor_factory,
    const nn::SyntheticDataset& dataset) {
  if (config.ranks == 0) throw std::invalid_argument("cluster_train: ranks must be >= 1");

  ClusterTrainResult result;
  std::vector<std::vector<float>> final_params(config.ranks);
  std::vector<double> final_losses(config.ranks, 0.0);
  std::vector<char> finished(config.ranks, 0);
  std::vector<std::size_t> rank_skips(config.ranks, 0);
  std::vector<std::size_t> rank_degraded(config.ranks, 0);
  std::vector<std::size_t> rank_remediations(config.ranks, 0);
  // losses[r][i]: rank r's loss at iteration i; NaN marks iterations a
  // crashed rank never reached. Rows are disjoint per thread.
  std::vector<std::vector<double>> losses(
      config.ranks,
      std::vector<double>(config.iterations, std::numeric_limits<double>::quiet_NaN()));
  util::Mutex result_mutex;

  telemetry::Counter& peers_skipped =
      telemetry::MetricsRegistry::global().counter("trainer.peers_skipped");
  telemetry::Counter& degraded_iters =
      telemetry::MetricsRegistry::global().counter("trainer.degraded_iterations");

  const comm::FaultPlan& plan = cluster.faults();
  const bool recovery_enabled = config.recovery.enabled;

  const auto clocks = cluster.run(config.ranks, [&](comm::RankContext& ctx) {
    const std::size_t rank = ctx.rank();
    analysis::CausalityTracker& causality = cluster.causality();
    nn::Network model = model_factory();
    nn::SgdOptimizer optimizer(config.momentum);
    nn::SoftmaxCrossEntropy criterion;
    util::Rng batch_rng(config.seed * 7919 + rank);

    const std::size_t grad_size = model.param_count();
    std::vector<float> gradient(grad_size);
    std::vector<float> reconstructed(grad_size);
    std::vector<float> averaged(grad_size);
    std::unique_ptr<GradientCompressor> codec = compressor_factory(rank);
    if (!codec) throw std::logic_error("cluster_train: compressor factory returned null");

    // Rank 0 is the ledger's designated recorder: one manifest per
    // cluster.run(), one iteration row per step (SimCluster's collective
    // hooks buffer the predicted-vs-charged pairings in between).
    telemetry::RunLedger& ledger = telemetry::RunLedger::global();
    const bool ledger_on = rank == 0 && ledger.enabled();
    std::vector<nn::ParamSegment> layout;
    if (ledger_on) {
      telemetry::LedgerManifest manifest;
      manifest.trainer = "cluster_train";
      manifest.compressor = codec->name();
      manifest.ranks = config.ranks;
      manifest.iterations = config.iterations;
      manifest.seed = config.seed;
      const comm::NetworkModel& net = cluster.network();
      manifest.network = {net.name, net.latency_s, net.bandwidth_bytes_s, net.loss_rate};
      manifest.fault_rate = cluster.faults().attempt_failure_prob();
      ledger.begin_run(manifest);
      layout = model.param_layout();
    }

    // Modelled compute: charge the phase's seconds to the simulated clock
    // and emit the matching critical-path leaf span. Charges sit outside
    // the wall-timing TraceSpans so wall measurements stay untouched.
    const SimComputeModel* compute_model =
        config.sim_compute.has_value() ? &*config.sim_compute : nullptr;
    const auto charge = [&](const char* phase, util::SimSeconds seconds) {
      if (compute_model == nullptr || seconds <= util::SimSeconds(0.0)) return;
      const util::SimSeconds start = ctx.clock().time();
      ctx.clock().advance(seconds);
      telemetry::Tracer::global().record_sim_span(static_cast<std::int32_t>(rank), phase,
                                                  "cp", start.to_double(),
                                                  ctx.clock().time().to_double());
    };

    const auto ef_codec = [&]() {
      return dynamic_cast<ErrorFeedbackCompressor*>(codec.get());
    };

    // ---- Elastic-recovery state -------------------------------------------
    RecoveryController recovery(config.recovery);
    // In-memory rollback snapshot, refreshed every snapshot_every
    // iterations at the same points on every rank.
    struct Snapshot {
      bool valid = false;
      std::uint64_t iteration = 0;
      std::vector<float> params;
      std::vector<std::vector<float>> velocity;
      std::vector<float> residual;
    } snapshot;

    const auto take_snapshot = [&](std::uint64_t iter) {
      snapshot.valid = true;
      snapshot.iteration = iter;
      snapshot.params.resize(grad_size);
      model.copy_params(snapshot.params);
      snapshot.velocity = optimizer.velocity();
      if (const auto* ef = ef_codec()) {
        snapshot.residual.assign(ef->residual().begin(), ef->residual().end());
      }
    };
    const auto restore_snapshot = [&]() {
      if (!snapshot.valid) return;  // nothing captured yet (consistent everywhere)
      model.set_params(snapshot.params);
      optimizer.set_velocity(snapshot.velocity);
      if (auto* ef = ef_codec(); ef != nullptr && !snapshot.residual.empty()) {
        ef->set_residual(snapshot.residual);
      }
    };

    // Donor side of the rejoin handshake: pack the full replica state the
    // rejoiner needs into one CRC-framed packet.
    const auto make_rejoin_blob = [&](std::uint64_t iter) {
      RejoinState state;
      state.iteration = iter;
      state.params.resize(grad_size);
      model.copy_params(state.params);
      state.velocity = optimizer.velocity();
      if (const auto* ef = ef_codec()) {
        state.residual.assign(ef->residual().begin(), ef->residual().end());
      }
      state.theta = codec->theta();
      state.fallback_active = recovery.fallback_active();
      if (recovery_enabled) state.controller_state = recovery.save_decision_state();
      state.has_snapshot = snapshot.valid;
      if (snapshot.valid) {
        state.snapshot_iteration = snapshot.iteration;
        state.snapshot_params = snapshot.params;
        state.snapshot_velocity = snapshot.velocity;
        state.snapshot_residual = snapshot.residual;
      }
      Packet packet;
      packet.bytes = serialize_rejoin_state(state);
      packet.elements = grad_size;
      return wire::frame_packet(packet);
    };

    // One peer_transfer per cohort member, donor -> rejoiner, with a
    // bounded cluster-agreed retry loop. All live ranks (including the
    // just-admitted cohort) participate in every transfer op; when this
    // rank is the receiver the framed blob lands in `received`.
    const auto run_transfers = [&](const std::vector<std::size_t>& cohort,
                                   std::uint64_t iter,
                                   std::vector<std::uint8_t>* received) {
      const std::size_t donor = ctx.rejoin_donor();
      std::vector<std::uint8_t> blob;
      if (rank == donor) blob = make_rejoin_blob(iter);
      for (std::size_t r : cohort) {
        bool delivered = false;
        for (std::size_t attempt = 0;
             attempt < kRejoinTransferAttempts && !delivered; ++attempt) {
          auto transfer = ctx.peer_transfer(blob, donor, r);
          delivered = transfer.ok;
          if (delivered && r == rank && received != nullptr) {
            *received = std::move(transfer.bytes);
          }
        }
        if (!delivered) {
          // The fate is cluster-agreed, so every rank throws together and
          // the run fails loudly instead of diverging.
          throw std::runtime_error("cluster_train: rejoin state transfer to rank " +
                                   std::to_string(r) + " failed after " +
                                   std::to_string(kRejoinTransferAttempts) + " attempts");
        }
      }
    };

    // Receiver side: install the donor's state and fast-forward the local
    // batch stream to the group's iteration. Returns that iteration.
    const auto restore_from_blob = [&](const std::vector<std::uint8_t>& framed) {
      const wire::WireFrame frame =
          std::move(wire::unframe_frame(framed, grad_size))
              .release(
                  [&](const wire::WireFrame& f) { return f.packet.elements == grad_size; },
                  "rejoin state frame");
      const RejoinState state = parse_rejoin_state(frame.packet.bytes);
      model.set_params(state.params);
      optimizer.set_velocity(state.velocity);
      if (state.fallback_active) {
        codec = make_compressor("none");
      } else {
        codec->set_theta(state.theta);
      }
      if (auto* ef = ef_codec(); ef != nullptr && !state.residual.empty()) {
        ef->set_residual(state.residual);
      }
      if (recovery_enabled) recovery.load_decision_state(state.controller_state);
      snapshot.valid = state.has_snapshot;
      if (state.has_snapshot) {
        snapshot.iteration = state.snapshot_iteration;
        snapshot.params = state.snapshot_params;
        snapshot.velocity = state.snapshot_velocity;
        snapshot.residual = state.snapshot_residual;
      }
      // Replay the private batch stream: an uninterrupted run would have
      // drawn exactly `iteration` batches before this point.
      batch_rng = util::Rng(config.seed * 7919 + rank);
      for (std::uint64_t i = 0; i < state.iteration; ++i) {
        (void)dataset.sample(config.batch_per_rank, batch_rng);
      }
      return static_cast<std::size_t>(state.iteration);
    };

    double last_loss = 0.0;

    const auto train_loop = [&](std::size_t from) {
      for (std::size_t iter = from; iter < config.iterations; ++iter) {
        // Every span and causality edge this thread records during the step
        // (including inside SimCluster's collectives) carries the iteration.
        telemetry::ScopedIteration iteration_scope(static_cast<std::int64_t>(iter));

        // Membership service point: re-admit any recovered rank whose
        // rejoin op has been reached, then ship it state from the donor.
        if (plan.has_recovery()) {
          const std::vector<std::size_t> admitted = ctx.admit_rejoins();
          if (!admitted.empty()) run_transfers(admitted, iter, nullptr);
        }
        if (recovery_enabled && iter % config.recovery.snapshot_every == 0) {
          take_snapshot(iter);
        }

        const std::size_t skips_at_entry = rank_skips[rank];
        telemetry::LedgerIteration row;
        util::WallSeconds forward_s{};
        util::WallSeconds backward_s{};
        util::WallSeconds compress_s{};
        util::WallSeconds decompress_s{};
        // SimCluster::run bound this thread to its rank track, so these
        // spans land per rank on the wall timeline (and the collective's
        // span inside allgather also lands on the simulated timeline).
        const nn::Batch batch = dataset.sample(config.batch_per_rank, batch_rng);
        model.zero_grad();
        {
          telemetry::TraceSpan span("forward", "trainer");
          util::WallTimer timer;
          last_loss = criterion.forward(model.forward(batch.inputs), batch.labels);
          forward_s = timer.elapsed();
        }
        if (compute_model != nullptr) charge("forward", compute_model->forward_s);
        losses[rank][iter] = last_loss;
        {
          telemetry::TraceSpan span("backward", "trainer");
          util::WallTimer timer;
          model.backward(criterion.backward());
          model.copy_gradients(gradient);
          backward_s = timer.elapsed();
        }
        if (compute_model != nullptr) charge("backward", compute_model->backward_s);

        // Compress, allgather packets, decompress every peer, average. In
        // analysis builds the frame carries the causality trailer (sender
        // clock, collective epoch, and membership view epoch) so the
        // happens-before and membership evidence travels with the bytes
        // and is re-verified from what actually arrived.
        Packet packet;
        std::vector<std::uint8_t> wire;
        // The membership view this rank publishes under; captured before
        // the exchange because a crash *during* the allgather advances the
        // live view, while every peer's trailer was encoded under this one.
        const std::uint64_t publish_view = ctx.view_epoch();
        {
          telemetry::TraceSpan span("compress", "trainer");
          util::WallTimer timer;
          std::vector<std::uint8_t> trailer;
          if (causality.active()) {
            trailer = analysis::encode_trailer(
                causality.make_trailer(rank, ctx.op_index(), publish_view));
          }
          packet = codec->compress(gradient);
          if (ledger_on || recovery_enabled) {
            row.grad_norm = util::l2_norm(gradient);
            row.ratio = packet.ratio();
          }
          wire = wire::frame_packet(packet, trailer);
          compress_s = timer.elapsed();
        }
        if (compute_model != nullptr) {
          charge("fft", compute_model->fft_s);
          charge("quant_pack", compute_model->quant_pack_s);
          charge("wire_crc", compute_model->wire_crc_s);
        }
        const auto gathered = ctx.allgather(wire);

        // Unframe first (this is where the CRC rejects corrupted packets and
        // empty blocks mark dropped/late/crashed peers), so the surviving
        // count — and thus the renormalized average — is known before any
        // accumulation. Every rank sees identical bytes, so every rank skips
        // the identical peers and replicas stay bit-identical.
        std::vector<std::optional<wire::WireFrame>> frames(gathered.size());
        std::size_t decoded = 0;
        for (std::size_t r = 0; r < gathered.size(); ++r) {
          if (gathered[r].empty()) {
            ++rank_skips[rank];
            peers_skipped.add(1.0);
            continue;
          }
          try {
            // Receiver-side expectation on top of the structural checks: the
            // peer's packet must describe exactly this model's element count
            // (a TaintError here degrades like any other undecodable packet).
            frames[r] = std::move(wire::unframe_frame(gathered[r], grad_size))
                            .release(
                                [&](const wire::WireFrame& frame) {
                                  return frame.packet.elements == grad_size;
                                },
                                "peer gradient frame");
            ++decoded;
          } catch (const std::exception&) {
            ++rank_skips[rank];
            peers_skipped.add(1.0);
          }
        }

        // Degraded-mode EF aging fix: when the cluster excluded this rank's
        // *own* contribution (transport drop, straggler timeout), the
        // delivered part of the corrected gradient is lost in flight —
        // re-credit it into the residual so excluded iterations delay
        // information instead of destroying it.
        if (!frames[rank]) {
          if (auto* ef = ef_codec()) ef->recredit_undelivered(packet);
        }

        // Re-verify the received causality trailers: the sender's publish
        // must happen-before this read, carry this collective's epoch, and
        // carry the membership view every rank published under. A trailer
        // that survived the CRC but fails to parse is itself a protocol
        // violation, not a degradation case.
        if (causality.active()) {
          const std::uint64_t epoch = ctx.op_index() - 1;  // the allgather above
          for (std::size_t r = 0; r < frames.size(); ++r) {
            if (!frames[r] || frames[r]->trailer.empty()) continue;
            try {
              // The trailer must claim the sender slot it arrived in and
              // carry one clock component per cluster rank; anything else is
              // a protocol violation reported below.
              const analysis::AnalysisTrailer trailer =
                  std::move(analysis::decode_trailer(frames[r]->trailer))
                      .release(
                          [&](const analysis::AnalysisTrailer& t) {
                            return t.sender == r && t.clock.size() == config.ranks;
                          },
                          "causality trailer");
              causality.verify_trailer(rank, r, trailer, epoch, publish_view);
            } catch (const std::exception& error) {
              analysis::report_violation("causality", std::string("iteration ") +
                                                          std::to_string(iter) +
                                                          ": undecodable analysis trailer "
                                                          "from rank " +
                                                          std::to_string(r) + ": " +
                                                          error.what());
            }
          }
        }

        std::fill(averaged.begin(), averaged.end(), 0.0f);
        if (decoded > 0) {
          const float inv_decoded = 1.0f / static_cast<float>(decoded);
          telemetry::TraceSpan span("decompress", "trainer");
          util::WallTimer timer;
          for (std::size_t r = 0; r < frames.size(); ++r) {
            if (!frames[r]) continue;
            try {
              codec->decompress(frames[r]->packet, reconstructed);
            } catch (const std::exception&) {
              // Payload passed the CRC but the codec still rejected it
              // (vanishingly rare); drop the contribution, keep the step.
              ++rank_skips[rank];
              peers_skipped.add(1.0);
              continue;
            }
            if (ledger_on && r == rank) {
              // Round-trip quality of this rank's own gradient: the block it
              // sent came back through the full compress/wire/decompress
              // path, so (gradient, reconstructed) is exactly the paper's
              // Assumption-3.2 pair.
              const std::span<const float> truth(gradient);
              const std::span<const float> recon(reconstructed);
              row.alpha = util::relative_error_alpha(truth, recon);
              row.rms_error = util::rms_error(truth, recon);
              for (std::size_t i = 0; i < grad_size; ++i) {
                row.max_error = std::max(
                    row.max_error,
                    static_cast<double>(std::fabs(gradient[i] - reconstructed[i])));
              }
              row.layers.reserve(layout.size());
              for (const nn::ParamSegment& seg : layout) {
                row.layers.push_back(
                    {seg.name,
                     util::relative_error_alpha(truth.subspan(seg.offset, seg.count),
                                                recon.subspan(seg.offset, seg.count)),
                     util::rms_error(truth.subspan(seg.offset, seg.count),
                                     recon.subspan(seg.offset, seg.count)),
                     0.0});
                for (std::size_t i = seg.offset; i < seg.offset + seg.count; ++i) {
                  row.layers.back().max_error =
                      std::max(row.layers.back().max_error,
                               static_cast<double>(std::fabs(gradient[i] - reconstructed[i])));
                }
              }
            }
            for (std::size_t i = 0; i < grad_size; ++i) {
              averaged[i] += reconstructed[i] * inv_decoded;
            }
          }
          decompress_s = timer.elapsed();
        }
        if (compute_model != nullptr && decoded > 0) {
          charge("inverse_fft", compute_model->inverse_fft_s);
          charge("dequant", compute_model->dequant_s);
        }
        if (decoded < gathered.size()) {
          ++rank_degraded[rank];
          degraded_iters.add(1.0);
        }

        if (decoded > 0) {
          {
            telemetry::TraceSpan apply_span("apply", "trainer");
            model.set_gradients(averaged);
            optimizer.step(model, config.learning_rate);
          }
          if (compute_model != nullptr) charge("apply", compute_model->apply_s);
        }

        // Cross-rank state-hash agreement: surviving replicas must hold
        // bit-identical parameters after every step, so a logical race is
        // caught at the iteration that caused it rather than as mysterious
        // end-of-run divergence. `reconstructed` is dead until the next
        // decompress, so it doubles as the hash scratch buffer.
        if (causality.active()) {
          model.copy_params(reconstructed);
          const std::uint32_t hash = util::crc32(std::span<const std::uint8_t>(
              reinterpret_cast<const std::uint8_t*>(reconstructed.data()),
              reconstructed.size() * sizeof(float)));
          causality.check_agreement("trainer.state_hash", rank, iter, hash);
        }

        if (ledger_on) {
          row.iteration = iter;
          row.loss = last_loss;
          row.sim_time_s = ctx.clock().time();
          row.forward_s = forward_s;
          row.backward_s = backward_s;
          row.compress_s = compress_s;
          row.decompress_s = decompress_s;
          row.wire_bytes = util::byte_count(wire.size());
          row.skipped_peers = rank_skips[rank] - skips_at_entry;
          if (const auto* ef = ef_codec()) {
            row.ef_residual_norm = util::l2_norm(ef->residual());
          }
          ledger.end_iteration(row);
        }

        // Monitor-driven remediation: OR every live rank's local condition
        // flags through a real (modelled) collective so the remedy decision
        // is identical everywhere, then apply it before the next step.
        if (recovery_enabled) {
          double residual_norm = -1.0;
          if (const auto* ef = ef_codec()) residual_norm = util::l2_norm(ef->residual());
          float flags[4] = {
              std::isfinite(row.grad_norm) ? 0.0f : 1.0f,
              std::isfinite(last_loss) ? 0.0f : 1.0f,
              (row.ratio > 0.0 && row.ratio < config.recovery.min_ratio) ? 1.0f : 0.0f,
              (residual_norm >= 0.0 && std::isfinite(row.grad_norm) &&
               residual_norm > config.recovery.residual_growth_factor * row.grad_norm &&
               residual_norm > 0.0)
                  ? 1.0f
                  : 0.0f};
          ctx.allreduce_sum(flags);
          RecoverySignals signals;
          signals.nan_gradient = flags[0] > 0.5f;
          signals.nonfinite_loss = flags[1] > 0.5f;
          signals.ratio_collapse = flags[2] > 0.5f;
          signals.residual_growth = flags[3] > 0.5f;
          for (RemedyAction action : recovery.step(iter, signals)) {
            switch (action) {
              case RemedyAction::kRollback:
                restore_snapshot();
                break;
              case RemedyAction::kCodecFallback:
                codec = make_compressor("none");
                break;
              case RemedyAction::kThetaRelax:
                codec->set_theta(codec->theta() * config.recovery.theta_relax_factor);
                break;
              case RemedyAction::kNone:
                break;
            }
          }
          if (ledger_on) {
            for (const telemetry::LedgerRemediation& remedy : recovery.drain_closed()) {
              ledger.record_remediation(remedy);
            }
          }
        }
      }
    };

    // The BSP loop, wrapped in the crash/rejoin protocol: a planned crash
    // with a recovery fate parks this thread until the survivors re-admit
    // it, then restores replica state from the donor's blob and re-enters
    // the loop at the group's iteration. A crash without a recovery fate
    // propagates to SimCluster::run's handler as before.
    std::size_t start_iter = 0;
    for (;;) {
      try {
        train_loop(start_iter);
        break;
      } catch (const comm::RankCrashed&) {
        if (plan.rejoin_op(rank) == std::numeric_limits<std::size_t>::max()) throw;
        if (!ctx.await_rejoin()) return;  // run drained first: the rank stays dead
        std::vector<std::uint8_t> blob;
        run_transfers(ctx.rejoin_cohort(), 0, &blob);
        start_iter = restore_from_blob(blob);
      }
    }

    if (recovery_enabled && ledger_on) {
      for (const telemetry::LedgerRemediation& remedy : recovery.finish(config.iterations)) {
        ledger.record_remediation(remedy);
      }
    }
    if (ledger_on) ledger.end_run();

    std::vector<float> params(grad_size);
    model.copy_params(params);
    {
      util::LockGuard<util::Mutex> lock(result_mutex);
      final_params[rank] = std::move(params);
      final_losses[rank] = last_loss;
      finished[rank] = 1;
      rank_remediations[rank] = recovery.remediations_total();
    }
  });

  result.rank_sim_times = clocks;

  // Result aggregation over the ranks that survived to the end. A crashed
  // rank never reaches the result block above, so `finished` doubles as
  // the survivor mask even if the cluster carried no FaultPlan. Canonical
  // per-rank counts come from a never-crashed survivor when one exists: a
  // rejoined rank completed the run but missed the iterations it was dead
  // for, so its skip/degraded counts understate the cluster's.
  std::size_t first_survivor = config.ranks;
  std::size_t canonical = config.ranks;
  std::size_t survivors = 0;
  double loss = 0.0;
  for (std::size_t r = 0; r < config.ranks; ++r) {
    if (cluster.rank_rejoined(r)) ++result.rejoined_ranks;
    if (finished[r] == 0) continue;
    if (first_survivor == config.ranks) first_survivor = r;
    if (canonical == config.ranks && !cluster.rank_rejoined(r)) canonical = r;
    ++survivors;
    loss += final_losses[r];
  }
  result.crashed_ranks = config.ranks - survivors;
  if (survivors == 0) {
    result.replicas_identical = false;
    return result;
  }
  if (canonical == config.ranks) canonical = first_survivor;
  // Every rank observes the identical skip set (faults are keyed by
  // sender), so one survivor's counts are the canonical per-rank view.
  result.skipped_contributions = rank_skips[canonical];
  result.degraded_iterations = rank_degraded[canonical];
  result.remediations = rank_remediations[canonical];
  result.final_params = final_params[first_survivor];
  result.replicas_identical = true;
  for (std::size_t r = first_survivor + 1; r < config.ranks; ++r) {
    if (finished[r] != 0 && final_params[r] != final_params[first_survivor]) {
      result.replicas_identical = false;
    }
  }
  result.mean_loss_last_iteration = loss / static_cast<double>(survivors);

  result.mean_loss_trace.assign(config.iterations, 0.0);
  for (std::size_t i = 0; i < config.iterations; ++i) {
    double sum = 0.0;
    std::size_t live = 0;
    for (std::size_t r = 0; r < config.ranks; ++r) {
      if (std::isnan(losses[r][i])) continue;
      sum += losses[r][i];
      ++live;
    }
    result.mean_loss_trace[i] = live == 0 ? std::numeric_limits<double>::quiet_NaN()
                                          : sum / static_cast<double>(live);
  }
  return result;
}

}  // namespace fftgrad::core
