#include "fftgrad/core/error_feedback.h"

#include <stdexcept>

namespace fftgrad::core {

ErrorFeedbackCompressor::ErrorFeedbackCompressor(std::unique_ptr<GradientCompressor> inner)
    : inner_(std::move(inner)) {
  if (!inner_) throw std::invalid_argument("ErrorFeedbackCompressor: null inner codec");
}

std::string ErrorFeedbackCompressor::name() const { return "ef[" + inner_->name() + "]"; }

Packet ErrorFeedbackCompressor::compress(std::span<const float> gradient) {
  if (residual_.size() != gradient.size()) {
    // First call, or the gradient length changed (new model): start clean.
    residual_.assign(gradient.size(), 0.0f);
  }
  corrected_.resize(gradient.size());
  for (std::size_t i = 0; i < gradient.size(); ++i) {
    corrected_[i] = gradient[i] + residual_[i];
  }
  Packet packet = inner_->compress(corrected_);
  // Residual = what we wanted to send minus what the receiver will see.
  std::vector<float> delivered(gradient.size());
  inner_->decompress(packet, delivered);
  for (std::size_t i = 0; i < gradient.size(); ++i) {
    residual_[i] = corrected_[i] - delivered[i];
  }
  return packet;
}

void ErrorFeedbackCompressor::decompress(const Packet& packet, std::span<float> out) {
  inner_->decompress(packet, out);
}

void ErrorFeedbackCompressor::recredit_undelivered(const Packet& packet) {
  if (residual_.size() != packet.elements) {
    throw std::invalid_argument("ErrorFeedbackCompressor: re-credit size mismatch");
  }
  std::vector<float> delivered(packet.elements);
  inner_->decompress(packet, delivered);
  // residual + delivered == corrected: exactly the pre-compress state.
  for (std::size_t i = 0; i < delivered.size(); ++i) {
    residual_[i] += delivered[i];
  }
}

void ErrorFeedbackCompressor::set_residual(std::span<const float> residual) {
  residual_.assign(residual.begin(), residual.end());
}

void ErrorFeedbackCompressor::reset() {
  std::fill(residual_.begin(), residual_.end(), 0.0f);
}

}  // namespace fftgrad::core
