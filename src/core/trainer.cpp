#include "fftgrad/core/trainer.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "fftgrad/core/error_feedback.h"
#include "fftgrad/nn/loss.h"
#include "fftgrad/perfmodel/cost_model.h"
#include "fftgrad/telemetry/ledger.h"
#include "fftgrad/telemetry/metrics.h"
#include "fftgrad/telemetry/trace.h"
#include "fftgrad/util/logging.h"
#include "fftgrad/util/stats.h"
#include "fftgrad/util/timer.h"

namespace fftgrad::core {
namespace {

/// Per-rank phase durations of one simulated iteration, used to lay the
/// Fig 2-style spans onto each rank's simulated track. The phase order
/// mirrors the trainer's cost accounting (decompress is part of the
/// per-rank codec time charged before the exchange).
struct RankPhaseTimes {
  double forward = 0.0;
  double backward = 0.0;
  double compress = 0.0;
  double decompress = 0.0;
};

constexpr std::uint32_t kCheckpointMagic = 0x4647434bu;  // "FGCK"

/// Serialization helpers for the nested float buffers.
void put_floats(std::vector<std::uint8_t>& bytes, const std::vector<float>& values) {
  wire::put<std::uint64_t>(bytes, values.size());
  wire::put_span<const float>(bytes, values);
}

std::vector<float> get_floats(wire::Reader& reader) {
  std::vector<float> values(reader.get_count(sizeof(float)));
  reader.get_span<float>(values);
  return values;
}

void put_float_lists(std::vector<std::uint8_t>& bytes,
                     const std::vector<std::vector<float>>& lists) {
  wire::put<std::uint64_t>(bytes, lists.size());
  for (const auto& list : lists) put_floats(bytes, list);
}

std::vector<std::vector<float>> get_float_lists(wire::Reader& reader) {
  std::vector<std::vector<float>> lists(reader.get_count(sizeof(std::uint64_t)));
  for (auto& list : lists) list = get_floats(reader);
  return lists;
}

}  // namespace

std::vector<std::uint8_t> TrainerCheckpoint::serialize() const {
  std::vector<std::uint8_t> bytes;
  // Reserve the exact blob size up front (also sidesteps a GCC 12
  // -Wstringop-overflow false positive on the growing inserts).
  std::size_t total = 2 * sizeof(std::uint32_t)  // magic + crc
                      + 7 * sizeof(std::uint64_t)  // scalars and top-level counts
                      + 2 * sizeof(double) + params.size() * sizeof(float) +
                      sizeof(std::uint64_t) * (velocity.size() + residuals.size()) +
                      rng_states.size() * 6 * sizeof(std::uint64_t) +
                      epochs.size() * (sizeof(std::uint64_t) + 7 * sizeof(double));
  for (const auto& list : velocity) total += list.size() * sizeof(float);
  for (const auto& list : residuals) total += list.size() * sizeof(float);
  bytes.reserve(total);
  wire::put<std::uint32_t>(bytes, kCheckpointMagic);
  wire::put<std::uint32_t>(bytes, 0);  // CRC patched below
  wire::put<std::uint64_t>(bytes, next_epoch);
  wire::put<double>(bytes, sim_time_s);
  wire::put<double>(bytes, total_wire_bytes);
  wire::put<std::uint64_t>(bytes, total_iters);
  put_floats(bytes, params);
  put_float_lists(bytes, velocity);
  put_float_lists(bytes, residuals);
  wire::put<std::uint64_t>(bytes, rng_states.size());
  for (const auto& state : rng_states) {
    for (std::uint64_t word : state) wire::put<std::uint64_t>(bytes, word);
  }
  wire::put<std::uint64_t>(bytes, epochs.size());
  for (const EpochRecord& record : epochs) {
    wire::put<std::uint64_t>(bytes, record.epoch);
    wire::put<double>(bytes, record.train_loss);
    wire::put<double>(bytes, record.test_accuracy);
    wire::put<double>(bytes, record.theta);
    wire::put<double>(bytes, record.lr);
    wire::put<double>(bytes, record.sim_time_s);
    wire::put<double>(bytes, record.mean_alpha);
    wire::put<double>(bytes, record.mean_ratio);
  }
  const std::uint32_t crc =
      util::crc32(std::span<const std::uint8_t>(bytes).subspan(2 * sizeof(std::uint32_t)));
  std::memcpy(bytes.data() + sizeof(std::uint32_t), &crc, sizeof(crc));
  return bytes;
}

TrainerCheckpoint TrainerCheckpoint::deserialize(std::span<const std::uint8_t> blob) {
  wire::Reader reader(blob);
  if (reader.get<std::uint32_t>() != kCheckpointMagic) {
    throw std::runtime_error("checkpoint: bad magic");
  }
  const auto expected_crc = reader.get<std::uint32_t>();
  const std::uint32_t actual_crc = util::crc32(blob.subspan(2 * sizeof(std::uint32_t)));
  if (actual_crc != expected_crc) {
    throw std::runtime_error("checkpoint: checksum mismatch");
  }
  TrainerCheckpoint ckpt;
  ckpt.next_epoch = reader.get<std::uint64_t>();
  ckpt.sim_time_s = reader.get<double>();
  ckpt.total_wire_bytes = reader.get<double>();
  ckpt.total_iters = reader.get<std::uint64_t>();
  ckpt.params = get_floats(reader);
  ckpt.velocity = get_float_lists(reader);
  ckpt.residuals = get_float_lists(reader);
  ckpt.rng_states.resize(reader.get_count(6 * sizeof(std::uint64_t)));
  for (auto& state : ckpt.rng_states) {
    for (std::uint64_t& word : state) word = reader.get<std::uint64_t>();
  }
  ckpt.epochs.resize(reader.get_count(8 * sizeof(double)));
  for (EpochRecord& record : ckpt.epochs) {
    record.epoch = static_cast<std::size_t>(reader.get<std::uint64_t>());
    record.train_loss = reader.get<double>();
    record.test_accuracy = reader.get<double>();
    record.theta = reader.get<double>();
    record.lr = reader.get<double>();
    record.sim_time_s = reader.get<double>();
    record.mean_alpha = reader.get<double>();
    record.mean_ratio = reader.get<double>();
  }
  return ckpt;
}

DistributedTrainer::DistributedTrainer(nn::Network model, nn::SyntheticDataset dataset,
                                       TrainerConfig config)
    : model_(std::move(model)), dataset_(std::move(dataset)), config_(config) {
  if (config_.ranks == 0) throw std::invalid_argument("DistributedTrainer: ranks must be >= 1");
  initial_params_.resize(model_.param_count());
  model_.copy_params(initial_params_);
}

double DistributedTrainer::evaluate() {
  const nn::Batch test = dataset_.test_set(config_.test_size);
  nn::SoftmaxCrossEntropy criterion;
  std::size_t hits = 0;
  const std::size_t total = test.labels.size();
  const std::size_t input_size = dataset_.input_size();
  for (std::size_t at = 0; at < total; at += config_.eval_batch) {
    const std::size_t count = std::min(config_.eval_batch, total - at);
    std::vector<std::size_t> shape;
    shape.push_back(count);
    for (std::size_t d : dataset_.input_shape()) shape.push_back(d);
    tensor::Tensor chunk(std::move(shape));
    std::copy(test.inputs.data() + at * input_size,
              test.inputs.data() + (at + count) * input_size, chunk.data());
    const tensor::Tensor logits = model_.forward(chunk);
    const std::span<const std::size_t> labels(test.labels.data() + at, count);
    hits += static_cast<std::size_t>(
        std::llround(nn::accuracy(logits, labels) * static_cast<double>(count)));
  }
  return static_cast<double>(hits) / static_cast<double>(total);
}

TrainResult DistributedTrainer::train(const CompressorFactory& factory,
                                      const ThetaSchedule& theta_schedule,
                                      const nn::StepLrSchedule& lr_schedule) {
  return train(factory, theta_schedule, lr_schedule, CheckpointOptions{});
}

TrainResult DistributedTrainer::train(const CompressorFactory& factory,
                                      const ThetaSchedule& theta_schedule,
                                      const nn::StepLrSchedule& lr_schedule,
                                      const CheckpointOptions& checkpoint) {
  // Reset to the shared initialization so algorithm comparisons are fair.
  // Each train() is its own simulation (sim_time restarts at zero), so it
  // gets its own trace process.
  if (telemetry::Tracer::global().enabled()) telemetry::Tracer::global().begin_sim_session();
  model_.set_params(initial_params_);
  nn::SgdOptimizer optimizer(config_.momentum);
  nn::SoftmaxCrossEntropy criterion;

  const std::size_t grad_size = model_.param_count();
  const double raw_bytes = static_cast<double>(grad_size) * sizeof(float);
  // Wire-size rescale factor for paper-scale mode (1.0 in measured mode).
  const double wire_scale =
      config_.paper_scale ? config_.paper_scale->raw_gradient_bytes / raw_bytes : 1.0;

  std::vector<std::unique_ptr<GradientCompressor>> compressors;
  std::vector<util::Rng> rank_rngs;
  for (std::size_t r = 0; r < config_.ranks; ++r) {
    compressors.push_back(factory(r));
    rank_rngs.emplace_back(config_.seed * 7919 + r);
  }

  std::vector<float> rank_grad(grad_size);
  std::vector<float> rank_recon(grad_size);
  std::vector<float> mean_true(grad_size);
  std::vector<float> mean_recon(grad_size);
  std::vector<util::Bytes> block_bytes(config_.ranks);

  TrainResult result;
  double sim_time = 0.0;
  double total_wire = 0.0;
  std::size_t total_iters = 0;
  std::size_t start_epoch = 0;

  // The sequential trainer folds all ranks onto one replica, so the ledger
  // records the folded view: phase times averaged over the rank loop, one
  // collective pairing per exchange (the analytic charge *is* the predicted
  // cost here — there is no sampling — plus the paper's Eq. 2 figure for
  // the same exchange so reports can compare the two models).
  telemetry::RunLedger& ledger = telemetry::RunLedger::global();
  const bool ledger_on = ledger.enabled();
  std::uint64_t ledger_iter = 0;  ///< row index within this run (resume-safe)
  std::vector<nn::ParamSegment> ledger_layout;
  if (ledger_on) {
    telemetry::LedgerManifest manifest;
    manifest.trainer = "distributed_trainer";
    manifest.compressor = compressors[0]->name();
    manifest.ranks = config_.ranks;
    manifest.iterations = config_.epochs * config_.iters_per_epoch;
    manifest.seed = config_.seed;
    manifest.network = {config_.network.name, config_.network.latency_s,
                        config_.network.bandwidth_bytes_s, config_.network.loss_rate};
    manifest.fault_rate = 0.0;  // the sequential trainer has no fault plan
    ledger.begin_run(manifest);
    ledger_layout = model_.param_layout();
  }

  telemetry::MetricsRegistry& metrics = telemetry::MetricsRegistry::global();
  telemetry::Counter& trainer_iterations = metrics.counter("trainer.iterations");
  telemetry::Counter& trainer_wire_bytes = metrics.counter("trainer.wire_bytes");
  telemetry::Counter& checkpoints_saved = metrics.counter("trainer.checkpoints_saved");
  telemetry::Counter& checkpoints_restored = metrics.counter("trainer.checkpoints_restored");
  telemetry::Histogram& trainer_alpha = metrics.histogram("trainer.alpha");

  if (checkpoint.resume != nullptr) {
    const TrainerCheckpoint& resume = *checkpoint.resume;
    if (resume.params.size() != grad_size) {
      throw std::invalid_argument("train: checkpoint parameter count does not match the model");
    }
    if (resume.rng_states.size() != config_.ranks ||
        (!resume.residuals.empty() && resume.residuals.size() != config_.ranks)) {
      throw std::invalid_argument("train: checkpoint rank count does not match the config");
    }
    model_.set_params(resume.params);
    optimizer.set_velocity(resume.velocity);
    for (std::size_t r = 0; r < config_.ranks; ++r) {
      rank_rngs[r].load_state(resume.rng_states[r]);
      if (!resume.residuals.empty() && !resume.residuals[r].empty()) {
        auto* ef = dynamic_cast<ErrorFeedbackCompressor*>(compressors[r].get());
        if (ef == nullptr) {
          throw std::invalid_argument(
              "train: checkpoint carries a residual but the codec has no error feedback");
        }
        ef->set_residual(resume.residuals[r]);
      }
    }
    sim_time = resume.sim_time_s;
    total_wire = resume.total_wire_bytes;
    total_iters = static_cast<std::size_t>(resume.total_iters);
    start_epoch = static_cast<std::size_t>(resume.next_epoch);
    result.epochs = resume.epochs;
    checkpoints_restored.add(1.0);
  }

  // Snapshot everything a resumed run needs to replay the next epoch
  // exactly as this run would have.
  const auto capture_checkpoint = [&](std::size_t next_epoch) {
    TrainerCheckpoint ckpt;
    ckpt.next_epoch = next_epoch;
    ckpt.sim_time_s = sim_time;
    ckpt.total_wire_bytes = total_wire;
    ckpt.total_iters = total_iters;
    ckpt.params.resize(grad_size);
    model_.copy_params(ckpt.params);
    ckpt.velocity = optimizer.velocity();
    ckpt.residuals.resize(config_.ranks);
    for (std::size_t r = 0; r < config_.ranks; ++r) {
      if (const auto* ef = dynamic_cast<const ErrorFeedbackCompressor*>(compressors[r].get())) {
        ckpt.residuals[r].assign(ef->residual().begin(), ef->residual().end());
      }
    }
    for (const util::Rng& rng : rank_rngs) ckpt.rng_states.push_back(rng.save_state());
    ckpt.epochs = result.epochs;
    checkpoints_saved.add(1.0);
    checkpoint.sink(ckpt);
  };

  for (std::size_t epoch = start_epoch; epoch < config_.epochs; ++epoch) {
    const double lr = lr_schedule.at(epoch);
    const double theta = theta_schedule.at(epoch, lr);
    for (auto& compressor : compressors) compressor->set_theta(theta);

    double loss_sum = 0.0;
    double alpha_sum = 0.0;
    double ratio_sum = 0.0;
    std::size_t ratio_count = 0;

    for (std::size_t iter = 0; iter < config_.iters_per_epoch; ++iter) {
      // Tag every span recorded during the step (wall phases and the
      // simulated per-rank layout below) with the global iteration index.
      telemetry::ScopedIteration iteration_scope(
          static_cast<std::int64_t>(epoch * config_.iters_per_epoch + iter));
      std::fill(mean_true.begin(), mean_true.end(), 0.0f);
      std::fill(mean_recon.begin(), mean_recon.end(), 0.0f);
      double slowest_rank = 0.0;
      // Ledger accumulators: per-phase sums over the rank loop (reported as
      // the across-rank mean) and the iteration's mean achieved ratio.
      double ledger_forward_s = 0.0;
      double ledger_backward_s = 0.0;
      double ledger_compress_s = 0.0;
      double ledger_decompress_s = 0.0;
      double ledger_ratio_sum = 0.0;
      const double loss_before_iter = loss_sum;

      // Only pay for the per-rank phase bookkeeping when a trace is being
      // collected; the sim-time accounting itself is unchanged either way.
      telemetry::Tracer& tracer = telemetry::Tracer::global();
      const bool tracing = tracer.enabled();
      std::vector<RankPhaseTimes> phases(tracing ? config_.ranks : 0);
      const double iter_start_sim = sim_time;

      for (std::size_t r = 0; r < config_.ranks; ++r) {
        util::WallTimer compute_timer;
        const nn::Batch batch = dataset_.sample(config_.batch_per_rank, rank_rngs[r]);
        model_.zero_grad();
        util::WallTimer forward_timer;
        {
          telemetry::TraceSpan span("forward", "trainer");
          const tensor::Tensor logits = model_.forward(batch.inputs);
          loss_sum +=
              criterion.forward(logits, batch.labels) / static_cast<double>(config_.ranks);
        }
        const double forward_s = forward_timer.seconds();
        util::WallTimer backward_timer;
        {
          telemetry::TraceSpan span("backward", "trainer");
          model_.backward(criterion.backward());
          model_.copy_gradients(rank_grad);
        }
        const double backward_s = backward_timer.seconds();
        const double compute_s = compute_timer.seconds();

        util::WallTimer compress_timer;
        const Packet packet = [&] {
          telemetry::TraceSpan span("compress", "trainer");
          return compressors[r]->compress(rank_grad);
        }();
        const double compress_s = compress_timer.seconds();
        util::WallTimer decompress_timer;
        {
          telemetry::TraceSpan span("decompress", "trainer");
          compressors[r]->decompress(packet, rank_recon);
        }
        const double decompress_s = decompress_timer.seconds();
        const double codec_s = compress_s + decompress_s;

        const util::Bytes wire{static_cast<double>(packet.wire_bytes()) * wire_scale};
        block_bytes[r] = wire;
        total_wire += wire.to_double();
        ratio_sum += packet.ratio();
        ++ratio_count;

        const float inv_ranks = 1.0f / static_cast<float>(config_.ranks);
        for (std::size_t i = 0; i < grad_size; ++i) {
          mean_true[i] += rank_grad[i] * inv_ranks;
          mean_recon[i] += rank_recon[i] * inv_ranks;
        }

        double rank_time;
        if (config_.paper_scale) {
          // Compression + decompression, each charged at the algorithm's
          // own modelled per-byte cost on the paper-scale message.
          const double codec_model =
              2.0 * config_.paper_scale->raw_gradient_bytes *
              compressors[r]->modeled_seconds_per_byte(config_.paper_scale->throughputs);
          rank_time = config_.paper_scale->compute_seconds + codec_model;
          if (tracing) {
            // fwd+bwd ~ 3x fwd on GPU-class substrates; split the paper's
            // combined compute figure accordingly.
            phases[r] = {config_.paper_scale->compute_seconds / 3.0,
                         config_.paper_scale->compute_seconds * 2.0 / 3.0, codec_model / 2.0,
                         codec_model / 2.0};
          }
          if (ledger_on) {
            // Paper-scale mode reports the modelled phase split, matching
            // what the simulated timeline was charged.
            ledger_forward_s += config_.paper_scale->compute_seconds / 3.0;
            ledger_backward_s += config_.paper_scale->compute_seconds * 2.0 / 3.0;
            ledger_compress_s += codec_model / 2.0;
            ledger_decompress_s += codec_model / 2.0;
          }
        } else {
          rank_time = compute_s + codec_s;
          if (tracing) phases[r] = {forward_s, backward_s, compress_s, decompress_s};
          if (ledger_on) {
            ledger_forward_s += forward_s;
            ledger_backward_s += backward_s;
            ledger_compress_s += compress_s;
            ledger_decompress_s += decompress_s;
          }
        }
        if (ledger_on) ledger_ratio_sum += packet.ratio();
        slowest_rank = std::max(slowest_rank, rank_time);
      }

      if (config_.record_alpha) {
        const double alpha = util::relative_error_alpha(mean_true, mean_recon);
        alpha_sum += alpha;
        trainer_alpha.observe(alpha);
      }

      // Every replica applies the same averaged reconstructed gradient.
      {
        telemetry::TraceSpan span("apply", "trainer");
        model_.set_gradients(mean_recon);
        optimizer.step(model_, static_cast<float>(lr));
      }

      const util::Bytes params_wire{raw_bytes * wire_scale};
      util::SimSeconds comm_s{};
      util::SimSeconds sync_s{};
      if (config_.scheme == CommScheme::kBspAllgather) {
        comm_s = config_.network.allgatherv_time(block_bytes);
        if (config_.param_sync_every != 0 &&
            (total_iters + 1) % config_.param_sync_every == 0) {
          sync_s = config_.network.broadcast_time(params_wire, config_.ranks);
        }
      } else {
        // Parameter server: workers push compressed gradients through the
        // server's inbound link (serialized) and pull fresh parameters
        // every iteration through its outbound link.
        comm_s = config_.network.ps_push_time(block_bytes) +
                 config_.network.ps_pull_time(params_wire, config_.ranks);
      }
      sim_time += slowest_rank + (comm_s + sync_s).to_double();
      ++total_iters;
      trainer_iterations.add(1.0);
      for (util::Bytes bytes : block_bytes) trainer_wire_bytes.add(bytes.to_double());

      if (ledger_on) {
        util::Bytes wire_total{};
        for (util::Bytes bytes : block_bytes) wire_total += bytes;
        const double inv_ranks = 1.0 / static_cast<double>(config_.ranks);
        const double mean_ratio = ledger_ratio_sum * inv_ranks;
        // Eq. 2 for the same exchange: the paper charges the compressed
        // message (raw / ratio) against the raw network throughput.
        const util::SimSeconds paper_s =
            mean_ratio > 0.0
                ? perfmodel::communication_cost(params_wire, config_.network.bandwidth_bytes_s,
                                                perfmodel::Ratio(mean_ratio))
                : util::SimSeconds(0.0);
        const char* kind =
            config_.scheme == CommScheme::kBspAllgather ? "allgather" : "ps_exchange";
        // No sampling on this path: the analytic charge is the prediction.
        ledger.record_collective(
            {kind, ledger_iter, wire_total, comm_s, comm_s, paper_s, 0, 0});
        if (sync_s > util::SimSeconds(0.0)) {
          ledger.record_collective({"broadcast", ledger_iter, params_wire, sync_s, sync_s,
                                    util::SimSeconds(0.0), 0, 0});
        }

        telemetry::LedgerIteration row;
        row.iteration = ledger_iter++;
        row.loss = loss_sum - loss_before_iter;  // this iteration's mean loss
        row.sim_time_s = util::SimSeconds(sim_time);
        row.forward_s = util::WallSeconds(ledger_forward_s * inv_ranks);
        row.backward_s = util::WallSeconds(ledger_backward_s * inv_ranks);
        row.compress_s = util::WallSeconds(ledger_compress_s * inv_ranks);
        row.decompress_s = util::WallSeconds(ledger_decompress_s * inv_ranks);
        row.grad_norm = util::l2_norm(mean_true);
        row.alpha = util::relative_error_alpha(mean_true, mean_recon);
        row.rms_error = util::rms_error(mean_true, mean_recon);
        for (std::size_t i = 0; i < grad_size; ++i) {
          row.max_error = std::max(
              row.max_error, static_cast<double>(std::fabs(mean_true[i] - mean_recon[i])));
        }
        row.ratio = mean_ratio;
        row.wire_bytes = wire_total;
        if (const auto* ef =
                dynamic_cast<const ErrorFeedbackCompressor*>(compressors[0].get())) {
          row.ef_residual_norm = util::l2_norm(ef->residual());
        }
        row.layers.reserve(ledger_layout.size());
        for (const nn::ParamSegment& seg : ledger_layout) {
          const std::span<const float> truth(mean_true.data() + seg.offset, seg.count);
          const std::span<const float> recon(mean_recon.data() + seg.offset, seg.count);
          row.layers.push_back({seg.name, util::relative_error_alpha(truth, recon),
                                util::rms_error(truth, recon), 0.0});
          for (std::size_t i = 0; i < seg.count; ++i) {
            row.layers.back().max_error =
                std::max(row.layers.back().max_error,
                         static_cast<double>(std::fabs(truth[i] - recon[i])));
          }
        }
        ledger.end_iteration(row);
      }

      if (tracing) {
        // Lay one BSP iteration onto each rank's simulated track, exactly
        // as the accounting charged it: compute and codec phases back to
        // back, then the bulk-synchronous exchange ending at the barrier.
        const char* exchange_name =
            config_.scheme == CommScheme::kBspAllgather ? "allgather" : "ps_exchange";
        const double comm_start = iter_start_sim + slowest_rank;
        const double comm_sd = comm_s.to_double();
        const double sync_sd = sync_s.to_double();
        for (std::size_t r = 0; r < config_.ranks; ++r) {
          const std::int32_t rank = static_cast<std::int32_t>(r);
          double t = iter_start_sim;
          tracer.record_sim_span(rank, "forward", "trainer", t, t + phases[r].forward);
          t += phases[r].forward;
          tracer.record_sim_span(rank, "backward", "trainer", t, t + phases[r].backward);
          t += phases[r].backward;
          tracer.record_sim_span(rank, "compress", "trainer", t, t + phases[r].compress);
          t += phases[r].compress;
          tracer.record_sim_span(rank, "decompress", "trainer", t, t + phases[r].decompress);
          tracer.record_sim_span(rank, exchange_name, "comm", comm_start,
                                 comm_start + comm_sd);
          if (sync_sd > 0.0) {
            tracer.record_sim_span(rank, "param_broadcast", "comm", comm_start + comm_sd,
                                   comm_start + comm_sd + sync_sd);
          }
        }
      }
    }

    EpochRecord record;
    record.epoch = epoch;
    record.train_loss = loss_sum / static_cast<double>(config_.iters_per_epoch);
    record.test_accuracy = evaluate();
    record.theta = theta;
    record.lr = lr;
    record.sim_time_s = sim_time;
    record.mean_alpha =
        config_.record_alpha ? alpha_sum / static_cast<double>(config_.iters_per_epoch) : 0.0;
    record.mean_ratio = ratio_count == 0 ? 0.0 : ratio_sum / static_cast<double>(ratio_count);
    result.epochs.push_back(record);
    if (checkpoint.every_epochs != 0 && checkpoint.sink &&
        (epoch + 1) % checkpoint.every_epochs == 0) {
      capture_checkpoint(epoch + 1);
    }
    util::log_debug() << "epoch " << epoch << " loss=" << record.train_loss
                      << " acc=" << record.test_accuracy << " theta=" << theta
                      << " sim_t=" << sim_time;
  }

  if (ledger_on) ledger.end_run();
  result.final_accuracy = result.epochs.empty() ? 0.0 : result.epochs.back().test_accuracy;
  result.total_sim_time_s = sim_time;
  result.total_wire_bytes = total_wire;
  result.mean_iteration_time_s =
      total_iters == 0 ? 0.0 : sim_time / static_cast<double>(total_iters);
  return result;
}

}  // namespace fftgrad::core
