#include "fftgrad/core/recovery.h"

#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "fftgrad/core/compressor.h"

namespace fftgrad::core {
namespace {

/// Stable cause names, indexed for decision-state serialization.
constexpr const char* kCauses[] = {"nan_gradient", "nonfinite_loss", "ratio_collapse",
                                   "residual_growth"};

std::uint8_t cause_id(const char* cause) {
  for (std::uint8_t i = 0; i < 4; ++i) {
    if (std::strcmp(cause, kCauses[i]) == 0) return i;
  }
  throw std::logic_error(std::string("recovery: unknown cause '") + cause + "'");
}

bool env_flag(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return false;
  return std::strcmp(v, "0") != 0 && std::strcmp(v, "off") != 0 &&
         std::strcmp(v, "false") != 0;
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  try {
    return std::stod(v);
  } catch (const std::exception&) {
    return fallback;
  }
}

/// Whether `signals` still shows the condition that opened a pending
/// remediation for `cause`. An active lossless fallback ends a ratio
/// collapse by construction (exact delivery cannot collapse), so its
/// condition reads as cleared.
bool condition_present(const RecoverySignals& signals, const char* cause,
                       bool fallback_active) {
  if (std::strcmp(cause, "nan_gradient") == 0) return signals.nan_gradient;
  if (std::strcmp(cause, "nonfinite_loss") == 0) return signals.nonfinite_loss;
  if (std::strcmp(cause, "ratio_collapse") == 0) {
    return !fallback_active && signals.ratio_collapse;
  }
  if (std::strcmp(cause, "residual_growth") == 0) return signals.residual_growth;
  return false;
}

}  // namespace

RecoveryPolicy RecoveryPolicy::from_env() {
  RecoveryPolicy policy;
  policy.enabled = env_flag("FFTGRAD_RECOVERY");
  policy.snapshot_every = static_cast<std::size_t>(
      env_double("FFTGRAD_RECOVERY_SNAPSHOT_EVERY",
                 static_cast<double>(policy.snapshot_every)));
  if (policy.snapshot_every == 0) policy.snapshot_every = 1;
  policy.ratio_collapse_streak = static_cast<std::size_t>(env_double(
      "FFTGRAD_RECOVERY_STREAK", static_cast<double>(policy.ratio_collapse_streak)));
  if (policy.ratio_collapse_streak == 0) policy.ratio_collapse_streak = 1;
  policy.min_ratio = env_double("FFTGRAD_RECOVERY_MIN_RATIO", policy.min_ratio);
  policy.residual_growth_factor =
      env_double("FFTGRAD_RECOVERY_RESIDUAL_FACTOR", policy.residual_growth_factor);
  policy.theta_relax_factor =
      env_double("FFTGRAD_RECOVERY_THETA_FACTOR", policy.theta_relax_factor);
  return policy;
}

const char* remedy_action_name(RemedyAction action) {
  switch (action) {
    case RemedyAction::kRollback: return "rollback";
    case RemedyAction::kCodecFallback: return "codec_fallback";
    case RemedyAction::kThetaRelax: return "theta_relax";
    case RemedyAction::kNone: break;
  }
  return "none";
}

RecoveryController::RecoveryController(RecoveryPolicy policy) : policy_(policy) {}

void RecoveryController::open(std::uint64_t iter, const char* cause, RemedyAction action) {
  pending_.push_back({iter, cause, action, util::SimSeconds{}});
  ++total_;
}

std::vector<RemedyAction> RecoveryController::step(std::uint64_t iter,
                                                   const RecoverySignals& signals) {
  std::vector<RemedyAction> actions;
  if (!policy_.enabled) return actions;

  // Close pendings whose condition has cleared. The applied-iteration row
  // stays pending until a later step shows the signal gone, which is what
  // makes iterations_to_recover meaningful.
  for (std::size_t i = 0; i < pending_.size();) {
    const Pending& p = pending_[i];
    if (iter > p.iteration && !condition_present(signals, p.cause, fallback_active_)) {
      closed_.push_back({p.iteration, p.cause, remedy_action_name(p.action), p.cost_s,
                         iter - p.iteration, true});
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }

  const auto has_pending = [&](RemedyAction action) {
    for (const Pending& p : pending_) {
      if (p.action == action) return true;
    }
    return false;
  };

  if ((signals.nan_gradient || signals.nonfinite_loss) &&
      !has_pending(RemedyAction::kRollback)) {
    open(iter, signals.nan_gradient ? "nan_gradient" : "nonfinite_loss",
         RemedyAction::kRollback);
    actions.push_back(RemedyAction::kRollback);
  }

  if (signals.ratio_collapse && !fallback_active_) {
    ++collapse_streak_;
    if (collapse_streak_ >= policy_.ratio_collapse_streak) {
      fallback_active_ = true;
      open(iter, "ratio_collapse", RemedyAction::kCodecFallback);
      actions.push_back(RemedyAction::kCodecFallback);
    }
  } else {
    collapse_streak_ = 0;
  }

  if (signals.residual_growth && !has_pending(RemedyAction::kThetaRelax)) {
    open(iter, "residual_growth", RemedyAction::kThetaRelax);
    actions.push_back(RemedyAction::kThetaRelax);
  }

  return actions;
}

void RecoveryController::charge(util::SimSeconds cost) {
  if (!pending_.empty()) pending_.back().cost_s += cost;
}

std::vector<std::uint8_t> RecoveryController::save_decision_state() const {
  std::vector<std::uint8_t> blob;
  wire::put<std::uint64_t>(blob, collapse_streak_);
  wire::put<std::uint8_t>(blob, fallback_active_ ? 1 : 0);
  wire::put<std::uint64_t>(blob, pending_.size());
  for (const Pending& p : pending_) {
    wire::put<std::uint64_t>(blob, p.iteration);
    wire::put<std::uint8_t>(blob, cause_id(p.cause));
    wire::put<std::uint8_t>(blob, static_cast<std::uint8_t>(p.action));
    wire::put<double>(blob, p.cost_s.to_double());
  }
  return blob;
}

void RecoveryController::load_decision_state(std::span<const std::uint8_t> blob) {
  wire::Reader reader(blob);
  const auto streak = reader.get<std::uint64_t>();
  const bool fallback = reader.get<std::uint8_t>() != 0;
  const std::size_t count = reader.get_count(sizeof(std::uint64_t) + 2 + sizeof(double));
  std::vector<Pending> pending;
  pending.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Pending p;
    p.iteration = reader.get<std::uint64_t>();
    const auto cause = reader.get<std::uint8_t>();
    const auto action = reader.get<std::uint8_t>();
    if (cause >= 4 || action > static_cast<std::uint8_t>(RemedyAction::kThetaRelax)) {
      throw std::runtime_error("recovery: malformed decision-state blob");
    }
    p.cause = kCauses[cause];
    p.action = static_cast<RemedyAction>(action);
    p.cost_s = util::SimSeconds(reader.get<double>());
    pending.push_back(p);
  }
  collapse_streak_ = static_cast<std::size_t>(streak);
  fallback_active_ = fallback;
  pending_ = std::move(pending);
}

std::vector<telemetry::LedgerRemediation> RecoveryController::drain_closed() {
  std::vector<telemetry::LedgerRemediation> out;
  out.swap(closed_);
  return out;
}

std::vector<telemetry::LedgerRemediation> RecoveryController::finish(
    std::uint64_t final_iteration) {
  std::vector<telemetry::LedgerRemediation> out = drain_closed();
  for (const Pending& p : pending_) {
    const std::uint64_t waited =
        final_iteration > p.iteration ? final_iteration - p.iteration : 0;
    out.push_back({p.iteration, p.cause, remedy_action_name(p.action), p.cost_s, waited,
                   false});
  }
  pending_.clear();
  return out;
}

}  // namespace fftgrad::core
