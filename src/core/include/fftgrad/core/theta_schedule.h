// Sparsification-ratio schedules, the practical embodiment of the paper's
// convergence theory (Sec 3.4):
//
//  * FixedTheta       — Theorem 3.4's setting: constant theta; a large
//                       value loosens the gradient-norm bound by
//                       theta^2 * 2*eta*sigma^2 / b and costs accuracy.
//  * StepTheta        — the Fig 13 recovery experiment: hold theta, then
//                       drop it (e.g. 0.9 -> 0) at a chosen epoch to pull
//                       a failing run back to the SGD baseline.
//  * DiminishingTheta — Theorem 3.5's rule theta_t^2 = L * eta_t: with a
//                       diminishing step size the compressed SGD converges;
//                       theta shrinks with the learning rate.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <memory>

namespace fftgrad::core {

class ThetaSchedule {
 public:
  virtual ~ThetaSchedule() = default;
  /// theta to use during `epoch`, given that epoch's learning rate.
  virtual double at(std::size_t epoch, double learning_rate) const = 0;
};

class FixedTheta : public ThetaSchedule {
 public:
  explicit FixedTheta(double theta) : theta_(theta) {}
  double at(std::size_t, double) const override { return theta_; }

 private:
  double theta_;
};

class StepTheta : public ThetaSchedule {
 public:
  StepTheta(double initial, double after, std::size_t drop_epoch)
      : initial_(initial), after_(after), drop_epoch_(drop_epoch) {}
  double at(std::size_t epoch, double) const override {
    return epoch >= drop_epoch_ ? after_ : initial_;
  }

 private:
  double initial_, after_;
  std::size_t drop_epoch_;
};

class DiminishingTheta : public ThetaSchedule {
 public:
  /// theta_t = min(cap, sqrt(L * eta_t)); `lipschitz` is the (estimated)
  /// smoothness constant L of the loss.
  explicit DiminishingTheta(double lipschitz, double cap = 0.95)
      : lipschitz_(lipschitz), cap_(cap) {}
  double at(std::size_t, double learning_rate) const override {
    return std::min(cap_, std::sqrt(lipschitz_ * learning_rate));
  }

 private:
  double lipschitz_;
  double cap_;
};

}  // namespace fftgrad::core
