// Error-feedback (residual accumulation) wrapper around any compressor.
//
// The paper notes that the heuristics behind Deep Gradient Compression —
// error accumulation and momentum correction — "are orthogonal to our
// methods and can also be applied to improve ours". This wrapper implements
// the error-accumulation part: the difference between what a rank wanted to
// send and what the codec actually delivered is remembered and added to the
// next iteration's gradient before compression, so no information is ever
// permanently dropped, only delayed:
//
//     e_0 = 0
//     send_t = compress(g_t + e_t)
//     e_{t+1} = (g_t + e_t) - decompress(send_t)
//
// bench_ablation_feedback quantifies what it buys the FFT pipeline.
#pragma once

#include <memory>
#include <vector>

#include "fftgrad/core/compressor.h"

namespace fftgrad::core {

class ErrorFeedbackCompressor : public GradientCompressor {
 public:
  explicit ErrorFeedbackCompressor(std::unique_ptr<GradientCompressor> inner);

  std::string name() const override;
  Packet compress(std::span<const float> gradient) override;
  void decompress(const Packet& packet, std::span<float> out) override;
  void set_theta(double theta) override { inner_->set_theta(theta); }
  double theta() const override { return inner_->theta(); }
  double modeled_seconds_per_byte(
      const perfmodel::PrimitiveThroughputs& t) const override {
    // One extra elementwise accumulate pass on top of the inner codec.
    return inner_->modeled_seconds_per_byte(t) + 1.0 / t.conversion.to_double();
  }

  /// The residual currently carried forward (size of the last gradient).
  std::span<const float> residual() const { return residual_; }
  /// Install a saved residual (trainer checkpoint restore). The next
  /// compress() carries it forward exactly as the uninterrupted run would.
  void set_residual(std::span<const float> residual);
  /// Drop the carried residual (e.g. at a learning-rate boundary).
  void reset();

  /// Degraded-mode re-credit: compress() already moved the delivered part
  /// of the corrected gradient out of the residual on the assumption the
  /// packet reaches the peers. When the cluster then excluded this rank's
  /// contribution (transport drop after retries, straggler timeout), that
  /// delivered part is lost in flight — add it back so the residual again
  /// carries everything the peers have not seen. Without this, excluded
  /// iterations age information out of the feedback loop permanently.
  void recredit_undelivered(const Packet& packet);

  GradientCompressor& inner() { return *inner_; }

 private:
  std::unique_ptr<GradientCompressor> inner_;
  std::vector<float> residual_;
  std::vector<float> corrected_;
};

}  // namespace fftgrad::core
