// String-spec compressor factory: builds any codec in the framework from a
// compact textual description, so examples, CLI tools, and sweep scripts
// can select algorithms without recompiling.
//
// Grammar (case-sensitive, whitespace-free):
//
//   spec        := wrapped | base
//   wrapped     := "ef[" spec "]"                      error feedback
//                | "chunked:" uint "[" spec "]"        fixed-size chunks
//   base        := "none"
//                | "fft"      [ ":" kvlist ]           keys: theta, bits, fp16
//                | "topk"     [ ":" kvlist ]           keys: theta
//                | "qsgd"     [ ":" kvlist ]           keys: bits, seed
//                | "terngrad" [ ":" kvlist ]           keys: seed
//   kvlist      := key "=" value { "," key "=" value }
//
// Examples: "fft:theta=0.85,bits=10", "ef[topk:theta=0.95]",
//           "chunked:65536[fft:theta=0.9,bits=8]".
//
// make_compressor throws std::invalid_argument with a message pointing at
// the offending token for malformed specs.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "fftgrad/core/compressor.h"

namespace fftgrad::core {

std::unique_ptr<GradientCompressor> make_compressor(std::string_view spec);

/// The base algorithm names make_compressor understands.
std::vector<std::string> known_compressors();

}  // namespace fftgrad::core
