// Monitor-driven automatic remediation: the decision layer between the run
// ledger's health monitors and the trainer's knobs.
//
// The ledger (fftgrad/telemetry/ledger.h) detects trouble — non-finite
// gradients or loss, a collapsed compression ratio, a diverging
// error-feedback residual — but only reports it. The RecoveryController
// closes the loop: fed the cluster-agreed condition flags once per
// iteration, it decides which remedy the trainer applies before the next
// step:
//
//   nan_gradient / nonfinite_loss  ->  kRollback       restore the last
//                                      in-memory snapshot (params, momentum,
//                                      EF residual)
//   ratio_collapse (streak)        ->  kCodecFallback  switch to the lossless
//                                      codec for the rest of the run
//   residual_growth                ->  kThetaRelax     multiply theta by
//                                      theta_relax_factor (keep more
//                                      coefficients)
//
// Every remediation becomes a ledger `remediation` row carrying the cause,
// the action, its simulated cost, and the iterations the condition took to
// clear — drained via drain_closed()/finish() so a row is written exactly
// once per event, when its outcome is known.
//
// Determinism contract: the controller is pure state-machine logic over the
// flags it is fed. Ranks that feed identical flag sequences (the trainer
// allreduces the per-rank observations first) take identical actions at
// identical iterations, so replicas stay bit-identical through any remedy.
//
// Thread contract: single-threaded by design — one controller instance per
// rank, driven only from that rank's training loop. It holds no mutex and
// carries no thread-safety annotations on purpose: adding a lock would
// misrepresent the model (cross-rank agreement comes from feeding identical
// inputs, not from sharing the instance). Do not share one controller
// between threads.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fftgrad/telemetry/ledger.h"
#include "fftgrad/util/units.h"

namespace fftgrad::core {

struct RecoveryPolicy {
  bool enabled = false;
  /// Snapshot (params, momentum, EF residual) every k iterations; rollback
  /// restores the most recent one.
  std::size_t snapshot_every = 8;
  /// Consecutive ratio-collapse iterations before the codec fallback fires.
  std::size_t ratio_collapse_streak = 3;
  /// A wire ratio below this counts as a collapse (mirrors the ledger's
  /// min_ratio monitor threshold).
  double min_ratio = 1.0;
  /// Residual norm above factor x gradient norm counts as residual growth.
  double residual_growth_factor = 100.0;
  /// Theta multiplier applied by kThetaRelax (theta is the fraction of
  /// information *dropped*, so < 1 relaxes the compression).
  double theta_relax_factor = 0.5;

  /// FFTGRAD_RECOVERY=1 (or =on) enables the defaults above;
  /// FFTGRAD_RECOVERY_SNAPSHOT_EVERY / _STREAK / _MIN_RATIO /
  /// _RESIDUAL_FACTOR / _THETA_FACTOR override individual knobs.
  static RecoveryPolicy from_env();
};

enum class RemedyAction { kNone, kRollback, kCodecFallback, kThetaRelax };

/// Stable action name used in ledger rows ("rollback", "codec_fallback",
/// "theta_relax", "none").
const char* remedy_action_name(RemedyAction action);

/// Cluster-agreed condition flags for one iteration (the trainer allreduces
/// each rank's local observation so every rank feeds the same values).
struct RecoverySignals {
  bool nan_gradient = false;
  bool nonfinite_loss = false;
  bool ratio_collapse = false;
  bool residual_growth = false;
};

class RecoveryController {
 public:
  explicit RecoveryController(RecoveryPolicy policy);

  const RecoveryPolicy& policy() const { return policy_; }

  /// Feed iteration `iter`'s flags; returns the actions to apply before the
  /// next step (usually empty). Opens a pending remediation per action.
  std::vector<RemedyAction> step(std::uint64_t iter, const RecoverySignals& signals);

  /// Charge simulated time spent executing the most recently opened
  /// remediation (e.g. the snapshot-restore or state-transfer cost).
  void charge(util::SimSeconds cost);

  /// Remediations whose condition has cleared since the last drain, ready
  /// to be written as ledger rows (recovered = true).
  std::vector<telemetry::LedgerRemediation> drain_closed();

  /// Close every still-pending remediation at end of run
  /// (recovered = false) and return the rows.
  std::vector<telemetry::LedgerRemediation> finish(std::uint64_t final_iteration);

  /// Whether the lossless-codec fallback has been applied.
  bool fallback_active() const { return fallback_active_; }
  /// Remediations opened so far (pending + closed).
  std::size_t remediations_total() const { return total_; }

  /// Decision-state sync for a rank rejoining mid-run: the collapse
  /// streak, the fallback flag, and the pending set — everything that
  /// influences *future* actions, so a rejoiner loaded with the donor's
  /// state takes the same remedies at the same iterations from then on.
  /// Reporting state (closed rows, totals) stays local and is not carried.
  std::vector<std::uint8_t> save_decision_state() const;
  /// Throws std::runtime_error on a truncated or malformed blob.
  void load_decision_state(std::span<const std::uint8_t> blob);

 private:
  void open(std::uint64_t iter, const char* cause, RemedyAction action);

  struct Pending {
    std::uint64_t iteration = 0;
    const char* cause = "";
    RemedyAction action = RemedyAction::kNone;
    util::SimSeconds cost_s{};
  };

  RecoveryPolicy policy_;
  std::size_t collapse_streak_ = 0;
  bool fallback_active_ = false;
  std::size_t total_ = 0;
  std::vector<Pending> pending_;
  std::vector<telemetry::LedgerRemediation> closed_;
};

}  // namespace fftgrad::core
