// Chunked compression: split the flat gradient into fixed-size chunks and
// run an independent codec instance per chunk.
//
// Why it matters for the paper's system: the whole-gradient FFT of a 250MB
// vector is one monolithic dependency, so nothing can be overlapped with
// the backward pass; per-layer (or per-chunk) compression is what a
// production integration does — each chunk can be compressed and shipped
// as soon as its layer's backward completes, and small FFTs are also far
// cheaper than one giant transform (especially at non-power-of-two sizes,
// where a whole-gradient Bluestein transform is ~10x slower than radix-2).
// The cost is a per-chunk header/mask overhead and slightly different
// sparsity allocation (top-k is taken per chunk, not globally) —
// bench_ablation_chunking quantifies the trade.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "fftgrad/core/compressor.h"

namespace fftgrad::core {

class ChunkedCompressor : public GradientCompressor {
 public:
  using InnerFactory = std::function<std::unique_ptr<GradientCompressor>(std::size_t chunk)>;

  /// Chunks of `chunk_elements` floats (the last chunk may be shorter). A
  /// fresh inner codec is created per chunk index on first use, so stateful
  /// codecs (frozen quantizers, error feedback) keep per-chunk state.
  ChunkedCompressor(InnerFactory factory, std::size_t chunk_elements);

  std::string name() const override;
  Packet compress(std::span<const float> gradient) override;
  void decompress(const Packet& packet, std::span<float> out) override;
  void set_theta(double theta) override;
  double theta() const override;
  double modeled_seconds_per_byte(
      const perfmodel::PrimitiveThroughputs& t) const override;

  std::size_t chunk_elements() const { return chunk_elements_; }
  std::size_t chunk_count() const { return codecs_.size(); }

 private:
  GradientCompressor& codec_for(std::size_t chunk);

  InnerFactory factory_;
  std::size_t chunk_elements_;
  double theta_ = 0.0;
  bool theta_set_ = false;
  std::vector<std::unique_ptr<GradientCompressor>> codecs_;
};

}  // namespace fftgrad::core
