// Genuinely multi-threaded BSP training over the SimCluster: one OS thread
// per logical rank, each with its own model replica, exchanging compressed
// gradient packets through the cluster's allgather and decompressing all
// peers' packets locally — the paper's exact deployment (every GPU keeps a
// copy of the global gradient after allgather).
//
// This is the executable counterpart of the sequential DistributedTrainer:
// that one folds the rank loop onto a single replica (bit-identical update
// math, 1/p the memory) and is what the figure benches use; this one keeps
// p real replicas and real message passing, and exists to demonstrate and
// test that the two are equivalent (test_cluster_trainer asserts parity)
// and to serve as the template for a real MPI/NCCL integration.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "fftgrad/comm/sim_cluster.h"
#include "fftgrad/core/compressor.h"
#include "fftgrad/nn/dataset.h"
#include "fftgrad/nn/network.h"
#include "fftgrad/nn/optimizer.h"

namespace fftgrad::core {

struct ClusterTrainConfig {
  std::size_t ranks = 4;
  std::size_t batch_per_rank = 16;
  std::size_t iterations = 50;
  float learning_rate = 0.05f;
  float momentum = 0.9f;
  std::uint64_t seed = 42;  ///< per-rank batch streams derive from this
};

struct ClusterTrainResult {
  std::vector<float> final_params;      ///< rank 0's parameters
  bool replicas_identical = false;      ///< all ranks ended bit-identical
  std::vector<double> rank_sim_times;   ///< simulated clock per rank
  double mean_loss_last_iteration = 0.0;
};

/// Run BSP training with `model_factory(rank_seed)` building each rank's
/// replica (must be deterministic so replicas start identical) and
/// `compressor_factory(rank)` supplying each rank's codec. Returns rank 0's
/// final parameters plus a cross-replica consistency check.
ClusterTrainResult cluster_train(
    comm::SimCluster& cluster, const ClusterTrainConfig& config,
    const std::function<nn::Network()>& model_factory,
    const std::function<std::unique_ptr<GradientCompressor>(std::size_t)>& compressor_factory,
    const nn::SyntheticDataset& dataset);

}  // namespace fftgrad::core
