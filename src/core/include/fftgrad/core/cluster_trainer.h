// Genuinely multi-threaded BSP training over the SimCluster: one OS thread
// per logical rank, each with its own model replica, exchanging compressed
// gradient packets through the cluster's allgather and decompressing all
// peers' packets locally — the paper's exact deployment (every GPU keeps a
// copy of the global gradient after allgather).
//
// This is the executable counterpart of the sequential DistributedTrainer:
// that one folds the rank loop onto a single replica (bit-identical update
// math, 1/p the memory) and is what the figure benches use; this one keeps
// p real replicas and real message passing, and exists to demonstrate and
// test that the two are equivalent (test_cluster_trainer asserts parity)
// and to serve as the template for a real MPI/NCCL integration.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "fftgrad/comm/sim_cluster.h"
#include "fftgrad/core/compressor.h"
#include "fftgrad/core/recovery.h"
#include "fftgrad/nn/dataset.h"
#include "fftgrad/nn/network.h"
#include "fftgrad/nn/optimizer.h"

namespace fftgrad::core {

/// Deterministic modelled compute charged to each rank's SimClock, per
/// iteration phase. The cluster's network costs are already modelled, but
/// compute is only wall-*measured* by default, which keeps the simulated
/// timeline free of compute entirely. Supplying a SimComputeModel makes
/// the simulated iteration fully modelled — forward/backward/codec/framing
/// time charged between the collectives — so the critical-path analyzer
/// (fftgrad/telemetry/critical_path.h) sees a deterministic,
/// host-independent timeline it can attribute exactly. Phases map onto the
/// analyzer's categories: forward/backward/apply -> backprop,
/// fft/inverse_fft -> FFT, quant_pack/dequant -> quantize/pack, wire_crc
/// -> wire+CRC. Zero entries charge nothing.
struct SimComputeModel {
  util::SimSeconds forward_s{};
  util::SimSeconds backward_s{};
  util::SimSeconds fft_s{};         ///< forward FFT of the sparsifying codec
  util::SimSeconds quant_pack_s{};  ///< quantize + bit-pack
  util::SimSeconds wire_crc_s{};    ///< frame + checksum
  util::SimSeconds inverse_fft_s{};
  util::SimSeconds dequant_s{};     ///< unpack + dequantize
  util::SimSeconds apply_s{};       ///< optimizer step
};

struct ClusterTrainConfig {
  std::size_t ranks = 4;
  std::size_t batch_per_rank = 16;
  std::size_t iterations = 50;
  float learning_rate = 0.05f;
  float momentum = 0.9f;
  std::uint64_t seed = 42;  ///< per-rank batch streams derive from this
  /// When set, each phase charges the modelled seconds to the rank's
  /// simulated clock (and emits the matching "cp" leaf span).
  std::optional<SimComputeModel> sim_compute;
  /// Monitor-driven automatic remediation (fftgrad/core/recovery.h).
  /// Disabled by default, in which case the collective op stream is
  /// bit-identical to a build without the recovery layer; when enabled,
  /// each iteration adds one small flag allreduce so every rank applies
  /// the identical remedy at the identical iteration.
  RecoveryPolicy recovery{};
};

struct ClusterTrainResult {
  std::vector<float> final_params;  ///< lowest surviving rank's parameters
  bool replicas_identical = false;  ///< all surviving ranks ended bit-identical
  std::vector<util::SimSeconds> rank_sim_times;  ///< simulated clock per rank
  double mean_loss_last_iteration = 0.0;

  // Fault-tolerance bookkeeping (all zero on a fault-free cluster).
  std::size_t crashed_ranks = 0;        ///< ranks lost to crashes and not recovered
  std::size_t rejoined_ranks = 0;       ///< ranks that crashed and were re-admitted
  std::size_t remediations = 0;         ///< recovery-controller actions applied
  std::size_t skipped_contributions = 0;  ///< peer packets missing or undecodable
  std::size_t degraded_iterations = 0;  ///< iterations averaged over < all ranks
  /// Mean training loss per iteration, averaged over the ranks that were
  /// still alive at that iteration (the chaos example's accuracy trace).
  std::vector<double> mean_loss_trace;
};

/// Run BSP training with `model_factory(rank_seed)` building each rank's
/// replica (must be deterministic so replicas start identical) and
/// `compressor_factory(rank)` supplying each rank's codec. Returns the
/// lowest surviving rank's final parameters plus a cross-replica
/// consistency check.
///
/// Degradation semantics under the cluster's FaultPlan: a peer packet that
/// arrives missing (dropped after retries, straggler-timeout exclusion, or
/// rank crash) or fails its frame checksum / decode is skipped for the
/// step and the gradient average is renormalized over the contributions
/// that did decode; every rank skips the identical set, so surviving
/// replicas stay bit-identical. Each rank's own error-feedback residual
/// (if its codec carries one) is untouched by a skipped peer, and when the
/// excluded packet is the rank's *own*, its delivered part is re-credited
/// into the residual (recredit_undelivered) so excluded iterations delay
/// information instead of destroying it. An iteration where nothing
/// decodes applies no update.
///
/// Elastic recovery: a CrashSpec with a finite rejoin_at_op turns the
/// crash into a bounded outage — at each iteration top the survivors
/// admit any rank whose rejoin op has been reached (SimCluster's
/// membership handshake) and the handshake's donor (its lowest live rank)
/// ships the rejoiner a CRC-framed state blob (params, momentum, EF
/// residual, codec/theta state, recovery-controller decision state, and
/// the current rollback snapshot) through peer_transfer, charged at real
/// NetworkModel cost. The rejoiner replays its batch-RNG stream to the
/// group's iteration and re-enters the BSP loop; from then on it is
/// bit-identical to the other replicas. When config.recovery is enabled,
/// the RecoveryController additionally maps monitor conditions to
/// automatic remedies (rollback / lossless-codec fallback / theta
/// relaxation), each recorded as a ledger `remediation` row.
ClusterTrainResult cluster_train(
    comm::SimCluster& cluster, const ClusterTrainConfig& config,
    const std::function<nn::Network()>& model_factory,
    const std::function<std::unique_ptr<GradientCompressor>(std::size_t)>& compressor_factory,
    const nn::SyntheticDataset& dataset);

}  // namespace fftgrad::core
