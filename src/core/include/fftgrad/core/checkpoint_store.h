// Durable checkpoint storage with crash-safe writes and bounded retention.
//
// TrainerCheckpoint (fftgrad/core/trainer.h) already makes the *blob*
// tamper-evident (magic + CRC); this store makes the *file* crash-safe: a
// checkpoint is written to `<name>.tmp` and atomically renamed into place,
// so a process killed mid-write leaves at worst a stale .tmp — never a
// half-written checkpoint under the final name. Retention keeps the newest
// K checkpoints (FFTGRAD_CKPT_KEEP, default 3) so a corrupt or regressed
// latest can always be rolled past.
//
// latest() walks the retained checkpoints newest-first and returns the
// first one whose blob deserializes (CRC-valid); torn or corrupted files
// are skipped, which is what turns kill -9 during save() into "resume from
// the previous epoch" instead of "resume fails".
//
// Thread contract: single-threaded by design — each rank owns its private
// store rooted at a per-rank directory, so no two threads ever touch the
// same instance (crash-safety above is against *process* death, not
// concurrent callers). It intentionally carries no mutex or thread-safety
// annotations; sharing an instance across threads is a caller bug.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "fftgrad/core/trainer.h"

namespace fftgrad::core {

class CheckpointStore {
 public:
  /// `dir` is created if missing. `keep` == 0 means unlimited retention.
  explicit CheckpointStore(std::string dir, std::size_t keep = keep_from_env());

  const std::string& dir() const { return dir_; }
  std::size_t keep() const { return keep_; }

  /// Atomically persist `ckpt` (keyed by its next_epoch) and prune beyond
  /// the retention limit. Throws std::runtime_error on IO failure.
  void save(const TrainerCheckpoint& ckpt);

  /// Newest checkpoint whose blob passes deserialization; nullopt when none
  /// is valid (empty store, or every retained file is corrupt).
  std::optional<TrainerCheckpoint> latest() const;

  /// Retained checkpoint file names (no directory), newest first.
  std::vector<std::string> files() const;

  /// FFTGRAD_CKPT_KEEP (default 3; 0 = unlimited).
  static std::size_t keep_from_env();

 private:
  std::string path_for(std::uint64_t epoch) const;

  std::string dir_;
  std::size_t keep_ = 3;
};

}  // namespace fftgrad::core
