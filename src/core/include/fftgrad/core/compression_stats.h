// Round-trip quality metrics for a compressor on a given gradient:
// reconstruction error norms, the Assumption-3.2 alpha, and the achieved
// wire ratio. Used by the theorem-validation and Fig 5/15 benches and by
// the trainer's per-iteration records.
#pragma once

#include <span>
#include <vector>

#include "fftgrad/core/compressor.h"

namespace fftgrad::core {

struct RoundTripStats {
  double alpha = 0.0;       ///< ||g - g_hat|| / ||g||   (Assumption 3.2)
  double rms_error = 0.0;   ///< sqrt(mean((g - g_hat)^2))
  double max_error = 0.0;   ///< max_i |g_i - g_hat_i|
  double ratio = 0.0;       ///< 4n bytes / wire bytes
  std::size_t wire_bytes = 0;
};

/// Compress+decompress `gradient` through `compressor`; fills `reconstructed`
/// (resized to match) and returns the stats.
RoundTripStats measure_round_trip(GradientCompressor& compressor,
                                  std::span<const float> gradient,
                                  std::vector<float>& reconstructed);

}  // namespace fftgrad::core
