// GradientCompressor: the lossy gradient codec interface of the framework.
//
// compress() maps a flat float32 gradient to a self-describing wire packet;
// decompress() reconstructs an approximation of the original vector. The
// packet's byte size is what the communication layer charges for, so
// wire_bytes()/ratio() are the quantities behind every wall-time result.
//
// Implementations: FftCompressor (the paper's method, Sec 3), and the
// published baselines TopKCompressor, QsgdCompressor, TernGradCompressor,
// NoopCompressor (lossless SGD).
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "fftgrad/perfmodel/cost_model.h"
#include "fftgrad/telemetry/metrics.h"
#include "fftgrad/util/crc32.h"
#include "fftgrad/util/taint.h"

namespace fftgrad::core {

/// Self-describing compressed gradient.
struct Packet {
  std::vector<std::uint8_t> bytes;  ///< wire payload, including metadata
  std::size_t elements = 0;         ///< original gradient length

  std::size_t wire_bytes() const { return bytes.size(); }
  /// Achieved compression ratio vs. float32.
  double ratio() const {
    return bytes.empty() ? 0.0
                         : static_cast<double>(elements * sizeof(float)) /
                               static_cast<double>(bytes.size());
  }
};

/// Telemetry hook called by every *leaf* codec as its compress() returns
/// (wrappers like ErrorFeedback/Chunked must not call it again, or bytes
/// would double-count): accumulates raw vs wire byte totals and the
/// per-packet ratio histogram. No-op unless metrics collection is enabled.
inline void record_codec_packet(std::size_t gradient_elements, const Packet& packet) {
  telemetry::MetricsRegistry& registry = telemetry::MetricsRegistry::global();
  if (!registry.enabled()) return;
  static telemetry::Counter& raw_bytes = registry.counter("codec.raw_bytes");
  static telemetry::Counter& wire_bytes = registry.counter("codec.wire_bytes");
  static telemetry::Histogram& ratio = registry.histogram("codec.ratio");
  raw_bytes.add(static_cast<double>(gradient_elements * sizeof(float)));
  wire_bytes.add(static_cast<double>(packet.wire_bytes()));
  ratio.observe(packet.ratio());
}

class GradientCompressor {
 public:
  virtual ~GradientCompressor() = default;

  virtual std::string name() const = 0;

  virtual Packet compress(std::span<const float> gradient) = 0;

  /// Reconstruct into `out` (must have packet.elements entries).
  virtual void decompress(const Packet& packet, std::span<float> out) = 0;

  /// Sparsification ratio theta in [0, 1) for tunable compressors (the
  /// fraction of information dropped); no-ops for quantizers without one.
  virtual void set_theta(double /*theta*/) {}
  virtual double theta() const { return 0.0; }

  /// Modelled one-sided codec cost per input byte on GPU-class hardware
  /// (the Sec 3.3 cost model, specialized per algorithm's pipeline). Used
  /// by the trainer's paper-scale timing mode; the default charges one
  /// elementwise pass at the conversion throughput.
  virtual double modeled_seconds_per_byte(
      const perfmodel::PrimitiveThroughputs& t) const {
    return 1.0 / t.conversion.to_double();
  }
};

// ---------------------------------------------------------------------------
// Wire-format helpers (append/consume PODs to a byte vector).

namespace wire {

template <typename T>
void put(std::vector<std::uint8_t>& bytes, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* raw = reinterpret_cast<const std::uint8_t*>(&value);
  bytes.insert(bytes.end(), raw, raw + sizeof(T));
}

template <typename T>
void put_span(std::vector<std::uint8_t>& bytes, std::span<const T> values) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* raw = reinterpret_cast<const std::uint8_t*>(values.data());
  bytes.insert(bytes.end(), raw, raw + values.size_bytes());
}

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (at_ + sizeof(T) > bytes_.size()) throw std::runtime_error("wire: truncated packet");
    T value;
    std::memcpy(&value, bytes_.data() + at_, sizeof(T));
    at_ += sizeof(T);
    return value;
  }

  template <typename T>
  void get_span(std::span<T> out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (at_ + out.size_bytes() > bytes_.size()) throw std::runtime_error("wire: truncated packet");
    std::memcpy(out.data(), bytes_.data() + at_, out.size_bytes());
    at_ += out.size_bytes();
  }

  std::size_t remaining() const { return bytes_.size() - at_; }

  /// Read a u64 element count whose `elem_size`-byte payload must still fit
  /// in the packet. Rejecting oversized counts here keeps a corrupted size
  /// field from driving a huge allocation before the payload read would
  /// have failed anyway.
  std::size_t get_count(std::size_t elem_size) {
    const auto count = static_cast<std::size_t>(get<std::uint64_t>());
    if (elem_size != 0 && count > remaining() / elem_size) {
      throw std::runtime_error("wire: corrupt size field");
    }
    return count;
  }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t at_ = 0;
};

// ---------------------------------------------------------------------------
// Packet framing: the on-the-wire shape of one compressed gradient as it
// travels through a collective — a magic tag, a CRC-32 over everything
// after the checksum field, a u64 element count, a u32 trailer length,
// the optional analysis trailer, then the codec payload. Every cross-rank
// packet exchange must use this pair so the framing has exactly one
// definition (and one fuzz target). The checksum turns wire corruption
// (comm::FaultPlan bit flips, or a real fabric misbehaving) into a
// deterministic parse failure at the receiver instead of a silently-wrong
// gradient — the degradation path cluster_train relies on.
//
// The trailer slot carries causality-analysis evidence (the sender's
// vector clock and collective epoch; fftgrad/analysis/causality.h) in
// FFTGRAD_ANALYSIS builds and is empty (length 0) otherwise; it sits
// inside the checksummed region, so a corrupted trailer is rejected with
// the same determinism as a corrupted payload. Frames are a transient
// exchange format, never persisted, so build modes may legitimately
// differ in whether the slot is filled — the shape is identical.

inline constexpr std::uint32_t kFrameMagic = 0x46474632u;  // "FGF2"
inline constexpr std::size_t kFrameHeaderBytes =
    3 * sizeof(std::uint32_t) + sizeof(std::uint64_t);

/// A parsed frame: the codec packet plus whatever analysis trailer rode
/// along (empty when the sender attached none).
struct WireFrame {
  Packet packet;
  std::vector<std::uint8_t> trailer;
};

/// Serialize `packet` (and an optional analysis trailer) into its
/// collective wire frame.
inline std::vector<std::uint8_t> frame_packet(const Packet& packet,
                                              std::span<const std::uint8_t> trailer = {}) {
  std::vector<std::uint8_t> frame;
  frame.reserve(kFrameHeaderBytes + trailer.size() + packet.bytes.size());
  put<std::uint32_t>(frame, kFrameMagic);
  put<std::uint32_t>(frame, 0);  // checksum patched below
  put<std::uint64_t>(frame, packet.elements);
  put<std::uint32_t>(frame, static_cast<std::uint32_t>(trailer.size()));
  put_span<std::uint8_t>(frame, trailer);
  put_span<std::uint8_t>(frame, packet.bytes);
  const std::uint32_t crc =
      util::crc32(std::span<const std::uint8_t>(frame).subspan(2 * sizeof(std::uint32_t)));
  std::memcpy(frame.data() + sizeof(std::uint32_t), &crc, sizeof(crc));
  return frame;
}

namespace detail {

/// Structural parse shared by the two tainted entry points below. Not a
/// public decode entry: callers outside this header go through
/// unframe_frame()/unframe_packet() and receive an Untrusted wrapper.
inline WireFrame unframe_frame_impl(std::span<const std::uint8_t> frame,
                                    std::size_t expected_elements) {
  Reader reader(frame);
  if (reader.get<std::uint32_t>() != kFrameMagic) {
    throw std::runtime_error("wire: bad frame magic");
  }
  const auto expected_crc = reader.get<std::uint32_t>();
  const std::uint32_t actual_crc = util::crc32(frame.subspan(2 * sizeof(std::uint32_t)));
  if (actual_crc != expected_crc) {
    throw std::runtime_error("wire: frame checksum mismatch");
  }
  WireFrame result;
  result.packet.elements = static_cast<std::size_t>(reader.get<std::uint64_t>());
  if (expected_elements != 0 && result.packet.elements != expected_elements) {
    throw std::runtime_error("wire: peer gradient size mismatch");
  }
  const auto trailer_bytes = reader.get<std::uint32_t>();
  if (trailer_bytes > reader.remaining()) {
    throw std::runtime_error("wire: corrupt trailer length");
  }
  result.trailer.resize(trailer_bytes);
  reader.get_span<std::uint8_t>(result.trailer);
  result.packet.bytes.resize(reader.remaining());
  reader.get_span<std::uint8_t>(result.packet.bytes);
  return result;
}

}  // namespace detail

/// Parse a frame produced by frame_packet(). Throws std::runtime_error on a
/// truncated frame, a bad magic, a checksum mismatch (any flipped bit), a
/// trailer length that does not fit, or when the element count disagrees
/// with `expected_elements` (pass 0 to accept any count).
///
/// The frame is wire input: the structural checks above prove the bytes are
/// well-formed, not that they match what *this receiver* expects, so the
/// result is Untrusted and must be released through a validator encoding
/// the caller's expectations (element count vs the model, trailer shape).
inline util::Untrusted<WireFrame> unframe_frame(std::span<const std::uint8_t> frame,
                                                std::size_t expected_elements = 0) {
  return util::untrusted(detail::unframe_frame_impl(frame, expected_elements));
}

/// Trailer-discarding convenience for callers that only want the packet.
inline util::Untrusted<Packet> unframe_packet(std::span<const std::uint8_t> frame,
                                              std::size_t expected_elements = 0) {
  return util::untrusted(detail::unframe_frame_impl(frame, expected_elements).packet);
}

}  // namespace wire
}  // namespace fftgrad::core
