// BSP data-parallel distributed trainer (the paper's evaluation harness).
//
// Every logical rank holds an identical replica and draws its own batch
// shard; per iteration each rank's gradient is compressed, exchanged by
// allgather (the paper uses NCCL allgather for all algorithms since sparse
// allreduce is unsupported), decompressed, and averaged; all replicas then
// apply the same averaged update. Because replicas stay bit-identical
// under that scheme, the trainer executes the rank loop sequentially over
// a single model instance — numerically indistinguishable from p replicas,
// at 1/p the memory — while the simulated per-iteration wall time is
// accounted as
//
//     max over ranks(compute + compress) + allgather(compressed blocks)
//     + (every `param_sync_every` iters) broadcast(parameters)
//
// exactly the BSP timeline of Fig 1b/Sec 4.
//
// Two timing modes:
//  * measured (default)  — compute/compression charge actual wall time of
//    this host's substrate; communication comes from the NetworkModel.
//  * paper-scale (set PaperScale) — gradient bytes are rescaled to the
//    paper's real model sizes (AlexNet 250MB, ResNet32 6MB), compute is
//    charged at the paper's measured per-iteration GPU time, and
//    compression is charged through the Sec 3.3 analytic model with
//    GPU-class primitive throughputs. Compression *accuracy* effects stay
//    genuine — the actual gradients still round-trip through the codec.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "fftgrad/comm/network_model.h"
#include "fftgrad/core/compressor.h"
#include "fftgrad/core/theta_schedule.h"
#include "fftgrad/nn/dataset.h"
#include "fftgrad/nn/network.h"
#include "fftgrad/nn/optimizer.h"
#include "fftgrad/perfmodel/cost_model.h"

namespace fftgrad::core {

/// Paper-scale cost simulation parameters (timing mode 2).
struct PaperScale {
  double raw_gradient_bytes = 250e6;  ///< wire size of the uncompressed gradient
  double compute_seconds = 0.140;     ///< per-rank fwd+bwd time per iteration
  perfmodel::PrimitiveThroughputs throughputs{};  ///< GPU-class defaults
};

/// How gradient exchange is organized (the paper's Fig 1 dichotomy).
enum class CommScheme {
  kBspAllgather,     ///< allgather of compressed blocks, update everywhere
  kParameterServer,  ///< push compressed gradients to a server, pull params
};

struct TrainerConfig {
  std::size_t ranks = 8;
  std::size_t batch_per_rank = 16;
  std::size_t epochs = 10;
  std::size_t iters_per_epoch = 25;
  std::size_t test_size = 512;
  std::size_t eval_batch = 128;
  std::size_t param_sync_every = 10;  ///< broadcast params every k iterations
  comm::NetworkModel network = comm::NetworkModel::infiniband_fdr56();
  CommScheme scheme = CommScheme::kBspAllgather;
  std::optional<PaperScale> paper_scale;
  float momentum = 0.9f;
  std::uint64_t seed = 42;
  bool record_alpha = true;  ///< compute Assumption-3.2 alpha each iteration
};

struct EpochRecord {
  std::size_t epoch = 0;
  double train_loss = 0.0;     ///< mean over the epoch's iterations
  double test_accuracy = 0.0;
  double theta = 0.0;          ///< sparsification ratio in effect
  double lr = 0.0;
  double sim_time_s = 0.0;     ///< cumulative simulated wall time
  double mean_alpha = 0.0;     ///< mean Assumption-3.2 alpha over the epoch
  double mean_ratio = 0.0;     ///< mean achieved compression ratio
};

struct TrainResult {
  std::vector<EpochRecord> epochs;
  double final_accuracy = 0.0;
  double total_sim_time_s = 0.0;
  double total_wire_bytes = 0.0;       ///< per-rank compressed bytes sent
  double mean_iteration_time_s = 0.0;  ///< simulated; throughput = 1/this
};

using CompressorFactory = std::function<std::unique_ptr<GradientCompressor>(std::size_t rank)>;

/// Full training state at an epoch boundary: everything needed to resume a
/// crashed run bit-identically — model parameters, optimizer momentum,
/// each rank's error-feedback residual, each rank's batch-stream RNG, and
/// the accounting totals (sim time / wire bytes / iteration count, so the
/// param-sync broadcast cadence stays aligned). serialize() produces a
/// CRC-protected blob; deserialize() rejects any corruption.
struct TrainerCheckpoint {
  std::uint64_t next_epoch = 0;        ///< first epoch the resumed run executes
  double sim_time_s = 0.0;
  double total_wire_bytes = 0.0;
  std::uint64_t total_iters = 0;
  std::vector<float> params;
  std::vector<std::vector<float>> velocity;   ///< optimizer momentum buffers
  std::vector<std::vector<float>> residuals;  ///< per-rank EF residuals ({} if none)
  std::vector<std::array<std::uint64_t, 6>> rng_states;  ///< per-rank batch streams
  std::vector<EpochRecord> epochs;     ///< records of the completed epochs

  std::vector<std::uint8_t> serialize() const;
  /// Throws std::runtime_error on truncation, bad magic, or CRC mismatch.
  static TrainerCheckpoint deserialize(std::span<const std::uint8_t> blob);
};

/// Checkpoint behaviour for one train() call.
struct CheckpointOptions {
  /// Capture a checkpoint every k completed epochs (0 = never).
  std::size_t every_epochs = 0;
  /// Receives each captured checkpoint (write it to disk, keep the latest,
  /// ...). Called on the training thread at epoch boundaries.
  std::function<void(const TrainerCheckpoint&)> sink;
  /// Resume from this checkpoint instead of the shared initialization.
  /// The run continues at `resume->next_epoch` and reproduces the
  /// uninterrupted run's weights bit-for-bit.
  const TrainerCheckpoint* resume = nullptr;
};

class DistributedTrainer {
 public:
  /// Takes ownership of the model and dataset. The initial parameters are
  /// snapshotted: every train() call starts from the same weights, so
  /// algorithm comparisons (Fig 14 / Table 2) share initialization.
  DistributedTrainer(nn::Network model, nn::SyntheticDataset dataset, TrainerConfig config);

  /// Train with one compressor instance per rank; theta is updated from
  /// `theta_schedule` at every epoch boundary (alongside the LR schedule).
  TrainResult train(const CompressorFactory& factory, const ThetaSchedule& theta_schedule,
                    const nn::StepLrSchedule& lr_schedule);

  /// As above, with checkpoint capture and/or restore. A resumed run's
  /// TrainResult covers the checkpoint's completed epochs plus the ones it
  /// executes, and its final weights are bit-identical to the
  /// uninterrupted run's.
  TrainResult train(const CompressorFactory& factory, const ThetaSchedule& theta_schedule,
                    const nn::StepLrSchedule& lr_schedule, const CheckpointOptions& checkpoint);

  const TrainerConfig& config() const { return config_; }
  nn::Network& model() { return model_; }

 private:
  double evaluate();

  nn::Network model_;
  nn::SyntheticDataset dataset_;
  TrainerConfig config_;
  std::vector<float> initial_params_;
};

}  // namespace fftgrad::core
