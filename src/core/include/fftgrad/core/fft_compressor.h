// The paper's gradient compression pipeline (Fig 3):
//
//   1. linearize          — the caller already passes a flat gradient
//   2. fp16 conversion    — float -> half -> float (bounded gradients lose
//                           negligible information; models the throughput
//                           doubling of mixed-precision FFT)
//   3. FFT                — real-to-complex transform of the 1-D signal
//   4. top-k truncation   — keep the (1-theta) fraction of frequency bins
//                           with the largest modulus, zero the rest
//   5. range quantization — the kept bins' re/im parts go through the
//                           offset-based N-bit float (quant::RangeFloat);
//                           the codec is calibrated from the first
//                           gradients seen, as in the paper
//   6. packing            — survivors are packed densely; a status bitmap
//                           over frequency bins travels alongside
//
// decompress() inverts 6..3 and returns the real part of the inverse FFT.
// Setting quantizer_bits = 0 disables stage 5 (raw float32 coefficients),
// the ablation of bench_ablation_quant.
#pragma once

#include <map>
#include <memory>
#include <optional>

#include "fftgrad/core/compressor.h"
#include "fftgrad/fft/fft.h"
#include "fftgrad/quant/range_float.h"
#include "fftgrad/sparse/topk.h"

namespace fftgrad::core {

struct FftCompressorOptions {
  double theta = 0.85;      ///< fraction of frequency bins dropped
  int quantizer_bits = 10;  ///< N of the range-based float; 0 = no quantization
  bool use_fp16_stage = true;
  sparse::TopKMethod topk_method = sparse::TopKMethod::kNthElement;
  /// Calibrate the quantizer from the first gradient and keep it for the
  /// rest of training (paper: "estimate min and max from the first few
  /// iterations"). If false, re-tune on every packet (costlier, slightly
  /// more accurate).
  bool freeze_quantizer = true;
};

class FftCompressor : public GradientCompressor {
 public:
  explicit FftCompressor(FftCompressorOptions options = {});

  std::string name() const override;
  Packet compress(std::span<const float> gradient) override;
  void decompress(const Packet& packet, std::span<float> out) override;

  void set_theta(double theta) override;
  double theta() const override { return options_.theta; }

  /// Full Eq. 1 pipeline: 2 conversion passes + FFT + packing + selection.
  double modeled_seconds_per_byte(
      const perfmodel::PrimitiveThroughputs& t) const override {
    return perfmodel::seconds_per_byte(t);
  }

  const FftCompressorOptions& options() const { return options_; }
  /// The calibrated quantizer, once the first gradient has been seen.
  const std::optional<quant::RangeFloat>& quantizer() const { return quantizer_; }

 private:
  const fft::FftPlan& plan_for(std::size_t n);
  void calibrate_quantizer(std::span<const float> parts);

  FftCompressorOptions options_;
  std::map<std::size_t, fft::FftPlan> plans_;
  std::optional<quant::RangeFloat> quantizer_;
};

}  // namespace fftgrad::core
