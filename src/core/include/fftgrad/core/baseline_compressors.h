// The three published lossy baselines the paper evaluates against, plus the
// lossless no-op, all behind the same GradientCompressor interface:
//
//  * TopKCompressor — vanilla magnitude top-k sparsification in the spatial
//    domain (Aji & Heafield '17): keep the (1-theta) fraction of gradients
//    with largest |g|, transmit them in float32 plus a status bitmap.
//  * QsgdCompressor — QSGD (Alistarh et al. '17): stochastic quantization
//    of g_i / ||g||_2 onto s uniform levels; each element costs `bits` on
//    the wire (sign + level), plus one float32 norm.
//  * TernGradCompressor — TernGrad without clipping (Wen et al. '17):
//    stochastically maps each gradient to {-1, 0, +1} * max|g|, 2 bits per
//    element plus one float32 scale.
//  * NoopCompressor — float32 pass-through (the lossless SGD baseline).
#pragma once

#include "fftgrad/core/compressor.h"
#include "fftgrad/sparse/topk.h"
#include "fftgrad/util/rng.h"

namespace fftgrad::core {

class NoopCompressor : public GradientCompressor {
 public:
  std::string name() const override { return "sgd-fp32"; }
  Packet compress(std::span<const float> gradient) override;
  void decompress(const Packet& packet, std::span<float> out) override;
  double modeled_seconds_per_byte(const perfmodel::PrimitiveThroughputs&) const override {
    return 0.0;  // pass-through: no codec work
  }
};

class TopKCompressor : public GradientCompressor {
 public:
  explicit TopKCompressor(double theta,
                          sparse::TopKMethod method = sparse::TopKMethod::kNthElement);

  std::string name() const override;
  Packet compress(std::span<const float> gradient) override;
  void decompress(const Packet& packet, std::span<float> out) override;
  void set_theta(double theta) override;
  double theta() const override { return theta_; }

  /// Selection + packing over the raw gradient (no FFT, no conversion of
  /// the kept fp32 values).
  double modeled_seconds_per_byte(
      const perfmodel::PrimitiveThroughputs& t) const override {
    return 1.0 / t.selection.to_double() + 1.0 / t.packing.to_double();
  }

 private:
  double theta_;
  sparse::TopKMethod method_;
};

class QsgdCompressor : public GradientCompressor {
 public:
  /// `bits` per element on the wire (>= 2): 1 sign bit + (bits-1) level
  /// bits, i.e. s = 2^(bits-1) - 1 positive quantization levels.
  explicit QsgdCompressor(int bits, std::uint64_t seed = 0x95fd1e7u);

  std::string name() const override;
  Packet compress(std::span<const float> gradient) override;
  void decompress(const Packet& packet, std::span<float> out) override;
  int bits() const { return bits_; }
  std::uint32_t levels() const { return levels_; }

  /// Norm pass + stochastic quantization pass.
  double modeled_seconds_per_byte(
      const perfmodel::PrimitiveThroughputs& t) const override {
    return 1.0 / t.conversion.to_double() + 1.0 / t.stochastic.to_double();
  }

 private:
  int bits_;
  std::uint32_t levels_;
  util::Rng rng_;
};

/// Lossless-range fp16 transport: every gradient element as an IEEE
/// binary16 (fixed 2x ratio). The weakest useful baseline — what "just use
/// half precision" buys without any sparsification.
class HalfCompressor : public GradientCompressor {
 public:
  std::string name() const override { return "fp16"; }
  Packet compress(std::span<const float> gradient) override;
  void decompress(const Packet& packet, std::span<float> out) override;
  double modeled_seconds_per_byte(
      const perfmodel::PrimitiveThroughputs& t) const override {
    return 1.0 / t.conversion.to_double();
  }
};

/// 1-bit SGD (Seide et al. 2014), the earliest quantization baseline the
/// paper discusses: each element becomes its sign, scaled by the mean
/// magnitude of the positive/negative groups, with the quantization error
/// carried to the next iteration (error feedback was integral to the
/// original method). 1 bit per element + two float scales.
class OneBitCompressor : public GradientCompressor {
 public:
  std::string name() const override { return "onebit-sgd"; }
  Packet compress(std::span<const float> gradient) override;
  void decompress(const Packet& packet, std::span<float> out) override;
  double modeled_seconds_per_byte(
      const perfmodel::PrimitiveThroughputs& t) const override {
    return 2.0 / t.conversion.to_double();  // error add + sign/scale pass
  }
  std::span<const float> residual() const { return residual_; }

 private:
  std::vector<float> residual_;
};

class TernGradCompressor : public GradientCompressor {
 public:
  explicit TernGradCompressor(std::uint64_t seed = 0x7e46c0deu);

  std::string name() const override { return "terngrad"; }
  Packet compress(std::span<const float> gradient) override;
  void decompress(const Packet& packet, std::span<float> out) override;

  /// Max-reduction pass + stochastic ternarization pass.
  double modeled_seconds_per_byte(
      const perfmodel::PrimitiveThroughputs& t) const override {
    return 1.0 / t.conversion.to_double() + 1.0 / t.stochastic.to_double();
  }

 private:
  util::Rng rng_;
};

}  // namespace fftgrad::core
