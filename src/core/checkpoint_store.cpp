#include "fftgrad/core/checkpoint_store.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>

#include "fftgrad/util/logging.h"

namespace fftgrad::core {
namespace {

namespace fs = std::filesystem;

constexpr const char* kPrefix = "ckpt-";
constexpr const char* kSuffix = ".fgck";

/// Parse "ckpt-<epoch>.fgck" -> epoch; nullopt for anything else (including
/// leftover .tmp files from an interrupted save).
std::optional<std::uint64_t> epoch_of(const std::string& name) {
  const std::string prefix = kPrefix;
  const std::string suffix = kSuffix;
  if (name.size() <= prefix.size() + suffix.size()) return std::nullopt;
  if (name.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return std::nullopt;
  }
  const std::string digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  if (digits.empty()) return std::nullopt;
  std::uint64_t epoch = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    epoch = epoch * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return epoch;
}

std::vector<std::uint8_t> read_file(const fs::path& path) {
  std::FILE* f = std::fopen(path.string().c_str(), "rb");
  if (f == nullptr) throw std::runtime_error("cannot open " + path.string());
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<std::uint8_t> bytes(size > 0 ? static_cast<std::size_t>(size) : 0);
  const std::size_t got = bytes.empty() ? 0 : std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  bytes.resize(got);
  return bytes;
}

}  // namespace

std::size_t CheckpointStore::keep_from_env() {
  const char* v = std::getenv("FFTGRAD_CKPT_KEEP");
  if (v == nullptr || *v == '\0') return 3;
  try {
    const long keep = std::stol(v);
    return keep < 0 ? 3 : static_cast<std::size_t>(keep);
  } catch (const std::exception&) {
    return 3;
  }
}

CheckpointStore::CheckpointStore(std::string dir, std::size_t keep)
    : dir_(std::move(dir)), keep_(keep) {
  fs::create_directories(dir_);
}

std::string CheckpointStore::path_for(std::uint64_t epoch) const {
  char name[64];
  std::snprintf(name, sizeof(name), "%s%08llu%s", kPrefix,
                static_cast<unsigned long long>(epoch), kSuffix);
  return (fs::path(dir_) / name).string();
}

void CheckpointStore::save(const TrainerCheckpoint& ckpt) {
  const std::vector<std::uint8_t> blob = ckpt.serialize();
  const std::string final_path = path_for(ckpt.next_epoch);
  // Same-directory temp file: rename() is then a metadata-only atomic swap,
  // never a cross-filesystem copy.
  const std::string tmp_path = final_path + ".tmp";
  std::FILE* f = std::fopen(tmp_path.c_str(), "wb");
  if (f == nullptr) throw std::runtime_error("checkpoint: cannot open " + tmp_path);
  const std::size_t wrote = std::fwrite(blob.data(), 1, blob.size(), f);
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (wrote != blob.size() || !flushed) {
    std::remove(tmp_path.c_str());
    throw std::runtime_error("checkpoint: short write to " + tmp_path);
  }
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    std::remove(tmp_path.c_str());
    throw std::runtime_error("checkpoint: rename to " + final_path + " failed: " +
                             ec.message());
  }

  if (keep_ == 0) return;
  std::vector<std::string> retained = files();  // newest first
  for (std::size_t i = keep_; i < retained.size(); ++i) {
    fs::remove(fs::path(dir_) / retained[i], ec);  // best effort
  }
}

std::vector<std::string> CheckpointStore::files() const {
  std::vector<std::pair<std::uint64_t, std::string>> found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (const auto epoch = epoch_of(name)) found.emplace_back(*epoch, name);
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::string> names;
  names.reserve(found.size());
  for (auto& [epoch, name] : found) names.push_back(std::move(name));
  return names;
}

std::optional<TrainerCheckpoint> CheckpointStore::latest() const {
  for (const std::string& name : files()) {
    const fs::path path = fs::path(dir_) / name;
    try {
      return TrainerCheckpoint::deserialize(read_file(path));
    } catch (const std::exception& error) {
      // Torn write or bit rot: the CRC (or the structural checks) rejected
      // the blob; fall back to the next-newest retained checkpoint.
      util::log_warn() << "checkpoint: skipping corrupt " << path.string() << ": "
                       << error.what();
    }
  }
  return std::nullopt;
}

}  // namespace fftgrad::core
