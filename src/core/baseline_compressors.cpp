#include "fftgrad/core/baseline_compressors.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "fftgrad/parallel/parallel_for.h"
#include "fftgrad/quant/half.h"
#include "fftgrad/quant/range_float.h"
#include "fftgrad/sparse/mask_coding.h"
#include "fftgrad/sparse/pack.h"
#include "fftgrad/telemetry/trace.h"
#include "fftgrad/util/stats.h"

namespace fftgrad::core {

// ---------------------------------------------------------------------------
// NoopCompressor

Packet NoopCompressor::compress(std::span<const float> gradient) {
  telemetry::TraceSpan trace_span("noop.compress", "codec");
  Packet packet;
  packet.elements = gradient.size();
  wire::put_span<float>(packet.bytes, gradient);
  record_codec_packet(packet.elements, packet);
  return packet;
}

void NoopCompressor::decompress(const Packet& packet, std::span<float> out) {
  telemetry::TraceSpan trace_span("noop.decompress", "codec");
  if (out.size() != packet.elements) {
    throw std::invalid_argument("NoopCompressor: output size mismatch");
  }
  wire::Reader reader(packet.bytes);
  reader.get_span<float>(out);
}

// ---------------------------------------------------------------------------
// TopKCompressor

TopKCompressor::TopKCompressor(double theta, sparse::TopKMethod method)
    : theta_(theta), method_(method) {
  if (theta < 0.0 || theta >= 1.0) {
    throw std::invalid_argument("TopKCompressor: theta must be in [0, 1)");
  }
}

std::string TopKCompressor::name() const { return "topk(theta=" + std::to_string(theta_) + ")"; }

void TopKCompressor::set_theta(double theta) {
  if (theta < 0.0 || theta >= 1.0) {
    throw std::invalid_argument("TopKCompressor: theta must be in [0, 1)");
  }
  theta_ = theta;
}

Packet TopKCompressor::compress(std::span<const float> gradient) {
  telemetry::TraceSpan trace_span("topk.compress", "codec");
  Packet packet;
  packet.elements = gradient.size();
  const std::size_t n = gradient.size();
  if (n == 0) return packet;
  const std::size_t kept_target = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround((1.0 - theta_) * static_cast<double>(n))));

  std::vector<float> magnitudes(n);
  for (std::size_t i = 0; i < n; ++i) magnitudes[i] = std::fabs(gradient[i]);
  sparse::Bitmap mask(n);
  if (kept_target >= n) {
    for (std::size_t i = 0; i < n; ++i) mask.set(i);
  } else {
    const sparse::TopKResult sel = sparse::topk_threshold(magnitudes, kept_target, method_);
    std::size_t ties = kept_target - sel.above;
    for (std::size_t i = 0; i < n; ++i) {
      if (magnitudes[i] > sel.threshold) {
        mask.set(i);
      } else if (magnitudes[i] == sel.threshold && ties > 0) {
        mask.set(i);
        --ties;
      }
    }
  }
  auto& pool = parallel::ThreadPool::global();
  const std::vector<float> kept = sparse::pack_bitmap<float>(pool, gradient, mask);

  wire::put<std::uint64_t>(packet.bytes, n);
  wire::put<std::uint64_t>(packet.bytes, kept.size());
  const std::vector<std::uint8_t> mask_bytes = sparse::encode_mask(mask);
  wire::put<std::uint64_t>(packet.bytes, mask_bytes.size());
  wire::put_span<std::uint8_t>(packet.bytes, mask_bytes);
  wire::put_span<float>(packet.bytes, kept);
  record_codec_packet(packet.elements, packet);
  return packet;
}

void TopKCompressor::decompress(const Packet& packet, std::span<float> out) {
  telemetry::TraceSpan trace_span("topk.decompress", "codec");
  if (out.size() != packet.elements) {
    throw std::invalid_argument("TopKCompressor: output size mismatch");
  }
  if (packet.elements == 0) return;
  wire::Reader reader(packet.bytes);
  const auto n = static_cast<std::size_t>(reader.get<std::uint64_t>());
  if (n != packet.elements) throw std::runtime_error("TopKCompressor: corrupt packet");
  const auto kept_count = static_cast<std::size_t>(reader.get<std::uint64_t>());
  if (kept_count > n) throw std::runtime_error("TopKCompressor: corrupt kept count");
  const std::size_t mask_size = reader.get_count(sizeof(std::uint8_t));
  std::vector<std::uint8_t> mask_bytes(mask_size);
  reader.get_span<std::uint8_t>(mask_bytes);
  // Receiver expectation: survivor count must match the value payload.
  const sparse::Bitmap mask =
      std::move(sparse::decode_mask(mask_bytes, n))
          .release([&](const sparse::Bitmap& m) { return m.count() == kept_count; },
                   "top-k keep-mask");
  std::vector<float> kept(kept_count);
  reader.get_span<float>(kept);
  auto& pool = parallel::ThreadPool::global();
  sparse::unpack_bitmap<float>(pool, kept, mask, out);
}

// ---------------------------------------------------------------------------
// QsgdCompressor

QsgdCompressor::QsgdCompressor(int bits, std::uint64_t seed) : bits_(bits), rng_(seed) {
  if (bits < 2 || bits > 16) throw std::invalid_argument("QsgdCompressor: bits must be in [2, 16]");
  levels_ = (std::uint32_t{1} << (bits - 1)) - 1;
}

std::string QsgdCompressor::name() const { return "qsgd(" + std::to_string(bits_) + "bit)"; }

Packet QsgdCompressor::compress(std::span<const float> gradient) {
  telemetry::TraceSpan trace_span("qsgd.compress", "codec");
  Packet packet;
  packet.elements = gradient.size();
  const std::size_t n = gradient.size();
  if (n == 0) return packet;

  const float norm = static_cast<float>(util::l2_norm(gradient));
  std::vector<std::uint32_t> codes(n, 0);
  if (norm > 0.0f) {
    const float s = static_cast<float>(levels_);
    const std::uint32_t sign_bit = std::uint32_t{1} << (bits_ - 1);
    for (std::size_t i = 0; i < n; ++i) {
      const float g = gradient[i];
      const float r = std::fabs(g) / norm * s;  // in [0, s]
      auto level = static_cast<std::uint32_t>(r);
      const float frac = r - static_cast<float>(level);
      if (rng_.bernoulli(frac)) ++level;
      if (level > levels_) level = levels_;
      if (level == 0) continue;
      codes[i] = level | (g < 0.0f ? sign_bit : 0u);
    }
  }
  wire::put<std::uint64_t>(packet.bytes, n);
  wire::put<float>(packet.bytes, norm);
  const std::vector<std::uint8_t> packed = quant::pack_codes(codes, bits_);
  wire::put_span<std::uint8_t>(packet.bytes, packed);
  record_codec_packet(packet.elements, packet);
  return packet;
}

void QsgdCompressor::decompress(const Packet& packet, std::span<float> out) {
  telemetry::TraceSpan trace_span("qsgd.decompress", "codec");
  if (out.size() != packet.elements) {
    throw std::invalid_argument("QsgdCompressor: output size mismatch");
  }
  if (packet.elements == 0) return;
  wire::Reader reader(packet.bytes);
  const auto n = static_cast<std::size_t>(reader.get<std::uint64_t>());
  if (n != packet.elements) throw std::runtime_error("QsgdCompressor: corrupt packet");
  const float norm = reader.get<float>();
  std::vector<std::uint8_t> packed(reader.remaining());
  reader.get_span<std::uint8_t>(packed);
  const std::vector<std::uint32_t> codes =
      std::move(quant::unpack_codes(packed, bits_, n))
          .release([&](const std::vector<std::uint32_t>& c) { return c.size() == n; },
                   "QSGD codes");
  const float s = static_cast<float>(levels_);
  const std::uint32_t sign_bit = std::uint32_t{1} << (bits_ - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t code = codes[i];
    const auto level = static_cast<float>(code & (sign_bit - 1));
    const float sign = (code & sign_bit) ? -1.0f : 1.0f;
    out[i] = norm == 0.0f ? 0.0f : sign * level / s * norm;
  }
}

// ---------------------------------------------------------------------------
// HalfCompressor

Packet HalfCompressor::compress(std::span<const float> gradient) {
  telemetry::TraceSpan trace_span("fp16.compress", "codec");
  Packet packet;
  packet.elements = gradient.size();
  if (gradient.empty()) return packet;
  std::vector<quant::Half> halves(gradient.size());
  quant::float_to_half(gradient, halves);
  wire::put<std::uint64_t>(packet.bytes, gradient.size());
  wire::put_span<quant::Half>(packet.bytes, halves);
  record_codec_packet(packet.elements, packet);
  return packet;
}

void HalfCompressor::decompress(const Packet& packet, std::span<float> out) {
  telemetry::TraceSpan trace_span("fp16.decompress", "codec");
  if (out.size() != packet.elements) {
    throw std::invalid_argument("HalfCompressor: output size mismatch");
  }
  if (packet.elements == 0) return;
  wire::Reader reader(packet.bytes);
  const auto n = static_cast<std::size_t>(reader.get<std::uint64_t>());
  if (n != packet.elements) throw std::runtime_error("HalfCompressor: corrupt packet");
  std::vector<quant::Half> halves(n);
  reader.get_span<quant::Half>(halves);
  quant::half_to_float(halves, out);
}

// ---------------------------------------------------------------------------
// OneBitCompressor

Packet OneBitCompressor::compress(std::span<const float> gradient) {
  telemetry::TraceSpan trace_span("onebit.compress", "codec");
  Packet packet;
  packet.elements = gradient.size();
  const std::size_t n = gradient.size();
  if (n == 0) return packet;
  if (residual_.size() != n) residual_.assign(n, 0.0f);

  // Quantize g + residual; group means preserve the column-wise scale the
  // original method used (one scale pair here — the whole gradient is one
  // "column" after linearization).
  std::vector<std::uint32_t> signs(n);
  double positive_sum = 0.0, negative_sum = 0.0;
  std::size_t positive_count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const float corrected = gradient[i] + residual_[i];
    if (corrected >= 0.0f) {
      signs[i] = 1;
      positive_sum += corrected;
      ++positive_count;
    } else {
      signs[i] = 0;
      negative_sum += corrected;
    }
  }
  const float positive_scale =
      positive_count == 0 ? 0.0f
                          : static_cast<float>(positive_sum / static_cast<double>(positive_count));
  const std::size_t negative_count = n - positive_count;
  const float negative_scale =
      negative_count == 0
          ? 0.0f
          : static_cast<float>(negative_sum / static_cast<double>(negative_count));

  for (std::size_t i = 0; i < n; ++i) {
    const float corrected = gradient[i] + residual_[i];
    const float delivered = signs[i] ? positive_scale : negative_scale;
    residual_[i] = corrected - delivered;
  }

  wire::put<std::uint64_t>(packet.bytes, n);
  wire::put<float>(packet.bytes, positive_scale);
  wire::put<float>(packet.bytes, negative_scale);
  const std::vector<std::uint8_t> packed = quant::pack_codes(signs, 1);
  wire::put_span<std::uint8_t>(packet.bytes, packed);
  record_codec_packet(packet.elements, packet);
  return packet;
}

void OneBitCompressor::decompress(const Packet& packet, std::span<float> out) {
  telemetry::TraceSpan trace_span("onebit.decompress", "codec");
  if (out.size() != packet.elements) {
    throw std::invalid_argument("OneBitCompressor: output size mismatch");
  }
  if (packet.elements == 0) return;
  wire::Reader reader(packet.bytes);
  const auto n = static_cast<std::size_t>(reader.get<std::uint64_t>());
  if (n != packet.elements) throw std::runtime_error("OneBitCompressor: corrupt packet");
  const float positive_scale = reader.get<float>();
  const float negative_scale = reader.get<float>();
  std::vector<std::uint8_t> packed(reader.remaining());
  reader.get_span<std::uint8_t>(packed);
  const std::vector<std::uint32_t> signs =
      std::move(quant::unpack_codes(packed, 1, n))
          .release([&](const std::vector<std::uint32_t>& c) { return c.size() == n; },
                   "one-bit signs");
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = signs[i] ? positive_scale : negative_scale;
  }
}

// ---------------------------------------------------------------------------
// TernGradCompressor

TernGradCompressor::TernGradCompressor(std::uint64_t seed) : rng_(seed) {}

Packet TernGradCompressor::compress(std::span<const float> gradient) {
  telemetry::TraceSpan trace_span("terngrad.compress", "codec");
  Packet packet;
  packet.elements = gradient.size();
  const std::size_t n = gradient.size();
  if (n == 0) return packet;

  float scale = 0.0f;
  for (float g : gradient) scale = std::max(scale, std::fabs(g));
  std::vector<std::uint32_t> codes(n, 0);  // 0 -> 0, 1 -> +1, 2 -> -1
  if (scale > 0.0f) {
    for (std::size_t i = 0; i < n; ++i) {
      const float g = gradient[i];
      const float p = std::fabs(g) / scale;
      if (rng_.bernoulli(p)) codes[i] = g < 0.0f ? 2u : 1u;
    }
  }
  wire::put<std::uint64_t>(packet.bytes, n);
  wire::put<float>(packet.bytes, scale);
  const std::vector<std::uint8_t> packed = quant::pack_codes(codes, 2);
  wire::put_span<std::uint8_t>(packet.bytes, packed);
  record_codec_packet(packet.elements, packet);
  return packet;
}

void TernGradCompressor::decompress(const Packet& packet, std::span<float> out) {
  telemetry::TraceSpan trace_span("terngrad.decompress", "codec");
  if (out.size() != packet.elements) {
    throw std::invalid_argument("TernGradCompressor: output size mismatch");
  }
  if (packet.elements == 0) return;
  wire::Reader reader(packet.bytes);
  const auto n = static_cast<std::size_t>(reader.get<std::uint64_t>());
  if (n != packet.elements) throw std::runtime_error("TernGradCompressor: corrupt packet");
  const float scale = reader.get<float>();
  std::vector<std::uint8_t> packed(reader.remaining());
  reader.get_span<std::uint8_t>(packed);
  // Ternary code space is {0, +1, -1}: a wire value of 3 is well-formed at
  // the bit level but semantically invalid, so reject it here rather than
  // silently decoding it as -scale.
  const std::vector<std::uint32_t> codes =
      std::move(quant::unpack_codes(packed, 2, n))
          .release([&](const std::vector<std::uint32_t>& c) {
            if (c.size() != n) return false;
            for (std::uint32_t code : c) {
              if (code > 2) return false;
            }
            return true;
          }, "ternary codes");
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = codes[i] == 0 ? 0.0f : (codes[i] == 1 ? scale : -scale);
  }
}

}  // namespace fftgrad::core
