#include "fftgrad/core/fft_compressor.h"

#include <algorithm>
#include <cmath>
#include <complex>
#include <stdexcept>

#include "fftgrad/parallel/parallel_for.h"
#include "fftgrad/quant/half.h"
#include "fftgrad/sparse/mask_coding.h"
#include "fftgrad/sparse/pack.h"
#include "fftgrad/telemetry/trace.h"

namespace fftgrad::core {
namespace {

constexpr std::uint8_t kFlagQuantized = 1;

/// Build the exact-k keep bitmap over frequency bins (ties at the threshold
/// broken by bin order, matching sparse::apply_topk_inplace).
sparse::Bitmap keep_mask(std::span<const float> magnitudes, std::size_t k,
                         sparse::TopKMethod method) {
  sparse::Bitmap mask(magnitudes.size());
  if (k >= magnitudes.size()) {
    for (std::size_t i = 0; i < magnitudes.size(); ++i) mask.set(i);
    return mask;
  }
  if (k == 0) return mask;
  const sparse::TopKResult sel = sparse::topk_threshold(magnitudes, k, method);
  std::size_t ties_to_keep = k - sel.above;
  for (std::size_t i = 0; i < magnitudes.size(); ++i) {
    const float m = magnitudes[i];
    if (m > sel.threshold) {
      mask.set(i);
    } else if (m == sel.threshold && ties_to_keep > 0) {
      mask.set(i);
      --ties_to_keep;
    }
  }
  return mask;
}

}  // namespace

FftCompressor::FftCompressor(FftCompressorOptions options) : options_(options) {
  if (options_.theta < 0.0 || options_.theta >= 1.0) {
    throw std::invalid_argument("FftCompressor: theta must be in [0, 1)");
  }
  if (options_.quantizer_bits != 0 &&
      (options_.quantizer_bits < 3 || options_.quantizer_bits > 23)) {
    throw std::invalid_argument("FftCompressor: quantizer_bits must be 0 or in [3, 23]");
  }
}

std::string FftCompressor::name() const {
  return "fft(theta=" + std::to_string(options_.theta) +
         ",q=" + std::to_string(options_.quantizer_bits) + ")";
}

void FftCompressor::set_theta(double theta) {
  if (theta < 0.0 || theta >= 1.0) {
    throw std::invalid_argument("FftCompressor: theta must be in [0, 1)");
  }
  options_.theta = theta;
}

const fft::FftPlan& FftCompressor::plan_for(std::size_t n) {
  auto it = plans_.find(n);
  if (it == plans_.end()) it = plans_.emplace(n, fft::FftPlan(n)).first;
  return it->second;
}

void FftCompressor::calibrate_quantizer(std::span<const float> normalized_parts) {
  // Coefficients are peak-normalized into [-1, 1] before quantization (the
  // peak travels in the packet header), so the codec is calibrated once on
  // the normalized distribution and stays valid as gradient magnitudes
  // shrink over training. Without the normalization a codec frozen on the
  // first (large) gradients underflows everything to zero once training
  // reduces gradient scale — the failure mode behind the paper's advice to
  // estimate the range "from the first few iterations" only works if the
  // representation is scale-free.
  quantizer_ =
      quant::RangeFloat::tune(options_.quantizer_bits, -1.0f, 1.0f, normalized_parts);
}

Packet FftCompressor::compress(std::span<const float> gradient) {
  Packet packet;
  packet.elements = gradient.size();
  const std::size_t n = gradient.size();
  if (n == 0) return packet;

  // Stage 2: fp16 conversion.
  std::vector<float> signal(n);
  {
    telemetry::TraceSpan span("fft.fp16", "codec");
    if (options_.use_fp16_stage) {
      quant::half_round_trip(gradient, signal);
    } else {
      std::copy(gradient.begin(), gradient.end(), signal.begin());
    }
  }

  // Stage 3: real FFT.
  const fft::FftPlan& plan = plan_for(n);
  const std::size_t bins = plan.real_bins();
  std::vector<fft::cfloat> spectrum(bins);
  {
    telemetry::TraceSpan span("fft.rfft", "codec");
    plan.rfft(signal, spectrum);
  }

  // Stage 4: top-k truncation over bin moduli.
  const std::size_t kept_target = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround((1.0 - options_.theta) *
                                               static_cast<double>(bins))));
  std::vector<float> magnitudes(bins);
  sparse::Bitmap mask;
  {
    telemetry::TraceSpan span("fft.lowpass", "codec");
    for (std::size_t i = 0; i < bins; ++i) magnitudes[i] = std::abs(spectrum[i]);
    mask = keep_mask(magnitudes, kept_target, options_.topk_method);
  }

  // Stage 6 (gather part): pack surviving bins densely, in bin order.
  auto& pool = parallel::ThreadPool::global();
  std::vector<fft::cfloat> kept;
  {
    telemetry::TraceSpan span("fft.pack", "codec");
    kept = sparse::pack_bitmap<fft::cfloat>(pool, spectrum, mask);
  }
  // View the kept coefficients as interleaved re/im floats for stage 5.
  std::span<const float> parts(reinterpret_cast<const float*>(kept.data()), kept.size() * 2);

  // Stage 5: range-based quantization of the peak-normalized coefficients.
  float peak = 0.0f;
  bool quantized = false;
  std::vector<float> normalized;
  {
    telemetry::TraceSpan span("fft.quantize", "codec");
    for (float v : parts) peak = std::max(peak, std::fabs(v));
    quantized = options_.quantizer_bits != 0 && peak > 0.0f;
    if (quantized) {
      normalized.resize(parts.size());
      const float inv_peak = 1.0f / peak;
      for (std::size_t i = 0; i < parts.size(); ++i) normalized[i] = parts[i] * inv_peak;
      if (!quantizer_ || !options_.freeze_quantizer) calibrate_quantizer(normalized);
    }
  }

  // Wire format: header, bitmap words, then coefficient payload.
  telemetry::TraceSpan encode_span("fft.encode", "codec");
  wire::put<std::uint64_t>(packet.bytes, n);
  wire::put<std::uint64_t>(packet.bytes, kept.size());
  std::uint8_t flags = quantized ? kFlagQuantized : 0;
  wire::put<std::uint8_t>(packet.bytes, flags);
  if (quantized) {
    const quant::RangeFloatParams& p = quantizer_->params();
    wire::put<std::int32_t>(packet.bytes, p.bits);
    wire::put<std::int32_t>(packet.bytes, p.mantissa_bits);
    wire::put<float>(packet.bytes, p.min);
    wire::put<float>(packet.bytes, p.max);
    wire::put<float>(packet.bytes, p.eps);
    wire::put<float>(packet.bytes, peak);
  }
  const std::vector<std::uint8_t> mask_bytes = sparse::encode_mask(mask);
  wire::put<std::uint64_t>(packet.bytes, mask_bytes.size());
  wire::put_span<std::uint8_t>(packet.bytes, mask_bytes);
  if (quantized) {
    std::vector<std::uint32_t> codes(normalized.size());
    quantizer_->encode(normalized, codes);
    const std::vector<std::uint8_t> packed =
        quant::pack_codes(codes, quantizer_->params().bits);
    wire::put_span<std::uint8_t>(packet.bytes, packed);
  } else {
    wire::put_span<float>(packet.bytes, parts);
  }
  record_codec_packet(n, packet);
  return packet;
}

void FftCompressor::decompress(const Packet& packet, std::span<float> out) {
  if (out.size() != packet.elements) {
    throw std::invalid_argument("FftCompressor::decompress: output size mismatch");
  }
  if (packet.elements == 0) return;
  wire::Reader reader(packet.bytes);
  const auto n = static_cast<std::size_t>(reader.get<std::uint64_t>());
  if (n != packet.elements) throw std::runtime_error("FftCompressor: corrupt packet header");
  const auto kept_count = static_cast<std::size_t>(reader.get<std::uint64_t>());
  const std::uint8_t flags = reader.get<std::uint8_t>();

  std::optional<quant::RangeFloat> codec;
  float peak = 1.0f;
  if (flags & kFlagQuantized) {
    quant::RangeFloatParams p;
    p.bits = reader.get<std::int32_t>();
    p.mantissa_bits = reader.get<std::int32_t>();
    p.min = reader.get<float>();
    p.max = reader.get<float>();
    p.eps = reader.get<float>();
    peak = reader.get<float>();
    codec.emplace(p);
  }

  const fft::FftPlan& plan = plan_for(n);
  const std::size_t bins = plan.real_bins();
  if (kept_count > bins) throw std::runtime_error("FftCompressor: corrupt kept count");
  const std::size_t mask_size = reader.get_count(sizeof(std::uint8_t));
  std::vector<std::uint8_t> mask_bytes(mask_size);
  reader.get_span<std::uint8_t>(mask_bytes);
  // Receiver expectation: the mask's survivor count must match the packet's
  // kept-coefficient count, or unpack_bitmap would mispair values and bins.
  const sparse::Bitmap mask =
      std::move(sparse::decode_mask(mask_bytes, bins))
          .release([&](const sparse::Bitmap& m) { return m.count() == kept_count; },
                   "FFT keep-mask");

  std::vector<fft::cfloat> kept(kept_count);
  std::span<float> parts(reinterpret_cast<float*>(kept.data()), kept_count * 2);
  {
    telemetry::TraceSpan span("fft.dequantize", "codec");
    if (codec) {
      std::vector<std::uint8_t> packed(reader.remaining());
      reader.get_span<std::uint8_t>(packed);
      const std::vector<std::uint32_t> codes =
          std::move(quant::unpack_codes(packed, codec->params().bits, parts.size()))
              .release([&](const std::vector<std::uint32_t>& c) {
                return c.size() == parts.size();
              }, "FFT quantized coefficients");
      codec->decode(codes, parts);
      for (float& v : parts) v *= peak;
    } else {
      reader.get_span<float>(parts);
    }
  }

  std::vector<fft::cfloat> spectrum(bins);
  auto& pool = parallel::ThreadPool::global();
  {
    telemetry::TraceSpan span("fft.unpack", "codec");
    sparse::unpack_bitmap<fft::cfloat>(pool, kept, mask, spectrum);
  }
  telemetry::TraceSpan span("fft.irfft", "codec");
  plan.irfft(spectrum, out);
}

}  // namespace fftgrad::core
