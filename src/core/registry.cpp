#include "fftgrad/core/registry.h"

#include <charconv>
#include <map>
#include <stdexcept>

#include "fftgrad/core/baseline_compressors.h"
#include "fftgrad/core/chunked_compressor.h"
#include "fftgrad/core/error_feedback.h"
#include "fftgrad/core/fft_compressor.h"

namespace fftgrad::core {
namespace {

[[noreturn]] void fail(std::string_view spec, const std::string& why) {
  throw std::invalid_argument("make_compressor(\"" + std::string(spec) + "\"): " + why);
}

std::map<std::string, std::string, std::less<>> parse_kvlist(std::string_view spec,
                                                             std::string_view kvlist) {
  std::map<std::string, std::string, std::less<>> out;
  std::size_t at = 0;
  while (at < kvlist.size()) {
    const std::size_t comma = kvlist.find(',', at);
    const std::string_view pair =
        kvlist.substr(at, comma == std::string_view::npos ? std::string_view::npos : comma - at);
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos || eq == 0 || eq + 1 >= pair.size()) {
      fail(spec, "expected key=value, got '" + std::string(pair) + "'");
    }
    out.emplace(std::string(pair.substr(0, eq)), std::string(pair.substr(eq + 1)));
    if (comma == std::string_view::npos) break;
    at = comma + 1;
  }
  return out;
}

double parse_double(std::string_view spec, const std::string& value) {
  try {
    std::size_t used = 0;
    const double parsed = std::stod(value, &used);
    if (used != value.size()) throw std::invalid_argument("trailing characters");
    return parsed;
  } catch (const std::exception&) {
    fail(spec, "bad numeric value '" + value + "'");
  }
}

long parse_long(std::string_view spec, const std::string& value) {
  long parsed = 0;
  const auto* begin = value.data();
  const auto* end = begin + value.size();
  const auto [ptr, ec] = std::from_chars(begin, end, parsed);
  if (ec != std::errc() || ptr != end) fail(spec, "bad integer value '" + value + "'");
  return parsed;
}

template <typename Map>
void reject_unknown_keys(std::string_view spec, const Map& kv,
                         std::initializer_list<std::string_view> allowed) {
  for (const auto& [key, value] : kv) {
    bool ok = false;
    for (std::string_view a : allowed) {
      if (key == a) ok = true;
    }
    if (!ok) fail(spec, "unknown option '" + key + "'");
  }
}

std::unique_ptr<GradientCompressor> parse(std::string_view spec, std::string_view token);

std::unique_ptr<GradientCompressor> parse_base(std::string_view spec, std::string_view token) {
  std::string_view algo = token;
  std::string_view kvlist;
  const std::size_t colon = token.find(':');
  if (colon != std::string_view::npos) {
    algo = token.substr(0, colon);
    kvlist = token.substr(colon + 1);
  }
  const auto kv = parse_kvlist(spec, kvlist);

  if (algo == "none") {
    reject_unknown_keys(spec, kv, {});
    return std::make_unique<NoopCompressor>();
  }
  if (algo == "fp16") {
    reject_unknown_keys(spec, kv, {});
    return std::make_unique<HalfCompressor>();
  }
  if (algo == "onebit") {
    reject_unknown_keys(spec, kv, {});
    return std::make_unique<OneBitCompressor>();
  }
  if (algo == "fft") {
    reject_unknown_keys(spec, kv, {"theta", "bits", "fp16"});
    FftCompressorOptions options;
    if (auto it = kv.find("theta"); it != kv.end()) options.theta = parse_double(spec, it->second);
    if (auto it = kv.find("bits"); it != kv.end()) {
      options.quantizer_bits = static_cast<int>(parse_long(spec, it->second));
    }
    if (auto it = kv.find("fp16"); it != kv.end()) {
      options.use_fp16_stage = parse_long(spec, it->second) != 0;
    }
    return std::make_unique<FftCompressor>(options);
  }
  if (algo == "topk") {
    reject_unknown_keys(spec, kv, {"theta"});
    double theta = 0.85;
    if (auto it = kv.find("theta"); it != kv.end()) theta = parse_double(spec, it->second);
    return std::make_unique<TopKCompressor>(theta);
  }
  if (algo == "qsgd") {
    reject_unknown_keys(spec, kv, {"bits", "seed"});
    int bits = 3;
    std::uint64_t seed = 0x95fd1e7u;
    if (auto it = kv.find("bits"); it != kv.end()) {
      bits = static_cast<int>(parse_long(spec, it->second));
    }
    if (auto it = kv.find("seed"); it != kv.end()) {
      seed = static_cast<std::uint64_t>(parse_long(spec, it->second));
    }
    return std::make_unique<QsgdCompressor>(bits, seed);
  }
  if (algo == "terngrad") {
    reject_unknown_keys(spec, kv, {"seed"});
    std::uint64_t seed = 0x7e46c0deu;
    if (auto it = kv.find("seed"); it != kv.end()) {
      seed = static_cast<std::uint64_t>(parse_long(spec, it->second));
    }
    return std::make_unique<TernGradCompressor>(seed);
  }
  fail(spec, "unknown algorithm '" + std::string(algo) + "'");
}

std::unique_ptr<GradientCompressor> parse(std::string_view spec, std::string_view token) {
  if (token.starts_with("ef[")) {
    if (!token.ends_with(']')) fail(spec, "unbalanced brackets in '" + std::string(token) + "'");
    return std::make_unique<ErrorFeedbackCompressor>(
        parse(spec, token.substr(3, token.size() - 4)));
  }
  if (token.starts_with("chunked:")) {
    const std::size_t open = token.find('[');
    if (open == std::string_view::npos || !token.ends_with(']')) {
      fail(spec, "chunked needs the form chunked:<elements>[<spec>]");
    }
    const long elements = parse_long(spec, std::string(token.substr(8, open - 8)));
    if (elements <= 0) fail(spec, "chunk size must be positive");
    const std::string inner(token.substr(open + 1, token.size() - open - 2));
    return std::make_unique<ChunkedCompressor>(
        [inner, spec_copy = std::string(spec)](std::size_t) {
          return parse(spec_copy, inner);
        },
        static_cast<std::size_t>(elements));
  }
  return parse_base(spec, token);
}

}  // namespace

std::unique_ptr<GradientCompressor> make_compressor(std::string_view spec) {
  if (spec.empty()) fail(spec, "empty spec");
  return parse(spec, spec);
}

std::vector<std::string> known_compressors() {
  return {"none", "fp16", "onebit", "fft", "topk", "qsgd", "terngrad", "ef[...]",
          "chunked:N[...]"};
}

}  // namespace fftgrad::core
