#include "fftgrad/core/chunked_compressor.h"

#include <stdexcept>

namespace fftgrad::core {

ChunkedCompressor::ChunkedCompressor(InnerFactory factory, std::size_t chunk_elements)
    : factory_(std::move(factory)), chunk_elements_(chunk_elements) {
  if (!factory_) throw std::invalid_argument("ChunkedCompressor: null factory");
  if (chunk_elements_ == 0) {
    throw std::invalid_argument("ChunkedCompressor: chunk_elements must be > 0");
  }
}

GradientCompressor& ChunkedCompressor::codec_for(std::size_t chunk) {
  while (codecs_.size() <= chunk) {
    codecs_.push_back(factory_(codecs_.size()));
    if (!codecs_.back()) throw std::logic_error("ChunkedCompressor: factory returned null");
    if (theta_set_) codecs_.back()->set_theta(theta_);
  }
  return *codecs_[chunk];
}

std::string ChunkedCompressor::name() const {
  const std::string inner =
      codecs_.empty() ? std::string("?") : codecs_.front()->name();
  return "chunked(" + std::to_string(chunk_elements_) + ")[" + inner + "]";
}

void ChunkedCompressor::set_theta(double theta) {
  theta_ = theta;
  theta_set_ = true;
  for (auto& codec : codecs_) codec->set_theta(theta);
}

double ChunkedCompressor::theta() const {
  return codecs_.empty() ? theta_ : codecs_.front()->theta();
}

double ChunkedCompressor::modeled_seconds_per_byte(
    const perfmodel::PrimitiveThroughputs& t) const {
  // Per-byte cost matches the inner codec's; chunking changes latency
  // structure (overlap opportunity), not the per-byte pipeline work.
  if (!codecs_.empty()) return codecs_.front()->modeled_seconds_per_byte(t);
  // No chunk seen yet: create a throwaway instance to ask.
  return factory_(0)->modeled_seconds_per_byte(t);
}

Packet ChunkedCompressor::compress(std::span<const float> gradient) {
  Packet packet;
  packet.elements = gradient.size();
  const std::size_t chunks =
      gradient.empty() ? 0 : (gradient.size() + chunk_elements_ - 1) / chunk_elements_;
  wire::put<std::uint64_t>(packet.bytes, gradient.size());
  wire::put<std::uint64_t>(packet.bytes, chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * chunk_elements_;
    const std::size_t len = std::min(chunk_elements_, gradient.size() - begin);
    const Packet inner = codec_for(c).compress(gradient.subspan(begin, len));
    wire::put<std::uint64_t>(packet.bytes, inner.bytes.size());
    wire::put_span<std::uint8_t>(packet.bytes, inner.bytes);
  }
  return packet;
}

void ChunkedCompressor::decompress(const Packet& packet, std::span<float> out) {
  if (out.size() != packet.elements) {
    throw std::invalid_argument("ChunkedCompressor: output size mismatch");
  }
  if (packet.elements == 0) return;
  wire::Reader reader(packet.bytes);
  const auto total = static_cast<std::size_t>(reader.get<std::uint64_t>());
  if (total != packet.elements) throw std::runtime_error("ChunkedCompressor: corrupt packet");
  const auto chunks = static_cast<std::size_t>(reader.get<std::uint64_t>());
  // The chunk count is implied by (total, chunk_elements_); a wire value
  // that disagrees would drive begin past `total` (underflowing `len`) and
  // spin up one codec instance per claimed chunk.
  if (chunks != (total + chunk_elements_ - 1) / chunk_elements_) {
    throw std::runtime_error("ChunkedCompressor: corrupt chunk count");
  }
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * chunk_elements_;
    const std::size_t len = std::min(chunk_elements_, total - begin);
    Packet inner;
    inner.elements = len;
    // get_count: reject per-chunk sizes larger than the bytes actually
    // present instead of allocating a corrupt 64-bit length.
    inner.bytes.resize(reader.get_count(1));
    reader.get_span<std::uint8_t>(inner.bytes);
    codec_for(c).decompress(inner, out.subspan(begin, len));
  }
}

}  // namespace fftgrad::core
