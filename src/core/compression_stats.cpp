#include "fftgrad/core/compression_stats.h"

#include <cmath>

#include "fftgrad/util/stats.h"

namespace fftgrad::core {

RoundTripStats measure_round_trip(GradientCompressor& compressor,
                                  std::span<const float> gradient,
                                  std::vector<float>& reconstructed) {
  reconstructed.assign(gradient.size(), 0.0f);
  const Packet packet = compressor.compress(gradient);
  compressor.decompress(packet, reconstructed);

  RoundTripStats stats;
  stats.alpha = util::relative_error_alpha(gradient, reconstructed);
  stats.rms_error = util::rms_error(gradient, reconstructed);
  for (std::size_t i = 0; i < gradient.size(); ++i) {
    stats.max_error =
        std::max(stats.max_error, std::fabs(static_cast<double>(gradient[i]) - reconstructed[i]));
  }
  stats.wire_bytes = packet.wire_bytes();
  stats.ratio = packet.ratio();
  return stats;
}

}  // namespace fftgrad::core
