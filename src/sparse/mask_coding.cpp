#include "fftgrad/sparse/mask_coding.h"

#include <bit>
#include <cstring>
#include <span>
#include <stdexcept>

namespace fftgrad::sparse {
namespace {

/// Append `count` values of `bits` width each, little-endian bit order.
void pack_indices(std::vector<std::uint8_t>& out, const std::vector<std::uint64_t>& values,
                  int bits) {
  const std::size_t start = out.size();
  out.resize(start + (values.size() * static_cast<std::size_t>(bits) + 7) / 8, 0);
  std::size_t bit_at = 0;
  for (std::uint64_t value : values) {
    std::size_t byte = start + (bit_at >> 3);
    const std::size_t offset = bit_at & 7;
    __uint128_t shifted = static_cast<__uint128_t>(value) << offset;
    for (int remaining = bits + static_cast<int>(offset); remaining > 0;
         remaining -= 8, shifted >>= 8, ++byte) {
      out[byte] |= static_cast<std::uint8_t>(shifted & 0xffu);
    }
    bit_at += static_cast<std::size_t>(bits);
  }
}

std::vector<std::uint64_t> unpack_indices(std::span<const std::uint8_t> bytes, int bits,
                                          std::size_t count) {
  // Division form: `count * bits` can wrap for a wire-supplied count, which
  // would let a corrupt header pass the length check and read out of bounds.
  if (count > bytes.size() * 8 / static_cast<std::size_t>(bits)) {
    throw std::invalid_argument("decode_mask: truncated index payload");
  }
  std::vector<std::uint64_t> values(count);
  const std::uint64_t mask =
      bits >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << bits) - 1);
  std::size_t bit_at = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t byte = bit_at >> 3;
    const std::size_t offset = bit_at & 7;
    __uint128_t value = 0;
    const std::size_t span_bytes = (offset + static_cast<std::size_t>(bits) + 7) / 8;
    for (std::size_t b = 0; b < span_bytes; ++b) {
      value |= static_cast<__uint128_t>(bytes[byte + b]) << (8 * b);
    }
    values[i] = static_cast<std::uint64_t>(value >> offset) & mask;
    bit_at += static_cast<std::size_t>(bits);
  }
  return values;
}

}  // namespace

int index_bits(std::size_t n) {
  if (n <= 1) return 1;
  return 64 - std::countl_zero(static_cast<std::uint64_t>(n - 1));
}

std::size_t bitmap_encoding_bytes(std::size_t n) { return ((n + 63) / 64) * 8; }

std::size_t index_encoding_bytes(std::size_t n, std::size_t kept) {
  // 8-byte survivor count + packed indices.
  return 8 + (kept * static_cast<std::size_t>(index_bits(n)) + 7) / 8;
}

MaskEncoding choose_mask_encoding(std::size_t n, std::size_t kept) {
  return index_encoding_bytes(n, kept) < bitmap_encoding_bytes(n) ? MaskEncoding::kIndexList
                                                                  : MaskEncoding::kBitmap;
}

std::vector<std::uint8_t> encode_mask(const Bitmap& mask) {
  const std::size_t n = mask.size();
  const std::size_t kept = mask.count();
  std::vector<std::uint8_t> out;
  const MaskEncoding encoding = choose_mask_encoding(n, kept);
  out.push_back(static_cast<std::uint8_t>(encoding));
  if (encoding == MaskEncoding::kBitmap) {
    const auto words = mask.words();
    const auto* raw = reinterpret_cast<const std::uint8_t*>(words.data());
    out.insert(out.end(), raw, raw + words.size_bytes());
    return out;
  }
  // Index list: survivor count then packed positions in ascending order.
  const std::uint64_t count = kept;
  const auto* count_raw = reinterpret_cast<const std::uint8_t*>(&count);
  out.insert(out.end(), count_raw, count_raw + sizeof(count));
  std::vector<std::uint64_t> positions;
  positions.reserve(kept);
  for (std::size_t i = 0; i < n; ++i) {
    if (mask.test(i)) positions.push_back(i);
  }
  pack_indices(out, positions, index_bits(n));
  return out;
}

util::Untrusted<Bitmap> decode_mask(std::span<const std::uint8_t> bytes, std::size_t n) {
  if (bytes.empty()) throw std::invalid_argument("decode_mask: empty payload");
  const auto encoding = static_cast<MaskEncoding>(bytes[0]);
  Bitmap mask(n);
  if (encoding == MaskEncoding::kBitmap) {
    auto words = mask.words();
    if (bytes.size() - 1 < words.size_bytes()) {
      throw std::invalid_argument("decode_mask: truncated bitmap payload");
    }
    std::uint64_t* dest = words.data();
    if (dest != nullptr) std::memcpy(dest, bytes.data() + 1, words.size_bytes());
    return util::untrusted(std::move(mask));
  }
  if (encoding != MaskEncoding::kIndexList) {
    throw std::invalid_argument("decode_mask: unknown encoding tag");
  }
  if (bytes.size() < 9) throw std::invalid_argument("decode_mask: truncated index header");
  std::uint64_t count = 0;
  std::memcpy(&count, bytes.data() + 1, sizeof(count));
  if (count > n) throw std::invalid_argument("decode_mask: survivor count exceeds length");
  const auto positions =
      unpack_indices(bytes.subspan(9), index_bits(n), static_cast<std::size_t>(count));
  for (std::uint64_t p : positions) {
    if (p >= n) throw std::invalid_argument("decode_mask: index out of range");
    mask.set(static_cast<std::size_t>(p));
  }
  return util::untrusted(std::move(mask));
}

}  // namespace fftgrad::sparse
