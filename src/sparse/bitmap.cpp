#include "fftgrad/sparse/bitmap.h"

#include <bit>

namespace fftgrad::sparse {

std::size_t Bitmap::count() const {
  std::size_t total = 0;
  for (std::uint64_t word : words_) total += static_cast<std::size_t>(std::popcount(word));
  return total;
}

std::size_t Bitmap::rank(std::size_t i) const {
  std::size_t total = 0;
  const std::size_t full_words = i >> 6;
  for (std::size_t w = 0; w < full_words; ++w) {
    total += static_cast<std::size_t>(std::popcount(words_[w]));
  }
  const std::size_t rem = i & 63;
  if (rem != 0) {
    const std::uint64_t mask = (std::uint64_t{1} << rem) - 1;
    total += static_cast<std::size_t>(std::popcount(words_[full_words] & mask));
  }
  return total;
}

}  // namespace fftgrad::sparse
