#include "fftgrad/sparse/topk.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "fftgrad/parallel/parallel_for.h"

namespace fftgrad::sparse {
namespace {

TopKResult finalize(std::span<const float> magnitudes, float threshold) {
  TopKResult result;
  result.threshold = threshold;
  auto counts = parallel::parallel_reduce<std::pair<std::size_t, std::size_t>>(
      parallel::ThreadPool::global(), magnitudes.size(), {0, 0},
      [&](std::size_t begin, std::size_t end) {
        std::size_t above = 0, at = 0;
        for (std::size_t i = begin; i < end; ++i) {
          if (magnitudes[i] > threshold) {
            ++above;
          } else if (magnitudes[i] == threshold) {
            ++at;
          }
        }
        return std::make_pair(above, at);
      },
      [](auto a, auto b) { return std::make_pair(a.first + b.first, a.second + b.second); });
  result.above = counts.first;
  result.at_threshold = counts.second;
  return result;
}

float kth_largest_sort(std::span<const float> magnitudes, std::size_t k) {
  std::vector<float> copy(magnitudes.begin(), magnitudes.end());
  std::sort(copy.begin(), copy.end(), std::greater<float>());
  return copy[k - 1];
}

float kth_largest_nth(std::span<const float> magnitudes, std::size_t k) {
  std::vector<float> copy(magnitudes.begin(), magnitudes.end());
  std::nth_element(copy.begin(), copy.begin() + static_cast<std::ptrdiff_t>(k - 1), copy.end(),
                   std::greater<float>());
  return copy[k - 1];
}

/// Iterative bucket refinement: histogram the candidate range into 256
/// buckets, find the bucket containing the k-th largest, recurse on that
/// bucket only. Each histogram pass is parallel over the pool. Converges in
/// a handful of passes because the candidate interval shrinks ~256x per
/// pass; an equal-bounds interval is returned immediately.
float kth_largest_bucket(std::span<const float> magnitudes, std::size_t k) {
  constexpr std::size_t kBuckets = 256;
  float lo = std::numeric_limits<float>::infinity();
  float hi = -std::numeric_limits<float>::infinity();
  for (float m : magnitudes) {
    lo = std::min(lo, m);
    hi = std::max(hi, m);
  }
  std::size_t rank = k;  // rank-th largest within [lo, hi]
  for (int pass = 0; pass < 64; ++pass) {
    if (!(hi > lo)) return lo;
    const double width = (static_cast<double>(hi) - lo) / kBuckets;
    using Hist = std::array<std::size_t, kBuckets>;
    Hist hist = parallel::parallel_reduce<Hist>(
        parallel::ThreadPool::global(), magnitudes.size(), Hist{},
        [&](std::size_t begin, std::size_t end) {
          Hist local{};
          for (std::size_t i = begin; i < end; ++i) {
            const float m = magnitudes[i];
            if (m < lo || m > hi) continue;
            auto b = static_cast<std::size_t>((static_cast<double>(m) - lo) / width);
            if (b >= kBuckets) b = kBuckets - 1;
            ++local[b];
          }
          return local;
        },
        [](Hist a, const Hist& b) {
          for (std::size_t i = 0; i < kBuckets; ++i) a[i] += b[i];
          return a;
        });

    // Walk buckets from the top until the cumulative count reaches `rank`.
    std::size_t cumulative = 0;
    std::size_t bucket = kBuckets;
    for (std::size_t b = kBuckets; b-- > 0;) {
      if (cumulative + hist[b] >= rank) {
        bucket = b;
        break;
      }
      cumulative += hist[b];
    }
    if (bucket == kBuckets) return lo;  // numeric edge: everything below lo
    rank -= cumulative;
    const float new_lo = static_cast<float>(lo + width * static_cast<double>(bucket));
    const float new_hi = static_cast<float>(lo + width * static_cast<double>(bucket + 1));
    if (hist[bucket] == 1 || new_lo >= new_hi || (new_lo == lo && new_hi == hi)) {
      // Bucket cannot shrink further (all candidates equal to float
      // precision): resolve the exact k-th by a final scan.
      std::vector<float> candidates;
      for (float m : magnitudes) {
        if (m >= new_lo && m <= new_hi) candidates.push_back(m);
      }
      std::nth_element(candidates.begin(),
                       candidates.begin() + static_cast<std::ptrdiff_t>(rank - 1),
                       candidates.end(), std::greater<float>());
      return candidates[rank - 1];
    }
    lo = new_lo;
    hi = new_hi;
  }
  return lo;
}

}  // namespace

TopKResult topk_threshold(std::span<const float> magnitudes, std::size_t k, TopKMethod method) {
  if (k == 0) {
    return {std::numeric_limits<float>::infinity(), 0, 0};
  }
  if (k > magnitudes.size()) {
    throw std::invalid_argument("topk_threshold: k exceeds element count");
  }
  float threshold = 0.0f;
  switch (method) {
    case TopKMethod::kSort: threshold = kth_largest_sort(magnitudes, k); break;
    case TopKMethod::kNthElement: threshold = kth_largest_nth(magnitudes, k); break;
    case TopKMethod::kBucket: threshold = kth_largest_bucket(magnitudes, k); break;
  }
  return finalize(magnitudes, threshold);
}

float apply_topk_inplace(std::span<float> values, std::size_t k, TopKMethod method) {
  if (k >= values.size()) return 0.0f;  // keep everything
  if (k == 0) {
    std::fill(values.begin(), values.end(), 0.0f);
    return std::numeric_limits<float>::infinity();
  }
  std::vector<float> magnitudes(values.size());
  parallel::parallel_for(values.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) magnitudes[i] = std::fabs(values[i]);
  });
  const TopKResult sel = topk_threshold(magnitudes, k, method);
  // Keep all elements above the threshold plus the first (k - above) at the
  // threshold, so exactly k survive even with ties.
  std::size_t ties_to_keep = k - sel.above;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const float m = magnitudes[i];
    if (m > sel.threshold) continue;
    if (m == sel.threshold && ties_to_keep > 0) {
      --ties_to_keep;
      continue;
    }
    values[i] = 0.0f;
  }
  return sel.threshold;
}

}  // namespace fftgrad::sparse
