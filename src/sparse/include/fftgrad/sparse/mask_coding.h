// Wire encodings for the keep-mask that accompanies a packed sparse vector.
//
// The paper's status vector is a plain bitmap: n bits regardless of how
// sparse the data is, which caps the useful compression ratio near 20x
// (Fig 6). For very sparse masks an explicit index list — ceil(log2 n) bits
// per survivor — is smaller; the crossover is at density 1/ceil(log2 n).
// encode_mask() picks whichever is smaller and tags the choice, so the
// receiver is format-agnostic. This removes the Fig 6 ratio ceiling for
// theta > ~0.97 (see bench_fig06_status_overhead's extension columns).
#pragma once

#include <cstdint>
#include <vector>

#include "fftgrad/sparse/bitmap.h"
#include "fftgrad/util/taint.h"

namespace fftgrad::sparse {

enum class MaskEncoding : std::uint8_t { kBitmap = 0, kIndexList = 1 };

/// Bits needed to address positions in [0, n).
int index_bits(std::size_t n);

/// Size in bytes of each encoding for a mask of `n` bits with `kept` set.
std::size_t bitmap_encoding_bytes(std::size_t n);
std::size_t index_encoding_bytes(std::size_t n, std::size_t kept);

/// The cheaper encoding for the given shape.
MaskEncoding choose_mask_encoding(std::size_t n, std::size_t kept);

/// Serialize `mask` using the cheaper encoding (1 tag byte + payload).
std::vector<std::uint8_t> encode_mask(const Bitmap& mask);

/// Inverse of encode_mask; `n` is the mask length in bits. The payload is
/// wire input, so the parsed mask comes back Untrusted: release it through
/// a validator asserting the receiver's expectations (e.g. the survivor
/// count matches the payload that follows it in the packet).
util::Untrusted<Bitmap> decode_mask(std::span<const std::uint8_t> bytes, std::size_t n);

}  // namespace fftgrad::sparse
