// Top-k selection over magnitudes: the thresholding primitive behind both
// the paper's FFT sparsifier (keep the top (1-theta) fraction of frequency
// components) and the Top-k baseline (keep the top (1-theta) fraction of
// raw gradients).
//
// Three interchangeable algorithms are provided (ablated in
// bench_micro_primitives):
//   kSort        full std::sort of magnitudes — O(n log n), the reference.
//   kNthElement  std::nth_element — O(n) expected, serial.
//   kBucket      iterative histogram refinement (the CPU analogue of the
//                GPU bucketSelect algorithm the paper cites) — O(n) passes,
//                each pass parallelized over the thread pool.
//
// All return the magnitude of the k-th largest element ("threshold") and a
// count of how many elements strictly exceed it, so callers can keep
// exactly k elements even in the presence of ties.
#pragma once

#include <cstddef>
#include <span>

namespace fftgrad::sparse {

enum class TopKMethod { kSort, kNthElement, kBucket };

struct TopKResult {
  float threshold = 0.0f;      ///< magnitude of the k-th largest element
  std::size_t above = 0;       ///< elements with magnitude > threshold
  std::size_t at_threshold = 0;///< elements with magnitude == threshold
};

/// Find the k-th largest value of `magnitudes` (k in [1, n]). Magnitudes
/// must be non-negative (callers pass |x| or complex modulus). k == 0
/// returns a threshold of +inf (keep nothing).
TopKResult topk_threshold(std::span<const float> magnitudes, std::size_t k,
                          TopKMethod method = TopKMethod::kNthElement);

/// Zero every element of `values` except the k with largest |value|.
/// Exactly k survive (ties at the threshold are broken by index order).
/// Returns the threshold used.
float apply_topk_inplace(std::span<float> values, std::size_t k,
                         TopKMethod method = TopKMethod::kNthElement);

}  // namespace fftgrad::sparse
