// Packing sparse vectors into dense ones (Sec 3.2 of the paper).
//
// Two parallel implementations are provided:
//
//  * pack_scan — the paper's literal three-step algorithm: mark a status
//    flag per element, parallel inclusive prefix-sum over the flags to get
//    each survivor's destination, then scatter. This is the version whose
//    689x GPU speedup the paper reports; bench_packing reproduces the
//    serial-vs-parallel comparison on the thread pool.
//
//  * pack_bitmap — the optimized variant used by the compressors: the keep
//    mask is already a word-level Bitmap, so destinations come from an
//    exclusive scan over per-word popcounts (64 elements per scan entry
//    instead of 1), then a parallel scatter.
//
// unpack_bitmap is the inverse scatter used by the receiver. All functions
// are templated over trivially copyable element types (float for raw
// gradients, std::complex<float> for frequency bins, std::uint32_t for
// quantized codes).
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "fftgrad/parallel/parallel_for.h"
#include "fftgrad/sparse/bitmap.h"

namespace fftgrad::sparse {

/// Build the status bitmap of non-zero positions of `sparse` (step 1 of the
/// paper's algorithm, at word granularity).
template <typename T>
Bitmap nonzero_bitmap(std::span<const T> sparse) {
  Bitmap bitmap(sparse.size());
  auto words = bitmap.words();
  parallel::parallel_for(words.size(), [&](std::size_t wbegin, std::size_t wend) {
    for (std::size_t w = wbegin; w < wend; ++w) {
      std::uint64_t word = 0;
      const std::size_t base = w * 64;
      const std::size_t limit = std::min<std::size_t>(64, sparse.size() - base);
      for (std::size_t b = 0; b < limit; ++b) {
        if (sparse[base + b] != T{}) word |= std::uint64_t{1} << b;
      }
      words[w] = word;
    }
  });
  return bitmap;
}

/// Paper's literal algorithm: per-element status -> inclusive scan ->
/// scatter. Returns the dense vector of survivors in index order.
template <typename T>
std::vector<T> pack_scan(parallel::ThreadPool& pool, std::span<const T> sparse) {
  const std::size_t n = sparse.size();
  std::vector<std::uint32_t> status(n);
  parallel::parallel_for(pool, n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) status[i] = sparse[i] != T{} ? 1u : 0u;
  });
  std::vector<std::uint32_t> location(n);
  parallel::parallel_inclusive_scan<std::uint32_t, std::uint32_t>(pool, status, location);
  const std::size_t kept = n == 0 ? 0 : location[n - 1];
  std::vector<T> dense(kept);
  parallel::parallel_for(pool, n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      if (status[i]) dense[location[i] - 1] = sparse[i];
    }
  });
  return dense;
}

/// Single-threaded reference (the baseline of the paper's 689x comparison).
template <typename T>
std::vector<T> pack_serial(std::span<const T> sparse) {
  std::vector<T> dense;
  for (const T& v : sparse) {
    if (v != T{}) dense.push_back(v);
  }
  return dense;
}

/// Optimized pack: keep-positions come from `keep` (word-granular popcount
/// scan + parallel scatter). Elements of `sparse` at cleared positions are
/// ignored regardless of value, so callers may pass the unmodified input
/// alongside a top-k mask.
template <typename T>
std::vector<T> pack_bitmap(parallel::ThreadPool& pool, std::span<const T> sparse,
                           const Bitmap& keep) {
  if (keep.size() != sparse.size()) throw std::invalid_argument("pack_bitmap: size mismatch");
  auto words = keep.words();
  std::vector<std::uint32_t> word_counts(words.size());
  for (std::size_t w = 0; w < words.size(); ++w) {
    word_counts[w] = static_cast<std::uint32_t>(std::popcount(words[w]));
  }
  // Exclusive scan over word popcounts (serial: word count is n/64).
  std::vector<std::uint32_t> word_offsets(words.size() + 1, 0);
  for (std::size_t w = 0; w < words.size(); ++w) {
    word_offsets[w + 1] = word_offsets[w] + word_counts[w];
  }
  std::vector<T> dense(word_offsets.back());
  parallel::parallel_for(pool, words.size(), [&](std::size_t wbegin, std::size_t wend) {
    for (std::size_t w = wbegin; w < wend; ++w) {
      std::uint64_t word = words[w];
      std::size_t at = word_offsets[w];
      while (word != 0) {
        const int bit = std::countr_zero(word);
        dense[at++] = sparse[w * 64 + static_cast<std::size_t>(bit)];
        word &= word - 1;
      }
    }
  });
  return dense;
}

/// Inverse scatter: place dense[j] at the j-th set position of `keep`,
/// zero-fill everywhere else. `out` must have keep.size() elements.
template <typename T>
void unpack_bitmap(parallel::ThreadPool& pool, std::span<const T> dense, const Bitmap& keep,
                   std::span<T> out) {
  if (out.size() != keep.size()) throw std::invalid_argument("unpack_bitmap: size mismatch");
  auto words = keep.words();
  std::vector<std::uint32_t> word_offsets(words.size() + 1, 0);
  for (std::size_t w = 0; w < words.size(); ++w) {
    word_offsets[w + 1] =
        word_offsets[w] + static_cast<std::uint32_t>(std::popcount(words[w]));
  }
  if (word_offsets.back() != dense.size()) {
    throw std::invalid_argument("unpack_bitmap: dense size does not match set-bit count");
  }
  parallel::parallel_for(pool, words.size(), [&](std::size_t wbegin, std::size_t wend) {
    for (std::size_t w = wbegin; w < wend; ++w) {
      const std::size_t base = w * 64;
      const std::size_t limit = std::min<std::size_t>(64, out.size() - base);
      std::uint64_t word = words[w];
      std::size_t at = word_offsets[w];
      for (std::size_t b = 0; b < limit; ++b) {
        out[base + b] = (word >> b) & 1 ? dense[at++] : T{};
      }
    }
  });
}

}  // namespace fftgrad::sparse
