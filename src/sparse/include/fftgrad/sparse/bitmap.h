// Status bitmap (Sec 3.2): one bit per gradient element marking whether it
// survived sparsification. The bitmap travels with the packed values so the
// receiver can scatter them back; its fixed n-bit cost is what caps the
// useful compression ratio at ~20x in the paper's Fig 6.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <vector>

namespace fftgrad::sparse {

class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(std::size_t bits) : bits_(bits), words_((bits + 63) / 64, 0) {}

  std::size_t size() const { return bits_; }

  void set(std::size_t i) { words_[i >> 6] |= std::uint64_t{1} << (i & 63); }
  void clear(std::size_t i) { words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63)); }
  bool test(std::size_t i) const { return (words_[i >> 6] >> (i & 63)) & 1; }

  /// Number of set bits (popcount over words).
  std::size_t count() const;

  /// Number of set bits among positions [0, i) — the packed index of
  /// position i when it is set.
  std::size_t rank(std::size_t i) const;

  std::span<const std::uint64_t> words() const { return words_; }
  std::span<std::uint64_t> words() { return words_; }

  /// Wire size in bytes.
  std::size_t byte_size() const { return words_.size() * sizeof(std::uint64_t); }

  bool operator==(const Bitmap& other) const = default;

 private:
  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace fftgrad::sparse
