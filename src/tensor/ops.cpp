#include "fftgrad/tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "fftgrad/parallel/parallel_for.h"

namespace fftgrad::tensor {
namespace {

// Row-panel height per task; chosen so a panel of A plus a block of B fits
// comfortably in L2.
constexpr std::size_t kRowBlock = 64;
constexpr std::size_t kColBlock = 256;
constexpr std::size_t kDepthBlock = 256;

inline const float* element_ptr(const float* base, bool transposed, std::size_t rows,
                                std::size_t cols, std::size_t r, std::size_t c) {
  (void)rows;
  return transposed ? base + c * rows + r : base + r * cols + c;
}

}  // namespace

void gemm(std::size_t m, std::size_t n, std::size_t k, float alpha, const float* a,
          bool transpose_a, const float* b, bool transpose_b, float beta, float* c) {
  if (m == 0 || n == 0) return;

  auto run_rows = [&](std::size_t row_begin, std::size_t row_end) {
    // Pack the needed stripe of A once per row block to make the inner loop
    // a unit-stride dot product regardless of transposition.
    std::vector<float> a_panel(kRowBlock * kDepthBlock);
    for (std::size_t i0 = row_begin; i0 < row_end; i0 += kRowBlock) {
      const std::size_t i_lim = std::min(i0 + kRowBlock, row_end);
      // beta pass over this row stripe.
      for (std::size_t i = i0; i < i_lim; ++i) {
        float* row = c + i * n;
        if (beta == 0.0f) {
          std::fill(row, row + n, 0.0f);
        } else if (beta != 1.0f) {
          for (std::size_t j = 0; j < n; ++j) row[j] *= beta;
        }
      }
      for (std::size_t p0 = 0; p0 < k; p0 += kDepthBlock) {
        const std::size_t p_lim = std::min(p0 + kDepthBlock, k);
        const std::size_t depth = p_lim - p0;
        for (std::size_t i = i0; i < i_lim; ++i) {
          float* dst = a_panel.data() + (i - i0) * kDepthBlock;
          for (std::size_t p = p0; p < p_lim; ++p) {
            dst[p - p0] = *element_ptr(a, transpose_a, m, k, i, p);
          }
        }
        for (std::size_t j0 = 0; j0 < n; j0 += kColBlock) {
          const std::size_t j_lim = std::min(j0 + kColBlock, n);
          for (std::size_t i = i0; i < i_lim; ++i) {
            const float* a_row = a_panel.data() + (i - i0) * kDepthBlock;
            float* c_row = c + i * n;
            if (!transpose_b) {
              // B row-major (k x n): accumulate rank-1 style over p for
              // unit-stride access to both B and C.
              for (std::size_t p = 0; p < depth; ++p) {
                const float av = alpha * a_row[p];
                if (av == 0.0f) continue;
                const float* b_row = b + (p0 + p) * n;
                for (std::size_t j = j0; j < j_lim; ++j) c_row[j] += av * b_row[j];
              }
            } else {
              // B^T stored (n x k): dot products over unit-stride B rows.
              for (std::size_t j = j0; j < j_lim; ++j) {
                const float* b_row = b + j * k + p0;
                float acc = 0.0f;
                for (std::size_t p = 0; p < depth; ++p) acc += a_row[p] * b_row[p];
                c_row[j] += alpha * acc;
              }
            }
          }
        }
      }
    }
  };

  auto& pool = parallel::ThreadPool::global();
  if (m * n * k < (std::size_t{1} << 18) || pool.size() == 1) {
    run_rows(0, m);
    return;
  }
  parallel::parallel_for(pool, m, run_rows);
}

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  if (x.size() != y.size()) throw std::invalid_argument("axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(std::span<float> y, float factor) {
  for (float& v : y) v *= factor;
}

void softmax_rows(std::span<float> logits, std::size_t rows, std::size_t cols) {
  if (logits.size() != rows * cols) throw std::invalid_argument("softmax_rows: size mismatch");
  for (std::size_t r = 0; r < rows; ++r) {
    float* row = logits.data() + r * cols;
    float peak = row[0];
    for (std::size_t j = 1; j < cols; ++j) peak = std::max(peak, row[j]);
    float total = 0.0f;
    for (std::size_t j = 0; j < cols; ++j) {
      row[j] = std::exp(row[j] - peak);
      total += row[j];
    }
    const float inv = 1.0f / total;
    for (std::size_t j = 0; j < cols; ++j) row[j] *= inv;
  }
}

double sum(std::span<const float> x) {
  double total = 0.0;
  for (float v : x) total += v;
  return total;
}

void argmax_rows(std::span<const float> values, std::size_t rows, std::size_t cols,
                 std::span<std::size_t> out) {
  if (values.size() != rows * cols || out.size() != rows) {
    throw std::invalid_argument("argmax_rows: size mismatch");
  }
  for (std::size_t r = 0; r < rows; ++r) {
    const float* row = values.data() + r * cols;
    std::size_t best = 0;
    for (std::size_t j = 1; j < cols; ++j) {
      if (row[j] > row[best]) best = j;
    }
    out[r] = best;
  }
}

}  // namespace fftgrad::tensor
