// Tensor kernels used by the NN layers: GEMM (the workhorse of Dense and
// im2col-based Conv2d), axpy-style elementwise updates, and softmax.
// GEMM is blocked for cache reuse and parallelized across row panels.
#pragma once

#include <cstddef>
#include <span>

#include "fftgrad/tensor/tensor.h"

namespace fftgrad::tensor {

/// C(m x n) = alpha * op(A) * op(B) + beta * C, row-major.
/// op(A) is A (m x k) or A^T when transpose_a (A stored k x m); same for B.
void gemm(std::size_t m, std::size_t n, std::size_t k, float alpha, const float* a,
          bool transpose_a, const float* b, bool transpose_b, float beta, float* c);

/// y += alpha * x (sizes must match).
void axpy(float alpha, std::span<const float> x, std::span<float> y);

/// y = y * scale.
void scale(std::span<float> y, float factor);

/// In-place row-wise softmax of a (rows x cols) matrix.
void softmax_rows(std::span<float> logits, std::size_t rows, std::size_t cols);

/// Sum of all elements.
double sum(std::span<const float> x);

/// Index of the max element of each row; out must have `rows` entries.
void argmax_rows(std::span<const float> values, std::size_t rows, std::size_t cols,
                 std::span<std::size_t> out);

}  // namespace fftgrad::tensor
