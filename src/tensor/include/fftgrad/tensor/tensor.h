// Dense float32 tensor: the storage type of the DNN substrate.
//
// Deliberately simple — owning, contiguous, row-major — because the paper's
// compression pipeline treats every gradient as a flat 1-D signal anyway
// (pipeline step 1 "linearize the gradients"). Shape is kept only for the
// NN layers' convenience; `flat()` exposes the linearized view the
// compressors consume.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "fftgrad/util/rng.h"

namespace fftgrad::tensor {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<std::size_t> shape);
  Tensor(std::initializer_list<std::size_t> shape)
      : Tensor(std::vector<std::size_t>(shape)) {}

  static Tensor zeros(std::vector<std::size_t> shape) { return Tensor(std::move(shape)); }
  static Tensor full(std::vector<std::size_t> shape, float value);
  /// I.i.d. normal entries (used by layer initializers).
  static Tensor randn(std::vector<std::size_t> shape, util::Rng& rng, float mean = 0.0f,
                      float stddev = 1.0f);

  const std::vector<std::size_t>& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t dim(std::size_t axis) const { return shape_[axis]; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> flat() { return data_; }
  std::span<const float> flat() const { return data_; }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// Element access for ranks 2/3/4 (row-major).
  float& at(std::size_t i, std::size_t j) { return data_[i * shape_[1] + j]; }
  float at(std::size_t i, std::size_t j) const { return data_[i * shape_[1] + j]; }
  float& at(std::size_t i, std::size_t j, std::size_t k) {
    return data_[(i * shape_[1] + j) * shape_[2] + k];
  }
  float& at(std::size_t i, std::size_t j, std::size_t k, std::size_t l) {
    return data_[((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l];
  }
  float at(std::size_t i, std::size_t j, std::size_t k, std::size_t l) const {
    return data_[((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l];
  }

  void fill(float value);
  /// Reinterpret with a new shape of identical element count.
  void reshape(std::vector<std::size_t> shape);

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

}  // namespace fftgrad::tensor
