#include "fftgrad/tensor/tensor.h"

#include <numeric>
#include <stdexcept>

namespace fftgrad::tensor {

namespace {
std::size_t element_count(const std::vector<std::size_t>& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return shape.empty() ? 0 : n;
}
}  // namespace

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(element_count(shape_), 0.0f) {}

Tensor Tensor::full(std::vector<std::size_t> shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(std::vector<std::size_t> shape, util::Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) v = static_cast<float>(rng.normal(mean, stddev));
  return t;
}

void Tensor::fill(float value) { std::fill(data_.begin(), data_.end(), value); }

void Tensor::reshape(std::vector<std::size_t> shape) {
  if (element_count(shape) != data_.size()) {
    throw std::invalid_argument("Tensor::reshape: element count mismatch");
  }
  shape_ = std::move(shape);
}

}  // namespace fftgrad::tensor
