#include "fftgrad/comm/hierarchical_model.h"

#include <algorithm>

namespace fftgrad::comm {

SimSeconds HierarchicalModel::allgather_time(Bytes block, std::size_t ranks) const {
  if (ranks <= 1) return SimSeconds(0.0);
  const std::size_t node_count = nodes(ranks);
  const std::size_t local = std::min(gpus_per_node, ranks);
  if (node_count == 1) return intra.allgather_time(block, local);
  // Phase 1: ranks on each node exchange their blocks over PCIe.
  const SimSeconds phase1 = intra.allgather_time(block, gpus_per_node);
  // Phase 2: node leaders allgather node aggregates over the fabric.
  const Bytes aggregate = block * static_cast<double>(gpus_per_node);
  const SimSeconds phase2 = inter.allgather_time(aggregate, node_count);
  // Phase 3: leaders fan the remote aggregates out inside each node.
  const Bytes remote = aggregate * static_cast<double>(node_count - 1);
  const SimSeconds phase3 = intra.broadcast_time(remote, gpus_per_node);
  return phase1 + phase2 + phase3;
}

SimSeconds HierarchicalModel::allreduce_time(Bytes total, std::size_t ranks) const {
  if (ranks <= 1) return SimSeconds(0.0);
  const std::size_t node_count = nodes(ranks);
  const std::size_t local = std::min(gpus_per_node, ranks);
  if (node_count == 1) return intra.allreduce_time(total, local);
  const SimSeconds phase1 = intra.allreduce_time(total, gpus_per_node);
  const SimSeconds phase2 = inter.allreduce_time(total, node_count);
  const SimSeconds phase3 = intra.broadcast_time(total, gpus_per_node);
  return phase1 + phase2 + phase3;
}

}  // namespace fftgrad::comm
