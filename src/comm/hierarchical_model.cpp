#include "fftgrad/comm/hierarchical_model.h"

#include <algorithm>

namespace fftgrad::comm {

double HierarchicalModel::allgather_time(double block_bytes, std::size_t ranks) const {
  if (ranks <= 1) return 0.0;
  const std::size_t node_count = nodes(ranks);
  const std::size_t local = std::min(gpus_per_node, ranks);
  if (node_count == 1) return intra.allgather_time(block_bytes, local);
  // Phase 1: ranks on each node exchange their blocks over PCIe.
  const double phase1 = intra.allgather_time(block_bytes, gpus_per_node);
  // Phase 2: node leaders allgather node aggregates over the fabric.
  const double aggregate = block_bytes * static_cast<double>(gpus_per_node);
  const double phase2 = inter.allgather_time(aggregate, node_count);
  // Phase 3: leaders fan the remote aggregates out inside each node.
  const double remote = aggregate * static_cast<double>(node_count - 1);
  const double phase3 = intra.broadcast_time(remote, gpus_per_node);
  return phase1 + phase2 + phase3;
}

double HierarchicalModel::allreduce_time(double total_bytes, std::size_t ranks) const {
  if (ranks <= 1) return 0.0;
  const std::size_t node_count = nodes(ranks);
  const std::size_t local = std::min(gpus_per_node, ranks);
  if (node_count == 1) return intra.allreduce_time(total_bytes, local);
  const double phase1 = intra.allreduce_time(total_bytes, gpus_per_node);
  const double phase2 = inter.allreduce_time(total_bytes, node_count);
  const double phase3 = intra.broadcast_time(total_bytes, gpus_per_node);
  return phase1 + phase2 + phase3;
}

}  // namespace fftgrad::comm
