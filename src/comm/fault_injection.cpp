#include "fftgrad/comm/fault_injection.h"

#include "fftgrad/util/rng.h"

namespace fftgrad::comm {
namespace {

/// Mix the decision coordinates into one 64-bit stream seed. splitmix64
/// (via util::Rng's seeding) on top of this mix gives independent uniform
/// draws per (seed, sender, op, attempt, salt) tuple.
std::uint64_t mix_key(std::uint64_t seed, std::size_t sender, std::size_t op,
                      std::size_t attempt, std::uint64_t salt) {
  std::uint64_t h = seed ^ 0x9e3779b97f4a7c15ull;
  const auto fold = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  fold(static_cast<std::uint64_t>(sender));
  fold(static_cast<std::uint64_t>(op));
  fold(static_cast<std::uint64_t>(attempt));
  fold(salt);
  return h;
}

}  // namespace

bool FaultPlan::has_transport_faults() const {
  return drop_prob > 0.0 || corrupt_prob > 0.0 || duplicate_prob > 0.0 || delay_prob > 0.0;
}

bool FaultPlan::empty() const {
  return !has_transport_faults() && straggler_timeout_s <= util::SimSeconds(0.0) &&
         stragglers.empty() && crashes.empty();
}

FaultEvents FaultPlan::events(std::size_t sender, std::size_t op, std::size_t attempt) const {
  FaultEvents ev;
  if (!has_transport_faults()) return ev;
  util::Rng rng(mix_key(seed, sender, op, attempt, 0x7472616e73ull));  // "trans"
  // Fixed draw order keeps the schedule stable when individual
  // probabilities change between experiments.
  ev.drop = rng.bernoulli(drop_prob);
  ev.corrupt = rng.bernoulli(corrupt_prob);
  ev.duplicate = rng.bernoulli(duplicate_prob);
  ev.delay = rng.bernoulli(delay_prob);
  return ev;
}

util::SimSeconds FaultPlan::straggle_s(std::size_t rank, std::size_t op) const {
  util::SimSeconds total{};
  for (const StragglerSpec& spec : stragglers) {
    if (spec.rank == rank && op >= spec.from_op && op < spec.until_op) {
      total += spec.slowdown_s;
    }
  }
  return total;
}

bool FaultPlan::crashes_at(std::size_t rank, std::size_t op) const {
  for (const CrashSpec& spec : crashes) {
    if (spec.rank == rank && op >= spec.at_op && op < spec.rejoin_at_op) return true;
  }
  return false;
}

bool FaultPlan::has_recovery() const {
  for (const CrashSpec& spec : crashes) {
    if (spec.rejoin_at_op != std::numeric_limits<std::size_t>::max()) return true;
  }
  return false;
}

std::size_t FaultPlan::rejoin_op(std::size_t rank) const {
  std::size_t earliest = std::numeric_limits<std::size_t>::max();
  for (const CrashSpec& spec : crashes) {
    if (spec.rank == rank && spec.rejoin_at_op < earliest) earliest = spec.rejoin_at_op;
  }
  return earliest;
}

void FaultPlan::corrupt_payload(std::span<std::uint8_t> payload, std::size_t sender,
                                std::size_t op, std::size_t attempt) const {
  if (payload.empty()) return;
  util::Rng rng(mix_key(seed, sender, op, attempt, 0x666c6970ull));  // "flip"
  const std::size_t flips = 1 + rng.uniform_index(4);
  for (std::size_t f = 0; f < flips; ++f) {
    const std::size_t byte = rng.uniform_index(payload.size());
    const auto bit = static_cast<std::uint8_t>(1u << rng.uniform_index(8));
    payload[byte] ^= bit;
  }
}

double FaultPlan::attempt_failure_prob() const {
  return 1.0 - (1.0 - drop_prob) * (1.0 - corrupt_prob);
}

util::SimSeconds expected_recovery_s(const FaultPlan& plan, const NetworkModel& network,
                                     util::Bytes size) {
  if (!plan.has_transport_faults()) return util::SimSeconds(0.0);
  const double f = plan.attempt_failure_prob();
  const util::SimSeconds p2p = network.p2p_base_time(size);
  const util::SimSeconds per_attempt =
      plan.delay_prob * plan.delay_s + plan.duplicate_prob * p2p;
  util::SimSeconds expected{};
  double reach = 1.0;  // f^k: probability attempt k happens at all
  for (std::size_t k = 0; k <= network.retry.max_retries; ++k) {
    expected += reach * per_attempt;
    if (k < network.retry.max_retries) {
      expected += reach * f * (network.retry.backoff_s(k) + p2p);
    }
    reach *= f;
  }
  return expected;
}

DeliveryOutcome resolve_delivery(const FaultPlan& plan, const NetworkModel& network,
                                 std::size_t sender, std::size_t op, util::Bytes size) {
  DeliveryOutcome outcome;
  if (!plan.has_transport_faults()) return outcome;
  const std::size_t max_attempts = 1 + network.retry.max_retries;
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    outcome.attempts = attempt + 1;
    const FaultEvents ev = plan.events(sender, op, attempt);
    if (ev.delay) outcome.recovery_seconds += plan.delay_s;
    if (ev.duplicate) {
      // The spurious copy occupies the link and is discarded on receipt.
      outcome.recovery_seconds += network.p2p_base_time(size);
      outcome.extra_bytes += size;
    }
    const bool failed = ev.drop || ev.corrupt;
    if (!failed) {
      outcome.delivered = true;
      outcome.corrupted = false;
      return outcome;
    }
    if (attempt + 1 < max_attempts) {
      // Receiver-driven retransmit: back off, then pay for one more
      // transmission of the block.
      outcome.recovery_seconds += network.retry.backoff_s(attempt);
      outcome.recovery_seconds += network.p2p_base_time(size);
      outcome.extra_bytes += size;
      continue;
    }
    // Retries exhausted. A corrupt final attempt still hands the receiver
    // damaged bytes (its checksum layer will reject them); a drop leaves
    // nothing to deliver, corrupted or not.
    outcome.delivered = !ev.drop && ev.corrupt;
    outcome.corrupted = outcome.delivered;
  }
  return outcome;
}

}  // namespace fftgrad::comm
