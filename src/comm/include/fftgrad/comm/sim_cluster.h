// In-process multi-rank cluster: the MPI/NCCL substitute.
//
// SimCluster::run(p, fn) spawns p threads, one per logical rank, and hands
// each a RankContext. Collectives exchange real bytes through shared
// memory (so gradient math downstream of a collective is bit-exact with a
// genuine distributed run), while a per-rank SimClock accrues the time the
// configured NetworkModel says the same exchange would have cost on the
// modelled interconnect. Compute time is charged explicitly by callers
// (e.g. the trainer charges measured forward/backward wall time), keeping
// the simulated timeline independent of host scheduling jitter.
//
// Synchronization uses a reusable two-phase barrier; collectives are
// bulk-synchronous, matching the paper's BSP parallelization scheme.
//
// Fault tolerance: a SimCluster may carry a FaultPlan (fault_injection.h).
// Each collective then counts as one "op" per rank; at op entry the plan
// may crash the rank (it leaves the cluster; survivors' barriers re-target
// the remaining rank count and its contributions read as absent) or
// straggle it (extra simulated delay; with a straggler
// timeout configured, the late rank's contribution is excluded everywhere
// and survivors proceed after the timeout instead of absorbing the full
// delay). Inside allgather — the gradient-exchange path — every peer
// block additionally passes through the fault-injecting transport: packet
// drop/corruption triggers bounded receiver-driven retransmission whose
// backoff and bytes are charged to the receiver's clock through the
// NetworkModel, and a delivery that stays broken after the retry budget is
// returned as an empty (dropped) or damaged (corrupt) block for the
// caller's checksum layer to reject. An empty FaultPlan leaves every code
// path and every charged time bit-identical to the fault-free cluster.
//
// Membership epochs and elastic rejoin: the cluster view (live set +
// monotone epoch counter) is versioned state. Every membership change — a
// crash leaving the quorum, a recovered rank re-entering it — bumps the
// view epoch under the barrier mutex, and each rank refreshes its cached
// copy of the epoch from a per-release snapshot taken by whichever thread
// performs the barrier release. Because views change only at barrier
// releases and every rank of a barrier round reads the same snapshot, the
// cached view is identical on all live ranks at every op — which is what
// lets collectives cross-check it (CausalityTracker::check_view) and lets
// the analysis trailer carry it as checked wire state. A crash spec with a
// finite rejoin op makes the crash a bounded blip: the crashed rank's
// thread parks in await_rejoin(), the survivors agree (pure plan + op
// arithmetic, no shared reads) to re-admit it once they reach the rejoin
// op, and admission runs as a two-barrier membership handshake that grows
// the quorum, bumps the view epoch, and fast-forwards the rejoiner's op
// index and clock to the group's. State (weights, optimizer, residuals) is
// the trainer's business: it ships a CRC-framed blob from a designated
// live donor through peer_transfer(), which charges real NetworkModel time
// and reconciles exactly in the run ledger on a lossless plan.
//
// Concurrency analysis: the barrier mutex is an analysis::CheckedMutex
// (owner + lock-order tracked in debug/sanitizer builds), and under the
// deterministic-schedule stress mode (fftgrad/analysis/schedule_stress.h)
// every rank spins through a seeded number of yields before arriving at a
// barrier, perturbing arrival order per seed. Collective results must be
// bit-identical across seeds — each rank reduces in rank order from the
// shared slots, independent of arrival order. Fault decisions are keyed on
// (seed, sender, op), never on arrival order, so they share the guarantee.
//
// Causality analysis (fftgrad/analysis/causality.h, FFTGRAD_ANALYSIS
// builds): every collective publication ticks the rank's vector clock,
// every barrier release merges the live ranks' clocks, and every consumed
// block is checked for (a) a happens-before edge from its sender's
// publication, (b) a matching collective epoch, and (c) — after
// straggler-timeout/crash handling — an exclusion set and quorum identical
// on every surviving replica. Violations route through the analysis
// violation handler with the op index, ranks, and clocks involved.
//
// Critical-path telemetry (fftgrad/telemetry/critical_path.h): when the
// span tracer is enabled, every charged SimClock advance emits a "cp" leaf
// span — "collective" for lossless propagation, "retry" (peer = faulted
// sender) for sampled recovery, "straggle" for injected slowdown — and
// every barrier_wait records its [arrival, release] window keyed by the
// barrier generation ("abandoned" when the straggler timeout snapped the
// clock back). Publish/consume causality edges are mirrored as zero-length
// "cp-edge" records carrying simulated timestamps. Together the cp spans
// partition each rank's simulated clock, which is what lets the analyzer
// attribute end-to-end iteration time exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <functional>
#include <span>
#include <vector>

#include "fftgrad/analysis/causality.h"
#include "fftgrad/analysis/checked_mutex.h"
#include "fftgrad/comm/fault_injection.h"
#include "fftgrad/comm/network_model.h"
#include "fftgrad/util/annotated_mutex.h"
#include "fftgrad/util/thread_annotations.h"

namespace fftgrad::comm {

/// Simulated per-rank clock. Charging is dimensionally typed: only
/// SimSeconds can advance it, so a wall-clock measurement or a raw byte
/// count cannot be charged by accident (use util::sim_from_wall for the
/// one sanctioned crossing).
class SimClock {
 public:
  void advance(util::SimSeconds seconds) { time_ += seconds.to_double(); }
  /// BSP synchronization: every rank's clock jumps to the barrier max.
  void set_to(util::SimSeconds seconds) { time_ = seconds.to_double(); }
  util::SimSeconds time() const { return util::SimSeconds(time_); }
  /// Stable address of the raw clock value, for binding the simulated
  /// timeline into telemetry (telemetry::ScopedRank) without a dependency
  /// cycle. Read-only and for telemetry binding only.
  const double* time_ptr() const { return &time_; }

 private:
  double time_ = 0.0;  // raw storage: telemetry binds a stable double*
};

class SimCluster;

/// Per-rank handle passed to the rank function.
class RankContext {
 public:
  std::size_t rank() const { return rank_; }
  std::size_t size() const;
  SimClock& clock() { return clock_; }
  const NetworkModel& network() const;

  /// Collectives completed by this rank (the FaultPlan's op coordinate).
  std::size_t op_index() const { return op_index_; }

  /// The membership view epoch this rank observed at its last barrier
  /// release (0 until the first membership change). Identical on every
  /// live rank at the same op — see the class comment's snapshot protocol.
  std::uint64_t view_epoch() const { return view_epoch_seen_; }

  /// Block until every rank arrives; aligns all clocks to the maximum
  /// (BSP semantics).
  void barrier();

  /// Allgather of possibly differently-sized byte blocks. Returns all
  /// ranks' contributions indexed by rank; charges allgatherv_time. Under
  /// a FaultPlan, a crashed, timed-out, or undeliverable peer's entry is
  /// an empty vector — identical on every rank — and recovery time for
  /// retransmitted blocks is charged on top.
  std::vector<std::vector<std::uint8_t>> allgather(std::span<const std::uint8_t> send);

  /// Element-wise sum allreduce of float vectors (all ranks pass equal
  /// sizes); result overwrites `data`. Charges allreduce_time. Crashed
  /// ranks drop out of the sum.
  void allreduce_sum(std::span<float> data);

  /// Broadcast `data` from `root` to every rank (sizes must match).
  void broadcast(std::span<float> data, std::size_t root);

  /// Gather every rank's byte block at `root` (PS-style funnel: the root's
  /// clock is charged the serialized inbound transfers, other ranks their
  /// own send). Non-root ranks receive an empty vector.
  std::vector<std::vector<std::uint8_t>> gather(std::span<const std::uint8_t> send,
                                                std::size_t root);

  /// Ring reduce-scatter of an equal-size float vector: returns this rank's
  /// reduced chunk (chunk r covers indices [r*n/p, (r+1)*n/p) with the
  /// remainder going to the last rank). All ranks must pass equal sizes.
  std::vector<float> reduce_scatter_sum(std::span<const float> data);

  /// Membership handshake: re-admit every crashed rank whose plan rejoin
  /// op has been reached. Pure plan + op-index arithmetic decides
  /// eligibility, so all live ranks agree without touching shared state;
  /// when nobody is eligible this is free (no barrier, no op). Otherwise
  /// all live ranks rendezvous, the lowest live rank flips the rejoiners
  /// back into the quorum (bumping the view epoch and syncing their op
  /// index and clock to the group's), and a second barrier — now counting
  /// the rejoiners — completes the epoch transition. Returns the ranks
  /// admitted this call (identical on every live rank).
  std::vector<std::size_t> admit_rejoins();

  /// Called by a crashed rank's thread (after catching RankCrashed) when
  /// its plan carries a rejoin op: parks until the survivors admit it via
  /// admit_rejoins(). Returns true once re-admitted — op index, clock, and
  /// cached view epoch are already synced to the group — or false if the
  /// run drained (every other thread exited) before the rejoin op was
  /// reached, in which case the rank stays dead.
  bool await_rejoin();

  /// The admission cohort of the most recent rejoin handshake (what
  /// admit_rejoins returned to the survivors), and the handshake's state
  /// donor — its primary, i.e. the lowest rank that was live when admission
  /// ran. Valid from the handshake's completing barrier until the next
  /// handshake; a just-admitted rank reads these to learn which transfers
  /// it participates in and who serves its state.
  const std::vector<std::size_t>& rejoin_cohort() const;
  std::size_t rejoin_donor() const;

  /// Result of a peer_transfer: `ok` is derived from the pure per-(sender,
  /// op) delivery fate, so every rank — not just the receiver — agrees on
  /// whether the transfer must be retried.
  struct PeerTransferResult {
    std::vector<std::uint8_t> bytes;  ///< payload at rank `to`; empty elsewhere
    bool ok = true;                   ///< delivered un-corrupted
  };

  /// Point-to-point state transfer as a cluster-wide collective (all live
  /// ranks participate; one op). Rank `from` publishes `send`; rank `to`
  /// receives it. Both endpoints charge p2p_time(bytes); under transport
  /// faults the receiver additionally charges the sampled retransmission
  /// recovery, and a delivery that stays broken is returned empty/damaged
  /// with ok=false. The ledger records a "state_transfer" row pairing the
  /// analytic prediction with the charged cost — exactly equal on a
  /// lossless plan.
  PeerTransferResult peer_transfer(std::span<const std::uint8_t> send, std::size_t from,
                                   std::size_t to);

 private:
  friend class SimCluster;
  RankContext(SimCluster& cluster, std::size_t rank) : cluster_(&cluster), rank_(rank) {}

  /// Per-collective fault hook: bumps the op counter, fires a scheduled
  /// crash (throws RankCrashed), and charges straggler slowdown. Returns
  /// the op index of the collective being entered.
  std::size_t begin_collective();

  SimCluster* cluster_;
  std::size_t rank_;
  std::size_t op_index_ = 0;
  /// View epoch observed at this rank's last barrier release.
  std::uint64_t view_epoch_seen_ = 0;
  SimClock clock_;
};

class SimCluster {
 public:
  explicit SimCluster(NetworkModel network, FaultPlan faults = {})
      : network_(std::move(network)), faults_(std::move(faults)) {}

  /// Run `fn(ctx)` on `ranks` threads; returns the final per-rank clocks.
  /// Exceptions thrown by any rank are rethrown (first one wins) after all
  /// ranks have been joined — except RankCrashed, which marks the rank
  /// dead (query rank_crashed() afterwards) and lets survivors finish.
  std::vector<util::SimSeconds> run(std::size_t ranks,
                                    const std::function<void(RankContext&)>& fn);

  const NetworkModel& network() const { return network_; }
  const FaultPlan& faults() const { return faults_; }

  /// Whether `rank` died (via its FaultPlan crash) during the last run()
  /// and was not re-admitted. Safe to call from a monitor thread mid-run:
  /// the membership accessors below take the barrier mutex, so they always
  /// observe a consistent membership state, never a half-applied change.
  bool rank_crashed(std::size_t rank) const FFTGRAD_EXCLUDES(mutex_);
  /// Ranks that survived the last run().
  std::size_t survivors() const FFTGRAD_EXCLUDES(mutex_);
  /// Whether `rank` was re-admitted after a crash during the last run().
  bool rank_rejoined(std::size_t rank) const FFTGRAD_EXCLUDES(mutex_);
  /// Current membership view epoch (bumped on every crash and rejoin).
  std::uint64_t view_epoch() const FFTGRAD_EXCLUDES(mutex_);

  /// The run's causality tracker (vector clocks + protocol invariants).
  /// A no-op stub unless FFTGRAD_ANALYSIS is compiled in; re-armed by each
  /// run(). Exposed so trainers can feed cross-rank agreement checks (and
  /// tests can seed protocol mutations) through the cluster's instance.
  analysis::CausalityTracker& causality() { return tracker_; }

 private:
  friend class RankContext;

  /// `rank` identifies the arriving rank; it seeds the stress-mode arrival
  /// jitter and is otherwise unused.
  void barrier_wait(std::size_t rank) FFTGRAD_EXCLUDES(mutex_);
  void align_clocks_locked() FFTGRAD_REQUIRES(mutex_);
  /// Permanently remove `rank` from the cluster: clears its slots, shrinks
  /// the barrier quorum, and releases peers already waiting on it.
  void mark_crashed(std::size_t rank) FFTGRAD_EXCLUDES(mutex_);

  NetworkModel network_;
  FaultPlan faults_;
  std::size_t ranks_ = 0;

  // mutable: the const membership accessors above lock it so monitor
  // threads can poll membership mid-run.
  mutable analysis::CheckedMutex mutex_{"SimCluster.barrier_mutex"};
  // condition_variable_any: CheckedMutex is Lockable but not std::mutex.
  std::condition_variable_any cv_;
  std::size_t arrived_ FFTGRAD_GUARDED_BY(mutex_) = 0;
  std::size_t alive_ FFTGRAD_GUARDED_BY(mutex_) = 0;
  std::uint64_t generation_ FFTGRAD_GUARDED_BY(mutex_) = 0;

  // Collective exchange slots, indexed by rank.
  //
  // DELIBERATELY UNANNOTATED: these (and the other "barrier-ordered"
  // members below) are written before a barrier and read after one — the
  // happens-before edge is the barrier round, not a critical section, so
  // GUARDED_BY would be a false claim and the analysis would force
  // pointless locking. A wrong annotation is worse than none; the ordering
  // argument lives in the comments and is exercised by the tsan preset.
  std::vector<std::span<const std::uint8_t>> byte_slots_;
  std::vector<std::span<float>> float_slots_;
  // Entry-time clocks published before a collective's first barrier, for
  // the straggler-timeout deadline; dead/late flags for the current op.
  // All are written before a barrier and read after one (or under the
  // barrier mutex), which is what makes the plain vectors race-free.
  // dead_ is barrier-ordered on the rank threads' hot path but every
  // *write* happens under mutex_, so the locked accessors above can also
  // read it consistently from outside the cohort.
  std::vector<util::SimSeconds> clock_slots_;
  std::vector<char> dead_;
  std::vector<char> late_;
  std::vector<RankContext*> contexts_;

  // Membership view: epoch counter bumped under the mutex on every crash
  // and rejoin, plus the per-release snapshot each rank copies into its
  // RankContext while still holding the barrier mutex (see barrier_wait).
  std::uint64_t view_epoch_ FFTGRAD_GUARDED_BY(mutex_) = 0;
  std::uint64_t view_epoch_at_release_ FFTGRAD_GUARDED_BY(mutex_) = 0;
  // Rejoin handshake state: which crashed threads are parked in
  // await_rejoin, which ranks already used their one recovery cycle, and
  // the op index / clock the rejoiners fast-forward to. The handshake
  // fields are mutex-guarded; rejoined_ and the cohort/donor slots are
  // barrier-ordered (read by survivors after membership barrier B).
  std::vector<char> rejoin_waiting_ FFTGRAD_GUARDED_BY(mutex_);
  std::vector<char> rejoined_;
  std::size_t rejoin_op_slot_ FFTGRAD_GUARDED_BY(mutex_) = 0;
  util::SimSeconds rejoin_clock_slot_ FFTGRAD_GUARDED_BY(mutex_){};
  std::vector<std::size_t> rejoin_cohort_slot_;
  std::size_t rejoin_donor_slot_ = 0;
  // Drain detection: threads done with the rank fn vs threads parked in
  // await_rejoin. When every non-parked thread has exited, no admission
  // can ever come and the parked rejoiners are woken with a denial.
  std::size_t exited_threads_ FFTGRAD_GUARDED_BY(mutex_) = 0;
  std::size_t parked_threads_ FFTGRAD_GUARDED_BY(mutex_) = 0;
  bool draining_ FFTGRAD_GUARDED_BY(mutex_) = false;

  analysis::CausalityTracker tracker_;
};

}  // namespace fftgrad::comm
