// In-process multi-rank cluster: the MPI/NCCL substitute.
//
// SimCluster::run(p, fn) spawns p threads, one per logical rank, and hands
// each a RankContext. Collectives exchange real bytes through shared
// memory (so gradient math downstream of a collective is bit-exact with a
// genuine distributed run), while a per-rank SimClock accrues the time the
// configured NetworkModel says the same exchange would have cost on the
// modelled interconnect. Compute time is charged explicitly by callers
// (e.g. the trainer charges measured forward/backward wall time), keeping
// the simulated timeline independent of host scheduling jitter.
//
// Synchronization uses a reusable two-phase barrier; collectives are
// bulk-synchronous, matching the paper's BSP parallelization scheme.
//
// Concurrency analysis: the barrier mutex is an analysis::CheckedMutex
// (owner + lock-order tracked in debug/sanitizer builds), and under the
// deterministic-schedule stress mode (fftgrad/analysis/schedule_stress.h)
// every rank spins through a seeded number of yields before arriving at a
// barrier, perturbing arrival order per seed. Collective results must be
// bit-identical across seeds — each rank reduces in rank order from the
// shared slots, independent of arrival order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <functional>
#include <span>
#include <vector>

#include "fftgrad/analysis/checked_mutex.h"
#include "fftgrad/comm/network_model.h"

namespace fftgrad::comm {

/// Simulated per-rank clock (seconds).
class SimClock {
 public:
  void advance(double seconds) { time_ += seconds; }
  /// BSP synchronization: every rank's clock jumps to the barrier max.
  void set_to(double seconds) { time_ = seconds; }
  double time() const { return time_; }
  /// Stable address of the clock value, for binding the simulated timeline
  /// into telemetry (telemetry::ScopedRank) without a dependency cycle.
  const double* time_ptr() const { return &time_; }

 private:
  double time_ = 0.0;
};

class SimCluster;

/// Per-rank handle passed to the rank function.
class RankContext {
 public:
  std::size_t rank() const { return rank_; }
  std::size_t size() const;
  SimClock& clock() { return clock_; }
  const NetworkModel& network() const;

  /// Block until every rank arrives; aligns all clocks to the maximum
  /// (BSP semantics).
  void barrier();

  /// Allgather of possibly differently-sized byte blocks. Returns all
  /// ranks' contributions indexed by rank; charges allgatherv_time.
  std::vector<std::vector<std::uint8_t>> allgather(std::span<const std::uint8_t> send);

  /// Element-wise sum allreduce of float vectors (all ranks pass equal
  /// sizes); result overwrites `data`. Charges allreduce_time.
  void allreduce_sum(std::span<float> data);

  /// Broadcast `data` from `root` to every rank (sizes must match).
  void broadcast(std::span<float> data, std::size_t root);

  /// Gather every rank's byte block at `root` (PS-style funnel: the root's
  /// clock is charged the serialized inbound transfers, other ranks their
  /// own send). Non-root ranks receive an empty vector.
  std::vector<std::vector<std::uint8_t>> gather(std::span<const std::uint8_t> send,
                                                std::size_t root);

  /// Ring reduce-scatter of an equal-size float vector: returns this rank's
  /// reduced chunk (chunk r covers indices [r*n/p, (r+1)*n/p) with the
  /// remainder going to the last rank). All ranks must pass equal sizes.
  std::vector<float> reduce_scatter_sum(std::span<const float> data);

 private:
  friend class SimCluster;
  RankContext(SimCluster& cluster, std::size_t rank) : cluster_(&cluster), rank_(rank) {}

  SimCluster* cluster_;
  std::size_t rank_;
  SimClock clock_;
};

class SimCluster {
 public:
  explicit SimCluster(NetworkModel network) : network_(std::move(network)) {}

  /// Run `fn(ctx)` on `ranks` threads; returns the final per-rank clocks.
  /// Exceptions thrown by any rank are rethrown (first one wins) after all
  /// ranks have been joined.
  std::vector<double> run(std::size_t ranks, const std::function<void(RankContext&)>& fn);

  const NetworkModel& network() const { return network_; }

 private:
  friend class RankContext;

  /// `rank` identifies the arriving rank; it seeds the stress-mode arrival
  /// jitter and is otherwise unused.
  void barrier_wait(std::size_t rank);
  void align_clocks_locked();

  NetworkModel network_;
  std::size_t ranks_ = 0;

  analysis::CheckedMutex mutex_{"SimCluster.barrier_mutex"};
  // condition_variable_any: CheckedMutex is Lockable but not std::mutex.
  std::condition_variable_any cv_;
  std::size_t arrived_ = 0;
  std::uint64_t generation_ = 0;

  // Collective exchange slots, indexed by rank.
  std::vector<std::span<const std::uint8_t>> byte_slots_;
  std::vector<std::span<float>> float_slots_;
  std::vector<RankContext*> contexts_;
};

}  // namespace fftgrad::comm
