// Two-level network model: fast intra-node links (PCIe between the 4 GPUs
// of a Comet node) under a slower inter-node fabric (FDR InfiniBand).
//
// The paper's Fig 16 remark — "when GPUs <= 4, the speedup is similar as
// communications are intra-node through PCI-E" — is exactly what this model
// captures: collectives among ranks on one node never touch the fabric, and
// beyond one node the collective decomposes into an intra-node phase, an
// inter-node phase among node leaders (with node-aggregated blocks), and an
// intra-node redistribution.
#pragma once

#include <cstddef>

#include "fftgrad/comm/network_model.h"

namespace fftgrad::comm {

struct HierarchicalModel {
  NetworkModel intra = NetworkModel::pcie_intranode();
  NetworkModel inter = NetworkModel::infiniband_fdr56();
  std::size_t gpus_per_node = 4;

  std::size_t nodes(std::size_t ranks) const {
    return (ranks + gpus_per_node - 1) / gpus_per_node;
  }

  /// Allgather of `block` bytes per rank across `ranks` ranks:
  /// intra-node allgather, then an inter-node allgather of node aggregates
  /// (gpus_per_node * block each) among the leaders, then an intra-node
  /// broadcast of the remote aggregate.
  SimSeconds allgather_time(Bytes block, std::size_t ranks) const;

  /// Ring allreduce decomposed the same way: intra reduce, inter allreduce
  /// among leaders, intra broadcast.
  SimSeconds allreduce_time(Bytes total, std::size_t ranks) const;
};

}  // namespace fftgrad::comm
