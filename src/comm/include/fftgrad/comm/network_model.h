// alpha-beta network cost model and collective-communication time formulas.
//
// This replaces the paper's physical interconnects (56Gbps FDR InfiniBand,
// 1/10Gbps Ethernet, intra-node PCIe). A message of b bytes costs
// alpha + b/beta seconds between any pair of ranks; collectives follow the
// standard ring/tree schedules implemented by Open MPI / NCCL:
//
//   ring allgather   (p-1) steps, each forwarding one rank's block:
//                    sum over steps of (alpha + block/beta)
//   ring allreduce   reduce-scatter + allgather: 2(p-1) steps of m/p bytes
//   tree broadcast   ceil(log2 p) steps of the full message
//
// These formulas reproduce the linear-in-p allgather growth of the paper's
// Fig 11 and feed the end-to-end wall-clock accounting of Figs 14/16.
//
// All parameters and results are dimensionally typed (util/units.h):
// message sizes are Bytes, latencies/backoffs/collective times SimSeconds,
// bandwidth BytesPerSecond. Handing a formula a microsecond figure or a
// bit count no longer compiles.
#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "fftgrad/util/units.h"

namespace fftgrad::comm {

using util::Bytes;
using util::BytesPerSecond;
using util::SimSeconds;

/// Bounded-retry retransmission policy with exponential backoff. Shared by
/// the analytic lossy-link accounting below and by the sampled per-packet
/// recovery in SimCluster's fault-injecting transport, so both charge
/// recovery through the same formula.
struct RetryPolicy {
  std::size_t max_retries = 3;        ///< retransmissions after the first send
  SimSeconds backoff_base_s{20e-6};   ///< wait before the first retransmission
  double backoff_factor = 2.0;        ///< multiplier per further retransmission

  /// Backoff paid before retransmission `retry` (0-based):
  /// backoff_base_s * backoff_factor^retry.
  SimSeconds backoff_s(std::size_t retry) const;
};

struct NetworkModel {
  std::string name = "custom";
  SimSeconds latency_s{1e-6};            ///< alpha: per-message latency
  BytesPerSecond bandwidth_bytes_s{1e9}; ///< beta: link bandwidth

  /// Per-message loss probability (drop or detected corruption). When
  /// non-zero, every p2p_time — and therefore every collective formula
  /// built on it — is inflated by the expected number of transmissions plus
  /// the expected backoff under `retry`, so benchmark wall-clock totals
  /// honestly include recovery cost. Zero keeps the lossless formulas
  /// bit-identical to the historical model.
  double loss_rate = 0.0;
  RetryPolicy retry;

  /// Fault-free cost of one message of `size`: alpha + size/beta.
  SimSeconds p2p_base_time(Bytes size) const {
    return latency_s + size / bandwidth_bytes_s;
  }

  /// Expected transmissions per delivered message under `loss_rate`,
  /// capped at 1 + retry.max_retries (bounded geometric series).
  double expected_sends() const;

  /// Expected backoff accrued per message under `loss_rate`.
  SimSeconds expected_backoff_s() const;

  /// Point-to-point cost of one message of `size`, including expected
  /// retransmissions and backoff on a lossy link.
  SimSeconds p2p_time(Bytes size) const {
    if (loss_rate <= 0.0) return p2p_base_time(size);
    return expected_sends() * p2p_base_time(size) + expected_backoff_s();
  }

  /// Ring allgather of equal blocks: every rank contributes `block` bytes
  /// and ends with all p blocks. p == 1 costs nothing.
  SimSeconds allgather_time(Bytes block, std::size_t ranks) const;

  /// Ring allgather with per-rank block sizes (allgatherv). Each of the
  /// p-1 ring steps is gated by the largest block in flight.
  SimSeconds allgatherv_time(std::span<const Bytes> blocks) const;

  /// Ring allreduce of a `total` byte vector (reduce-scatter + allgather).
  SimSeconds allreduce_time(Bytes total, std::size_t ranks) const;

  /// Binomial-tree broadcast of `size` from one root.
  SimSeconds broadcast_time(Bytes size, std::size_t ranks) const;

  /// Parameter-server push: every worker's gradient block funnels through
  /// the server's single inbound link, serializing the transfers (the
  /// congestion the paper's Fig 1a discussion highlights).
  SimSeconds ps_push_time(std::span<const Bytes> blocks) const;

  /// Parameter-server pull: the server sends the updated parameters to each
  /// of `workers` over its single outbound link.
  SimSeconds ps_pull_time(Bytes params, std::size_t workers) const;

  // ---- canonical profiles (match the paper's testbeds) ----
  static NetworkModel ethernet_1g();
  static NetworkModel ethernet_10g();
  static NetworkModel infiniband_fdr56();
  static NetworkModel pcie_intranode();
};

}  // namespace fftgrad::comm
