// alpha-beta network cost model and collective-communication time formulas.
//
// This replaces the paper's physical interconnects (56Gbps FDR InfiniBand,
// 1/10Gbps Ethernet, intra-node PCIe). A message of b bytes costs
// alpha + b/beta seconds between any pair of ranks; collectives follow the
// standard ring/tree schedules implemented by Open MPI / NCCL:
//
//   ring allgather   (p-1) steps, each forwarding one rank's block:
//                    sum over steps of (alpha + block/beta)
//   ring allreduce   reduce-scatter + allgather: 2(p-1) steps of m/p bytes
//   tree broadcast   ceil(log2 p) steps of the full message
//
// These formulas reproduce the linear-in-p allgather growth of the paper's
// Fig 11 and feed the end-to-end wall-clock accounting of Figs 14/16.
#pragma once

#include <cstddef>
#include <span>
#include <string>

namespace fftgrad::comm {

struct NetworkModel {
  std::string name = "custom";
  double latency_s = 1e-6;          ///< alpha: per-message latency (seconds)
  double bandwidth_bytes_s = 1e9;   ///< beta: link bandwidth (bytes/second)

  /// Point-to-point cost of one message of `bytes`.
  double p2p_time(double bytes) const { return latency_s + bytes / bandwidth_bytes_s; }

  /// Ring allgather of equal blocks: every rank contributes `block_bytes`
  /// and ends with all p blocks. p == 1 costs nothing.
  double allgather_time(double block_bytes, std::size_t ranks) const;

  /// Ring allgather with per-rank block sizes (allgatherv). Each of the
  /// p-1 ring steps is gated by the largest block in flight.
  double allgatherv_time(std::span<const double> block_bytes) const;

  /// Ring allreduce of a `total_bytes` vector (reduce-scatter + allgather).
  double allreduce_time(double total_bytes, std::size_t ranks) const;

  /// Binomial-tree broadcast of `bytes` from one root.
  double broadcast_time(double bytes, std::size_t ranks) const;

  /// Parameter-server push: every worker's gradient block funnels through
  /// the server's single inbound link, serializing the transfers (the
  /// congestion the paper's Fig 1a discussion highlights).
  double ps_push_time(std::span<const double> block_bytes) const;

  /// Parameter-server pull: the server sends the updated parameters to each
  /// of `workers` over its single outbound link.
  double ps_pull_time(double param_bytes, std::size_t workers) const;

  // ---- canonical profiles (match the paper's testbeds) ----
  static NetworkModel ethernet_1g();
  static NetworkModel ethernet_10g();
  static NetworkModel infiniband_fdr56();
  static NetworkModel pcie_intranode();
};

}  // namespace fftgrad::comm
