// Seeded, schedule-deterministic fault injection for the simulated cluster.
//
// A FaultPlan describes how the substrate misbehaves: per-packet transport
// faults (drop, bit corruption, duplication, delay), per-rank straggler
// slowdowns over an op window, and permanent rank crashes. Every decision
// is a pure function of (plan seed, sender rank, collective op index,
// attempt) — never of thread scheduling — so the same plan replays the
// identical fault schedule on every run, under every sanitizer, at any
// host load. That determinism is what makes the chaos test suite able to
// assert bit-identical final weights per seed.
//
// Faults are keyed by *sender*: a packet corrupted on the wire is observed
// identically by every receiver (as if damaged once at the source link).
// This keeps BSP replicas bit-identical even under heavy fault load — all
// ranks agree on which contributions survived — which is both the testable
// invariant and the semantics a real reliable-multicast fabric converges
// to after its own recovery layer.
//
// resolve_delivery() is the FaultyTransport kernel SimCluster runs for
// each peer block it pulls out of an exchange: it replays the bounded
// receiver-driven retry loop (every failed attempt charges one
// retransmission at NetworkModel cost plus exponential backoff from the
// model's RetryPolicy) and reports what was ultimately delivered plus the
// simulated seconds and bytes the recovery consumed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "fftgrad/comm/network_model.h"

namespace fftgrad::comm {

/// Extra simulated slowdown for one rank over a half-open op window.
struct StragglerSpec {
  std::size_t rank = 0;
  util::SimSeconds slowdown_s{};  ///< added to the rank's clock at each op entry
  std::size_t from_op = 0;
  std::size_t until_op = std::numeric_limits<std::size_t>::max();
};

/// Rank failure: the rank dies when it reaches collective `at_op`. With
/// the default `rejoin_at_op` it never participates again (a permanent
/// crash); a finite `rejoin_at_op > at_op` makes this a
/// crash-with-recovery fate — the rank becomes eligible to rejoin the
/// cluster once the survivors reach that op, at which point SimCluster
/// re-admits it at the next membership barrier (see
/// RankContext::admit_rejoins / await_rejoin).
struct CrashSpec {
  std::size_t rank = 0;
  std::size_t at_op = 0;
  std::size_t rejoin_at_op = std::numeric_limits<std::size_t>::max();
};

/// Transport-level fate of one packet transmission attempt.
struct FaultEvents {
  bool drop = false;
  bool corrupt = false;
  bool duplicate = false;
  bool delay = false;
};

struct FaultPlan {
  std::uint64_t seed = 0;        ///< root of every sampled decision
  double drop_prob = 0.0;        ///< per-attempt packet loss
  double corrupt_prob = 0.0;     ///< per-attempt payload bit flips
  double duplicate_prob = 0.0;   ///< spurious duplicate delivery
  double delay_prob = 0.0;       ///< per-attempt extra latency
  util::SimSeconds delay_s{};    ///< latency added when a delay fires

  /// When > 0, collectives stop waiting for a straggling rank after this
  /// many simulated seconds past the earliest arrival: the late rank's
  /// contribution is excluded everywhere and the survivors proceed.
  /// 0 waits forever (plain BSP).
  util::SimSeconds straggler_timeout_s{};

  std::vector<StragglerSpec> stragglers;
  std::vector<CrashSpec> crashes;

  /// True when no fault source is configured; SimCluster uses this to keep
  /// the fault-free exchange path bit-identical to the historical one.
  bool empty() const;

  /// True when any per-packet fault (drop/corrupt/duplicate/delay) can fire.
  bool has_transport_faults() const;

  /// Sampled fate of transmission `attempt` of the packet `sender`
  /// contributed to collective `op`. Pure: identical on every call.
  FaultEvents events(std::size_t sender, std::size_t op, std::size_t attempt) const;

  /// Straggler slowdown charged to `rank` at the entry of collective `op`.
  util::SimSeconds straggle_s(std::size_t rank, std::size_t op) const;

  /// True while `rank` is inside a configured crash window: at or past a
  /// crash op and before the matching rejoin op (permanent crashes have no
  /// rejoin op, so this stays true forever once reached).
  bool crashes_at(std::size_t rank, std::size_t op) const;

  /// True when any crash spec carries a finite rejoin op.
  bool has_recovery() const;

  /// Earliest op at which a crashed `rank` becomes eligible to rejoin, or
  /// SIZE_MAX when the rank has no recovery fate. Pure plan lookup — live
  /// ranks use it to agree on admission without reading shared state.
  std::size_t rejoin_op(std::size_t rank) const;

  /// Deterministically damage `payload` in place (1-4 bit flips keyed on
  /// (seed, sender, op, attempt)). No-op on an empty payload.
  void corrupt_payload(std::span<std::uint8_t> payload, std::size_t sender, std::size_t op,
                       std::size_t attempt) const;

  /// Probability one transmission attempt fails and must be retried:
  /// 1 - (1 - drop_prob) * (1 - corrupt_prob). The drop/corrupt draws are
  /// independent, and either one forces the receiver-driven retransmit.
  double attempt_failure_prob() const;
};

/// What the transport ultimately handed the receiver for one peer block,
/// plus the recovery cost to charge against the receiver's simulated clock
/// and the network byte counters.
struct DeliveryOutcome {
  bool delivered = true;    ///< false: retries exhausted on drops
  bool corrupted = false;   ///< delivered, but payload is damaged
  std::size_t attempts = 1; ///< total transmissions, including the first
  util::SimSeconds recovery_seconds{};  ///< retransmit + backoff + delay time
  util::Bytes extra_bytes{};  ///< retransmitted + duplicated payload bytes
};

/// Replay the bounded receiver-driven retry loop for one `bytes`-sized
/// block from `sender` at collective `op`. Failed attempts (drop or
/// detected corruption) are retried up to network.retry.max_retries times,
/// each charging one p2p_base_time plus exponential backoff; a final
/// corrupt attempt is delivered damaged (the caller's checksum layer turns
/// it into a skipped contribution), a final drop is not delivered at all.
DeliveryOutcome resolve_delivery(const FaultPlan& plan, const NetworkModel& network,
                                 std::size_t sender, std::size_t op, util::Bytes size);

/// Exact expectation of resolve_delivery().recovery_seconds over the fault
/// draws, for one `bytes`-sized block. With f = attempt_failure_prob() and
/// R = network.retry.max_retries:
///
///   E[recovery] = sum_{k=0..R}   f^k     * (delay_prob * delay_s
///                                           + duplicate_prob * p2p_base(bytes))
///               + sum_{k=0..R-1} f^{k+1} * (backoff_s(k) + p2p_base(bytes))
///
/// (attempt k happens only when all prior attempts failed; a failed
/// non-final attempt charges one backoff plus one retransmission). This is
/// the RetryPolicy expected-cost term the run ledger adds to the analytic
/// lossless collective time so faulty runs reconcile in expectation.
util::SimSeconds expected_recovery_s(const FaultPlan& plan, const NetworkModel& network,
                                     util::Bytes size);

/// Thrown (and caught by SimCluster::run) when a rank reaches its
/// scheduled crash: deliberately not derived from std::exception so rank
/// functions that guard their own logic with catch (std::exception&)
/// cannot swallow a planned crash.
struct RankCrashed {
  std::size_t rank = 0;
  std::size_t op = 0;
};

}  // namespace fftgrad::comm
