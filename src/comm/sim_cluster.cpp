#include "fftgrad/comm/sim_cluster.h"

#include <algorithm>
#include <cstring>
#include <exception>
#include <limits>
#include <stdexcept>
#include <thread>

#include "fftgrad/analysis/schedule_stress.h"
#include "fftgrad/util/annotated_mutex.h"
#include "fftgrad/telemetry/ledger.h"
#include "fftgrad/telemetry/metrics.h"
#include "fftgrad/telemetry/profiler.h"
#include "fftgrad/telemetry/trace.h"

namespace fftgrad::comm {

namespace {

/// Cluster-wide abort signal: raised when any rank throws, so ranks parked
/// in a barrier fail fast instead of deadlocking.
struct AbortedError : std::runtime_error {
  AbortedError() : std::runtime_error("SimCluster: a peer rank failed") {}
};

/// One call-count bump plus the payload bytes this rank feeds into a
/// collective. References are cached across calls (registry objects are
/// immortal), so the disabled path is two relaxed loads.
void note_collective(telemetry::Counter& calls, util::Bytes payload) {
  static telemetry::Counter& bytes_sent =
      telemetry::MetricsRegistry::global().counter("comm.bytes_sent");
  calls.add(1.0);
  bytes_sent.add(payload.to_double());
}

/// The run ledger pairs every collective's charged SimClock time with the
/// analytic prediction for the same message sizes. Rank 0 is the designated
/// recording rank (one row per collective, not one per replica); if rank 0
/// crashes mid-run, collective rows simply stop — the ledger documents the
/// surviving prefix.
bool ledger_records(std::size_t rank) {
  return rank == 0 && telemetry::RunLedger::global().enabled();
}

/// Critical-path leaf spans ("cp") and happens-before edge records
/// ("cp-edge") for the analyzer in fftgrad/telemetry/critical_path.h. Leaf
/// spans must partition each rank's simulated clock: every clock_.advance
/// on a collective path is bracketed by exactly one cp span, and barrier
/// waits are recorded by barrier_wait itself.
void cp_span(std::size_t rank, const char* name, util::SimSeconds start, util::SimSeconds end,
             std::size_t op, std::int32_t peer = -1) {
  telemetry::Tracer::global().record_sim_span(static_cast<std::int32_t>(rank), name, "cp",
                                              start.to_double(), end.to_double(),
                                              static_cast<std::int64_t>(op), peer);
}

/// Zero-length publish/consume marker materializing a causality edge with
/// its simulated timestamp (peer = the publishing rank for consumes).
void cp_edge(std::size_t rank, const char* name, util::SimSeconds time, std::size_t op,
             std::int32_t peer = -1) {
  telemetry::Tracer::global().record_sim_span(static_cast<std::int32_t>(rank), name,
                                              "cp-edge", time.to_double(), time.to_double(),
                                              static_cast<std::int64_t>(op), peer);
}

/// Fault-event counters, registered once. Transport counters are bumped by
/// exactly one designated receiver per delivery (the lowest-ranked live
/// peer), so a p-rank exchange does not multiply the counts p-fold.
struct FaultMetrics {
  telemetry::Counter& rank_crashes;
  telemetry::Counter& straggle_seconds;
  telemetry::Counter& late_contributions;
  telemetry::Counter& retransmits;
  telemetry::Counter& retransmit_bytes;
  telemetry::Counter& recovery_seconds;
  telemetry::Counter& deliveries_failed;
  telemetry::Counter& rank_rejoins;
  telemetry::Counter& state_transfer_bytes;

  static FaultMetrics& get() {
    static FaultMetrics metrics = [] {
      telemetry::MetricsRegistry& reg = telemetry::MetricsRegistry::global();
      return FaultMetrics{reg.counter("fault.rank_crashes"),
                          reg.counter("fault.straggle_seconds"),
                          reg.counter("fault.late_contributions"),
                          reg.counter("fault.retransmits"),
                          reg.counter("fault.retransmit_bytes"),
                          reg.counter("fault.recovery_seconds"),
                          reg.counter("fault.deliveries_failed"),
                          reg.counter("fault.rank_rejoins"),
                          reg.counter("fault.state_transfer_bytes")};
    }();
    return metrics;
  }
};

}  // namespace

std::size_t RankContext::size() const { return cluster_->ranks_; }

const NetworkModel& RankContext::network() const { return cluster_->network_; }

std::size_t RankContext::begin_collective() {
  const std::size_t op = op_index_++;
  SimCluster& c = *cluster_;
  if (c.faults_.empty()) return op;
  if (c.faults_.crashes_at(rank_, op)) {
    c.mark_crashed(rank_);
    throw RankCrashed{rank_, op};
  }
  const util::SimSeconds straggle = c.faults_.straggle_s(rank_, op);
  if (straggle > util::SimSeconds(0.0)) {
    const util::SimSeconds start = clock_.time();
    clock_.advance(straggle);
    cp_span(rank_, "straggle", start, clock_.time(), op);
    FaultMetrics::get().straggle_seconds.add(straggle.to_double());
  }
  return op;
}

void RankContext::barrier() {
  static telemetry::Counter& calls =
      telemetry::MetricsRegistry::global().counter("comm.barrier.calls");
  calls.add(1.0);
  telemetry::TraceSpan span("barrier", "comm");
  cluster_->barrier_wait(rank_);
}

void SimCluster::align_clocks_locked() {
  FFTGRAD_ASSERT_HELD(mutex_);
  util::SimSeconds latest{0.0};
  util::SimSeconds earliest{std::numeric_limits<double>::infinity()};
  bool any = false;
  for (RankContext* ctx : contexts_) {
    if (dead_[ctx->rank()] != 0) continue;
    latest = std::max(latest, ctx->clock().time());
    earliest = std::min(earliest, ctx->clock().time());
    any = true;
  }
  if (!any) return;
  // Straggler-aware BSP: with a timeout configured, the cluster never
  // waits more than `timeout` past the earliest arrival — a later rank's
  // work for this op is abandoned (its contribution was excluded by the
  // collective) and its timeline snaps back to the group.
  const util::SimSeconds timeout = faults_.straggler_timeout_s;
  if (timeout > util::SimSeconds(0.0) && latest > earliest + timeout) {
    latest = earliest + timeout;
  }
  for (RankContext* ctx : contexts_) {
    if (dead_[ctx->rank()] == 0) ctx->clock().set_to(latest);
  }
}

void SimCluster::barrier_wait(std::size_t rank) {
  // Schedule-stress arrival jitter: a seeded number of yields before this
  // rank takes the barrier mutex, so different seeds explore different
  // arrival orders (and thus different "last arrival" ranks).
  if (analysis::schedule_stress_seed() != 0) {
    const std::uint64_t yields = analysis::stress_pick(rank * 0x9e3779b9u, 8);
    for (std::uint64_t i = 0; i < yields; ++i) std::this_thread::yield();
  }
  util::UniqueLock<analysis::CheckedMutex> lock(mutex_);
  const util::SimSeconds entry_s = contexts_[rank]->clock().time();
  const std::uint64_t my_generation = generation_;
  if (++arrived_ == alive_) {
    // Last arrival: BSP semantics, every clock advances to the straggler
    // (bounded by the straggler timeout when one is configured), and the
    // causal vector clocks merge to their common upper bound — the
    // happens-before edge every post-barrier consume relies on.
    align_clocks_locked();
    tracker_.on_barrier_release(dead_);
    view_epoch_at_release_ = view_epoch_;
    arrived_ = 0;
    ++generation_;
    cv_.notify_all();
  } else {
    // Manual wait loop (not wait(lock, pred)): the predicate lambda would
    // be analyzed as a separate function with no capability, while the
    // loop keeps the guarded read of generation_ in this annotated scope.
    while (generation_ == my_generation) cv_.wait(lock);
  }
  // Refresh the cached membership view while still holding the mutex:
  // every rank of this barrier round reads the same release snapshot, so
  // the cached epoch is identical cluster-wide at every op.
  contexts_[rank]->view_epoch_seen_ = view_epoch_at_release_;
  // Critical-path record: [arrival, aligned release] of this barrier round.
  // The generation is shared by every rank in the round, so the analyzer
  // can correlate arrivals and find the bounding (last) rank. A release
  // earlier than the arrival means the straggler timeout snapped this
  // rank's clock back — its overshoot is recorded as "abandoned" work.
  const util::SimSeconds release_s = contexts_[rank]->clock().time();
  lock.unlock();
  if (release_s >= entry_s) {
    cp_span(rank, "barrier", entry_s, release_s, my_generation);
  } else {
    cp_span(rank, "abandoned", release_s, entry_s, my_generation);
  }
}

void SimCluster::mark_crashed(std::size_t rank) {
  util::LockGuard<analysis::CheckedMutex> lock(mutex_);
  if (dead_[rank] != 0) return;
  dead_[rank] = 1;
  --alive_;
  // Membership change: the view epoch advances under the mutex; peers pick
  // the new value up from the snapshot of their next barrier release.
  ++view_epoch_;
  tracker_.on_membership_change(view_epoch_, dead_);
  // The dying rank's stack (and thus anything its slots point into) is
  // about to unwind: drop the references while peers are still parked.
  byte_slots_[rank] = {};
  float_slots_[rank] = {};
  FaultMetrics::get().rank_crashes.add(1.0);
  // Peers may already be waiting on a quorum that included this rank.
  if (alive_ > 0 && arrived_ == alive_) {
    align_clocks_locked();
    tracker_.on_barrier_release(dead_);
    view_epoch_at_release_ = view_epoch_;
    arrived_ = 0;
    ++generation_;
    cv_.notify_all();
  }
}

// The four membership accessors lock the barrier mutex: every membership
// *write* (mark_crashed, the admit_rejoins handshake, run()'s reset)
// happens under it, so a monitor thread polling these mid-run observes
// each membership transition atomically instead of racing the writer.
// Rank threads never call them on the collective hot path, so the extra
// acquire is off the simulated critical path.
bool SimCluster::rank_crashed(std::size_t rank) const {
  util::LockGuard<analysis::CheckedMutex> lock(mutex_);
  return rank < dead_.size() && dead_[rank] != 0;
}

std::size_t SimCluster::survivors() const {
  util::LockGuard<analysis::CheckedMutex> lock(mutex_);
  std::size_t count = 0;
  for (char d : dead_) count += d == 0 ? 1 : 0;
  return count;
}

bool SimCluster::rank_rejoined(std::size_t rank) const {
  util::LockGuard<analysis::CheckedMutex> lock(mutex_);
  return rank < rejoined_.size() && rejoined_[rank] != 0;
}

std::uint64_t SimCluster::view_epoch() const {
  util::LockGuard<analysis::CheckedMutex> lock(mutex_);
  return view_epoch_;
}

std::vector<std::vector<std::uint8_t>> RankContext::allgather(
    std::span<const std::uint8_t> send) {
  static telemetry::Counter& calls =
      telemetry::MetricsRegistry::global().counter("comm.allgather.calls");
  note_collective(calls, util::byte_count(send.size()));
  telemetry::TraceSpan span("allgather", "comm");
  const std::size_t op = begin_collective();
  SimCluster& c = *cluster_;
  c.tracker_.on_publish(rank_, op);
  cp_edge(rank_, "publish", clock_.time(), op);
  c.byte_slots_[rank_] = send;
  c.clock_slots_[rank_] = clock_.time();
  c.barrier_wait(rank_);  // all contributions and entry clocks visible

  const FaultPlan& plan = c.faults_;
  const bool faulty = !plan.empty();

  // Excluded peers: crashed ranks, plus ranks whose entry clock missed the
  // straggler deadline. Derived from barrier-published state only, so
  // every rank computes the identical set.
  std::vector<char> excluded;
  if (faulty) {
    excluded.assign(c.ranks_, 0);
    util::SimSeconds earliest{std::numeric_limits<double>::infinity()};
    for (std::size_t r = 0; r < c.ranks_; ++r) {
      if (c.dead_[r] == 0) earliest = std::min(earliest, c.clock_slots_[r]);
    }
    const util::SimSeconds timeout = plan.straggler_timeout_s;
    for (std::size_t r = 0; r < c.ranks_; ++r) {
      if (c.dead_[r] != 0) {
        excluded[r] = 1;
      } else if (timeout > util::SimSeconds(0.0) &&
                 c.clock_slots_[r] > earliest + timeout) {
        excluded[r] = 1;
        // Count each late contribution once: the lowest live rank reports.
        bool primary = true;
        for (std::size_t q = 0; q < rank_; ++q) {
          if (c.dead_[q] == 0) {
            primary = false;
            break;
          }
        }
        if (primary) FaultMetrics::get().late_contributions.add(1.0);
      }
    }
  }

  // Causality invariant (c): every surviving replica must have derived the
  // identical exclusion set and quorum from the barrier-published state.
  if (c.tracker_.active()) {
    const std::vector<char> effective = faulty ? excluded : std::vector<char>(c.ranks_, 0);
    std::size_t quorum = 0;
    for (char e : effective) quorum += e == 0 ? 1 : 0;
    c.tracker_.check_exclusion(rank_, op, effective, quorum);
    // Invariant (d): every replica observed the same membership view epoch
    // at this op — a rank acting on a stale view is protocol divergence.
    c.tracker_.check_view(rank_, op, view_epoch_seen_);
  }

  std::vector<std::vector<std::uint8_t>> gathered(c.ranks_);
  std::vector<util::Bytes> sizes;
  sizes.reserve(c.ranks_);
  util::SimSeconds recovery_s{};
  // (sender, recovery seconds) pairs for the critical-path retry spans.
  std::vector<std::pair<std::size_t, util::SimSeconds>> recoveries;
  // Ledger accumulators: the analytic expectation of the sampled recovery
  // below, plus retry/exclusion counts as rank 0 observed them.
  const bool ledger_on = ledger_records(rank_);
  util::SimSeconds predicted_recovery_s{};
  std::uint64_t ledger_retries = 0;
  std::uint64_t ledger_failed = 0;
  if (ledger_on && faulty) {
    for (char e : excluded) ledger_failed += e != 0 ? 1 : 0;
  }
  for (std::size_t r = 0; r < c.ranks_; ++r) {
    if (faulty && excluded[r] != 0) continue;  // stays an empty block
    // Invariants (a)+(b): the sender's publication happens-before this
    // read and belongs to this collective epoch.
    c.tracker_.on_consume(rank_, r, op);
    cp_edge(rank_, "consume", clock_.time(), op, static_cast<std::int32_t>(r));
    gathered[r].assign(c.byte_slots_[r].begin(), c.byte_slots_[r].end());
    sizes.push_back(util::byte_count(gathered[r].size()));
    if (faulty && plan.has_transport_faults()) {
      // The fate of sender r's block is keyed on (sender, op) alone and is
      // applied to every rank's copy — including r's own: a block damaged
      // at the source link is lost for the whole exchange, so all replicas
      // agree on the surviving contribution set. Recovery time is charged
      // only for blocks this rank actually received over the wire.
      const DeliveryOutcome outcome = resolve_delivery(plan, c.network_, r, op, sizes.back());
      if (r != rank_) {
        recovery_s += outcome.recovery_seconds;
        if (outcome.recovery_seconds > util::SimSeconds(0.0)) {
          recoveries.emplace_back(r, outcome.recovery_seconds);
        }
      }
      if (ledger_on) {
        if (r != rank_) {
          predicted_recovery_s += expected_recovery_s(plan, c.network_, sizes.back());
          ledger_retries += outcome.attempts - 1;
        }
        if (!outcome.delivered || outcome.corrupted) ++ledger_failed;
      }
      if (!outcome.delivered) {
        gathered[r].clear();
      } else if (outcome.corrupted) {
        plan.corrupt_payload(gathered[r], r, op, outcome.attempts - 1);
      }
      // The lowest live rank reports the per-delivery transport counters,
      // so a p-rank exchange counts each delivery exactly once.
      bool primary = true;
      for (std::size_t q = 0; q < rank_; ++q) {
        if (c.dead_[q] == 0) {
          primary = false;
          break;
        }
      }
      if (primary) {
        FaultMetrics& fm = FaultMetrics::get();
        if (outcome.attempts > 1) {
          fm.retransmits.add(static_cast<double>(outcome.attempts - 1));
        }
        fm.retransmit_bytes.add(outcome.extra_bytes.to_double());
        fm.recovery_seconds.add(outcome.recovery_seconds.to_double());
        if (!outcome.delivered || outcome.corrupted) fm.deliveries_failed.add(1.0);
      }
    }
  }
  const util::SimSeconds lossless_s = c.network_.allgatherv_time(sizes);
  // Critical-path spans: the lossless propagation, then each sender's
  // sampled recovery time laid out sequentially and attributed (peer) to
  // the faulted sender.
  {
    util::SimSeconds t = clock_.time();
    if (lossless_s > util::SimSeconds(0.0)) cp_span(rank_, "collective", t, t + lossless_s, op);
    t += lossless_s;
    for (const auto& [sender, seconds] : recoveries) {
      cp_span(rank_, "retry", t, t + seconds, op, static_cast<std::int32_t>(sender));
      t += seconds;
    }
  }
  clock_.advance(lossless_s + recovery_s);
  if (ledger_on) {
    util::Bytes payload{};
    for (util::Bytes size : sizes) payload += size;
    telemetry::RunLedger::global().record_collective(
        {"allgather", op, payload, lossless_s + predicted_recovery_s,
         lossless_s + recovery_s, util::SimSeconds(0.0), ledger_retries, ledger_failed});
  }
  c.barrier_wait(rank_);  // slots may be reused
  return gathered;
}

void RankContext::allreduce_sum(std::span<float> data) {
  static telemetry::Counter& calls =
      telemetry::MetricsRegistry::global().counter("comm.allreduce.calls");
  note_collective(calls, util::byte_count(data.size_bytes()));
  telemetry::TraceSpan span("allreduce", "comm");
  const std::size_t op = begin_collective();
  SimCluster& c = *cluster_;
  c.tracker_.on_publish(rank_, op);
  cp_edge(rank_, "publish", clock_.time(), op);
  c.float_slots_[rank_] = data;
  c.barrier_wait(rank_);
  // Every rank reduces redundantly into a private buffer; identical
  // floating-point order on all ranks keeps replicas bit-identical.
  // Crashed ranks simply drop out of the sum.
  std::vector<float> reduced(data.size(), 0.0f);
  std::size_t live = 0;
  for (std::size_t r = 0; r < c.ranks_; ++r) {
    if (c.dead_[r] != 0) continue;
    c.tracker_.on_consume(rank_, r, op);
    cp_edge(rank_, "consume", clock_.time(), op, static_cast<std::int32_t>(r));
    auto peer = c.float_slots_[r];
    if (peer.size() != data.size()) {
      throw std::invalid_argument("allreduce_sum: mismatched sizes across ranks");
    }
    for (std::size_t i = 0; i < peer.size(); ++i) reduced[i] += peer[i];
    ++live;
  }
  // Invariant (c) for the sum: replicas must agree on who dropped out.
  if (c.tracker_.active()) {
    c.tracker_.check_exclusion(rank_, op, {c.dead_.data(), c.dead_.size()}, live);
    c.tracker_.check_view(rank_, op, view_epoch_seen_);
  }
  const util::Bytes bytes = util::byte_count(data.size() * sizeof(float));
  const util::SimSeconds cost_s = c.network_.allreduce_time(bytes, live);
  if (cost_s > util::SimSeconds(0.0)) {
    cp_span(rank_, "collective", clock_.time(), clock_.time() + cost_s, op);
  }
  clock_.advance(cost_s);
  if (ledger_records(rank_)) {
    // No transport faults on the reduction path: predicted == charged.
    telemetry::RunLedger::global().record_collective(
        {"allreduce", op, bytes, cost_s, cost_s, util::SimSeconds(0.0), 0,
         static_cast<std::uint64_t>(c.ranks_ - live)});
  }
  c.barrier_wait(rank_);  // all ranks done reading before anyone writes
  std::copy(reduced.begin(), reduced.end(), data.begin());
  c.barrier_wait(rank_);
}

void RankContext::broadcast(std::span<float> data, std::size_t root) {
  static telemetry::Counter& calls =
      telemetry::MetricsRegistry::global().counter("comm.broadcast.calls");
  note_collective(calls, rank_ == root ? util::byte_count(data.size_bytes()) : util::Bytes{});
  telemetry::TraceSpan span("broadcast", "comm");
  const std::size_t op = begin_collective();
  SimCluster& c = *cluster_;
  if (root >= c.ranks_) throw std::invalid_argument("broadcast: bad root");
  if (rank_ == root) {
    c.tracker_.on_publish(rank_, op);
    cp_edge(rank_, "publish", clock_.time(), op);
  }
  c.float_slots_[rank_] = data;
  c.barrier_wait(rank_);
  if (c.tracker_.active()) c.tracker_.check_view(rank_, op, view_epoch_seen_);
  if (c.dead_[root] != 0) throw std::runtime_error("broadcast: root rank crashed");
  c.tracker_.on_consume(rank_, root, op);
  cp_edge(rank_, "consume", clock_.time(), op, static_cast<std::int32_t>(root));
  auto src = c.float_slots_[root];
  if (src.size() != data.size()) {
    throw std::invalid_argument("broadcast: mismatched sizes across ranks");
  }
  if (rank_ != root) std::copy(src.begin(), src.end(), data.begin());
  const util::Bytes bytes = util::byte_count(data.size() * sizeof(float));
  const util::SimSeconds cost_s = c.network_.broadcast_time(bytes, c.ranks_);
  if (cost_s > util::SimSeconds(0.0)) {
    cp_span(rank_, "collective", clock_.time(), clock_.time() + cost_s, op);
  }
  clock_.advance(cost_s);
  if (ledger_records(rank_)) {
    telemetry::RunLedger::global().record_collective(
        {"broadcast", op, bytes, cost_s, cost_s, util::SimSeconds(0.0), 0, 0});
  }
  c.barrier_wait(rank_);
}

std::vector<std::vector<std::uint8_t>> RankContext::gather(std::span<const std::uint8_t> send,
                                                           std::size_t root) {
  static telemetry::Counter& calls =
      telemetry::MetricsRegistry::global().counter("comm.gather.calls");
  note_collective(calls, util::byte_count(send.size()));
  telemetry::TraceSpan span("gather", "comm");
  const std::size_t op = begin_collective();
  SimCluster& c = *cluster_;
  if (root >= c.ranks_) throw std::invalid_argument("gather: bad root");
  c.tracker_.on_publish(rank_, op);
  cp_edge(rank_, "publish", clock_.time(), op);
  c.byte_slots_[rank_] = send;
  c.barrier_wait(rank_);
  if (c.tracker_.active()) c.tracker_.check_view(rank_, op, view_epoch_seen_);
  std::vector<std::vector<std::uint8_t>> gathered;
  util::SimSeconds cost_s{};
  util::Bytes payload = util::byte_count(send.size());
  if (rank_ == root) {
    gathered.resize(c.ranks_);
    payload = util::Bytes{};
    for (std::size_t r = 0; r < c.ranks_; ++r) {
      if (c.dead_[r] != 0) continue;  // crashed peers contribute nothing
      c.tracker_.on_consume(rank_, r, op);
      cp_edge(rank_, "consume", clock_.time(), op, static_cast<std::int32_t>(r));
      gathered[r].assign(c.byte_slots_[r].begin(), c.byte_slots_[r].end());
      payload += util::byte_count(c.byte_slots_[r].size());
      if (r != root) cost_s += c.network_.p2p_time(util::byte_count(c.byte_slots_[r].size()));
    }
  } else {
    cost_s = c.network_.p2p_time(util::byte_count(send.size()));
  }
  if (cost_s > util::SimSeconds(0.0)) {
    cp_span(rank_, "collective", clock_.time(), clock_.time() + cost_s, op);
  }
  clock_.advance(cost_s);
  if (ledger_records(rank_)) {
    telemetry::RunLedger::global().record_collective(
        {"gather", op, payload, cost_s, cost_s, util::SimSeconds(0.0), 0, 0});
  }
  c.barrier_wait(rank_);
  return gathered;
}

std::vector<float> RankContext::reduce_scatter_sum(std::span<const float> data) {
  static telemetry::Counter& calls =
      telemetry::MetricsRegistry::global().counter("comm.reduce_scatter.calls");
  note_collective(calls, util::byte_count(data.size_bytes()));
  telemetry::TraceSpan span("reduce_scatter", "comm");
  const std::size_t op = begin_collective();
  SimCluster& c = *cluster_;
  c.tracker_.on_publish(rank_, op);
  cp_edge(rank_, "publish", clock_.time(), op);
  c.float_slots_[rank_] = {const_cast<float*>(data.data()), data.size()};
  c.barrier_wait(rank_);
  if (c.tracker_.active()) c.tracker_.check_view(rank_, op, view_epoch_seen_);
  const std::size_t n = data.size();
  const std::size_t base = n / c.ranks_;
  const std::size_t begin = rank_ * base;
  const std::size_t end = rank_ + 1 == c.ranks_ ? n : begin + base;
  std::vector<float> chunk(end - begin, 0.0f);
  for (std::size_t r = 0; r < c.ranks_; ++r) {
    if (c.dead_[r] != 0) continue;
    c.tracker_.on_consume(rank_, r, op);
    cp_edge(rank_, "consume", clock_.time(), op, static_cast<std::int32_t>(r));
    auto peer = c.float_slots_[r];
    if (peer.size() != n) {
      throw std::invalid_argument("reduce_scatter_sum: mismatched sizes across ranks");
    }
    for (std::size_t i = begin; i < end; ++i) chunk[i - begin] += peer[i];
  }
  // Ring reduce-scatter: p-1 steps of one chunk each.
  const util::Bytes chunk_bytes = util::byte_count(base * sizeof(float));
  const util::SimSeconds cost_s =
      static_cast<double>(c.ranks_ - 1) * c.network_.p2p_time(chunk_bytes);
  if (cost_s > util::SimSeconds(0.0)) {
    cp_span(rank_, "collective", clock_.time(), clock_.time() + cost_s, op);
  }
  clock_.advance(cost_s);
  if (ledger_records(rank_)) {
    telemetry::RunLedger::global().record_collective(
        {"reduce_scatter", op, util::byte_count(data.size_bytes()), cost_s, cost_s,
         util::SimSeconds(0.0), 0, 0});
  }
  c.barrier_wait(rank_);
  return chunk;
}

std::vector<std::size_t> RankContext::admit_rejoins() {
  SimCluster& c = *cluster_;
  if (!c.faults_.has_recovery()) return {};
  // Eligibility is pure plan + own-op arithmetic: a rank with a recovery
  // fate whose rejoin op has been reached deterministically crashed at its
  // (earlier) crash op, so every live rank computes the identical set
  // without reading shared membership state. rejoined_ is only written
  // while all live ranks are parked inside this very handshake, so the
  // read below is ordered by the surrounding barriers.
  std::vector<std::size_t> eligible;
  for (std::size_t r = 0; r < c.ranks_; ++r) {
    if (r == rank_ || c.rejoined_[r] != 0) continue;
    if (c.faults_.rejoin_op(r) <= op_index_) eligible.push_back(r);
  }
  if (eligible.empty()) return {};

  // Membership barrier A: all live ranks have agreed to admit now; the
  // rejoiners are (or will shortly be) parked in await_rejoin.
  c.barrier_wait(rank_);
  bool primary = true;
  for (std::size_t q = 0; q < rank_; ++q) {
    if (c.dead_[q] == 0) {
      primary = false;
      break;
    }
  }
  if (primary) {
    util::UniqueLock<analysis::CheckedMutex> lock(c.mutex_);
    // Wait for every rejoiner's thread to finish unwinding and park.
    // (Manual wait loop so the guarded reads of rejoin_waiting_ stay in
    // this annotated scope rather than an opaque predicate lambda.)
    for (;;) {
      bool all_parked = true;
      for (std::size_t r : eligible) {
        if (c.rejoin_waiting_[r] == 0) {
          all_parked = false;
          break;
        }
      }
      if (all_parked) break;
      c.cv_.wait(lock);
    }
    for (std::size_t r : eligible) {
      c.dead_[r] = 0;
      c.rejoined_[r] = 1;
      ++c.alive_;
      c.tracker_.on_rejoin(r, c.dead_);
    }
    ++c.view_epoch_;
    c.tracker_.on_membership_change(c.view_epoch_, c.dead_);
    c.rejoin_op_slot_ = op_index_;
    c.rejoin_clock_slot_ = clock_.time();
    c.rejoin_cohort_slot_ = eligible;
    c.rejoin_donor_slot_ = rank_;
    FaultMetrics::get().rank_rejoins.add(static_cast<double>(eligible.size()));
    c.cv_.notify_all();
  }
  // Membership barrier B: the quorum now counts the rejoiners, whose
  // await_rejoin arrives here after syncing op index and clock. Its
  // release snapshot hands every rank the bumped view epoch.
  c.barrier_wait(rank_);
  return eligible;
}

bool RankContext::await_rejoin() {
  SimCluster& c = *cluster_;
  {
    util::UniqueLock<analysis::CheckedMutex> lock(c.mutex_);
    c.rejoin_waiting_[rank_] = 1;
    ++c.parked_threads_;
    if (c.exited_threads_ + c.parked_threads_ == c.ranks_) c.draining_ = true;
    c.cv_.notify_all();  // wake an admitter waiting for us to park
    while (c.dead_[rank_] != 0 && !c.draining_) c.cv_.wait(lock);
    c.rejoin_waiting_[rank_] = 0;
    --c.parked_threads_;
    if (c.dead_[rank_] != 0) return false;  // run drained before our rejoin op
    op_index_ = c.rejoin_op_slot_;
    clock_.set_to(c.rejoin_clock_slot_);
  }
  c.barrier_wait(rank_);  // membership barrier B, counted in the new quorum
  return true;
}

const std::vector<std::size_t>& RankContext::rejoin_cohort() const {
  return cluster_->rejoin_cohort_slot_;
}

std::size_t RankContext::rejoin_donor() const { return cluster_->rejoin_donor_slot_; }

RankContext::PeerTransferResult RankContext::peer_transfer(std::span<const std::uint8_t> send,
                                                           std::size_t from, std::size_t to) {
  static telemetry::Counter& calls =
      telemetry::MetricsRegistry::global().counter("comm.peer_transfer.calls");
  note_collective(calls, rank_ == from ? util::byte_count(send.size()) : util::Bytes{});
  telemetry::TraceSpan span("peer_transfer", "comm");
  const std::size_t op = begin_collective();
  SimCluster& c = *cluster_;
  if (from >= c.ranks_ || to >= c.ranks_ || from == to) {
    throw std::invalid_argument("peer_transfer: bad endpoint ranks");
  }
  if (rank_ == from) {
    c.tracker_.on_publish(rank_, op);
    cp_edge(rank_, "publish", clock_.time(), op);
    c.byte_slots_[rank_] = send;
  }
  c.barrier_wait(rank_);
  if (c.tracker_.active()) c.tracker_.check_view(rank_, op, view_epoch_seen_);
  if (c.dead_[from] != 0) throw std::runtime_error("peer_transfer: source rank crashed");
  if (c.dead_[to] != 0) throw std::runtime_error("peer_transfer: destination rank crashed");

  // The delivery fate is a pure function of (plan, sender, op), so every
  // rank computes it — the receiver to charge the sampled recovery, the
  // rest to agree on `ok` (a retry loop must be a cluster-wide decision).
  const util::Bytes bytes = util::byte_count(c.byte_slots_[from].size());
  const util::SimSeconds p2p_s = c.network_.p2p_time(bytes);
  DeliveryOutcome outcome;
  util::SimSeconds predicted_s = p2p_s;
  if (c.faults_.has_transport_faults()) {
    outcome = resolve_delivery(c.faults_, c.network_, from, op, bytes);
    predicted_s += expected_recovery_s(c.faults_, c.network_, bytes);
  }

  PeerTransferResult result;
  result.ok = outcome.delivered && !outcome.corrupted;
  if (rank_ == to) {
    c.tracker_.on_consume(rank_, from, op);
    cp_edge(rank_, "consume", clock_.time(), op, static_cast<std::int32_t>(from));
    result.bytes.assign(c.byte_slots_[from].begin(), c.byte_slots_[from].end());
    if (!outcome.delivered) {
      result.bytes.clear();
    } else if (outcome.corrupted) {
      c.faults_.corrupt_payload(result.bytes, from, op, outcome.attempts - 1);
    }
    util::SimSeconds t = clock_.time();
    if (p2p_s > util::SimSeconds(0.0)) cp_span(rank_, "collective", t, t + p2p_s, op);
    t += p2p_s;
    if (outcome.recovery_seconds > util::SimSeconds(0.0)) {
      cp_span(rank_, "retry", t, t + outcome.recovery_seconds, op,
              static_cast<std::int32_t>(from));
    }
    clock_.advance(p2p_s + outcome.recovery_seconds);
    FaultMetrics& fm = FaultMetrics::get();
    fm.state_transfer_bytes.add(bytes.to_double() + outcome.extra_bytes.to_double());
    if (outcome.attempts > 1) fm.retransmits.add(static_cast<double>(outcome.attempts - 1));
    fm.recovery_seconds.add(outcome.recovery_seconds.to_double());
    if (!result.ok) fm.deliveries_failed.add(1.0);
  } else if (rank_ == from) {
    // The donor's link is busy serializing the blob for the same time.
    if (p2p_s > util::SimSeconds(0.0)) {
      cp_span(rank_, "collective", clock_.time(), clock_.time() + p2p_s, op);
    }
    clock_.advance(p2p_s);
  }
  if (ledger_records(rank_)) {
    // The recording rank reports the receiver's cost pair (computable
    // everywhere — the fate is pure), so the row reconciles exactly on a
    // lossless plan and in expectation under transport faults.
    telemetry::RunLedger::global().record_collective(
        {"state_transfer", op, bytes, predicted_s, p2p_s + outcome.recovery_seconds,
         util::SimSeconds(0.0), outcome.attempts - 1, result.ok ? 0u : 1u});
  }
  c.barrier_wait(rank_);  // slots may be reused
  return result;
}

std::vector<util::SimSeconds> SimCluster::run(
    std::size_t ranks, const std::function<void(RankContext&)>& fn) {
  if (ranks == 0) throw std::invalid_argument("SimCluster: ranks must be >= 1");
  // Each run is a fresh simulation (clocks restart at zero) and therefore a
  // fresh trace process.
  if (telemetry::Tracer::global().enabled()) telemetry::Tracer::global().begin_sim_session();
  ranks_ = ranks;
  byte_slots_.assign(ranks, {});
  float_slots_.assign(ranks, {});
  clock_slots_.assign(ranks, util::SimSeconds{});
  rejoin_cohort_slot_.clear();
  rejoin_donor_slot_ = 0;
  tracker_.reset(ranks);
  {
    // No rank threads exist yet, but a monitor thread from a previous run
    // may still be polling the membership accessors, and the guarded
    // members must be written under their capability anyway. One
    // uncontended acquire per run.
    util::LockGuard<analysis::CheckedMutex> lock(mutex_);
    alive_ = ranks;
    arrived_ = 0;
    generation_ = 0;
    dead_.assign(ranks, 0);
    view_epoch_ = 0;
    view_epoch_at_release_ = 0;
    rejoin_waiting_.assign(ranks, 0);
    rejoined_.assign(ranks, 0);
    rejoin_op_slot_ = 0;
    rejoin_clock_slot_ = util::SimSeconds{};
    exited_threads_ = 0;
    parked_threads_ = 0;
    draining_ = false;
  }

  std::vector<RankContext> contexts;
  contexts.reserve(ranks);
  for (std::size_t r = 0; r < ranks; ++r) contexts.push_back(RankContext(*this, r));
  contexts_.clear();
  for (auto& ctx : contexts) contexts_.push_back(&ctx);

  std::exception_ptr first_error;
  util::Mutex error_mutex;

  auto body = [&](std::size_t r) {
    try {
      telemetry::Profiler::register_current_thread();
      telemetry::ScopedRank bind(static_cast<std::int32_t>(r),
                                 contexts[r].clock().time_ptr());
      fn(contexts[r]);
    } catch (const RankCrashed&) {
      // Planned fault: mark_crashed already removed the rank from the
      // quorum and released its peers; survivors keep training.
    } catch (...) {
      {
        util::LockGuard<util::Mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      // Release peers waiting in the barrier so the cluster drains instead
      // of deadlocking; they will observe mismatched state and finish or
      // fail on their own.
      util::LockGuard<analysis::CheckedMutex> lock(mutex_);
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
    }
    // Drain accounting: once every non-parked thread has exited, no
    // admission can ever come — wake threads parked in await_rejoin so
    // they return (denied) instead of hanging the join below.
    util::LockGuard<analysis::CheckedMutex> lock(mutex_);
    ++exited_threads_;
    if (exited_threads_ + parked_threads_ == ranks_) {
      draining_ = true;
      cv_.notify_all();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(ranks);
  for (std::size_t r = 0; r < ranks; ++r) threads.emplace_back(body, r);
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);

  std::vector<util::SimSeconds> clocks(ranks);
  for (std::size_t r = 0; r < ranks; ++r) clocks[r] = contexts[r].clock().time();
  contexts_.clear();
  return clocks;
}

}  // namespace fftgrad::comm
