#include "fftgrad/comm/sim_cluster.h"

#include <algorithm>
#include <cstring>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "fftgrad/analysis/schedule_stress.h"
#include "fftgrad/telemetry/metrics.h"
#include "fftgrad/telemetry/trace.h"

namespace fftgrad::comm {

namespace {

/// Cluster-wide abort signal: raised when any rank throws, so ranks parked
/// in a barrier fail fast instead of deadlocking.
struct AbortedError : std::runtime_error {
  AbortedError() : std::runtime_error("SimCluster: a peer rank failed") {}
};

/// One call-count bump plus the payload bytes this rank feeds into a
/// collective. References are cached across calls (registry objects are
/// immortal), so the disabled path is two relaxed loads.
void note_collective(telemetry::Counter& calls, double payload_bytes) {
  static telemetry::Counter& bytes_sent =
      telemetry::MetricsRegistry::global().counter("comm.bytes_sent");
  calls.add(1.0);
  bytes_sent.add(payload_bytes);
}

}  // namespace

std::size_t RankContext::size() const { return cluster_->ranks_; }

const NetworkModel& RankContext::network() const { return cluster_->network_; }

void RankContext::barrier() {
  static telemetry::Counter& calls =
      telemetry::MetricsRegistry::global().counter("comm.barrier.calls");
  calls.add(1.0);
  telemetry::TraceSpan span("barrier", "comm");
  cluster_->barrier_wait(rank_);
}

void SimCluster::align_clocks_locked() {
  FFTGRAD_ASSERT_HELD(mutex_);
  double latest = 0.0;
  for (RankContext* ctx : contexts_) latest = std::max(latest, ctx->clock().time());
  for (RankContext* ctx : contexts_) ctx->clock().set_to(latest);
}

void SimCluster::barrier_wait(std::size_t rank) {
  // Schedule-stress arrival jitter: a seeded number of yields before this
  // rank takes the barrier mutex, so different seeds explore different
  // arrival orders (and thus different "last arrival" ranks).
  if (analysis::schedule_stress_seed() != 0) {
    const std::uint64_t yields = analysis::stress_pick(rank * 0x9e3779b9u, 8);
    for (std::uint64_t i = 0; i < yields; ++i) std::this_thread::yield();
  }
  std::unique_lock<analysis::CheckedMutex> lock(mutex_);
  const std::uint64_t my_generation = generation_;
  if (++arrived_ == ranks_) {
    // Last arrival: BSP semantics, every clock advances to the straggler.
    align_clocks_locked();
    arrived_ = 0;
    ++generation_;
    cv_.notify_all();
    return;
  }
  cv_.wait(lock, [&] { return generation_ != my_generation; });
}

std::vector<std::vector<std::uint8_t>> RankContext::allgather(
    std::span<const std::uint8_t> send) {
  static telemetry::Counter& calls =
      telemetry::MetricsRegistry::global().counter("comm.allgather.calls");
  note_collective(calls, static_cast<double>(send.size()));
  telemetry::TraceSpan span("allgather", "comm");
  SimCluster& c = *cluster_;
  c.byte_slots_[rank_] = send;
  c.barrier_wait(rank_);  // all contributions visible
  std::vector<std::vector<std::uint8_t>> gathered(c.ranks_);
  std::vector<double> sizes(c.ranks_);
  for (std::size_t r = 0; r < c.ranks_; ++r) {
    gathered[r].assign(c.byte_slots_[r].begin(), c.byte_slots_[r].end());
    sizes[r] = static_cast<double>(c.byte_slots_[r].size());
  }
  clock_.advance(c.network_.allgatherv_time(sizes));
  c.barrier_wait(rank_);  // slots may be reused
  return gathered;
}

void RankContext::allreduce_sum(std::span<float> data) {
  static telemetry::Counter& calls =
      telemetry::MetricsRegistry::global().counter("comm.allreduce.calls");
  note_collective(calls, static_cast<double>(data.size_bytes()));
  telemetry::TraceSpan span("allreduce", "comm");
  SimCluster& c = *cluster_;
  c.float_slots_[rank_] = data;
  c.barrier_wait(rank_);
  // Every rank reduces redundantly into a private buffer; identical
  // floating-point order on all ranks keeps replicas bit-identical.
  std::vector<float> reduced(data.size(), 0.0f);
  for (std::size_t r = 0; r < c.ranks_; ++r) {
    auto peer = c.float_slots_[r];
    if (peer.size() != data.size()) {
      throw std::invalid_argument("allreduce_sum: mismatched sizes across ranks");
    }
    for (std::size_t i = 0; i < peer.size(); ++i) reduced[i] += peer[i];
  }
  clock_.advance(c.network_.allreduce_time(static_cast<double>(data.size() * sizeof(float)),
                                           c.ranks_));
  c.barrier_wait(rank_);  // all ranks done reading before anyone writes
  std::copy(reduced.begin(), reduced.end(), data.begin());
  c.barrier_wait(rank_);
}

void RankContext::broadcast(std::span<float> data, std::size_t root) {
  static telemetry::Counter& calls =
      telemetry::MetricsRegistry::global().counter("comm.broadcast.calls");
  note_collective(calls, rank_ == root ? static_cast<double>(data.size_bytes()) : 0.0);
  telemetry::TraceSpan span("broadcast", "comm");
  SimCluster& c = *cluster_;
  if (root >= c.ranks_) throw std::invalid_argument("broadcast: bad root");
  c.float_slots_[rank_] = data;
  c.barrier_wait(rank_);
  auto src = c.float_slots_[root];
  if (src.size() != data.size()) {
    throw std::invalid_argument("broadcast: mismatched sizes across ranks");
  }
  if (rank_ != root) std::copy(src.begin(), src.end(), data.begin());
  clock_.advance(c.network_.broadcast_time(static_cast<double>(data.size() * sizeof(float)),
                                           c.ranks_));
  c.barrier_wait(rank_);
}

std::vector<std::vector<std::uint8_t>> RankContext::gather(std::span<const std::uint8_t> send,
                                                           std::size_t root) {
  static telemetry::Counter& calls =
      telemetry::MetricsRegistry::global().counter("comm.gather.calls");
  note_collective(calls, static_cast<double>(send.size()));
  telemetry::TraceSpan span("gather", "comm");
  SimCluster& c = *cluster_;
  if (root >= c.ranks_) throw std::invalid_argument("gather: bad root");
  c.byte_slots_[rank_] = send;
  c.barrier_wait(rank_);
  std::vector<std::vector<std::uint8_t>> gathered;
  if (rank_ == root) {
    gathered.resize(c.ranks_);
    double inbound = 0.0;
    for (std::size_t r = 0; r < c.ranks_; ++r) {
      gathered[r].assign(c.byte_slots_[r].begin(), c.byte_slots_[r].end());
      if (r != root) inbound += c.network_.p2p_time(static_cast<double>(c.byte_slots_[r].size()));
    }
    clock_.advance(inbound);
  } else {
    clock_.advance(c.network_.p2p_time(static_cast<double>(send.size())));
  }
  c.barrier_wait(rank_);
  return gathered;
}

std::vector<float> RankContext::reduce_scatter_sum(std::span<const float> data) {
  static telemetry::Counter& calls =
      telemetry::MetricsRegistry::global().counter("comm.reduce_scatter.calls");
  note_collective(calls, static_cast<double>(data.size_bytes()));
  telemetry::TraceSpan span("reduce_scatter", "comm");
  SimCluster& c = *cluster_;
  c.float_slots_[rank_] = {const_cast<float*>(data.data()), data.size()};
  c.barrier_wait(rank_);
  const std::size_t n = data.size();
  const std::size_t base = n / c.ranks_;
  const std::size_t begin = rank_ * base;
  const std::size_t end = rank_ + 1 == c.ranks_ ? n : begin + base;
  std::vector<float> chunk(end - begin, 0.0f);
  for (std::size_t r = 0; r < c.ranks_; ++r) {
    auto peer = c.float_slots_[r];
    if (peer.size() != n) {
      throw std::invalid_argument("reduce_scatter_sum: mismatched sizes across ranks");
    }
    for (std::size_t i = begin; i < end; ++i) chunk[i - begin] += peer[i];
  }
  // Ring reduce-scatter: p-1 steps of one chunk each.
  const double chunk_bytes = static_cast<double>(base * sizeof(float));
  clock_.advance(static_cast<double>(c.ranks_ - 1) * c.network_.p2p_time(chunk_bytes));
  c.barrier_wait(rank_);
  return chunk;
}

std::vector<double> SimCluster::run(std::size_t ranks,
                                    const std::function<void(RankContext&)>& fn) {
  if (ranks == 0) throw std::invalid_argument("SimCluster: ranks must be >= 1");
  // Each run is a fresh simulation (clocks restart at zero) and therefore a
  // fresh trace process.
  if (telemetry::Tracer::global().enabled()) telemetry::Tracer::global().begin_sim_session();
  ranks_ = ranks;
  arrived_ = 0;
  generation_ = 0;
  byte_slots_.assign(ranks, {});
  float_slots_.assign(ranks, {});

  std::vector<RankContext> contexts;
  contexts.reserve(ranks);
  for (std::size_t r = 0; r < ranks; ++r) contexts.push_back(RankContext(*this, r));
  contexts_.clear();
  for (auto& ctx : contexts) contexts_.push_back(&ctx);

  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto body = [&](std::size_t r) {
    try {
      telemetry::ScopedRank bind(static_cast<std::int32_t>(r),
                                 contexts[r].clock().time_ptr());
      fn(contexts[r]);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      // Release peers waiting in the barrier so the cluster drains instead
      // of deadlocking; they will observe mismatched state and finish or
      // fail on their own.
      std::lock_guard<analysis::CheckedMutex> lock(mutex_);
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(ranks);
  for (std::size_t r = 0; r < ranks; ++r) threads.emplace_back(body, r);
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);

  std::vector<double> clocks(ranks);
  for (std::size_t r = 0; r < ranks; ++r) clocks[r] = contexts[r].clock().time();
  contexts_.clear();
  return clocks;
}

}  // namespace fftgrad::comm
