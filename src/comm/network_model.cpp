#include "fftgrad/comm/network_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fftgrad::comm {

double RetryPolicy::backoff_s(std::size_t retry) const {
  return backoff_base_s * std::pow(backoff_factor, static_cast<double>(retry));
}

double NetworkModel::expected_sends() const {
  if (loss_rate <= 0.0) return 1.0;
  const double p = std::min(loss_rate, 1.0);
  // E[sends] = sum_{k=0}^{max_retries} P(send k+1 happens) = sum p^k.
  double sends = 0.0;
  double pk = 1.0;
  for (std::size_t k = 0; k <= retry.max_retries; ++k) {
    sends += pk;
    pk *= p;
  }
  return sends;
}

double NetworkModel::expected_backoff_s() const {
  if (loss_rate <= 0.0) return 0.0;
  const double p = std::min(loss_rate, 1.0);
  // Retransmission i (1-based) happens with probability p^i and waits
  // backoff_s(i-1) first.
  double total = 0.0;
  double pi = p;
  for (std::size_t i = 1; i <= retry.max_retries; ++i) {
    total += pi * retry.backoff_s(i - 1);
    pi *= p;
  }
  return total;
}

double NetworkModel::allgather_time(double block_bytes, std::size_t ranks) const {
  if (ranks <= 1) return 0.0;
  const double steps = static_cast<double>(ranks - 1);
  return steps * p2p_time(block_bytes);
}

double NetworkModel::allgatherv_time(std::span<const double> block_bytes) const {
  const std::size_t ranks = block_bytes.size();
  if (ranks <= 1) return 0.0;
  // In a ring allgather, at step s every rank forwards the block that
  // originated s hops upstream; the step completes when the largest block
  // of that step has been forwarded. Over p-1 steps every block is in
  // flight exactly once at every step boundary, so each step is bounded by
  // the global maximum block. (Exact per-step tracking would rotate the
  // origin; the max bound is what limits the schedule in the worst rank.)
  const double max_block = *std::max_element(block_bytes.begin(), block_bytes.end());
  return static_cast<double>(ranks - 1) * p2p_time(max_block);
}

double NetworkModel::allreduce_time(double total_bytes, std::size_t ranks) const {
  if (ranks <= 1) return 0.0;
  const double steps = 2.0 * static_cast<double>(ranks - 1);
  const double chunk = total_bytes / static_cast<double>(ranks);
  return steps * p2p_time(chunk);
}

double NetworkModel::broadcast_time(double bytes, std::size_t ranks) const {
  if (ranks <= 1) return 0.0;
  const double rounds = std::ceil(std::log2(static_cast<double>(ranks)));
  return rounds * p2p_time(bytes);
}

double NetworkModel::ps_push_time(std::span<const double> block_bytes) const {
  double total = 0.0;
  for (double bytes : block_bytes) total += p2p_time(bytes);
  return total;
}

double NetworkModel::ps_pull_time(double param_bytes, std::size_t workers) const {
  return static_cast<double>(workers) * p2p_time(param_bytes);
}

namespace {

// The factories override only the link parameters; loss/retry keep their
// defaults (lossless), spelled via member assignment so -Wextra's
// missing-field-initializers check stays quiet about the aggregate.
NetworkModel make_model(const char* name, double latency_s, double bandwidth_bytes_s) {
  NetworkModel model;
  model.name = name;
  model.latency_s = latency_s;
  model.bandwidth_bytes_s = bandwidth_bytes_s;
  return model;
}

}  // namespace

NetworkModel NetworkModel::ethernet_1g() { return make_model("ethernet-1G", 50e-6, 1e9 / 8.0); }

NetworkModel NetworkModel::ethernet_10g() {
  return make_model("ethernet-10G", 20e-6, 10e9 / 8.0);
}

NetworkModel NetworkModel::infiniband_fdr56() {
  return make_model("infiniband-FDR56", 1e-6, 56e9 / 8.0);
}

NetworkModel NetworkModel::pcie_intranode() {
  return make_model("pcie-intranode", 5e-7, 12e9);  // ~PCIe gen3 x16 effective
}

}  // namespace fftgrad::comm
