#include "fftgrad/comm/network_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fftgrad::comm {

SimSeconds RetryPolicy::backoff_s(std::size_t retry) const {
  return backoff_base_s * std::pow(backoff_factor, static_cast<double>(retry));
}

double NetworkModel::expected_sends() const {
  if (loss_rate <= 0.0) return 1.0;
  const double p = std::min(loss_rate, 1.0);
  // E[sends] = sum_{k=0}^{max_retries} P(send k+1 happens) = sum p^k.
  double sends = 0.0;
  double pk = 1.0;
  for (std::size_t k = 0; k <= retry.max_retries; ++k) {
    sends += pk;
    pk *= p;
  }
  return sends;
}

SimSeconds NetworkModel::expected_backoff_s() const {
  if (loss_rate <= 0.0) return SimSeconds(0.0);
  const double p = std::min(loss_rate, 1.0);
  // Retransmission i (1-based) happens with probability p^i and waits
  // backoff_s(i-1) first.
  SimSeconds total{0.0};
  double pi = p;
  for (std::size_t i = 1; i <= retry.max_retries; ++i) {
    total += pi * retry.backoff_s(i - 1);
    pi *= p;
  }
  return total;
}

SimSeconds NetworkModel::allgather_time(Bytes block, std::size_t ranks) const {
  if (ranks <= 1) return SimSeconds(0.0);
  const double steps = static_cast<double>(ranks - 1);
  return steps * p2p_time(block);
}

SimSeconds NetworkModel::allgatherv_time(std::span<const Bytes> blocks) const {
  const std::size_t ranks = blocks.size();
  if (ranks <= 1) return SimSeconds(0.0);
  // In a ring allgather, at step s every rank forwards the block that
  // originated s hops upstream; the step completes when the largest block
  // of that step has been forwarded. Over p-1 steps every block is in
  // flight exactly once at every step boundary, so each step is bounded by
  // the global maximum block. (Exact per-step tracking would rotate the
  // origin; the max bound is what limits the schedule in the worst rank.)
  const Bytes max_block = *std::max_element(blocks.begin(), blocks.end());
  return static_cast<double>(ranks - 1) * p2p_time(max_block);
}

SimSeconds NetworkModel::allreduce_time(Bytes total, std::size_t ranks) const {
  if (ranks <= 1) return SimSeconds(0.0);
  const double steps = 2.0 * static_cast<double>(ranks - 1);
  const Bytes chunk = total / static_cast<double>(ranks);
  return steps * p2p_time(chunk);
}

SimSeconds NetworkModel::broadcast_time(Bytes size, std::size_t ranks) const {
  if (ranks <= 1) return SimSeconds(0.0);
  const double rounds = std::ceil(std::log2(static_cast<double>(ranks)));
  return rounds * p2p_time(size);
}

SimSeconds NetworkModel::ps_push_time(std::span<const Bytes> blocks) const {
  SimSeconds total{0.0};
  for (Bytes block : blocks) total += p2p_time(block);
  return total;
}

SimSeconds NetworkModel::ps_pull_time(Bytes params, std::size_t workers) const {
  return static_cast<double>(workers) * p2p_time(params);
}

namespace {

// The factories override only the link parameters; loss/retry keep their
// defaults (lossless), spelled via member assignment so -Wextra's
// missing-field-initializers check stays quiet about the aggregate.
NetworkModel make_model(const char* name, SimSeconds latency, BytesPerSecond bandwidth) {
  NetworkModel model;
  model.name = name;
  model.latency_s = latency;
  model.bandwidth_bytes_s = bandwidth;
  return model;
}

}  // namespace

NetworkModel NetworkModel::ethernet_1g() {
  return make_model("ethernet-1G", SimSeconds(50e-6), BytesPerSecond(1e9 / 8.0));
}

NetworkModel NetworkModel::ethernet_10g() {
  return make_model("ethernet-10G", SimSeconds(20e-6), BytesPerSecond(10e9 / 8.0));
}

NetworkModel NetworkModel::infiniband_fdr56() {
  return make_model("infiniband-FDR56", SimSeconds(1e-6), BytesPerSecond(56e9 / 8.0));
}

NetworkModel NetworkModel::pcie_intranode() {
  // ~PCIe gen3 x16 effective
  return make_model("pcie-intranode", SimSeconds(5e-7), BytesPerSecond(12e9));
}

}  // namespace fftgrad::comm
