// From-scratch FFT library (the cuFFT substitute).
//
// FftPlan caches twiddle factors and bit-reversal tables for a fixed
// transform size, mirroring cuFFT's plan-then-execute interface. Power-of-
// two sizes run an iterative radix-2 Cooley-Tukey; every other size runs
// Bluestein's chirp-z algorithm on top of a padded power-of-two plan, so
// any gradient length is supported without copying into padded buffers at
// the call site.
//
// Real transforms (what the compressor uses — gradients are real 1-D
// signals) are exposed as rfft/irfft over the non-redundant half spectrum
// of n/2 + 1 bins; irfft enforces the conjugate symmetry implicitly by
// mirroring, so rfft followed by irfft reproduces the input to float
// round-off.
#pragma once

#include <complex>
#include <cstddef>
#include <memory>
#include <span>
#include <vector>

namespace fftgrad::fft {

using cfloat = std::complex<float>;

class FftPlan {
 public:
  /// Plan for transforms of length n >= 1.
  explicit FftPlan(std::size_t n);
  ~FftPlan();
  FftPlan(FftPlan&&) noexcept;
  FftPlan& operator=(FftPlan&&) noexcept;
  FftPlan(const FftPlan&) = delete;
  FftPlan& operator=(const FftPlan&) = delete;

  std::size_t size() const;

  /// out[k] = sum_j in[j] * exp(-2*pi*i*j*k/n). in/out must have length n;
  /// in-place (in.data() == out.data()) is allowed.
  void forward(std::span<const cfloat> in, std::span<cfloat> out) const;

  /// Inverse transform with 1/n normalization: inverse(forward(x)) == x.
  void inverse(std::span<const cfloat> in, std::span<cfloat> out) const;

  /// Number of non-redundant complex bins of a real transform: n/2 + 1.
  std::size_t real_bins() const { return size() / 2 + 1; }

  /// Real-to-complex forward transform. out must have real_bins() entries.
  void rfft(std::span<const float> in, std::span<cfloat> out) const;

  /// Complex-to-real inverse of rfft (1/n normalized). in must have
  /// real_bins() entries, out length n. Bins are treated as a conjugate-
  /// symmetric spectrum; any imaginary part in bin 0 (and bin n/2 for even
  /// n) is ignored.
  void irfft(std::span<const cfloat> in, std::span<float> out) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// True iff n is a power of two (n >= 1).
bool is_power_of_two(std::size_t n);

/// Smallest power of two >= n.
std::size_t next_power_of_two(std::size_t n);

/// One-shot convenience wrappers (construct a plan internally; prefer
/// FftPlan for repeated transforms of the same size).
std::vector<cfloat> fft(std::span<const cfloat> in);
std::vector<cfloat> ifft(std::span<const cfloat> in);
std::vector<cfloat> rfft(std::span<const float> in);
std::vector<float> irfft(std::span<const cfloat> bins, std::size_t n);

}  // namespace fftgrad::fft
