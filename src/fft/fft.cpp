#include "fftgrad/fft/fft.h"

#include <cmath>
#include <stdexcept>

namespace fftgrad::fft {
namespace {

constexpr double kPi = 3.14159265358979323846;

/// Iterative radix-2 Cooley-Tukey over a power-of-two length. Twiddles are
/// computed in double and stored as float; the per-stage tables are laid
/// out so the inner loop walks them contiguously.
class Radix2 {
 public:
  explicit Radix2(std::size_t n) : n_(n) {
    if (!is_power_of_two(n)) throw std::logic_error("Radix2: n must be a power of two");
    log2n_ = 0;
    while ((std::size_t{1} << log2n_) < n) ++log2n_;

    bitrev_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t rev = 0;
      for (std::size_t b = 0; b < log2n_; ++b) {
        if (i & (std::size_t{1} << b)) rev |= std::size_t{1} << (log2n_ - 1 - b);
      }
      bitrev_[i] = rev;
    }

    // Forward twiddles for each butterfly half-length: w_m^j = exp(-i*pi*j/half).
    twiddles_.resize(n > 1 ? n - 1 : 0);
    std::size_t at = 0;
    for (std::size_t half = 1; half < n; half <<= 1) {
      for (std::size_t j = 0; j < half; ++j) {
        const double angle = -kPi * static_cast<double>(j) / static_cast<double>(half);
        twiddles_[at++] = cfloat(static_cast<float>(std::cos(angle)),
                                 static_cast<float>(std::sin(angle)));
      }
    }
  }

  std::size_t size() const { return n_; }

  /// In-place transform of `data` (length n_). `invert` conjugates the
  /// twiddles; normalization is the caller's responsibility.
  void transform(cfloat* data, bool invert) const {
    for (std::size_t i = 0; i < n_; ++i) {
      const std::size_t j = bitrev_[i];
      if (i < j) std::swap(data[i], data[j]);
    }
    std::size_t at = 0;
    for (std::size_t half = 1; half < n_; half <<= 1) {
      const cfloat* w = &twiddles_[at];
      const std::size_t step = half << 1;
      for (std::size_t base = 0; base < n_; base += step) {
        for (std::size_t j = 0; j < half; ++j) {
          const cfloat tw = invert ? std::conj(w[j]) : w[j];
          cfloat& a = data[base + j];
          cfloat& b = data[base + j + half];
          const cfloat t = b * tw;
          b = a - t;
          a = a + t;
        }
      }
      at += half;
    }
  }

 private:
  std::size_t n_;
  std::size_t log2n_ = 0;
  std::vector<std::size_t> bitrev_;
  std::vector<cfloat> twiddles_;
};

}  // namespace

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::size_t next_power_of_two(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

struct FftPlan::Impl {
  std::size_t n;
  // Power-of-two path.
  std::unique_ptr<Radix2> radix2;
  // Bluestein path: chirp c[j] = exp(-i*pi*j^2/n), padded length m >= 2n-1,
  // and the precomputed FFT of the (conjugate) chirp filter b.
  std::unique_ptr<Radix2> padded;
  std::vector<cfloat> chirp;       // length n
  std::vector<cfloat> filter_fft;  // length m

  explicit Impl(std::size_t size) : n(size) {
    if (n == 0) throw std::invalid_argument("FftPlan: size must be >= 1");
    if (is_power_of_two(n)) {
      radix2 = std::make_unique<Radix2>(n);
      return;
    }
    const std::size_t m = next_power_of_two(2 * n - 1);
    padded = std::make_unique<Radix2>(m);
    chirp.resize(n);
    for (std::size_t j = 0; j < n; ++j) {
      // j^2 mod 2n keeps the angle argument small for large n.
      const std::size_t j2 = (static_cast<unsigned long long>(j) * j) % (2 * n);
      const double angle = -kPi * static_cast<double>(j2) / static_cast<double>(n);
      chirp[j] = cfloat(static_cast<float>(std::cos(angle)),
                        static_cast<float>(std::sin(angle)));
    }
    std::vector<cfloat> filter(m, cfloat(0.0f, 0.0f));
    filter[0] = std::conj(chirp[0]);
    for (std::size_t j = 1; j < n; ++j) {
      filter[j] = std::conj(chirp[j]);
      filter[m - j] = std::conj(chirp[j]);
    }
    padded->transform(filter.data(), /*invert=*/false);
    filter_fft = std::move(filter);
  }

  void execute(std::span<const cfloat> in, std::span<cfloat> out, bool invert) const {
    if (in.size() != n || out.size() != n) throw std::invalid_argument("FftPlan: bad span length");
    if (radix2) {
      if (out.data() != in.data()) std::copy(in.begin(), in.end(), out.begin());
      radix2->transform(out.data(), invert);
    } else {
      bluestein(in, out, invert);
    }
    if (invert) {
      const float scale = 1.0f / static_cast<float>(n);
      for (cfloat& v : out) v *= scale;
    }
  }

  void bluestein(std::span<const cfloat> in, std::span<cfloat> out, bool invert) const {
    const std::size_t m = padded->size();
    std::vector<cfloat> a(m, cfloat(0.0f, 0.0f));
    for (std::size_t j = 0; j < n; ++j) {
      const cfloat c = invert ? std::conj(chirp[j]) : chirp[j];
      a[j] = in[j] * c;
    }
    padded->transform(a.data(), /*invert=*/false);
    if (!invert) {
      for (std::size_t j = 0; j < m; ++j) a[j] *= filter_fft[j];
    } else {
      // The chirp filter kernel is an even sequence, so the FFT of its
      // conjugate (the inverse-transform filter) equals conj(filter_fft).
      for (std::size_t j = 0; j < m; ++j) a[j] *= std::conj(filter_fft[j]);
    }
    padded->transform(a.data(), /*invert=*/true);
    const float scale = 1.0f / static_cast<float>(m);
    for (std::size_t j = 0; j < n; ++j) {
      const cfloat c = invert ? std::conj(chirp[j]) : chirp[j];
      out[j] = a[j] * scale * c;
    }
  }
};

FftPlan::FftPlan(std::size_t n) : impl_(std::make_unique<Impl>(n)) {}
FftPlan::~FftPlan() = default;
FftPlan::FftPlan(FftPlan&&) noexcept = default;
FftPlan& FftPlan::operator=(FftPlan&&) noexcept = default;

std::size_t FftPlan::size() const { return impl_->n; }

void FftPlan::forward(std::span<const cfloat> in, std::span<cfloat> out) const {
  impl_->execute(in, out, /*invert=*/false);
}

void FftPlan::inverse(std::span<const cfloat> in, std::span<cfloat> out) const {
  impl_->execute(in, out, /*invert=*/true);
}

void FftPlan::rfft(std::span<const float> in, std::span<cfloat> out) const {
  const std::size_t n = impl_->n;
  if (in.size() != n) throw std::invalid_argument("rfft: input length mismatch");
  if (out.size() != real_bins()) throw std::invalid_argument("rfft: output length mismatch");
  std::vector<cfloat> buf(n);
  for (std::size_t i = 0; i < n; ++i) buf[i] = cfloat(in[i], 0.0f);
  impl_->execute(buf, buf, /*invert=*/false);
  std::copy(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(real_bins()), out.begin());
}

void FftPlan::irfft(std::span<const cfloat> in, std::span<float> out) const {
  const std::size_t n = impl_->n;
  if (in.size() != real_bins()) throw std::invalid_argument("irfft: input length mismatch");
  if (out.size() != n) throw std::invalid_argument("irfft: output length mismatch");
  std::vector<cfloat> spectrum(n);
  for (std::size_t k = 0; k < real_bins(); ++k) spectrum[k] = in[k];
  // DC bin must be real for a real signal; same for the Nyquist bin when n
  // is even. Rather than trusting the caller we project them.
  spectrum[0] = cfloat(in[0].real(), 0.0f);
  if (n % 2 == 0 && n >= 2) spectrum[n / 2] = cfloat(in[n / 2].real(), 0.0f);
  for (std::size_t k = real_bins(); k < n; ++k) spectrum[k] = std::conj(spectrum[n - k]);
  impl_->execute(spectrum, spectrum, /*invert=*/true);
  for (std::size_t i = 0; i < n; ++i) out[i] = spectrum[i].real();
}

std::vector<cfloat> fft(std::span<const cfloat> in) {
  std::vector<cfloat> out(in.size());
  FftPlan(in.size()).forward(in, out);
  return out;
}

std::vector<cfloat> ifft(std::span<const cfloat> in) {
  std::vector<cfloat> out(in.size());
  FftPlan(in.size()).inverse(in, out);
  return out;
}

std::vector<cfloat> rfft(std::span<const float> in) {
  FftPlan plan(in.size());
  std::vector<cfloat> out(plan.real_bins());
  plan.rfft(in, out);
  return out;
}

std::vector<float> irfft(std::span<const cfloat> bins, std::size_t n) {
  FftPlan plan(n);
  std::vector<float> out(n);
  plan.irfft(bins, out);
  return out;
}

}  // namespace fftgrad::fft
