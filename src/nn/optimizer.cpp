#include "fftgrad/nn/optimizer.h"

#include <stdexcept>

namespace fftgrad::nn {

void SgdOptimizer::step(Network& net, float lr) {
  auto params = net.params();
  if (velocity_.empty()) {
    velocity_.resize(params.size());
    for (std::size_t p = 0; p < params.size(); ++p) {
      velocity_[p].assign(params[p].value->size(), 0.0f);
    }
  }
  if (velocity_.size() != params.size()) {
    throw std::logic_error("SgdOptimizer: network structure changed between steps");
  }
  for (std::size_t p = 0; p < params.size(); ++p) {
    auto value = params[p].value->flat();
    auto grad = params[p].grad->flat();
    auto& vel = velocity_[p];
    for (std::size_t i = 0; i < value.size(); ++i) {
      float g = grad[i];
      if (weight_decay_ != 0.0f) g += weight_decay_ * value[i];
      vel[i] = momentum_ * vel[i] + g;
      value[i] -= lr * vel[i];
    }
  }
}

StepLrSchedule::StepLrSchedule(std::vector<Stage> stages) : stages_(std::move(stages)) {
  if (stages_.empty()) throw std::invalid_argument("StepLrSchedule: need at least one stage");
  for (std::size_t i = 1; i < stages_.size(); ++i) {
    if (stages_[i].start_epoch <= stages_[i - 1].start_epoch) {
      throw std::invalid_argument("StepLrSchedule: stages must have increasing start epochs");
    }
  }
}

float StepLrSchedule::at(std::size_t epoch) const {
  float lr = stages_.front().lr;
  for (const Stage& stage : stages_) {
    if (epoch >= stage.start_epoch) lr = stage.lr;
  }
  return lr;
}

}  // namespace fftgrad::nn
