#include "fftgrad/nn/loss.h"

#include <cmath>
#include <stdexcept>

#include "fftgrad/tensor/ops.h"

namespace fftgrad::nn {

double SoftmaxCrossEntropy::forward(const tensor::Tensor& logits,
                                    std::span<const std::size_t> labels) {
  if (logits.rank() != 2 || logits.dim(0) != labels.size()) {
    throw std::invalid_argument("SoftmaxCrossEntropy: shape mismatch");
  }
  const std::size_t batch = logits.dim(0), classes = logits.dim(1);
  probs_ = logits;
  tensor::softmax_rows(probs_.flat(), batch, classes);
  labels_.assign(labels.begin(), labels.end());
  double loss = 0.0;
  for (std::size_t n = 0; n < batch; ++n) {
    if (labels[n] >= classes) throw std::invalid_argument("SoftmaxCrossEntropy: bad label");
    const double p = std::max<double>(probs_.at(n, labels[n]), 1e-12);
    loss -= std::log(p);
  }
  return loss / static_cast<double>(batch);
}

tensor::Tensor SoftmaxCrossEntropy::backward() const {
  const std::size_t batch = probs_.dim(0), classes = probs_.dim(1);
  tensor::Tensor grad = probs_;
  const float inv_batch = 1.0f / static_cast<float>(batch);
  for (std::size_t n = 0; n < batch; ++n) {
    grad.at(n, labels_[n]) -= 1.0f;
    for (std::size_t c = 0; c < classes; ++c) grad.at(n, c) *= inv_batch;
  }
  return grad;
}

double accuracy(const tensor::Tensor& logits, std::span<const std::size_t> labels) {
  const std::size_t batch = logits.dim(0), classes = logits.dim(1);
  if (batch != labels.size()) throw std::invalid_argument("accuracy: shape mismatch");
  std::vector<std::size_t> predicted(batch);
  tensor::argmax_rows(logits.flat(), batch, classes, predicted);
  std::size_t hits = 0;
  for (std::size_t n = 0; n < batch; ++n) {
    if (predicted[n] == labels[n]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(batch);
}

}  // namespace fftgrad::nn
