// Sequential network container with the flat-gradient interface the
// compression pipeline needs: the paper's step 1 "linearize the gradients"
// is copy_gradients(); the distributed trainer writes the averaged,
// decompressed gradient back with set_gradients() before the SGD step.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "fftgrad/nn/layer.h"

namespace fftgrad::nn {

class Network {
 public:
  Network() = default;

  /// Append a layer; returns *this for chaining.
  Network& add(std::unique_ptr<Layer> layer);

  std::size_t layer_count() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }

  tensor::Tensor forward(const tensor::Tensor& x);
  /// Backward through all layers; accumulates parameter gradients.
  void backward(const tensor::Tensor& grad_out);
  void zero_grad();

  /// All trainable parameters in layer order.
  std::vector<Param> params();

  /// Total number of trainable scalars (the gradient vector length).
  std::size_t param_count();

  /// Copy the concatenated parameter gradients into `out` (linearization).
  void copy_gradients(std::span<float> out);
  /// Overwrite the per-layer gradients from a flat vector.
  void set_gradients(std::span<const float> flat);
  /// Copy the concatenated parameter values into `out`.
  void copy_params(std::span<float> out);
  /// Overwrite parameters from a flat vector (used for rank sync).
  void set_params(std::span<const float> flat);

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace fftgrad::nn
