// Sequential network container with the flat-gradient interface the
// compression pipeline needs: the paper's step 1 "linearize the gradients"
// is copy_gradients(); the distributed trainer writes the averaged,
// decompressed gradient back with set_gradients() before the SGD step.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "fftgrad/nn/layer.h"

namespace fftgrad::nn {

/// One layer's slice of the flat (linearized) gradient/parameter vector:
/// elements [offset, offset + count). Layers without trainable parameters
/// contribute no segment.
struct ParamSegment {
  std::string name;  ///< layer name, suffixed "#<i>" for its layer index
  std::size_t offset = 0;
  std::size_t count = 0;
};

class Network {
 public:
  Network() = default;

  /// Append a layer; returns *this for chaining.
  Network& add(std::unique_ptr<Layer> layer);

  std::size_t layer_count() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }

  tensor::Tensor forward(const tensor::Tensor& x);
  /// Backward through all layers; accumulates parameter gradients.
  void backward(const tensor::Tensor& grad_out);
  void zero_grad();

  /// All trainable parameters in layer order.
  std::vector<Param> params();

  /// Total number of trainable scalars (the gradient vector length).
  std::size_t param_count();

  /// Map each parameterized layer to its slice of the flat vectors used by
  /// copy_gradients()/set_gradients() (same concatenation order). Lets the
  /// run ledger attribute round-trip error per layer.
  std::vector<ParamSegment> param_layout();

  /// Copy the concatenated parameter gradients into `out` (linearization).
  void copy_gradients(std::span<float> out);
  /// Overwrite the per-layer gradients from a flat vector.
  void set_gradients(std::span<const float> flat);
  /// Copy the concatenated parameter values into `out`.
  void copy_params(std::span<float> out);
  /// Overwrite parameters from a flat vector (used for rank sync).
  void set_params(std::span<const float> flat);

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace fftgrad::nn
