// Concrete layers: Dense, Conv2d (im2col + GEMM), ReLU, MaxPool2d,
// Flatten, and a two-convolution Residual block (the structural element
// that distinguishes ResNet-style networks in the paper's Fig 2 analysis).
// All activations are NCHW with a leading batch dimension.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "fftgrad/nn/layer.h"
#include "fftgrad/util/rng.h"

namespace fftgrad::nn {

/// Fully connected: y = x W^T + b, x is (N x in), W is (out x in).
class Dense : public Layer {
 public:
  Dense(std::size_t in_features, std::size_t out_features, util::Rng& rng);

  std::string name() const override;
  tensor::Tensor forward(const tensor::Tensor& x) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::vector<Param> params() override;

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }

 private:
  std::size_t in_, out_;
  tensor::Tensor weight_, bias_;
  tensor::Tensor weight_grad_, bias_grad_;
  tensor::Tensor input_cache_;
};

/// 2-D convolution over NCHW activations via im2col + GEMM, square kernel,
/// symmetric padding, unit dilation.
class Conv2d : public Layer {
 public:
  Conv2d(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
         std::size_t stride, std::size_t padding, util::Rng& rng);

  std::string name() const override;
  tensor::Tensor forward(const tensor::Tensor& x) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::vector<Param> params() override;

  std::size_t out_height(std::size_t h) const { return (h + 2 * pad_ - k_) / stride_ + 1; }
  std::size_t out_width(std::size_t w) const { return (w + 2 * pad_ - k_) / stride_ + 1; }

 private:
  void im2col(const float* img, std::size_t h, std::size_t w, float* col) const;
  void col2im(const float* col, std::size_t h, std::size_t w, float* img) const;

  std::size_t cin_, cout_, k_, stride_, pad_;
  tensor::Tensor weight_;  // (cout, cin*k*k)
  tensor::Tensor bias_;    // (cout)
  tensor::Tensor weight_grad_, bias_grad_;
  tensor::Tensor input_cache_;
};

/// Per-channel batch normalization over NCHW activations, with learnable
/// scale/shift. Statistics are computed over (N, H, W) per channel. This is
/// the ingredient that keeps deep ReLU networks trainable (ResNet-style
/// models collapse to dead units without it); evaluation batches use batch
/// statistics as well (sufficient at the test-set sizes used here).
class BatchNorm2d : public Layer {
 public:
  explicit BatchNorm2d(std::size_t channels, float epsilon = 1e-5f);

  std::string name() const override;
  tensor::Tensor forward(const tensor::Tensor& x) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::vector<Param> params() override;

 private:
  std::size_t channels_;
  float epsilon_;
  tensor::Tensor gamma_, beta_;
  tensor::Tensor gamma_grad_, beta_grad_;
  // Backward caches.
  tensor::Tensor normalized_;          // x_hat
  std::vector<float> inv_stddev_;      // per channel
  std::vector<std::size_t> in_shape_;
};

class ReLU : public Layer {
 public:
  std::string name() const override { return "relu"; }
  tensor::Tensor forward(const tensor::Tensor& x) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;

 private:
  tensor::Tensor mask_;
};

/// max(x, slope*x): keeps a small gradient on the negative side, an
/// alternative to BatchNorm for avoiding dead units.
class LeakyReLU : public Layer {
 public:
  explicit LeakyReLU(float slope = 0.01f) : slope_(slope) {}
  std::string name() const override;
  tensor::Tensor forward(const tensor::Tensor& x) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;

 private:
  float slope_;
  tensor::Tensor input_cache_;
};

class Tanh : public Layer {
 public:
  std::string name() const override { return "tanh"; }
  tensor::Tensor forward(const tensor::Tensor& x) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;

 private:
  tensor::Tensor output_cache_;
};

/// Inverted dropout: active only between train(true) calls; scales kept
/// activations by 1/(1-p) so evaluation needs no rescaling.
class Dropout : public Layer {
 public:
  Dropout(float probability, std::uint64_t seed);
  std::string name() const override;
  tensor::Tensor forward(const tensor::Tensor& x) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  void set_training(bool training) { training_ = training; }
  bool training() const { return training_; }

 private:
  float probability_;
  bool training_ = true;
  util::Rng rng_;
  tensor::Tensor mask_;
};

/// Collapse each channel plane to its mean: (N, C, H, W) -> (N, C).
class GlobalAvgPool2d : public Layer {
 public:
  std::string name() const override { return "gavgpool"; }
  tensor::Tensor forward(const tensor::Tensor& x) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;

 private:
  std::vector<std::size_t> in_shape_;
};

/// Non-overlapping max pooling (window == stride).
class MaxPool2d : public Layer {
 public:
  explicit MaxPool2d(std::size_t window) : window_(window) {}
  std::string name() const override;
  tensor::Tensor forward(const tensor::Tensor& x) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;

 private:
  std::size_t window_;
  std::vector<std::size_t> argmax_;
  std::vector<std::size_t> in_shape_;
};

/// Collapse all non-batch dimensions: (N, C, H, W) -> (N, C*H*W).
class Flatten : public Layer {
 public:
  std::string name() const override { return "flatten"; }
  tensor::Tensor forward(const tensor::Tensor& x) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;

 private:
  std::vector<std::size_t> in_shape_;
};

/// y = relu(bn2(conv2(relu(bn1(conv1(x))))) + x): a same-shape ResNet basic
/// block (3x3 convolutions, stride 1, padding 1, channel-preserving, batch
/// normalization after each convolution as in the original architecture).
class ResidualBlock : public Layer {
 public:
  ResidualBlock(std::size_t channels, util::Rng& rng);

  std::string name() const override;
  tensor::Tensor forward(const tensor::Tensor& x) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::vector<Param> params() override;

 private:
  Conv2d conv1_, conv2_;
  BatchNorm2d bn1_, bn2_;
  ReLU relu1_;
  tensor::Tensor pre_activation_;  // bn2 output + skip, cached for the final ReLU
};

/// Inception-style unit: parallel 1x1 / 3x3 / 5x5 convolution branches
/// (each followed by batch norm + ReLU), concatenated along the channel
/// axis. This is the "sparse fan-out" structure the paper singles out as
/// hard to overlap with communication: several small convolutions replace
/// one large kernel, shrinking per-layer compute below per-layer comm.
class InceptionBlock : public Layer {
 public:
  /// Output channels = 3 * branch_channels.
  InceptionBlock(std::size_t in_channels, std::size_t branch_channels, util::Rng& rng);

  std::string name() const override;
  tensor::Tensor forward(const tensor::Tensor& x) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::vector<Param> params() override;

  std::size_t out_channels() const { return 3 * branch_channels_; }

 private:
  std::size_t branch_channels_;
  Conv2d conv1_, conv3_, conv5_;
  BatchNorm2d bn1_, bn3_, bn5_;
  ReLU relu1_, relu3_, relu5_;
};

}  // namespace fftgrad::nn
