// Sample realistic DNN gradients: train a model for a configurable number
// of iterations on the synthetic task and capture a fresh (unapplied)
// mini-batch gradient. Used by the reconstruction-quality benches and
// tests (Figs 4, 5, 15) — the paper samples gradients of ResNet32 during
// training, and the FFT-vs-spatial comparison is only meaningful on
// gradients with real spatial correlation, not i.i.d. noise.
#pragma once

#include <cstdint>
#include <vector>

namespace fftgrad::nn {

enum class GradientSource {
  kConvNet,  ///< ResNet-style CNN: correlated conv-filter gradients
  kMlp,      ///< dense layers: outer-product (low-rank) structure
};

struct GradientSampleOptions {
  GradientSource source = GradientSource::kConvNet;
  std::size_t warm_iters = 30;  ///< SGD iterations before sampling
  std::size_t batch = 32;
  float lr = 0.01f;
  std::uint64_t seed = 7;
};

/// Returns the flat gradient of a model trained for `warm_iters` steps.
std::vector<float> sample_training_gradient(const GradientSampleOptions& options = {});

}  // namespace fftgrad::nn
