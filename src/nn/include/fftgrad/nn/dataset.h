// Synthetic teacher-labelled datasets (the ImageNet/CIFAR-10 substitute;
// see DESIGN.md "Hardware / data substitutions").
//
// Inputs are i.i.d. standard normal; labels come from a fixed random
// two-layer tanh "teacher" network, so the decision boundaries are smooth
// but non-linear and a student of comparable capacity can genuinely learn
// the task (accuracy rises well above chance and saturates below 100%).
// Because the mapping is fixed by the seed, every rank and every algorithm
// sees exactly the same distribution, and an i.i.d. test split is just a
// disjoint stream from the same generator.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "fftgrad/tensor/tensor.h"
#include "fftgrad/util/rng.h"

namespace fftgrad::nn {

struct Batch {
  tensor::Tensor inputs;             ///< (N, ...input_shape)
  std::vector<std::size_t> labels;   ///< N class indices
};

class SyntheticDataset {
 public:
  /// input_shape excludes the batch dimension (e.g. {3, 16, 16} for image
  /// models, {64} for MLPs). `label_noise` is the probability a sample's
  /// teacher label is replaced by a uniform random class — it puts a floor
  /// under the achievable loss so gradients stay informative late in
  /// training (real datasets have irreducible error; a noiseless teacher
  /// task saturates and gradients collapse to zero).
  SyntheticDataset(std::vector<std::size_t> input_shape, std::size_t classes,
                   std::uint64_t seed, std::size_t teacher_hidden = 48,
                   double label_noise = 0.1);

  std::size_t classes() const { return classes_; }
  const std::vector<std::size_t>& input_shape() const { return input_shape_; }
  std::size_t input_size() const { return input_size_; }

  /// Draw a fresh batch from `rng` (training stream).
  Batch sample(std::size_t batch_size, util::Rng& rng) const;

  /// Deterministic held-out set: same for every call with the same size.
  Batch test_set(std::size_t size) const;

 private:
  std::size_t label_of(std::span<const float> x) const;

  std::vector<std::size_t> input_shape_;
  std::size_t input_size_;
  std::size_t classes_;
  std::size_t hidden_;
  std::uint64_t seed_;
  double label_noise_;
  std::vector<float> w1_;  // hidden x input
  std::vector<float> b1_;  // hidden
  std::vector<float> w2_;  // classes x hidden
  std::vector<float> b2_;  // classes
};

}  // namespace fftgrad::nn
