// SGD with momentum, plus the stepwise learning-rate schedules the paper's
// training setups use (e.g. AlexNet: 0.01 for epochs [0,30), 0.001 for
// [30,60), 0.0001 after).
#pragma once

#include <cstddef>
#include <vector>

#include "fftgrad/nn/network.h"

namespace fftgrad::nn {

class SgdOptimizer {
 public:
  /// Velocity buffers are sized lazily from the network on the first step.
  explicit SgdOptimizer(float momentum = 0.9f, float weight_decay = 0.0f)
      : momentum_(momentum), weight_decay_(weight_decay) {}

  /// v = momentum*v + grad (+ wd*param); param -= lr * v.
  void step(Network& net, float lr);

  float momentum() const { return momentum_; }

  /// Momentum state, one buffer per parameter tensor (empty before the
  /// first step). Exposed for trainer checkpoint/restore: resuming with
  /// the saved velocity reproduces the uninterrupted run bit-for-bit.
  const std::vector<std::vector<float>>& velocity() const { return velocity_; }
  void set_velocity(std::vector<std::vector<float>> velocity) {
    velocity_ = std::move(velocity);
  }

 private:
  float momentum_;
  float weight_decay_;
  std::vector<std::vector<float>> velocity_;
};

/// Piecewise-constant learning-rate schedule: rate(e) is the value of the
/// last boundary not exceeding epoch e.
class StepLrSchedule {
 public:
  struct Stage {
    std::size_t start_epoch;
    float lr;
  };
  explicit StepLrSchedule(std::vector<Stage> stages);
  float at(std::size_t epoch) const;

 private:
  std::vector<Stage> stages_;
};

}  // namespace fftgrad::nn
