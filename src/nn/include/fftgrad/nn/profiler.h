// Per-layer forward/backward wall-time profiling of a Network — the
// measured counterpart of the paper's Fig 2 analysis. Combined with a
// comm::NetworkModel and each layer's parameter count, this yields the
// layer-wise comm-vs-comp picture for any model built in this framework.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "fftgrad/comm/network_model.h"
#include "fftgrad/nn/network.h"
#include "fftgrad/util/units.h"

namespace fftgrad::nn {

struct LayerProfile {
  std::string name;
  std::size_t param_count = 0;
  util::WallSeconds forward_s{};   ///< measured on the host clock
  util::WallSeconds backward_s{};  ///< measured on the host clock
  /// Simulated allreduce time of this layer's fp32 gradient on the network
  /// model passed to profile_network; 0 when profiled without one (or for
  /// parameter-free layers, which exchange nothing). Deliberately a
  /// SimSeconds — mixing it with the measured wall times above requires an
  /// explicit conversion at the comparison site.
  util::SimSeconds comm_s{};
};

/// Run `repeats` forward+backward passes of `input` through `net`, timing
/// each layer individually; the upstream gradient for the backward pass is
/// all-ones over the final activation. Returns per-layer mean times in
/// layer order. Gradients are zeroed before and accumulated during the run
/// (as in training); parameters are not updated.
std::vector<LayerProfile> profile_network(Network& net, const tensor::Tensor& input,
                                          std::size_t repeats = 3);

/// Same measurement, but additionally fills each layer's comm_s with the
/// modelled ring-allreduce time of its gradient (param_count * 4 bytes) on
/// `network` across `ranks` ranks — the layer-wise comm-vs-comp picture of
/// the paper's Fig 2 for any model built in this framework.
std::vector<LayerProfile> profile_network(Network& net, const tensor::Tensor& input,
                                          const comm::NetworkModel& network, std::size_t ranks,
                                          std::size_t repeats = 3);

}  // namespace fftgrad::nn
