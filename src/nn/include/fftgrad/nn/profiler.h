// Per-layer forward/backward wall-time profiling of a Network — the
// measured counterpart of the paper's Fig 2 analysis. Combined with a
// comm::NetworkModel and each layer's parameter count, this yields the
// layer-wise comm-vs-comp picture for any model built in this framework.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "fftgrad/nn/network.h"

namespace fftgrad::nn {

struct LayerProfile {
  std::string name;
  std::size_t param_count = 0;
  double forward_s = 0.0;
  double backward_s = 0.0;
};

/// Run `repeats` forward+backward passes of `input` through `net`, timing
/// each layer individually; the upstream gradient for the backward pass is
/// all-ones over the final activation. Returns per-layer mean times in
/// layer order. Gradients are zeroed before and accumulated during the run
/// (as in training); parameters are not updated.
std::vector<LayerProfile> profile_network(Network& net, const tensor::Tensor& input,
                                          std::size_t repeats = 3);

}  // namespace fftgrad::nn
