// Layer abstraction of the DNN substrate (the SuperNeurons stand-in).
//
// Layers are stateful: forward() caches whatever backward() needs, so one
// Layer instance serves exactly one in-flight batch at a time. Parameters
// and their gradients are owned by the layer and exposed through Param
// views so the Network can flatten all gradients into the single 1-D
// vector the compression pipeline consumes.
#pragma once

#include <string>
#include <vector>

#include "fftgrad/tensor/tensor.h"

namespace fftgrad::nn {

/// Non-owning view of one trainable tensor and its gradient accumulator.
struct Param {
  tensor::Tensor* value = nullptr;
  tensor::Tensor* grad = nullptr;
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Human-readable layer tag for logging and the layer-wise benches.
  virtual std::string name() const = 0;

  /// x has leading batch dimension; returns the activation (also batched).
  virtual tensor::Tensor forward(const tensor::Tensor& x) = 0;

  /// grad_out is dL/d(output of forward); accumulates parameter gradients
  /// (+=) and returns dL/d(input). Must be preceded by forward().
  virtual tensor::Tensor backward(const tensor::Tensor& grad_out) = 0;

  /// Trainable parameters (empty for activations/pooling).
  virtual std::vector<Param> params() { return {}; }

  /// Zero all parameter gradients.
  void zero_grad() {
    for (Param p : params()) p.grad->fill(0.0f);
  }
};

}  // namespace fftgrad::nn
