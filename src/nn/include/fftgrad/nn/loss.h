// Softmax cross-entropy loss with integer class labels; the training
// criterion for every experiment (the paper trains classification nets).
#pragma once

#include <cstddef>
#include <span>

#include "fftgrad/tensor/tensor.h"

namespace fftgrad::nn {

class SoftmaxCrossEntropy {
 public:
  /// logits: (N x classes); labels: N class indices.
  /// Returns mean loss over the batch; caches softmax for backward().
  double forward(const tensor::Tensor& logits, std::span<const std::size_t> labels);

  /// dL/dlogits of the cached forward pass (mean reduction).
  tensor::Tensor backward() const;

 private:
  tensor::Tensor probs_;
  std::vector<std::size_t> labels_;
};

/// Fraction of rows whose argmax equals the label.
double accuracy(const tensor::Tensor& logits, std::span<const std::size_t> labels);

}  // namespace fftgrad::nn
