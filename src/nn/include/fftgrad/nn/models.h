// Model zoo: scaled-down analogues of the paper's two workloads plus a
// plain MLP for tests.
//
//  * AlexNetMini — "linear" architecture with comparatively large kernels
//    and a parameter-heavy fully connected tail, the regime where AlexNet
//    sits in the paper (most parameters in a few big layers).
//  * ResNetMini — small 3x3 convolutions and residual blocks, the regime
//    of ResNet32 (many small layers, little per-layer compute).
//
// Both take (3 x side x side) inputs; see DESIGN.md for why scaled-down
// models on synthetic data preserve the phenomena under study.
#pragma once

#include <cstddef>

#include "fftgrad/nn/network.h"
#include "fftgrad/util/rng.h"

namespace fftgrad::nn::models {

/// Dense -> ReLU -> ... -> Dense classifier over flat inputs.
Network make_mlp(std::size_t input, std::size_t hidden, std::size_t depth, std::size_t classes,
                 util::Rng& rng);

/// conv5x5(3->16) pool2 conv5x5(16->32) pool2 dense(...) dense(classes);
/// side must be divisible by 4.
Network make_alexnet_mini(std::size_t side, std::size_t classes, util::Rng& rng);

/// conv3x3(3->16) + `blocks` residual blocks + pool2 + dense(classes);
/// side must be divisible by 2.
Network make_resnet_mini(std::size_t side, std::size_t blocks, std::size_t classes,
                         util::Rng& rng);

/// VGG-style stack: two conv3x3+BN+ReLU stages with pooling, then a dense
/// head; side must be divisible by 4.
Network make_vgg_mini(std::size_t side, std::size_t classes, util::Rng& rng);

/// Inception-style: stem conv + `blocks` InceptionBlocks + global average
/// pooling + dense(classes) — the "sparse fan-out" regime of the paper's
/// overlap discussion.
Network make_inception_mini(std::size_t side, std::size_t blocks, std::size_t classes,
                            util::Rng& rng);

}  // namespace fftgrad::nn::models
