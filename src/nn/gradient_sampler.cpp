#include "fftgrad/nn/gradient_sampler.h"

#include "fftgrad/nn/dataset.h"
#include "fftgrad/nn/loss.h"
#include "fftgrad/nn/models.h"
#include "fftgrad/nn/network.h"
#include "fftgrad/nn/optimizer.h"

namespace fftgrad::nn {

std::vector<float> sample_training_gradient(const GradientSampleOptions& options) {
  util::Rng rng(options.seed);
  Network net;
  SyntheticDataset data =
      options.source == GradientSource::kConvNet
          ? SyntheticDataset({3, 12, 12}, 8, options.seed + 1, 48, /*label_noise=*/0.15)
          : SyntheticDataset({32}, 8, options.seed + 1, 48, /*label_noise=*/0.15);
  if (options.source == GradientSource::kConvNet) {
    net = models::make_resnet_mini(12, 2, 8, rng);
  } else {
    net = models::make_mlp(32, 96, 3, 8, rng);
  }

  SgdOptimizer opt(0.9f);
  SoftmaxCrossEntropy criterion;
  util::Rng batch_rng(options.seed + 2);
  for (std::size_t i = 0; i < options.warm_iters; ++i) {
    const Batch batch = data.sample(options.batch, batch_rng);
    net.zero_grad();
    criterion.forward(net.forward(batch.inputs), batch.labels);
    net.backward(criterion.backward());
    opt.step(net, options.lr);
  }
  // A fresh, unapplied mini-batch gradient at the sampled point.
  const Batch batch = data.sample(options.batch, batch_rng);
  net.zero_grad();
  criterion.forward(net.forward(batch.inputs), batch.labels);
  net.backward(criterion.backward());
  std::vector<float> grad(net.param_count());
  net.copy_gradients(grad);
  return grad;
}

}  // namespace fftgrad::nn
