#include "fftgrad/nn/models.h"

#include <memory>
#include <stdexcept>

#include "fftgrad/nn/layers.h"

namespace fftgrad::nn::models {

Network make_mlp(std::size_t input, std::size_t hidden, std::size_t depth, std::size_t classes,
                 util::Rng& rng) {
  if (depth == 0) throw std::invalid_argument("make_mlp: depth must be >= 1");
  Network net;
  std::size_t in = input;
  for (std::size_t d = 0; d + 1 < depth; ++d) {
    net.add(std::make_unique<Dense>(in, hidden, rng));
    net.add(std::make_unique<ReLU>());
    in = hidden;
  }
  net.add(std::make_unique<Dense>(in, classes, rng));
  return net;
}

Network make_alexnet_mini(std::size_t side, std::size_t classes, util::Rng& rng) {
  if (side % 4 != 0) throw std::invalid_argument("make_alexnet_mini: side must be divisible by 4");
  Network net;
  net.add(std::make_unique<Conv2d>(3, 16, 5, 1, 2, rng));
  net.add(std::make_unique<BatchNorm2d>(16));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<MaxPool2d>(2));
  net.add(std::make_unique<Conv2d>(16, 32, 5, 1, 2, rng));
  net.add(std::make_unique<BatchNorm2d>(32));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<MaxPool2d>(2));
  net.add(std::make_unique<Flatten>());
  const std::size_t features = 32 * (side / 4) * (side / 4);
  net.add(std::make_unique<Dense>(features, 256, rng));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<Dense>(256, classes, rng));
  return net;
}

Network make_resnet_mini(std::size_t side, std::size_t blocks, std::size_t classes,
                         util::Rng& rng) {
  if (side % 2 != 0) throw std::invalid_argument("make_resnet_mini: side must be divisible by 2");
  Network net;
  net.add(std::make_unique<Conv2d>(3, 16, 3, 1, 1, rng));
  net.add(std::make_unique<BatchNorm2d>(16));
  net.add(std::make_unique<ReLU>());
  for (std::size_t b = 0; b < blocks; ++b) {
    net.add(std::make_unique<ResidualBlock>(16, rng));
  }
  net.add(std::make_unique<MaxPool2d>(2));
  net.add(std::make_unique<Flatten>());
  const std::size_t features = 16 * (side / 2) * (side / 2);
  net.add(std::make_unique<Dense>(features, classes, rng));
  return net;
}

Network make_vgg_mini(std::size_t side, std::size_t classes, util::Rng& rng) {
  if (side % 4 != 0) throw std::invalid_argument("make_vgg_mini: side must be divisible by 4");
  Network net;
  for (const auto& [cin, cout] : {std::pair<std::size_t, std::size_t>{3, 16}, {16, 16}}) {
    net.add(std::make_unique<Conv2d>(cin, cout, 3, 1, 1, rng));
    net.add(std::make_unique<BatchNorm2d>(cout));
    net.add(std::make_unique<ReLU>());
  }
  net.add(std::make_unique<MaxPool2d>(2));
  for (const auto& [cin, cout] : {std::pair<std::size_t, std::size_t>{16, 32}, {32, 32}}) {
    net.add(std::make_unique<Conv2d>(cin, cout, 3, 1, 1, rng));
    net.add(std::make_unique<BatchNorm2d>(cout));
    net.add(std::make_unique<ReLU>());
  }
  net.add(std::make_unique<MaxPool2d>(2));
  net.add(std::make_unique<Flatten>());
  const std::size_t features = 32 * (side / 4) * (side / 4);
  net.add(std::make_unique<Dense>(features, 128, rng));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<Dense>(128, classes, rng));
  return net;
}

Network make_inception_mini(std::size_t side, std::size_t blocks, std::size_t classes,
                            util::Rng& rng) {
  (void)side;  // fully convolutional until the global pool
  Network net;
  net.add(std::make_unique<Conv2d>(3, 12, 3, 1, 1, rng));
  net.add(std::make_unique<BatchNorm2d>(12));
  net.add(std::make_unique<ReLU>());
  std::size_t channels = 12;
  for (std::size_t b = 0; b < blocks; ++b) {
    auto block = std::make_unique<InceptionBlock>(channels, 8, rng);
    channels = block->out_channels();
    net.add(std::move(block));
  }
  net.add(std::make_unique<GlobalAvgPool2d>());
  net.add(std::make_unique<Dense>(channels, classes, rng));
  return net;
}

}  // namespace fftgrad::nn::models
