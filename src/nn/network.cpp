#include "fftgrad/nn/network.h"

#include <algorithm>
#include <stdexcept>

namespace fftgrad::nn {

Network& Network::add(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
  return *this;
}

tensor::Tensor Network::forward(const tensor::Tensor& x) {
  tensor::Tensor activation = x;
  for (auto& layer : layers_) activation = layer->forward(activation);
  return activation;
}

void Network::backward(const tensor::Tensor& grad_out) {
  tensor::Tensor grad = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) grad = (*it)->backward(grad);
}

void Network::zero_grad() {
  for (auto& layer : layers_) layer->zero_grad();
}

std::vector<Param> Network::params() {
  std::vector<Param> all;
  for (auto& layer : layers_) {
    for (Param p : layer->params()) all.push_back(p);
  }
  return all;
}

std::size_t Network::param_count() {
  std::size_t total = 0;
  for (Param p : params()) total += p.value->size();
  return total;
}

std::vector<ParamSegment> Network::param_layout() {
  std::vector<ParamSegment> layout;
  std::size_t at = 0;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    std::size_t count = 0;
    for (Param p : layers_[i]->params()) count += p.value->size();
    if (count == 0) continue;
    layout.push_back({layers_[i]->name() + "#" + std::to_string(i), at, count});
    at += count;
  }
  return layout;
}

void Network::copy_gradients(std::span<float> out) {
  std::size_t at = 0;
  for (Param p : params()) {
    auto grad = p.grad->flat();
    if (at + grad.size() > out.size()) throw std::invalid_argument("copy_gradients: out too small");
    std::copy(grad.begin(), grad.end(), out.begin() + static_cast<std::ptrdiff_t>(at));
    at += grad.size();
  }
  if (at != out.size()) throw std::invalid_argument("copy_gradients: out size mismatch");
}

void Network::set_gradients(std::span<const float> flat) {
  std::size_t at = 0;
  for (Param p : params()) {
    auto grad = p.grad->flat();
    if (at + grad.size() > flat.size()) throw std::invalid_argument("set_gradients: flat too small");
    std::copy(flat.begin() + static_cast<std::ptrdiff_t>(at),
              flat.begin() + static_cast<std::ptrdiff_t>(at + grad.size()), grad.begin());
    at += grad.size();
  }
  if (at != flat.size()) throw std::invalid_argument("set_gradients: flat size mismatch");
}

void Network::copy_params(std::span<float> out) {
  std::size_t at = 0;
  for (Param p : params()) {
    auto value = p.value->flat();
    if (at + value.size() > out.size()) throw std::invalid_argument("copy_params: out too small");
    std::copy(value.begin(), value.end(), out.begin() + static_cast<std::ptrdiff_t>(at));
    at += value.size();
  }
  if (at != out.size()) throw std::invalid_argument("copy_params: out size mismatch");
}

void Network::set_params(std::span<const float> flat) {
  std::size_t at = 0;
  for (Param p : params()) {
    auto value = p.value->flat();
    if (at + value.size() > flat.size()) throw std::invalid_argument("set_params: flat too small");
    std::copy(flat.begin() + static_cast<std::ptrdiff_t>(at),
              flat.begin() + static_cast<std::ptrdiff_t>(at + value.size()), value.begin());
    at += value.size();
  }
  if (at != flat.size()) throw std::invalid_argument("set_params: flat size mismatch");
}

}  // namespace fftgrad::nn
