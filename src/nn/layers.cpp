#include "fftgrad/nn/layers.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "fftgrad/tensor/ops.h"

namespace fftgrad::nn {

// ---------------------------------------------------------------------------
// Dense

Dense::Dense(std::size_t in_features, std::size_t out_features, util::Rng& rng)
    : in_(in_features),
      out_(out_features),
      weight_(tensor::Tensor::randn({out_features, in_features}, rng, 0.0f,
                                    std::sqrt(2.0f / static_cast<float>(in_features)))),
      bias_({out_features}),
      weight_grad_({out_features, in_features}),
      bias_grad_({out_features}) {}

std::string Dense::name() const {
  return "dense(" + std::to_string(in_) + "->" + std::to_string(out_) + ")";
}

tensor::Tensor Dense::forward(const tensor::Tensor& x) {
  if (x.rank() != 2 || x.dim(1) != in_) throw std::invalid_argument("Dense: bad input shape");
  input_cache_ = x;
  const std::size_t batch = x.dim(0);
  tensor::Tensor y({batch, out_});
  // y = x (N x in) * W^T (in x out)
  tensor::gemm(batch, out_, in_, 1.0f, x.data(), false, weight_.data(), true, 0.0f, y.data());
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t o = 0; o < out_; ++o) y.at(n, o) += bias_[o];
  }
  return y;
}

tensor::Tensor Dense::backward(const tensor::Tensor& grad_out) {
  const std::size_t batch = input_cache_.dim(0);
  if (grad_out.rank() != 2 || grad_out.dim(0) != batch || grad_out.dim(1) != out_) {
    throw std::invalid_argument("Dense: bad grad shape");
  }
  // dW += dY^T (out x N) * X (N x in)
  tensor::gemm(out_, in_, batch, 1.0f, grad_out.data(), true, input_cache_.data(), false, 1.0f,
               weight_grad_.data());
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t o = 0; o < out_; ++o) bias_grad_[o] += grad_out.at(n, o);
  }
  // dX = dY (N x out) * W (out x in)
  tensor::Tensor grad_in({batch, in_});
  tensor::gemm(batch, in_, out_, 1.0f, grad_out.data(), false, weight_.data(), false, 0.0f,
               grad_in.data());
  return grad_in;
}

std::vector<Param> Dense::params() {
  return {{&weight_, &weight_grad_}, {&bias_, &bias_grad_}};
}

// ---------------------------------------------------------------------------
// Conv2d

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
               std::size_t stride, std::size_t padding, util::Rng& rng)
    : cin_(in_channels),
      cout_(out_channels),
      k_(kernel),
      stride_(stride),
      pad_(padding),
      weight_(tensor::Tensor::randn(
          {out_channels, in_channels * kernel * kernel}, rng, 0.0f,
          std::sqrt(2.0f / static_cast<float>(in_channels * kernel * kernel)))),
      bias_({out_channels}),
      weight_grad_({out_channels, in_channels * kernel * kernel}),
      bias_grad_({out_channels}) {
  if (stride == 0 || kernel == 0) throw std::invalid_argument("Conv2d: zero kernel/stride");
}

std::string Conv2d::name() const {
  return "conv(" + std::to_string(cin_) + "->" + std::to_string(cout_) + ",k" +
         std::to_string(k_) + ")";
}

void Conv2d::im2col(const float* img, std::size_t h, std::size_t w, float* col) const {
  const std::size_t oh = out_height(h);
  const std::size_t ow = out_width(w);
  const std::size_t cols = oh * ow;
  // col layout: (cin*k*k) x (oh*ow), row-major.
  for (std::size_t c = 0; c < cin_; ++c) {
    const float* channel = img + c * h * w;
    for (std::size_t ky = 0; ky < k_; ++ky) {
      for (std::size_t kx = 0; kx < k_; ++kx) {
        float* row = col + ((c * k_ + ky) * k_ + kx) * cols;
        for (std::size_t oy = 0; oy < oh; ++oy) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * stride_ + ky) - static_cast<std::ptrdiff_t>(pad_);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) {
            std::fill(row + oy * ow, row + (oy + 1) * ow, 0.0f);
            continue;
          }
          for (std::size_t ox = 0; ox < ow; ++ox) {
            const std::ptrdiff_t ix = static_cast<std::ptrdiff_t>(ox * stride_ + kx) -
                                      static_cast<std::ptrdiff_t>(pad_);
            row[oy * ow + ox] =
                (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w))
                    ? 0.0f
                    : channel[static_cast<std::size_t>(iy) * w + static_cast<std::size_t>(ix)];
          }
        }
      }
    }
  }
}

void Conv2d::col2im(const float* col, std::size_t h, std::size_t w, float* img) const {
  const std::size_t oh = out_height(h);
  const std::size_t ow = out_width(w);
  const std::size_t cols = oh * ow;
  for (std::size_t c = 0; c < cin_; ++c) {
    float* channel = img + c * h * w;
    for (std::size_t ky = 0; ky < k_; ++ky) {
      for (std::size_t kx = 0; kx < k_; ++kx) {
        const float* row = col + ((c * k_ + ky) * k_ + kx) * cols;
        for (std::size_t oy = 0; oy < oh; ++oy) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * stride_ + ky) - static_cast<std::ptrdiff_t>(pad_);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
          for (std::size_t ox = 0; ox < ow; ++ox) {
            const std::ptrdiff_t ix = static_cast<std::ptrdiff_t>(ox * stride_ + kx) -
                                      static_cast<std::ptrdiff_t>(pad_);
            if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) continue;
            channel[static_cast<std::size_t>(iy) * w + static_cast<std::size_t>(ix)] +=
                row[oy * ow + ox];
          }
        }
      }
    }
  }
}

tensor::Tensor Conv2d::forward(const tensor::Tensor& x) {
  if (x.rank() != 4 || x.dim(1) != cin_) throw std::invalid_argument("Conv2d: bad input shape");
  input_cache_ = x;
  const std::size_t batch = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::size_t oh = out_height(h), ow = out_width(w);
  const std::size_t patch = cin_ * k_ * k_;
  tensor::Tensor y({batch, cout_, oh, ow});
  std::vector<float> col(patch * oh * ow);
  for (std::size_t n = 0; n < batch; ++n) {
    im2col(x.data() + n * cin_ * h * w, h, w, col.data());
    // (cout x patch) * (patch x oh*ow)
    tensor::gemm(cout_, oh * ow, patch, 1.0f, weight_.data(), false, col.data(), false, 0.0f,
                 y.data() + n * cout_ * oh * ow);
    float* out = y.data() + n * cout_ * oh * ow;
    for (std::size_t c = 0; c < cout_; ++c) {
      const float b = bias_[c];
      for (std::size_t i = 0; i < oh * ow; ++i) out[c * oh * ow + i] += b;
    }
  }
  return y;
}

tensor::Tensor Conv2d::backward(const tensor::Tensor& grad_out) {
  const std::size_t batch = input_cache_.dim(0);
  const std::size_t h = input_cache_.dim(2), w = input_cache_.dim(3);
  const std::size_t oh = out_height(h), ow = out_width(w);
  if (grad_out.rank() != 4 || grad_out.dim(0) != batch || grad_out.dim(1) != cout_ ||
      grad_out.dim(2) != oh || grad_out.dim(3) != ow) {
    throw std::invalid_argument("Conv2d: bad grad shape");
  }
  const std::size_t patch = cin_ * k_ * k_;
  tensor::Tensor grad_in({batch, cin_, h, w});
  std::vector<float> col(patch * oh * ow);
  std::vector<float> col_grad(patch * oh * ow);
  for (std::size_t n = 0; n < batch; ++n) {
    im2col(input_cache_.data() + n * cin_ * h * w, h, w, col.data());
    const float* dy = grad_out.data() + n * cout_ * oh * ow;
    // dW += dY (cout x ohw) * col^T (ohw x patch)
    tensor::gemm(cout_, patch, oh * ow, 1.0f, dy, false, col.data(), true, 1.0f,
                 weight_grad_.data());
    for (std::size_t c = 0; c < cout_; ++c) {
      float acc = 0.0f;
      for (std::size_t i = 0; i < oh * ow; ++i) acc += dy[c * oh * ow + i];
      bias_grad_[c] += acc;
    }
    // dcol = W^T (patch x cout) * dY (cout x ohw)
    tensor::gemm(patch, oh * ow, cout_, 1.0f, weight_.data(), true, dy, false, 0.0f,
                 col_grad.data());
    col2im(col_grad.data(), h, w, grad_in.data() + n * cin_ * h * w);
  }
  return grad_in;
}

std::vector<Param> Conv2d::params() {
  return {{&weight_, &weight_grad_}, {&bias_, &bias_grad_}};
}

// ---------------------------------------------------------------------------
// BatchNorm2d

BatchNorm2d::BatchNorm2d(std::size_t channels, float epsilon)
    : channels_(channels),
      epsilon_(epsilon),
      gamma_(tensor::Tensor::full({channels}, 1.0f)),
      beta_({channels}),
      gamma_grad_({channels}),
      beta_grad_({channels}) {}

std::string BatchNorm2d::name() const { return "batchnorm(" + std::to_string(channels_) + ")"; }

tensor::Tensor BatchNorm2d::forward(const tensor::Tensor& x) {
  if (x.rank() != 4 || x.dim(1) != channels_) {
    throw std::invalid_argument("BatchNorm2d: expected NCHW input with matching channels");
  }
  in_shape_ = x.shape();
  const std::size_t batch = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::size_t plane = h * w;
  const std::size_t per_channel = batch * plane;

  normalized_ = tensor::Tensor(x.shape());
  inv_stddev_.assign(channels_, 0.0f);
  tensor::Tensor y(x.shape());
  for (std::size_t c = 0; c < channels_; ++c) {
    double sum = 0.0, sq = 0.0;
    for (std::size_t n = 0; n < batch; ++n) {
      const float* src = x.data() + (n * channels_ + c) * plane;
      for (std::size_t i = 0; i < plane; ++i) {
        sum += src[i];
        sq += static_cast<double>(src[i]) * src[i];
      }
    }
    const double mean = sum / static_cast<double>(per_channel);
    const double var = std::max(0.0, sq / static_cast<double>(per_channel) - mean * mean);
    const float inv = static_cast<float>(1.0 / std::sqrt(var + epsilon_));
    inv_stddev_[c] = inv;
    const float g = gamma_[c], b = beta_[c], m = static_cast<float>(mean);
    for (std::size_t n = 0; n < batch; ++n) {
      const float* src = x.data() + (n * channels_ + c) * plane;
      float* hat = normalized_.data() + (n * channels_ + c) * plane;
      float* out = y.data() + (n * channels_ + c) * plane;
      for (std::size_t i = 0; i < plane; ++i) {
        hat[i] = (src[i] - m) * inv;
        out[i] = g * hat[i] + b;
      }
    }
  }
  return y;
}

tensor::Tensor BatchNorm2d::backward(const tensor::Tensor& grad_out) {
  const std::size_t batch = in_shape_[0], h = in_shape_[2], w = in_shape_[3];
  const std::size_t plane = h * w;
  const std::size_t per_channel = batch * plane;
  if (grad_out.size() != batch * channels_ * plane) {
    throw std::invalid_argument("BatchNorm2d: bad grad shape");
  }
  tensor::Tensor grad_in(in_shape_);
  for (std::size_t c = 0; c < channels_; ++c) {
    // dL/dgamma = sum(dy * x_hat); dL/dbeta = sum(dy);
    // dL/dx = gamma * inv / N * (N*dy - sum(dy) - x_hat * sum(dy * x_hat)).
    double sum_dy = 0.0, sum_dy_hat = 0.0;
    for (std::size_t n = 0; n < batch; ++n) {
      const float* dy = grad_out.data() + (n * channels_ + c) * plane;
      const float* hat = normalized_.data() + (n * channels_ + c) * plane;
      for (std::size_t i = 0; i < plane; ++i) {
        sum_dy += dy[i];
        sum_dy_hat += static_cast<double>(dy[i]) * hat[i];
      }
    }
    gamma_grad_[c] += static_cast<float>(sum_dy_hat);
    beta_grad_[c] += static_cast<float>(sum_dy);
    const float scale = gamma_[c] * inv_stddev_[c] / static_cast<float>(per_channel);
    const auto mean_dy = static_cast<float>(sum_dy);
    const auto mean_dy_hat = static_cast<float>(sum_dy_hat);
    for (std::size_t n = 0; n < batch; ++n) {
      const float* dy = grad_out.data() + (n * channels_ + c) * plane;
      const float* hat = normalized_.data() + (n * channels_ + c) * plane;
      float* dx = grad_in.data() + (n * channels_ + c) * plane;
      for (std::size_t i = 0; i < plane; ++i) {
        dx[i] = scale * (static_cast<float>(per_channel) * dy[i] - mean_dy -
                         hat[i] * mean_dy_hat);
      }
    }
  }
  return grad_in;
}

std::vector<Param> BatchNorm2d::params() {
  return {{&gamma_, &gamma_grad_}, {&beta_, &beta_grad_}};
}

// ---------------------------------------------------------------------------
// ReLU

tensor::Tensor ReLU::forward(const tensor::Tensor& x) {
  mask_ = tensor::Tensor(x.shape());
  tensor::Tensor y(x.shape());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const bool positive = x[i] > 0.0f;
    mask_[i] = positive ? 1.0f : 0.0f;
    y[i] = positive ? x[i] : 0.0f;
  }
  return y;
}

tensor::Tensor ReLU::backward(const tensor::Tensor& grad_out) {
  if (grad_out.size() != mask_.size()) throw std::invalid_argument("ReLU: bad grad shape");
  tensor::Tensor grad_in(grad_out.shape());
  for (std::size_t i = 0; i < grad_out.size(); ++i) grad_in[i] = grad_out[i] * mask_[i];
  return grad_in;
}

// ---------------------------------------------------------------------------
// LeakyReLU

std::string LeakyReLU::name() const { return "leakyrelu(" + std::to_string(slope_) + ")"; }

tensor::Tensor LeakyReLU::forward(const tensor::Tensor& x) {
  input_cache_ = x;
  tensor::Tensor y(x.shape());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i] > 0.0f ? x[i] : slope_ * x[i];
  return y;
}

tensor::Tensor LeakyReLU::backward(const tensor::Tensor& grad_out) {
  if (grad_out.size() != input_cache_.size()) {
    throw std::invalid_argument("LeakyReLU: bad grad shape");
  }
  tensor::Tensor grad_in(grad_out.shape());
  for (std::size_t i = 0; i < grad_out.size(); ++i) {
    grad_in[i] = input_cache_[i] > 0.0f ? grad_out[i] : slope_ * grad_out[i];
  }
  return grad_in;
}

// ---------------------------------------------------------------------------
// Tanh

tensor::Tensor Tanh::forward(const tensor::Tensor& x) {
  output_cache_ = tensor::Tensor(x.shape());
  for (std::size_t i = 0; i < x.size(); ++i) {
    output_cache_[i] = std::tanh(x[i]);
  }
  return output_cache_;
}

tensor::Tensor Tanh::backward(const tensor::Tensor& grad_out) {
  if (grad_out.size() != output_cache_.size()) throw std::invalid_argument("Tanh: bad grad shape");
  tensor::Tensor grad_in(grad_out.shape());
  for (std::size_t i = 0; i < grad_out.size(); ++i) {
    grad_in[i] = grad_out[i] * (1.0f - output_cache_[i] * output_cache_[i]);
  }
  return grad_in;
}

// ---------------------------------------------------------------------------
// Dropout

Dropout::Dropout(float probability, std::uint64_t seed)
    : probability_(probability), rng_(seed) {
  if (probability < 0.0f || probability >= 1.0f) {
    throw std::invalid_argument("Dropout: probability must be in [0, 1)");
  }
}

std::string Dropout::name() const { return "dropout(" + std::to_string(probability_) + ")"; }

tensor::Tensor Dropout::forward(const tensor::Tensor& x) {
  if (!training_ || probability_ == 0.0f) {
    mask_ = tensor::Tensor();  // marks pass-through for backward
    return x;
  }
  mask_ = tensor::Tensor(x.shape());
  tensor::Tensor y(x.shape());
  const float keep_scale = 1.0f / (1.0f - probability_);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const bool keep = !rng_.bernoulli(probability_);
    mask_[i] = keep ? keep_scale : 0.0f;
    y[i] = x[i] * mask_[i];
  }
  return y;
}

tensor::Tensor Dropout::backward(const tensor::Tensor& grad_out) {
  if (mask_.empty()) return grad_out;  // was a pass-through forward
  if (grad_out.size() != mask_.size()) throw std::invalid_argument("Dropout: bad grad shape");
  tensor::Tensor grad_in(grad_out.shape());
  for (std::size_t i = 0; i < grad_out.size(); ++i) grad_in[i] = grad_out[i] * mask_[i];
  return grad_in;
}

// ---------------------------------------------------------------------------
// GlobalAvgPool2d

tensor::Tensor GlobalAvgPool2d::forward(const tensor::Tensor& x) {
  if (x.rank() != 4) throw std::invalid_argument("GlobalAvgPool2d: expected NCHW input");
  in_shape_ = x.shape();
  const std::size_t batch = x.dim(0), c = x.dim(1), plane = x.dim(2) * x.dim(3);
  tensor::Tensor y({batch, c});
  const float inv = 1.0f / static_cast<float>(plane);
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* src = x.data() + (n * c + ch) * plane;
      float acc = 0.0f;
      for (std::size_t i = 0; i < plane; ++i) acc += src[i];
      y.at(n, ch) = acc * inv;
    }
  }
  return y;
}

tensor::Tensor GlobalAvgPool2d::backward(const tensor::Tensor& grad_out) {
  const std::size_t batch = in_shape_[0], c = in_shape_[1];
  const std::size_t plane = in_shape_[2] * in_shape_[3];
  if (grad_out.size() != batch * c) throw std::invalid_argument("GlobalAvgPool2d: bad grad shape");
  tensor::Tensor grad_in(in_shape_);
  const float inv = 1.0f / static_cast<float>(plane);
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float g = grad_out.at(n, ch) * inv;
      float* dst = grad_in.data() + (n * c + ch) * plane;
      for (std::size_t i = 0; i < plane; ++i) dst[i] = g;
    }
  }
  return grad_in;
}

// ---------------------------------------------------------------------------
// MaxPool2d

std::string MaxPool2d::name() const { return "maxpool(" + std::to_string(window_) + ")"; }

tensor::Tensor MaxPool2d::forward(const tensor::Tensor& x) {
  if (x.rank() != 4) throw std::invalid_argument("MaxPool2d: expected NCHW input");
  const std::size_t batch = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  if (h % window_ != 0 || w % window_ != 0) {
    throw std::invalid_argument("MaxPool2d: spatial dims must be divisible by the window");
  }
  in_shape_ = x.shape();
  const std::size_t oh = h / window_, ow = w / window_;
  tensor::Tensor y({batch, c, oh, ow});
  argmax_.assign(y.size(), 0);
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* plane = x.data() + (n * c + ch) * h * w;
      float* out = y.data() + (n * c + ch) * oh * ow;
      std::size_t* arg = argmax_.data() + (n * c + ch) * oh * ow;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t dy = 0; dy < window_; ++dy) {
            for (std::size_t dx = 0; dx < window_; ++dx) {
              const std::size_t idx = (oy * window_ + dy) * w + ox * window_ + dx;
              if (plane[idx] > best) {
                best = plane[idx];
                best_idx = idx;
              }
            }
          }
          out[oy * ow + ox] = best;
          arg[oy * ow + ox] = best_idx;
        }
      }
    }
  }
  return y;
}

tensor::Tensor MaxPool2d::backward(const tensor::Tensor& grad_out) {
  const std::size_t batch = in_shape_[0], c = in_shape_[1], h = in_shape_[2], w = in_shape_[3];
  const std::size_t oh = h / window_, ow = w / window_;
  if (grad_out.size() != batch * c * oh * ow) {
    throw std::invalid_argument("MaxPool2d: bad grad shape");
  }
  tensor::Tensor grad_in(in_shape_);
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* dy = grad_out.data() + (n * c + ch) * oh * ow;
      const std::size_t* arg = argmax_.data() + (n * c + ch) * oh * ow;
      float* dx = grad_in.data() + (n * c + ch) * h * w;
      for (std::size_t i = 0; i < oh * ow; ++i) dx[arg[i]] += dy[i];
    }
  }
  return grad_in;
}

// ---------------------------------------------------------------------------
// Flatten

tensor::Tensor Flatten::forward(const tensor::Tensor& x) {
  in_shape_ = x.shape();
  tensor::Tensor y = x;
  std::size_t features = 1;
  for (std::size_t d = 1; d < x.rank(); ++d) features *= x.dim(d);
  y.reshape({x.dim(0), features});
  return y;
}

tensor::Tensor Flatten::backward(const tensor::Tensor& grad_out) {
  tensor::Tensor grad_in = grad_out;
  grad_in.reshape(in_shape_);
  return grad_in;
}

// ---------------------------------------------------------------------------
// ResidualBlock

ResidualBlock::ResidualBlock(std::size_t channels, util::Rng& rng)
    : conv1_(channels, channels, 3, 1, 1, rng),
      conv2_(channels, channels, 3, 1, 1, rng),
      bn1_(channels),
      bn2_(channels) {}

std::string ResidualBlock::name() const { return "residual"; }

tensor::Tensor ResidualBlock::forward(const tensor::Tensor& x) {
  tensor::Tensor h = relu1_.forward(bn1_.forward(conv1_.forward(x)));
  pre_activation_ = bn2_.forward(conv2_.forward(h));
  for (std::size_t i = 0; i < pre_activation_.size(); ++i) pre_activation_[i] += x[i];
  tensor::Tensor y(pre_activation_.shape());
  for (std::size_t i = 0; i < y.size(); ++i) {
    y[i] = pre_activation_[i] > 0.0f ? pre_activation_[i] : 0.0f;
  }
  return y;
}

tensor::Tensor ResidualBlock::backward(const tensor::Tensor& grad_out) {
  tensor::Tensor dpre(grad_out.shape());
  for (std::size_t i = 0; i < grad_out.size(); ++i) {
    dpre[i] = pre_activation_[i] > 0.0f ? grad_out[i] : 0.0f;
  }
  tensor::Tensor dbranch =
      conv1_.backward(bn1_.backward(relu1_.backward(conv2_.backward(bn2_.backward(dpre)))));
  for (std::size_t i = 0; i < dbranch.size(); ++i) dbranch[i] += dpre[i];  // skip connection
  return dbranch;
}

std::vector<Param> ResidualBlock::params() {
  std::vector<Param> all = conv1_.params();
  for (Param p : bn1_.params()) all.push_back(p);
  for (Param p : conv2_.params()) all.push_back(p);
  for (Param p : bn2_.params()) all.push_back(p);
  return all;
}

// ---------------------------------------------------------------------------
// InceptionBlock

InceptionBlock::InceptionBlock(std::size_t in_channels, std::size_t branch_channels,
                               util::Rng& rng)
    : branch_channels_(branch_channels),
      conv1_(in_channels, branch_channels, 1, 1, 0, rng),
      conv3_(in_channels, branch_channels, 3, 1, 1, rng),
      conv5_(in_channels, branch_channels, 5, 1, 2, rng),
      bn1_(branch_channels),
      bn3_(branch_channels),
      bn5_(branch_channels) {}

std::string InceptionBlock::name() const {
  return "inception(3x" + std::to_string(branch_channels_) + ")";
}

tensor::Tensor InceptionBlock::forward(const tensor::Tensor& x) {
  const tensor::Tensor b1 = relu1_.forward(bn1_.forward(conv1_.forward(x)));
  const tensor::Tensor b3 = relu3_.forward(bn3_.forward(conv3_.forward(x)));
  const tensor::Tensor b5 = relu5_.forward(bn5_.forward(conv5_.forward(x)));
  const std::size_t batch = b1.dim(0), c = branch_channels_;
  const std::size_t plane = b1.dim(2) * b1.dim(3);
  tensor::Tensor y({batch, 3 * c, b1.dim(2), b1.dim(3)});
  for (std::size_t n = 0; n < batch; ++n) {
    float* dst = y.data() + n * 3 * c * plane;
    std::copy(b1.data() + n * c * plane, b1.data() + (n + 1) * c * plane, dst);
    std::copy(b3.data() + n * c * plane, b3.data() + (n + 1) * c * plane, dst + c * plane);
    std::copy(b5.data() + n * c * plane, b5.data() + (n + 1) * c * plane, dst + 2 * c * plane);
  }
  return y;
}

tensor::Tensor InceptionBlock::backward(const tensor::Tensor& grad_out) {
  const std::size_t batch = grad_out.dim(0), c = branch_channels_;
  if (grad_out.rank() != 4 || grad_out.dim(1) != 3 * c) {
    throw std::invalid_argument("InceptionBlock: bad grad shape");
  }
  const std::size_t h = grad_out.dim(2), w = grad_out.dim(3);
  const std::size_t plane = h * w;
  tensor::Tensor d1({batch, c, h, w}), d3({batch, c, h, w}), d5({batch, c, h, w});
  for (std::size_t n = 0; n < batch; ++n) {
    const float* src = grad_out.data() + n * 3 * c * plane;
    std::copy(src, src + c * plane, d1.data() + n * c * plane);
    std::copy(src + c * plane, src + 2 * c * plane, d3.data() + n * c * plane);
    std::copy(src + 2 * c * plane, src + 3 * c * plane, d5.data() + n * c * plane);
  }
  const tensor::Tensor g1 = conv1_.backward(bn1_.backward(relu1_.backward(d1)));
  const tensor::Tensor g3 = conv3_.backward(bn3_.backward(relu3_.backward(d3)));
  const tensor::Tensor g5 = conv5_.backward(bn5_.backward(relu5_.backward(d5)));
  tensor::Tensor grad_in(g1.shape());
  for (std::size_t i = 0; i < grad_in.size(); ++i) grad_in[i] = g1[i] + g3[i] + g5[i];
  return grad_in;
}

std::vector<Param> InceptionBlock::params() {
  std::vector<Param> all;
  for (Layer* layer : {static_cast<Layer*>(&conv1_), static_cast<Layer*>(&bn1_),
                       static_cast<Layer*>(&conv3_), static_cast<Layer*>(&bn3_),
                       static_cast<Layer*>(&conv5_), static_cast<Layer*>(&bn5_)}) {
    for (Param p : layer->params()) all.push_back(p);
  }
  return all;
}

}  // namespace fftgrad::nn
