#include "fftgrad/nn/dataset.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace fftgrad::nn {

SyntheticDataset::SyntheticDataset(std::vector<std::size_t> input_shape, std::size_t classes,
                                   std::uint64_t seed, std::size_t teacher_hidden,
                                   double label_noise)
    : input_shape_(std::move(input_shape)), classes_(classes), hidden_(teacher_hidden),
      seed_(seed), label_noise_(label_noise) {
  if (classes_ < 2) throw std::invalid_argument("SyntheticDataset: need >= 2 classes");
  input_size_ = 1;
  for (std::size_t d : input_shape_) input_size_ *= d;
  if (input_size_ == 0) throw std::invalid_argument("SyntheticDataset: empty input shape");

  util::Rng teacher_rng(seed ^ 0xfeedfacecafebeefull);
  const float s1 = std::sqrt(1.0f / static_cast<float>(input_size_));
  const float s2 = std::sqrt(1.0f / static_cast<float>(hidden_));
  w1_.resize(hidden_ * input_size_);
  b1_.resize(hidden_);
  w2_.resize(classes_ * hidden_);
  b2_.resize(classes_);
  for (float& v : w1_) v = static_cast<float>(teacher_rng.normal(0.0, s1));
  for (float& v : b1_) v = static_cast<float>(teacher_rng.normal(0.0, 0.1));
  for (float& v : w2_) v = static_cast<float>(teacher_rng.normal(0.0, s2));
  for (float& v : b2_) v = static_cast<float>(teacher_rng.normal(0.0, 0.1));
}

std::size_t SyntheticDataset::label_of(std::span<const float> x) const {
  std::vector<float> hidden(hidden_);
  for (std::size_t h = 0; h < hidden_; ++h) {
    float acc = b1_[h];
    const float* row = w1_.data() + h * input_size_;
    for (std::size_t i = 0; i < input_size_; ++i) acc += row[i] * x[i];
    hidden[h] = std::tanh(acc);
  }
  std::size_t best = 0;
  float best_score = -std::numeric_limits<float>::infinity();
  for (std::size_t c = 0; c < classes_; ++c) {
    float acc = b2_[c];
    const float* row = w2_.data() + c * hidden_;
    for (std::size_t h = 0; h < hidden_; ++h) acc += row[h] * hidden[h];
    if (acc > best_score) {
      best_score = acc;
      best = c;
    }
  }
  return best;
}

Batch SyntheticDataset::sample(std::size_t batch_size, util::Rng& rng) const {
  std::vector<std::size_t> shape;
  shape.push_back(batch_size);
  for (std::size_t d : input_shape_) shape.push_back(d);
  Batch batch{tensor::Tensor(std::move(shape)), std::vector<std::size_t>(batch_size)};
  for (std::size_t n = 0; n < batch_size; ++n) {
    float* x = batch.inputs.data() + n * input_size_;
    for (std::size_t i = 0; i < input_size_; ++i) x[i] = static_cast<float>(rng.normal());
    if (label_noise_ > 0.0 && rng.bernoulli(label_noise_)) {
      batch.labels[n] = rng.uniform_index(classes_);
    } else {
      batch.labels[n] = label_of({x, input_size_});
    }
  }
  return batch;
}

Batch SyntheticDataset::test_set(std::size_t size) const {
  util::Rng test_rng(seed_ ^ 0x7e57da7a5e7c0de5ull);
  return sample(size, test_rng);
}

}  // namespace fftgrad::nn
