#include "fftgrad/nn/profiler.h"

#include <stdexcept>

#include "fftgrad/util/timer.h"

namespace fftgrad::nn {

std::vector<LayerProfile> profile_network(Network& net, const tensor::Tensor& input,
                                          std::size_t repeats) {
  if (repeats == 0) throw std::invalid_argument("profile_network: repeats must be >= 1");
  const std::size_t layers = net.layer_count();
  std::vector<LayerProfile> profiles(layers);
  for (std::size_t l = 0; l < layers; ++l) {
    profiles[l].name = net.layer(l).name();
    for (Param p : net.layer(l).params()) profiles[l].param_count += p.value->size();
  }

  for (std::size_t r = 0; r < repeats; ++r) {
    net.zero_grad();
    // Forward, layer by layer, timed.
    std::vector<tensor::Tensor> activations;
    activations.reserve(layers + 1);
    activations.push_back(input);
    for (std::size_t l = 0; l < layers; ++l) {
      util::WallTimer timer;
      activations.push_back(net.layer(l).forward(activations.back()));
      profiles[l].forward_s += timer.elapsed() / static_cast<double>(repeats);
    }
    // Backward with an all-ones upstream gradient.
    tensor::Tensor grad = tensor::Tensor::full(activations.back().shape(), 1.0f);
    for (std::size_t l = layers; l-- > 0;) {
      util::WallTimer timer;
      grad = net.layer(l).backward(grad);
      profiles[l].backward_s += timer.elapsed() / static_cast<double>(repeats);
    }
  }
  return profiles;
}

std::vector<LayerProfile> profile_network(Network& net, const tensor::Tensor& input,
                                          const comm::NetworkModel& network, std::size_t ranks,
                                          std::size_t repeats) {
  std::vector<LayerProfile> profiles = profile_network(net, input, repeats);
  for (LayerProfile& p : profiles) {
    if (p.param_count == 0) continue;  // nothing to exchange
    p.comm_s = network.allreduce_time(util::byte_count(p.param_count * sizeof(float)), ranks);
  }
  return profiles;
}

}  // namespace fftgrad::nn
