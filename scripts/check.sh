#!/usr/bin/env bash
# Build every CMake preset and run the full test suite under each.
# Usage: scripts/check.sh [jobs]   (default: all cores)
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="${1:-$(nproc)}"

for preset in default asan; do
  echo "==> configure ($preset)"
  cmake --preset "$preset"
  echo "==> build ($preset, -j$jobs)"
  cmake --build --preset "$preset" -j "$jobs"
  echo "==> test ($preset)"
  ctest --preset "$preset" -j "$jobs"
done

echo "All presets build and test clean."
