#!/usr/bin/env bash
# Build the CMake preset matrix and run the full test suite under each.
#
#   scripts/check.sh [options] [jobs]
#
#   --preset NAME   check only NAME (default | asan | tsan | analyze |
#                   thread-safety); repeatable
#   --fuzz          additionally run the wire-format fuzz targets (-L fuzz)
#                   as their own reported step under every checked preset
#   jobs            parallel build/test jobs (default: all cores)
#
# Without options, one invocation covers the whole matrix: the Release
# build, the address/UB-sanitized build, the thread-sanitized build with
# the correctness-analysis instrumentation compiled in, the static-
# analysis gate (GCC -fanalyzer + -Wconversion -Wshadow as errors over the
# first-party libraries; the `analyze` preset builds no tests), and the
# Clang Thread Safety Analysis gate (the `thread-safety` preset plus the
# seeded annotation-mutant matrix; reported SKIP on hosts without clang++,
# since GCC cannot run the analysis). Ends with a one-line-per-step
# pass/fail table; exit status is non-zero if any step failed (every step
# still runs, so one broken preset does not hide another).
set -uo pipefail
cd "$(dirname "$0")/.."

presets=()
run_fuzz=0
jobs=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --preset)
      [[ $# -ge 2 ]] || { echo "error: --preset needs an argument" >&2; exit 2; }
      presets+=("$2")
      shift 2
      ;;
    --fuzz)
      run_fuzz=1
      shift
      ;;
    -h|--help)
      sed -n '2,17p' "$0" | sed 's/^# \{0,1\}//'
      exit 0
      ;;
    *)
      jobs="$1"
      shift
      ;;
  esac
done
[[ ${#presets[@]} -gt 0 ]] || presets=(default asan tsan analyze thread-safety)
[[ -n "$jobs" ]] || jobs="$(nproc)"

results=()   # "preset<TAB>step<TAB>status" rows for the summary table
failed=0

note() {
  local preset="$1" step="$2" status="$3"
  results+=("${preset}	${step}	${status}")
  [[ "$status" == PASS || "$status" == SKIP ]] || failed=1
}

run_step() {
  local preset="$1" step="$2"
  shift 2
  echo "==> ${preset}: ${step}"
  if "$@"; then
    note "$preset" "$step" PASS
  else
    note "$preset" "$step" FAIL
    return 1
  fi
}

for preset in "${presets[@]}"; do
  # The thread-safety preset is driven end to end by its gate script (it
  # owns the configure/build plus the annotation-mutant matrix) and is the
  # one step allowed to SKIP: exit 3 means clang++ is not installed here.
  if [[ "$preset" == thread-safety ]]; then
    echo "==> ${preset}: gate"
    scripts/thread_safety_check.sh "$jobs"
    rc=$?
    if [[ "$rc" == 0 ]]; then
      note "$preset" gate PASS
    elif [[ "$rc" == 3 ]]; then
      note "$preset" gate SKIP
    else
      note "$preset" gate FAIL
    fi
    continue
  fi
  run_step "$preset" configure cmake --preset "$preset" || continue
  run_step "$preset" build cmake --build --preset "$preset" -j "$jobs" || continue
  # The analyze preset is a compile-time gate: -fanalyzer findings surface
  # as build errors, and it produces no test binaries to run.
  [[ "$preset" == analyze ]] && continue
  run_step "$preset" test ctest --preset "$preset" -j "$jobs"
  # The chaos label (seeded fault-injection plans) gets its own reported
  # row: a hang or schedule divergence under a sanitizer should be visible
  # as a chaos failure, not buried in the full-suite step.
  run_step "$preset" chaos ctest --preset "$preset" -j "$jobs" -L chaos
  # Likewise the causality label (vector-clock happens-before tracking and
  # the protocol-mutation detection proof): its mutation tests compile in
  # under asan/tsan (FFTGRAD_ANALYSIS), the value-layer tests everywhere.
  run_step "$preset" causality ctest --preset "$preset" -j "$jobs" -L causality
  # The ledger label runs short instrumented cluster/trainer runs and
  # validates the run-ledger JSONL they emit (schema, reconciliation, and
  # monitor semantics). Reported for the default and asan presets: release
  # covers the zero-overhead disabled path, asan the FFTGRAD_ANALYSIS
  # alert path.
  if [[ "$preset" == default || "$preset" == asan ]]; then
    run_step "$preset" ledger ctest --preset "$preset" -j "$jobs" -L ledger
    # The recovery label covers the elastic-recovery subsystem: the
    # RecoveryController action mapping and decision-state sync, atomic
    # checkpoint retention (kill-mid-write regression), the EF re-credit
    # fix, remediation ledger rows, and the lossless reconciliation of
    # rejoin state transfers against the network model.
    run_step "$preset" recovery ctest --preset "$preset" -j "$jobs" -L recovery
    # The critpath label proves the cross-rank critical-path analyzer's
    # invariants in-process (hand-built DAGs, per-category sums within
    # 1e-6 of the simulated end-to-end time, 16-seed determinism, fault
    # attribution); the gate script then re-checks an exported trace end
    # to end through trace_analyze --check.
    run_step "$preset" critpath ctest --preset "$preset" -j "$jobs" -L critpath
    build_dir="build"; [[ "$preset" == asan ]] && build_dir="build-asan"
    run_step "$preset" critpath-e2e scripts/critpath_gate.sh "$build_dir"
    # The profile label covers the host-time sampling profiler: folded
    # grammar round trip, hot-path ranking, the disabled-path
    # zero-allocation contract, SIGPROF span attribution, and multi-rank
    # rank attribution. The gate script then runs chaos_training under
    # FFTGRAD_PROFILE=1 and validates the folded output + hot-path report
    # end to end through run_report --check-profile.
    run_step "$preset" profile ctest --preset "$preset" -j "$jobs" -L profile
    run_step "$preset" profile-e2e scripts/profile_gate.sh "$build_dir"
  fi
  # Perf-trajectory gate: bench_diff must fire on an injected slowdown
  # (selftest) and pass the committed BENCH_*.json baseline against
  # itself. Release only — sanitizer timings are not comparable anyway.
  if [[ "$preset" == default ]]; then
    run_step "$preset" bench-diff scripts/bench_diff --build-dir build
    # Unit/trust-boundary lint gate: fftgrad_lint selftest (the seeded
    # violation fixtures must all still be caught) followed by the scoped
    # tree scan against the audited allowlist. Gating: a finding or a
    # stale allowlist entry fails the default preset.
    run_step "$preset" lint scripts/lint_units.sh build
    # Suppression audit: every tsan.supp entry must carry a rationale
    # comment and still match something tracked; stale or bare entries
    # fail so the suppression file cannot quietly grow holes.
    run_step "$preset" tsan-supp scripts/check_tsan_supp.sh
  fi
  if [[ "$run_fuzz" == 1 ]]; then
    run_step "$preset" fuzz ctest --preset "$preset" -j "$jobs" -L fuzz
  fi
done

echo
echo "== check.sh summary =="
printf '%-10s %-10s %s\n' PRESET STEP RESULT
while IFS=$'\t' read -r preset step status; do
  printf '%-10s %-10s %s\n' "$preset" "$step" "$status"
done < <(printf '%s\n' "${results[@]}")

if [[ "$failed" == 0 ]]; then
  echo "All checked presets build and test clean."
else
  echo "FAILURES above." >&2
fi
exit "$failed"
