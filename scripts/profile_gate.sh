#!/usr/bin/env bash
# End-to-end host-time profiling gate:
#
#   scripts/profile_gate.sh [build-dir]
#
# Runs chaos_training (8 ranks, faults, stragglers, one crash) with
# FFTGRAD_PROFILE=1 so the in-process sampling profiler is live for the
# whole run, then checks the contract ISSUE acceptance demands:
#
#   - the folded-stack file exists, is non-empty, and every line obeys the
#     `rank:<r>;cat:<c>;span:<s>;<frames...> <count>` grammar (verified by
#     `run_report --check-profile`, which parses, re-renders, and fails
#     unless the round trip is byte-identical);
#   - the at-exit hot-path report was written next to it and contains the
#     ranked table plus at least one SIMD-candidate row citing ROADMAP
#     item 1 (chaos_training's time goes to FFT/quantize/pack/CRC code);
#   - run_report cross-references host self-time against the simulated
#     critical-path categories without error.
#
# Exit status: 0 gate passed, non-zero on any failure.
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir="${1:-build}"
for tool in examples/chaos_training examples/run_report; do
  [[ -x "$build_dir/$tool" ]] || { echo "error: $build_dir/$tool not built" >&2; exit 2; }
done

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "==> chaos_training under FFTGRAD_PROFILE (sampling at 250 Hz)"
FFTGRAD_PROFILE=1 \
FFTGRAD_PROFILE_HZ=250 \
FFTGRAD_PROFILE_OUT="$tmp/profile.folded" \
FFTGRAD_LEDGER="$tmp/ledger.jsonl" \
  "$build_dir/examples/chaos_training" > /dev/null

[[ -s "$tmp/profile.folded" ]] || { echo "error: no folded-stack output written" >&2; exit 1; }
[[ -s "$tmp/profile.folded.report.txt" ]] || {
  echo "error: no hot-path report written" >&2; exit 1; }
grep -qi "hot paths" "$tmp/profile.folded.report.txt" || {
  echo "error: report is missing its headline section" >&2; exit 1; }
grep -q "ROADMAP item 1" "$tmp/profile.folded.report.txt" || {
  echo "error: no SIMD-candidate row in the hot-path report (expected FFT/quantize/pack/CRC leaves)" >&2
  exit 1; }

echo "==> run_report --check-profile (grammar round trip + critpath cross-reference)"
"$build_dir/examples/run_report" --check-profile --profile "$tmp/profile.folded" \
  "$tmp/ledger.jsonl" > "$tmp/report.txt"
grep -qi "hot paths" "$tmp/report.txt"
grep -q "profile check passed" "$tmp/report.txt"

echo "profile gate ok"
