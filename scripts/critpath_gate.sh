#!/usr/bin/env bash
# End-to-end critical-path gate:
#
#   scripts/critpath_gate.sh [build-dir]
#
# Runs a small instrumented cluster training (chaos_training: 8 ranks,
# faults, stragglers, one crash) with FFTGRAD_CRITPATH + FFTGRAD_TRACE +
# FFTGRAD_LEDGER set, then re-analyzes the exported Chrome trace with
# `trace_analyze --check`, which fails unless the critical path tiles
# every iteration window (per-category times sum to the simulated
# end-to-end time within 1e-6) and every consume edge has happens-before
# support. The at-exit report and the ledger critpath row must both have
# been written.
#
# Exit status: 0 gate passed, non-zero on any failure.
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir="${1:-build}"
for tool in examples/chaos_training examples/trace_analyze examples/run_report; do
  [[ -x "$build_dir/$tool" ]] || { echo "error: $build_dir/$tool not built" >&2; exit 2; }
done

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "==> instrumented chaos_training (trace + critpath report + ledger)"
FFTGRAD_CRITPATH="$tmp/critpath.txt" \
FFTGRAD_TRACE="$tmp/trace.json" \
FFTGRAD_LEDGER="$tmp/ledger.jsonl" \
  "$build_dir/examples/chaos_training" > /dev/null

[[ -s "$tmp/critpath.txt" ]] || { echo "error: no critical-path report written" >&2; exit 1; }
grep -qi "critical path" "$tmp/critpath.txt" || {
  echo "error: report is missing its headline section" >&2; exit 1; }
grep -q '"type":"critpath"' "$tmp/ledger.jsonl" || {
  echo "error: ledger has no critpath row" >&2; exit 1; }

echo "==> trace_analyze --check over the exported trace"
"$build_dir/examples/trace_analyze" --check --ledger "$tmp/ledger.jsonl" \
  "$tmp/trace.json" > "$tmp/reanalysis.txt"
grep -q "structurally valid" "$tmp/reanalysis.txt"

echo "==> run_report parses the ledger (critpath row included)"
"$build_dir/examples/run_report" "$tmp/ledger.jsonl" > /dev/null

echo "critpath gate ok"
