#!/usr/bin/env bash
# Run the project-specific unit/trust-boundary lint gate (tools/fftgrad_lint)
# over the tree: selftest first (the detectors must still catch the seeded
# violation fixtures before their silence on the tree means anything), then
# the scoped scan with the audited allowlist.
#
#   scripts/lint_units.sh [build-dir]      (default: build)
#
# Builds the lint binary if the build directory is configured but the tool
# is missing. Exit status is non-zero on any selftest failure, finding, or
# stale allowlist entry.
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir="${1:-build}"
lint="$build_dir/tools/fftgrad_lint"

if [[ ! -x "$lint" ]]; then
  if [[ -f "$build_dir/CMakeCache.txt" ]]; then
    cmake --build "$build_dir" --target fftgrad_lint -j "$(nproc)"
  else
    echo "error: $lint not built and $build_dir is not configured" >&2
    echo "hint: cmake --preset default && cmake --build build --target fftgrad_lint" >&2
    exit 2
  fi
fi

"$lint" --selftest --root .
"$lint" --root .
