#!/usr/bin/env bash
# tsan.supp audit: every ThreadSanitizer suppression must carry a rationale
# and still refer to something that exists in the tree.
#
#   scripts/check_tsan_supp.sh [suppression-file]
#
# Rules enforced per suppression line (`type:pattern`):
#
#   1. Rationale: the line must be immediately preceded by a comment line.
#      A suppression silences a data-race/deadlock report for every future
#      run, so the "why this is safe" must live next to it, not in a
#      commit message.
#
#   2. Liveness: the pattern (wildcards stripped) must still match a
#      tracked filename or tracked-file content. A suppression whose
#      subject was deleted or renamed is a stale hole in the sanitizer
#      and fails the audit.
#
#   3. Specificity: a pattern that is empty or only wildcards (`race:*`)
#      would blanket-silence the sanitizer and fails outright.
set -uo pipefail
cd "$(dirname "$0")/.."

supp_file="${1:-tsan.supp}"
[[ -f "$supp_file" ]] || { echo "check_tsan_supp: no ${supp_file}; nothing to audit"; exit 0; }

failed=0
checked=0
prev_was_comment=0
lineno=0
while IFS= read -r line || [[ -n "$line" ]]; do
  lineno=$((lineno + 1))
  # Blank lines end a rationale block; comments start/extend one.
  if [[ -z "${line//[[:space:]]/}" ]]; then
    prev_was_comment=0
    continue
  fi
  if [[ "$line" =~ ^[[:space:]]*# ]]; then
    prev_was_comment=1
    continue
  fi

  checked=$((checked + 1))
  if [[ "$prev_was_comment" != 1 ]]; then
    echo "check_tsan_supp: ${supp_file}:${lineno}: suppression without a rationale comment: ${line}" >&2
    failed=1
  fi
  prev_was_comment=0

  if [[ "$line" != *:* ]]; then
    echo "check_tsan_supp: ${supp_file}:${lineno}: malformed suppression (no type:pattern): ${line}" >&2
    failed=1
    continue
  fi
  pattern="${line#*:}"
  needle="${pattern//\*/}"
  if [[ -z "${needle//[[:space:]]/}" ]]; then
    echo "check_tsan_supp: ${supp_file}:${lineno}: wildcard-only pattern blankets the sanitizer: ${line}" >&2
    failed=1
    continue
  fi
  # Live if the stripped pattern names a tracked file (basename match) or
  # appears in tracked first-party sources.
  if git ls-files -- src tests tools examples | grep -Fq "$needle" ||
     git grep -Fq -- "$needle" src tests tools examples 2>/dev/null; then
    :
  else
    echo "check_tsan_supp: ${supp_file}:${lineno}: stale suppression — '${needle}' matches nothing tracked: ${line}" >&2
    failed=1
  fi
done < "$supp_file"

if [[ "$failed" != 0 ]]; then
  echo "check_tsan_supp: FAIL — fix rationale/liveness above" >&2
  exit 1
fi
echo "check_tsan_supp: PASS — ${checked} suppression(s), each with rationale and a live subject"
