#!/usr/bin/env bash
# Run the headline figure-reproduction benches with JSON output enabled
# and merge the per-bench files into one snapshot at the repo root.
#
#   scripts/bench_all.sh [build-dir] [out.json]
#
# build-dir defaults to `build` (the default preset); out.json defaults to
# $FFTGRAD_BENCH_OUT, then BENCH_pr10.json. Each bench writes
# BENCH_<name>.json into a temp dir via FFTGRAD_BENCH_JSON; every file is
# stamped with provenance (git sha, preset, UTC timestamp, host — see
# bench::json_meta()), and the merged file carries the same header plus
# the array of bench payloads.
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir="${1:-build}"
if [[ ! -d "$build_dir/bench" ]]; then
  echo "error: '$build_dir' is not a configured build tree (run cmake --preset default && cmake --build --preset default first)" >&2
  exit 2
fi

# Headline benches: layer-wise compression (Fig 2), allgather scaling
# (Fig 11), end-to-end throughput (Fig 14 / Table 2), weak scaling (Fig 16),
# plus the primitive microbenchmarks, the PS-vs-BSP extension, and the
# elastic-recovery overhead bench (time-to-rejoin vs model size and the
# fault-free armed/disarmed tax), and the profiler overhead bench (the
# disabled-path span cost and the sampling tax, so the bench_diff gate
# holds the observability layer to its own cost contract).
benches=(bench_fig02_layerwise bench_fig11_allgather bench_fig14_table2_e2e bench_fig16_weak_scaling bench_micro_primitives bench_ps_vs_bsp bench_recovery_overhead bench_profiler_overhead)

json_dir="$(mktemp -d)"
trap 'rm -rf "$json_dir"' EXIT

export FFTGRAD_BENCH_JSON="$json_dir"
FFTGRAD_GIT_SHA="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
export FFTGRAD_GIT_SHA
export FFTGRAD_PRESET="${FFTGRAD_PRESET:-default}"

for bench in "${benches[@]}"; do
  exe="$build_dir/bench/$bench"
  [[ -x "$exe" ]] || { echo "error: $exe not built" >&2; exit 2; }
  echo "==> $bench"
  "$exe" > /dev/null
done

# Output snapshot: second argument or $FFTGRAD_BENCH_OUT (bench_diff gates
# candidate snapshots against the committed baseline of the same name).
out="${2:-${FFTGRAD_BENCH_OUT:-BENCH_pr10.json}}"
{
  printf '{\n  "git_sha": "%s",\n  "preset": "%s",\n  "generated_utc": "%s",\n  "benches": [\n' \
    "$FFTGRAD_GIT_SHA" "$FFTGRAD_PRESET" "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
  first=1
  # Each binary emits one BENCH_<figure>_<tag>.json per configuration it
  # measures (e.g. fig14 writes one per model/codec pair); merge them all.
  files=("$json_dir"/BENCH_*.json)
  [[ -f "${files[0]}" ]] || { echo "error: benches emitted no JSON" >&2; exit 2; }
  for file in "${files[@]}"; do
    [[ "$first" == 1 ]] || printf ',\n'
    first=0
    # Command substitution strips the file's trailing newline so the
    # separator comma lands directly after the closing brace.
    printf '%s' "$(sed 's/^/    /' "$file")"
  done
  printf '\n  ]\n}\n'
} > "$out"

echo "wrote $out ($(wc -c < "$out") bytes, ${#files[@]} bench payloads from ${#benches[@]} binaries)"
