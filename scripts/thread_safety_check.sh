#!/usr/bin/env bash
# Clang Thread Safety Analysis gate.
#
#   scripts/thread_safety_check.sh [jobs]
#
# Two stages:
#
#   1. Build the `thread-safety` CMake preset: every first-party library
#      compiled by clang++ with -Werror=thread-safety -Wthread-safety-beta,
#      so any lock-discipline violation the annotations can express is a
#      hard compile error.
#
#   2. Mutant matrix over tools/ts_mutants/ts_mutants.cpp: the base file
#      must compile clean, and each FFTGRAD_TS_MUTANT_* definition —
#      unguarded read, unguarded write, lockless REQUIRES call, EXCLUDES
#      re-entry, use-after-early-release — must FAIL to compile. A mutant
#      that compiles means the gate has stopped detecting that bug class,
#      and this script fails.
#
# FFTGRAD_CLANGXX names the clang++ binary (default: `clang++` on PATH) —
# set it on hosts that only install versioned binaries (clang++-16 etc.).
#
# Exit codes (scripts/check.sh maps 3 to a SKIP row):
#   0  both stages pass
#   3  clang++ not installed — the gate cannot run here (GCC has no
#      -Wthread-safety); annotations still compile away under GCC
#   *  gate failure
set -uo pipefail
cd "$(dirname "$0")/.."

jobs="${1:-$(nproc)}"
clangxx="${FFTGRAD_CLANGXX:-clang++}"

if ! command -v "$clangxx" >/dev/null 2>&1; then
  echo "thread_safety_check: ${clangxx} not found; Clang Thread Safety Analysis" >&2
  echo "thread_safety_check: unavailable on this host — skipping (exit 3)." >&2
  echo "thread_safety_check: (set FFTGRAD_CLANGXX to a versioned clang++ binary)" >&2
  exit 3
fi

echo "==> thread-safety: preset build (${clangxx} -Werror=thread-safety)"
cmake --preset thread-safety -DCMAKE_CXX_COMPILER="$clangxx" || exit 1
cmake --build --preset thread-safety -j "$jobs" || exit 1

mutant_tu="tools/ts_mutants/ts_mutants.cpp"
compile=("$clangxx" -fsyntax-only -std=c++20 -Isrc/util/include
         -Werror=thread-safety -Wthread-safety-beta)

echo "==> thread-safety: mutant matrix over ${mutant_tu}"
if ! "${compile[@]}" "$mutant_tu"; then
  echo "thread_safety_check: FAIL — base mutant TU does not compile clean" >&2
  exit 1
fi
echo "    base: clean (as required)"

mutants=(
  FFTGRAD_TS_MUTANT_UNGUARDED_READ
  FFTGRAD_TS_MUTANT_UNGUARDED_WRITE
  FFTGRAD_TS_MUTANT_REQUIRES_LOCKLESS
  FFTGRAD_TS_MUTANT_EXCLUDES_VIOLATION
  FFTGRAD_TS_MUTANT_EARLY_RELEASE
)
failed=0
for mutant in "${mutants[@]}"; do
  if "${compile[@]}" "-D${mutant}" "$mutant_tu" 2>/dev/null; then
    echo "    ${mutant}: COMPILED — gate no longer detects this bug class" >&2
    failed=1
  else
    echo "    ${mutant}: rejected (as required)"
  fi
done

if [[ "$failed" != 0 ]]; then
  echo "thread_safety_check: FAIL — at least one seeded mutant was accepted" >&2
  exit 1
fi
echo "thread_safety_check: PASS — build clean, all ${#mutants[@]} mutants rejected"
