#!/usr/bin/env bash
# Run clang-tidy (config: .clang-tidy) over the first-party sources.
#
#   scripts/lint.sh [build-dir]
#
# Uses the compile database from `build-dir` (default: build/), configuring
# the default preset first if it is missing. Machines without clang-tidy
# (the CI container ships GCC only) skip with a notice and exit 0 so the
# lint step never blocks the build-and-test matrix.
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v clang-tidy > /dev/null 2>&1; then
  echo "lint.sh: clang-tidy not found on PATH; skipping static analysis." >&2
  exit 0
fi

build_dir="${1:-build}"
if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "==> generating compile database in ${build_dir}"
  cmake --preset default -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
fi
if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "lint.sh: no compile_commands.json in ${build_dir}; configure with" \
       "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON first." >&2
  exit 2
fi

mapfile -t sources < <(git ls-files 'src/**/*.cpp' 'tests/*.cpp' 'tests/**/*.cpp' \
                                    'bench/*.cpp' 'bench/**/*.cpp' \
                                    'examples/*.cpp' 'examples/**/*.cpp')
echo "==> clang-tidy over ${#sources[@]} files"
clang-tidy -p "${build_dir}" --quiet "${sources[@]}"
echo "lint.sh: clean."
