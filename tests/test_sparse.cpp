#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <numeric>
#include <vector>

#include "fftgrad/parallel/thread_pool.h"
#include "fftgrad/sparse/bitmap.h"
#include "fftgrad/sparse/pack.h"
#include "fftgrad/sparse/topk.h"
#include "fftgrad/util/rng.h"

namespace fftgrad::sparse {
namespace {

std::vector<float> random_magnitudes(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> v(n);
  for (float& x : v) x = std::fabs(static_cast<float>(rng.normal()));
  return v;
}

// ---------------------------------------------------------------------------
// Top-k selection

struct TopKCase {
  std::size_t n;
  std::size_t k;
  TopKMethod method;
};

class TopKParam : public ::testing::TestWithParam<TopKCase> {};

TEST_P(TopKParam, ThresholdMatchesSortedReference) {
  const TopKCase c = GetParam();
  const auto mags = random_magnitudes(c.n, c.n * 31 + c.k);
  std::vector<float> sorted = mags;
  std::sort(sorted.begin(), sorted.end(), std::greater<float>());
  const TopKResult result = topk_threshold(mags, c.k, c.method);
  EXPECT_FLOAT_EQ(result.threshold, sorted[c.k - 1]);
  EXPECT_LT(result.above, c.k);
  EXPECT_GE(result.above + result.at_threshold, c.k);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, TopKParam,
    ::testing::Values(TopKCase{100, 1, TopKMethod::kSort}, TopKCase{100, 1, TopKMethod::kNthElement},
                      TopKCase{100, 1, TopKMethod::kBucket}, TopKCase{100, 50, TopKMethod::kSort},
                      TopKCase{100, 50, TopKMethod::kNthElement},
                      TopKCase{100, 50, TopKMethod::kBucket}, TopKCase{100, 100, TopKMethod::kSort},
                      TopKCase{100, 100, TopKMethod::kBucket},
                      TopKCase{10000, 1500, TopKMethod::kSort},
                      TopKCase{10000, 1500, TopKMethod::kNthElement},
                      TopKCase{10000, 1500, TopKMethod::kBucket},
                      TopKCase{65537, 100, TopKMethod::kBucket}));

TEST(TopK, KZeroKeepsNothing) {
  const auto result = topk_threshold(random_magnitudes(10, 1), 0);
  EXPECT_TRUE(std::isinf(result.threshold));
  EXPECT_EQ(result.above, 0u);
}

TEST(TopK, KBeyondSizeThrows) {
  EXPECT_THROW(topk_threshold(random_magnitudes(5, 2), 6), std::invalid_argument);
}

TEST(TopK, BucketHandlesAllEqualValues) {
  std::vector<float> mags(1000, 0.25f);
  const auto result = topk_threshold(mags, 100, TopKMethod::kBucket);
  EXPECT_FLOAT_EQ(result.threshold, 0.25f);
  EXPECT_EQ(result.above, 0u);
  EXPECT_EQ(result.at_threshold, 1000u);
}

TEST(TopK, BucketHandlesManyDuplicatesAroundThreshold) {
  std::vector<float> mags;
  for (int i = 0; i < 500; ++i) mags.push_back(1.0f);
  for (int i = 0; i < 500; ++i) mags.push_back(2.0f);
  const auto result = topk_threshold(mags, 600, TopKMethod::kBucket);
  EXPECT_FLOAT_EQ(result.threshold, 1.0f);
  EXPECT_EQ(result.above, 500u);
}

TEST(ApplyTopK, KeepsExactlyKSurvivors) {
  util::Rng rng(11);
  std::vector<float> values(1000);
  for (float& v : values) v = static_cast<float>(rng.normal());
  std::vector<float> copy = values;
  apply_topk_inplace(copy, 100);
  const auto survivors =
      static_cast<std::size_t>(std::count_if(copy.begin(), copy.end(),
                                             [](float v) { return v != 0.0f; }));
  EXPECT_EQ(survivors, 100u);
}

TEST(ApplyTopK, SurvivorsAreTheLargestMagnitudes) {
  std::vector<float> values = {0.1f, -5.0f, 0.2f, 3.0f, -0.05f, 1.0f};
  apply_topk_inplace(values, 3);
  EXPECT_EQ(values[0], 0.0f);
  EXPECT_EQ(values[1], -5.0f);
  EXPECT_EQ(values[2], 0.0f);
  EXPECT_EQ(values[3], 3.0f);
  EXPECT_EQ(values[4], 0.0f);
  EXPECT_EQ(values[5], 1.0f);
}

TEST(ApplyTopK, KeepsExactlyKWithTies) {
  std::vector<float> values(100, 0.5f);
  apply_topk_inplace(values, 37);
  const auto survivors =
      static_cast<std::size_t>(std::count_if(values.begin(), values.end(),
                                             [](float v) { return v != 0.0f; }));
  EXPECT_EQ(survivors, 37u);
}

TEST(ApplyTopK, KZeroZerosEverything) {
  std::vector<float> values = {1.0f, 2.0f};
  apply_topk_inplace(values, 0);
  EXPECT_EQ(values[0], 0.0f);
  EXPECT_EQ(values[1], 0.0f);
}

TEST(ApplyTopK, KAtSizeKeepsEverything) {
  std::vector<float> values = {1.0f, -2.0f, 3.0f};
  std::vector<float> copy = values;
  apply_topk_inplace(copy, 3);
  EXPECT_EQ(copy, values);
}

// ---------------------------------------------------------------------------
// Bitmap

TEST(Bitmap, SetTestClear) {
  Bitmap b(130);
  b.set(0);
  b.set(64);
  b.set(129);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(129));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 3u);
  b.clear(64);
  EXPECT_FALSE(b.test(64));
  EXPECT_EQ(b.count(), 2u);
}

TEST(Bitmap, RankCountsPrecedingSetBits) {
  Bitmap b(200);
  for (std::size_t i = 0; i < 200; i += 3) b.set(i);
  std::size_t expected = 0;
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(b.rank(i), expected) << i;
    if (i % 3 == 0) ++expected;
  }
}

TEST(Bitmap, ByteSizeIsWordGranular) {
  EXPECT_EQ(Bitmap(1).byte_size(), 8u);
  EXPECT_EQ(Bitmap(64).byte_size(), 8u);
  EXPECT_EQ(Bitmap(65).byte_size(), 16u);
}

// ---------------------------------------------------------------------------
// Packing

std::vector<float> sparse_vector(std::size_t n, double density, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> v(n, 0.0f);
  for (float& x : v) {
    if (rng.bernoulli(density)) x = static_cast<float>(rng.normal());
  }
  return v;
}

class PackParam : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PackParam, ScanPackMatchesSerialPack) {
  parallel::ThreadPool pool(4);
  const auto sparse = sparse_vector(GetParam(), 0.15, GetParam() + 3);
  const auto expected = pack_serial<float>(sparse);
  const auto packed = pack_scan<float>(pool, sparse);
  EXPECT_EQ(packed, expected);
}

TEST_P(PackParam, BitmapPackMatchesSerialPack) {
  parallel::ThreadPool pool(4);
  const auto sparse = sparse_vector(GetParam(), 0.15, GetParam() + 7);
  const auto expected = pack_serial<float>(sparse);
  const Bitmap mask = nonzero_bitmap<float>(std::span<const float>(sparse));
  const auto packed = pack_bitmap<float>(pool, sparse, mask);
  EXPECT_EQ(packed, expected);
}

TEST_P(PackParam, UnpackInvertsPack) {
  parallel::ThreadPool pool(4);
  const auto sparse = sparse_vector(GetParam(), 0.15, GetParam() + 13);
  const Bitmap mask = nonzero_bitmap<float>(std::span<const float>(sparse));
  const auto packed = pack_bitmap<float>(pool, sparse, mask);
  std::vector<float> restored(sparse.size());
  unpack_bitmap<float>(pool, packed, mask, restored);
  EXPECT_EQ(restored, sparse);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PackParam,
                         ::testing::Values(1, 7, 63, 64, 65, 128, 1000, 4096, 100003));

TEST(Pack, PaperExampleFromSection32) {
  // sparse = [a, 0, b, 0, c, 0, 0] -> dense = [a, b, c]
  parallel::ThreadPool pool(2);
  std::vector<float> sparse = {1.5f, 0.0f, 2.5f, 0.0f, 3.5f, 0.0f, 0.0f};
  const auto dense = pack_scan<float>(pool, std::span<const float>(sparse));
  EXPECT_EQ(dense, (std::vector<float>{1.5f, 2.5f, 3.5f}));
}

TEST(Pack, AllZeroVectorPacksToEmpty) {
  parallel::ThreadPool pool(2);
  std::vector<float> zeros(1000, 0.0f);
  EXPECT_TRUE(pack_scan<float>(pool, std::span<const float>(zeros)).empty());
  const Bitmap mask = nonzero_bitmap<float>(std::span<const float>(zeros));
  EXPECT_TRUE(pack_bitmap<float>(pool, std::span<const float>(zeros), mask).empty());
}

TEST(Pack, FullyDenseVectorPacksToItself) {
  parallel::ThreadPool pool(2);
  std::vector<float> dense(100);
  std::iota(dense.begin(), dense.end(), 1.0f);
  const Bitmap mask = nonzero_bitmap<float>(std::span<const float>(dense));
  EXPECT_EQ(pack_bitmap<float>(pool, std::span<const float>(dense), mask), dense);
}

TEST(Pack, WorksForComplexElements) {
  parallel::ThreadPool pool(2);
  using cfloat = std::complex<float>;
  std::vector<cfloat> sparse = {{1, 2}, {0, 0}, {3, 0}, {0, 4}, {0, 0}};
  const Bitmap mask = nonzero_bitmap<cfloat>(std::span<const cfloat>(sparse));
  const auto packed = pack_bitmap<cfloat>(pool, sparse, mask);
  ASSERT_EQ(packed.size(), 3u);
  EXPECT_EQ(packed[0], cfloat(1, 2));
  EXPECT_EQ(packed[1], cfloat(3, 0));
  EXPECT_EQ(packed[2], cfloat(0, 4));
  std::vector<cfloat> restored(sparse.size());
  unpack_bitmap<cfloat>(pool, packed, mask, restored);
  EXPECT_EQ(restored, sparse);
}

TEST(Pack, BitmapPackIgnoresMaskedOutValues) {
  // pack_bitmap must honour the mask, not element values: a top-k mask may
  // drop non-zero elements.
  parallel::ThreadPool pool(2);
  std::vector<float> values = {1.0f, 2.0f, 3.0f};
  Bitmap mask(3);
  mask.set(1);
  const auto packed = pack_bitmap<float>(pool, std::span<const float>(values), mask);
  EXPECT_EQ(packed, std::vector<float>{2.0f});
}

TEST(Pack, UnpackRejectsInconsistentSizes) {
  parallel::ThreadPool pool(2);
  Bitmap mask(10);
  mask.set(0);
  std::vector<float> wrong_dense = {1.0f, 2.0f};  // mask has one set bit
  std::vector<float> out(10);
  EXPECT_THROW(unpack_bitmap<float>(pool, std::span<const float>(wrong_dense), mask, out),
               std::invalid_argument);
  std::vector<float> dense = {1.0f};
  std::vector<float> short_out(9);
  EXPECT_THROW(unpack_bitmap<float>(pool, std::span<const float>(dense), mask, short_out),
               std::invalid_argument);
}

TEST(Pack, MismatchedMaskSizeThrows) {
  parallel::ThreadPool pool(2);
  std::vector<float> values(8);
  Bitmap mask(9);
  EXPECT_THROW(pack_bitmap<float>(pool, std::span<const float>(values), mask),
               std::invalid_argument);
}

}  // namespace
}  // namespace fftgrad::sparse
