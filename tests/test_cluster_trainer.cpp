// cluster_train: genuinely multi-threaded BSP training over SimCluster.
// The key assertions: all replicas stay bit-identical (the BSP invariant
// the sequential DistributedTrainer relies on), the result matches the
// sequential trainer's parameters for lossless exchange, and compressed
// exchange still learns.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "fftgrad/core/baseline_compressors.h"
#include "fftgrad/core/cluster_trainer.h"
#include "fftgrad/core/fft_compressor.h"
#include "fftgrad/core/trainer.h"
#include "fftgrad/nn/loss.h"
#include "fftgrad/nn/models.h"

namespace fftgrad::core {
namespace {

std::function<nn::Network()> mlp_factory() {
  return [] {
    util::Rng rng(999);
    return nn::models::make_mlp(8, 16, 2, 3, rng);
  };
}

TEST(ClusterTrain, ReplicasStayBitIdenticalLossless) {
  comm::SimCluster cluster(comm::NetworkModel::infiniband_fdr56());
  ClusterTrainConfig cfg;
  cfg.ranks = 4;
  cfg.iterations = 10;
  cfg.seed = 5;
  nn::SyntheticDataset data({8}, 3, 11);
  const ClusterTrainResult result = cluster_train(
      cluster, cfg, mlp_factory(),
      [](std::size_t) { return std::make_unique<NoopCompressor>(); }, data);
  EXPECT_TRUE(result.replicas_identical);
  EXPECT_EQ(result.rank_sim_times.size(), 4u);
  for (util::SimSeconds t : result.rank_sim_times) EXPECT_GT(t, util::SimSeconds(0.0));
}

TEST(ClusterTrain, ReplicasStayBitIdenticalUnderFftCompression) {
  // Compression is deterministic given the packet, and every rank
  // decompresses the same packets in the same order -> replicas must agree
  // exactly even though the exchange is lossy.
  comm::SimCluster cluster(comm::NetworkModel::infiniband_fdr56());
  ClusterTrainConfig cfg;
  cfg.ranks = 4;
  cfg.iterations = 8;
  cfg.seed = 6;
  nn::SyntheticDataset data({8}, 3, 12);
  const ClusterTrainResult result = cluster_train(
      cluster, cfg, mlp_factory(),
      [](std::size_t) {
        return std::make_unique<FftCompressor>(
            FftCompressorOptions{.theta = 0.5, .quantizer_bits = 10});
      },
      data);
  EXPECT_TRUE(result.replicas_identical);
}

TEST(ClusterTrain, MatchesSequentialTrainerLossless) {
  const std::uint64_t kSeed = 7;
  nn::SyntheticDataset data({8}, 3, 13);

  comm::SimCluster cluster(comm::NetworkModel::infiniband_fdr56());
  ClusterTrainConfig ccfg;
  ccfg.ranks = 3;
  ccfg.batch_per_rank = 16;
  ccfg.iterations = 6;
  ccfg.learning_rate = 0.05f;
  ccfg.seed = kSeed;
  const ClusterTrainResult threaded = cluster_train(
      cluster, ccfg, mlp_factory(),
      [](std::size_t) { return std::make_unique<NoopCompressor>(); }, data);

  TrainerConfig scfg;
  scfg.ranks = 3;
  scfg.batch_per_rank = 16;
  scfg.epochs = 1;
  scfg.iters_per_epoch = 6;
  scfg.test_size = 16;
  scfg.seed = kSeed;
  util::Rng rng(999);
  DistributedTrainer sequential(nn::models::make_mlp(8, 16, 2, 3, rng), data, scfg);
  nn::StepLrSchedule lr({{0, 0.05f}});
  sequential.train([](std::size_t) { return std::make_unique<NoopCompressor>(); },
                   FixedTheta(0.0), lr);
  std::vector<float> sequential_params(sequential.model().param_count());
  sequential.model().copy_params(sequential_params);

  ASSERT_EQ(threaded.final_params.size(), sequential_params.size());
  for (std::size_t i = 0; i < sequential_params.size(); ++i) {
    // Different float summation orders (allgather-average vs scaled
    // accumulation) allow tiny round-off divergence over 6 steps.
    EXPECT_NEAR(threaded.final_params[i], sequential_params[i], 2e-4f) << i;
  }
}

TEST(ClusterTrain, CompressedTrainingReducesLoss) {
  comm::SimCluster cluster(comm::NetworkModel::infiniband_fdr56());
  nn::SyntheticDataset data({8}, 2, 14);
  ClusterTrainConfig cfg;
  cfg.ranks = 4;
  cfg.iterations = 2;
  cfg.seed = 8;
  const ClusterTrainResult before = cluster_train(
      cluster, cfg, mlp_factory(),
      [](std::size_t) {
        return std::make_unique<FftCompressor>(
            FftCompressorOptions{.theta = 0.5, .quantizer_bits = 10});
      },
      data);
  cfg.iterations = 60;
  const ClusterTrainResult after = cluster_train(
      cluster, cfg, mlp_factory(),
      [](std::size_t) {
        return std::make_unique<FftCompressor>(
            FftCompressorOptions{.theta = 0.5, .quantizer_bits = 10});
      },
      data);
  EXPECT_LT(after.mean_loss_last_iteration, before.mean_loss_last_iteration);
}

TEST(ClusterTrain, SimClockChargesCompressedVolume) {
  // The per-rank simulated time under compression must be far below the
  // lossless exchange time for the same schedule. Needs a gradient large
  // enough that the alpha-beta model is bandwidth-dominated (a tiny MLP's
  // 1KB gradient would be latency-bound and compression-insensitive).
  auto big_mlp = [] {
    util::Rng rng(998);
    return nn::models::make_mlp(64, 256, 3, 4, rng);  // ~85k params, 340KB
  };
  nn::SyntheticDataset data({64}, 4, 15);
  ClusterTrainConfig cfg;
  cfg.ranks = 4;
  cfg.iterations = 3;
  cfg.seed = 9;
  comm::SimCluster slow(comm::NetworkModel::ethernet_1g());
  const ClusterTrainResult lossless = cluster_train(
      slow, cfg, big_mlp,
      [](std::size_t) { return std::make_unique<NoopCompressor>(); }, data);
  const ClusterTrainResult compressed = cluster_train(
      slow, cfg, big_mlp,
      [](std::size_t) {
        return std::make_unique<FftCompressor>(
            FftCompressorOptions{.theta = 0.9, .quantizer_bits = 10});
      },
      data);
  EXPECT_LT(compressed.rank_sim_times[0], lossless.rank_sim_times[0] * 0.5);
}

TEST(ClusterTrain, RejectsZeroRanks) {
  comm::SimCluster cluster(comm::NetworkModel::infiniband_fdr56());
  ClusterTrainConfig cfg;
  cfg.ranks = 0;
  nn::SyntheticDataset data({8}, 2, 16);
  EXPECT_THROW(cluster_train(cluster, cfg, mlp_factory(),
                             [](std::size_t) { return std::make_unique<NoopCompressor>(); },
                             data),
               std::invalid_argument);
}

}  // namespace
}  // namespace fftgrad::core
