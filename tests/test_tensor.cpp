#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "fftgrad/tensor/ops.h"
#include "fftgrad/tensor/tensor.h"
#include "fftgrad/util/rng.h"

namespace fftgrad::tensor {
namespace {

TEST(Tensor, ConstructsZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.size(), 6u);
  EXPECT_EQ(t.rank(), 2u);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FullFillsValue) {
  Tensor t = Tensor::full({4}, 2.5f);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(t[i], 2.5f);
}

TEST(Tensor, RandnUsesProvidedMoments) {
  util::Rng rng(1);
  Tensor t = Tensor::randn({10000}, rng, 1.0f, 2.0f);
  double sum = 0.0, sq = 0.0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    sum += t[i];
    sq += static_cast<double>(t[i]) * t[i];
  }
  const double mean = sum / static_cast<double>(t.size());
  EXPECT_NEAR(mean, 1.0, 0.1);
  EXPECT_NEAR(std::sqrt(sq / static_cast<double>(t.size()) - mean * mean), 2.0, 0.1);
}

TEST(Tensor, At2dIndexingIsRowMajor) {
  Tensor t({2, 3});
  t.at(1, 2) = 7.0f;
  EXPECT_EQ(t[5], 7.0f);
}

TEST(Tensor, At4dIndexingIsRowMajor) {
  Tensor t({2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 9.0f;
  EXPECT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 9.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 6});
  t[7] = 3.0f;
  t.reshape({3, 4});
  EXPECT_EQ(t.dim(0), 3u);
  EXPECT_EQ(t[7], 3.0f);
}

TEST(Tensor, ReshapeRejectsCountMismatch) {
  Tensor t({2, 6});
  EXPECT_THROW(t.reshape({5}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// GEMM

void reference_gemm(std::size_t m, std::size_t n, std::size_t k, float alpha, const float* a,
                    bool ta, const float* b, bool tb, float beta, float* c) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        const float av = ta ? a[p * m + i] : a[i * k + p];
        const float bv = tb ? b[j * k + p] : b[p * n + j];
        acc += static_cast<double>(av) * bv;
      }
      c[i * n + j] = alpha * static_cast<float>(acc) + beta * c[i * n + j];
    }
  }
}

struct GemmCase {
  std::size_t m, n, k;
  bool ta, tb;
  float alpha, beta;
};

class GemmParam : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmParam, MatchesReference) {
  const GemmCase c = GetParam();
  util::Rng rng(c.m * 131 + c.n * 17 + c.k);
  std::vector<float> a(c.m * c.k), b(c.k * c.n), out(c.m * c.n), expected;
  for (float& v : a) v = static_cast<float>(rng.normal());
  for (float& v : b) v = static_cast<float>(rng.normal());
  for (float& v : out) v = static_cast<float>(rng.normal());
  expected = out;
  gemm(c.m, c.n, c.k, c.alpha, a.data(), c.ta, b.data(), c.tb, c.beta, out.data());
  reference_gemm(c.m, c.n, c.k, c.alpha, a.data(), c.ta, b.data(), c.tb, c.beta,
                 expected.data());
  const float tol = 1e-3f * std::sqrt(static_cast<float>(c.k));
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_NEAR(out[i], expected[i], tol) << "index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmParam,
    ::testing::Values(GemmCase{1, 1, 1, false, false, 1.0f, 0.0f},
                      GemmCase{3, 5, 7, false, false, 1.0f, 0.0f},
                      GemmCase{3, 5, 7, true, false, 1.0f, 0.0f},
                      GemmCase{3, 5, 7, false, true, 1.0f, 0.0f},
                      GemmCase{3, 5, 7, true, true, 1.0f, 0.0f},
                      GemmCase{16, 16, 16, false, false, 2.0f, 1.0f},
                      GemmCase{70, 90, 300, false, false, 1.0f, 0.0f},
                      GemmCase{70, 90, 300, false, true, 1.0f, 0.5f},
                      GemmCase{70, 90, 300, true, false, -1.0f, 1.0f},
                      GemmCase{128, 257, 67, false, false, 1.0f, 0.0f},
                      GemmCase{1, 300, 300, false, true, 1.0f, 0.0f}));

TEST(Gemm, BetaZeroOverwritesGarbage) {
  std::vector<float> a = {1.0f}, b = {2.0f};
  std::vector<float> c = {std::numeric_limits<float>::quiet_NaN()};
  gemm(1, 1, 1, 1.0f, a.data(), false, b.data(), false, 0.0f, c.data());
  EXPECT_FLOAT_EQ(c[0], 2.0f);
}

// ---------------------------------------------------------------------------
// Elementwise ops

TEST(Ops, AxpyAccumulates) {
  std::vector<float> x = {1.0f, 2.0f}, y = {10.0f, 20.0f};
  axpy(2.0f, x, y);
  EXPECT_FLOAT_EQ(y[0], 12.0f);
  EXPECT_FLOAT_EQ(y[1], 24.0f);
}

TEST(Ops, AxpyRejectsMismatch) {
  std::vector<float> x = {1.0f}, y = {1.0f, 2.0f};
  EXPECT_THROW(axpy(1.0f, x, y), std::invalid_argument);
}

TEST(Ops, ScaleMultiplies) {
  std::vector<float> y = {2.0f, -4.0f};
  scale(y, 0.5f);
  EXPECT_FLOAT_EQ(y[0], 1.0f);
  EXPECT_FLOAT_EQ(y[1], -2.0f);
}

TEST(Ops, SoftmaxRowsSumToOne) {
  std::vector<float> logits = {1.0f, 2.0f, 3.0f, -1.0f, 0.0f, 1.0f};
  softmax_rows(logits, 2, 3);
  EXPECT_NEAR(logits[0] + logits[1] + logits[2], 1.0f, 1e-6f);
  EXPECT_NEAR(logits[3] + logits[4] + logits[5], 1.0f, 1e-6f);
  EXPECT_GT(logits[2], logits[1]);
  EXPECT_GT(logits[1], logits[0]);
}

TEST(Ops, SoftmaxIsShiftInvariantAndStable) {
  std::vector<float> a = {1000.0f, 1001.0f};
  softmax_rows(a, 1, 2);
  EXPECT_FALSE(std::isnan(a[0]));
  std::vector<float> b = {0.0f, 1.0f};
  softmax_rows(b, 1, 2);
  EXPECT_NEAR(a[0], b[0], 1e-6f);
  EXPECT_NEAR(a[1], b[1], 1e-6f);
}

TEST(Ops, SumAccumulatesInDouble) {
  std::vector<float> v(1000, 0.1f);
  EXPECT_NEAR(sum(v), 100.0, 1e-3);
}

TEST(Ops, ArgmaxRowsPicksFirstMaximum) {
  std::vector<float> values = {0.1f, 0.9f, 0.3f, 0.7f, 0.7f, 0.1f};
  std::vector<std::size_t> out(2);
  argmax_rows(values, 2, 3, out);
  EXPECT_EQ(out[0], 1u);
  EXPECT_EQ(out[1], 0u);
}

}  // namespace
}  // namespace fftgrad::tensor
