// Property-based sweeps across the codec matrix and the FFT substrate:
// invariants that must hold for every (algorithm, gradient size, theta)
// combination, plus Fourier-analytic identities (conjugate symmetry, shift
// theorem, impulse/constant responses) that pin down the FFT implementation
// beyond round-trip checks.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "fftgrad/core/compression_stats.h"
#include "fftgrad/core/registry.h"
#include "fftgrad/fft/fft.h"
#include "fftgrad/util/rng.h"
#include "fftgrad/util/stats.h"

namespace fftgrad {
namespace {

std::vector<float> gradient_like(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> g(n);
  for (float& v : g) v = static_cast<float>(rng.normal(0.0, 0.02));
  return g;
}

double tensor_mean(std::span<const float> v) {
  double acc = 0.0;
  for (float x : v) acc += x;
  return acc / static_cast<double>(v.size());
}

// ---------------------------------------------------------------------------
// Codec matrix invariants

using CodecCase = std::tuple<const char*, std::size_t>;

class CodecMatrix : public ::testing::TestWithParam<CodecCase> {};

TEST_P(CodecMatrix, RoundTripInvariants) {
  const auto [spec, n] = GetParam();
  auto codec = core::make_compressor(spec);
  const auto g = gradient_like(n, n * 13 + 1);

  const core::Packet packet = codec->compress(g);
  // Invariant 1: the packet reports the right element count.
  EXPECT_EQ(packet.elements, n);
  // Invariant 2: ratio is consistent with wire size.
  if (!packet.bytes.empty()) {
    EXPECT_NEAR(packet.ratio(),
                static_cast<double>(n * 4) / static_cast<double>(packet.wire_bytes()), 1e-9);
  }
  // Invariant 3: decompression is deterministic.
  std::vector<float> a(n), b(n);
  codec->decompress(packet, a);
  codec->decompress(packet, b);
  EXPECT_EQ(a, b) << spec;
  // Invariant 4: reconstruction is finite everywhere.
  for (float v : a) ASSERT_TRUE(std::isfinite(v)) << spec;
  // Invariant 5: relative error is finite and non-negative.
  const double alpha = util::relative_error_alpha(g, a);
  EXPECT_GE(alpha, 0.0) << spec;
  EXPECT_TRUE(std::isfinite(alpha)) << spec;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CodecMatrix,
    ::testing::Combine(::testing::Values("none", "fp16", "onebit", "fft:theta=0.85,bits=10",
                                         "fft:theta=0.5,bits=0", "topk:theta=0.85",
                                         "qsgd:bits=3", "terngrad",
                                         "chunked:100[fft:theta=0.85,bits=10]"),
                       ::testing::Values(std::size_t{1}, std::size_t{2}, std::size_t{63},
                                         std::size_t{64}, std::size_t{257},
                                         std::size_t{1000})));

class ThetaSweep : public ::testing::TestWithParam<std::tuple<const char*, double>> {};

TEST_P(ThetaSweep, WireSizeShrinksMonotonicallyWithTheta) {
  const auto [algo, theta] = GetParam();
  const auto g = gradient_like(4096, 7);
  const std::string spec = std::string(algo) + ":theta=" + std::to_string(theta);
  const std::string spec_higher = std::string(algo) + ":theta=" + std::to_string(theta + 0.08);
  auto low = core::make_compressor(spec);
  auto high = core::make_compressor(spec_higher);
  EXPECT_GE(low->compress(g).wire_bytes(), high->compress(g).wire_bytes()) << spec;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ThetaSweep,
                         ::testing::Combine(::testing::Values("fft", "topk"),
                                            ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.85)));

TEST(CodecProperties, FftSparsificationIsNearIdempotent) {
  // Compressing an already-FFT-sparsified gradient again (no quantizer)
  // keeps nearly everything: its spectrum already has only (1-theta)*bins
  // non-trivial components. (fp16 re-rounding adds a little noise, so we
  // disable that stage here.)
  auto codec = core::make_compressor("fft:theta=0.85,bits=0,fp16=0");
  const auto g = gradient_like(2048, 9);
  std::vector<float> once(g.size()), twice(g.size());
  codec->decompress(codec->compress(g), once);
  codec->decompress(codec->compress(once), twice);
  const double first_err = util::relative_error_alpha(g, once);
  const double second_err = util::relative_error_alpha(once, twice);
  EXPECT_LT(second_err, first_err * 0.25);
}

TEST(CodecProperties, TopKIdempotent) {
  auto codec = core::make_compressor("topk:theta=0.85");
  const auto g = gradient_like(2048, 10);
  std::vector<float> once(g.size()), twice(g.size());
  codec->decompress(codec->compress(g), once);
  codec->decompress(codec->compress(once), twice);
  EXPECT_EQ(once, twice);  // exactly idempotent: survivors are exact copies
}

TEST(CodecProperties, ScalingGradientScalesFftReconstruction) {
  // The peak-normalized pipeline is (approximately) positively homogeneous.
  auto codec = core::make_compressor("fft:theta=0.5,bits=10");
  const auto g = gradient_like(1024, 11);
  std::vector<float> scaled(g.size());
  for (std::size_t i = 0; i < g.size(); ++i) scaled[i] = 8.0f * g[i];
  std::vector<float> r1(g.size()), r2(g.size());
  codec->decompress(codec->compress(g), r1);
  auto codec2 = core::make_compressor("fft:theta=0.5,bits=10");
  codec2->decompress(codec2->compress(scaled), r2);
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_NEAR(r2[i], 8.0f * r1[i], 0.05f * std::fabs(8.0f * r1[i]) + 1e-4f) << i;
  }
}

// ---------------------------------------------------------------------------
// Fourier-analytic identities

TEST(FftIdentities, RealSpectrumIsConjugateSymmetric) {
  const std::size_t n = 96;
  util::Rng rng(12);
  std::vector<fft::cfloat> signal(n);
  for (auto& v : signal) v = fft::cfloat(static_cast<float>(rng.normal()), 0.0f);
  const auto spectrum = fft::fft(signal);
  for (std::size_t k = 1; k < n; ++k) {
    EXPECT_NEAR(spectrum[k].real(), spectrum[n - k].real(), 1e-3f) << k;
    EXPECT_NEAR(spectrum[k].imag(), -spectrum[n - k].imag(), 1e-3f) << k;
  }
}

TEST(FftIdentities, TimeShiftMultipliesByPhase) {
  const std::size_t n = 64;
  util::Rng rng(13);
  std::vector<float> signal(n);
  for (float& v : signal) v = static_cast<float>(rng.normal());
  std::vector<float> shifted(n);
  for (std::size_t i = 0; i < n; ++i) shifted[i] = signal[(i + n - 1) % n];  // delay by 1
  const auto a = fft::rfft(signal);
  const auto b = fft::rfft(shifted);
  for (std::size_t k = 0; k < a.size(); ++k) {
    const double angle = -2.0 * 3.14159265358979323846 * static_cast<double>(k) / n;
    const fft::cfloat phase(static_cast<float>(std::cos(angle)),
                            static_cast<float>(std::sin(angle)));
    const fft::cfloat expected = a[k] * phase;
    EXPECT_NEAR(b[k].real(), expected.real(), 1e-3f) << k;
    EXPECT_NEAR(b[k].imag(), expected.imag(), 1e-3f) << k;
  }
}

TEST(FftIdentities, ConstantSignalIsPureDc) {
  std::vector<float> constant(40, 2.5f);
  const auto bins = fft::rfft(constant);
  EXPECT_NEAR(bins[0].real(), 100.0f, 1e-3f);
  for (std::size_t k = 1; k < bins.size(); ++k) {
    EXPECT_NEAR(std::abs(bins[k]), 0.0f, 1e-3f) << k;
  }
}

TEST(FftIdentities, ImpulseHasFlatSpectrum) {
  std::vector<float> impulse(33, 0.0f);
  impulse[0] = 1.0f;
  const auto bins = fft::rfft(impulse);
  for (std::size_t k = 0; k < bins.size(); ++k) {
    EXPECT_NEAR(bins[k].real(), 1.0f, 1e-4f) << k;
    EXPECT_NEAR(bins[k].imag(), 0.0f, 1e-4f) << k;
  }
}

TEST(FftIdentities, BluesteinMatchesRadix2OnCommonSizes) {
  // Force both code paths on the same data: n=64 runs radix-2; embed the
  // same signal in an n=64 transform computed via a size-65 plan minus
  // checking... simplest: compare rfft(64) against the naive O(n^2) already
  // covered; here instead check Bluestein self-consistency: parseval.
  const std::size_t n = 65;  // prime factor -> Bluestein
  util::Rng rng(14);
  std::vector<float> signal(n);
  double time_energy = 0.0;
  for (float& v : signal) {
    v = static_cast<float>(rng.normal());
    time_energy += static_cast<double>(v) * v;
  }
  const auto bins = fft::rfft(signal);
  double freq_energy = std::norm(bins[0]);
  for (std::size_t k = 1; k < bins.size(); ++k) freq_energy += 2.0 * std::norm(bins[k]);
  // odd n: no unpaired Nyquist bin
  freq_energy /= static_cast<double>(n);
  EXPECT_NEAR(freq_energy, time_energy, 1e-3 * time_energy);
}

// ---------------------------------------------------------------------------
// Statistical invariants of the codecs on structured inputs

TEST(Distributional, FftPreservesMeanOfGradient) {
  // DC is always among the largest bins for a non-centered gradient, so the
  // gradient mean survives compression almost exactly.
  auto codec = core::make_compressor("fft:theta=0.9,bits=10");
  util::Rng rng(15);
  std::vector<float> g(2048);
  for (float& v : g) v = static_cast<float>(rng.normal(0.01, 0.02));  // non-zero mean
  std::vector<float> recon(g.size());
  codec->decompress(codec->compress(g), recon);
  const double mean_g = tensor_mean(g);
  const double mean_r = tensor_mean(recon);
  EXPECT_NEAR(mean_r, mean_g, std::fabs(mean_g) * 0.02);
}

TEST(Distributional, TernGradPreservesMeanInExpectationOnly) {
  auto codec = core::make_compressor("terngrad:seed=77");
  util::Rng rng(16);
  std::vector<float> g(512);
  for (float& v : g) v = static_cast<float>(rng.normal(0.05, 0.02));
  std::vector<float> recon(g.size());
  double mean_acc = 0.0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    codec->decompress(codec->compress(g), recon);
    mean_acc += tensor_mean(recon) / trials;
  }
  EXPECT_NEAR(mean_acc, tensor_mean(g), 0.005);
}

}  // namespace
}  // namespace fftgrad
