#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "fftgrad/core/baseline_compressors.h"
#include "fftgrad/core/compression_stats.h"
#include "fftgrad/core/compressor.h"
#include "fftgrad/core/fft_compressor.h"
#include "fftgrad/core/theta_schedule.h"
#include "fftgrad/nn/gradient_sampler.h"
#include "fftgrad/util/rng.h"
#include "fftgrad/util/stats.h"

namespace fftgrad::core {
namespace {

std::vector<float> gradient_like(std::size_t n, std::uint64_t seed, double stddev = 0.02) {
  util::Rng rng(seed);
  std::vector<float> g(n);
  for (float& v : g) v = static_cast<float>(rng.normal(0.0, stddev));
  // A few heavy-tail entries, as real gradients have.
  for (std::size_t i = 0; i < n / 50 + 1; ++i) {
    g[rng.uniform_index(n)] = static_cast<float>(rng.normal(0.0, stddev * 10));
  }
  return g;
}

// ---------------------------------------------------------------------------
// Wire helpers

TEST(Wire, PutGetRoundTrip) {
  std::vector<std::uint8_t> bytes;
  wire::put<std::uint64_t>(bytes, 0x1122334455667788ull);
  wire::put<float>(bytes, 1.5f);
  std::vector<float> values = {1.0f, 2.0f, 3.0f};
  wire::put_span<float>(bytes, values);
  wire::Reader reader(bytes);
  EXPECT_EQ(reader.get<std::uint64_t>(), 0x1122334455667788ull);
  EXPECT_EQ(reader.get<float>(), 1.5f);
  std::vector<float> out(3);
  reader.get_span<float>(out);
  EXPECT_EQ(out, values);
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(Wire, ReaderRejectsTruncatedPacket) {
  std::vector<std::uint8_t> bytes = {1, 2};
  wire::Reader reader(bytes);
  EXPECT_THROW(reader.get<std::uint64_t>(), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Packet

TEST(Packet, RatioAgainstFloat32) {
  Packet p;
  p.elements = 100;
  p.bytes.resize(100);  // 400 raw bytes -> 100 wire bytes
  EXPECT_DOUBLE_EQ(p.ratio(), 4.0);
}

// ---------------------------------------------------------------------------
// NoopCompressor

TEST(Noop, IsLossless) {
  NoopCompressor codec;
  const auto g = gradient_like(1000, 1);
  std::vector<float> recon;
  const RoundTripStats stats = measure_round_trip(codec, g, recon);
  EXPECT_EQ(recon, g);
  EXPECT_DOUBLE_EQ(stats.alpha, 0.0);
  EXPECT_NEAR(stats.ratio, 1.0, 1e-9);
}

// ---------------------------------------------------------------------------
// TopKCompressor

TEST(TopK, KeepsExactlyTheConfiguredFraction) {
  TopKCompressor codec(0.9);
  const auto g = gradient_like(1000, 2);
  std::vector<float> recon(g.size());
  const Packet p = codec.compress(g);
  codec.decompress(p, recon);
  std::size_t nonzero = 0;
  for (float v : recon) nonzero += v != 0.0f;
  EXPECT_EQ(nonzero, 100u);
}

TEST(TopK, SurvivorsAreExactCopies) {
  TopKCompressor codec(0.85);
  const auto g = gradient_like(2000, 3);
  std::vector<float> recon(g.size());
  codec.decompress(codec.compress(g), recon);
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (recon[i] != 0.0f) {
      EXPECT_EQ(recon[i], g[i]) << i;
    }
  }
}

TEST(TopK, DroppedValuesAreTheSmallest) {
  TopKCompressor codec(0.5);
  const auto g = gradient_like(500, 4);
  std::vector<float> recon(g.size());
  codec.decompress(codec.compress(g), recon);
  float max_dropped = 0.0f, min_kept = 1e30f;
  for (std::size_t i = 0; i < g.size(); ++i) {
    const float mag = std::fabs(g[i]);
    if (recon[i] == 0.0f) {
      max_dropped = std::max(max_dropped, mag);
    } else {
      min_kept = std::min(min_kept, mag);
    }
  }
  EXPECT_LE(max_dropped, min_kept);
}

TEST(TopK, RatioApproachesTheoreticalBound) {
  // theta=0.85: values alone would give 6.67x; the bitmap overhead lowers it.
  TopKCompressor codec(0.85);
  const auto g = gradient_like(100000, 5);
  const Packet p = codec.compress(g);
  EXPECT_GT(p.ratio(), 4.0);
  EXPECT_LT(p.ratio(), 6.67);
}

TEST(TopK, SetThetaTakesEffect) {
  TopKCompressor codec(0.5);
  codec.set_theta(0.99);
  const auto g = gradient_like(1000, 6);
  std::vector<float> recon(g.size());
  codec.decompress(codec.compress(g), recon);
  std::size_t nonzero = 0;
  for (float v : recon) nonzero += v != 0.0f;
  EXPECT_EQ(nonzero, 10u);
}

TEST(TopK, RejectsInvalidTheta) {
  EXPECT_THROW(TopKCompressor(1.0), std::invalid_argument);
  EXPECT_THROW(TopKCompressor(-0.1), std::invalid_argument);
  TopKCompressor codec(0.5);
  EXPECT_THROW(codec.set_theta(1.5), std::invalid_argument);
}

TEST(TopK, EmptyGradient) {
  TopKCompressor codec(0.85);
  std::vector<float> empty;
  const Packet p = codec.compress(empty);
  EXPECT_EQ(p.elements, 0u);
  std::vector<float> out;
  codec.decompress(p, out);  // must not throw
}

// ---------------------------------------------------------------------------
// QsgdCompressor

TEST(Qsgd, ReconstructionIsUnbiasedInExpectation) {
  QsgdCompressor codec(3, /*seed=*/7);
  std::vector<float> g = {0.5f, -0.25f, 0.1f, 0.0f};
  std::vector<float> mean(g.size(), 0.0f);
  const int trials = 4000;
  std::vector<float> recon(g.size());
  for (int t = 0; t < trials; ++t) {
    codec.decompress(codec.compress(g), recon);
    for (std::size_t i = 0; i < g.size(); ++i) mean[i] += recon[i] / trials;
  }
  for (std::size_t i = 0; i < g.size(); ++i) EXPECT_NEAR(mean[i], g[i], 0.02) << i;
}

TEST(Qsgd, ValuesComeFromDiscreteSet) {
  QsgdCompressor codec(3, 8);
  const auto g = gradient_like(500, 8);
  const float norm = static_cast<float>(util::l2_norm(g));
  std::vector<float> recon(g.size());
  codec.decompress(codec.compress(g), recon);
  const float s = static_cast<float>(codec.levels());
  for (float v : recon) {
    const float level = std::fabs(v) / norm * s;
    EXPECT_NEAR(level, std::round(level), 1e-3f) << v;
  }
}

TEST(Qsgd, ZeroGradientStaysZero) {
  QsgdCompressor codec(3);
  std::vector<float> zeros(64, 0.0f);
  std::vector<float> recon(64);
  codec.decompress(codec.compress(zeros), recon);
  for (float v : recon) EXPECT_EQ(v, 0.0f);
}

TEST(Qsgd, WireSizeMatchesBitsPerElement) {
  QsgdCompressor codec(3);
  const auto g = gradient_like(8000, 9);
  const Packet p = codec.compress(g);
  // 8 bytes n + 4 bytes norm + ceil(3 * 8000 / 8) payload.
  EXPECT_EQ(p.wire_bytes(), 8u + 4u + 3000u);
  EXPECT_NEAR(p.ratio(), 32.0 / 3.0, 0.1);
}

TEST(Qsgd, RejectsBadBitWidths) {
  EXPECT_THROW(QsgdCompressor(1), std::invalid_argument);
  EXPECT_THROW(QsgdCompressor(17), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// TernGradCompressor

TEST(TernGrad, ValuesAreTernary) {
  TernGradCompressor codec(10);
  const auto g = gradient_like(1000, 10);
  float scale = 0.0f;
  for (float v : g) scale = std::max(scale, std::fabs(v));
  std::vector<float> recon(g.size());
  codec.decompress(codec.compress(g), recon);
  for (float v : recon) {
    EXPECT_TRUE(v == 0.0f || std::fabs(std::fabs(v) - scale) < 1e-6f) << v;
  }
}

TEST(TernGrad, ReconstructionIsUnbiasedInExpectation) {
  TernGradCompressor codec(11);
  std::vector<float> g = {0.4f, -0.2f, 0.0f, 1.0f};
  std::vector<float> mean(g.size(), 0.0f);
  std::vector<float> recon(g.size());
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    codec.decompress(codec.compress(g), recon);
    for (std::size_t i = 0; i < g.size(); ++i) mean[i] += recon[i] / trials;
  }
  for (std::size_t i = 0; i < g.size(); ++i) EXPECT_NEAR(mean[i], g[i], 0.05) << i;
}

TEST(TernGrad, CompressionRatioNearSixteen) {
  TernGradCompressor codec;
  const auto g = gradient_like(100000, 12);
  EXPECT_NEAR(codec.compress(g).ratio(), 16.0, 0.1);
}

TEST(TernGrad, RejectsOutOfCodeSpaceWireValue) {
  // Regression for a latent trust bug the Untrusted<T> refactor surfaced:
  // the ternary code space is {0, +1, -1} but the 2-bit wire field can
  // carry a 3, which the old decoder silently decoded as -scale. The
  // receiver-side validator must reject it as a TaintError (well-formed
  // bytes violating expectations), not std::runtime_error corruption.
  TernGradCompressor codec(13);
  std::vector<float> g = {0.5f, -0.5f, 0.25f, -0.25f};
  Packet packet = codec.compress(g);
  // Wire layout: uint64 element count, float scale, then the packed 2-bit
  // codes — four codes in the byte at offset 12. Force them all to 3.
  ASSERT_GT(packet.bytes.size(), 12u);
  packet.bytes[12] = 0xFF;
  std::vector<float> recon(g.size());
  EXPECT_THROW(codec.decompress(packet, recon), fftgrad::util::TaintError);
}

// ---------------------------------------------------------------------------
// FftCompressor

TEST(Fft, ReconstructionHasLowRelativeError) {
  FftCompressor codec({.theta = 0.5, .quantizer_bits = 10});
  const auto g = gradient_like(4096, 13);
  std::vector<float> recon;
  const RoundTripStats stats = measure_round_trip(codec, g, recon);
  EXPECT_LT(stats.alpha, 0.75);
  EXPECT_GT(stats.ratio, 3.0);
}

TEST(Fft, ThetaZeroWithoutQuantIsNearLossless) {
  FftCompressor codec({.theta = 0.0, .quantizer_bits = 0, .use_fp16_stage = false});
  const auto g = gradient_like(1024, 14);
  std::vector<float> recon;
  const RoundTripStats stats = measure_round_trip(codec, g, recon);
  EXPECT_LT(stats.alpha, 1e-4);
}

TEST(Fft, Fp16StageBoundsErrorWhenOtherwiseLossless) {
  FftCompressor codec({.theta = 0.0, .quantizer_bits = 0, .use_fp16_stage = true});
  const auto g = gradient_like(1024, 15);
  std::vector<float> recon;
  const RoundTripStats stats = measure_round_trip(codec, g, recon);
  EXPECT_LT(stats.alpha, 2e-3);  // fp16 keeps ~11 significant bits
}

class FftThetaSweep : public ::testing::TestWithParam<double> {};

TEST_P(FftThetaSweep, AlphaIsBelowOneAndGrowsWithTheta) {
  const double theta = GetParam();
  FftCompressor codec({.theta = theta, .quantizer_bits = 10});
  const auto g = gradient_like(8192, 16);
  std::vector<float> recon;
  const RoundTripStats stats = measure_round_trip(codec, g, recon);
  // Assumption 3.2: alpha in [0, 1] in practice.
  EXPECT_GE(stats.alpha, 0.0);
  EXPECT_LT(stats.alpha, 1.05);
}

INSTANTIATE_TEST_SUITE_P(Thetas, FftThetaSweep, ::testing::Values(0.1, 0.5, 0.85, 0.95, 0.99));

TEST(Fft, AlphaIncreasesMonotonicallyWithTheta) {
  const auto g = gradient_like(8192, 17);
  double previous = -1.0;
  for (double theta : {0.1, 0.5, 0.9, 0.99}) {
    FftCompressor codec({.theta = theta, .quantizer_bits = 0});
    std::vector<float> recon;
    const double alpha = measure_round_trip(codec, g, recon).alpha;
    EXPECT_GT(alpha, previous) << theta;
    previous = alpha;
  }
}

TEST(Fft, BeatsTopKReconstructionErrorAtSameTheta) {
  // The headline Fig 5 claim: at equal sparsity the FFT-domain truncation
  // preserves more of the gradient than spatial top-k. This holds on real
  // DNN gradients (whose spatial correlation the Fourier basis compacts);
  // on i.i.d. noise spatial top-k is L2-optimal by construction, so the
  // comparison must use a genuine training gradient, as the paper does
  // (it samples ResNet32 gradients).
  const std::vector<float> g = nn::sample_training_gradient(
      {.source = nn::GradientSource::kConvNet, .warm_iters = 10, .seed = 18});
  FftCompressor fft_codec({.theta = 0.85, .quantizer_bits = 0, .use_fp16_stage = false});
  TopKCompressor topk_codec(0.85);
  std::vector<float> recon;
  const double fft_err = measure_round_trip(fft_codec, g, recon).rms_error;
  const double topk_err = measure_round_trip(topk_codec, g, recon).rms_error;
  EXPECT_LT(fft_err, topk_err);
}

TEST(Fft, HigherCompressionRatioThanTopKAtSameTheta) {
  const auto g = gradient_like(100000, 19);
  FftCompressor fft_codec({.theta = 0.85, .quantizer_bits = 10});
  TopKCompressor topk_codec(0.85);
  EXPECT_GT(fft_codec.compress(g).ratio(), topk_codec.compress(g).ratio());
}

TEST(Fft, NonPowerOfTwoLengthsWork) {
  for (std::size_t n : {3u, 100u, 1001u, 4097u}) {
    FftCompressor codec({.theta = 0.5, .quantizer_bits = 10});
    const auto g = gradient_like(n, 20 + n);
    std::vector<float> recon;
    const RoundTripStats stats = measure_round_trip(codec, g, recon);
    EXPECT_TRUE(std::isfinite(stats.alpha)) << n;
  }
}

TEST(Fft, EmptyAndTinyGradients) {
  FftCompressor codec({.theta = 0.85, .quantizer_bits = 10});
  std::vector<float> empty;
  const Packet p0 = codec.compress(empty);
  EXPECT_EQ(p0.elements, 0u);
  std::vector<float> out0;
  codec.decompress(p0, out0);

  std::vector<float> one = {0.5f};
  std::vector<float> out1(1);
  codec.decompress(codec.compress(one), out1);
  EXPECT_NEAR(out1[0], 0.5f, 0.1f);
}

TEST(Fft, AllZeroGradientReconstructsToZero) {
  FftCompressor codec({.theta = 0.85, .quantizer_bits = 10});
  std::vector<float> zeros(512, 0.0f);
  std::vector<float> recon(512, 1.0f);
  codec.decompress(codec.compress(zeros), recon);
  for (float v : recon) EXPECT_EQ(v, 0.0f);
}

TEST(Fft, FrozenQuantizerPersistsAcrossCalls) {
  FftCompressor codec({.theta = 0.5, .quantizer_bits = 10, .freeze_quantizer = true});
  (void)codec.compress(gradient_like(1024, 21));
  ASSERT_TRUE(codec.quantizer().has_value());
  const float eps_before = codec.quantizer()->params().eps;
  (void)codec.compress(gradient_like(1024, 22, 0.5));  // very different scale
  EXPECT_EQ(codec.quantizer()->params().eps, eps_before);
}

TEST(Fft, PacketIsSelfContainedAcrossInstances) {
  // Decompress with a *fresh* compressor: all codec state must be in the
  // packet (receiver side of the wire).
  FftCompressor sender({.theta = 0.85, .quantizer_bits = 10});
  const auto g = gradient_like(4096, 23);
  const Packet p = sender.compress(g);
  FftCompressor receiver({.theta = 0.85, .quantizer_bits = 10});
  std::vector<float> recon(g.size());
  receiver.decompress(p, recon);
  EXPECT_LT(util::relative_error_alpha(g, recon), 1.0);
}

TEST(Fft, RejectsInvalidConfig) {
  EXPECT_THROW(FftCompressor({.theta = 1.0}), std::invalid_argument);
  EXPECT_THROW(FftCompressor({.theta = 0.5, .quantizer_bits = 2}), std::invalid_argument);
  FftCompressor codec({.theta = 0.5});
  EXPECT_THROW(codec.set_theta(-0.1), std::invalid_argument);
  std::vector<float> g(16);
  const Packet p = codec.compress(g);
  std::vector<float> wrong(15);
  EXPECT_THROW(codec.decompress(p, wrong), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Theta schedules

TEST(ThetaSchedule, FixedIsConstant) {
  FixedTheta sched(0.85);
  EXPECT_DOUBLE_EQ(sched.at(0, 0.01), 0.85);
  EXPECT_DOUBLE_EQ(sched.at(100, 1e-5), 0.85);
}

TEST(ThetaSchedule, StepDropsAtEpoch) {
  StepTheta sched(0.9, 0.0, 30);
  EXPECT_DOUBLE_EQ(sched.at(29, 0.01), 0.9);
  EXPECT_DOUBLE_EQ(sched.at(30, 0.01), 0.0);
}

TEST(ThetaSchedule, DiminishingFollowsTheoremRule) {
  // theta_t^2 = L * eta_t.
  DiminishingTheta sched(/*lipschitz=*/4.0, /*cap=*/0.95);
  EXPECT_NEAR(sched.at(0, 0.01), std::sqrt(4.0 * 0.01), 1e-12);
  EXPECT_NEAR(sched.at(5, 0.0001), std::sqrt(4.0 * 0.0001), 1e-12);
  // Cap engages for large LR.
  EXPECT_DOUBLE_EQ(sched.at(0, 10.0), 0.95);
}

}  // namespace
}  // namespace fftgrad::core
