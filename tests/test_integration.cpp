// Cross-module integration tests: compressed gradients flowing through the
// SimCluster's real collectives, end-to-end parity between the sequential
// trainer and an explicit multi-threaded BSP run, and full-pipeline
// invariants that span fft + quant + sparse + core.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <vector>

#include "fftgrad/comm/sim_cluster.h"
#include "fftgrad/core/baseline_compressors.h"
#include "fftgrad/core/compression_stats.h"
#include "fftgrad/core/fft_compressor.h"
#include "fftgrad/core/trainer.h"
#include "fftgrad/nn/loss.h"
#include "fftgrad/nn/models.h"
#include "fftgrad/util/stats.h"

namespace fftgrad::core {
namespace {

std::vector<float> gradient_like(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> g(n);
  for (float& v : g) v = static_cast<float>(rng.normal(0.0, 0.02));
  return g;
}

TEST(Integration, CompressedAllgatherAveragesAcrossRealRanks) {
  // Each rank compresses its own gradient, allgathers the packets through
  // the SimCluster, decompresses all peers' packets and averages — the
  // paper's exact BSP exchange. Every rank must land on the same average,
  // close to the true one.
  const std::size_t kRanks = 4;
  const std::size_t n = 2048;
  std::vector<std::vector<float>> gradients(kRanks);
  std::vector<float> true_mean(n, 0.0f);
  for (std::size_t r = 0; r < kRanks; ++r) {
    gradients[r] = gradient_like(n, 100 + r);
    for (std::size_t i = 0; i < n; ++i) true_mean[i] += gradients[r][i] / kRanks;
  }

  comm::SimCluster cluster(comm::NetworkModel::infiniband_fdr56());
  std::vector<std::vector<float>> averaged(kRanks);
  cluster.run(kRanks, [&](comm::RankContext& ctx) {
    FftCompressor codec({.theta = 0.5, .quantizer_bits = 10});
    const Packet packet = codec.compress(gradients[ctx.rank()]);

    // Serialize: element count + payload (the packet is self-describing).
    std::vector<std::uint8_t> wire;
    wire::put<std::uint64_t>(wire, packet.elements);
    wire::put_span<std::uint8_t>(wire, packet.bytes);
    const auto gathered = ctx.allgather(wire);

    std::vector<float> mean(n, 0.0f);
    std::vector<float> recon(n);
    for (const auto& peer_bytes : gathered) {
      wire::Reader reader(peer_bytes);
      Packet peer;
      peer.elements = static_cast<std::size_t>(reader.get<std::uint64_t>());
      peer.bytes.resize(reader.remaining());
      reader.get_span<std::uint8_t>(peer.bytes);
      codec.decompress(peer, recon);
      for (std::size_t i = 0; i < n; ++i) mean[i] += recon[i] / kRanks;
    }
    averaged[ctx.rank()] = std::move(mean);
  });

  // All ranks agree bit-exactly (identical reduction order)...
  for (std::size_t r = 1; r < kRanks; ++r) EXPECT_EQ(averaged[r], averaged[0]);
  // ...and the compressed average approximates the true average.
  EXPECT_LT(util::relative_error_alpha(true_mean, averaged[0]), 0.8);
}

TEST(Integration, SimClusterTimeMatchesNetworkModelFormulaForPackets) {
  const std::size_t kRanks = 3;
  comm::NetworkModel net{"test", util::SimSeconds(0.0), util::BytesPerSecond(1e6)};
  comm::SimCluster cluster(net);
  std::vector<std::size_t> packet_sizes(kRanks);
  const auto clocks = cluster.run(kRanks, [&](comm::RankContext& ctx) {
    TopKCompressor codec(0.9);
    const auto g = gradient_like(1000, 7 + ctx.rank());
    const Packet packet = codec.compress(g);
    packet_sizes[ctx.rank()] = packet.wire_bytes();
    (void)ctx.allgather(packet.bytes);
  });
  std::vector<util::Bytes> sizes;
  for (std::size_t s : packet_sizes) sizes.push_back(util::byte_count(s));
  const util::SimSeconds expected = net.allgatherv_time(sizes);
  for (util::SimSeconds t : clocks) {
    EXPECT_NEAR(t.to_double(), expected.to_double(), 1e-12);
  }
}

TEST(Integration, SequentialTrainerMatchesExplicitMultiRankRun) {
  // The DistributedTrainer runs ranks sequentially over one replica; this
  // test re-implements one BSP iteration with genuinely separate replicas
  // exchanging lossless gradients through the SimCluster and checks the
  // resulting parameters coincide.
  const std::size_t kRanks = 3;
  const std::uint64_t kSeed = 5;
  nn::SyntheticDataset data({8}, 2, 77);

  // --- explicit replicas through the cluster ---
  std::vector<std::vector<float>> rank_params(kRanks);
  comm::SimCluster cluster(comm::NetworkModel::infiniband_fdr56());
  cluster.run(kRanks, [&](comm::RankContext& ctx) {
    util::Rng init_rng(999);  // same init on every rank
    nn::Network net = nn::models::make_mlp(8, 8, 2, 2, init_rng);
    nn::SoftmaxCrossEntropy criterion;
    util::Rng batch_rng(kSeed * 7919 + ctx.rank());  // trainer's per-rank stream
    const nn::Batch batch = data.sample(16, batch_rng);
    net.zero_grad();
    criterion.forward(net.forward(batch.inputs), batch.labels);
    net.backward(criterion.backward());
    std::vector<float> grad(net.param_count());
    net.copy_gradients(grad);
    ctx.allreduce_sum(grad);
    for (float& v : grad) v /= static_cast<float>(kRanks);
    net.set_gradients(grad);
    nn::SgdOptimizer opt(0.9f);
    opt.step(net, 0.05f);
    rank_params[ctx.rank()].resize(net.param_count());
    net.copy_params(rank_params[ctx.rank()]);
  });
  for (std::size_t r = 1; r < kRanks; ++r) EXPECT_EQ(rank_params[r], rank_params[0]);

  // --- sequential trainer, one iteration, lossless ---
  util::Rng init_rng(999);
  nn::Network net = nn::models::make_mlp(8, 8, 2, 2, init_rng);
  TrainerConfig cfg;
  cfg.ranks = kRanks;
  cfg.batch_per_rank = 16;
  cfg.epochs = 1;
  cfg.iters_per_epoch = 1;
  cfg.test_size = 16;
  cfg.seed = kSeed;
  DistributedTrainer trainer(std::move(net), nn::SyntheticDataset({8}, 2, 77), cfg);
  nn::StepLrSchedule lr({{0, 0.05f}});
  trainer.train([](std::size_t) { return std::make_unique<NoopCompressor>(); },
                FixedTheta(0.0), lr);
  std::vector<float> trainer_params(trainer.model().param_count());
  trainer.model().copy_params(trainer_params);

  ASSERT_EQ(trainer_params.size(), rank_params[0].size());
  for (std::size_t i = 0; i < trainer_params.size(); ++i) {
    // allreduce-sum-then-divide vs scaled accumulation: identical op order
    // inside the trainer keeps these within float round-off.
    EXPECT_NEAR(trainer_params[i], rank_params[0][i], 1e-5f) << i;
  }
}

TEST(Integration, FullPipelineRatioAccountsForEveryStage) {
  // theta=0.85, 10-bit quantization: ratio must exceed plain top-k's 6.67x
  // value bound (quantization buys 32/10) but respect the status-vector
  // floor described in Fig 6.
  FftCompressor codec({.theta = 0.85, .quantizer_bits = 10});
  const auto g = gradient_like(1 << 18, 42);
  const Packet p = codec.compress(g);
  EXPECT_GT(p.ratio(), 8.0);
  EXPECT_LT(p.ratio(), 32.0);
}

TEST(Integration, DecompressionIsDeterministic) {
  FftCompressor codec({.theta = 0.85, .quantizer_bits = 10});
  const auto g = gradient_like(4096, 43);
  const Packet p = codec.compress(g);
  std::vector<float> a(g.size()), b(g.size());
  codec.decompress(p, a);
  codec.decompress(p, b);
  EXPECT_EQ(a, b);
}

TEST(Integration, AllCompressorsSatisfyAlphaBoundOnRealGradients) {
  // Assumption 3.2 (alpha in [0,1]) verified on a real model gradient for
  // the paper's own pipeline (FFT), top-k, and the lossless baseline. The
  // stochastic quantizers are unbiased but high-variance — QSGD's error
  // bound is min(n/s^2, sqrt(n)/s)*||v||^2, which exceeds ||v||^2 at these
  // dimensions — so for them alpha need only be finite.
  util::Rng rng(44);
  nn::Network net = nn::models::make_resnet_mini(8, 1, 4, rng);
  nn::SyntheticDataset data({3, 8, 8}, 4, 5);
  nn::SoftmaxCrossEntropy criterion;
  util::Rng batch_rng(6);
  const nn::Batch batch = data.sample(8, batch_rng);
  net.zero_grad();
  criterion.forward(net.forward(batch.inputs), batch.labels);
  net.backward(criterion.backward());
  std::vector<float> grad(net.param_count());
  net.copy_gradients(grad);

  struct Case {
    std::unique_ptr<GradientCompressor> codec;
    bool alpha_below_one;
  };
  std::vector<Case> cases;
  cases.push_back({std::make_unique<FftCompressor>(
                       FftCompressorOptions{.theta = 0.85, .quantizer_bits = 10}),
                   true});
  cases.push_back({std::make_unique<TopKCompressor>(0.85), true});
  cases.push_back({std::make_unique<NoopCompressor>(), true});
  cases.push_back({std::make_unique<QsgdCompressor>(3), false});
  cases.push_back({std::make_unique<TernGradCompressor>(), false});
  for (auto& c : cases) {
    std::vector<float> recon;
    const RoundTripStats stats = measure_round_trip(*c.codec, grad, recon);
    EXPECT_GE(stats.alpha, 0.0) << c.codec->name();
    EXPECT_TRUE(std::isfinite(stats.alpha)) << c.codec->name();
    if (c.alpha_below_one) {
      EXPECT_LE(stats.alpha, 1.0) << c.codec->name();
    }
    EXPECT_GE(stats.ratio, 0.99) << c.codec->name();
  }
}

}  // namespace
}  // namespace fftgrad::core
