#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "fftgrad/quant/half.h"
#include "fftgrad/quant/range_float.h"
#include "fftgrad/quant/simple_quantizers.h"
#include "fftgrad/util/rng.h"

namespace fftgrad::quant {
namespace {

// ---------------------------------------------------------------------------
// Half

TEST(Half, ExactValuesSurviveRoundTrip) {
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, -0.25f, 1024.0f, 0.0009765625f}) {
    EXPECT_EQ(half_to_float(float_to_half(v)), v) << v;
  }
}

TEST(Half, RelativeErrorBoundedForNormals) {
  util::Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const float v = static_cast<float>(rng.uniform(-10.0, 10.0));
    if (std::fabs(v) < 1e-3f) continue;
    const float r = half_to_float(float_to_half(v));
    // binary16 has 11 significand bits: relative error <= 2^-11.
    EXPECT_LE(std::fabs(r - v) / std::fabs(v), 1.0f / 2048.0f) << v;
  }
}

TEST(Half, OverflowSaturatesToInfinity) {
  EXPECT_TRUE(std::isinf(half_to_float(float_to_half(1e30f))));
  EXPECT_TRUE(std::isinf(half_to_float(float_to_half(-1e30f))));
  EXPECT_LT(half_to_float(float_to_half(-1e30f)), 0.0f);
}

TEST(Half, MaxHalfIsPreserved) {
  EXPECT_EQ(half_to_float(float_to_half(65504.0f)), 65504.0f);
}

TEST(Half, SubnormalsRoundTripApproximately) {
  const float tiny = 1e-6f;  // subnormal in binary16 (min normal ~6.1e-5)
  const float r = half_to_float(float_to_half(tiny));
  EXPECT_NEAR(r, tiny, 6e-8f);  // within one subnormal quantum (2^-24)
}

TEST(Half, UnderflowGoesToSignedZero) {
  EXPECT_EQ(half_to_float(float_to_half(1e-12f)), 0.0f);
  EXPECT_EQ(half_to_float(float_to_half(-1e-12f)), 0.0f);
  EXPECT_TRUE(std::signbit(half_to_float(float_to_half(-1e-12f))));
}

TEST(Half, NanPropagates) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(std::isnan(half_to_float(float_to_half(nan))));
}

TEST(Half, RoundsToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 and 1 + 2^-10; ties-to-even
  // rounds down to 1.0 (even mantissa).
  const float halfway = 1.0f + std::ldexp(1.0f, -11);
  EXPECT_EQ(half_to_float(float_to_half(halfway)), 1.0f);
  // Just above halfway must round up.
  const float above = 1.0f + std::ldexp(1.0f, -11) + std::ldexp(1.0f, -20);
  EXPECT_EQ(half_to_float(float_to_half(above)), 1.0f + std::ldexp(1.0f, -10));
}

TEST(Half, BulkConversionMatchesScalar) {
  util::Rng rng(2);
  std::vector<float> in(1000);
  for (float& v : in) v = static_cast<float>(rng.normal());
  std::vector<float> bulk(in.size());
  half_round_trip(in, bulk);
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(bulk[i], half_to_float(float_to_half(in[i])));
  }
}

TEST(Half, BulkRejectsSizeMismatch) {
  std::vector<float> in(4), out(5);
  EXPECT_THROW(half_round_trip(in, out), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// RangeFloat

TEST(RangeFloat, ZeroMapsToCodeZeroAndBack) {
  const RangeFloat codec = RangeFloat::tune(10, -1.0f, 1.0f);
  EXPECT_EQ(codec.encode(0.0f), 0u);
  EXPECT_EQ(codec.decode(0), 0.0f);
}

TEST(RangeFloat, CodeSpaceSplitsBetweenSigns) {
  const RangeFloat codec = RangeFloat::tune(10, -1.0f, 1.0f);
  EXPECT_EQ(codec.code_count(), 1024u);
  // Zero + positives + negatives fill the code space (up to the rounding
  // of the eps search, which may leave a couple of codes unused).
  EXPECT_LE(codec.positive_codes() + codec.negative_codes() + 1, codec.code_count());
  EXPECT_GE(codec.positive_codes() + codec.negative_codes() + 3, codec.code_count());
  // Symmetric range: balanced split (paper: P converges to 2^N / 2).
  EXPECT_NEAR(static_cast<double>(codec.positive_codes()), 512.0, 2.0);
}

TEST(RangeFloat, AllOnesCodeDecodesNearMin) {
  const RangeFloat codec = RangeFloat::tune(10, -1.0f, 1.0f);
  // The paper's tuning criterion: decompressing 1..1 lands on `min`.
  EXPECT_NEAR(codec.actual_min(), -1.0f, 0.05f);
  EXPECT_NEAR(codec.actual_max(), 1.0f, 0.05f);
}

TEST(RangeFloat, EncodeDecodeIsIdempotent) {
  const RangeFloat codec = RangeFloat::tune(10, -1.0f, 1.0f);
  util::Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    const float v = static_cast<float>(rng.uniform(-1.0, 1.0));
    const float once = codec.decode(codec.encode(v));
    const float twice = codec.decode(codec.encode(once));
    EXPECT_EQ(once, twice) << v;  // representable values are fixed points
  }
}

TEST(RangeFloat, DecodedValuesPreserveSign) {
  const RangeFloat codec = RangeFloat::tune(8, -0.5f, 0.5f);
  util::Rng rng(4);
  for (int i = 0; i < 2000; ++i) {
    const float v = static_cast<float>(rng.normal(0.0, 0.2));
    const float r = codec.decode(codec.encode(v));
    if (r != 0.0f) {
      EXPECT_EQ(v > 0.0f, r > 0.0f) << v;
    }
  }
}

TEST(RangeFloat, RelativeErrorBoundedByMantissaWidth) {
  const RangeFloat codec = RangeFloat::tune(12, -1.0f, 1.0f);
  const int m = codec.params().mantissa_bits;
  util::Rng rng(5);
  int represented = 0;
  for (int i = 0; i < 5000; ++i) {
    const float v = static_cast<float>(rng.uniform(-1.0, 1.0));
    const float r = codec.decode(codec.encode(v));
    if (r == 0.0f) continue;  // underflowed below eps
    ++represented;
    // Truncating to m mantissa bits gives relative error < 2^-m.
    EXPECT_LE(std::fabs(r - v) / std::fabs(v), std::ldexp(1.0f, -m) * 1.001f) << v;
  }
  EXPECT_GT(represented, 4000);
}

TEST(RangeFloat, SaturatesOutsideRange) {
  const RangeFloat codec = RangeFloat::tune(10, -1.0f, 1.0f);
  const float high = codec.decode(codec.encode(100.0f));
  const float low = codec.decode(codec.encode(-100.0f));
  EXPECT_LE(high, codec.actual_max() * 1.0001f);
  EXPECT_GE(low, codec.actual_min() * 1.0001f);
  EXPECT_GT(high, 0.9f);
  EXPECT_LT(low, -0.9f);
}

TEST(RangeFloat, UnderflowsToZeroBelowEps) {
  const RangeFloat codec = RangeFloat::tune(10, -1.0f, 1.0f);
  const float eps = codec.params().eps;
  EXPECT_EQ(codec.decode(codec.encode(eps * 0.4f)), 0.0f);
  EXPECT_NE(codec.decode(codec.encode(eps * 2.0f)), 0.0f);
}

TEST(RangeFloat, MonotoneOverPositives) {
  const RangeFloat codec = RangeFloat::tune(10, -1.0f, 1.0f);
  float prev = 0.0f;
  for (std::uint32_t c = 1; c <= codec.positive_codes(); ++c) {
    const float v = codec.decode(c);
    EXPECT_GT(v, prev) << "code " << c;
    prev = v;
  }
}

TEST(RangeFloat, MonotoneOverNegatives) {
  const RangeFloat codec = RangeFloat::tune(10, -1.0f, 1.0f);
  float prev = 0.0f;
  const std::uint32_t last = codec.positive_codes() + codec.negative_codes();
  for (std::uint32_t c = codec.positive_codes() + 1; c <= last; ++c) {
    const float v = codec.decode(c);
    EXPECT_LT(v, prev) << "code " << c;
    prev = v;
  }
}

TEST(RangeFloat, SpacingDoublesEveryTwoToTheM) {
  // The paper's key density property: diff doubles after 2^m codes, giving
  // a Gaussian-like distribution of representable values.
  RangeFloatParams params;
  params.bits = 10;
  params.mantissa_bits = 4;
  params.min = -1.0f;
  params.max = 1.0f;
  params.eps = 0.001f;
  const RangeFloat codec(params);
  const std::uint32_t m_codes = 16;  // 2^4
  // Pick an exponent-aligned run well inside the positive range.
  const float d1 = codec.decode(2 * m_codes + 2) - codec.decode(2 * m_codes + 1);
  const float d2 = codec.decode(3 * m_codes + 2) - codec.decode(3 * m_codes + 1);
  EXPECT_FLOAT_EQ(d2, 2.0f * d1);
}

TEST(RangeFloat, DensityConcentratesNearZero) {
  const RangeFloat codec = RangeFloat::tune(10, -1.0f, 1.0f);
  const auto values = codec.representable_values();
  std::size_t near = 0, far = 0;
  for (float v : values) {
    const float a = std::fabs(v);
    if (a > 0.0f && a < 0.1f) ++near;
    if (a >= 0.9f) ++far;
  }
  EXPECT_GT(near, 4 * far);  // far more representable values near zero
}

TEST(RangeFloat, TuneRespectsAsymmetricRange) {
  const RangeFloat codec = RangeFloat::tune(10, -0.25f, 1.0f, {});
  EXPECT_NEAR(codec.actual_min(), -0.25f, 0.05f);
  EXPECT_NEAR(codec.actual_max(), 1.0f, 0.05f);
  EXPECT_GT(codec.positive_codes(), codec.negative_codes());
}

TEST(RangeFloat, TuneWithSamplePicksLowErrorMantissa) {
  util::Rng rng(6);
  std::vector<float> sample(4000);
  for (float& v : sample) v = static_cast<float>(rng.normal(0.0, 0.05));
  const RangeFloat tuned = RangeFloat::tune(10, -1.0f, 1.0f, sample);
  // Tuned codec should beat a deliberately bad fixed-m codec on the sample.
  RangeFloatParams bad_params = tuned.params();
  bad_params.mantissa_bits = 1;
  bad_params.eps = 0.002f;
  const RangeFloat bad(bad_params);
  double tuned_err = 0.0, bad_err = 0.0;
  for (float v : sample) {
    const double dt = v - tuned.decode(tuned.encode(v));
    const double db = v - bad.decode(bad.encode(v));
    tuned_err += dt * dt;
    bad_err += db * db;
  }
  EXPECT_LE(tuned_err, bad_err);
}

TEST(RangeFloat, RejectsInvalidConfigs) {
  EXPECT_THROW(RangeFloat::tune(2, -1.0f, 1.0f), std::invalid_argument);
  EXPECT_THROW(RangeFloat::tune(10, 0.5f, 1.0f), std::invalid_argument);   // min >= 0
  EXPECT_THROW(RangeFloat::tune(10, -1.0f, -0.5f), std::invalid_argument); // max <= 0
  RangeFloatParams p;
  p.bits = 10;
  p.mantissa_bits = 4;
  p.min = -1.0f;
  p.max = 1.0f;
  p.eps = 2.0f;  // eps above max
  EXPECT_THROW(RangeFloat{p}, std::invalid_argument);
}

TEST(RangeFloat, NanEncodesToZero) {
  const RangeFloat codec = RangeFloat::tune(10, -1.0f, 1.0f);
  EXPECT_EQ(codec.encode(std::numeric_limits<float>::quiet_NaN()), 0u);
}

class RangeFloatBits : public ::testing::TestWithParam<int> {};

TEST_P(RangeFloatBits, MedianCoordinateErrorBeatsUniformAtLowWidths) {
  // What the paper's design optimizes (Figs 7/15e): precision where the
  // data mass is. For zero-peaked gradient-like data the range float's
  // *median* per-coordinate error beats a same-width uniform quantizer —
  // most coordinates are small and get log-scale resolution. (Uniform wins
  // worst-case/p99 error by construction; see bench_fig07 for the full
  // quantile picture.)
  const int bits = GetParam();
  util::Rng rng(7);
  std::vector<float> sample(4000);
  for (float& v : sample) v = static_cast<float>(rng.normal(0.0, 0.1));
  const RangeFloat codec = RangeFloat::tune(bits, -1.0f, 1.0f, sample);
  const UniformQuantizer uniform(bits, -1.0f, 1.0f);
  std::vector<double> ranged_err, uniform_err;
  for (float v : sample) {
    ranged_err.push_back(std::fabs(v - codec.decode(codec.encode(v))));
    uniform_err.push_back(std::fabs(v - uniform.decode(uniform.encode(v))));
  }
  std::sort(ranged_err.begin(), ranged_err.end());
  std::sort(uniform_err.begin(), uniform_err.end());
  const std::size_t mid = sample.size() / 2;
  if (bits <= 10) {
    EXPECT_LT(ranged_err[mid], uniform_err[mid]) << "bits=" << bits;
  }
  // At any width the median error stays within 2x of uniform's.
  EXPECT_LT(ranged_err[mid], 2.0 * uniform_err[mid]) << "bits=" << bits;
}

TEST(RangeFloatBitsMonotone, ErrorDecreasesWithWidth) {
  util::Rng rng(8);
  std::vector<float> sample(4000);
  for (float& v : sample) v = static_cast<float>(rng.normal(0.0, 0.1));
  double previous = std::numeric_limits<double>::infinity();
  for (int bits : {6, 8, 10, 12, 14}) {
    const RangeFloat codec = RangeFloat::tune(bits, -1.0f, 1.0f, sample);
    double err = 0.0;
    for (float v : sample) {
      const double d = v - codec.decode(codec.encode(v));
      err += d * d;
    }
    EXPECT_LE(err, previous) << "bits=" << bits;
    previous = err;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, RangeFloatBits, ::testing::Values(6, 8, 10, 12, 14, 16));

// ---------------------------------------------------------------------------
// Code packing

TEST(PackCodes, RoundTripsExactly) {
  util::Rng rng(8);
  for (int bits : {1, 2, 3, 7, 8, 10, 13, 16, 24, 32}) {
    std::vector<std::uint32_t> codes(257);
    const std::uint64_t mask = bits == 32 ? 0xffffffffull : ((1ull << bits) - 1);
    for (auto& c : codes) c = static_cast<std::uint32_t>(rng.next_u64() & mask);
    const auto bytes = pack_codes(codes, bits);
    EXPECT_EQ(bytes.size(), (codes.size() * static_cast<std::size_t>(bits) + 7) / 8);
    const auto unpacked = unpack_codes(bytes, bits, codes.size())
                              .release([&](const std::vector<std::uint32_t>& c) {
                                return c.size() == codes.size();
                              }, "round-trip codes");
    EXPECT_EQ(unpacked, codes) << "bits=" << bits;
  }
}

TEST(PackCodes, EmptyInputYieldsEmptyOutput) {
  EXPECT_TRUE(pack_codes({}, 10).empty());
  EXPECT_TRUE(unpack_codes({}, 10, 0)
                  .release([](const std::vector<std::uint32_t>& c) { return c.empty(); },
                           "empty codes")
                  .empty());
}

TEST(PackCodes, UnpackRejectsShortStream) {
  std::vector<std::uint8_t> bytes(2);
  EXPECT_THROW((void)unpack_codes(bytes, 10, 3), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// UniformQuantizer / IeeeNbitQuantizer

TEST(UniformQuantizer, ErrorBoundedByHalfBin) {
  UniformQuantizer q(8, -1.0f, 1.0f);
  const float bin = 2.0f / 256.0f;
  util::Rng rng(9);
  for (int i = 0; i < 2000; ++i) {
    const float v = static_cast<float>(rng.uniform(-1.0, 1.0));
    EXPECT_LE(std::fabs(q.decode(q.encode(v)) - v), bin / 2.0f + 1e-6f);
  }
}

TEST(UniformQuantizer, ClampsOutOfRange) {
  UniformQuantizer q(4, -1.0f, 1.0f);
  EXPECT_EQ(q.encode(5.0f), q.code_count() - 1);
  EXPECT_EQ(q.encode(-5.0f), 0u);
}

TEST(UniformQuantizer, RepresentablesAreUniformlySpaced) {
  UniformQuantizer q(4, 0.0f, 16.0f);
  const auto values = q.representable_values();
  ASSERT_EQ(values.size(), 16u);
  for (std::size_t i = 1; i < values.size(); ++i) {
    EXPECT_FLOAT_EQ(values[i] - values[i - 1], 1.0f);
  }
}

TEST(IeeeNbit, HalfConfigMatchesBinary16Constants) {
  IeeeNbitQuantizer q(16, 5);
  EXPECT_EQ(q.mantissa_bits(), 10);
  EXPECT_FLOAT_EQ(q.max_value(), 65504.0f);
  EXPECT_FLOAT_EQ(q.min_normal(), 6.103515625e-05f);
}

TEST(IeeeNbit, RoundTripKeepsRepresentableValues) {
  IeeeNbitQuantizer q(8, 4);
  for (float v : q.representable_values()) {
    EXPECT_FLOAT_EQ(q.round_trip(v), v);
    EXPECT_FLOAT_EQ(q.round_trip(-v), -v);
  }
}

TEST(IeeeNbit, SaturatesAtMaxValue) {
  IeeeNbitQuantizer q(8, 4);
  EXPECT_FLOAT_EQ(q.round_trip(1e10f), q.max_value());
  EXPECT_FLOAT_EQ(q.round_trip(-1e10f), -q.max_value());
}

TEST(IeeeNbit, RejectsDegenerateFieldSplit) {
  EXPECT_THROW(IeeeNbitQuantizer(8, 7), std::invalid_argument);
  EXPECT_THROW(IeeeNbitQuantizer(8, 0), std::invalid_argument);
}

}  // namespace
}  // namespace fftgrad::quant
