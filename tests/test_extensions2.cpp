// Tests for the second wave of extensions: new layers (LeakyReLU, Tanh,
// Dropout, GlobalAvgPool2d, InceptionBlock), the VGG/Inception model
// factories, chunked compression, the compressor registry, RangeFloat's
// round-to-nearest mode, and the hierarchical network model.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "fftgrad/comm/hierarchical_model.h"
#include "fftgrad/core/baseline_compressors.h"
#include "fftgrad/core/chunked_compressor.h"
#include "fftgrad/core/compression_stats.h"
#include "fftgrad/core/error_feedback.h"
#include "fftgrad/core/fft_compressor.h"
#include "fftgrad/core/registry.h"
#include "fftgrad/nn/layers.h"
#include "fftgrad/nn/loss.h"
#include "fftgrad/nn/models.h"
#include "fftgrad/quant/range_float.h"
#include "fftgrad/util/rng.h"

namespace fftgrad {
namespace {

// ---------------------------------------------------------------------------
// New layers

/// Minimal central-difference check for stateless activations.
void check_activation_gradient(nn::Layer& layer, float h = 1e-3f, float tol = 1e-2f) {
  util::Rng rng(50);
  tensor::Tensor x = tensor::Tensor::randn({2, 6}, rng);
  tensor::Tensor weights = tensor::Tensor::randn({2, 6}, rng);
  layer.forward(x);
  const tensor::Tensor grad_in = layer.backward(weights);
  for (std::size_t i = 0; i < x.size(); ++i) {
    tensor::Tensor up = x, down = x;
    up[i] += h;
    down[i] -= h;
    double f_up = 0.0, f_down = 0.0;
    const tensor::Tensor yu = layer.forward(up);
    for (std::size_t j = 0; j < yu.size(); ++j) f_up += static_cast<double>(yu[j]) * weights[j];
    const tensor::Tensor yd = layer.forward(down);
    for (std::size_t j = 0; j < yd.size(); ++j) f_down += static_cast<double>(yd[j]) * weights[j];
    const double numeric = (f_up - f_down) / (2.0 * h);
    // Re-prime the cache for the next coordinate's backward consistency.
    layer.forward(x);
    EXPECT_NEAR(grad_in[i], numeric, tol) << "coord " << i;
  }
}

TEST(LeakyReLU, ForwardKeepsSlopeOnNegatives) {
  nn::LeakyReLU layer(0.1f);
  tensor::Tensor x({1, 3});
  x[0] = -2.0f;
  x[1] = 0.0f;
  x[2] = 3.0f;
  const tensor::Tensor y = layer.forward(x);
  EXPECT_FLOAT_EQ(y[0], -0.2f);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 3.0f);
}

TEST(LeakyReLU, GradientMatchesNumeric) {
  nn::LeakyReLU layer(0.05f);
  check_activation_gradient(layer);
}

TEST(TanhLayer, ForwardMatchesStdTanh) {
  nn::Tanh layer;
  tensor::Tensor x({1, 2});
  x[0] = 0.5f;
  x[1] = -1.5f;
  const tensor::Tensor y = layer.forward(x);
  EXPECT_FLOAT_EQ(y[0], std::tanh(0.5f));
  EXPECT_FLOAT_EQ(y[1], std::tanh(-1.5f));
}

TEST(TanhLayer, GradientMatchesNumeric) {
  nn::Tanh layer;
  check_activation_gradient(layer, 1e-3f, 2e-2f);
}

TEST(DropoutLayer, EvalModeIsIdentity) {
  nn::Dropout layer(0.5f, 1);
  layer.set_training(false);
  util::Rng rng(51);
  tensor::Tensor x = tensor::Tensor::randn({4, 8}, rng);
  const tensor::Tensor y = layer.forward(x);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(y[i], x[i]);
}

TEST(DropoutLayer, TrainingPreservesExpectation) {
  nn::Dropout layer(0.3f, 2);
  tensor::Tensor x = tensor::Tensor::full({1, 2000}, 1.0f);
  double total = 0.0;
  const int rounds = 20;
  for (int r = 0; r < rounds; ++r) {
    const tensor::Tensor y = layer.forward(x);
    for (std::size_t i = 0; i < y.size(); ++i) total += y[i];
  }
  // Inverted dropout: E[y] = x.
  EXPECT_NEAR(total / (rounds * 2000.0), 1.0, 0.03);
}

TEST(DropoutLayer, BackwardUsesSameMask) {
  nn::Dropout layer(0.5f, 3);
  tensor::Tensor x = tensor::Tensor::full({1, 100}, 1.0f);
  const tensor::Tensor y = layer.forward(x);
  tensor::Tensor dy = tensor::Tensor::full({1, 100}, 1.0f);
  const tensor::Tensor dx = layer.backward(dy);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(dx[i], y[i]);  // both equal the mask value
  }
}

TEST(DropoutLayer, RejectsProbabilityOne) {
  EXPECT_THROW(nn::Dropout(1.0f, 4), std::invalid_argument);
}

TEST(GlobalAvgPool, ForwardAveragesPlanes) {
  nn::GlobalAvgPool2d layer;
  tensor::Tensor x({1, 2, 2, 2});
  for (std::size_t i = 0; i < 4; ++i) x[i] = static_cast<float>(i);        // ch 0: 0..3
  for (std::size_t i = 4; i < 8; ++i) x[i] = 10.0f;                        // ch 1
  const tensor::Tensor y = layer.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{1, 2}));
  EXPECT_FLOAT_EQ(y[0], 1.5f);
  EXPECT_FLOAT_EQ(y[1], 10.0f);
}

TEST(GlobalAvgPool, BackwardSpreadsUniformly) {
  nn::GlobalAvgPool2d layer;
  util::Rng rng(52);
  tensor::Tensor x = tensor::Tensor::randn({2, 3, 4, 4}, rng);
  layer.forward(x);
  tensor::Tensor dy = tensor::Tensor::full({2, 3}, 16.0f);
  const tensor::Tensor dx = layer.backward(dy);
  for (std::size_t i = 0; i < dx.size(); ++i) EXPECT_FLOAT_EQ(dx[i], 1.0f);
}

TEST(Inception, OutputConcatenatesThreeBranches) {
  util::Rng rng(53);
  nn::InceptionBlock block(3, 4, rng);
  tensor::Tensor x = tensor::Tensor::randn({2, 3, 6, 6}, rng);
  const tensor::Tensor y = block.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{2, 12, 6, 6}));
  EXPECT_EQ(block.out_channels(), 12u);
}

TEST(Inception, BackwardShapeAndFiniteness) {
  util::Rng rng(54);
  nn::InceptionBlock block(2, 3, rng);
  tensor::Tensor x = tensor::Tensor::randn({1, 2, 4, 4}, rng);
  const tensor::Tensor y = block.forward(x);
  tensor::Tensor dy = tensor::Tensor::full(y.shape(), 0.5f);
  const tensor::Tensor dx = block.backward(dy);
  EXPECT_EQ(dx.shape(), x.shape());
  for (std::size_t i = 0; i < dx.size(); ++i) EXPECT_TRUE(std::isfinite(dx[i]));
  // All six sub-layers contribute parameters (3 convs + 3 batchnorms).
  EXPECT_EQ(block.params().size(), 12u);
}

TEST(Inception, EndToEndTrainingStepRuns) {
  util::Rng rng(55);
  nn::Network net = nn::models::make_inception_mini(8, 2, 4, rng);
  nn::SoftmaxCrossEntropy criterion;
  tensor::Tensor x = tensor::Tensor::randn({2, 3, 8, 8}, rng);
  std::vector<std::size_t> labels = {0, 3};
  net.zero_grad();
  const double loss = criterion.forward(net.forward(x), labels);
  EXPECT_TRUE(std::isfinite(loss));
  net.backward(criterion.backward());
  std::vector<float> grads(net.param_count());
  net.copy_gradients(grads);
  double norm = 0.0;
  for (float g : grads) norm += static_cast<double>(g) * g;
  EXPECT_GT(norm, 0.0);
}

TEST(Models, VggMiniShapesAndParams) {
  util::Rng rng(56);
  nn::Network net = nn::models::make_vgg_mini(8, 6, rng);
  tensor::Tensor x = tensor::Tensor::randn({2, 3, 8, 8}, rng);
  EXPECT_EQ(net.forward(x).shape(), (std::vector<std::size_t>{2, 6}));
  EXPECT_GT(net.param_count(), 10000u);
}

// ---------------------------------------------------------------------------
// ChunkedCompressor

core::ChunkedCompressor::InnerFactory fft_chunk_factory() {
  return [](std::size_t) {
    return std::make_unique<core::FftCompressor>(
        core::FftCompressorOptions{.theta = 0.5, .quantizer_bits = 10});
  };
}

std::vector<float> gradient_like(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> g(n);
  for (float& v : g) v = static_cast<float>(rng.normal(0.0, 0.02));
  return g;
}

TEST(Chunked, RoundTripReconstructsEveryChunk) {
  core::ChunkedCompressor codec(fft_chunk_factory(), 1000);
  const auto g = gradient_like(3500, 60);  // 4 chunks, last partial
  std::vector<float> recon;
  const core::RoundTripStats stats = core::measure_round_trip(codec, g, recon);
  EXPECT_EQ(codec.chunk_count(), 4u);
  EXPECT_LT(stats.alpha, 1.0);
}

TEST(Chunked, ExactChunkMultiple) {
  core::ChunkedCompressor codec(fft_chunk_factory(), 512);
  const auto g = gradient_like(1024, 61);
  std::vector<float> recon(g.size());
  codec.decompress(codec.compress(g), recon);
  EXPECT_EQ(codec.chunk_count(), 2u);
}

TEST(Chunked, SingleChunkMatchesInnerCodec) {
  const auto g = gradient_like(800, 62);
  core::ChunkedCompressor chunked(fft_chunk_factory(), 100000);
  core::FftCompressor whole({.theta = 0.5, .quantizer_bits = 10});
  std::vector<float> a(g.size()), b(g.size());
  chunked.decompress(chunked.compress(g), a);
  whole.decompress(whole.compress(g), b);
  EXPECT_EQ(a, b);
}

TEST(Chunked, EmptyGradient) {
  core::ChunkedCompressor codec(fft_chunk_factory(), 128);
  std::vector<float> empty;
  const core::Packet p = codec.compress(empty);
  std::vector<float> out;
  codec.decompress(p, out);
  EXPECT_EQ(p.elements, 0u);
}

TEST(Chunked, ThetaPropagatesToAllChunks) {
  core::ChunkedCompressor codec(fft_chunk_factory(), 256);
  (void)codec.compress(gradient_like(1024, 63));
  codec.set_theta(0.9);
  EXPECT_DOUBLE_EQ(codec.theta(), 0.9);
  // New chunks created after set_theta inherit it too.
  (void)codec.compress(gradient_like(2048, 64));
  EXPECT_DOUBLE_EQ(codec.theta(), 0.9);
}

TEST(Chunked, PerChunkStateIsIndependent) {
  // Error-feedback inside chunking: residuals must be tracked per chunk.
  core::ChunkedCompressor codec(
      [](std::size_t) {
        return std::make_unique<core::ErrorFeedbackCompressor>(
            std::make_unique<core::TopKCompressor>(0.9));
      },
      500);
  const auto g = gradient_like(1000, 65);
  std::vector<float> sum(g.size(), 0.0f), recon(g.size());
  const int steps = 80;
  for (int t = 0; t < steps; ++t) {
    codec.decompress(codec.compress(g), recon);
    for (std::size_t i = 0; i < g.size(); ++i) sum[i] += recon[i] / steps;
  }
  for (std::size_t i = 0; i < g.size(); ++i) EXPECT_NEAR(sum[i], g[i], 3e-3f) << i;
}

TEST(Chunked, RejectsBadConfig) {
  EXPECT_THROW(core::ChunkedCompressor(nullptr, 10), std::invalid_argument);
  EXPECT_THROW(core::ChunkedCompressor(fft_chunk_factory(), 0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Registry

TEST(Registry, BuildsEveryBaseAlgorithm) {
  EXPECT_EQ(core::make_compressor("none")->name(), "sgd-fp32");
  EXPECT_NE(core::make_compressor("fft")->name().find("fft"), std::string::npos);
  EXPECT_NE(core::make_compressor("topk")->name().find("topk"), std::string::npos);
  EXPECT_NE(core::make_compressor("qsgd")->name().find("qsgd"), std::string::npos);
  EXPECT_EQ(core::make_compressor("terngrad")->name(), "terngrad");
}

TEST(Registry, AppliesOptions) {
  auto fft = core::make_compressor("fft:theta=0.5,bits=8");
  EXPECT_DOUBLE_EQ(fft->theta(), 0.5);
  auto topk = core::make_compressor("topk:theta=0.97");
  EXPECT_DOUBLE_EQ(topk->theta(), 0.97);
  auto qsgd = core::make_compressor("qsgd:bits=5");
  EXPECT_NE(qsgd->name().find("5bit"), std::string::npos);
}

TEST(Registry, BuildsWrappedSpecs) {
  auto ef = core::make_compressor("ef[topk:theta=0.9]");
  EXPECT_EQ(ef->name(), "ef[topk(theta=0.900000)]");
  auto chunked = core::make_compressor("chunked:4096[fft:theta=0.85,bits=10]");
  const auto g = gradient_like(10000, 70);
  std::vector<float> recon(g.size());
  chunked->decompress(chunked->compress(g), recon);
  EXPECT_NE(chunked->name().find("chunked(4096)"), std::string::npos);
}

TEST(Registry, NestedWrappersCompose) {
  auto codec = core::make_compressor("chunked:1000[ef[fft:theta=0.9,bits=10]]");
  const auto g = gradient_like(2500, 71);
  std::vector<float> recon;
  const core::RoundTripStats stats = core::measure_round_trip(*codec, g, recon);
  EXPECT_TRUE(std::isfinite(stats.alpha));
}

TEST(Registry, RoundTripsThroughBuiltCodecs) {
  for (const char* spec : {"none", "fft:theta=0.85,bits=10", "topk:theta=0.85",
                           "qsgd:bits=3", "terngrad", "ef[fft:theta=0.9,bits=8]"}) {
    auto codec = core::make_compressor(spec);
    const auto g = gradient_like(2048, 72);
    std::vector<float> recon;
    const core::RoundTripStats stats = core::measure_round_trip(*codec, g, recon);
    EXPECT_TRUE(std::isfinite(stats.alpha)) << spec;
    EXPECT_GT(stats.ratio, 0.9) << spec;
  }
}

TEST(Registry, RejectsMalformedSpecs) {
  EXPECT_THROW(core::make_compressor(""), std::invalid_argument);
  EXPECT_THROW(core::make_compressor("nosuch"), std::invalid_argument);
  EXPECT_THROW(core::make_compressor("fft:theta"), std::invalid_argument);
  EXPECT_THROW(core::make_compressor("fft:theta=abc"), std::invalid_argument);
  EXPECT_THROW(core::make_compressor("fft:bogus=1"), std::invalid_argument);
  EXPECT_THROW(core::make_compressor("ef[fft"), std::invalid_argument);
  EXPECT_THROW(core::make_compressor("chunked:0[fft]"), std::invalid_argument);
  EXPECT_THROW(core::make_compressor("chunked:abc[fft]"), std::invalid_argument);
  EXPECT_THROW(core::make_compressor("fft:theta=2.0"), std::invalid_argument);  // codec rejects
}

// ---------------------------------------------------------------------------
// RangeFloat rounding modes

TEST(RangeRounding, NearestReducesErrorVersusTruncate) {
  util::Rng rng(80);
  std::vector<float> sample(4000);
  for (float& v : sample) v = static_cast<float>(rng.normal(0.0, 0.1));
  quant::RangeFloat truncate = quant::RangeFloat::tune(10, -1.0f, 1.0f, sample);
  quant::RangeFloatParams nearest_params = truncate.params();
  nearest_params.rounding = quant::RangeRounding::kNearest;
  quant::RangeFloat nearest(nearest_params);
  double trunc_err = 0.0, nearest_err = 0.0;
  for (float v : sample) {
    const double dt = v - truncate.decode(truncate.encode(v));
    const double dn = v - nearest.decode(nearest.encode(v));
    trunc_err += dt * dt;
    nearest_err += dn * dn;
  }
  // Rounding to nearest should cut the truncation MSE by roughly 4x.
  EXPECT_LT(nearest_err, trunc_err * 0.5);
}

TEST(RangeRounding, TruncateNeverOvershootsMagnitude) {
  const quant::RangeFloat codec = quant::RangeFloat::tune(10, -1.0f, 1.0f);
  util::Rng rng(81);
  for (int i = 0; i < 2000; ++i) {
    const float v = static_cast<float>(rng.uniform(-1.0, 1.0));
    const float r = codec.decode(codec.encode(v));
    EXPECT_LE(std::fabs(r), std::fabs(v) * 1.0000001f) << v;  // round toward zero
  }
}

TEST(RangeRounding, NearestStaysWithinConfiguredRange) {
  quant::RangeFloatParams params;
  params.bits = 8;
  params.mantissa_bits = 3;
  params.min = -1.0f;
  params.max = 1.0f;
  params.eps = 0.01f;
  params.rounding = quant::RangeRounding::kNearest;
  const quant::RangeFloat codec(params);
  EXPECT_LE(codec.decode(codec.encode(1.0f)), codec.actual_max());
  EXPECT_GE(codec.decode(codec.encode(-1.0f)), codec.actual_min());
}

// ---------------------------------------------------------------------------
// Hierarchical network model

TEST(Hierarchical, SingleNodeUsesIntraOnly) {
  comm::HierarchicalModel model;
  const util::SimSeconds t4 = model.allgather_time(util::Bytes(1e6), 4);
  EXPECT_DOUBLE_EQ(t4.to_double(), model.intra.allgather_time(util::Bytes(1e6), 4).to_double());
}

TEST(Hierarchical, FabricKicksInBeyondOneNode) {
  comm::HierarchicalModel model;
  const util::SimSeconds t4 = model.allgather_time(util::Bytes(1e6), 4);
  const util::SimSeconds t8 = model.allgather_time(util::Bytes(1e6), 8);
  // Two nodes must pay the inter-node phase: noticeably more than 2x.
  EXPECT_GT(t8, 2.0 * t4);
}

TEST(Hierarchical, MatchesPaperPcieRemark) {
  // "When GPUs <= 4, the speedup is similar as communications are
  // intra-node through PCI-E": intra-node cost at 2 vs 4 ranks differs far
  // less than crossing the node boundary does.
  comm::HierarchicalModel model;
  const util::SimSeconds t2 = model.allgather_time(util::Bytes(31.25e6), 2);
  const util::SimSeconds t4 = model.allgather_time(util::Bytes(31.25e6), 4);
  const util::SimSeconds t8 = model.allgather_time(util::Bytes(31.25e6), 8);
  EXPECT_LT(t4 / t2, 4.0);
  EXPECT_GT(t8 / t4, 2.0);
}

TEST(Hierarchical, AllreduceSingleRankFree) {
  comm::HierarchicalModel model;
  EXPECT_DOUBLE_EQ(model.allreduce_time(util::Bytes(1e6), 1).to_double(), 0.0);
  EXPECT_GT(model.allreduce_time(util::Bytes(1e6), 16),
            model.allreduce_time(util::Bytes(1e6), 4));
}

TEST(Hierarchical, NodeCountRoundsUp) {
  comm::HierarchicalModel model;
  EXPECT_EQ(model.nodes(1), 1u);
  EXPECT_EQ(model.nodes(4), 1u);
  EXPECT_EQ(model.nodes(5), 2u);
  EXPECT_EQ(model.nodes(32), 8u);
}

}  // namespace
}  // namespace fftgrad
