// Cross-rank critical-path analyzer: hand-built event DAGs with known
// answers (path shape, straggler attribution, flow-shop pipeline bound),
// the Chrome-JSON round trip, and integration against real cluster_train
// runs — the acceptance invariants (per-iteration category times sum to
// the simulated end-to-end time within 1e-6, fig02-band comm share on a
// lossless run, ledger reconciliation) plus 16-seed determinism and fault
// attribution under a chaos plan.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "fftgrad/analysis/critpath_check.h"
#include "fftgrad/core/baseline_compressors.h"
#include "fftgrad/core/cluster_trainer.h"
#include "fftgrad/nn/models.h"
#include "fftgrad/telemetry/critical_path.h"
#include "fftgrad/telemetry/ledger.h"
#include "fftgrad/telemetry/trace.h"

namespace fftgrad::telemetry {
namespace {

CpEvent span(std::int32_t rank, const char* name, double start, double end,
             std::int64_t iteration = -1, std::int64_t op = -1, std::int32_t peer = -1) {
  CpEvent e;
  e.rank = rank;
  e.name = name;
  e.start_s = util::SimSeconds(start);
  e.end_s = util::SimSeconds(end);
  e.iteration = iteration;
  e.op = op;
  e.peer = peer;
  return e;
}

double seconds(const CpAnalysis& analysis, CpCategory category) {
  return analysis.total_s[static_cast<std::size_t>(category)].to_double();
}

// Two ranks, rank 1 slower into the barrier: the path must follow rank 1
// through the barrier (no idle segment — the release equals its arrival)
// and attribute the shared collective after it.
TEST(CriticalPath, KnownPathFollowsBoundingRank) {
  std::vector<CpEvent> events;
  events.push_back(span(0, "backward", 0.0, 2.0, 0));
  events.push_back(span(1, "backward", 0.0, 3.0, 0));
  events.push_back(span(0, "barrier", 2.0, 3.0, 0, /*op=*/0));
  events.push_back(span(1, "barrier", 3.0, 3.0, 0, /*op=*/0));
  events.push_back(span(0, "collective", 3.0, 5.0, 0));
  events.push_back(span(1, "collective", 3.0, 5.0, 0));

  const CpAnalysis analysis = analyze_critical_path(events);
  ASSERT_EQ(analysis.iterations.size(), 1u);
  const CpIteration& it = analysis.iterations[0];
  EXPECT_DOUBLE_EQ(it.e2e_s().to_double(), 5.0);
  EXPECT_DOUBLE_EQ(seconds(analysis, CpCategory::kBackprop), 3.0);
  EXPECT_DOUBLE_EQ(seconds(analysis, CpCategory::kCollective), 2.0);
  EXPECT_DOUBLE_EQ(seconds(analysis, CpCategory::kBarrierIdle), 0.0);
  EXPECT_NEAR(it.category_sum_s().to_double(), it.e2e_s().to_double(), 1e-12);
  EXPECT_NEAR(it.comm_share(), 0.4, 1e-12);
  // min(compute 3, comm 2); the single-chunk pipeline cannot overlap.
  EXPECT_DOUBLE_EQ(it.overlap_bound_s.to_double(), 2.0);
  EXPECT_DOUBLE_EQ(it.pipeline_bound_s.to_double(), 0.0);

  ASSERT_EQ(it.path.size(), 2u);
  EXPECT_EQ(it.path[0].category, CpCategory::kBackprop);
  EXPECT_EQ(it.path[0].rank, 1);  // the slower rank bounds the barrier
  EXPECT_EQ(it.path[1].category, CpCategory::kCollective);

  EXPECT_TRUE(analysis.problems.empty());
  EXPECT_TRUE(analysis::validate_critical_path(analysis, events).empty());
}

// Timeout-capped barrier: rank 1 straggled past the deadline and was
// snapped back ("abandoned" record). The wait between the last live
// arrival and the capped release must be charged to the straggler.
TEST(CriticalPath, StragglerWaitAttributedToAbandonedRank) {
  std::vector<CpEvent> events;
  events.push_back(span(0, "backward", 0.0, 1.0, 0));
  events.push_back(span(1, "backward", 0.0, 1.0, 0));
  events.push_back(span(1, "straggle", 1.0, 2.2, 0));
  events.push_back(span(0, "barrier", 1.0, 1.5, 0, /*op=*/0));
  events.push_back(span(1, "abandoned", 1.5, 2.2, 0, /*op=*/0));
  events.push_back(span(0, "collective", 1.5, 2.5, 0));
  events.push_back(span(1, "collective", 1.5, 2.5, 0));

  const CpAnalysis analysis = analyze_critical_path(events);
  ASSERT_EQ(analysis.iterations.size(), 1u);
  const CpIteration& it = analysis.iterations[0];
  EXPECT_DOUBLE_EQ(it.e2e_s().to_double(), 2.5);
  EXPECT_NEAR(it.category_sum_s().to_double(), it.e2e_s().to_double(), 1e-12);
  EXPECT_DOUBLE_EQ(seconds(analysis, CpCategory::kStragglerWait), 0.5);

  bool found_wait = false;
  for (const CpSegment& seg : it.path) {
    if (seg.category != CpCategory::kStragglerWait) continue;
    found_wait = true;
    EXPECT_EQ(seg.rank, 1);  // charged to the abandoned straggler
    EXPECT_EQ(seg.peer, 1);
    EXPECT_DOUBLE_EQ(seg.start_s.to_double(), 1.0);
    EXPECT_DOUBLE_EQ(seg.end_s.to_double(), 1.5);
  }
  EXPECT_TRUE(found_wait);
  EXPECT_TRUE(analysis.problems.empty());
}

// Two-layer pipeline: compute g = [5, 3], comm h = [3, 2] in serial order.
// The FIFO flow shop finishes at max(g1+g2, max(g1, ...) + h chain) = 10,
// so the pipeline bound is 13 - 10 = 3 — exactly min(g2+?, ...) achievable
// by starting h1 the moment g1 is done. The generic overlap bound
// (min(compute, comm) = 5) is looser.
TEST(CriticalPath, PipelineBoundExactOnTwoLayerPipeline) {
  std::vector<CpEvent> events;
  events.push_back(span(0, "backward", 0.0, 5.0));
  events.push_back(span(0, "collective", 5.0, 8.0));
  events.push_back(span(0, "backward", 8.0, 11.0));
  events.push_back(span(0, "collective", 11.0, 13.0));

  const CpAnalysis analysis = analyze_critical_path(events);
  ASSERT_EQ(analysis.iterations.size(), 1u);
  const CpIteration& it = analysis.iterations[0];
  EXPECT_DOUBLE_EQ(it.e2e_s().to_double(), 13.0);
  EXPECT_DOUBLE_EQ(it.overlap_bound_s.to_double(), 5.0);
  EXPECT_DOUBLE_EQ(it.pipeline_bound_s.to_double(), 3.0);
}

// Untracked gaps: simulated time not covered by any cp span must still be
// tiled (category sums stay exact) and flagged as untracked.
TEST(CriticalPath, GapsBecomeUntrackedSegments) {
  std::vector<CpEvent> events;
  events.push_back(span(0, "backward", 1.0, 2.0, 0));
  events.push_back(span(0, "collective", 3.0, 4.0, 0));

  const CpAnalysis analysis = analyze_critical_path(events);
  ASSERT_EQ(analysis.iterations.size(), 1u);
  const CpIteration& it = analysis.iterations[0];
  EXPECT_DOUBLE_EQ(it.e2e_s().to_double(), 4.0);
  EXPECT_NEAR(it.category_sum_s().to_double(), it.e2e_s().to_double(), 1e-12);
  EXPECT_DOUBLE_EQ(seconds(analysis, CpCategory::kUntracked), 2.0);  // [0,1] and [2,3]
}

// The exported Chrome JSON must round-trip the cp events (µs timestamps
// at %.3f precision = nanosecond resolution) back into the same analysis.
TEST(CriticalPath, ChromeJsonRoundTripsEvents) {
  Tracer& tracer = Tracer::global();
  tracer.set_enabled(true);
  tracer.begin_sim_session();
  tracer.record_sim_span(0, "backward", "cp", 0.0, 0.125);
  tracer.record_sim_span(1, "backward", "cp", 0.0, 0.25);
  tracer.record_sim_span(0, "barrier", "cp", 0.125, 0.25, /*op=*/0);
  tracer.record_sim_span(1, "barrier", "cp", 0.25, 0.25, /*op=*/0);
  tracer.record_sim_span(0, "publish", "cp-edge", 0.25, 0.25, /*op=*/7);
  tracer.record_sim_span(1, "consume", "cp-edge", 0.375, 0.375, /*op=*/7, /*peer=*/0);
  tracer.record_sim_span(0, "collective", "cp", 0.25, 0.375, /*op=*/7);
  tracer.record_sim_span(1, "collective", "cp", 0.25, 0.375, /*op=*/7);

  const std::vector<SpanRecord> records = tracer.snapshot();
  const std::vector<CpEvent> direct =
      cp_events_from_records(records, latest_sim_session(records));

  const std::string path = ::testing::TempDir() + "critpath_roundtrip_trace.json";
  ASSERT_TRUE(tracer.export_chrome_json(path));
  const std::vector<CpEvent> parsed = cp_events_from_chrome_json(path);
  tracer.set_enabled(false);
  tracer.clear();
  std::remove(path.c_str());

  ASSERT_EQ(parsed.size(), direct.size());
  const std::string before = serialize_critpath(analyze_critical_path(direct));
  const std::string after = serialize_critpath(analyze_critical_path(parsed));
  EXPECT_EQ(before, after);
  for (const CpEvent& e : parsed) {
    if (e.name == "consume") {
      EXPECT_EQ(e.peer, 0);
      EXPECT_EQ(e.op, 7);
      EXPECT_TRUE(e.edge);
    }
  }
}

// ---------------------------------------------------------------------------
// Integration against real cluster_train runs.

std::function<nn::Network()> mlp_factory() {
  return [] {
    util::Rng rng(999);
    return nn::models::make_mlp(8, 16, 2, 3, rng);
  };
}

std::function<std::unique_ptr<core::GradientCompressor>(std::size_t)> noop_codec() {
  return [](std::size_t) { return std::make_unique<core::NoopCompressor>(); };
}

/// Run a lossless 4-rank training with the tracer on and return the
/// analysis of its simulated session.
CpAnalysis traced_run(const core::ClusterTrainConfig& cfg, const comm::FaultPlan* plan,
                      std::vector<CpEvent>* events_out = nullptr) {
  Tracer& tracer = Tracer::global();
  tracer.set_enabled(true);
  comm::SimCluster cluster = plan == nullptr
                                 ? comm::SimCluster(comm::NetworkModel::infiniband_fdr56())
                                 : comm::SimCluster(comm::NetworkModel::ethernet_10g(), *plan);
  nn::SyntheticDataset data({8}, 3, 11);
  core::cluster_train(cluster, cfg, mlp_factory(), noop_codec(), data);
  const std::vector<SpanRecord> records = tracer.snapshot();
  tracer.set_enabled(false);
  tracer.clear();
  const std::vector<CpEvent> events =
      cp_events_from_records(records, latest_sim_session(records));
  if (events_out != nullptr) *events_out = events;
  return analyze_critical_path(events);
}

core::SimComputeModel fig02_compute(double total_s) {
  // Split one iteration's modelled compute across the phases with fig02's
  // rough proportions (backprop dominates; codec stages small).
  core::SimComputeModel m;
  m.forward_s = util::SimSeconds(0.25 * total_s);
  m.backward_s = util::SimSeconds(0.45 * total_s);
  m.fft_s = util::SimSeconds(0.08 * total_s);
  m.quant_pack_s = util::SimSeconds(0.05 * total_s);
  m.wire_crc_s = util::SimSeconds(0.04 * total_s);
  m.inverse_fft_s = util::SimSeconds(0.06 * total_s);
  m.dequant_s = util::SimSeconds(0.03 * total_s);
  m.apply_s = util::SimSeconds(0.04 * total_s);
  return m;
}

// fig02-style lossless 4-rank run: per-iteration category times must sum
// to the simulated end-to-end time within 1e-6, the comm share must land
// in the fig02 band (35-54%), and comm on the path must reconcile with
// the ledger's charged collective costs.
TEST(CriticalPathIntegration, LosslessFig02StyleRunSumsAndReconciles) {
  core::ClusterTrainConfig cfg;
  cfg.ranks = 4;
  cfg.iterations = 6;
  cfg.seed = 5;

  // Calibrate: measure the comm-only iteration time first, then model the
  // compute so communication is ~45% of the iteration — the middle of the
  // fig02 comm_share band (AlexNet 35%, ResNet32 54%).
  const CpAnalysis comm_only = traced_run(cfg, nullptr);
  ASSERT_FALSE(comm_only.iterations.empty());
  const double comm_per_iter =
      comm_only.comm_s().to_double() / static_cast<double>(comm_only.iterations.size());
  ASSERT_GT(comm_per_iter, 0.0);
  cfg.sim_compute = fig02_compute(comm_per_iter / 0.45 - comm_per_iter);

  const std::string ledger_path = ::testing::TempDir() + "critpath_fig02_ledger.jsonl";
  std::remove(ledger_path.c_str());
  RunLedger& ledger = RunLedger::global();
  ASSERT_TRUE(ledger.open(ledger_path));
  std::vector<CpEvent> events;
  const CpAnalysis analysis = traced_run(cfg, nullptr, &events);
  ledger.close();

  ASSERT_GE(analysis.iterations.size(), cfg.iterations);
  for (const CpIteration& it : analysis.iterations) {
    EXPECT_NEAR(it.category_sum_s().to_double(), it.e2e_s().to_double(), 1e-6)
        << "iteration " << it.iteration << " does not tile its window";
  }
  EXPECT_TRUE(analysis.problems.empty());
  EXPECT_TRUE(analysis::validate_critical_path(analysis, events).empty());

  // Lossless symmetric BSP: no rank waits, so the share realizes the
  // modelled 45% and sits inside the fig02 band.
  EXPECT_GT(analysis.comm_share(), 0.35);
  EXPECT_LT(analysis.comm_share(), 0.54);
  EXPECT_NEAR(analysis.comm_share(), 0.45, 0.05);

  // Ledger reconciliation: comm on the path equals the charged collective
  // cost of the recording rank (same model, same inputs, no faults).
  const std::vector<LedgerRun> runs = read_ledger_file(ledger_path);
  ASSERT_FALSE(runs.empty());
  const CpLedgerReconcile reconcile = reconcile_with_ledger(analysis, runs.back());
  EXPECT_TRUE(reconcile.compared);
  EXPECT_LT(reconcile.rel_diff, 1e-9)
      << "charged " << reconcile.ledger_charged_s.to_double() << " vs path "
      << reconcile.path_comm_s.to_double();
  std::remove(ledger_path.c_str());
}

// Same seed -> bit-identical serialized analysis, across 16 seeds. The
// simulated clocks are deterministic, so any nondeterminism would come
// from the analyzer itself (map ordering, tie-breaks).
TEST(CriticalPathIntegration, SixteenSeedDeterminism) {
  core::ClusterTrainConfig cfg;
  cfg.ranks = 4;
  cfg.iterations = 3;
  cfg.sim_compute = core::SimComputeModel{.forward_s = util::SimSeconds(1e-4),
                                          .backward_s = util::SimSeconds(2e-4),
                                          .fft_s = util::SimSeconds(5e-5),
                                          .quant_pack_s = util::SimSeconds(2e-5),
                                          .wire_crc_s = util::SimSeconds(1e-5),
                                          .inverse_fft_s = util::SimSeconds(4e-5),
                                          .dequant_s = util::SimSeconds(2e-5),
                                          .apply_s = util::SimSeconds(3e-5)};
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    cfg.seed = seed;
    const std::string first = serialize_critpath(traced_run(cfg, nullptr));
    const std::string second = serialize_critpath(traced_run(cfg, nullptr));
    EXPECT_EQ(first, second) << "seed " << seed << " is not deterministic";
    EXPECT_NE(first.find("iter"), std::string::npos);
  }
}

// Chaos attribution: with a straggling rank and a lossy fabric, straggle
// and straggler-wait path time must be charged to the faulted rank, and
// every retry segment must name the sender it recovered.
TEST(CriticalPathIntegration, ChaosTimeAttributedToFaultedRank) {
  core::ClusterTrainConfig cfg;
  cfg.ranks = 4;
  cfg.iterations = 12;
  cfg.seed = 9;
  cfg.sim_compute = core::SimComputeModel{.forward_s = util::SimSeconds(1e-4),
                                          .backward_s = util::SimSeconds(2e-4)};

  comm::FaultPlan plan;
  plan.seed = 2020;
  plan.drop_prob = 0.05;
  plan.straggler_timeout_s = util::SimSeconds(0.005);
  plan.stragglers.push_back(
      {.rank = 2, .slowdown_s = util::SimSeconds(0.05), .from_op = 2, .until_op = 6});

  std::vector<CpEvent> events;
  const CpAnalysis analysis = traced_run(cfg, &plan, &events);
  ASSERT_FALSE(analysis.iterations.empty());
  for (const CpIteration& it : analysis.iterations) {
    EXPECT_NEAR(it.category_sum_s().to_double(), it.e2e_s().to_double(), 1e-6);
  }

  double faulted_s = 0.0;
  std::size_t retries = 0;
  for (const CpIteration& it : analysis.iterations) {
    for (const CpSegment& seg : it.path) {
      if (seg.category == CpCategory::kStraggle ||
          seg.category == CpCategory::kStragglerWait) {
        EXPECT_EQ(seg.rank, 2) << "fault time charged to the wrong rank";
        faulted_s += (seg.end_s - seg.start_s).to_double();
      }
      if (seg.category == CpCategory::kRetry) {
        EXPECT_GE(seg.peer, 0) << "retry segment lost its sender attribution";
        ++retries;
      }
    }
  }
  // The straggler's slowdown dominates those rounds, so it must appear on
  // the critical path; the 5% drop rate makes retries near-certain over
  // 12 iterations x 4 ranks.
  EXPECT_GT(faulted_s, 0.0);
  EXPECT_GT(retries, 0u);
  EXPECT_GT(seconds(analysis, CpCategory::kStragglerWait) +
                seconds(analysis, CpCategory::kStraggle),
            0.0);
}

// Report/diff renderers: headline sections present in both flavors, and
// the diff of an analysis against itself is all-zero deltas.
TEST(CriticalPath, ReportAndDiffRender) {
  std::vector<CpEvent> events;
  events.push_back(span(0, "backward", 0.0, 2.0, 0));
  events.push_back(span(0, "collective", 2.0, 3.0, 0));
  const CpAnalysis analysis = analyze_critical_path(events);

  const std::string plain = render_critpath_report(analysis, false);
  EXPECT_NE(plain.find("critical path"), std::string::npos);
  EXPECT_NE(plain.find("backprop"), std::string::npos);
  const std::string markdown = render_critpath_report(analysis, true);
  EXPECT_NE(markdown.find("# Critical path"), std::string::npos);

  const std::string diff = render_critpath_diff(analysis, analysis, false);
  EXPECT_NE(diff.find("+0.000000"), std::string::npos);

  const LedgerCritpath row = ledger_critpath_from(analysis);
  EXPECT_EQ(row.iterations, 1u);
  EXPECT_DOUBLE_EQ(row.e2e_s.to_double(), 3.0);
  EXPECT_DOUBLE_EQ(row.comm_s.to_double(), 1.0);
}

}  // namespace
}  // namespace fftgrad::telemetry
