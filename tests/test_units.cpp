// The dimensional-type and trust-boundary layer's own test suite.
//
// Three layers of proof:
//   1. compile-time: static_asserts pin the algebra that must exist, and
//      expression-SFINAE probes pin the *absence* of the operators that
//      must not (SimSeconds + WallSeconds, Bytes + Bits, implicit double
//      conversions) — if someone adds a laundering overload, this file
//      stops compiling or the probes flip to true and the asserts fire;
//   2. runtime identities: the cross-dimension operators compute the same
//      numbers the raw-double formulas did;
//   3. Untrusted<T>: the validating release path, TaintError rejection,
//      and move-only consumption semantics.
#include <gtest/gtest.h>

#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "fftgrad/util/taint.h"
#include "fftgrad/util/units.h"

namespace fftgrad::util {
namespace {

// ---------------------------------------------------------------------------
// Expression-SFINAE probes: valid<OpProbe, A, B> is true iff the operator
// expression compiles for the pair. Used to assert both presence and
// absence of algebra.

template <typename A, typename B, typename = void>
struct CanAdd : std::false_type {};
template <typename A, typename B>
struct CanAdd<A, B, std::void_t<decltype(std::declval<A>() + std::declval<B>())>>
    : std::true_type {};

template <typename A, typename B, typename = void>
struct CanDivide : std::false_type {};
template <typename A, typename B>
struct CanDivide<A, B, std::void_t<decltype(std::declval<A>() / std::declval<B>())>>
    : std::true_type {};

template <typename A, typename B, typename = void>
struct CanMultiply : std::false_type {};
template <typename A, typename B>
struct CanMultiply<A, B, std::void_t<decltype(std::declval<A>() * std::declval<B>())>>
    : std::true_type {};

template <typename A, typename B, typename = void>
struct CanCompare : std::false_type {};
template <typename A, typename B>
struct CanCompare<A, B, std::void_t<decltype(std::declval<A>() < std::declval<B>())>>
    : std::true_type {};

// --- the algebra that must exist -------------------------------------------
static_assert(CanAdd<SimSeconds, SimSeconds>::value);
static_assert(CanAdd<Bytes, Bytes>::value);
static_assert(CanDivide<Bytes, BytesPerSecond>::value);
static_assert(std::is_same_v<decltype(Bytes(1.0) / BytesPerSecond(1.0)), SimSeconds>);
static_assert(std::is_same_v<decltype(Bytes(1.0) / SimSeconds(1.0)), BytesPerSecond>);
static_assert(std::is_same_v<decltype(BytesPerSecond(1.0) * SimSeconds(1.0)), Bytes>);
static_assert(std::is_same_v<decltype(Bytes(1.0) / Ratio(1.0)), Bytes>);
// Same-unit division is a dimensionless double.
static_assert(std::is_same_v<decltype(SimSeconds(1.0) / SimSeconds(1.0)), double>);
static_assert(std::is_same_v<decltype(Bytes(1.0) / Bytes(1.0)), double>);
// Scalar scaling keeps the unit.
static_assert(std::is_same_v<decltype(2.0 * SimSeconds(1.0)), SimSeconds>);
static_assert(std::is_same_v<decltype(SimSeconds(1.0) / 2.0), SimSeconds>);

// --- the algebra that must NOT exist ----------------------------------------
// Wall and simulated seconds never mix implicitly.
static_assert(!CanAdd<SimSeconds, WallSeconds>::value);
static_assert(!CanAdd<WallSeconds, SimSeconds>::value);
static_assert(!CanCompare<SimSeconds, WallSeconds>::value);
// Bits and Bytes only convert through bits_of/bytes_of (the factor-8 home).
static_assert(!CanAdd<Bytes, Bits>::value);
// No unit mixes with a bare double additively, and no implicit conversions.
static_assert(!CanAdd<SimSeconds, double>::value);
static_assert(!CanAdd<double, Bytes>::value);
static_assert(!std::is_convertible_v<double, SimSeconds>);  // explicit ctor
static_assert(!std::is_convertible_v<SimSeconds, double>);  // to_double() only
static_assert(!std::is_convertible_v<SimSeconds, WallSeconds>);
// Dimensionally meaningless products/quotients don't exist.
static_assert(!CanMultiply<Bytes, Bytes>::value);
static_assert(!CanDivide<SimSeconds, Bytes>::value);
static_assert(!CanDivide<Ratio, Bytes>::value);

// --- zero-overhead representation -------------------------------------------
static_assert(sizeof(SimSeconds) == sizeof(double));
static_assert(std::is_trivially_copyable_v<Bytes>);
static_assert(std::is_trivially_copyable_v<SimSeconds>);

// --- the whole algebra is constexpr -----------------------------------------
static_assert((Bytes(8e9) / BytesPerSecond(1e9)).to_double() == 8.0);
static_assert(ratio_of(Bytes(100.0), Bytes(25.0)) == Ratio(4.0));
static_assert(bits_of(Bytes(2.0)) == Bits(16.0));
static_assert(bytes_of(Bits(16.0)) == Bytes(2.0));
static_assert(sim_from_wall(WallSeconds(1.5)) == SimSeconds(1.5));

TEST(Units, TransferTimeMatchesRawFormula) {
  const Bytes message{2.5e8};
  const BytesPerSecond link{10.0 * 1e9 / 8.0};  // 10 Gbps
  EXPECT_DOUBLE_EQ((message / link).to_double(), 2.5e8 / (10.0 * 1e9 / 8.0));
}

TEST(Units, RoundTripThroughThroughput) {
  const Bytes message{1e6};
  const SimSeconds elapsed{0.25};
  const BytesPerSecond rate = message / elapsed;
  EXPECT_EQ(rate * elapsed, message);
  EXPECT_EQ(elapsed * rate, message);
}

TEST(Units, CompressionShrinksByRatio) {
  const Bytes raw{8e6};
  const Ratio k{4.0};
  EXPECT_EQ(raw / k, Bytes(2e6));
  EXPECT_DOUBLE_EQ(ratio_of(raw, raw / k).to_double(), 4.0);
}

TEST(Units, BitByteFactorLivesInOnePlace) {
  EXPECT_EQ(bits_of(bytes_of(Bits(12.0))), Bits(12.0));
  EXPECT_EQ(bytes_for(elements(1000), sizeof(float)), Bytes(4000.0));
  EXPECT_EQ(byte_count(4096), Bytes(4096.0));
}

TEST(Units, AccumulationAndScaling) {
  SimSeconds total{};
  for (int i = 1; i <= 4; ++i) total += SimSeconds(0.5) * static_cast<double>(i);
  EXPECT_DOUBLE_EQ(total.to_double(), 0.5 + 1.0 + 1.5 + 2.0);
  total /= 5.0;
  EXPECT_DOUBLE_EQ(total.to_double(), 1.0);
  EXPECT_EQ(-SimSeconds(2.0), SimSeconds(-2.0));
}

TEST(Units, ComparisonsAreOrdered) {
  EXPECT_LT(SimSeconds(1.0), SimSeconds(2.0));
  EXPECT_GE(Bytes(5.0), Bytes(5.0));
  EXPECT_NE(Ratio(2.0), Ratio(3.0));
}

// ---------------------------------------------------------------------------
// Untrusted<T>.

TEST(Taint, ReleaseRunsValidatorAndYields) {
  Untrusted<std::vector<int>> wire = untrusted(std::vector<int>{1, 2, 3});
  const std::vector<int> value =
      std::move(wire).release([](const std::vector<int>& v) { return v.size() == 3; },
                              "fixture vector");
  EXPECT_EQ(value, (std::vector<int>{1, 2, 3}));
}

TEST(Taint, RejectionThrowsTaintErrorNamingTheValue) {
  try {
    (void)untrusted(std::size_t{7}).release([](std::size_t n) { return n < 5; },
                                            "element count");
    FAIL() << "validator rejection must throw";
  } catch (const TaintError& e) {
    EXPECT_NE(std::string(e.what()).find("element count"), std::string::npos);
  }
}

TEST(Taint, TaintErrorIsARuntimeError) {
  // The fuzzers count decoder rejections via catch(std::runtime_error&);
  // receiver-side rejections must land in the same bucket.
  EXPECT_THROW(
      (void)untrusted(1).release([](int) { return false; }), std::runtime_error);
}

TEST(Taint, ValidatorMayThrowItsOwnException) {
  EXPECT_THROW((void)untrusted(1).release(
                   [](int) -> bool { throw std::invalid_argument("custom"); }),
               std::invalid_argument);
}

TEST(Taint, ReleaseWorksDirectlyOnDecoderReturnValue) {
  // The idiomatic call shape: decoder returns a prvalue Untrusted<T>, the
  // caller chains .release(...) with no std::move.
  const auto decode = [] { return untrusted(std::string("payload")); };
  EXPECT_EQ(decode().release([](const std::string& s) { return !s.empty(); }), "payload");
}

TEST(Taint, MoveOnlySingleConsumption) {
  static_assert(!std::is_copy_constructible_v<Untrusted<int>>);
  static_assert(!std::is_copy_assignable_v<Untrusted<int>>);
  static_assert(std::is_move_constructible_v<Untrusted<int>>);
  // release() is rvalue-qualified: it does not compile on an lvalue.
  static_assert(!std::is_invocable_v<decltype(&Untrusted<int>::template release<bool (*)(int)>),
                                     Untrusted<int>&, bool (*)(int), const char*>);
  Untrusted<int> a = untrusted(41);
  Untrusted<int> b = std::move(a);
  EXPECT_EQ(std::move(b).release([](int v) { return v == 41; }), 41);
}

}  // namespace
}  // namespace fftgrad::util
