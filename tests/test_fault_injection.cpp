// Chaos suite (ctest label `chaos`): the fault-injection harness end to
// end. The central claims under test:
//   * determinism — a FaultPlan's schedule is a pure function of its seed,
//     so identical plans reproduce identical fault histories and identical
//     final weights, on any host, under any sanitizer;
//   * bit-identity of the fault-free path — an empty plan leaves cluster
//     results and simulated clocks bit-identical to a cluster built
//     without one;
//   * graceful degradation — drops, corruption, stragglers, and rank
//     crashes cost accuracy and simulated time, never a hang, a crash, or
//     divergent replicas;
//   * checkpoint/restore — a resumed DistributedTrainer run reproduces the
//     uninterrupted run's weights bit-for-bit.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "fftgrad/comm/fault_injection.h"
#include "fftgrad/comm/sim_cluster.h"
#include "fftgrad/core/baseline_compressors.h"
#include "fftgrad/core/cluster_trainer.h"
#include "fftgrad/core/error_feedback.h"
#include "fftgrad/core/fft_compressor.h"
#include "fftgrad/core/trainer.h"
#include "fftgrad/nn/loss.h"
#include "fftgrad/nn/models.h"
#include "fftgrad/telemetry/metrics.h"

namespace fftgrad::core {
namespace {

std::function<nn::Network()> mlp_factory() {
  return [] {
    util::Rng rng(999);
    return nn::models::make_mlp(8, 16, 2, 3, rng);
  };
}

std::function<std::unique_ptr<GradientCompressor>(std::size_t)> noop_codec() {
  return [](std::size_t) { return std::make_unique<NoopCompressor>(); };
}

ClusterTrainConfig small_config(std::size_t ranks, std::size_t iterations) {
  ClusterTrainConfig cfg;
  cfg.ranks = ranks;
  cfg.iterations = iterations;
  cfg.seed = 21;
  return cfg;
}

// ---------------------------------------------------------------------------
// FaultPlan: pure, seeded decisions

TEST(FaultPlan, EventsArePureFunctionsOfTheKey) {
  comm::FaultPlan plan;
  plan.seed = 1234;
  plan.drop_prob = 0.3;
  plan.corrupt_prob = 0.3;
  plan.duplicate_prob = 0.3;
  plan.delay_prob = 0.3;
  for (std::size_t sender = 0; sender < 4; ++sender) {
    for (std::size_t op = 0; op < 32; ++op) {
      const comm::FaultEvents a = plan.events(sender, op, 0);
      const comm::FaultEvents b = plan.events(sender, op, 0);
      EXPECT_EQ(a.drop, b.drop);
      EXPECT_EQ(a.corrupt, b.corrupt);
      EXPECT_EQ(a.duplicate, b.duplicate);
      EXPECT_EQ(a.delay, b.delay);
    }
  }
}

TEST(FaultPlan, DifferentSeedsSampleDifferentSchedules) {
  comm::FaultPlan a, b;
  a.seed = 1;
  b.seed = 2;
  a.drop_prob = b.drop_prob = 0.5;
  int differing = 0;
  for (std::size_t op = 0; op < 256; ++op) {
    if (a.events(0, op, 0).drop != b.events(0, op, 0).drop) ++differing;
  }
  EXPECT_GT(differing, 32);
}

TEST(FaultPlan, CorruptPayloadFlipsBitsDeterministically) {
  comm::FaultPlan plan;
  plan.seed = 99;
  std::vector<std::uint8_t> original(64, 0xAB);
  std::vector<std::uint8_t> once = original;
  std::vector<std::uint8_t> twice = original;
  plan.corrupt_payload(once, 1, 7, 0);
  plan.corrupt_payload(twice, 1, 7, 0);
  EXPECT_NE(once, original);
  EXPECT_EQ(once, twice);
  // A different key damages differently (with overwhelming probability).
  std::vector<std::uint8_t> other = original;
  plan.corrupt_payload(other, 1, 8, 0);
  EXPECT_NE(once, other);
}

TEST(FaultPlan, StragglerWindowAndCrashScheduleAreHonored) {
  comm::FaultPlan plan;
  plan.stragglers.push_back(
      {.rank = 2, .slowdown_s = util::SimSeconds(0.5), .from_op = 3, .until_op = 6});
  plan.crashes.push_back({.rank = 1, .at_op = 10});
  EXPECT_EQ(plan.straggle_s(2, 2), util::SimSeconds(0.0));
  EXPECT_EQ(plan.straggle_s(2, 3), util::SimSeconds(0.5));
  EXPECT_EQ(plan.straggle_s(2, 5), util::SimSeconds(0.5));
  EXPECT_EQ(plan.straggle_s(2, 6), util::SimSeconds(0.0));
  EXPECT_EQ(plan.straggle_s(0, 4), util::SimSeconds(0.0));
  EXPECT_FALSE(plan.crashes_at(1, 9));
  EXPECT_TRUE(plan.crashes_at(1, 10));
  EXPECT_TRUE(plan.crashes_at(1, 11));
  EXPECT_FALSE(plan.crashes_at(0, 10));
  EXPECT_FALSE(plan.empty());
  EXPECT_FALSE(plan.has_transport_faults());
}

// ---------------------------------------------------------------------------
// resolve_delivery: the bounded retry loop

TEST(ResolveDelivery, CleanPlanDeliversFirstTryAtZeroCost) {
  const comm::FaultPlan plan;
  const comm::NetworkModel net = comm::NetworkModel::ethernet_1g();
  const comm::DeliveryOutcome out =
      comm::resolve_delivery(plan, net, 0, 0, util::Bytes(1e6));
  EXPECT_TRUE(out.delivered);
  EXPECT_FALSE(out.corrupted);
  EXPECT_EQ(out.attempts, 1u);
  EXPECT_EQ(out.recovery_seconds, util::SimSeconds(0.0));
  EXPECT_EQ(out.extra_bytes, util::Bytes(0.0));
}

TEST(ResolveDelivery, CertainDropExhaustsTheRetryBudget) {
  comm::FaultPlan plan;
  plan.seed = 5;
  plan.drop_prob = 1.0;
  comm::NetworkModel net = comm::NetworkModel::ethernet_1g();
  net.retry.max_retries = 4;
  const util::Bytes bytes{1e6};
  const comm::DeliveryOutcome out = comm::resolve_delivery(plan, net, 0, 0, bytes);
  EXPECT_FALSE(out.delivered);
  EXPECT_EQ(out.attempts, 1u + net.retry.max_retries);
  // Every failed attempt but the last charges one retransmission plus its
  // backoff step.
  util::SimSeconds expected{0.0};
  for (std::size_t retry = 0; retry < net.retry.max_retries; ++retry) {
    expected += net.retry.backoff_s(retry) + net.p2p_base_time(bytes);
  }
  EXPECT_DOUBLE_EQ(out.recovery_seconds.to_double(), expected.to_double());
  EXPECT_DOUBLE_EQ(out.extra_bytes.to_double(),
                   (bytes * static_cast<double>(net.retry.max_retries)).to_double());
}

TEST(ResolveDelivery, CertainCorruptionDeliversDamagedAfterRetries) {
  comm::FaultPlan plan;
  plan.seed = 5;
  plan.corrupt_prob = 1.0;
  const comm::NetworkModel net = comm::NetworkModel::ethernet_1g();
  const comm::DeliveryOutcome out =
      comm::resolve_delivery(plan, net, 2, 9, util::Bytes(4096));
  EXPECT_TRUE(out.delivered);
  EXPECT_TRUE(out.corrupted);
  EXPECT_EQ(out.attempts, 1u + net.retry.max_retries);
  EXPECT_GT(out.recovery_seconds, util::SimSeconds(0.0));
}

TEST(ResolveDelivery, ModerateLossUsuallyRecoversWithinBudget) {
  comm::FaultPlan plan;
  plan.seed = 17;
  plan.drop_prob = 0.3;
  const comm::NetworkModel net = comm::NetworkModel::ethernet_1g();
  std::size_t delivered = 0;
  std::size_t retransmits = 0;
  for (std::size_t op = 0; op < 200; ++op) {
    const comm::DeliveryOutcome out =
        comm::resolve_delivery(plan, net, 1, op, util::Bytes(1000));
    delivered += out.delivered ? 1 : 0;
    retransmits += out.attempts - 1;
  }
  // P(all 4 attempts drop) = 0.3^4 < 1%; nearly everything gets through,
  // but a third of first attempts needed recovery.
  EXPECT_GT(delivered, 190u);
  EXPECT_GT(retransmits, 40u);
}

// ---------------------------------------------------------------------------
// NetworkModel: analytic lossy-link accounting

TEST(NetworkModelLoss, ZeroLossRateKeepsTheBaseFormula) {
  const comm::NetworkModel net = comm::NetworkModel::infiniband_fdr56();
  EXPECT_EQ(net.loss_rate, 0.0);
  EXPECT_DOUBLE_EQ(net.p2p_time(util::Bytes(12345.0)).to_double(),
                   net.p2p_base_time(util::Bytes(12345.0)).to_double());
  EXPECT_DOUBLE_EQ(net.expected_sends(), 1.0);
  EXPECT_DOUBLE_EQ(net.expected_backoff_s().to_double(), 0.0);
}

TEST(NetworkModelLoss, LossInflatesEveryCollective) {
  comm::NetworkModel clean = comm::NetworkModel::ethernet_10g();
  comm::NetworkModel lossy = clean;
  lossy.loss_rate = 0.05;
  // E[sends] for a bounded geometric with p = 0.05 and 3 retries.
  const double p = 0.05;
  EXPECT_DOUBLE_EQ(lossy.expected_sends(), 1.0 + p + p * p + p * p * p);
  EXPECT_GT(lossy.expected_backoff_s(), util::SimSeconds(0.0));
  const util::Bytes mb{1e6};
  EXPECT_GT(lossy.p2p_time(mb), clean.p2p_time(mb));
  EXPECT_GT(lossy.allgather_time(mb, 8), clean.allgather_time(mb, 8));
  EXPECT_GT(lossy.allreduce_time(mb, 8), clean.allreduce_time(mb, 8));
  EXPECT_GT(lossy.broadcast_time(mb, 8), clean.broadcast_time(mb, 8));
  const std::vector<util::Bytes> blocks(8, mb);
  EXPECT_GT(lossy.allgatherv_time(blocks), clean.allgatherv_time(blocks));
  EXPECT_GT(lossy.ps_push_time(blocks), clean.ps_push_time(blocks));
}

TEST(NetworkModelLoss, BackoffScheduleIsExponential) {
  comm::RetryPolicy retry;
  retry.backoff_base_s = util::SimSeconds(1e-3);
  retry.backoff_factor = 2.0;
  EXPECT_DOUBLE_EQ(retry.backoff_s(0).to_double(), 1e-3);
  EXPECT_DOUBLE_EQ(retry.backoff_s(1).to_double(), 2e-3);
  EXPECT_DOUBLE_EQ(retry.backoff_s(2).to_double(), 4e-3);
}

// ---------------------------------------------------------------------------
// SimCluster under fault plans

TEST(ChaosCluster, EmptyPlanIsBitIdenticalToNoPlan) {
  const auto run_training = [](comm::SimCluster& cluster) {
    nn::SyntheticDataset data({8}, 3, 31);
    return cluster_train(cluster, small_config(4, 8), mlp_factory(), noop_codec(), data);
  };
  comm::SimCluster plain(comm::NetworkModel::infiniband_fdr56());
  comm::SimCluster with_empty_plan(comm::NetworkModel::infiniband_fdr56(), comm::FaultPlan{});
  const ClusterTrainResult a = run_training(plain);
  const ClusterTrainResult b = run_training(with_empty_plan);
  ASSERT_EQ(a.final_params.size(), b.final_params.size());
  EXPECT_EQ(0, std::memcmp(a.final_params.data(), b.final_params.data(),
                           a.final_params.size() * sizeof(float)));
  ASSERT_EQ(a.rank_sim_times.size(), b.rank_sim_times.size());
  for (std::size_t r = 0; r < a.rank_sim_times.size(); ++r) {
    EXPECT_EQ(a.rank_sim_times[r], b.rank_sim_times[r]) << r;
  }
  EXPECT_EQ(a.crashed_ranks, 0u);
  EXPECT_EQ(b.skipped_contributions, 0u);
  EXPECT_EQ(b.degraded_iterations, 0u);
}

TEST(ChaosCluster, SameSeedReproducesIdenticalWeights) {
  const auto run_once = [] {
    comm::FaultPlan plan;
    plan.seed = 77;
    plan.drop_prob = 0.05;
    plan.corrupt_prob = 0.03;
    plan.duplicate_prob = 0.02;
    plan.delay_prob = 0.05;
    plan.delay_s = util::SimSeconds(1e-4);
    comm::SimCluster cluster(comm::NetworkModel::ethernet_10g(), plan);
    nn::SyntheticDataset data({8}, 3, 32);
    return cluster_train(cluster, small_config(4, 12), mlp_factory(), noop_codec(), data);
  };
  const ClusterTrainResult a = run_once();
  const ClusterTrainResult b = run_once();
  ASSERT_EQ(a.final_params.size(), b.final_params.size());
  EXPECT_EQ(0, std::memcmp(a.final_params.data(), b.final_params.data(),
                           a.final_params.size() * sizeof(float)));
  EXPECT_EQ(a.skipped_contributions, b.skipped_contributions);
  EXPECT_EQ(a.degraded_iterations, b.degraded_iterations);
  for (std::size_t r = 0; r < a.rank_sim_times.size(); ++r) {
    EXPECT_EQ(a.rank_sim_times[r], b.rank_sim_times[r]) << r;
  }
}

TEST(ChaosCluster, SixteenSeededPlansNeverHangOrDiverge) {
  // The soak: transport faults, a straggler, and (on half the seeds) a
  // mid-run crash, under both a plain and an error-feedback codec. Every
  // plan must complete with identical surviving replicas and finite loss.
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    comm::FaultPlan plan;
    plan.seed = seed;
    plan.drop_prob = 0.04;
    plan.corrupt_prob = 0.03;
    plan.duplicate_prob = 0.02;
    plan.delay_prob = 0.04;
    plan.delay_s = util::SimSeconds(5e-5);
    plan.straggler_timeout_s = util::SimSeconds(0.05);
    plan.stragglers.push_back(
        {.rank = seed % 4, .slowdown_s = util::SimSeconds(0.2), .from_op = 6, .until_op = 12});
    if (seed % 2 == 1) plan.crashes.push_back({.rank = (seed + 1) % 4, .at_op = 9});

    comm::SimCluster cluster(comm::NetworkModel::ethernet_10g(), plan);
    nn::SyntheticDataset data({8}, 3, 33);
    const auto codec = [seed](std::size_t) -> std::unique_ptr<GradientCompressor> {
      if (seed % 4 < 2) return std::make_unique<NoopCompressor>();
      return std::make_unique<ErrorFeedbackCompressor>(std::make_unique<FftCompressor>(
          FftCompressorOptions{.theta = 0.5, .quantizer_bits = 10}));
    };
    const ClusterTrainResult result =
        cluster_train(cluster, small_config(4, 15), mlp_factory(), codec, data);
    EXPECT_TRUE(result.replicas_identical) << "seed " << seed;
    EXPECT_EQ(result.crashed_ranks, seed % 2 == 1 ? 1u : 0u) << "seed " << seed;
    EXPECT_TRUE(std::isfinite(result.mean_loss_last_iteration)) << "seed " << seed;
    for (float p : result.final_params) ASSERT_TRUE(std::isfinite(p)) << "seed " << seed;
  }
}

TEST(ChaosCluster, AccuracyStaysCloseUnderFivePercentDrop) {
  // ISSUE acceptance: <= 5% packet drop must cost at most 2 accuracy
  // points against the fault-free run on the same schedule. The retry
  // budget is zeroed so every drop actually surfaces as a skipped
  // contribution (with the default budget a 5% drop rate is recovered
  // almost completely); renormalizing the average over the survivors keeps
  // the step direction right, just noisier.
  nn::SyntheticDataset data({16}, 3, 34);
  const auto model_factory = [] {
    util::Rng rng(999);
    return nn::models::make_mlp(16, 32, 2, 3, rng);
  };
  const auto accuracy_of = [&](const std::vector<float>& params) {
    nn::Network net = model_factory();
    net.set_params(params);
    const nn::Batch test = data.test_set(256);
    return nn::accuracy(net.forward(test.inputs), test.labels);
  };
  const auto run_with = [&](const comm::FaultPlan& plan) {
    comm::NetworkModel net = comm::NetworkModel::infiniband_fdr56();
    net.retry.max_retries = 0;  // no recovery: every drop is a lost block
    comm::SimCluster cluster(net, plan);
    ClusterTrainConfig cfg = small_config(4, 80);
    cfg.learning_rate = 0.05f;
    return cluster_train(cluster, cfg, model_factory, noop_codec(), data);
  };

  const ClusterTrainResult clean = run_with(comm::FaultPlan{});
  comm::FaultPlan lossy;
  lossy.seed = 3;
  lossy.drop_prob = 0.05;
  const ClusterTrainResult faulty = run_with(lossy);

  EXPECT_GT(faulty.skipped_contributions, 0u);
  EXPECT_TRUE(faulty.replicas_identical);
  const double clean_acc = accuracy_of(clean.final_params);
  const double faulty_acc = accuracy_of(faulty.final_params);
  EXPECT_GE(faulty_acc, clean_acc - 0.02)
      << "clean " << clean_acc << " vs faulty " << faulty_acc;
}

TEST(ChaosCluster, CrashedRankDegradesGracefully) {
  comm::FaultPlan plan;
  plan.crashes.push_back({.rank = 2, .at_op = 8});
  comm::SimCluster cluster(comm::NetworkModel::infiniband_fdr56(), plan);
  nn::SyntheticDataset data({8}, 3, 35);
  const ClusterTrainResult result =
      cluster_train(cluster, small_config(4, 12), mlp_factory(), noop_codec(), data);
  EXPECT_EQ(result.crashed_ranks, 1u);
  EXPECT_TRUE(cluster.rank_crashed(2));
  EXPECT_FALSE(cluster.rank_crashed(0));
  EXPECT_EQ(cluster.survivors(), 3u);
  EXPECT_TRUE(result.replicas_identical);
  EXPECT_GT(result.skipped_contributions, 0u);
  EXPECT_GT(result.degraded_iterations, 0u);
  for (float p : result.final_params) ASSERT_TRUE(std::isfinite(p));
  // The survivors kept learning after the crash.
  EXPECT_TRUE(std::isfinite(result.mean_loss_last_iteration));
}

TEST(ChaosCluster, StragglerTimeoutBoundsTheSimulatedClock) {
  // A 1-second-per-op straggler would dominate the timeline; with a 10ms
  // timeout the survivors proceed and total simulated time stays bounded.
  const auto run_with_timeout = [](double timeout_s) {
    comm::FaultPlan plan;
    plan.stragglers.push_back(
        {.rank = 1, .slowdown_s = util::SimSeconds(1.0), .from_op = 2, .until_op = 10});
    plan.straggler_timeout_s = util::SimSeconds(timeout_s);
    comm::SimCluster cluster(comm::NetworkModel::infiniband_fdr56(), plan);
    nn::SyntheticDataset data({8}, 3, 36);
    return cluster_train(cluster, small_config(4, 10), mlp_factory(), noop_codec(), data);
  };
  const ClusterTrainResult waiting = run_with_timeout(0.0);   // plain BSP: absorb it
  const ClusterTrainResult bounded = run_with_timeout(0.01);  // exclude the late rank
  EXPECT_GT(waiting.rank_sim_times[0], util::SimSeconds(7.0));  // ~8 straggled ops x 1s
  EXPECT_LT(bounded.rank_sim_times[0], util::SimSeconds(1.0));
  EXPECT_GT(bounded.skipped_contributions, 0u);
  EXPECT_TRUE(bounded.replicas_identical);
  // Without a timeout nothing is excluded: same weights, slower clock.
  ASSERT_EQ(waiting.final_params.size(), bounded.final_params.size());
  EXPECT_EQ(waiting.skipped_contributions, 0u);
}

TEST(ChaosCluster, TransportCountersAccumulate) {
  telemetry::MetricsRegistry& registry = telemetry::MetricsRegistry::global();
  registry.reset();
  registry.set_enabled(true);
  comm::FaultPlan plan;
  plan.seed = 11;
  plan.drop_prob = 0.3;
  plan.corrupt_prob = 0.2;
  plan.crashes.push_back({.rank = 3, .at_op = 6});
  comm::SimCluster cluster(comm::NetworkModel::ethernet_10g(), plan);
  nn::SyntheticDataset data({8}, 3, 37);
  const ClusterTrainResult result =
      cluster_train(cluster, small_config(4, 10), mlp_factory(), noop_codec(), data);
  registry.set_enabled(false);
  EXPECT_TRUE(result.replicas_identical);
  EXPECT_GT(registry.counter("fault.retransmits").value(), 0.0);
  EXPECT_GT(registry.counter("fault.retransmit_bytes").value(), 0.0);
  EXPECT_GT(registry.counter("fault.recovery_seconds").value(), 0.0);
  EXPECT_EQ(registry.counter("fault.rank_crashes").value(), 1.0);
  EXPECT_GT(registry.counter("trainer.peers_skipped").value(), 0.0);
  registry.reset();
}

// ---------------------------------------------------------------------------
// Crash-and-rejoin: elastic recovery through the membership protocol

TEST(ChaosCluster, MonitorThreadObservesMembershipWithoutRacing) {
  // Lock-discipline regression (tsan preset): SimCluster's membership
  // accessors — rank_crashed(), survivors(), rank_rejoined(), view_epoch()
  // — used to read dead_/rejoined_/view_epoch_ without the barrier mutex,
  // racing with the membership writes a crash or rejoin performs. They now
  // lock, so an external monitor thread may poll them concurrently with a
  // live run. This test IS that monitor: under -fsanitize=thread any
  // regression to unguarded reads is a hard failure, and the epoch
  // observations must be monotone (each membership change bumps the view).
  comm::FaultPlan plan;
  plan.crashes.push_back({.rank = 1, .at_op = 6, .rejoin_at_op = 14});
  plan.crashes.push_back({.rank = 3, .at_op = 10});
  comm::SimCluster cluster(comm::NetworkModel::infiniband_fdr56(), plan);

  std::atomic<bool> stop{false};
  std::atomic<bool> saw_crash{false};
  std::atomic<bool> monotone{true};
  std::thread monitor([&] {
    std::uint64_t last_epoch = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const std::uint64_t epoch = cluster.view_epoch();
      if (epoch < last_epoch) monotone.store(false, std::memory_order_relaxed);
      last_epoch = epoch;
      if (cluster.rank_crashed(3)) saw_crash.store(true, std::memory_order_relaxed);
      (void)cluster.survivors();
      (void)cluster.rank_rejoined(1);
      std::this_thread::yield();
    }
  });

  nn::SyntheticDataset data({8}, 3, 41);
  const ClusterTrainResult result =
      cluster_train(cluster, small_config(4, 20), mlp_factory(), noop_codec(), data);
  stop.store(true, std::memory_order_release);
  monitor.join();

  EXPECT_TRUE(monotone.load());
  EXPECT_TRUE(saw_crash.load());  // rank 3's crash is terminal and visible
  EXPECT_TRUE(cluster.rank_crashed(3));
  EXPECT_TRUE(cluster.rank_rejoined(1));
  EXPECT_EQ(cluster.survivors(), 3u);
  EXPECT_GE(cluster.view_epoch(), 3u);  // crash, crash, rejoin: >= 3 bumps
  EXPECT_EQ(result.crashed_ranks, 1u);
  EXPECT_EQ(result.rejoined_ranks, 1u);
  EXPECT_TRUE(result.replicas_identical);
}

TEST(ChaosRejoin, CrashAndRejoinConvergesWithinTwoPercent) {
  // ISSUE acceptance (a): a 4-rank run with a crash at iteration k and a
  // rejoin at k+r must converge within 2 accuracy points of the crash-free
  // baseline — and the rejoiner, fed the donor's state blob, must end
  // bit-identical to the survivors (replicas_identical covers all four).
  nn::SyntheticDataset data({16}, 3, 38);
  const auto model_factory = [] {
    util::Rng rng(999);
    return nn::models::make_mlp(16, 32, 2, 3, rng);
  };
  const auto accuracy_of = [&](const std::vector<float>& params) {
    nn::Network net = model_factory();
    net.set_params(params);
    const nn::Batch test = data.test_set(256);
    return nn::accuracy(net.forward(test.inputs), test.labels);
  };
  const auto run_with = [&](const comm::FaultPlan& plan) {
    comm::SimCluster cluster(comm::NetworkModel::infiniband_fdr56(), plan);
    ClusterTrainConfig cfg = small_config(4, 80);
    cfg.learning_rate = 0.05f;
    return cluster_train(cluster, cfg, model_factory, noop_codec(), data);
  };

  const ClusterTrainResult clean = run_with(comm::FaultPlan{});
  comm::FaultPlan plan;
  plan.crashes.push_back({.rank = 2, .at_op = 20, .rejoin_at_op = 32});
  const ClusterTrainResult recovered = run_with(plan);

  EXPECT_EQ(recovered.rejoined_ranks, 1u);
  EXPECT_EQ(recovered.crashed_ranks, 0u);  // the crash was not terminal
  EXPECT_TRUE(recovered.replicas_identical);
  EXPECT_GT(recovered.degraded_iterations, 0u);  // the outage was real
  const double clean_acc = accuracy_of(clean.final_params);
  const double recovered_acc = accuracy_of(recovered.final_params);
  EXPECT_GE(recovered_acc, clean_acc - 0.02)
      << "clean " << clean_acc << " vs recovered " << recovered_acc;
}

TEST(ChaosRejoin, SixteenSeedSoakIsBitIdenticalAcrossReruns) {
  // 16 seeded crash-with-recovery plans, half under an error-feedback FFT
  // codec, each run twice: the rejoin handshake, the peer state transfer,
  // and the RNG replay are all deterministic, so reruns must agree to the
  // bit (and in analysis builds the causality tracker aborts the test on
  // any violation across the membership transitions).
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    const auto run_once = [seed] {
      comm::FaultPlan plan;
      plan.seed = seed;
      const std::size_t victim = 1 + seed % 3;  // rank 0 stays (ledger donor path)
      const std::size_t crash_op = 4 + seed % 4;
      plan.crashes.push_back({.rank = victim,
                              .at_op = crash_op,
                              .rejoin_at_op = crash_op + 3 + seed % 5});
      comm::SimCluster cluster(comm::NetworkModel::ethernet_10g(), plan);
      nn::SyntheticDataset data({8}, 3, 39);
      const auto codec = [seed](std::size_t) -> std::unique_ptr<GradientCompressor> {
        if (seed % 2 == 0) return std::make_unique<NoopCompressor>();
        return std::make_unique<ErrorFeedbackCompressor>(std::make_unique<FftCompressor>(
            FftCompressorOptions{.theta = 0.5, .quantizer_bits = 10}));
      };
      return cluster_train(cluster, small_config(4, 18), mlp_factory(), codec, data);
    };
    const ClusterTrainResult a = run_once();
    const ClusterTrainResult b = run_once();
    EXPECT_EQ(a.rejoined_ranks, 1u) << "seed " << seed;
    EXPECT_EQ(a.crashed_ranks, 0u) << "seed " << seed;
    EXPECT_TRUE(a.replicas_identical) << "seed " << seed;
    EXPECT_TRUE(std::isfinite(a.mean_loss_last_iteration)) << "seed " << seed;
    ASSERT_EQ(a.final_params.size(), b.final_params.size()) << "seed " << seed;
    EXPECT_EQ(0, std::memcmp(a.final_params.data(), b.final_params.data(),
                             a.final_params.size() * sizeof(float)))
        << "seed " << seed;
    ASSERT_EQ(a.rank_sim_times.size(), b.rank_sim_times.size());
    for (std::size_t r = 0; r < a.rank_sim_times.size(); ++r) {
      EXPECT_EQ(a.rank_sim_times[r], b.rank_sim_times[r]) << "seed " << seed << " rank " << r;
    }
  }
}

TEST(ChaosRejoin, StateTransferRetriesThroughTransportFaults) {
  // The rejoin blob travels the same lossy link as everything else; the
  // cluster-agreed retry loop must get it through a 20% drop rate without
  // hanging or diverging.
  comm::FaultPlan plan;
  plan.seed = 13;
  plan.drop_prob = 0.2;
  plan.crashes.push_back({.rank = 3, .at_op = 5, .rejoin_at_op = 9});
  comm::SimCluster cluster(comm::NetworkModel::ethernet_10g(), plan);
  nn::SyntheticDataset data({8}, 3, 40);
  const ClusterTrainResult result =
      cluster_train(cluster, small_config(4, 14), mlp_factory(), noop_codec(), data);
  EXPECT_EQ(result.rejoined_ranks, 1u);
  EXPECT_EQ(result.crashed_ranks, 0u);
  EXPECT_TRUE(result.replicas_identical);
  EXPECT_TRUE(std::isfinite(result.mean_loss_last_iteration));
}

TEST(ChaosRejoin, TwoRanksCanRejoinInOneCohort) {
  comm::FaultPlan plan;
  plan.crashes.push_back({.rank = 1, .at_op = 4, .rejoin_at_op = 8});
  plan.crashes.push_back({.rank = 3, .at_op = 5, .rejoin_at_op = 8});
  comm::SimCluster cluster(comm::NetworkModel::infiniband_fdr56(), plan);
  nn::SyntheticDataset data({8}, 3, 42);
  const ClusterTrainResult result =
      cluster_train(cluster, small_config(4, 14), mlp_factory(), noop_codec(), data);
  EXPECT_EQ(result.rejoined_ranks, 2u);
  EXPECT_EQ(result.crashed_ranks, 0u);
  EXPECT_TRUE(result.replicas_identical);
  EXPECT_TRUE(cluster.rank_rejoined(1));
  EXPECT_TRUE(cluster.rank_rejoined(3));
}

TEST(ChaosRejoin, RejoinOpPastTheRunLeavesTheCrashTerminal) {
  // A recovery fate whose rejoin op is never reached degrades exactly like
  // a permanent crash: the survivors finish, the parked rank drains out.
  comm::FaultPlan plan;
  plan.crashes.push_back({.rank = 2, .at_op = 5, .rejoin_at_op = 100000});
  comm::SimCluster cluster(comm::NetworkModel::infiniband_fdr56(), plan);
  nn::SyntheticDataset data({8}, 3, 43);
  const ClusterTrainResult result =
      cluster_train(cluster, small_config(4, 10), mlp_factory(), noop_codec(), data);
  EXPECT_EQ(result.rejoined_ranks, 0u);
  EXPECT_EQ(result.crashed_ranks, 1u);
  EXPECT_TRUE(result.replicas_identical);
  EXPECT_TRUE(std::isfinite(result.mean_loss_last_iteration));
}

TEST(ChaosRejoin, ExcludedOwnContributionKeepsTheFeedbackLoopHealthy) {
  // Degraded-mode EF aging fix, cluster level: a straggler excluded past
  // the timeout re-credits its own undelivered block into the residual
  // (see ErrorFeedbackRecredit in test_recovery.cpp for the exact-value
  // unit test), and the run stays deterministic and bit-identical.
  const auto run_once = [] {
    comm::FaultPlan plan;
    plan.straggler_timeout_s = util::SimSeconds(0.05);
    plan.stragglers.push_back(
        {.rank = 1, .slowdown_s = util::SimSeconds(0.2), .from_op = 3, .until_op = 7});
    comm::SimCluster cluster(comm::NetworkModel::ethernet_10g(), plan);
    nn::SyntheticDataset data({8}, 3, 44);
    const auto codec = [](std::size_t) {
      return std::make_unique<ErrorFeedbackCompressor>(std::make_unique<FftCompressor>(
          FftCompressorOptions{.theta = 0.5, .quantizer_bits = 10}));
    };
    return cluster_train(cluster, small_config(4, 12), mlp_factory(), codec, data);
  };
  const ClusterTrainResult a = run_once();
  const ClusterTrainResult b = run_once();
  EXPECT_GT(a.skipped_contributions, 0u);
  EXPECT_TRUE(a.replicas_identical);
  EXPECT_TRUE(std::isfinite(a.mean_loss_last_iteration));
  ASSERT_EQ(a.final_params.size(), b.final_params.size());
  EXPECT_EQ(0, std::memcmp(a.final_params.data(), b.final_params.data(),
                           a.final_params.size() * sizeof(float)));
}

// ---------------------------------------------------------------------------
// DistributedTrainer checkpoint/restore

TrainerConfig checkpoint_trainer_config() {
  TrainerConfig cfg;
  cfg.ranks = 3;
  cfg.batch_per_rank = 8;
  cfg.epochs = 6;
  cfg.iters_per_epoch = 5;
  cfg.test_size = 64;
  cfg.seed = 77;
  return cfg;
}

DistributedTrainer make_checkpoint_trainer() {
  util::Rng rng(555);
  return DistributedTrainer(nn::models::make_mlp(8, 16, 2, 3, rng),
                            nn::SyntheticDataset({8}, 3, 41), checkpoint_trainer_config());
}

CompressorFactory ef_fft_factory() {
  return [](std::size_t) {
    return std::make_unique<ErrorFeedbackCompressor>(std::make_unique<FftCompressor>(
        FftCompressorOptions{.theta = 0.5, .quantizer_bits = 10}));
  };
}

TEST(TrainerCheckpoint, RestoreReproducesTheUninterruptedRunBitForBit) {
  const nn::StepLrSchedule lr({{0, 0.05f}, {4, 0.01f}});
  const FixedTheta theta(0.5);

  // Uninterrupted reference run.
  DistributedTrainer reference = make_checkpoint_trainer();
  const TrainResult full = reference.train(ef_fft_factory(), theta, lr);
  std::vector<float> full_params(reference.model().param_count());
  reference.model().copy_params(full_params);

  // Same run, checkpointing every 2 epochs; keep the epoch-4 checkpoint.
  DistributedTrainer first = make_checkpoint_trainer();
  std::vector<std::uint8_t> blob;
  CheckpointOptions capture;
  capture.every_epochs = 2;
  capture.sink = [&](const TrainerCheckpoint& ckpt) {
    if (ckpt.next_epoch == 4) blob = ckpt.serialize();
  };
  first.train(ef_fft_factory(), theta, lr, capture);
  ASSERT_FALSE(blob.empty());

  // A fresh trainer (fresh model object, fresh optimizer) resumes from the
  // serialized blob and must land on bit-identical weights and records.
  const TrainerCheckpoint restored = TrainerCheckpoint::deserialize(blob);
  EXPECT_EQ(restored.next_epoch, 4u);
  DistributedTrainer second = make_checkpoint_trainer();
  CheckpointOptions resume;
  resume.resume = &restored;
  const TrainResult resumed = second.train(ef_fft_factory(), theta, lr, resume);
  std::vector<float> resumed_params(second.model().param_count());
  second.model().copy_params(resumed_params);

  ASSERT_EQ(resumed_params.size(), full_params.size());
  EXPECT_EQ(0, std::memcmp(resumed_params.data(), full_params.data(),
                           full_params.size() * sizeof(float)));
  ASSERT_EQ(resumed.epochs.size(), full.epochs.size());
  for (std::size_t e = 0; e < full.epochs.size(); ++e) {
    EXPECT_EQ(resumed.epochs[e].train_loss, full.epochs[e].train_loss) << e;
    EXPECT_EQ(resumed.epochs[e].test_accuracy, full.epochs[e].test_accuracy) << e;
  }
  // Wire bytes are a pure function of the packets, so they restore exactly.
  // (Simulated time is NOT compared: measured mode charges real wall time
  // for compute, which is never bit-stable across runs.)
  EXPECT_EQ(resumed.total_wire_bytes, full.total_wire_bytes);
}

TEST(TrainerCheckpoint, SerializationRoundTripsEveryField) {
  TrainerCheckpoint ckpt;
  ckpt.next_epoch = 9;
  ckpt.sim_time_s = 1.5;
  ckpt.total_wire_bytes = 4096.0;
  ckpt.total_iters = 123;
  ckpt.params = {1.0f, -2.5f, 3.25f};
  ckpt.velocity = {{0.1f, 0.2f}, {}, {0.3f}};
  ckpt.residuals = {{-1.0f}, {2.0f, 4.0f}};
  ckpt.rng_states.push_back({1, 2, 3, 4, 5, 6});
  EpochRecord record;
  record.epoch = 8;
  record.train_loss = 0.25;
  record.test_accuracy = 0.75;
  record.theta = 0.5;
  record.lr = 0.01;
  record.sim_time_s = 1.25;
  record.mean_alpha = 0.1;
  record.mean_ratio = 10.0;
  ckpt.epochs.push_back(record);

  const TrainerCheckpoint back = TrainerCheckpoint::deserialize(ckpt.serialize());
  EXPECT_EQ(back.next_epoch, ckpt.next_epoch);
  EXPECT_EQ(back.sim_time_s, ckpt.sim_time_s);
  EXPECT_EQ(back.total_wire_bytes, ckpt.total_wire_bytes);
  EXPECT_EQ(back.total_iters, ckpt.total_iters);
  EXPECT_EQ(back.params, ckpt.params);
  EXPECT_EQ(back.velocity, ckpt.velocity);
  EXPECT_EQ(back.residuals, ckpt.residuals);
  ASSERT_EQ(back.rng_states.size(), 1u);
  EXPECT_EQ(back.rng_states[0], ckpt.rng_states[0]);
  ASSERT_EQ(back.epochs.size(), 1u);
  EXPECT_EQ(back.epochs[0].epoch, record.epoch);
  EXPECT_EQ(back.epochs[0].train_loss, record.train_loss);
  EXPECT_EQ(back.epochs[0].mean_ratio, record.mean_ratio);
}

TEST(TrainerCheckpoint, RejectsCorruptAndTruncatedBlobs) {
  TrainerCheckpoint ckpt;
  ckpt.params = {1.0f, 2.0f, 3.0f};
  ckpt.rng_states.push_back({1, 2, 3, 4, 5, 6});
  const std::vector<std::uint8_t> blob = ckpt.serialize();
  ASSERT_NO_THROW((void)TrainerCheckpoint::deserialize(blob));

  for (std::size_t at : {std::size_t{0}, std::size_t{5}, blob.size() / 2, blob.size() - 1}) {
    std::vector<std::uint8_t> damaged = blob;
    damaged[at] ^= 0x10;
    EXPECT_THROW((void)TrainerCheckpoint::deserialize(damaged), std::runtime_error) << at;
  }
  const std::vector<std::uint8_t> truncated(blob.begin(), blob.begin() + blob.size() / 2);
  EXPECT_THROW((void)TrainerCheckpoint::deserialize(truncated), std::runtime_error);
  EXPECT_THROW((void)TrainerCheckpoint::deserialize({}), std::runtime_error);
}

TEST(TrainerCheckpoint, RejectsMismatchedShapes) {
  const nn::StepLrSchedule lr({{0, 0.05f}});
  TrainerCheckpoint wrong;
  wrong.params = {1.0f};  // wrong parameter count
  wrong.rng_states.resize(3, {1, 2, 3, 4, 5, 6});
  DistributedTrainer trainer = make_checkpoint_trainer();
  CheckpointOptions resume;
  resume.resume = &wrong;
  EXPECT_THROW(trainer.train(ef_fft_factory(), FixedTheta(0.5), lr, resume),
               std::invalid_argument);
}

}  // namespace
}  // namespace fftgrad::core
