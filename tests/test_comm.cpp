#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <numeric>
#include <vector>

#include "fftgrad/comm/network_model.h"
#include "fftgrad/comm/sim_cluster.h"

namespace fftgrad::comm {
namespace {

// ---------------------------------------------------------------------------
// NetworkModel

TEST(NetworkModel, P2pTimeIsLatencyPlusTransfer) {
  NetworkModel net{"test", util::SimSeconds(1e-3), util::BytesPerSecond(1e6)};
  EXPECT_DOUBLE_EQ(net.p2p_time(util::Bytes(1e6)).to_double(), 1e-3 + 1.0);
}

TEST(NetworkModel, SingleRankCollectivesAreFree) {
  const NetworkModel net = NetworkModel::infiniband_fdr56();
  EXPECT_DOUBLE_EQ(net.allgather_time(util::Bytes(1e6), 1).to_double(), 0.0);
  EXPECT_DOUBLE_EQ(net.allreduce_time(util::Bytes(1e6), 1).to_double(), 0.0);
  EXPECT_DOUBLE_EQ(net.broadcast_time(util::Bytes(1e6), 1).to_double(), 0.0);
}

TEST(NetworkModel, AllgatherGrowsLinearlyWithRanks) {
  // The paper's Fig 11 observation: allgather cost is ~linear in GPU count.
  const NetworkModel net = NetworkModel::infiniband_fdr56();
  const util::Bytes block{250e6 / 8};
  const util::SimSeconds t8 = net.allgather_time(block, 8);
  const util::SimSeconds t16 = net.allgather_time(block, 16);
  const util::SimSeconds t32 = net.allgather_time(block, 32);
  EXPECT_NEAR(t16 / t8, 15.0 / 7.0, 1e-9);
  EXPECT_NEAR(t32 / t16, 31.0 / 15.0, 1e-9);
}

TEST(NetworkModel, AllgathervGatedByLargestBlock) {
  NetworkModel net{"test", util::SimSeconds(0.0), util::BytesPerSecond(1e6)};
  std::vector<util::Bytes> blocks = {util::Bytes(10.0), util::Bytes(1000.0),
                                     util::Bytes(100.0), util::Bytes(500.0)};
  EXPECT_DOUBLE_EQ(net.allgatherv_time(blocks).to_double(), 3.0 * (1000.0 / 1e6));
}

TEST(NetworkModel, AllreduceUsesChunkedRing) {
  NetworkModel net{"test", util::SimSeconds(0.0), util::BytesPerSecond(1e6)};
  // 2(p-1) steps of m/p bytes.
  EXPECT_DOUBLE_EQ(net.allreduce_time(util::Bytes(8e6), 4).to_double(),
                   2.0 * 3.0 * (2e6 / 1e6));
}

TEST(NetworkModel, BroadcastIsLogarithmic) {
  NetworkModel net{"test", util::SimSeconds(0.0), util::BytesPerSecond(1e6)};
  EXPECT_DOUBLE_EQ(net.broadcast_time(util::Bytes(1e6), 8).to_double(), 3.0);
  EXPECT_DOUBLE_EQ(net.broadcast_time(util::Bytes(1e6), 9).to_double(), 4.0);
}

TEST(NetworkModel, ProfilesAreOrderedBySpeed) {
  EXPECT_LT(NetworkModel::ethernet_1g().bandwidth_bytes_s,
            NetworkModel::ethernet_10g().bandwidth_bytes_s);
  EXPECT_LT(NetworkModel::ethernet_10g().bandwidth_bytes_s,
            NetworkModel::infiniband_fdr56().bandwidth_bytes_s);
}

// ---------------------------------------------------------------------------
// SimCluster

TEST(SimCluster, RunsEveryRankExactlyOnce) {
  SimCluster cluster(NetworkModel::infiniband_fdr56());
  std::vector<int> visits(6, 0);
  cluster.run(6, [&](RankContext& ctx) { visits[ctx.rank()] = 1; });
  for (int v : visits) EXPECT_EQ(v, 1);
}

TEST(SimCluster, AllgatherDeliversEveryContribution) {
  SimCluster cluster(NetworkModel::infiniband_fdr56());
  cluster.run(4, [&](RankContext& ctx) {
    std::vector<std::uint8_t> mine(ctx.rank() + 1, static_cast<std::uint8_t>(ctx.rank()));
    const auto gathered = ctx.allgather(mine);
    ASSERT_EQ(gathered.size(), 4u);
    for (std::size_t r = 0; r < 4; ++r) {
      ASSERT_EQ(gathered[r].size(), r + 1) << "rank " << ctx.rank();
      for (std::uint8_t byte : gathered[r]) EXPECT_EQ(byte, r);
    }
  });
}

TEST(SimCluster, AllgatherChargesModeledTime) {
  NetworkModel net{"test", util::SimSeconds(0.0), util::BytesPerSecond(1e6)};
  SimCluster cluster(net);
  const auto clocks = cluster.run(3, [&](RankContext& ctx) {
    std::vector<std::uint8_t> mine(1000);
    (void)ctx.allgather(mine);
  });
  for (util::SimSeconds t : clocks) EXPECT_NEAR(t.to_double(), 2.0 * (1000.0 / 1e6), 1e-12);
}

TEST(SimCluster, AllreduceSumsAcrossRanks) {
  SimCluster cluster(NetworkModel::ethernet_10g());
  cluster.run(5, [&](RankContext& ctx) {
    std::vector<float> v = {static_cast<float>(ctx.rank()), 1.0f};
    ctx.allreduce_sum(v);
    EXPECT_FLOAT_EQ(v[0], 0.0f + 1 + 2 + 3 + 4);
    EXPECT_FLOAT_EQ(v[1], 5.0f);
  });
}

TEST(SimCluster, AllreduceIsBitIdenticalAcrossRanks) {
  SimCluster cluster(NetworkModel::ethernet_10g());
  std::vector<std::vector<float>> results(4);
  cluster.run(4, [&](RankContext& ctx) {
    std::vector<float> v(257);
    for (std::size_t i = 0; i < v.size(); ++i) {
      v[i] = 0.1f * static_cast<float>(i) * static_cast<float>(ctx.rank() + 1);
    }
    ctx.allreduce_sum(v);
    results[ctx.rank()] = v;
  });
  for (std::size_t r = 1; r < 4; ++r) EXPECT_EQ(results[r], results[0]);
}

TEST(SimCluster, BroadcastCopiesRootData) {
  SimCluster cluster(NetworkModel::ethernet_1g());
  cluster.run(4, [&](RankContext& ctx) {
    std::vector<float> v(8, ctx.rank() == 2 ? 42.0f : 0.0f);
    ctx.broadcast(v, 2);
    for (float x : v) EXPECT_FLOAT_EQ(x, 42.0f);
  });
}

TEST(SimCluster, BarrierAlignsClocksToSlowest) {
  SimCluster cluster(NetworkModel::infiniband_fdr56());
  const auto clocks = cluster.run(4, [&](RankContext& ctx) {
    // rank r is r seconds behind
    ctx.clock().advance(util::SimSeconds(static_cast<double>(ctx.rank())));
    ctx.barrier();
  });
  for (util::SimSeconds t : clocks) EXPECT_DOUBLE_EQ(t.to_double(), 3.0);
}

TEST(SimCluster, SequentialCollectivesAccumulateTime) {
  NetworkModel net{"test", util::SimSeconds(0.0), util::BytesPerSecond(1e6)};
  SimCluster cluster(net);
  const auto clocks = cluster.run(2, [&](RankContext& ctx) {
    std::vector<std::uint8_t> mine(1000);
    (void)ctx.allgather(mine);
    (void)ctx.allgather(mine);
  });
  for (util::SimSeconds t : clocks) EXPECT_NEAR(t.to_double(), 2.0 * (1000.0 / 1e6), 1e-12);
}

TEST(SimCluster, SingleRankWorks) {
  SimCluster cluster(NetworkModel::infiniband_fdr56());
  const auto clocks = cluster.run(1, [&](RankContext& ctx) {
    std::vector<std::uint8_t> mine = {1, 2, 3};
    const auto gathered = ctx.allgather(mine);
    ASSERT_EQ(gathered.size(), 1u);
    EXPECT_EQ(gathered[0], mine);
  });
  EXPECT_DOUBLE_EQ(clocks[0].to_double(), 0.0);
}

TEST(SimCluster, PropagatesRankExceptions) {
  SimCluster cluster(NetworkModel::infiniband_fdr56());
  EXPECT_THROW(cluster.run(2,
                           [&](RankContext& ctx) {
                             if (ctx.rank() == 1) throw std::runtime_error("rank failure");
                             // rank 0 does no collective so it exits cleanly
                           }),
               std::runtime_error);
}

TEST(SimCluster, ZeroRanksRejected) {
  SimCluster cluster(NetworkModel::infiniband_fdr56());
  EXPECT_THROW(cluster.run(0, [](RankContext&) {}), std::invalid_argument);
}

}  // namespace
}  // namespace fftgrad::comm
