// Recovery suite (ctest label `recovery`): the elastic-recovery subsystem
// end to end.
//
// Layers under test:
//   * RecoveryController — the per-monitor action mapping (rollback on
//     non-finite signals, lossless-codec fallback after a ratio-collapse
//     streak, theta relaxation on residual growth), the
//     iterations-to-recover bookkeeping, and the decision-state blob a
//     rejoiner loads so it takes identical remedies from then on;
//   * CheckpointStore — atomic temp+rename writes, bounded retention, and
//     the kill-mid-write regression (a torn newest file must never shadow
//     the previous valid checkpoint);
//   * ErrorFeedbackCompressor::recredit_undelivered — the degraded-mode
//     residual fix: an excluded own contribution is re-credited, not aged
//     out;
//   * the ledger `remediation` row (writer -> reader -> validator) and the
//     acceptance-criterion reconciliation of `state_transfer` rows against
//     the network model (exact to 1e-6 on a lossless plan);
//   * whole-cluster integration — a poisoned gradient heals via rollback, a
//     collapsed ratio falls back to the lossless codec on every rank at the
//     same iteration, and an armed-but-idle controller leaves the trained
//     weights bit-identical to a run without it.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "fftgrad/comm/fault_injection.h"
#include "fftgrad/comm/sim_cluster.h"
#include "fftgrad/core/baseline_compressors.h"
#include "fftgrad/core/checkpoint_store.h"
#include "fftgrad/core/cluster_trainer.h"
#include "fftgrad/core/error_feedback.h"
#include "fftgrad/core/fft_compressor.h"
#include "fftgrad/core/recovery.h"
#include "fftgrad/nn/models.h"
#include "fftgrad/telemetry/ledger.h"

namespace fftgrad::core {
namespace {

using telemetry::RunLedger;

RecoveryPolicy enabled_policy() {
  RecoveryPolicy policy;
  policy.enabled = true;
  return policy;
}

// ---------------------------------------------------------------------------
// RecoveryController: per-monitor action mapping

TEST(RecoveryController_, DisabledPolicyIgnoresEverySignal) {
  RecoveryController controller{RecoveryPolicy{}};
  RecoverySignals everything{true, true, true, true};
  for (std::uint64_t iter = 0; iter < 5; ++iter) {
    EXPECT_TRUE(controller.step(iter, everything).empty()) << iter;
  }
  EXPECT_EQ(controller.remediations_total(), 0u);
  EXPECT_FALSE(controller.fallback_active());
  EXPECT_TRUE(controller.finish(5).empty());
}

TEST(RecoveryController_, NonfiniteSignalOpensOneRollbackUntilItClears) {
  RecoveryController controller{enabled_policy()};
  RecoverySignals nan_grad;
  nan_grad.nan_gradient = true;

  const auto first = controller.step(3, nan_grad);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0], RemedyAction::kRollback);
  // Still failing: the pending rollback suppresses a duplicate.
  EXPECT_TRUE(controller.step(4, nan_grad).empty());
  EXPECT_TRUE(controller.drain_closed().empty());
  // Cleared: the episode closes with the iterations it took to recover.
  EXPECT_TRUE(controller.step(5, RecoverySignals{}).empty());
  const auto closed = controller.drain_closed();
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].iteration, 3u);
  EXPECT_EQ(closed[0].cause, "nan_gradient");
  EXPECT_EQ(closed[0].action, "rollback");
  EXPECT_EQ(closed[0].iterations_to_recover, 2u);
  EXPECT_TRUE(closed[0].recovered);
  EXPECT_EQ(controller.remediations_total(), 1u);
  // A later relapse opens a fresh episode.
  RecoverySignals bad_loss;
  bad_loss.nonfinite_loss = true;
  const auto again = controller.step(8, bad_loss);
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(again[0], RemedyAction::kRollback);
  EXPECT_EQ(controller.remediations_total(), 2u);
}

TEST(RecoveryController_, RatioCollapseNeedsTheConfiguredStreak) {
  RecoveryPolicy policy = enabled_policy();
  policy.ratio_collapse_streak = 3;
  RecoveryController controller{policy};
  RecoverySignals collapse;
  collapse.ratio_collapse = true;

  EXPECT_TRUE(controller.step(0, collapse).empty());
  // An intervening healthy iteration resets the streak.
  EXPECT_TRUE(controller.step(1, RecoverySignals{}).empty());
  EXPECT_TRUE(controller.step(2, collapse).empty());
  EXPECT_TRUE(controller.step(3, collapse).empty());
  const auto actions = controller.step(4, collapse);
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0], RemedyAction::kCodecFallback);
  EXPECT_TRUE(controller.fallback_active());
  // The fallback ends the collapse by construction, so the episode closes
  // on the next step even though the (stale) flag is still raised, and no
  // second fallback ever fires.
  EXPECT_TRUE(controller.step(5, collapse).empty());
  const auto closed = controller.drain_closed();
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].cause, "ratio_collapse");
  EXPECT_EQ(closed[0].action, "codec_fallback");
  EXPECT_EQ(closed[0].iterations_to_recover, 1u);
  EXPECT_TRUE(closed[0].recovered);
}

TEST(RecoveryController_, ResidualGrowthRelaxesTheta) {
  RecoveryController controller{enabled_policy()};
  RecoverySignals growth;
  growth.residual_growth = true;
  const auto actions = controller.step(7, growth);
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0], RemedyAction::kThetaRelax);
  controller.charge(util::SimSeconds(0.25));
  EXPECT_TRUE(controller.step(8, growth).empty());  // pending: no duplicate
  EXPECT_TRUE(controller.step(9, RecoverySignals{}).empty());
  const auto closed = controller.drain_closed();
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].cause, "residual_growth");
  EXPECT_EQ(closed[0].action, "theta_relax");
  EXPECT_EQ(closed[0].cost_s, util::SimSeconds(0.25));
}

TEST(RecoveryController_, FinishReportsUnrecoveredPendings) {
  RecoveryController controller{enabled_policy()};
  RecoverySignals nan_grad;
  nan_grad.nan_gradient = true;
  ASSERT_EQ(controller.step(5, nan_grad).size(), 1u);
  const auto rows = controller.finish(12);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].iteration, 5u);
  EXPECT_FALSE(rows[0].recovered);
  EXPECT_EQ(rows[0].iterations_to_recover, 7u);
  // finish() closed everything: a second call reports nothing.
  EXPECT_TRUE(controller.finish(12).empty());
}

TEST(RecoveryController_, DecisionStateMakesACloneActIdentically) {
  RecoveryPolicy policy = enabled_policy();
  policy.ratio_collapse_streak = 3;
  RecoveryController donor{policy};
  // A half-built streak and an open theta-relax episode: exactly the state
  // a mid-run rejoiner must inherit to stay in lockstep.
  RecoverySignals mixed;
  mixed.ratio_collapse = true;
  mixed.residual_growth = true;
  ASSERT_EQ(donor.step(0, mixed).size(), 1u);  // theta relax opens
  ASSERT_TRUE(donor.step(1, mixed).empty());   // streak at 2, nothing new

  RecoveryController rejoiner{policy};
  rejoiner.load_decision_state(donor.save_decision_state());
  for (std::uint64_t iter = 2; iter < 6; ++iter) {
    const RecoverySignals signals = iter < 3 ? mixed : RecoverySignals{};
    EXPECT_EQ(donor.step(iter, signals), rejoiner.step(iter, signals)) << iter;
    EXPECT_EQ(donor.fallback_active(), rejoiner.fallback_active()) << iter;
  }
  // Both close the same episodes with the same recovery spans.
  const auto a = donor.drain_closed();
  const auto b = rejoiner.drain_closed();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].iteration, b[i].iteration);
    EXPECT_EQ(a[i].cause, b[i].cause);
    EXPECT_EQ(a[i].action, b[i].action);
    EXPECT_EQ(a[i].iterations_to_recover, b[i].iterations_to_recover);
  }
}

TEST(RecoveryController_, RejectsMalformedDecisionState) {
  RecoveryController donor{enabled_policy()};
  RecoverySignals growth;
  growth.residual_growth = true;
  ASSERT_EQ(donor.step(2, growth).size(), 1u);
  const std::vector<std::uint8_t> blob = donor.save_decision_state();

  RecoveryController sink{enabled_policy()};
  const std::vector<std::uint8_t> truncated(blob.begin(), blob.end() - 1);
  EXPECT_THROW(sink.load_decision_state(truncated), std::runtime_error);
  std::vector<std::uint8_t> bad_cause = blob;
  // The cause byte of the first pending entry sits right after the u64
  // streak, the u8 fallback flag, the u64 count, and the entry's u64 iter.
  bad_cause[8 + 1 + 8 + 8] = 0xEE;
  EXPECT_THROW(sink.load_decision_state(bad_cause), std::runtime_error);
  // The valid blob still loads after the failures above.
  EXPECT_NO_THROW(sink.load_decision_state(blob));
}

TEST(RecoveryPolicy_, FromEnvReadsEveryKnob) {
  ::setenv("FFTGRAD_RECOVERY", "1", 1);
  ::setenv("FFTGRAD_RECOVERY_SNAPSHOT_EVERY", "4", 1);
  ::setenv("FFTGRAD_RECOVERY_STREAK", "7", 1);
  ::setenv("FFTGRAD_RECOVERY_MIN_RATIO", "2.5", 1);
  ::setenv("FFTGRAD_RECOVERY_RESIDUAL_FACTOR", "50", 1);
  ::setenv("FFTGRAD_RECOVERY_THETA_FACTOR", "0.25", 1);
  const RecoveryPolicy policy = RecoveryPolicy::from_env();
  ::unsetenv("FFTGRAD_RECOVERY");
  ::unsetenv("FFTGRAD_RECOVERY_SNAPSHOT_EVERY");
  ::unsetenv("FFTGRAD_RECOVERY_STREAK");
  ::unsetenv("FFTGRAD_RECOVERY_MIN_RATIO");
  ::unsetenv("FFTGRAD_RECOVERY_RESIDUAL_FACTOR");
  ::unsetenv("FFTGRAD_RECOVERY_THETA_FACTOR");
  EXPECT_TRUE(policy.enabled);
  EXPECT_EQ(policy.snapshot_every, 4u);
  EXPECT_EQ(policy.ratio_collapse_streak, 7u);
  EXPECT_DOUBLE_EQ(policy.min_ratio, 2.5);
  EXPECT_DOUBLE_EQ(policy.residual_growth_factor, 50.0);
  EXPECT_DOUBLE_EQ(policy.theta_relax_factor, 0.25);
  EXPECT_FALSE(RecoveryPolicy::from_env().enabled);  // unset: disabled again
}

// ---------------------------------------------------------------------------
// CheckpointStore: atomic writes and retention

namespace fs = std::filesystem;

std::string fresh_store_dir(const char* tag) {
  const std::string dir = ::testing::TempDir() + "fftgrad_ckpt_" + tag;
  fs::remove_all(dir);
  return dir;
}

TrainerCheckpoint checkpoint_at(std::uint64_t epoch) {
  TrainerCheckpoint ckpt;
  ckpt.next_epoch = epoch;
  ckpt.params = {static_cast<float>(epoch), 2.0f, 3.0f};
  ckpt.rng_states.push_back({epoch, 2, 3, 4, 5, 6});
  return ckpt;
}

TEST(CheckpointStore_, RetainsTheNewestKAndLatestWins) {
  CheckpointStore store(fresh_store_dir("retain"), 3);
  for (std::uint64_t epoch = 1; epoch <= 5; ++epoch) store.save(checkpoint_at(epoch));
  const std::vector<std::string> names = store.files();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "ckpt-00000005.fgck");
  EXPECT_EQ(names[2], "ckpt-00000003.fgck");
  const auto latest = store.latest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->next_epoch, 5u);
  EXPECT_EQ(latest->params[0], 5.0f);
}

TEST(CheckpointStore_, ZeroKeepRetainsEverything) {
  CheckpointStore store(fresh_store_dir("unbounded"), 0);
  for (std::uint64_t epoch = 1; epoch <= 6; ++epoch) store.save(checkpoint_at(epoch));
  EXPECT_EQ(store.files().size(), 6u);
}

TEST(CheckpointStore_, KillMidWriteNeverShadowsThePreviousCheckpoint) {
  const std::string dir = fresh_store_dir("torn");
  CheckpointStore store(dir, 3);
  store.save(checkpoint_at(1));
  store.save(checkpoint_at(2));

  // A process killed *before* the rename leaves only a stray .tmp, which
  // the store neither lists nor resumes from.
  { std::ofstream(dir + "/ckpt-00000003.fgck.tmp") << "half-written"; }
  EXPECT_EQ(store.files().size(), 2u);
  ASSERT_TRUE(store.latest().has_value());
  EXPECT_EQ(store.latest()->next_epoch, 2u);

  // The worst case a non-atomic writer could produce — a torn blob under
  // the final name — must be skipped in favor of the previous valid file.
  const std::vector<std::uint8_t> good = checkpoint_at(3).serialize();
  {
    std::ofstream torn(dir + "/ckpt-00000003.fgck", std::ios::binary);
    torn.write(reinterpret_cast<const char*>(good.data()),
               static_cast<std::streamsize>(good.size() / 2));
  }
  ASSERT_EQ(store.files().size(), 3u);
  const auto latest = store.latest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->next_epoch, 2u);

  // Once a complete epoch-3 checkpoint lands (atomic save), it wins.
  store.save(checkpoint_at(3));
  EXPECT_EQ(store.latest()->next_epoch, 3u);
}

// ---------------------------------------------------------------------------
// Error-feedback re-credit (degraded-mode residual fix)

TEST(ErrorFeedbackRecredit, ExcludedOwnContributionReturnsToTheResidual) {
  ErrorFeedbackCompressor codec(std::make_unique<FftCompressor>(
      FftCompressorOptions{.theta = 0.5, .quantizer_bits = 10}));
  std::vector<float> gradient(64);
  for (std::size_t i = 0; i < gradient.size(); ++i) {
    gradient[i] = std::sin(static_cast<float>(i) * 0.37f) * 0.1f;
  }
  // Round 1 establishes a non-trivial residual; round 2's corrected
  // gradient is what the peers would have seen had the packet arrived.
  (void)codec.compress(gradient);
  std::vector<float> corrected(gradient.size());
  const std::span<const float> residual = codec.residual();
  for (std::size_t i = 0; i < gradient.size(); ++i) {
    corrected[i] = gradient[i] + residual[i];
  }
  const Packet packet = codec.compress(gradient);
  // The cluster excluded this rank's own block: re-crediting the delivered
  // part must leave the residual carrying the full corrected gradient, so
  // nothing the peers have not seen is ever aged out.
  codec.recredit_undelivered(packet);
  for (std::size_t i = 0; i < gradient.size(); ++i) {
    EXPECT_NEAR(codec.residual()[i], corrected[i], 1e-5f) << i;
  }
}

TEST(ErrorFeedbackRecredit, RejectsAMismatchedPacket) {
  ErrorFeedbackCompressor codec(std::make_unique<NoopCompressor>());
  std::vector<float> gradient(16, 0.5f);
  (void)codec.compress(gradient);
  Packet wrong;
  wrong.elements = 8;
  wrong.bytes.assign(32, 0);
  EXPECT_THROW(codec.recredit_undelivered(wrong), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Ledger remediation rows and state-transfer reconciliation

std::string temp_ledger_path(const char* tag) {
  return ::testing::TempDir() + "fftgrad_recovery_" + tag + ".jsonl";
}

/// Open the global ledger to a fresh temp file with aborts disabled, and
/// close + restore on scope exit (mirrors test_ledger.cpp's session).
class LedgerSession {
 public:
  explicit LedgerSession(const char* tag) : path_(temp_ledger_path(tag)) {
    std::remove(path_.c_str());
    RunLedger& ledger = RunLedger::global();
    ledger.set_abort_on_alert(false);
    EXPECT_TRUE(ledger.open(path_));
  }
  ~LedgerSession() { RunLedger::global().close(); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(RecoveryLedger, RemediationRowRoundTripsThroughTheReader) {
  LedgerSession session("remrow");
  RunLedger& ledger = RunLedger::global();
  ledger.begin_run({"test", "noop", 1, 1, 0, {}, 0.0});
  ledger.end_iteration({});
  ledger.record_remediation(
      {4, "ratio_collapse", "codec_fallback", util::SimSeconds(0.125), 2, true});
  ledger.record_remediation(
      {9, "nan_gradient", "rollback", util::SimSeconds(0.0), 5, false});
  ledger.end_run();
  RunLedger::global().close();

  const auto runs = telemetry::read_ledger_file(session.path());
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_TRUE(telemetry::validate_ledger(runs).empty());
  ASSERT_EQ(runs[0].remediations.size(), 2u);
  const telemetry::JsonValue& row = runs[0].remediations[0];
  EXPECT_EQ(row.number_or("iter", -1.0), 4.0);
  EXPECT_EQ(row.string_or("cause", ""), "ratio_collapse");
  EXPECT_EQ(row.string_or("action", ""), "codec_fallback");
  EXPECT_DOUBLE_EQ(row.number_or("cost_s", -1.0), 0.125);
  EXPECT_EQ(row.number_or("iterations_to_recover", -1.0), 2.0);
  ASSERT_NE(row.find("recovered"), nullptr);
  EXPECT_TRUE(row.find("recovered")->boolean);
  EXPECT_FALSE(runs[0].remediations[1].find("recovered")->boolean);
  // The summary aggregates the per-action counts.
  const telemetry::JsonValue* counts = runs[0].summary.find("remediations");
  ASSERT_NE(counts, nullptr);
  EXPECT_EQ(counts->number_or("codec_fallback", 0.0), 1.0);
  EXPECT_EQ(counts->number_or("rollback", 0.0), 1.0);
}

std::function<nn::Network()> mlp_factory() {
  return [] {
    util::Rng rng(999);
    return nn::models::make_mlp(8, 16, 2, 3, rng);
  };
}

ClusterTrainConfig small_config(std::size_t ranks, std::size_t iterations) {
  ClusterTrainConfig cfg;
  cfg.ranks = ranks;
  cfg.iterations = iterations;
  cfg.seed = 21;
  return cfg;
}

std::function<std::unique_ptr<GradientCompressor>(std::size_t)> noop_codec() {
  return [](std::size_t) { return std::make_unique<NoopCompressor>(); };
}

TEST(RecoveryLedger, LosslessStateTransferReconcilesExactly) {
  // ISSUE acceptance (c): on a lossless plan the `state_transfer` row's
  // charged cost must equal the NetworkModel prediction to 1e-6.
  LedgerSession session("transfer");
  comm::FaultPlan plan;
  plan.crashes.push_back({.rank = 2, .at_op = 4, .rejoin_at_op = 8});
  comm::SimCluster cluster(comm::NetworkModel::infiniband_fdr56(), plan);
  nn::SyntheticDataset data({8}, 3, 31);
  const ClusterTrainResult result =
      cluster_train(cluster, small_config(4, 12), mlp_factory(), noop_codec(), data);
  RunLedger::global().close();
  EXPECT_EQ(result.rejoined_ranks, 1u);
  EXPECT_EQ(result.crashed_ranks, 0u);
  EXPECT_TRUE(result.replicas_identical);

  const auto runs = telemetry::read_ledger_file(session.path());
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_TRUE(telemetry::validate_ledger(runs).empty());
  std::size_t transfers = 0;
  for (const telemetry::JsonValue& iteration : runs[0].iterations) {
    const telemetry::JsonValue* collectives = iteration.find("collectives");
    if (collectives == nullptr) continue;
    for (const telemetry::JsonValue& op : collectives->array) {
      if (op.string_or("kind", "") != "state_transfer") continue;
      ++transfers;
      const double predicted = op.number_or("predicted_s", -1.0);
      const double charged = op.number_or("charged_s", -2.0);
      EXPECT_GT(predicted, 0.0);
      EXPECT_NEAR(charged, predicted, 1e-6);
      EXPECT_EQ(op.number_or("failed", -1.0), 0.0);
    }
  }
  EXPECT_EQ(transfers, 1u);  // one rejoiner, delivered first try
}

// ---------------------------------------------------------------------------
// Whole-cluster remediation integration

/// Noop codec that emits one NaN-filled packet at a chosen compress call —
/// every rank decodes it, so the whole cluster's parameters are poisoned at
/// the same iteration and the rollback remedy has something real to heal.
class PoisonOnceCompressor : public NoopCompressor {
 public:
  explicit PoisonOnceCompressor(std::size_t poison_call) : poison_call_(poison_call) {}
  Packet compress(std::span<const float> gradient) override {
    Packet packet = NoopCompressor::compress(gradient);
    if (calls_++ == poison_call_) {
      const float nan = std::numeric_limits<float>::quiet_NaN();
      for (std::size_t i = 0; i + sizeof(float) <= packet.bytes.size(); i += sizeof(float)) {
        std::memcpy(packet.bytes.data() + i, &nan, sizeof(float));
      }
    }
    return packet;
  }

 private:
  std::size_t poison_call_;
  std::size_t calls_ = 0;
};

/// Noop codec whose wire ratio reads as collapsed (bytes padded 4x), for
/// driving the codec-fallback path; decompress ignores the padding.
class PaddedCompressor : public NoopCompressor {
 public:
  std::string name() const override { return "padded"; }
  Packet compress(std::span<const float> gradient) override {
    Packet packet = NoopCompressor::compress(gradient);
    packet.bytes.resize(packet.bytes.size() * 4, 0);
    return packet;
  }
  void decompress(const Packet& packet, std::span<float> out) override {
    Packet trimmed;
    trimmed.elements = packet.elements;
    trimmed.bytes.assign(packet.bytes.begin(),
                         packet.bytes.begin() + static_cast<std::ptrdiff_t>(
                                                    packet.elements * sizeof(float)));
    NoopCompressor::decompress(trimmed, out);
  }
};

TEST(RecoveryCluster, PoisonedGradientRollsBackAndRecovers) {
  LedgerSession session("rollback");  // non-finite monitors fire: aborts off
  comm::SimCluster cluster(comm::NetworkModel::infiniband_fdr56());
  ClusterTrainConfig cfg = small_config(4, 12);
  cfg.recovery = enabled_policy();
  cfg.recovery.snapshot_every = 4;
  nn::SyntheticDataset data({8}, 3, 35);
  const auto codec = [](std::size_t rank) -> std::unique_ptr<GradientCompressor> {
    if (rank == 1) return std::make_unique<PoisonOnceCompressor>(5);
    return std::make_unique<NoopCompressor>();
  };
  const ClusterTrainResult result =
      cluster_train(cluster, cfg, mlp_factory(), codec, data);
  RunLedger::global().close();

  EXPECT_EQ(result.remediations, 1u);
  EXPECT_TRUE(result.replicas_identical);
  EXPECT_TRUE(std::isfinite(result.mean_loss_last_iteration));
  for (float p : result.final_params) ASSERT_TRUE(std::isfinite(p));

  const auto runs = telemetry::read_ledger_file(session.path());
  ASSERT_EQ(runs.size(), 1u);
  ASSERT_EQ(runs[0].remediations.size(), 1u);
  const telemetry::JsonValue& row = runs[0].remediations[0];
  EXPECT_EQ(row.string_or("cause", ""), "nan_gradient");
  EXPECT_EQ(row.string_or("action", ""), "rollback");
  ASSERT_NE(row.find("recovered"), nullptr);
  EXPECT_TRUE(row.find("recovered")->boolean);
}

TEST(RecoveryCluster, RatioCollapseFallsBackToTheLosslessCodec) {
  comm::SimCluster cluster(comm::NetworkModel::infiniband_fdr56());
  ClusterTrainConfig cfg = small_config(4, 10);
  cfg.recovery = enabled_policy();
  cfg.recovery.ratio_collapse_streak = 2;
  nn::SyntheticDataset data({8}, 3, 36);
  const ClusterTrainResult result = cluster_train(
      cluster, cfg, mlp_factory(),
      [](std::size_t) { return std::make_unique<PaddedCompressor>(); }, data);
  // Every rank swapped to the lossless codec at the same iteration, so the
  // run completes with bit-identical replicas and exactly one remediation.
  EXPECT_EQ(result.remediations, 1u);
  EXPECT_TRUE(result.replicas_identical);
  EXPECT_TRUE(std::isfinite(result.mean_loss_last_iteration));
}

TEST(RecoveryCluster, ArmedButIdleControllerLeavesWeightsBitIdentical) {
  // The recovery layer's only op-stream change is the flag allreduce, which
  // never touches model math: an armed controller that takes no action must
  // land on the exact weights of a run with recovery disabled.
  const auto run_with = [](bool enabled) {
    comm::SimCluster cluster(comm::NetworkModel::infiniband_fdr56());
    ClusterTrainConfig cfg = small_config(4, 10);
    cfg.recovery.enabled = enabled;
    nn::SyntheticDataset data({8}, 3, 37);
    return cluster_train(cluster, cfg, mlp_factory(), noop_codec(), data);
  };
  const ClusterTrainResult armed = run_with(true);
  const ClusterTrainResult plain = run_with(false);
  EXPECT_EQ(armed.remediations, 0u);
  ASSERT_EQ(armed.final_params.size(), plain.final_params.size());
  EXPECT_EQ(0, std::memcmp(armed.final_params.data(), plain.final_params.data(),
                           plain.final_params.size() * sizeof(float)));
}

}  // namespace
}  // namespace fftgrad::core
