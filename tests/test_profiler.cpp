#include <gtest/gtest.h>

#include "fftgrad/nn/models.h"
#include "fftgrad/nn/profiler.h"

namespace fftgrad::nn {
namespace {

TEST(Profiler, ReportsEveryLayerInOrder) {
  util::Rng rng(1);
  Network net = models::make_mlp(8, 16, 3, 4, rng);
  tensor::Tensor x = tensor::Tensor::randn({4, 8}, rng);
  const auto profiles = profile_network(net, x, 1);
  ASSERT_EQ(profiles.size(), net.layer_count());
  for (std::size_t l = 0; l < profiles.size(); ++l) {
    EXPECT_EQ(profiles[l].name, net.layer(l).name());
    EXPECT_GE(profiles[l].forward_s.to_double(), 0.0);
    EXPECT_GE(profiles[l].backward_s.to_double(), 0.0);
  }
}

TEST(Profiler, ParamCountsMatchNetworkTotal) {
  util::Rng rng(2);
  Network net = models::make_resnet_mini(8, 1, 3, rng);
  tensor::Tensor x = tensor::Tensor::randn({2, 3, 8, 8}, rng);
  const auto profiles = profile_network(net, x, 1);
  std::size_t total = 0;
  for (const LayerProfile& p : profiles) total += p.param_count;
  EXPECT_EQ(total, net.param_count());
}

TEST(Profiler, ConvLayersDominateDenseHeadCompute) {
  // The Fig 2 structural fact on our own substrate: convolution layers
  // cost far more compute per parameter than the dense head.
  util::Rng rng(3);
  Network net = models::make_alexnet_mini(16, 5, rng);
  tensor::Tensor x = tensor::Tensor::randn({8, 3, 16, 16}, rng);
  const auto profiles = profile_network(net, x, 2);
  double conv_time = 0.0, dense_time = 0.0;
  std::size_t conv_params = 0, dense_params = 0;
  for (const LayerProfile& p : profiles) {
    if (p.name.rfind("conv", 0) == 0) {
      conv_time += (p.forward_s + p.backward_s).to_double();
      conv_params += p.param_count;
    } else if (p.name.rfind("dense", 0) == 0) {
      dense_time += (p.forward_s + p.backward_s).to_double();
      dense_params += p.param_count;
    }
  }
  ASSERT_GT(conv_params, 0u);
  ASSERT_GT(dense_params, 0u);
  const double conv_time_per_param = conv_time / static_cast<double>(conv_params);
  const double dense_time_per_param = dense_time / static_cast<double>(dense_params);
  EXPECT_GT(conv_time_per_param, 3.0 * dense_time_per_param);
}

TEST(Profiler, CommTimeMatchesNetworkModelPerLayer) {
  util::Rng rng(5);
  Network net = models::make_mlp(8, 16, 2, 4, rng);
  tensor::Tensor x = tensor::Tensor::randn({4, 8}, rng);
  const comm::NetworkModel fabric = comm::NetworkModel::infiniband_fdr56();
  const std::size_t ranks = 16;
  const auto profiles = profile_network(net, x, fabric, ranks, 1);
  ASSERT_EQ(profiles.size(), net.layer_count());
  bool any_comm = false;
  for (const LayerProfile& p : profiles) {
    if (p.param_count == 0) {
      EXPECT_EQ(p.comm_s, util::SimSeconds(0.0)) << p.name;
    } else {
      any_comm = true;
      EXPECT_DOUBLE_EQ(
          p.comm_s.to_double(),
          fabric.allreduce_time(util::byte_count(p.param_count * sizeof(float)), ranks)
              .to_double())
          << p.name;
    }
  }
  EXPECT_TRUE(any_comm);
  // The overload without a model leaves comm_s at zero.
  for (const LayerProfile& p : profile_network(net, x, 1)) {
    EXPECT_EQ(p.comm_s, util::SimSeconds(0.0));
  }
}

TEST(Profiler, RejectsZeroRepeats) {
  util::Rng rng(4);
  Network net = models::make_mlp(4, 4, 1, 2, rng);
  tensor::Tensor x = tensor::Tensor::randn({1, 4}, rng);
  EXPECT_THROW(profile_network(net, x, 0), std::invalid_argument);
}

}  // namespace
}  // namespace fftgrad::nn
